// Differential tests for the GF(256) region kernels (gf_region.h): every
// dispatchable kernel must agree byte-for-byte with the scalar log/exp
// reference over random coefficients, awkward lengths and unaligned
// pointers, and the threaded stripe codec must be bit-identical to serial.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "ec/gf256.h"
#include "ec/gf_region.h"
#include "ec/reed_solomon.h"
#include "ec/stripe_codec.h"
#include "util/thread_pool.h"

namespace {

using erms::ec::GF256;
using erms::ec::KernelKind;
using erms::ec::MulTable;
using erms::ec::ReedSolomon;
using erms::ec::StripeCodec;
using erms::util::ThreadPool;

std::vector<KernelKind> supported_kernels() {
  std::vector<KernelKind> out;
  for (const KernelKind k : {KernelKind::kScalar, KernelKind::kTable,
                             KernelKind::kSsse3, KernelKind::kAvx2}) {
    if (erms::ec::kernel_supported(k)) {
      out.push_back(k);
    }
  }
  return out;
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng{seed};
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<std::uint8_t>(rng());
  }
  return v;
}

// Lengths that hit every tail path: empty, sub-vector, one vector, word
// remainders, and lengths with len % 64 != 0 (unaligned chunk ends).
const std::size_t kLengths[] = {0, 1, 3, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 1000, 4096, 4097};

TEST(MulTable, MatchesGf256Mul) {
  for (const unsigned f : {0u, 1u, 2u, 3u, 0x1du, 127u, 128u, 254u, 255u}) {
    const MulTable t(static_cast<std::uint8_t>(f));
    for (unsigned x = 0; x < 256; ++x) {
      ASSERT_EQ(t.full[x], GF256::mul(static_cast<std::uint8_t>(f),
                                      static_cast<std::uint8_t>(x)));
    }
    for (unsigned x = 0; x < 16; ++x) {
      ASSERT_EQ(t.lo[x], t.full[x]);
      ASSERT_EQ(t.hi[x], t.full[x << 4]);
    }
  }
}

TEST(GfRegion, EveryKernelMatchesScalarReference) {
  std::mt19937 rng{7};
  const auto kernels = supported_kernels();
  ASSERT_GE(kernels.size(), 2u);  // scalar + table always
  for (const std::size_t len : kLengths) {
    const auto src = random_bytes(len, static_cast<std::uint32_t>(len) + 1);
    const auto base = random_bytes(len, static_cast<std::uint32_t>(len) + 2);
    // Edge factors plus a random sample.
    std::vector<std::uint8_t> factors = {0, 1, 2, 255};
    for (int i = 0; i < 8; ++i) {
      factors.push_back(static_cast<std::uint8_t>(rng()));
    }
    for (const std::uint8_t f : factors) {
      const MulTable t(f);
      std::vector<std::uint8_t> want_mul(len);
      std::vector<std::uint8_t> want_muladd = base;
      for (std::size_t i = 0; i < len; ++i) {
        want_mul[i] = GF256::mul(f, src[i]);
        want_muladd[i] ^= want_mul[i];
      }
      for (const KernelKind k : kernels) {
        std::vector<std::uint8_t> dst(len, 0xee);
        erms::ec::mul_region(k, t, dst.data(), src.data(), len);
        EXPECT_EQ(dst, want_mul) << "mul_region kernel=" << erms::ec::kernel_name(k)
                                 << " f=" << int(f) << " len=" << len;
        dst = base;
        erms::ec::muladd_region(k, t, dst.data(), src.data(), len);
        EXPECT_EQ(dst, want_muladd)
            << "muladd_region kernel=" << erms::ec::kernel_name(k) << " f=" << int(f)
            << " len=" << len;
      }
    }
  }
}

TEST(GfRegion, UnalignedPointers) {
  const std::size_t len = 1000;
  const auto kernels = supported_kernels();
  for (std::size_t offset = 1; offset < 4; ++offset) {
    const auto backing_src = random_bytes(len + 64, 11);
    auto backing_dst = random_bytes(len + 64, 12);
    const std::uint8_t* src = backing_src.data() + offset;
    const MulTable t(0x53);
    std::vector<std::uint8_t> want(len);
    for (std::size_t i = 0; i < len; ++i) {
      want[i] = GF256::mul(0x53, src[i]);
    }
    for (const KernelKind k : kernels) {
      std::uint8_t* dst = backing_dst.data() + offset;
      erms::ec::mul_region(k, t, dst, src, len);
      EXPECT_EQ(0, std::memcmp(dst, want.data(), len))
          << "kernel=" << erms::ec::kernel_name(k) << " offset=" << offset;
    }
  }
}

TEST(GfRegion, XorRegionMatchesByteXor) {
  for (const std::size_t len : kLengths) {
    const auto src = random_bytes(len, 21);
    const auto base = random_bytes(len, 22);
    std::vector<std::uint8_t> want(len);
    for (std::size_t i = 0; i < len; ++i) {
      want[i] = static_cast<std::uint8_t>(base[i] ^ src[i]);
    }
    auto dst = base;
    erms::ec::xor_region(dst.data(), src.data(), len);
    EXPECT_EQ(dst, want) << "len=" << len;
  }
}

TEST(GfRegion, ResolveKernelNames) {
  EXPECT_EQ(erms::ec::resolve_kernel("scalar"), KernelKind::kScalar);
  EXPECT_EQ(erms::ec::resolve_kernel("table"), KernelKind::kTable);
  // "auto" and garbage both resolve to something supported.
  EXPECT_TRUE(erms::ec::kernel_supported(erms::ec::resolve_kernel("auto")));
  EXPECT_TRUE(erms::ec::kernel_supported(erms::ec::resolve_kernel("warp9")));
  if (erms::ec::kernel_supported(KernelKind::kSsse3)) {
    EXPECT_EQ(erms::ec::resolve_kernel("ssse3"), KernelKind::kSsse3);
  }
  if (erms::ec::kernel_supported(KernelKind::kAvx2)) {
    EXPECT_EQ(erms::ec::resolve_kernel("avx2"), KernelKind::kAvx2);
  }
  EXPECT_TRUE(erms::ec::kernel_supported(erms::ec::active_kernel()));
}

// The k/m shapes ERMS actually uses: the paper's 1 data + 4 parities, the
// HDFS-RAID-ish 8+4 and 6+4, and small/odd shapes from the examples.
struct Shape {
  std::size_t k;
  std::size_t m;
};
const Shape kShapes[] = {{1, 4}, {6, 4}, {8, 4}, {4, 2}, {5, 4}, {16, 4}};

TEST(ReedSolomonKernels, EncodeMatchesNaiveReference) {
  for (const Shape s : kShapes) {
    for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{129},
                                  std::size_t{65 * 1024 + 13}}) {
      ReedSolomon rs(s.k, s.m);
      std::vector<ReedSolomon::Shard> data(s.k);
      for (std::size_t i = 0; i < s.k; ++i) {
        data[i] = random_bytes(len, static_cast<std::uint32_t>(100 * s.k + i));
      }
      const auto parity = rs.encode(data);
      ASSERT_EQ(parity.size(), s.m);
      // Naive per-byte reference straight off the encoding matrix.
      for (std::size_t r = 0; r < s.m; ++r) {
        ASSERT_EQ(parity[r].size(), len);
        for (std::size_t i = 0; i < len; ++i) {
          std::uint8_t want = 0;
          for (std::size_t c = 0; c < s.k; ++c) {
            want ^= GF256::mul(rs.encoding_matrix().at(s.k + r, c), data[c][i]);
          }
          ASSERT_EQ(parity[r][i], want)
              << "k=" << s.k << " m=" << s.m << " row=" << r << " i=" << i;
        }
      }
      EXPECT_TRUE(rs.verify(data, parity));
    }
  }
}

TEST(ReedSolomonKernels, ReconstructAllShapes) {
  std::mt19937 rng{77};
  for (const Shape s : kShapes) {
    ReedSolomon rs(s.k, s.m);
    const std::size_t len = 4096 + 17;
    std::vector<ReedSolomon::Shard> data(s.k);
    for (std::size_t i = 0; i < s.k; ++i) {
      data[i] = random_bytes(len, static_cast<std::uint32_t>(7 * s.k + i));
    }
    auto full = data;
    for (auto& p : rs.encode(data)) {
      full.push_back(std::move(p));
    }
    // Erase m shards at random positions.
    auto shards = full;
    std::vector<bool> present(s.k + s.m, true);
    std::size_t erased = 0;
    while (erased < s.m) {
      const std::size_t victim = rng() % (s.k + s.m);
      if (present[victim]) {
        present[victim] = false;
        shards[victim].clear();
        ++erased;
      }
    }
    ASSERT_TRUE(rs.reconstruct(shards, present));
    EXPECT_EQ(shards, full) << "k=" << s.k << " m=" << s.m;
  }
}

TEST(StripeCodecThreaded, MatchesSerialBitForBit) {
  ThreadPool pool(4);
  StripeCodec serial(8, 4);
  StripeCodec threaded(8, 4);
  threaded.set_thread_pool(&pool);
  ASSERT_EQ(threaded.thread_pool(), &pool);

  // Large enough that the parallel path engages (>= 2 chunks per shard) and
  // not a multiple of k, so the tail shard is zero-padded.
  const auto file = random_bytes(3 * 1024 * 1024 + 997, 31337);
  auto a = serial.encode(file);
  auto b = threaded.encode(file);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i], b.shards[i]) << "shard " << i;
  }

  std::vector<bool> present(12, true);
  for (const std::size_t victim : {0u, 3u, 8u, 11u}) {
    present[victim] = false;
    a.shards[victim].clear();
    b.shards[victim].clear();
  }
  std::vector<std::uint8_t> out_serial;
  std::vector<std::uint8_t> out_threaded;
  ASSERT_TRUE(serial.decode(a, present, out_serial));
  ASSERT_TRUE(threaded.decode(b, present, out_threaded));
  EXPECT_EQ(out_serial, file);
  EXPECT_EQ(out_threaded, file);
}

TEST(StripeCodecThreaded, SmallInputsStaySerialAndCorrect) {
  ThreadPool pool(2);
  StripeCodec codec(4, 2);
  codec.set_thread_pool(&pool);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
    const auto file = random_bytes(n, static_cast<std::uint32_t>(n) + 900);
    auto stripe = codec.encode(file);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(codec.decode(stripe, std::vector<bool>(6, true), out));
    EXPECT_EQ(out, file);
  }
}

}  // namespace
