#include <gtest/gtest.h>

#include "metrics/cdf.h"
#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "metrics/timeseries.h"

namespace erms::metrics {
namespace {

TEST(StatsSummary, EmptyIsZero) {
  StatsSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsSummary, MeanMinMaxSum) {
  StatsSummary s;
  for (const double v : {4.0, 2.0, 8.0, 6.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(StatsSummary, SampleVariance) {
  StatsSummary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
}

TEST(StatsSummary, SingleValue) {
  StatsSummary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, BasicQuartiles) {
  PercentileTracker p;
  for (int i = 1; i <= 100; ++i) {
    p.add(i);
  }
  EXPECT_NEAR(p.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(p.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(p.percentile(50), 50.5, 1e-9);
}

TEST(Percentile, AddAfterQueryResorts) {
  PercentileTracker p;
  p.add(1.0);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 3.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 10.0);
}

TEST(Histogram, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // underflow
  h.add(0.0);
  h.add(1.9);
  h.add(5.0);
  h.add(10.0);  // overflow (hi is exclusive)
  h.add(99.0);  // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0.0 and 1.9
  EXPECT_EQ(h.bucket(2), 1u);  // 5.0
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 6.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(TimeSeries, StepInterpolation) {
  TimeSeries ts;
  ts.record(sim::SimTime{1'000'000}, 10.0);
  ts.record(sim::SimTime{3'000'000}, 30.0);
  EXPECT_DOUBLE_EQ(ts.value_at(sim::SimTime{0}), 10.0);  // before first
  EXPECT_DOUBLE_EQ(ts.value_at(sim::SimTime{1'000'000}), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(sim::SimTime{2'999'999}), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(sim::SimTime{3'000'000}), 30.0);
  EXPECT_DOUBLE_EQ(ts.value_at(sim::SimTime{9'000'000}), 30.0);
}

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries ts;
  ts.record(sim::SimTime{0}, 0.0);
  ts.record(sim::SimTime{1'000'000}, 10.0);
  // [0s,1s) at 0, [1s,2s) at 10 → mean over [0s,2s] is 5.
  EXPECT_NEAR(ts.time_weighted_mean(sim::SimTime{0}, sim::SimTime{2'000'000}), 5.0, 1e-9);
}

TEST(TimeSeries, ResampleBounds) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) {
    ts.record(sim::SimTime{i * 1'000'000}, static_cast<double>(i));
  }
  const auto pts = ts.resampled(10);
  ASSERT_EQ(pts.size(), 10u);
  EXPECT_EQ(pts.front().time, sim::SimTime{0});
  EXPECT_EQ(pts.back().time, sim::SimTime{99'000'000});
  EXPECT_DOUBLE_EQ(pts.back().value, 99.0);
}

TEST(TimeSeries, ResampleShortSeriesReturnedWhole) {
  TimeSeries ts;
  ts.record(sim::SimTime{0}, 1.0);
  ts.record(sim::SimTime{10}, 2.0);
  EXPECT_EQ(ts.resampled(10).size(), 2u);
}

TEST(Cdf, FullCdfMonotone) {
  CdfBuilder cdf;
  for (const double v : {5.0, 1.0, 3.0, 3.0, 2.0}) {
    cdf.add(v);
  }
  const auto pts = cdf.build();
  ASSERT_EQ(pts.size(), 4u);  // 3.0 collapsed
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].x, pts[i - 1].x);
    EXPECT_GT(pts[i].p, pts[i - 1].p);
  }
  EXPECT_DOUBLE_EQ(pts.back().p, 1.0);
  // P(X <= 3) = 4/5.
  EXPECT_DOUBLE_EQ(pts[2].x, 3.0);
  EXPECT_DOUBLE_EQ(pts[2].p, 0.8);
}

TEST(Cdf, UniformGridCoversRange) {
  CdfBuilder cdf;
  for (int i = 0; i <= 10; ++i) {
    cdf.add(i);
  }
  const auto pts = cdf.build_uniform(11);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().x, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 10.0);
  EXPECT_DOUBLE_EQ(pts.back().p, 1.0);
}

TEST(Cdf, EmptyBuilders) {
  CdfBuilder cdf;
  EXPECT_TRUE(cdf.build().empty());
  EXPECT_TRUE(cdf.build_uniform(5).empty());
}

}  // namespace
}  // namespace erms::metrics
