#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/erms.h"
#include "core/erms_placement.h"
#include "core/standby.h"
#include "hdfs/cluster.h"

namespace erms::core {
namespace {

using hdfs::BlockId;
using hdfs::Cluster;
using hdfs::ClusterConfig;
using hdfs::FileId;
using hdfs::FileInfo;
using hdfs::NodeId;
using hdfs::NodeState;
using hdfs::Topology;
using util::MiB;

/// The paper's testbed shape: 18 nodes in 3 racks; the last 8 nodes form the
/// standby pool (10 active + 8 standby, Fig. 8's configuration).
struct Fixture {
  sim::Simulation sim;
  Topology topo = Topology::uniform(3, 6);
  std::unique_ptr<Cluster> cluster;
  std::vector<NodeId> pool;

  explicit Fixture(ClusterConfig cfg = {}) {
    cluster = std::make_unique<Cluster>(sim, topo, cfg);
    for (std::uint32_t n = 10; n < 18; ++n) {
      pool.push_back(NodeId{n});
    }
  }

  std::set<NodeId> pool_set() const { return {pool.begin(), pool.end()}; }

  void commission_pool() {
    for (const NodeId n : pool) {
      cluster->commission(n);
    }
    sim.run();
  }
};

// ---------- Algorithm 1 placement ----------

TEST(ErmsPlacement, BaseReplicasAvoidStandbyPool) {
  Fixture f;
  auto policy = std::make_shared<ErmsPlacementPolicy>(f.pool_set(), 3);
  f.cluster->set_placement_policy(policy);
  StandbyManager standby{*f.cluster, f.pool};  // powers the pool down
  f.commission_pool();                         // pool serving, but base replicas still avoid it
  for (int i = 0; i < 10; ++i) {
    const auto file = f.cluster->populate_file("/f" + std::to_string(i), 128 * MiB, 3);
    const FileInfo* info = f.cluster->metadata().find(*file);
    for (const BlockId b : info->blocks) {
      for (const NodeId n : f.cluster->locations(b)) {
        EXPECT_FALSE(policy->in_standby_pool(n))
            << "base replica on pool node " << n.value();
      }
    }
  }
}

TEST(ErmsPlacement, ExtraReplicasPreferStandby) {
  Fixture f;
  auto policy = std::make_shared<ErmsPlacementPolicy>(f.pool_set(), 3);
  f.cluster->set_placement_policy(policy);
  StandbyManager standby{*f.cluster, f.pool};
  const auto file = f.cluster->populate_file("/hot", 128 * MiB, 3);
  f.commission_pool();

  bool ok = false;
  f.cluster->change_replication(*file, 6, Cluster::IncreaseMode::kDirect,
                                [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  const FileInfo* info = f.cluster->metadata().find(*file);
  for (const BlockId b : info->blocks) {
    const auto locs = f.cluster->locations(b);
    ASSERT_EQ(locs.size(), 6u);
    std::size_t on_pool = 0;
    for (const NodeId n : locs) {
      on_pool += policy->in_standby_pool(n) ? 1 : 0;
    }
    EXPECT_EQ(on_pool, 3u) << "extra replicas should land on the pool";
  }
}

TEST(ErmsPlacement, ExtraReplicasFallBackToActiveWhenPoolDown) {
  Fixture f;
  auto policy = std::make_shared<ErmsPlacementPolicy>(f.pool_set(), 3);
  f.cluster->set_placement_policy(policy);
  StandbyManager standby{*f.cluster, f.pool};  // pool stays powered off
  const auto file = f.cluster->populate_file("/hot", 64 * MiB, 3);
  bool ok = false;
  f.cluster->change_replication(*file, 5, Cluster::IncreaseMode::kDirect,
                                [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  const auto locs = f.cluster->locations(f.cluster->metadata().find(*file)->blocks[0]);
  EXPECT_EQ(locs.size(), 5u);
  for (const NodeId n : locs) {
    EXPECT_FALSE(policy->in_standby_pool(n));
  }
}

TEST(ErmsPlacement, DeletionPrefersStandbyNodes) {
  Fixture f;
  auto policy = std::make_shared<ErmsPlacementPolicy>(f.pool_set(), 3);
  f.cluster->set_placement_policy(policy);
  StandbyManager standby{*f.cluster, f.pool};
  f.commission_pool();
  const auto file = f.cluster->populate_file("/hot", 64 * MiB, 3);
  f.cluster->change_replication(*file, 6, Cluster::IncreaseMode::kDirect, nullptr);
  f.sim.run();
  // Cool down: back to 3. All removals must come from pool nodes.
  f.cluster->change_replication(*file, 3, Cluster::IncreaseMode::kDirect, nullptr);
  f.sim.run();
  const auto locs = f.cluster->locations(f.cluster->metadata().find(*file)->blocks[0]);
  ASSERT_EQ(locs.size(), 3u);
  for (const NodeId n : locs) {
    EXPECT_FALSE(policy->in_standby_pool(n))
        << "active replicas must be untouched (no re-balancing)";
  }
}

TEST(ErmsPlacement, ParityGoesToActiveNodeWithFewestFileBlocks) {
  Fixture f;
  auto policy = std::make_shared<ErmsPlacementPolicy>(f.pool_set(), 3);
  f.cluster->set_placement_policy(policy);
  StandbyManager standby{*f.cluster, f.pool};
  const auto file = f.cluster->populate_file("/cold", 256 * MiB, 3);
  bool ok = false;
  f.cluster->encode_file(*file, 4, [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  const FileInfo* info = f.cluster->metadata().find(*file);
  for (const BlockId p : info->parity_blocks) {
    const auto locs = f.cluster->locations(p);
    ASSERT_EQ(locs.size(), 1u);
    EXPECT_FALSE(policy->in_standby_pool(locs.front()));
  }
  // Availability invariant: no node may hold so many of the file's shards
  // that its loss defeats the m=4 parity budget.
  for (const NodeId n : f.cluster->nodes()) {
    EXPECT_LE(f.cluster->file_blocks_on_node(*file, n), 4u);
  }
}

TEST(ErmsPlacement, ExtraReplicasPreferReplicaRacks) {
  Fixture f;
  auto policy = std::make_shared<ErmsPlacementPolicy>(f.pool_set(), 3);
  f.cluster->set_placement_policy(policy);
  StandbyManager standby{*f.cluster, f.pool};
  f.commission_pool();
  const auto file = f.cluster->populate_file("/hot", 64 * MiB, 3);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  std::set<std::uint32_t> base_racks;
  for (const NodeId n : f.cluster->locations(block)) {
    base_racks.insert(f.cluster->rack_of(n).value());
  }
  f.cluster->change_replication(*file, 4, Cluster::IncreaseMode::kDirect, nullptr);
  f.sim.run();
  // The one extra replica landed on a pool node in an existing rack.
  for (const NodeId n : f.cluster->locations(block)) {
    if (policy->in_standby_pool(n)) {
      EXPECT_TRUE(base_racks.contains(f.cluster->rack_of(n).value()));
    }
  }
}

// ---------- standby manager ----------

TEST(Standby, PoolStartsPoweredDown) {
  Fixture f;
  StandbyManager standby{*f.cluster, f.pool};
  EXPECT_EQ(standby.standby_count(), 8u);
  EXPECT_EQ(standby.commissioned_count(), 0u);
  for (const NodeId n : f.pool) {
    EXPECT_EQ(f.cluster->node(n).state, NodeState::kStandby);
  }
}

TEST(Standby, EnsureCommissionedBringsUpExactlyEnough) {
  Fixture f;
  StandbyManager standby{*f.cluster, f.pool};
  bool ready = false;
  standby.ensure_commissioned(3, [&] { ready = true; });
  EXPECT_FALSE(ready);
  f.sim.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(standby.commissioned_count(), 3u);
  EXPECT_EQ(standby.commissions(), 3u);
}

TEST(Standby, EnsureCommissionedIdempotent) {
  Fixture f;
  StandbyManager standby{*f.cluster, f.pool};
  standby.ensure_commissioned(3);
  f.sim.run();
  bool ready = false;
  standby.ensure_commissioned(2, [&] { ready = true; });
  f.sim.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(standby.commissioned_count(), 3u);  // nothing extra started
}

TEST(Standby, EnsureMoreThanPoolCapsOut) {
  Fixture f;
  StandbyManager standby{*f.cluster, f.pool};
  bool ready = false;
  standby.ensure_commissioned(100, [&] { ready = true; });
  f.sim.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(standby.commissioned_count(), 8u);
}

TEST(Standby, PowerDownOnlyDrainedNodes) {
  Fixture f;
  auto policy = std::make_shared<ErmsPlacementPolicy>(f.pool_set(), 3);
  f.cluster->set_placement_policy(policy);
  StandbyManager standby{*f.cluster, f.pool};
  standby.ensure_commissioned(8);
  f.sim.run();
  const auto file = f.cluster->populate_file("/hot", 64 * MiB, 3);
  f.cluster->change_replication(*file, 5, Cluster::IncreaseMode::kDirect, nullptr);
  f.sim.run();
  // Two pool nodes hold extra replicas; the other six must power down.
  EXPECT_EQ(standby.power_down_drained(), 6u);
  EXPECT_EQ(standby.commissioned_count(), 2u);
  // Cool down and drain the rest.
  f.cluster->change_replication(*file, 3, Cluster::IncreaseMode::kDirect, nullptr);
  f.sim.run();
  EXPECT_EQ(standby.power_down_drained(), 2u);
  EXPECT_EQ(standby.standby_count(), 8u);
}

// ---------- the ERMS manager ----------

ErmsConfig fast_config() {
  ErmsConfig cfg;
  cfg.thresholds.window = sim::seconds(60.0);
  cfg.thresholds.cold_age = sim::minutes(30.0);
  cfg.evaluation_period = sim::seconds(20.0);
  return cfg;
}

/// Drive a read storm against one file: `rate` reads/s for `duration`.
void storm(Fixture& f, const std::string& path, double rate, double duration_s,
           double start_s = 0.0) {
  const FileInfo* info = f.cluster->metadata().find_path(path);
  ASSERT_NE(info, nullptr);
  const FileId id = info->id;
  const int total = static_cast<int>(rate * duration_s);
  for (int i = 0; i < total; ++i) {
    const double t = start_s + i / rate;
    const NodeId client{static_cast<std::uint32_t>(i % 10)};
    f.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(t * 1e6)},
                      [&f, client, id] {
                        f.cluster->read_file(client, id, [](const hdfs::ReadOutcome&) {});
                      });
  }
}

TEST(ErmsManager, HotFileGetsExtraReplicasOnStandby) {
  Fixture f;
  ErmsManager erms{*f.cluster, f.pool, fast_config()};
  const auto file = f.cluster->populate_file("/hot", 128 * MiB, 3);
  erms.start();
  storm(f, "/hot", 2.0, 120.0);  // 2 opens/s ≫ τ_M·r/window
  // Inspect while the burst is still within the judge's window — by +5 min
  // ERMS will already have cooled the file back down.
  f.sim.run_until(sim::SimTime{sim::seconds(150.0).micros()});

  EXPECT_GT(erms.stats().hot_promotions, 0u);
  const FileInfo* info = f.cluster->metadata().find(*file);
  EXPECT_GT(info->replication, 3u);
  EXPECT_EQ(erms.current_type("/hot"), judge::DataType::kHot);
  // Extra replicas are on commissioned pool nodes.
  std::size_t pool_replicas = 0;
  for (const hdfs::BlockId b : info->blocks) {
    for (const NodeId n : f.cluster->locations(b)) {
      pool_replicas += erms.standby().in_pool(n) ? 1 : 0;
    }
  }
  EXPECT_GT(pool_replicas, 0u);
  erms.stop();
}

TEST(ErmsManager, CooledFileDropsBackAndPowersDown) {
  Fixture f;
  ErmsConfig cfg = fast_config();
  ErmsManager erms{*f.cluster, f.pool, cfg};
  const auto file = f.cluster->populate_file("/spike", 128 * MiB, 3);
  erms.start();
  storm(f, "/spike", 2.0, 120.0);
  f.sim.run_until(sim::SimTime{sim::seconds(150.0).micros()});
  ASSERT_GT(f.cluster->metadata().find(*file)->replication, 3u);

  // Silence. The window drains, the judge sees cooled data, the deferred
  // decrease runs when idle, and drained pool nodes power off.
  f.sim.run_until(sim::SimTime{sim::minutes(12.0).micros()});
  EXPECT_EQ(f.cluster->metadata().find(*file)->replication, 3u);
  EXPECT_GT(erms.stats().cooldowns, 0u);
  EXPECT_EQ(erms.standby().commissioned_count(), 0u);
  erms.stop();
}

TEST(ErmsManager, ColdFileGetsErasureCoded) {
  Fixture f;
  ErmsConfig cfg = fast_config();
  cfg.thresholds.cold_age = sim::minutes(5.0);
  ErmsManager erms{*f.cluster, f.pool, cfg};
  const auto file = f.cluster->populate_file("/cold", 256 * MiB, 3);
  erms.start();
  f.sim.run_until(sim::SimTime{sim::minutes(20.0).micros()});
  const FileInfo* info = f.cluster->metadata().find(*file);
  EXPECT_TRUE(info->erasure_coded);
  EXPECT_EQ(info->replication, 1u);
  EXPECT_EQ(info->parity_blocks.size(), 4u);
  EXPECT_GT(erms.stats().encodes, 0u);
  erms.stop();
}

TEST(ErmsManager, RewarmedColdFileDecodes) {
  Fixture f;
  ErmsConfig cfg = fast_config();
  cfg.thresholds.cold_age = sim::minutes(5.0);
  ErmsManager erms{*f.cluster, f.pool, cfg};
  const auto file = f.cluster->populate_file("/lazarus", 128 * MiB, 3);
  erms.start();
  f.sim.run_until(sim::SimTime{sim::minutes(20.0).micros()});
  ASSERT_TRUE(f.cluster->metadata().find(*file)->erasure_coded);

  storm(f, "/lazarus", 2.0, 120.0, /*start_s=*/21.0 * 60.0);
  // Check before the file has had time to go cold *again* (cold_age is only
  // 5 minutes in this config).
  f.sim.run_until(sim::SimTime{sim::minutes(25.0).micros()});
  const FileInfo* info = f.cluster->metadata().find(*file);
  EXPECT_FALSE(info->erasure_coded);
  EXPECT_GE(info->replication, 3u);
  EXPECT_GT(erms.stats().decodes, 0u);
  erms.stop();
}

TEST(ErmsManager, MachineAdsTrackCommissioning) {
  Fixture f;
  ErmsManager erms{*f.cluster, f.pool, fast_config()};
  f.cluster->populate_file("/hot", 128 * MiB, 3);
  erms.start();
  EXPECT_EQ(erms.scheduler().query_machines("State == \"standby\"").size(), 8u);
  storm(f, "/hot", 2.0, 120.0);
  f.sim.run_until(sim::SimTime{sim::seconds(150.0).micros()});
  EXPECT_LT(erms.scheduler().query_machines("State == \"standby\"").size(), 8u);
  EXPECT_GT(erms.scheduler().query_machines("State == \"active\"").size(), 10u);
  erms.stop();
}

TEST(ErmsManager, AutoCalibrateDerivesTauFromSessions) {
  Fixture f;
  ErmsConfig cfg = fast_config();
  cfg.auto_calibrate = true;
  ErmsManager erms{*f.cluster, f.pool, cfg};
  erms.start();
  // Default DataNodeConfig has 9 sessions per node; τ_M must track it.
  EXPECT_DOUBLE_EQ(erms.data_judge().thresholds().tau_M, 9.0);
  EXPECT_TRUE(erms.data_judge().thresholds().valid());
  erms.stop();
}

TEST(ErmsManager, PredictivePromotesRisingFileEarlier) {
  auto promoted_at = [](bool predictive) {
    Fixture f;
    ErmsConfig cfg = fast_config();
    cfg.predictive = predictive;
    cfg.predictor.alpha = 0.7;
    cfg.predictor.beta = 0.5;
    cfg.predictor.horizon_periods = 4.0;
    ErmsManager erms{*f.cluster, f.pool, cfg};
    const auto file = f.cluster->populate_file("/rise", 128 * MiB, 3);
    erms.start();
    // Accelerating read schedule.
    double at = 10.0;
    int i = 0;
    while (at < 600.0) {
      f.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(at * 1e6)},
                        [&f, &file, i] {
                          f.cluster->read_file(NodeId{static_cast<std::uint32_t>(i % 10)},
                                               *file, [](const hdfs::ReadOutcome&) {});
                        });
      at += 1.0 / (0.05 * std::pow(2.0, at / 120.0));
      ++i;
    }
    double when = -1.0;
    for (int s = 0; s < 700; ++s) {
      f.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(s * 1e6)},
                        [&f, &file, &when, s] {
                          if (when < 0 &&
                              f.cluster->metadata().find(*file)->replication > 3) {
                            when = s;
                          }
                        });
    }
    f.sim.run_until(sim::SimTime{sim::minutes(12.0).micros()});
    erms.stop();
    return when;
  };
  const double reactive = promoted_at(false);
  const double predictive = promoted_at(true);
  ASSERT_GT(reactive, 0.0);
  ASSERT_GT(predictive, 0.0);
  EXPECT_LT(predictive, reactive);
}

TEST(ErmsManager, JobLogRecordsActions) {
  Fixture f;
  ErmsManager erms{*f.cluster, f.pool, fast_config()};
  f.cluster->populate_file("/hot", 128 * MiB, 3);
  erms.start();
  storm(f, "/hot", 2.0, 120.0);
  f.sim.run_until(sim::SimTime{sim::minutes(5.0).micros()});
  const auto statuses = condor::replay_log(erms.scheduler().log());
  EXPECT_FALSE(statuses.empty());
  bool saw_increase = false;
  for (const auto& rec : erms.scheduler().log()) {
    saw_increase = saw_increase || rec.cmd == "increase_replication";
  }
  EXPECT_TRUE(saw_increase);
  erms.stop();
}

}  // namespace
}  // namespace erms::core
