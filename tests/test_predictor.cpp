#include <gtest/gtest.h>

#include "hdfs/types.h"
#include "judge/predictor.h"

namespace erms::judge {
namespace {

constexpr hdfs::FileId kX{1};
constexpr hdfs::FileId kA{1};
constexpr hdfs::FileId kB{2};

Thresholds thresholds() {
  Thresholds t;
  t.tau_M = 8.0;
  return t;
}

TEST(Predictor, UnseenFilePredictsZero) {
  AccessPredictor p;
  EXPECT_EQ(p.predict(kX), 0.0);
  EXPECT_EQ(p.tracked_files(), 0u);
}

TEST(Predictor, FirstObservationPrimesLevel) {
  AccessPredictor p;
  p.observe(kX, 10.0);
  EXPECT_DOUBLE_EQ(p.level(kX), 10.0);
  EXPECT_DOUBLE_EQ(p.trend(kX), 0.0);
  EXPECT_DOUBLE_EQ(p.predict(kX), 10.0);
}

TEST(Predictor, RisingSeriesPredictsAboveLast) {
  AccessPredictor p;
  for (const double v : {10.0, 20.0, 30.0, 40.0, 50.0}) {
    p.observe(kX, v);
  }
  EXPECT_GT(p.trend(kX), 0.0);
  EXPECT_GT(p.predict(kX), 50.0);
}

TEST(Predictor, FallingSeriesPredictsBelowLast) {
  AccessPredictor p;
  for (const double v : {50.0, 40.0, 30.0, 20.0, 10.0}) {
    p.observe(kX, v);
  }
  EXPECT_LT(p.trend(kX), 0.0);
  EXPECT_LT(p.predict(kX), 10.0);
}

TEST(Predictor, PredictionNeverNegative) {
  AccessPredictor p;
  for (const double v : {100.0, 50.0, 10.0, 1.0, 0.0, 0.0}) {
    p.observe(kX, v);
  }
  EXPECT_GE(p.predict(kX), 0.0);
}

TEST(Predictor, FlatSeriesConverges) {
  AccessPredictor p;
  for (int i = 0; i < 50; ++i) {
    p.observe(kX, 7.0);
  }
  EXPECT_NEAR(p.level(kX), 7.0, 0.01);
  EXPECT_NEAR(p.trend(kX), 0.0, 0.01);
  EXPECT_NEAR(p.predict(kX), 7.0, 0.05);
}

TEST(Predictor, IndependentFiles) {
  AccessPredictor p;
  p.observe(kA, 5.0);
  p.observe(kB, 100.0);
  EXPECT_DOUBLE_EQ(p.predict(kA), 5.0);
  EXPECT_DOUBLE_EQ(p.predict(kB), 100.0);
  EXPECT_EQ(p.tracked_files(), 2u);
}

TEST(Predictor, Forget) {
  AccessPredictor p;
  p.observe(kA, 5.0);
  p.forget(kA);
  EXPECT_EQ(p.predict(kA), 0.0);
  EXPECT_EQ(p.tracked_files(), 0u);
}

TEST(Predictor, LongerHorizonExtrapolatesFurther) {
  AccessPredictor::Config near;
  near.horizon_periods = 1.0;
  AccessPredictor::Config far;
  far.horizon_periods = 4.0;
  AccessPredictor pn{near};
  AccessPredictor pf{far};
  for (const double v : {10.0, 20.0, 30.0}) {
    pn.observe(kX, v);
    pf.observe(kX, v);
  }
  EXPECT_GT(pf.predict(kX), pn.predict(kX));
}

/// Property sweep: for any smoothing configuration, a strictly rising
/// series yields a positive trend and a forecast above the smoothed level.
class PredictorConfigSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(PredictorConfigSweep, RisingSeriesForecastsUpward) {
  const auto [alpha, beta, horizon] = GetParam();
  AccessPredictor::Config cfg;
  cfg.alpha = alpha;
  cfg.beta = beta;
  cfg.horizon_periods = horizon;
  AccessPredictor p{cfg};
  for (int i = 1; i <= 20; ++i) {
    p.observe(kX, i * 10.0);
  }
  EXPECT_GT(p.trend(kX), 0.0);
  EXPECT_GT(p.predict(kX), p.level(kX));
  EXPECT_GT(p.predict(kX), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PredictorConfigSweep,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8), ::testing::Values(0.1, 0.5),
                       ::testing::Values(1.0, 3.0)));

// ---------- PredictiveJudge ----------

FileObservation obs(std::uint64_t accesses) {
  FileObservation o;
  o.file = kX;
  o.accesses = accesses;
  o.replication = 3;
  o.block_count = 4;
  o.last_access = sim::SimTime{0};
  return o;
}

TEST(PredictiveJudge, PromotesRisingFileBeforeThreshold) {
  AccessPredictor::Config cfg;
  cfg.horizon_periods = 3.0;
  PredictiveJudge judge{thresholds(), cfg};
  const sim::SimTime now{1};
  // Ramp: 4, 10, 16, 22 accesses. τ_M·r = 24, so none of these is hot on
  // observed counts — but the trend forecasts past the threshold.
  Classification last;
  bool promoted_early = false;
  for (const std::uint64_t n : {4u, 10u, 16u, 22u}) {
    last = judge.classify(obs(n), now, 3, 10);
    if (n < 24 && last.type == DataType::kHot) {
      promoted_early = true;
    }
  }
  EXPECT_TRUE(promoted_early);
  EXPECT_GT(judge.predictive_promotions(), 0u);
}

TEST(PredictiveJudge, SteadyColdFileNotPromoted) {
  PredictiveJudge judge{thresholds()};
  const sim::SimTime now{sim::hours(30.0).micros()};
  Classification c;
  for (int i = 0; i < 10; ++i) {
    c = judge.classify(obs(0), now, 3, 10);
  }
  EXPECT_EQ(c.type, DataType::kCold);  // facts, not forecasts, drive cooling
  EXPECT_EQ(judge.predictive_promotions(), 0u);
}

TEST(PredictiveJudge, ObservedHotDoesNotCountAsPredictive) {
  PredictiveJudge judge{thresholds()};
  const sim::SimTime now{1};
  const Classification c = judge.classify(obs(100), now, 3, 10);
  EXPECT_EQ(c.type, DataType::kHot);
  EXPECT_EQ(judge.predictive_promotions(), 0u);
}

TEST(PredictiveJudge, FallingFileUsesObservedCounts) {
  PredictiveJudge judge{thresholds()};
  const sim::SimTime now{1};
  // A file that was hot and is crashing down must not stay "hot" because of
  // stale forecasts.
  judge.classify(obs(100), now, 3, 10);
  Classification c;
  for (const std::uint64_t n : {10u, 2u, 0u}) {
    c = judge.classify(obs(n), now, 3, 10);
  }
  EXPECT_NE(c.type, DataType::kHot);
}

}  // namespace
}  // namespace erms::judge
