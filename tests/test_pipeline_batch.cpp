// Coverage for the batched audit replay path: on_audit_batch must tell a
// byte-identical story to per-event on_audit for any batch size and engine
// shape, the cluster's batched audit sink must deliver the same records the
// per-event sink does, and the steady-state batch loop must not allocate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "cep/engine.h"
#include "cep/sharded_engine.h"
#include "hdfs/cluster.h"
#include "judge/feed.h"
#include "util/bytes.h"

// Allocation-counting hook: every non-aligned heap allocation in the test
// binary bumps the counter. The zero-allocation test brackets a steady-state
// replay loop with it. (Aligned overloads are left to the defaults — they
// pair with the matching aligned deletes, so mixing is safe.)
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace erms {
namespace {

audit::AuditEvent make_event(double t_s, std::int64_t fid, bool open,
                             std::int64_t blk, std::int64_t dn) {
  audit::AuditEvent e;
  e.time = sim::SimTime{static_cast<std::int64_t>(t_s * 1e6)};
  e.cmd = open ? "open" : "read";
  e.src = "/batch/f" + std::to_string(fid);
  e.fid = fid;
  if (!open) {
    e.block = blk;
    e.datanode = dn;
  }
  return e;
}

/// Deterministic pseudo-random audit stream (xorshift, no RNG dependency).
std::vector<audit::AuditEvent> scripted_stream(std::size_t count) {
  std::vector<audit::AuditEvent> events;
  events.reserve(count);
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    const auto fid = static_cast<std::int64_t>(1 + h % 53);
    const bool open = (h >> 8) % 4 == 0;
    const auto blk = static_cast<std::int64_t>(200 + (h >> 16) % 7);
    const auto dn = static_cast<std::int64_t>((h >> 24) % 11);
    events.push_back(make_event(static_cast<double>(i) * 0.05, fid, open, blk, dn));
  }
  return events;
}

/// Serialize everything the feed exposes — all four windowed relations plus
/// the ingestion counter — so two feeds can be compared byte for byte.
std::string feed_story(const judge::AccessStatsFeed& feed) {
  std::ostringstream out;
  feed.for_each_file_access([&](hdfs::FileId f, std::uint64_t n) {
    out << "file " << f.value() << ' ' << n << '\n';
  });
  feed.for_each_block_access([&](hdfs::FileId f, std::int64_t b, std::uint64_t n) {
    out << "block " << f.value() << ' ' << b << ' ' << n << '\n';
  });
  feed.for_each_node_access([&](std::int64_t d, std::uint64_t n) {
    out << "node " << d << ' ' << n << '\n';
  });
  feed.for_each_file_node_access(
      [&](hdfs::FileId f, std::int64_t d, std::uint64_t n) {
        out << "filenode " << f.value() << ' ' << d << ' ' << n << '\n';
      });
  out << "ingested " << feed.events_ingested() << '\n';
  return out.str();
}

/// Replay `events` per-event into one feed and in `batch_size` chunks into
/// another, comparing the full story at several mid-stream checkpoints (so
/// window eviction is exercised mid-churn, not just at the end).
void check_batch_matches_per_event(cep::EngineBase& event_engine,
                                   cep::EngineBase& batch_engine,
                                   std::size_t batch_size) {
  const sim::SimDuration window = sim::seconds(30.0);
  judge::AccessStatsFeed event_feed{event_engine, window};
  judge::AccessStatsFeed batch_feed{batch_engine, window};
  const std::vector<audit::AuditEvent> events = scripted_stream(4000);

  std::size_t done = 0;
  int checkpoints = 0;
  while (done < events.size()) {
    const std::size_t n = std::min(batch_size, events.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      event_feed.on_audit(events[done + i]);
    }
    batch_feed.on_audit_batch(events.data() + done, n);
    done += n;
    if (done % 1000 < batch_size || done == events.size()) {
      const sim::SimTime now = events[done - 1].time;
      event_feed.advance_to(now);
      batch_feed.advance_to(now);
      EXPECT_EQ(feed_story(batch_feed), feed_story(event_feed))
          << "diverged after " << done << " events (batch_size=" << batch_size
          << ")";
      ++checkpoints;
    }
  }
  // A batch larger than the stream gives a single end-of-stream checkpoint;
  // smaller batches must have compared mid-stream too.
  EXPECT_GE(checkpoints, batch_size >= events.size() ? 1 : 4);
  EXPECT_EQ(batch_engine.events_processed(), event_engine.events_processed());
}

TEST(PipelineBatch, BatchSizesMatchPerEventOnScalarEngine) {
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    SCOPED_TRACE("batch_size " + std::to_string(batch_size));
    cep::Engine event_engine;
    cep::Engine batch_engine;
    check_batch_matches_per_event(event_engine, batch_engine, batch_size);
  }
}

TEST(PipelineBatch, BatchSizesMatchPerEventOnShardedEngine) {
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    SCOPED_TRACE("batch_size " + std::to_string(batch_size));
    cep::ShardedEngine event_engine{{.shards = 3}};
    cep::ShardedEngine batch_engine{{.shards = 3}};
    check_batch_matches_per_event(event_engine, batch_engine, batch_size);
  }
}

TEST(PipelineBatch, BatchedScalarMatchesBatchedSharded) {
  cep::Engine scalar;
  cep::ShardedEngine sharded{{.shards = 4}};
  check_batch_matches_per_event(scalar, sharded, 4096);
}

// ---- cluster batched audit sink ---------------------------------------------

/// Drive identical read traffic against two clusters, one with the per-event
/// audit sink and one with the batched sink, and compare the rendered audit
/// lines. flush_audit() must deliver the tail on demand.
TEST(PipelineBatch, ClusterBatchSinkDeliversSameRecords) {
  for (const std::size_t flush_events : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    SCOPED_TRACE("flush_events " + std::to_string(flush_events));
    std::vector<std::string> per_event_lines;
    std::vector<std::string> batch_lines;
    for (int mode = 0; mode < 2; ++mode) {
      sim::Simulation sim;
      hdfs::Cluster cluster{sim, hdfs::Topology::uniform(2, 4), hdfs::ClusterConfig{}};
      std::vector<hdfs::FileId> files;
      for (int i = 0; i < 5; ++i) {
        files.push_back(*cluster.populate_file("/sink/f" + std::to_string(i),
                                               64 * util::MiB, 2));
      }
      std::vector<std::string>& lines = mode == 0 ? per_event_lines : batch_lines;
      if (mode == 0) {
        cluster.set_audit_sink(
            [&lines](const audit::AuditEvent& e) { lines.push_back(e.to_line()); });
      } else {
        cluster.set_audit_batch_sink(
            [&lines](const audit::AuditEvent* events, std::size_t n) {
              for (std::size_t i = 0; i < n; ++i) {
                lines.push_back(events[i].to_line());
              }
            },
            flush_events);
      }
      for (int i = 0; i < 40; ++i) {
        sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i) * 250000},
                        [&cluster, &files, i] {
                          cluster.read_file(hdfs::NodeId{static_cast<std::uint32_t>(i % 8)},
                                            files[static_cast<std::size_t>(i) % files.size()],
                                            [](const hdfs::ReadOutcome&) {});
                        });
      }
      sim.run_until(sim::SimTime{sim::seconds(30.0).micros()});
      cluster.flush_audit();
    }
    EXPECT_FALSE(per_event_lines.empty());
    EXPECT_EQ(batch_lines, per_event_lines);
  }
}

// Swapping sinks flushes buffered records first, so no event is lost or
// reordered across a sink change.
TEST(PipelineBatch, SinkSwapFlushesBufferedRecords) {
  sim::Simulation sim;
  hdfs::Cluster cluster{sim, hdfs::Topology::uniform(2, 4), hdfs::ClusterConfig{}};
  const hdfs::FileId f = *cluster.populate_file("/sink/swap", 64 * util::MiB, 2);
  std::vector<std::string> lines;
  cluster.set_audit_batch_sink(
      [&lines](const audit::AuditEvent* events, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
          lines.push_back(events[i].to_line());
        }
      },
      1024);  // threshold far beyond the traffic: everything stays buffered
  for (int i = 0; i < 6; ++i) {
    sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i) * 100000},
                    [&cluster, f, i] {
                      cluster.read_file(hdfs::NodeId{static_cast<std::uint32_t>(i % 8)}, f,
                                        [](const hdfs::ReadOutcome&) {});
                    });
  }
  sim.run_until(sim::SimTime{sim::seconds(10.0).micros()});
  EXPECT_TRUE(lines.empty());  // still below the flush threshold
  // Installing a different sink must first hand the buffered tail to the old
  // batch sink.
  cluster.set_audit_sink(nullptr);
  EXPECT_FALSE(lines.empty());
  const std::size_t delivered = lines.size();
  cluster.flush_audit();
  EXPECT_EQ(lines.size(), delivered);  // nothing left to flush
}

// ---- zero-allocation steady state -------------------------------------------

// After warm-up, replaying batches over a stable working set must make zero
// heap allocations: slotted events, group slots, window rings, key scratch
// and the feed's batch all reuse their capacity.
TEST(PipelineBatch, SteadyStateBatchReplayDoesNotAllocate) {
  cep::Engine engine;
  judge::AccessStatsFeed feed{engine, sim::seconds(10.0)};

  constexpr std::size_t kBatch = 512;
  constexpr double kDt = 0.05;  // 200 events of window per group at 10 s
  std::vector<audit::AuditEvent> events;
  events.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    events.push_back(make_event(0.0, static_cast<std::int64_t>(1 + i % 97), i % 4 == 0,
                                static_cast<std::int64_t>(300 + i % 5),
                                static_cast<std::int64_t>(i % 9)));
  }
  double t_s = 0.0;
  const auto replay_round = [&] {
    for (audit::AuditEvent& e : events) {
      t_s += kDt;
      e.time = sim::SimTime{static_cast<std::int64_t>(t_s * 1e6)};
    }
    feed.on_audit_batch(events.data(), events.size());
  };

  // Warm up well past one full window so pools, rings and buckets reach
  // their steady-state sizes (including tombstone-driven rehashes, which
  // reuse the same capacity).
  for (int round = 0; round < 40; ++round) {
    replay_round();
  }

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 20; ++round) {
    replay_round();
  }
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across 20 steady-state batches";
}

}  // namespace
}  // namespace erms
