// End-to-end integration tests: the full ERMS loop (audit → CEP → judge →
// Condor → cluster actions) driven by realistic workloads.
#include <gtest/gtest.h>

#include "core/erms.h"
#include "hdfs/balancer.h"
#include "hdfs/block_scanner.h"
#include "hdfs/cluster.h"
#include "hdfs/failure_detector.h"
#include "mapred/jobrunner.h"
#include "workload/swim.h"

namespace erms {
namespace {

using hdfs::Cluster;
using hdfs::ClusterConfig;
using hdfs::FileInfo;
using hdfs::NodeId;
using hdfs::Topology;
using util::GiB;
using util::MiB;

struct Testbed {
  sim::Simulation sim;
  Topology topo = Topology::uniform(3, 6);
  std::unique_ptr<Cluster> cluster;
  std::vector<NodeId> pool;

  Testbed() {
    cluster = std::make_unique<Cluster>(sim, topo, ClusterConfig{});
    for (std::uint32_t n = 10; n < 18; ++n) {
      pool.push_back(NodeId{n});
    }
  }
};

core::ErmsConfig fast_erms() {
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::seconds(60.0);
  cfg.thresholds.cold_age = sim::minutes(15.0);
  cfg.evaluation_period = sim::seconds(20.0);
  return cfg;
}

/// The full lifecycle of §I: created → hot → cooled → normal → cold →
/// re-warmed, exercised through the real control loop.
TEST(Lifecycle, HotCooledColdRewarm) {
  Testbed t;
  core::ErmsManager erms{*t.cluster, t.pool, fast_erms()};
  const auto file = t.cluster->populate_file("/life", 128 * MiB, 3);
  erms.start();

  // Phase 1 (0-3 min): heavy access → hot.
  for (int i = 0; i < 300; ++i) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 0.6e6)}, [&t, &file] {
      t.cluster->read_file(NodeId{static_cast<std::uint32_t>(rand() % 10)}, *file,
                           [](const hdfs::ReadOutcome&) {});
    });
  }
  t.sim.run_until(sim::SimTime{sim::minutes(3.0).micros()});
  const FileInfo* info = t.cluster->metadata().find(*file);
  EXPECT_GT(info->replication, 3u) << "hot phase should add replicas";
  const std::uint32_t hot_rep = info->replication;

  // Phase 2 (3-10 min): silence → cooled → back to default replication.
  t.sim.run_until(sim::SimTime{sim::minutes(10.0).micros()});
  info = t.cluster->metadata().find(*file);
  EXPECT_LT(info->replication, hot_rep);
  EXPECT_EQ(info->replication, 3u);

  // Phase 3 (10-30 min): prolonged silence → cold → erasure coded.
  t.sim.run_until(sim::SimTime{sim::minutes(30.0).micros()});
  info = t.cluster->metadata().find(*file);
  EXPECT_TRUE(info->erasure_coded);
  EXPECT_EQ(info->replication, 1u);

  // Phase 4 (30+ min): the file re-heats → decoded and replicated again.
  for (int i = 0; i < 300; ++i) {
    t.sim.schedule_at(
        sim::SimTime{sim::minutes(31.0).micros() + static_cast<std::int64_t>(i * 0.6e6)},
        [&t, &file] {
          t.cluster->read_file(NodeId{static_cast<std::uint32_t>(rand() % 10)}, *file,
                               [](const hdfs::ReadOutcome&) {});
        });
  }
  t.sim.run_until(sim::SimTime{sim::minutes(40.0).micros()});
  info = t.cluster->metadata().find(*file);
  EXPECT_FALSE(info->erasure_coded);
  EXPECT_GE(info->replication, 3u);

  const auto& stats = erms.stats();
  EXPECT_GT(stats.hot_promotions, 0u);
  EXPECT_GT(stats.cooldowns, 0u);
  EXPECT_GT(stats.encodes, 0u);
  EXPECT_GT(stats.decodes, 0u);
  erms.stop();
}

/// ERMS survives node failures mid-flight: data stays available and the
/// control loop keeps functioning.
TEST(FailureInjection, ErmsKeepsClusterAvailable) {
  Testbed t;
  core::ErmsManager erms{*t.cluster, t.pool, fast_erms()};
  std::vector<hdfs::FileId> files;
  for (int i = 0; i < 5; ++i) {
    files.push_back(*t.cluster->populate_file("/f" + std::to_string(i), 256 * MiB, 3));
  }
  erms.start();

  // Background reads + two failures.
  for (int i = 0; i < 200; ++i) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 1.5e6)}, [&t, &files, i] {
      t.cluster->read_file(NodeId{static_cast<std::uint32_t>(i % 10)},
                           files[static_cast<std::size_t>(i) % files.size()],
                           [](const hdfs::ReadOutcome&) {});
    });
  }
  t.sim.schedule_at(sim::SimTime{sim::minutes(1.0).micros()},
                    [&t] { t.cluster->fail_node(NodeId{2}); });
  t.sim.schedule_at(sim::SimTime{sim::minutes(2.0).micros()},
                    [&t] { t.cluster->fail_node(NodeId{7}); });
  t.sim.run_until(sim::SimTime{sim::minutes(10.0).micros()});

  EXPECT_EQ(t.cluster->blocks_lost(), 0u);
  for (const hdfs::FileId f : files) {
    EXPECT_TRUE(t.cluster->file_available(f));
    const FileInfo* info = t.cluster->metadata().find(f);
    for (const hdfs::BlockId b : info->blocks) {
      EXPECT_GE(t.cluster->locations(b).size(), 3u);
    }
  }
  erms.stop();
}

/// A MapReduce workload over ERMS completes and benefits from extra
/// replicas of the hot file.
TEST(MapReduceOverErms, HotFileJobsSpeedUp) {
  auto run = [](bool with_erms) {
    Testbed t;
    std::unique_ptr<core::ErmsManager> erms;
    if (with_erms) {
      core::ErmsConfig cfg = fast_erms();
      cfg.thresholds.tau_M = 4.0;
      erms = std::make_unique<core::ErmsManager>(*t.cluster, t.pool, cfg);
      erms->start();
    } else {
      // Vanilla: all 18 nodes stay active, no manager.
    }
    t.cluster->populate_file("/hot", 512 * MiB, 3);
    mapred::MapRedConfig mr;
    mr.scheduler = mapred::SchedulerKind::kFifo;
    mapred::JobRunner runner{*t.cluster, mr};
    // A steady stream of jobs against the same hot file.
    for (int i = 0; i < 30; ++i) {
      t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 10e6)},
                        [&runner] { runner.submit("/hot"); });
    }
    t.sim.run_until(sim::SimTime{sim::minutes(30.0).micros()});
    if (erms) {
      erms->stop();
    }
    return runner.report();
  };
  const auto vanilla = run(false);
  const auto elastic = run(true);
  EXPECT_EQ(vanilla.jobs, 30u);
  EXPECT_EQ(elastic.jobs, 30u);
  // ERMS raises locality for the hot file's tasks.
  EXPECT_GT(elastic.mean_locality, vanilla.mean_locality);
}

/// Storage accounting across the ERMS lifecycle (the Fig. 5 behaviour):
/// extra replicas inflate usage during the hot phase; erasure coding brings
/// cold usage below triplication.
TEST(StorageAccounting, ElasticityShowsInUsedBytes) {
  Testbed t;
  core::ErmsConfig cfg = fast_erms();
  cfg.thresholds.cold_age = sim::minutes(8.0);
  core::ErmsManager erms{*t.cluster, t.pool, cfg};
  const auto file = t.cluster->populate_file("/data", 512 * MiB, 3);
  const std::uint64_t triplicated = t.cluster->used_bytes_total();
  erms.start();

  for (int i = 0; i < 200; ++i) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 0.5e6)}, [&t, &file] {
      t.cluster->read_file(NodeId{3}, *file, [](const hdfs::ReadOutcome&) {});
    });
  }
  t.sim.run_until(sim::SimTime{sim::minutes(4.0).micros()});
  EXPECT_GT(t.cluster->used_bytes_total(), triplicated);

  t.sim.run_until(sim::SimTime{sim::minutes(30.0).micros()});
  EXPECT_LT(t.cluster->used_bytes_total(), triplicated);
  erms.stop();
}

/// Everything-on soak: ERMS control loop + heartbeat failure detection +
/// background block scanner + a MapReduce trace, with a silent node crash
/// and silent replica corruption injected mid-run. The cluster must come out
/// the other side with zero lost blocks, every file available and at its
/// target replication, and all control-plane jobs in terminal states.
TEST(Soak, EverythingOnSurvivesAnHour) {
  Testbed t;
  core::ErmsConfig cfg = fast_erms();
  cfg.thresholds.cold_age = sim::minutes(25.0);
  core::ErmsManager erms{*t.cluster, t.pool, cfg};

  hdfs::FailureDetector::Config fd_cfg;
  fd_cfg.heartbeat_interval = sim::seconds(3.0);
  fd_cfg.tolerance = 10;
  hdfs::FailureDetector detector{*t.cluster, fd_cfg};

  hdfs::BlockScanner::Config scan_cfg;
  scan_cfg.round_interval = sim::seconds(20.0);
  scan_cfg.blocks_per_round = 16;
  hdfs::BlockScanner scanner{*t.cluster, scan_cfg};

  // Dataset + workload.
  workload::SwimConfig swim;
  swim.file_count = 16;
  swim.duration = sim::minutes(40.0);
  swim.epoch = sim::minutes(20.0);
  swim.mean_interarrival_s = 4.0;
  swim.zipf_exponent = 1.6;
  swim.min_file_bytes = 128 * MiB;
  swim.max_file_bytes = 1 * GiB;
  const workload::Trace trace = workload::SwimTraceGenerator{swim}.generate(77);
  for (const workload::FileSpec& file : trace.files) {
    t.cluster->populate_file(file.path, file.bytes);
  }

  erms.start();
  detector.start();
  scanner.start();
  mapred::JobRunner runner{*t.cluster, mapred::MapRedConfig{}};
  runner.submit_trace(trace);

  // Fault injection: a silent crash at 10 min and bit rot at 20 min.
  t.sim.schedule_at(sim::SimTime{sim::minutes(10.0).micros()},
                    [&] { detector.mute(hdfs::NodeId{6}); });
  t.sim.schedule_at(sim::SimTime{sim::minutes(20.0).micros()}, [&t] {
    const hdfs::FileInfo* info = t.cluster->metadata().find_path("/data/part-0");
    ASSERT_NE(info, nullptr);
    const hdfs::BlockId block = info->blocks[0];
    const auto locs = t.cluster->locations(block);
    ASSERT_FALSE(locs.empty());
    t.cluster->corrupt_replica(block, locs.front());
  });

  t.sim.run_until(sim::SimTime{sim::hours(1.0).micros()});

  // The crash was detected and repaired.
  EXPECT_EQ(detector.failures_declared(), 1u);
  EXPECT_EQ(t.cluster->node(hdfs::NodeId{6}).state, hdfs::NodeState::kDead);
  // The corruption was found (by scanner or a client read) and healed.
  EXPECT_GE(t.cluster->corruptions_detected(), 1u);
  // No data loss; every file fully replicated and available.
  EXPECT_EQ(t.cluster->blocks_lost(), 0u);
  for (const hdfs::FileId file : t.cluster->metadata().file_ids()) {
    const hdfs::FileInfo* info = t.cluster->metadata().find(file);
    EXPECT_TRUE(t.cluster->file_available(file)) << info->path;
    if (!info->erasure_coded) {
      for (const hdfs::BlockId b : info->blocks) {
        EXPECT_GE(t.cluster->locations(b).size(), info->replication) << info->path;
      }
    }
  }
  // The workload completed.
  EXPECT_EQ(runner.results().size(), trace.jobs.size());
  // The job log replays to exactly the live scheduler state (jobs caught
  // mid-flight at the cutoff are fine; inconsistency is not).
  const auto statuses = condor::replay_log(erms.scheduler().log());
  EXPECT_FALSE(statuses.empty());
  std::size_t completed = 0;
  for (const auto& [id, status] : statuses) {
    ASSERT_NE(erms.scheduler().find(id), nullptr);
    EXPECT_EQ(erms.scheduler().find(id)->status, status);
    completed += status == condor::JobStatus::kCompleted ? 1 : 0;
  }
  EXPECT_GT(completed, 0u);
  // The cluster ends roughly balanced across the serving fleet.
  hdfs::Balancer balancer{*t.cluster, hdfs::Balancer::Config{0.25, 4, 10'000}};
  EXPECT_TRUE(balancer.is_balanced());

  scanner.stop();
  detector.stop();
  erms.stop();
}

}  // namespace
}  // namespace erms
