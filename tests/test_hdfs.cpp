#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "hdfs/block_scanner.h"
#include "hdfs/cluster.h"
#include "hdfs/failure_detector.h"
#include "hdfs/namespace.h"
#include "hdfs/topology.h"
#include "obs/observability.h"

namespace erms::hdfs {
namespace {

using util::MiB;

struct Fixture {
  sim::Simulation sim;
  Topology topo;
  std::unique_ptr<Cluster> cluster;

  explicit Fixture(std::size_t racks = 3, std::size_t per_rack = 6, ClusterConfig cfg = {}) {
    topo = Topology::uniform(racks, per_rack);
    cluster = std::make_unique<Cluster>(sim, topo, cfg);
  }
};

// ---------- topology ----------

TEST(Topology, UniformLayout) {
  const Topology t = Topology::uniform(3, 6);
  EXPECT_EQ(t.rack_count(), 3u);
  EXPECT_EQ(t.node_count(), 18u);
  EXPECT_EQ(t.rack_of(NodeId{0}), RackId{0});
  EXPECT_EQ(t.rack_of(NodeId{7}), RackId{1});
  EXPECT_EQ(t.rack_of(NodeId{17}), RackId{2});
  EXPECT_EQ(t.nodes_in_rack(RackId{1}).size(), 6u);
}

TEST(Topology, PerNodeConfig) {
  Topology t;
  const RackId r = t.add_rack();
  DataNodeConfig big;
  big.capacity_bytes = 1000;
  const NodeId n = t.add_node(r, big);
  EXPECT_EQ(t.config_of(n).capacity_bytes, 1000u);
}

// ---------- namespace ----------

TEST(Namespace, SplitsIntoBlocks) {
  Namespace ns;
  const auto file = ns.create("/f", 200 * MiB, 64 * MiB, 3);
  ASSERT_TRUE(file.has_value());
  const FileInfo* info = ns.find(*file);
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->blocks.size(), 4u);  // 64+64+64+8
  EXPECT_EQ(ns.find_block(info->blocks[0])->size, 64 * MiB);
  EXPECT_EQ(ns.find_block(info->blocks[3])->size, 8 * MiB);
  EXPECT_EQ(ns.find_block(info->blocks[2])->index, 2u);
}

TEST(Namespace, RejectsDuplicatesAndEmpty) {
  Namespace ns;
  EXPECT_TRUE(ns.create("/f", MiB, MiB, 3).has_value());
  EXPECT_FALSE(ns.create("/f", MiB, MiB, 3).has_value());
  EXPECT_FALSE(ns.create("/g", 0, MiB, 3).has_value());
}

TEST(Namespace, LookupByPath) {
  Namespace ns;
  const auto file = ns.create("/a/b", MiB, MiB, 3);
  EXPECT_EQ(ns.find_path("/a/b")->id, *file);
  EXPECT_EQ(ns.find_path("/nope"), nullptr);
}

TEST(Namespace, RemoveReturnsAllBlocks) {
  Namespace ns;
  const auto file = ns.create("/f", 3 * MiB, MiB, 3);
  ns.add_parity_block(*file, MiB);
  const auto removed = ns.remove(*file);
  EXPECT_EQ(removed.size(), 4u);
  EXPECT_EQ(ns.find(*file), nullptr);
  EXPECT_EQ(ns.file_count(), 0u);
}

TEST(Namespace, ParityLifecycle) {
  Namespace ns;
  const auto file = ns.create("/f", 2 * MiB, MiB, 3);
  const BlockId p1 = ns.add_parity_block(*file, MiB);
  const BlockId p2 = ns.add_parity_block(*file, MiB);
  EXPECT_TRUE(ns.find_block(p1)->is_parity);
  EXPECT_EQ(ns.find(*file)->parity_blocks.size(), 2u);
  const auto cleared = ns.clear_parity_blocks(*file);
  EXPECT_EQ(cleared, (std::vector<BlockId>{p1, p2}));
  EXPECT_EQ(ns.find_block(p1), nullptr);
  EXPECT_TRUE(ns.find(*file)->parity_blocks.empty());
}

TEST(Namespace, LogicalBytesCountsReplicationAndParity) {
  Namespace ns;
  const auto file = ns.create("/f", 10 * MiB, MiB, 3);
  EXPECT_EQ(ns.logical_bytes(), 30 * MiB);
  ns.set_replication(*file, 5);
  EXPECT_EQ(ns.logical_bytes(), 50 * MiB);
  ns.add_parity_block(*file, MiB);
  EXPECT_EQ(ns.logical_bytes(), 51 * MiB);
}

TEST(Namespace, FsimageRoundTrip) {
  Namespace ns;
  const auto a = ns.create("/a", 200 * MiB, 64 * MiB, 3);
  const auto b = ns.create("/dir/b", 64 * MiB, 64 * MiB, 5);
  ns.add_parity_block(*a, 64 * MiB);
  ns.add_parity_block(*a, 64 * MiB);
  ns.set_erasure_coded(*a, true);
  ns.set_replication(*a, 1);

  std::stringstream image;
  ns.save_image(image);
  Namespace back;
  ASSERT_TRUE(back.load_image(image));

  EXPECT_EQ(back.file_count(), 2u);
  const FileInfo* fa = back.find_path("/a");
  ASSERT_NE(fa, nullptr);
  EXPECT_EQ(fa->id, *a);
  EXPECT_EQ(fa->size, 200 * MiB);
  EXPECT_EQ(fa->replication, 1u);
  EXPECT_TRUE(fa->erasure_coded);
  EXPECT_EQ(fa->blocks.size(), 4u);
  EXPECT_EQ(fa->parity_blocks.size(), 2u);
  EXPECT_EQ(back.find_block(fa->blocks[3])->size, 8 * MiB);
  EXPECT_TRUE(back.find_block(fa->parity_blocks[1])->is_parity);
  const FileInfo* fb = back.find_path("/dir/b");
  ASSERT_NE(fb, nullptr);
  EXPECT_EQ(fb->replication, 5u);
  EXPECT_EQ(back.logical_bytes(), ns.logical_bytes());

  // Id generators continue past the loaded ids: no collisions.
  const auto c = back.create("/c", MiB, MiB, 3);
  ASSERT_TRUE(c.has_value());
  EXPECT_GT(c->value(), b->value());
}

TEST(Namespace, FsimageRejectsGarbage) {
  Namespace ns;
  std::stringstream bad1{"not an image\n"};
  EXPECT_FALSE(ns.load_image(bad1));
  EXPECT_EQ(ns.file_count(), 0u);
  std::stringstream bad2{"fsimage v1\nfile oops\nend\n"};
  EXPECT_FALSE(ns.load_image(bad2));
  std::stringstream truncated{"fsimage v1\nfile 1 /a 100 100 3 0\n"};  // no "end"
  EXPECT_FALSE(ns.load_image(truncated));
}

TEST(Namespace, FsimageEmpty) {
  Namespace ns;
  std::stringstream image;
  ns.save_image(image);
  Namespace back;
  EXPECT_TRUE(back.load_image(image));
  EXPECT_EQ(back.file_count(), 0u);
}

// ---------- placement (default policy) ----------

TEST(DefaultPlacement, SpreadsAcrossRacksNoDuplicates) {
  Fixture f;
  for (int i = 0; i < 20; ++i) {
    const auto file =
        f.cluster->populate_file("/p" + std::to_string(i), 64 * MiB, 3);
    ASSERT_TRUE(file.has_value());
    const FileInfo* info = f.cluster->metadata().find(*file);
    for (const BlockId b : info->blocks) {
      const auto locs = f.cluster->locations(b);
      ASSERT_EQ(locs.size(), 3u);
      // No node holds two replicas of the same block.
      const std::set<NodeId> distinct(locs.begin(), locs.end());
      EXPECT_EQ(distinct.size(), 3u);
      // Default HDFS: exactly two racks for three replicas.
      std::set<std::uint32_t> racks;
      for (const NodeId n : locs) {
        racks.insert(f.cluster->rack_of(n).value());
      }
      EXPECT_EQ(racks.size(), 2u);
    }
  }
}

TEST(DefaultPlacement, HighReplicationUsesMoreRacks) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 6);
  const FileInfo* info = f.cluster->metadata().find(*file);
  const auto locs = f.cluster->locations(info->blocks[0]);
  EXPECT_EQ(locs.size(), 6u);
  std::set<std::uint32_t> racks;
  for (const NodeId n : locs) {
    racks.insert(f.cluster->rack_of(n).value());
  }
  EXPECT_EQ(racks.size(), 3u);  // remaining replicas prefer unused racks
}

TEST(DefaultPlacement, CapsAtDistinctNodes) {
  Fixture f(1, 4);
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 10);
  const FileInfo* info = f.cluster->metadata().find(*file);
  EXPECT_EQ(f.cluster->locations(info->blocks[0]).size(), 4u);
}

TEST(DefaultPlacement, RespectsCapacity) {
  ClusterConfig cfg;
  cfg.block_size = 64 * MiB;
  Topology topo;
  const RackId r = topo.add_rack();
  DataNodeConfig small;
  small.capacity_bytes = 32 * MiB;  // cannot hold one block
  DataNodeConfig normal;
  topo.add_node(r, small);
  topo.add_node(r, normal);
  topo.add_node(r, normal);
  sim::Simulation sim;
  Cluster cluster{sim, topo, cfg};
  const auto file = cluster.populate_file("/f", 64 * MiB, 3);
  const auto locs = cluster.locations(cluster.metadata().find(*file)->blocks[0]);
  EXPECT_EQ(locs.size(), 2u);
  for (const NodeId n : locs) {
    EXPECT_NE(n, NodeId{0});
  }
}

// ---------- reads ----------

TEST(ClusterRead, LocalReadIsDiskBound) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 3);
  const FileInfo* info = f.cluster->metadata().find(*file);
  const NodeId holder = f.cluster->locations(info->blocks[0]).front();
  ReadOutcome out;
  f.cluster->read_block(holder, info->blocks[0], [&](const ReadOutcome& o) { out = o; });
  f.sim.run();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.locality, ReadLocality::kNodeLocal);
  EXPECT_EQ(out.bytes, 64 * MiB);
  // 64 MiB at 80 MB/s disk ≈ 0.839 s.
  EXPECT_NEAR(out.duration.seconds(), 64.0 * MiB / 80.0e6, 1e-3);
}

TEST(ClusterRead, PrefersLocalOverRemote) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 3);
  const FileInfo* info = f.cluster->metadata().find(*file);
  const auto locs = f.cluster->locations(info->blocks[0]);
  // From every holder the read must be node-local.
  for (const NodeId n : locs) {
    ReadOutcome out;
    f.cluster->read_block(n, info->blocks[0], [&](const ReadOutcome& o) { out = o; });
    f.sim.run();
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.locality, ReadLocality::kNodeLocal);
  }
}

TEST(ClusterRead, NoSuchBlock) {
  Fixture f;
  ReadOutcome out;
  f.cluster->read_block(NodeId{0}, BlockId{999}, [&](const ReadOutcome& o) { out = o; });
  f.sim.run();
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, ReadError::kNoSuchBlock);
}

TEST(ClusterRead, SessionLimitRejects) {
  ClusterConfig cfg;
  Topology topo;
  const RackId r = topo.add_rack();
  DataNodeConfig dn;
  dn.max_sessions = 2;
  for (int i = 0; i < 4; ++i) {
    topo.add_node(r, dn);
  }
  sim::Simulation sim;
  Cluster cluster{sim, topo, cfg};
  const auto file = cluster.populate_file("/f", 64 * MiB, 1);  // single replica
  const BlockId block = cluster.metadata().find(*file)->blocks[0];

  int ok = 0;
  int busy = 0;
  for (int i = 0; i < 5; ++i) {
    cluster.read_block(NodeId{3}, block, [&](const ReadOutcome& o) {
      if (o.ok) {
        ++ok;
      } else if (o.error == ReadError::kAllBusy) {
        ++busy;
      }
    });
  }
  sim.run();
  EXPECT_EQ(ok, 2);    // session cap
  EXPECT_EQ(busy, 3);  // rejected fast
  EXPECT_EQ(cluster.reads_rejected(), 3u);
  EXPECT_EQ(cluster.reads_completed(), 2u);
}

TEST(ClusterRead, SessionsReleaseAfterRead) {
  ClusterConfig cfg;
  Topology topo;
  const RackId r = topo.add_rack();
  DataNodeConfig dn;
  dn.max_sessions = 1;
  topo.add_node(r, dn);
  topo.add_node(r, dn);
  sim::Simulation sim;
  Cluster cluster{sim, topo, cfg};
  const auto file = cluster.populate_file("/f", MiB, 1);
  const BlockId block = cluster.metadata().find(*file)->blocks[0];
  bool first = false;
  cluster.read_block(NodeId{1}, block, [&](const ReadOutcome& o) { first = o.ok; });
  sim.run();
  ASSERT_TRUE(first);
  bool second = false;
  cluster.read_block(NodeId{1}, block, [&](const ReadOutcome& o) { second = o.ok; });
  sim.run();
  EXPECT_TRUE(second);
}

TEST(ClusterRead, MoreReplicasMoreConcurrentCapacity) {
  // The Fig. 8 mechanism in miniature: total admissible concurrent reads
  // scale with the replica count.
  for (const std::uint32_t rep : {1u, 2u, 3u}) {
    Fixture f;
    const auto file = f.cluster->populate_file("/f", 64 * MiB, rep);
    const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
    int ok = 0;
    for (int i = 0; i < 40; ++i) {
      f.cluster->read_block(NodeId{static_cast<std::uint32_t>(i % 18)}, block,
                            [&](const ReadOutcome& o) { ok += o.ok ? 1 : 0; });
    }
    f.sim.run();
    EXPECT_EQ(ok, static_cast<int>(rep * 9));  // 9 sessions per node
  }
}

TEST(ClusterRead, FileReadAggregates) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 200 * MiB, 3);
  ReadOutcome out;
  f.cluster->read_file(NodeId{0}, *file, [&](const ReadOutcome& o) { out = o; });
  f.sim.run();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.bytes, 200 * MiB);
  EXPECT_GT(out.duration.seconds(), 0.0);
}

// ---------- writes ----------

TEST(ClusterWrite, PipelinePlacesAllReplicas) {
  Fixture f;
  bool done = false;
  const auto file =
      f.cluster->write_file("/w", 128 * MiB, NodeId{2}, [&](bool ok) { done = ok; });
  ASSERT_TRUE(file.has_value());
  f.sim.run();
  ASSERT_TRUE(done);
  const FileInfo* info = f.cluster->metadata().find(*file);
  for (const BlockId b : info->blocks) {
    EXPECT_EQ(f.cluster->locations(b).size(), 3u);
  }
  // First replica lands on the writer (default policy).
  EXPECT_TRUE(f.cluster->node_has_block(NodeId{2}, info->blocks[0]));
  EXPECT_GT(f.sim.now().seconds(), 0.0);
}

TEST(ClusterWrite, NodeFailureMidWriteAbortsAndAccountsPartialBytes) {
  Fixture f;
  obs::Observability obs{1024};
  f.cluster->set_observability(&obs);
  bool done = true;
  const auto file =
      f.cluster->write_file("/w", 128 * MiB, NodeId{2}, [&](bool ok) { done = ok; });
  ASSERT_TRUE(file.has_value());
  // Kill the writer while the pipeline is mid-transfer.
  f.sim.schedule_after(sim::seconds(0.2), [&f] { f.cluster->fail_node(NodeId{2}); });
  f.sim.run();
  EXPECT_FALSE(done) << "write must report failure when its pipeline is torn down";
  EXPECT_GT(f.cluster->network().flows_aborted(), 0u);
  EXPECT_GT(f.cluster->network().bytes_aborted(), 0u);
  // The teardown is attributable: a kFlowAborted trace event carries the
  // partial byte count.
  bool saw_abort = false;
  for (const obs::TraceEvent& ev : obs.trace().snapshot()) {
    if (ev.kind == obs::ActionKind::kFlowAborted) {
      saw_abort = true;
      EXPECT_GT(ev.bytes_moved, 0u);
    }
  }
  EXPECT_TRUE(saw_abort);
  f.cluster->set_observability(nullptr);
}

TEST(ClusterWrite, DuplicatePathFails) {
  Fixture f;
  f.cluster->populate_file("/w", MiB, 3);
  bool result = true;
  EXPECT_FALSE(f.cluster->write_file("/w", MiB, NodeId{0}, [&](bool ok) { result = ok; })
                   .has_value());
  f.sim.run();
  EXPECT_FALSE(result);
}

TEST(ClusterWrite, UsedBytesTracked) {
  Fixture f;
  f.cluster->populate_file("/f", 100 * MiB, 3);
  EXPECT_EQ(f.cluster->used_bytes_total(), 300 * MiB);
  const FileId id = f.cluster->metadata().find_path("/f")->id;
  f.cluster->remove_file(id);
  EXPECT_EQ(f.cluster->used_bytes_total(), 0u);
}

// ---------- replication changes ----------

TEST(Replication, DirectIncreaseReachesTarget) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 128 * MiB, 3);
  bool ok = false;
  f.cluster->change_replication(*file, 6, Cluster::IncreaseMode::kDirect,
                                [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  const FileInfo* info = f.cluster->metadata().find(*file);
  EXPECT_EQ(info->replication, 6u);
  for (const BlockId b : info->blocks) {
    EXPECT_EQ(f.cluster->locations(b).size(), 6u);
  }
}

TEST(Replication, OneByOneReachesTargetButSlower) {
  Fixture f1;
  const auto fa = f1.cluster->populate_file("/f", 256 * MiB, 3);
  bool done1 = false;
  f1.cluster->change_replication(*fa, 7, Cluster::IncreaseMode::kDirect,
                                 [&](bool) { done1 = true; });
  f1.sim.run();
  const double direct_s = f1.sim.now().seconds();

  Fixture f2;
  const auto fb = f2.cluster->populate_file("/f", 256 * MiB, 3);
  bool done2 = false;
  f2.cluster->change_replication(*fb, 7, Cluster::IncreaseMode::kOneByOne,
                                 [&](bool) { done2 = true; });
  f2.sim.run();
  const double onebyone_s = f2.sim.now().seconds();

  ASSERT_TRUE(done1);
  ASSERT_TRUE(done2);
  const FileInfo* info = f2.cluster->metadata().find(*fb);
  for (const BlockId b : info->blocks) {
    EXPECT_EQ(f2.cluster->locations(b).size(), 7u);
  }
  // Fig. 7's claim: direct is faster.
  EXPECT_LT(direct_s, onebyone_s);
}

TEST(Replication, DecreaseFreesReplicas) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 128 * MiB, 6);
  bool ok = false;
  f.cluster->change_replication(*file, 2, Cluster::IncreaseMode::kDirect,
                                [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  const FileInfo* info = f.cluster->metadata().find(*file);
  for (const BlockId b : info->blocks) {
    EXPECT_EQ(f.cluster->locations(b).size(), 2u);
  }
  EXPECT_EQ(f.cluster->used_bytes_total(), 2 * 128 * MiB);
}

TEST(Replication, NoopChange) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", MiB, 3);
  bool ok = false;
  f.cluster->change_replication(*file, 3, Cluster::IncreaseMode::kDirect,
                                [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_TRUE(ok);
}

TEST(Replication, UnknownFileFails) {
  Fixture f;
  bool ok = true;
  f.cluster->change_replication(FileId{404}, 3, Cluster::IncreaseMode::kDirect,
                                [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_FALSE(ok);
}

// ---------- erasure coding (metadata/flows level) ----------

TEST(ErasureCoding, EncodeProducesParityAndSingleReplicas) {
  Fixture f;
  const auto file = f.cluster->populate_file("/cold", 256 * MiB, 3);
  bool ok = false;
  f.cluster->encode_file(*file, 4, [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  const FileInfo* info = f.cluster->metadata().find(*file);
  EXPECT_TRUE(info->erasure_coded);
  EXPECT_EQ(info->replication, 1u);
  EXPECT_EQ(info->parity_blocks.size(), 4u);
  for (const BlockId b : info->blocks) {
    EXPECT_EQ(f.cluster->locations(b).size(), 1u);
  }
  for (const BlockId p : info->parity_blocks) {
    EXPECT_EQ(f.cluster->locations(p).size(), 1u);
  }
  // Storage: 4 data blocks + 4 parity = 8 blocks of 64 MiB.
  EXPECT_EQ(f.cluster->used_bytes_total(), 8 * 64 * MiB);
}

TEST(ErasureCoding, EncodeSavesStorageVsTriplication) {
  Fixture f;
  const auto file = f.cluster->populate_file("/cold", 512 * MiB, 3);
  const std::uint64_t before = f.cluster->used_bytes_total();  // 1536 MiB
  f.cluster->encode_file(*file, 4, nullptr);
  f.sim.run();
  const std::uint64_t after = f.cluster->used_bytes_total();
  // 512 MiB of data at replication 1 plus 4 parity blocks of 64 MiB: exactly
  // half of the triplicated footprint.
  EXPECT_EQ(after, 768 * MiB);
  EXPECT_LE(after, before / 2);
}

TEST(ErasureCoding, DoubleEncodeFails) {
  Fixture f;
  const auto file = f.cluster->populate_file("/cold", 128 * MiB, 3);
  f.cluster->encode_file(*file, 4, nullptr);
  f.sim.run();
  bool ok = true;
  f.cluster->encode_file(*file, 4, [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_FALSE(ok);
}

TEST(ErasureCoding, SingleBlockFile) {
  // k=1: the paper's RS(1,4) corner — parities cost more than triplication,
  // but the mechanics must still hold.
  Fixture f;
  const auto file = f.cluster->populate_file("/tiny", 64 * MiB, 3);
  bool ok = false;
  f.cluster->encode_file(*file, 4, [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  const FileInfo* info = f.cluster->metadata().find(*file);
  EXPECT_EQ(info->parity_blocks.size(), 4u);
  EXPECT_EQ(f.cluster->locations(info->blocks[0]).size(), 1u);
  // Losing the single data replica: reconstructible from any 1 of 4 parities.
  f.cluster->fail_node(f.cluster->locations(info->blocks[0]).front());
  EXPECT_TRUE(f.cluster->file_available(*file));
}

TEST(ErasureCoding, DecodeNonCodedFails) {
  Fixture f;
  const auto file = f.cluster->populate_file("/plain", 64 * MiB, 3);
  bool ok = true;
  f.cluster->decode_file(*file, 3, [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_FALSE(ok);
}

TEST(ErasureCoding, ReadsStillServeWhileCoded) {
  Fixture f;
  const auto file = f.cluster->populate_file("/cold", 256 * MiB, 3);
  f.cluster->encode_file(*file, 4, nullptr);
  f.sim.run();
  ReadOutcome out;
  f.cluster->read_file(NodeId{2}, *file, [&](const ReadOutcome& o) { out = o; });
  f.sim.run();
  EXPECT_TRUE(out.ok);
  EXPECT_FALSE(out.degraded);  // replicas exist, no reconstruction needed
  EXPECT_EQ(out.bytes, 256 * MiB);
}

TEST(ErasureCoding, DecodeRestoresReplication) {
  Fixture f;
  const auto file = f.cluster->populate_file("/cold", 256 * MiB, 3);
  f.cluster->encode_file(*file, 4, nullptr);
  f.sim.run();
  bool ok = false;
  f.cluster->decode_file(*file, 3, [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  const FileInfo* info = f.cluster->metadata().find(*file);
  EXPECT_FALSE(info->erasure_coded);
  EXPECT_EQ(info->replication, 3u);
  EXPECT_TRUE(info->parity_blocks.empty());
  for (const BlockId b : info->blocks) {
    EXPECT_EQ(f.cluster->locations(b).size(), 3u);
  }
}

TEST(ErasureCoding, DegradedReadReconstructs) {
  Fixture f;
  const auto file = f.cluster->populate_file("/cold", 256 * MiB, 3);
  f.cluster->encode_file(*file, 4, nullptr);
  f.sim.run();
  const FileInfo* info = f.cluster->metadata().find(*file);
  const BlockId victim_block = info->blocks[0];
  // Fail the single holder of block 0.
  const NodeId holder = f.cluster->locations(victim_block).front();
  f.cluster->fail_node(holder);
  // Read the file while re-replication may still be running: the degraded
  // path must serve the missing block from the stripe.
  ReadOutcome out;
  f.cluster->read_file(NodeId{(holder.value() + 1) % 18}, *file,
                       [&](const ReadOutcome& o) { out = o; });
  f.sim.run();
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.degraded);
}

// ---------- failures ----------

TEST(Failure, ReReplicationRestoresFactor) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 128 * MiB, 3);
  const FileInfo* info = f.cluster->metadata().find(*file);
  const NodeId victim = f.cluster->locations(info->blocks[0]).front();
  f.cluster->fail_node(victim);
  f.sim.run();
  for (const BlockId b : info->blocks) {
    EXPECT_EQ(f.cluster->locations(b).size(), 3u) << "block " << b.value();
    for (const NodeId n : f.cluster->locations(b)) {
      EXPECT_NE(n, victim);
    }
  }
  EXPECT_GT(f.cluster->rereplications_completed(), 0u);
}

TEST(Failure, AllReplicasLostWithoutStripeIsDataLoss) {
  Fixture f(1, 3);
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 1);
  const NodeId holder =
      f.cluster->locations(f.cluster->metadata().find(*file)->blocks[0]).front();
  f.cluster->fail_node(holder);
  f.sim.run();
  EXPECT_EQ(f.cluster->blocks_lost(), 1u);
  EXPECT_FALSE(f.cluster->file_available(*file));
}

TEST(Failure, TriplicationSurvivesTwoNodeFailures) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 128 * MiB, 3);
  const FileInfo* info = f.cluster->metadata().find(*file);
  const auto locs = f.cluster->locations(info->blocks[0]);
  f.cluster->fail_node(locs[0]);
  f.cluster->fail_node(locs[1]);
  EXPECT_TRUE(f.cluster->file_available(*file));
  f.sim.run();
  EXPECT_EQ(f.cluster->locations(info->blocks[0]).size(), 3u);
}

TEST(Failure, DeadNodeServesNothing) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 3);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  for (const NodeId n : f.cluster->locations(block)) {
    f.cluster->fail_node(n);
  }
  ReadOutcome out;
  f.cluster->read_block(NodeId{0}, block, [&](const ReadOutcome& o) { out = o; });
  // Run only a moment — re-replication cannot have finished (no source).
  f.sim.run_until(f.sim.now() + sim::millis(1));
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, ReadError::kNoReplica);
}

// ---------- standby lifecycle ----------

TEST(Standby, CommissionDelayThenActive) {
  Fixture f;
  f.cluster->set_standby(NodeId{17});
  EXPECT_EQ(f.cluster->node(NodeId{17}).state, NodeState::kStandby);
  bool ready = false;
  f.cluster->commission(NodeId{17}, [&] { ready = true; });
  EXPECT_FALSE(ready);
  f.sim.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(f.cluster->node(NodeId{17}).state, NodeState::kActive);
  EXPECT_NEAR(f.sim.now().seconds(), 30.0, 1e-6);  // default startup delay
}

TEST(Standby, CommissionActiveNodeIsImmediate) {
  Fixture f;
  bool ready = false;
  f.cluster->commission(NodeId{3}, [&] { ready = true; });
  f.sim.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(f.sim.now().micros(), 0);
}

TEST(Standby, ReturnToStandbyRequiresEmpty) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 18);  // everywhere
  EXPECT_FALSE(f.cluster->return_to_standby(NodeId{5}));
  f.cluster->remove_file(*file);
  EXPECT_TRUE(f.cluster->return_to_standby(NodeId{5}));
  EXPECT_EQ(f.cluster->node(NodeId{5}).state, NodeState::kStandby);
}

TEST(Standby, StandbyNodesGetNoReplicas) {
  Fixture f;
  for (std::uint32_t n = 12; n < 18; ++n) {
    f.cluster->set_standby(NodeId{n});
  }
  for (int i = 0; i < 10; ++i) {
    f.cluster->populate_file("/f" + std::to_string(i), 128 * MiB, 3);
  }
  for (std::uint32_t n = 12; n < 18; ++n) {
    EXPECT_TRUE(f.cluster->node(NodeId{n}).blocks.empty());
  }
}

TEST(Standby, EnergyAccountingFavoursStandby) {
  Fixture f;
  f.cluster->set_standby(NodeId{17});
  f.sim.schedule_after(sim::hours(1.0), [] {});
  f.sim.run();
  EXPECT_GT(f.cluster->energy_joules_total(), 0.0);
  const DataNode& standby = f.cluster->node(NodeId{17});
  const DataNode& active = f.cluster->node(NodeId{0});
  EXPECT_NEAR(standby.energy_joules, 15.0 * 3600.0, 1.0);
  EXPECT_NEAR(active.energy_joules, 250.0 * 3600.0, 1.0);
}

// ---------- heartbeat failure detection ----------

TEST(FailureDetection, MutedNodeDeclaredDeadAfterTolerance) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 128 * MiB, 3);
  FailureDetector::Config cfg;
  cfg.heartbeat_interval = sim::seconds(3.0);
  cfg.tolerance = 5;
  FailureDetector detector{*f.cluster, cfg};
  detector.start();

  const NodeId victim =
      f.cluster->locations(f.cluster->metadata().find(*file)->blocks[0]).front();
  f.sim.schedule_after(sim::seconds(10.0), [&] { detector.mute(victim); });
  f.sim.run_until(sim::SimTime{sim::seconds(12.0).micros()});
  EXPECT_EQ(f.cluster->node(victim).state, NodeState::kActive);  // not yet

  f.sim.run_until(sim::SimTime{sim::minutes(3.0).micros()});
  EXPECT_EQ(f.cluster->node(victim).state, NodeState::kDead);
  EXPECT_EQ(detector.failures_declared(), 1u);
  // Re-replication restored the factor.
  for (const BlockId b : f.cluster->metadata().find(*file)->blocks) {
    EXPECT_EQ(f.cluster->locations(b).size(), 3u);
  }
  detector.stop();
}

TEST(FailureDetection, UnmuteBeforeDeadlineEscapes) {
  Fixture f;
  FailureDetector::Config cfg;
  cfg.heartbeat_interval = sim::seconds(3.0);
  cfg.tolerance = 10;
  FailureDetector detector{*f.cluster, cfg};
  detector.start();
  detector.mute(NodeId{5});
  f.sim.schedule_after(sim::seconds(15.0), [&] { detector.unmute(NodeId{5}); });
  f.sim.run_until(sim::SimTime{sim::minutes(2.0).micros()});
  EXPECT_EQ(f.cluster->node(NodeId{5}).state, NodeState::kActive);
  EXPECT_EQ(detector.failures_declared(), 0u);
  detector.stop();
}

TEST(FailureDetection, HealthyClusterNeverDeclares) {
  Fixture f;
  FailureDetector detector{*f.cluster};
  detector.start();
  f.sim.run_until(sim::SimTime{sim::minutes(5.0).micros()});
  EXPECT_EQ(detector.failures_declared(), 0u);
  for (const NodeId n : f.cluster->nodes()) {
    EXPECT_EQ(f.cluster->node(n).state, NodeState::kActive);
  }
  detector.stop();
}

TEST(FailureDetection, SilenceTracksMutedNodes) {
  Fixture f;
  FailureDetector detector{*f.cluster};
  detector.start();
  detector.mute(NodeId{3});
  f.sim.run_until(sim::SimTime{sim::seconds(9.5).micros()});
  EXPECT_GE(detector.silence(NodeId{3}).seconds(), 9.0);
  EXPECT_LE(detector.silence(NodeId{0}).seconds(), 3.1);
  detector.stop();
}

TEST(FailureDetection, ToleranceBoundaryIsExclusive) {
  // deadline = interval × tolerance = 15 s. Silence of exactly 15 s (the
  // tick at t=15) must NOT declare the node dead — only silence strictly
  // greater (the t=18 tick) does. Guards the > vs >= off-by-one.
  Fixture f;
  FailureDetector::Config cfg;
  cfg.heartbeat_interval = sim::seconds(3.0);
  cfg.tolerance = 5;
  FailureDetector detector{*f.cluster, cfg};
  detector.start();
  detector.mute(NodeId{4});  // last heartbeat stays at t=0

  f.sim.run_until(sim::SimTime{sim::seconds(15.5).micros()});
  EXPECT_EQ(f.cluster->node(NodeId{4}).state, NodeState::kActive)
      << "silence == deadline must not declare death";
  EXPECT_EQ(detector.failures_declared(), 0u);

  f.sim.run_until(sim::SimTime{sim::seconds(18.5).micros()});
  EXPECT_EQ(f.cluster->node(NodeId{4}).state, NodeState::kDead);
  EXPECT_EQ(detector.failures_declared(), 1u);
  detector.stop();
}

TEST(FailureDetection, UnmuteAfterDeathReregistersAndDropsSurplus) {
  // The node was declared dead, recovery restored its replicas elsewhere,
  // then the node comes back (datanode re-registration): it revives, and
  // its stale replicas — now surplus — are reconciled away.
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 128 * MiB, 3);
  FailureDetector::Config cfg;
  cfg.heartbeat_interval = sim::seconds(3.0);
  cfg.tolerance = 5;
  FailureDetector detector{*f.cluster, cfg};
  detector.start();

  const NodeId victim =
      f.cluster->locations(f.cluster->metadata().find(*file)->blocks[0]).front();
  const std::size_t held_before = f.cluster->node(victim).blocks.size();
  ASSERT_GT(held_before, 0u);
  f.sim.schedule_after(sim::seconds(5.0), [&] { detector.mute(victim); });
  f.sim.run_until(sim::SimTime{sim::minutes(3.0).micros()});
  ASSERT_EQ(f.cluster->node(victim).state, NodeState::kDead);
  for (const BlockId b : f.cluster->metadata().find(*file)->blocks) {
    ASSERT_EQ(f.cluster->locations(b).size(), 3u);  // recovery done
  }

  detector.unmute(victim);
  EXPECT_EQ(f.cluster->node(victim).state, NodeState::kActive);
  EXPECT_EQ(detector.reregistrations(), 1u);
  EXPECT_EQ(f.cluster->nodes_revived(), 1u);
  // Every stale replica was surplus; none rejoined the block map.
  for (const BlockId b : f.cluster->metadata().find(*file)->blocks) {
    EXPECT_EQ(f.cluster->locations(b).size(), 3u);
    EXPECT_FALSE(f.cluster->node_has_block(victim, b));
  }
  // And the revived node is not instantly re-declared dead.
  f.sim.run_until(sim::SimTime{sim::minutes(4.0).micros()});
  EXPECT_EQ(f.cluster->node(victim).state, NodeState::kActive);
  EXPECT_EQ(detector.failures_declared(), 1u);
  detector.stop();
}

TEST(FailureDetection, EarlyRevivalReclaimsStaleReplicas) {
  // The node revives before recovery replaced its replicas: still-needed
  // stale replicas rejoin the block map instantly instead of being copied.
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 3);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  const NodeId victim = f.cluster->locations(block).front();

  f.sim.schedule_after(sim::seconds(1.0), [&] { f.cluster->fail_node(victim); });
  f.sim.schedule_after(sim::seconds(1.5), [&] {
    ASSERT_EQ(f.cluster->locations(block).size(), 2u);
    ASSERT_TRUE(f.cluster->revive_node(victim));
    // Reconciliation is instant: the on-disk replica counts again.
    EXPECT_TRUE(f.cluster->node_has_block(victim, block));
    EXPECT_EQ(f.cluster->locations(block).size(), 3u);
  });
  f.sim.run_until(sim::SimTime{sim::minutes(2.0).micros()});
  EXPECT_GE(f.cluster->locations(block).size(), 3u);
  EXPECT_EQ(f.cluster->blocks_lost(), 0u);
}

// ---------- corruption & checksums ----------

TEST(Corruption, ReadDetectsDropsAndRetries) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 3);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  const auto locs = f.cluster->locations(block);
  // Corrupt the replica a local reader would pick.
  f.cluster->corrupt_replica(block, locs.front());
  ASSERT_TRUE(f.cluster->is_corrupt(block, locs.front()));

  ReadOutcome out;
  f.cluster->read_block(locs.front(), block, [&](const ReadOutcome& o) { out = o; });
  f.sim.run();
  EXPECT_TRUE(out.ok) << "read must transparently retry a clean replica";
  EXPECT_EQ(f.cluster->corruptions_detected(), 1u);
  EXPECT_FALSE(f.cluster->node_has_block(locs.front(), block));
  // Re-replication restores the factor with clean copies.
  EXPECT_EQ(f.cluster->locations(block).size(), 3u);
  for (const NodeId n : f.cluster->locations(block)) {
    EXPECT_FALSE(f.cluster->is_corrupt(block, n));
  }
}

TEST(Corruption, AllReplicasCorruptFailsRead) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 2);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  for (const NodeId n : f.cluster->locations(block)) {
    f.cluster->corrupt_replica(block, n);
  }
  ReadOutcome out;
  f.cluster->read_block(NodeId{0}, block, [&](const ReadOutcome& o) { out = o; });
  f.sim.run();
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(f.cluster->corruptions_detected(), 2u);
  // Every copy was corrupt, so recovery has no clean source and the block
  // is honestly lost. (An earlier version of the checksum protocol sampled
  // corruption at flow *completion*; a recovery copy racing the detecting
  // read could then launder the corrupt bytes into a "recovered" replica
  // and report zero lost blocks.)
  EXPECT_EQ(f.cluster->blocks_lost(), 1u);
}

TEST(Corruption, CopyFromCorruptSourceFailsAndHeals) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 1);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  const NodeId holder = f.cluster->locations(block).front();
  f.cluster->corrupt_replica(block, holder);
  // Raising replication must discover the corruption; with no clean source
  // the data is ultimately unreadable, and the corrupt copy must not spread.
  f.cluster->change_replication(*file, 3, Cluster::IncreaseMode::kDirect, nullptr);
  f.sim.run();
  EXPECT_GE(f.cluster->corruptions_detected(), 1u);
  for (const NodeId n : f.cluster->locations(block)) {
    EXPECT_FALSE(f.cluster->is_corrupt(block, n));
  }
}

TEST(BlockScanner, FindsCorruptionWithoutReads) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 256 * MiB, 3);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[2];
  const NodeId holder = f.cluster->locations(block).front();
  f.cluster->corrupt_replica(block, holder);

  BlockScanner::Config cfg;
  cfg.round_interval = sim::seconds(10.0);
  cfg.blocks_per_round = 4;
  BlockScanner scanner{*f.cluster, cfg};
  scanner.start();
  f.sim.run_until(sim::SimTime{sim::minutes(5.0).micros()});

  EXPECT_GE(scanner.corruptions_found(), 1u);
  EXPECT_GT(scanner.replicas_scanned(), 0u);
  EXPECT_FALSE(f.cluster->is_corrupt(block, holder));
  EXPECT_EQ(f.cluster->locations(block).size(), 3u);  // healed
  for (const NodeId n : f.cluster->locations(block)) {
    EXPECT_FALSE(f.cluster->is_corrupt(block, n));
  }
  scanner.stop();
}

TEST(BlockScanner, CleanClusterScansQuietly) {
  Fixture f;
  f.cluster->populate_file("/f", 256 * MiB, 3);
  BlockScanner scanner{*f.cluster};
  scanner.start();
  f.sim.run_until(sim::SimTime{sim::minutes(3.0).micros()});
  EXPECT_GT(scanner.replicas_scanned(), 0u);
  EXPECT_EQ(scanner.corruptions_found(), 0u);
  EXPECT_EQ(f.cluster->corruptions_detected(), 0u);
  scanner.stop();
}

TEST(BlockScanner, StartStopIdempotent) {
  Fixture f;
  BlockScanner scanner{*f.cluster};
  scanner.start();
  scanner.start();
  EXPECT_TRUE(scanner.running());
  scanner.stop();
  EXPECT_FALSE(scanner.running());
  f.sim.run_until(sim::SimTime{sim::minutes(1.0).micros()});
  EXPECT_EQ(scanner.replicas_scanned(), 0u);  // stopped before the first round
}

TEST(Corruption, OnNonexistentReplicaIgnored) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 1);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  NodeId outsider{0};
  for (const NodeId n : f.cluster->nodes()) {
    if (!f.cluster->node_has_block(n, block)) {
      outsider = n;
      break;
    }
  }
  f.cluster->corrupt_replica(block, outsider);
  EXPECT_FALSE(f.cluster->is_corrupt(block, outsider));
}

// ---------- decommission ----------

TEST(Decommission, DrainsAndPowersDown) {
  Fixture f;
  std::vector<FileId> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back(*f.cluster->populate_file("/f" + std::to_string(i), 128 * MiB, 3));
  }
  // Pick a node that holds blocks.
  NodeId victim{0};
  for (const NodeId n : f.cluster->nodes()) {
    if (!f.cluster->node(n).blocks.empty()) {
      victim = n;
      break;
    }
  }
  bool ok = false;
  f.cluster->decommission(victim, [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(f.cluster->node(victim).state, NodeState::kStandby);
  EXPECT_TRUE(f.cluster->node(victim).blocks.empty());
  // Every block keeps its full replication on other nodes.
  for (const FileId file : files) {
    const FileInfo* info = f.cluster->metadata().find(file);
    for (const BlockId b : info->blocks) {
      EXPECT_EQ(f.cluster->locations(b).size(), 3u);
      for (const NodeId n : f.cluster->locations(b)) {
        EXPECT_NE(n, victim);
      }
    }
  }
}

TEST(Decommission, EmptyNodeIsImmediate) {
  Fixture f;
  bool ok = false;
  f.cluster->decommission(NodeId{4}, [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.cluster->node(NodeId{4}).state, NodeState::kStandby);
}

TEST(Decommission, NonActiveNodeRejected) {
  Fixture f;
  f.cluster->set_standby(NodeId{7});
  bool ok = true;
  f.cluster->decommission(NodeId{7}, [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_FALSE(ok);
}

TEST(Decommission, KeepsServingReadsWhileDraining) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 1);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  const NodeId holder = f.cluster->locations(block).front();
  f.cluster->decommission(holder, nullptr);
  // Immediately read: the decommissioning node must still serve.
  ReadOutcome out;
  f.cluster->read_block(holder, block, [&](const ReadOutcome& o) { out = o; });
  f.sim.run();
  EXPECT_TRUE(out.ok);
  // Afterwards the block lives elsewhere.
  EXPECT_FALSE(f.cluster->node_has_block(holder, block));
  EXPECT_EQ(f.cluster->locations(block).size(), 1u);
}

TEST(Decommission, FullClusterCannotDrain) {
  // Single rack of 3 nodes at replication 3: nowhere to move the replicas.
  Fixture f(1, 3);
  f.cluster->populate_file("/f", 64 * MiB, 3);
  bool ok = true;
  f.cluster->decommission(NodeId{0}, [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(f.cluster->node(NodeId{0}).state, NodeState::kDecommissioning);
  EXPECT_FALSE(f.cluster->node(NodeId{0}).blocks.empty());
}

// ---------- audit ----------

TEST(Audit, EmitsOpenAndReadEvents) {
  Fixture f;
  std::vector<audit::AuditEvent> events;
  f.cluster->set_audit_sink([&](const audit::AuditEvent& e) { events.push_back(e); });
  const auto file = f.cluster->populate_file("/f", 128 * MiB, 3);
  f.cluster->read_file(NodeId{4}, *file, [](const ReadOutcome&) {});
  f.sim.run();
  ASSERT_GE(events.size(), 4u);  // create + open + 2 reads
  EXPECT_EQ(events[0].cmd, "create");
  EXPECT_EQ(events[1].cmd, "open");
  EXPECT_EQ(events[1].src, "/f");
  int reads = 0;
  for (const auto& e : events) {
    if (e.cmd == "read") {
      ++reads;
      EXPECT_TRUE(e.block.has_value());
      EXPECT_TRUE(e.datanode.has_value());
    }
  }
  EXPECT_EQ(reads, 2);
}

TEST(Audit, RejectedReadMarkedDisallowed) {
  ClusterConfig cfg;
  Topology topo;
  const RackId r = topo.add_rack();
  DataNodeConfig dn;
  dn.max_sessions = 1;
  topo.add_node(r, dn);
  topo.add_node(r, dn);
  sim::Simulation sim;
  Cluster cluster{sim, topo, cfg};
  std::vector<audit::AuditEvent> events;
  cluster.set_audit_sink([&](const audit::AuditEvent& e) { events.push_back(e); });
  const auto file = cluster.populate_file("/f", MiB, 1);
  const BlockId block = cluster.metadata().find(*file)->blocks[0];
  cluster.read_block(NodeId{1}, block, [](const ReadOutcome&) {});
  cluster.read_block(NodeId{1}, block, [](const ReadOutcome&) {});
  sim.run();
  int denied = 0;
  for (const auto& e : events) {
    denied += (e.cmd == "read" && !e.allowed) ? 1 : 0;
  }
  EXPECT_EQ(denied, 1);
}

}  // namespace
}  // namespace erms::hdfs
