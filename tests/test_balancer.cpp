#include <gtest/gtest.h>

#include <set>

#include "hdfs/balancer.h"
#include "hdfs/cluster.h"

namespace erms::hdfs {
namespace {

using util::MiB;

struct Fixture {
  sim::Simulation sim;
  Topology topo;
  std::unique_ptr<Cluster> cluster;

  explicit Fixture(std::uint64_t capacity = 10 * util::GiB) {
    DataNodeConfig node;
    node.capacity_bytes = capacity;
    topo = Topology::uniform(3, 4, node);
    cluster = std::make_unique<Cluster>(sim, topo, ClusterConfig{});
  }
};

/// Deliberately skew the cluster: every block of every file on the same
/// three nodes (a tiny placement policy used only by these tests).
class SkewedPolicy final : public PlacementPolicy {
 public:
  std::vector<NodeId> choose_targets(const Cluster& cluster, BlockId block,
                                     std::size_t count, std::optional<NodeId>,
                                     sim::Rng&) const override {
    std::vector<NodeId> out;
    for (std::uint32_t n = 0; n < count && n < cluster.node_count(); ++n) {
      if (!cluster.node_has_block(NodeId{n}, block)) {
        out.push_back(NodeId{n});
      }
    }
    return out;
  }
  std::optional<NodeId> choose_replica_to_remove(const Cluster& cluster, BlockId block,
                                                 sim::Rng&) const override {
    const auto locs = cluster.locations(block);
    return locs.empty() ? std::nullopt : std::optional<NodeId>(locs.back());
  }
  [[nodiscard]] std::string name() const override { return "skewed"; }
};

TEST(Balancer, BalancedClusterNeedsNoMoves) {
  Fixture f;
  for (int i = 0; i < 12; ++i) {
    f.cluster->populate_file("/f" + std::to_string(i), 128 * MiB, 3);
  }
  Balancer balancer{*f.cluster};
  Balancer::Report report;
  balancer.run([&](const Balancer::Report& r) { report = r; });
  f.sim.run();
  EXPECT_TRUE(report.balanced);
  EXPECT_EQ(report.moves, 0u);
}

TEST(Balancer, SkewedClusterGetsBalanced) {
  Fixture f;
  f.cluster->set_placement_policy(std::make_shared<SkewedPolicy>());
  for (int i = 0; i < 10; ++i) {
    f.cluster->populate_file("/f" + std::to_string(i), 256 * MiB, 3);
  }
  Balancer balancer{*f.cluster};
  EXPECT_FALSE(balancer.is_balanced());
  const double before_spread =
      balancer.utilization(NodeId{0}) - balancer.utilization(NodeId{11});
  EXPECT_GT(before_spread, 0.2);

  Balancer::Report report;
  balancer.run([&](const Balancer::Report& r) { report = r; });
  f.sim.run();
  EXPECT_TRUE(report.balanced);
  EXPECT_GT(report.moves, 0u);
  EXPECT_GT(report.bytes_moved, 0u);
  EXPECT_GT(report.elapsed.seconds(), 0.0);
  EXPECT_TRUE(balancer.is_balanced());
}

TEST(Balancer, PreservesReplicaCountAndDistinctness) {
  Fixture f;
  f.cluster->set_placement_policy(std::make_shared<SkewedPolicy>());
  std::vector<FileId> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back(*f.cluster->populate_file("/f" + std::to_string(i), 192 * MiB, 3));
  }
  Balancer balancer{*f.cluster};
  balancer.run(nullptr);
  f.sim.run();
  for (const FileId file : files) {
    const FileInfo* info = f.cluster->metadata().find(file);
    for (const BlockId b : info->blocks) {
      const auto locs = f.cluster->locations(b);
      EXPECT_EQ(locs.size(), 3u);
      const std::set<NodeId> distinct(locs.begin(), locs.end());
      EXPECT_EQ(distinct.size(), 3u);
    }
  }
}

TEST(Balancer, PreservesRackSpread) {
  Fixture f;
  f.cluster->set_placement_policy(std::make_shared<SkewedPolicy>());
  // Nodes 0..2 span rack 0 only? Topology::uniform(3,4): nodes 0-3 rack0,
  // 4-7 rack1, 8-11 rack2 — the skewed policy puts replicas on 0,1,2 (one
  // rack). The balancer must never reduce multi-rack blocks to one rack; a
  // single-rack block is allowed to *gain* rack spread though.
  const auto file = f.cluster->populate_file("/f", 256 * MiB, 3);
  Balancer balancer{*f.cluster};
  balancer.run(nullptr);
  f.sim.run();
  const FileInfo* info = f.cluster->metadata().find(*file);
  for (const BlockId b : info->blocks) {
    EXPECT_EQ(f.cluster->locations(b).size(), 3u);
  }
}

TEST(Balancer, MoveReplicaPrimitive) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 2);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  const auto locs = f.cluster->locations(block);
  // Find a node without the block.
  NodeId target{0};
  for (const NodeId n : f.cluster->nodes()) {
    if (!f.cluster->node_has_block(n, block)) {
      target = n;
      break;
    }
  }
  bool ok = false;
  f.cluster->move_replica(block, locs.front(), target, [&](bool r) { ok = r; });
  f.sim.run();
  ASSERT_TRUE(ok);
  EXPECT_TRUE(f.cluster->node_has_block(target, block));
  EXPECT_FALSE(f.cluster->node_has_block(locs.front(), block));
  EXPECT_EQ(f.cluster->locations(block).size(), 2u);
}

TEST(Balancer, MoveReplicaRejectsBadArguments) {
  Fixture f;
  const auto file = f.cluster->populate_file("/f", 64 * MiB, 2);
  const BlockId block = f.cluster->metadata().find(*file)->blocks[0];
  const auto locs = f.cluster->locations(block);
  bool ok = true;
  // Target already holds the block.
  f.cluster->move_replica(block, locs[0], locs[1], [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_FALSE(ok);
  // Source does not hold the block.
  NodeId outsider{0};
  for (const NodeId n : f.cluster->nodes()) {
    if (!f.cluster->node_has_block(n, block)) {
      outsider = n;
      break;
    }
  }
  ok = true;
  f.cluster->move_replica(block, outsider, outsider, [&](bool r) { ok = r; });
  f.sim.run();
  EXPECT_FALSE(ok);
}

TEST(Balancer, UtilizationMath) {
  Fixture f{/*capacity=*/1 * util::GiB};
  f.cluster->set_placement_policy(std::make_shared<SkewedPolicy>());
  f.cluster->populate_file("/f", 512 * util::MiB, 1);  // all on node 0
  Balancer balancer{*f.cluster};
  EXPECT_NEAR(balancer.utilization(NodeId{0}), 0.5, 1e-9);
  EXPECT_NEAR(balancer.utilization(NodeId{5}), 0.0, 1e-9);
  EXPECT_NEAR(balancer.mean_utilization(), 0.5 / 12.0, 1e-9);
}

TEST(Balancer, IgnoresNonServingNodes) {
  Fixture f;
  f.cluster->set_standby(NodeId{11});
  Balancer balancer{*f.cluster};
  // An empty standby node must not count as "under-utilised" imbalance.
  EXPECT_TRUE(balancer.is_balanced());
}

TEST(Balancer, RespectsMoveCap) {
  Fixture f;
  f.cluster->set_placement_policy(std::make_shared<SkewedPolicy>());
  for (int i = 0; i < 10; ++i) {
    f.cluster->populate_file("/f" + std::to_string(i), 256 * MiB, 3);
  }
  Balancer::Config cfg;
  cfg.max_moves = 2;
  Balancer balancer{*f.cluster, cfg};
  Balancer::Report report;
  balancer.run([&](const Balancer::Report& r) { report = r; });
  f.sim.run();
  EXPECT_EQ(report.moves, 2u);
  EXPECT_FALSE(report.balanced);
}

}  // namespace
}  // namespace erms::hdfs
