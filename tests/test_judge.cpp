#include <gtest/gtest.h>

#include <map>

#include "audit/audit.h"
#include "cep/engine.h"
#include "hdfs/types.h"
#include "judge/feed.h"
#include "judge/judge.h"

namespace erms::judge {
namespace {

Thresholds paper_thresholds() {
  Thresholds t;
  t.tau_M = 8.0;
  t.tau_d = 2.0;
  t.tau_m = 0.5;
  t.tau_DN = 40.0;
  t.M_M = 12.0;
  t.M_m = 6.0;
  t.epsilon = 0.5;
  t.cold_age = sim::hours(24.0);
  t.window = sim::seconds(60.0);
  return t;
}

FileObservation obs(std::uint64_t accesses, std::uint32_t rep,
                    std::vector<std::uint64_t> blocks = {}, std::size_t block_count = 4) {
  FileObservation o;
  o.file = hdfs::FileId{1};
  o.accesses = accesses;
  o.replication = rep;
  o.block_accesses = std::move(blocks);
  o.block_count = block_count;
  o.last_access = sim::SimTime{0};
  return o;
}

const sim::SimTime kNow{sim::hours(1.0).micros()};

TEST(Thresholds, ValidityInvariant) {
  EXPECT_TRUE(paper_thresholds().valid());
  Thresholds bad = paper_thresholds();
  bad.tau_m = 3.0;  // violates tau_m < tau_d
  EXPECT_FALSE(bad.valid());
  bad = paper_thresholds();
  bad.M_m = 20.0;  // violates M_m < M_M
  EXPECT_FALSE(bad.valid());
  bad = paper_thresholds();
  bad.epsilon = 1.0;
  EXPECT_FALSE(bad.valid());
}

// ---------- formula (1): per-replica file load ----------

TEST(Classify, Formula1Hot) {
  DataJudge judge{paper_thresholds()};
  // N_d/r = 30/3 = 10 > τ_M = 8 → hot.
  const auto c = judge.classify(obs(30, 3), kNow, 3, 10);
  EXPECT_EQ(c.type, DataType::kHot);
  EXPECT_EQ(c.rule, 1);
  // Optimal: ceil(30/8) = 4.
  EXPECT_EQ(c.optimal_replication, 4u);
}

TEST(Classify, Formula1BoundaryNotHot) {
  DataJudge judge{paper_thresholds()};
  // N_d/r = 24/3 = 8 is NOT > 8 → not hot by (1).
  const auto c = judge.classify(obs(24, 3), kNow, 3, 10);
  EXPECT_NE(c.rule, 1);
}

TEST(Classify, MoreReplicasAbsorbLoad) {
  DataJudge judge{paper_thresholds()};
  // Same 30 accesses but r=5: 30/5 = 6 ≤ 8 → normal.
  const auto c = judge.classify(obs(30, 5), kNow, 3, 10);
  EXPECT_EQ(c.type, DataType::kNormal);
}

// ---------- formula (2): single-block hotspot ----------

TEST(Classify, Formula2BlockHotspot) {
  DataJudge judge{paper_thresholds()};
  // File-level: 20/3 ≈ 6.7 ≤ 8. But one block has 40/3 ≈ 13.3 > M_M = 12.
  const auto c = judge.classify(obs(20, 3, {40, 1, 1}), kNow, 3, 10);
  EXPECT_EQ(c.type, DataType::kHot);
  EXPECT_EQ(c.rule, 2);
  // Optimal must absorb the hot block: ceil(40/12) = 4.
  EXPECT_EQ(c.optimal_replication, 4u);
}

// ---------- formula (3): many intensely-accessed blocks ----------

TEST(Classify, Formula3SpreadHeat) {
  DataJudge judge{paper_thresholds()};
  // 4 blocks, 3 of them above M_m·r = 18 accesses: 3/4 > ε = 0.5 → hot.
  const auto c = judge.classify(obs(20, 3, {19, 19, 19, 1}, 4), kNow, 3, 10);
  EXPECT_EQ(c.type, DataType::kHot);
  EXPECT_EQ(c.rule, 3);
}

TEST(Classify, Formula3NotEnoughBlocks) {
  DataJudge judge{paper_thresholds()};
  // Only 2 of 4 blocks intense: 0.5 is NOT > ε = 0.5.
  const auto c = judge.classify(obs(20, 3, {19, 19, 1, 1}, 4), kNow, 3, 10);
  EXPECT_NE(c.type, DataType::kHot);
}

// ---------- formula (5): cooled ----------

TEST(Classify, CooledRequiresExtraReplicas) {
  DataJudge judge{paper_thresholds()};
  // 5 accesses at r=6: 5/6 < τ_d = 2 and r > r_D → cooled.
  FileObservation o = obs(5, 6);
  o.last_access = kNow;  // recently accessed, so not cold
  const auto c = judge.classify(o, kNow, 3, 10);
  EXPECT_EQ(c.type, DataType::kCooled);
  EXPECT_EQ(c.rule, 5);
  // Same load at the default factor is just normal.
  FileObservation base = obs(5, 3);
  base.last_access = kNow;
  EXPECT_EQ(judge.classify(base, kNow, 3, 10).type, DataType::kNormal);
}

// ---------- formula (6): cold ----------

TEST(Classify, ColdNeedsAgeAndSilence) {
  DataJudge judge{paper_thresholds()};
  FileObservation o = obs(0, 3);
  o.last_access = sim::SimTime{0};
  const sim::SimTime now{sim::hours(25.0).micros()};
  const auto c = judge.classify(o, now, 3, 10);
  EXPECT_EQ(c.type, DataType::kCold);
  EXPECT_EQ(c.rule, 6);
}

TEST(Classify, RecentDataNotCold) {
  DataJudge judge{paper_thresholds()};
  FileObservation o = obs(0, 3);
  o.last_access = sim::SimTime{sim::hours(20.0).micros()};
  const sim::SimTime now{sim::hours(25.0).micros()};
  EXPECT_EQ(judge.classify(o, now, 3, 10).type, DataType::kNormal);
}

TEST(Classify, QuietButNotSilentNotCold) {
  DataJudge judge{paper_thresholds()};
  // 3 accesses at r=3 → 1.0 per replica; τ_m = 0.5, so not below.
  FileObservation o = obs(3, 3);
  o.last_access = sim::SimTime{0};
  const sim::SimTime now{sim::hours(25.0).micros()};
  EXPECT_EQ(judge.classify(o, now, 3, 10).type, DataType::kNormal);
}

// ---------- optimal replication ----------

TEST(Optimal, ClampedToBounds) {
  DataJudge judge{paper_thresholds()};
  // Enormous load: ceil(1000/8) = 125, clamped to max 10.
  EXPECT_EQ(judge.optimal_replication(obs(1000, 3), 3, 10), 10u);
  // Tiny load: at least the default factor.
  EXPECT_EQ(judge.optimal_replication(obs(1, 3), 3, 10), 3u);
}

TEST(Optimal, BlockTermDominatesWhenHotter) {
  DataJudge judge{paper_thresholds()};
  // File: ceil(16/8) = 2; block: ceil(60/12) = 5 → 5.
  EXPECT_EQ(judge.optimal_replication(obs(16, 3, {60}), 3, 10), 5u);
}

// ---------- formula (4) ----------

TEST(NodeOverload, ThresholdComparison) {
  DataJudge judge{paper_thresholds()};
  EXPECT_FALSE(judge.node_overloaded(40.0));
  EXPECT_TRUE(judge.node_overloaded(40.5));
}

// ---------- calibration ----------

TEST(Calibrate, ScalesThresholdsProportionally) {
  DataJudge judge{paper_thresholds()};
  judge.calibrate(16.0);  // measured 16 sessions per replica
  EXPECT_DOUBLE_EQ(judge.thresholds().tau_M, 16.0);
  EXPECT_DOUBLE_EQ(judge.thresholds().tau_d, 4.0);
  EXPECT_DOUBLE_EQ(judge.thresholds().M_M, 24.0);
  EXPECT_TRUE(judge.thresholds().valid());
}

TEST(Calibrate, IgnoresNonPositive) {
  DataJudge judge{paper_thresholds()};
  judge.calibrate(0.0);
  EXPECT_DOUBLE_EQ(judge.thresholds().tau_M, 8.0);
}

// ---------- the CEP feed ----------

audit::AuditEvent audit_read(double t, std::int64_t fid, std::int64_t blk,
                             std::int64_t dn) {
  audit::AuditEvent e;
  e.time = sim::SimTime{static_cast<std::int64_t>(t * 1e6)};
  e.cmd = "read";
  e.src = "/f" + std::to_string(fid);
  e.fid = fid;
  e.block = blk;
  e.datanode = dn;
  return e;
}

audit::AuditEvent audit_open(double t, std::int64_t fid) {
  audit::AuditEvent e;
  e.time = sim::SimTime{static_cast<std::int64_t>(t * 1e6)};
  e.cmd = "open";
  e.src = "/f" + std::to_string(fid);
  e.fid = fid;
  return e;
}

constexpr hdfs::FileId kFileA{1};
constexpr hdfs::FileId kFileB{2};

TEST(Feed, CountsFilesBlocksNodes) {
  cep::Engine engine;
  AccessStatsFeed feed{engine, sim::seconds(60.0)};
  feed.on_audit(audit_open(1.0, 1));
  feed.on_audit(audit_open(2.0, 1));
  feed.on_audit(audit_open(3.0, 2));
  feed.on_audit(audit_read(1.5, 1, 11, 0));
  feed.on_audit(audit_read(2.5, 1, 11, 0));
  feed.on_audit(audit_read(2.6, 1, 12, 1));

  EXPECT_EQ(feed.file_accesses(kFileA), 2u);
  EXPECT_EQ(feed.file_accesses(kFileB), 1u);
  EXPECT_EQ(feed.file_accesses(hdfs::FileId{99}), 0u);

  std::map<std::int64_t, std::uint64_t> blocks_a;
  feed.for_each_block_access([&](hdfs::FileId fid, std::int64_t blk, std::uint64_t n) {
    if (fid == kFileA) {
      blocks_a[blk] = n;
    }
    EXPECT_NE(fid, kFileB);  // /f2 was never read, only opened
  });
  EXPECT_EQ(blocks_a.at(11), 2u);
  EXPECT_EQ(blocks_a.at(12), 1u);

  std::map<std::int64_t, std::uint64_t> nodes;
  feed.for_each_node_access(
      [&](std::int64_t dn, std::uint64_t n) { nodes[dn] = n; });
  EXPECT_EQ(nodes.at(0), 2u);
  EXPECT_EQ(nodes.at(1), 1u);

  std::map<hdfs::FileId, std::uint64_t> on0;
  feed.for_each_file_access_on_node(
      0, [&](hdfs::FileId fid, std::uint64_t n) { on0[fid] = n; });
  EXPECT_EQ(on0.at(kFileA), 2u);
  EXPECT_EQ(on0.size(), 1u);

  EXPECT_EQ(feed.events_ingested(), 6u);
}

TEST(Feed, WindowExpiryDropsCounts) {
  cep::Engine engine;
  AccessStatsFeed feed{engine, sim::seconds(10.0)};
  feed.on_audit(audit_open(0.0, 1));
  feed.on_audit(audit_open(5.0, 1));
  EXPECT_EQ(feed.file_accesses(kFileA), 2u);
  feed.advance_to(sim::SimTime{sim::seconds(12.0).micros()});
  EXPECT_EQ(feed.file_accesses(kFileA), 1u);
  feed.advance_to(sim::SimTime{sim::seconds(30.0).micros()});
  EXPECT_EQ(feed.file_accesses(kFileA), 0u);
}

TEST(Feed, LastAccessSurvivesWindow) {
  cep::Engine engine;
  AccessStatsFeed feed{engine, sim::seconds(10.0)};
  feed.on_audit(audit_open(3.0, 1));
  feed.advance_to(sim::SimTime{sim::minutes(10.0).micros()});
  EXPECT_EQ(feed.last_access(kFileA), sim::SimTime{3'000'000});
  EXPECT_EQ(feed.last_access(hdfs::FileId{99}), sim::SimTime{0});
}

TEST(Feed, ActiveFiles) {
  cep::Engine engine;
  AccessStatsFeed feed{engine, sim::seconds(60.0)};
  feed.on_audit(audit_open(1.0, 1));
  feed.on_audit(audit_open(2.0, 2));
  const auto files = feed.active_files();
  EXPECT_EQ(files.size(), 2u);
}

TEST(Feed, EventsWithoutFidCarryNoPerFileState) {
  cep::Engine engine;
  AccessStatsFeed feed{engine, sim::seconds(60.0)};
  audit::AuditEvent e = audit_open(1.0, 7);
  e.fid = 0;  // e.g. a read of an unknown path
  feed.on_audit(e);
  EXPECT_EQ(feed.events_ingested(), 1u);
  EXPECT_TRUE(feed.active_files().empty());
  EXPECT_EQ(feed.last_access(hdfs::FileId{7}), sim::SimTime{0});
}

/// End-to-end: feed counts + judge formulas produce the expected verdict.
TEST(FeedJudge, HotFileDetectedThroughCep) {
  cep::Engine engine;
  AccessStatsFeed feed{engine, sim::seconds(60.0)};
  DataJudge judge{paper_thresholds()};
  for (int i = 0; i < 30; ++i) {
    feed.on_audit(audit_open(i * 0.1, 1));
  }
  FileObservation o;
  o.file = kFileA;
  o.accesses = feed.file_accesses(kFileA);
  o.replication = 3;
  o.block_count = 2;
  o.last_access = feed.last_access(kFileA);
  const auto c = judge.classify(o, sim::SimTime{sim::seconds(10.0).micros()}, 3, 10);
  EXPECT_EQ(c.type, DataType::kHot);
  EXPECT_EQ(c.optimal_replication, 4u);
}

}  // namespace
}  // namespace erms::judge
