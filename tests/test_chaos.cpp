// Chaos tests: seeded fault plans driven against the full stack, checked by
// the invariant sweeper. Every run is deterministic — the same seed must
// produce the same recovery story, byte for byte.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/erms.h"
#include "ec/codec_registry.h"
#include "fault/fault_plan.h"
#include "obs/observability.h"
#include "fault/invariant_checker.h"
#include "hdfs/cluster.h"
#include "hdfs/failure_detector.h"
#include "snapshot/world.h"

namespace erms {
namespace {

using hdfs::Cluster;
using hdfs::ClusterConfig;
using hdfs::NodeId;
using hdfs::Topology;
using util::MiB;

struct ChaosBed {
  sim::Simulation sim;
  Topology topo = Topology::uniform(3, 6);
  std::unique_ptr<Cluster> cluster;
  std::vector<NodeId> pool;

  ChaosBed() {
    cluster = std::make_unique<Cluster>(sim, topo, ClusterConfig{});
    for (std::uint32_t n = 10; n < 18; ++n) {
      pool.push_back(NodeId{n});
    }
  }
};

core::ErmsConfig chaos_erms() {
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::seconds(60.0);
  cfg.thresholds.cold_age = sim::minutes(15.0);
  cfg.evaluation_period = sim::seconds(20.0);
  cfg.observe = true;
  cfg.trace_capacity = 65536;
  cfg.job_max_retries = 3;
  cfg.job_retry_backoff = sim::seconds(5.0);
  return cfg;
}

fault::ChaosOptions soak_options() {
  fault::ChaosOptions opt;
  opt.start = sim::SimTime{sim::minutes(1.0).micros()};
  opt.end = sim::SimTime{sim::minutes(10.0).micros()};
  // Only non-pool serving nodes are crash victims; replication 3 tolerates
  // one concurrent death with room to spare.
  for (std::uint32_t n = 0; n < 10; ++n) {
    opt.victims.push_back(n);
  }
  opt.racks = {0, 1, 2};
  opt.max_concurrent_dead = 1;
  opt.mean_gap = sim::seconds(40.0);
  opt.min_downtime = sim::seconds(30.0);
  opt.max_downtime = sim::minutes(2.0);
  return opt;
}

/// One full soak run: workload + ERMS + chaos plan, then drain and check.
/// Returns the deterministic invariant report text.
std::string run_soak(std::uint64_t seed, bool* ok_out = nullptr) {
  ChaosBed t;
  core::ErmsManager erms{*t.cluster, t.pool, chaos_erms()};
  std::vector<hdfs::FileId> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back(*t.cluster->populate_file("/chaos/f" + std::to_string(i), 128 * MiB, 3));
  }
  erms.start();

  // Steady read workload so flows are in the air when faults land.
  for (int i = 0; i < 240; ++i) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 2.5e6)}, [&t, &files, i] {
      t.cluster->read_file(NodeId{static_cast<std::uint32_t>(i % 10)},
                           files[static_cast<std::size_t>(i) % files.size()],
                           [](const hdfs::ReadOutcome&) {});
    });
  }

  const fault::FaultPlan plan = fault::FaultPlan::randomized(soak_options(), seed);
  fault::FaultInjector injector{*t.cluster, &erms.observability()->trace()};
  injector.arm(plan);

  // Chaos window, then a drain window with no new faults so recovery and
  // planned revivals settle.
  t.sim.run_until(sim::SimTime{sim::minutes(20.0).micros()});

  const fault::InvariantChecker checker{*t.cluster, &erms.scheduler(),
                                        &erms.observability()->trace()};
  const fault::InvariantReport report = checker.check(/*converged=*/true);
  if (ok_out != nullptr) {
    *ok_out = report.ok;
  }
  EXPECT_TRUE(report.ok) << "seed " << seed << "\n" << report.text;
  EXPECT_EQ(t.cluster->blocks_lost(), 0u) << "seed " << seed;
  EXPECT_GT(injector.injected(), 0u) << "seed " << seed << ": plan injected nothing";
  erms.stop();
  return report.text;
}

TEST(Chaos, MultiSeedSoakConvergesWithZeroLoss) {
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  if (const char* env = std::getenv("ERMS_CHAOS_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  }
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_soak(seed);
  }
}

TEST(Chaos, SameSeedIsByteIdentical) {
  const std::uint64_t seed = 7;
  // The plan itself must be replayable from the seed...
  const fault::FaultPlan a = fault::FaultPlan::randomized(soak_options(), seed);
  const fault::FaultPlan b = fault::FaultPlan::randomized(soak_options(), seed);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_FALSE(a.empty());
  // ...and two full runs must tell the identical recovery story.
  const std::string first = run_soak(seed);
  const std::string second = run_soak(seed);
  EXPECT_EQ(first, second);
}

TEST(Chaos, DifferentSeedsDifferentPlans) {
  const fault::FaultPlan a = fault::FaultPlan::randomized(soak_options(), 11);
  const fault::FaultPlan b = fault::FaultPlan::randomized(soak_options(), 12);
  EXPECT_NE(a.describe(), b.describe());
}

/// Flow-abort storms during recovery force the retry path: retries are
/// observed, bounded, and the block still converges to its target count.
TEST(Chaos, RecoveryRetriesAfterFlowAborts) {
  ChaosBed t;
  const auto file = *t.cluster->populate_file("/retry", 64 * MiB, 3);
  const hdfs::BlockId block = t.cluster->metadata().find(file)->blocks[0];

  t.sim.schedule_at(sim::SimTime{sim::seconds(1.0).micros()}, [&t, block] {
    const auto locs = t.cluster->locations(block);
    ASSERT_FALSE(locs.empty());
    t.cluster->fail_node(locs.front());
  });
  // Repeated abort storms across every node while the recovery copy flies.
  for (int i = 0; i < 6; ++i) {
    t.sim.schedule_at(sim::SimTime{sim::seconds(2.0 + i * 1.5).micros()}, [&t] {
      for (std::uint32_t n = 0; n < 18; ++n) {
        t.cluster->network().abort_flows_touching(n);
      }
    });
  }
  t.sim.run_until(sim::SimTime{sim::minutes(10.0).micros()});

  EXPECT_EQ(t.cluster->locations(block).size(), 3u);
  EXPECT_GT(t.cluster->recovery_retries(), 0u);
  EXPECT_EQ(t.cluster->recoveries_abandoned(), 0u);
  EXPECT_EQ(t.cluster->blocks_lost(), 0u);
  // Bounded: retries never exceed the per-block budget times blocks touched.
  EXPECT_LE(t.cluster->recovery_retries(),
            static_cast<std::uint64_t>(t.cluster->config().recovery_max_retries) *
                (1 + t.cluster->metadata().find(file)->blocks.size()));
}

/// An erasure-coded file whose single data replica dies is still readable —
/// the read reconstructs from surviving shards (degraded read) while the
/// recovery queue rebuilds the lost replica in the background. Starts from
/// the checked-in aged-cluster fixture (examples/make_aged_fixture.cpp): the
/// file is already encoded and the cluster already has a healed crash and
/// served reads in its history, so the degraded path runs against "day two"
/// state rather than a pristine world.
TEST(Chaos, DegradedEcReadDuringOutage) {
  ChaosBed t;
  snapshot::WorldParts parts{&t.sim, t.cluster.get(), nullptr, nullptr, nullptr};
  std::string user_data;
  const snapshot::SnapshotResult err = snapshot::restore_world(
      std::string(ERMS_FIXTURE_DIR) + "/aged_cluster.snap", parts, &user_data);
  ASSERT_FALSE(err.has_value())
      << err->to_string() << "\n(regenerate with scripts/make_aged_fixture.py)";
  EXPECT_EQ(user_data, "aged_cluster v1");
  // The aged history came along: a crash was already healed here.
  EXPECT_GT(t.cluster->nodes_revived(), 0u);

  const hdfs::FileInfo* info = t.cluster->metadata().find_path("/cold");
  ASSERT_NE(info, nullptr);
  ASSERT_TRUE(info->erasure_coded);
  const auto file = info->id;
  const hdfs::BlockId data0 = info->blocks[0];
  const auto locs = t.cluster->locations(data0);
  ASSERT_EQ(locs.size(), 1u);
  t.cluster->fail_node(locs.front());

  bool read_ok = false;
  bool degraded = false;
  t.cluster->read_block(NodeId{(locs.front().value() + 1) % 10}, data0,
                        [&](const hdfs::ReadOutcome& out) {
                          read_ok = out.ok;
                          degraded = out.degraded;
                        });
  t.sim.run_until(t.sim.now() + sim::minutes(5.0));
  EXPECT_TRUE(read_ok);
  EXPECT_TRUE(degraded);
  // Background reconstruction restored the data replica.
  EXPECT_FALSE(t.cluster->locations(data0).empty());
  EXPECT_TRUE(t.cluster->file_available(file));
  EXPECT_EQ(t.cluster->blocks_lost(), 0u);
}

/// Every codec in the zoo survives the same single-node outage: degraded
/// reads succeed, background reconstruction heals, and the repair-cheap
/// codes pull strictly fewer bytes over the network than RS.
TEST(Chaos, CodecZooDegradedReadsAndRepairBytes) {
  struct Run {
    const char* name;
    ec::CodecSpec spec;
    std::uint64_t repair_bytes{0};
    std::uint64_t degraded_bytes{0};
  };
  Run runs[] = {
      {"rs", {ec::CodecKind::kRs, 4, 0, 0}, 0, 0},
      {"azure_lrc", {ec::CodecKind::kAzureLrc, 0, 2, 2}, 0, 0},
      {"hh_xor_plus", {ec::CodecKind::kHitchhikerXorPlus, 4, 0, 0}, 0, 0},
  };
  for (Run& run : runs) {
    SCOPED_TRACE(run.name);
    ChaosBed t;
    obs::Observability obs{4096};
    t.cluster->set_observability(&obs);
    // 8 blocks -> the k=8 stripe the repair-bandwidth tables are built on.
    const auto file = *t.cluster->populate_file("/cold", 8 * 64 * MiB, 3);
    bool encoded = false;
    t.cluster->encode_file(file, run.spec, [&encoded](bool ok) { encoded = ok; });
    t.sim.run();
    ASSERT_TRUE(encoded);

    const hdfs::FileInfo* info = t.cluster->metadata().find(file);
    ASSERT_TRUE(info->erasure_coded);
    EXPECT_EQ(info->ec_codec, static_cast<std::uint8_t>(run.spec.kind));
    const hdfs::BlockId data0 = info->blocks[0];
    const auto locs = t.cluster->locations(data0);
    ASSERT_EQ(locs.size(), 1u);
    t.cluster->fail_node(locs.front());

    bool read_ok = false;
    bool degraded = false;
    t.cluster->read_block(NodeId{(locs.front().value() + 1) % 10}, data0,
                          [&](const hdfs::ReadOutcome& out) {
                            read_ok = out.ok;
                            degraded = out.degraded;
                          });
    // One node down never breaks availability, whatever the code.
    EXPECT_TRUE(t.cluster->file_available(file));
    t.sim.run_until(sim::SimTime{sim::minutes(30.0).micros()});
    EXPECT_TRUE(read_ok);
    EXPECT_TRUE(degraded);
    EXPECT_FALSE(t.cluster->locations(data0).empty());
    EXPECT_TRUE(t.cluster->file_available(file));
    EXPECT_EQ(t.cluster->blocks_lost(), 0u);

    auto& reg = obs.registry();
    run.repair_bytes =
        reg.counter_value(reg.counter(std::string("hdfs.ec.repair.bytes.") + run.name));
    run.degraded_bytes =
        reg.counter_value(reg.counter(std::string("hdfs.ec.degraded.bytes.") + run.name));
    EXPECT_GT(run.repair_bytes, 0u);
    EXPECT_GT(run.degraded_bytes, 0u);
    t.cluster->set_observability(nullptr);
  }
  // The zoo's reason to exist: repair-cheap codes beat RS on actual flow
  // bytes, for both background repair and client degraded reads.
  EXPECT_LT(runs[1].repair_bytes, runs[0].repair_bytes);
  EXPECT_LT(runs[2].repair_bytes, runs[0].repair_bytes);
  EXPECT_LT(runs[1].degraded_bytes, runs[0].degraded_bytes);
  EXPECT_LT(runs[2].degraded_bytes, runs[0].degraded_bytes);
}

/// Parity-survival invariants under multi-shard loss: Hitchhiker (MDS)
/// tolerates any m losses; AzureLRC always tolerates its g globals' worth
/// and file_available answers honestly from the code's rank, not a count.
TEST(Chaos, CodecZooParitySurvivalUnderMultiLoss) {
  ChaosBed t;
  const auto file = *t.cluster->populate_file("/cold", 8 * 64 * MiB, 3);
  bool encoded = false;
  t.cluster->encode_file(file, ec::CodecSpec{ec::CodecKind::kAzureLrc, 0, 2, 2},
                         [&encoded](bool ok) { encoded = ok; });
  t.sim.run();
  ASSERT_TRUE(encoded);

  const hdfs::FileInfo* info = t.cluster->metadata().find(file);
  // Kill the holders of data shards 0 and 1: two losses inside one local
  // group, which the local XOR parity alone cannot cover — availability
  // must come from the rank of the two global parities, not a live count.
  const NodeId n0 = t.cluster->locations(info->blocks[0]).front();
  const NodeId n1 = t.cluster->locations(info->blocks[1]).front();
  ASSERT_NE(n0, n1);
  t.cluster->fail_node(n0);
  t.cluster->fail_node(n1);
  EXPECT_TRUE(t.cluster->file_available(file));

  t.sim.run_until(sim::SimTime{sim::minutes(30.0).micros()});
  EXPECT_TRUE(t.cluster->file_available(file));
  EXPECT_EQ(t.cluster->blocks_lost(), 0u);
}

/// The full lifecycle (hot -> cooled -> cold -> re-warm) survives continuous
/// chaos: classifications still flip, encode/decode complete, nothing lost.
TEST(Chaos, LifecycleSurvivesContinuousFaults) {
  ChaosBed t;
  core::ErmsConfig cfg = chaos_erms();
  cfg.thresholds.cold_age = sim::minutes(8.0);
  core::ErmsManager erms{*t.cluster, t.pool, cfg};
  const auto file = *t.cluster->populate_file("/life", 128 * MiB, 3);
  erms.start();

  // Hot phase reads, then silence to cool and encode, then re-warm reads.
  for (int i = 0; i < 200; ++i) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 0.6e6)}, [&t, file, i] {
      t.cluster->read_file(NodeId{static_cast<std::uint32_t>(i % 10)}, file,
                           [](const hdfs::ReadOutcome&) {});
    });
  }
  for (int i = 0; i < 150; ++i) {
    t.sim.schedule_at(
        sim::SimTime{sim::minutes(26.0).micros() + static_cast<std::int64_t>(i * 0.6e6)},
        [&t, file, i] {
          t.cluster->read_file(NodeId{static_cast<std::uint32_t>(i % 10)}, file,
                               [](const hdfs::ReadOutcome&) {});
        });
  }

  fault::ChaosOptions opt = soak_options();
  opt.end = sim::SimTime{sim::minutes(30.0).micros()};
  opt.mean_gap = sim::seconds(90.0);
  const fault::FaultPlan plan = fault::FaultPlan::randomized(opt, 99);
  fault::FaultInjector injector{*t.cluster, &erms.observability()->trace()};
  injector.arm(plan);

  t.sim.run_until(sim::SimTime{sim::minutes(40.0).micros()});

  const auto& stats = erms.stats();
  EXPECT_GT(stats.hot_promotions, 0u);
  EXPECT_GT(stats.encodes, 0u);
  EXPECT_TRUE(t.cluster->file_available(file));
  EXPECT_EQ(t.cluster->blocks_lost(), 0u);
  const fault::InvariantChecker checker{*t.cluster, &erms.scheduler(),
                                        &erms.observability()->trace()};
  const fault::InvariantReport report = checker.check(/*converged=*/true);
  EXPECT_TRUE(report.ok) << report.text;
  erms.stop();
}

}  // namespace
}  // namespace erms
