#include <gtest/gtest.h>

#include "classad/classad.h"
#include "classad/matchmaker.h"
#include "classad/parser.h"

namespace erms::classad {
namespace {

Value eval(const std::string& text, const ClassAd* my = nullptr,
           const ClassAd* target = nullptr) {
  const ExprPtr expr = parse_expr(text);
  EvalContext ctx;
  ctx.my = my;
  ctx.target = target;
  return expr->evaluate(ctx);
}

// ---------- literals & arithmetic ----------

TEST(Eval, IntegerArithmetic) {
  EXPECT_EQ(eval("1 + 2 * 3"), Value::integer(7));
  EXPECT_EQ(eval("(1 + 2) * 3"), Value::integer(9));
  EXPECT_EQ(eval("7 / 2"), Value::integer(3));
  EXPECT_EQ(eval("7 % 3"), Value::integer(1));
  EXPECT_EQ(eval("-4 + 1"), Value::integer(-3));
}

TEST(Eval, RealPromotion) {
  EXPECT_EQ(eval("1 + 2.5"), Value::real(3.5));
  EXPECT_EQ(eval("5 / 2.0"), Value::real(2.5));
}

TEST(Eval, DivisionByZero) {
  EXPECT_TRUE(eval("1 / 0").is_error());
  EXPECT_TRUE(eval("1.0 / 0.0").is_error());
  EXPECT_TRUE(eval("1 % 0").is_error());
}

TEST(Eval, Comparisons) {
  EXPECT_EQ(eval("3 < 4"), Value::boolean(true));
  EXPECT_EQ(eval("3 >= 4"), Value::boolean(false));
  EXPECT_EQ(eval("2 == 2.0"), Value::boolean(true));
  EXPECT_EQ(eval("2 != 3"), Value::boolean(true));
}

TEST(Eval, StringComparisonCaseInsensitive) {
  EXPECT_EQ(eval("\"Linux\" == \"linux\""), Value::boolean(true));
  EXPECT_EQ(eval("\"a\" < \"b\""), Value::boolean(true));
}

TEST(Eval, Conditional) {
  EXPECT_EQ(eval("true ? 1 : 2"), Value::integer(1));
  EXPECT_EQ(eval("3 > 4 ? 1 : 2"), Value::integer(2));
  EXPECT_TRUE(eval("undefined ? 1 : 2").is_undefined());
}

// ---------- three-valued logic ----------

TEST(Eval, UndefinedPropagatesThroughArithmetic) {
  EXPECT_TRUE(eval("undefined + 1").is_undefined());
  EXPECT_TRUE(eval("undefined < 3").is_undefined());
  EXPECT_TRUE(eval("-undefined").is_undefined());
}

TEST(Eval, ErrorDominates) {
  EXPECT_TRUE(eval("error + 1").is_error());
  EXPECT_TRUE(eval("\"s\" + 1").is_error());
}

TEST(Eval, NonStrictAnd) {
  // false && X == false even when X is undefined.
  EXPECT_EQ(eval("false && undefined"), Value::boolean(false));
  EXPECT_EQ(eval("undefined && false"), Value::boolean(false));
  EXPECT_TRUE(eval("true && undefined").is_undefined());
  EXPECT_EQ(eval("true && true"), Value::boolean(true));
}

TEST(Eval, NonStrictOr) {
  EXPECT_EQ(eval("true || undefined"), Value::boolean(true));
  EXPECT_EQ(eval("undefined || true"), Value::boolean(true));
  EXPECT_TRUE(eval("false || undefined").is_undefined());
}

TEST(Eval, NotOperator) {
  EXPECT_EQ(eval("!true"), Value::boolean(false));
  EXPECT_TRUE(eval("!undefined").is_undefined());
}

// ---------- functions ----------

TEST(Eval, IsUndefinedIsError) {
  EXPECT_EQ(eval("isUndefined(undefined)"), Value::boolean(true));
  EXPECT_EQ(eval("isUndefined(1)"), Value::boolean(false));
  EXPECT_EQ(eval("isError(error)"), Value::boolean(true));
  EXPECT_EQ(eval("isError(2)"), Value::boolean(false));
}

TEST(Eval, NumericFunctions) {
  EXPECT_EQ(eval("floor(2.7)"), Value::integer(2));
  EXPECT_EQ(eval("ceil(2.1)"), Value::integer(3));
  EXPECT_EQ(eval("round(2.5)"), Value::integer(3));
  EXPECT_EQ(eval("abs(-5)"), Value::integer(5));
  EXPECT_EQ(eval("min(3, 7)"), Value::integer(3));
  EXPECT_EQ(eval("max(3, 7)"), Value::integer(7));
  EXPECT_EQ(eval("int(3.9)"), Value::integer(3));
  EXPECT_EQ(eval("real(3)"), Value::real(3.0));
}

TEST(Eval, Strcat) {
  EXPECT_EQ(eval("strcat(\"a\", \"b\", \"c\")"), Value::string("abc"));
  EXPECT_TRUE(eval("strcat(\"a\", 1)").is_error());
}

TEST(Eval, UnknownFunctionIsError) { EXPECT_TRUE(eval("nosuchfn(1)").is_error()); }

// ---------- attribute references ----------

TEST(Eval, UnscopedResolvesMyFirst) {
  ClassAd my;
  my.insert_int("X", 1);
  ClassAd target;
  target.insert_int("X", 2);
  EXPECT_EQ(eval("X", &my, &target), Value::integer(1));
  EXPECT_EQ(eval("TARGET.X", &my, &target), Value::integer(2));
  EXPECT_EQ(eval("MY.X", &my, &target), Value::integer(1));
}

TEST(Eval, UnscopedFallsBackToTarget) {
  ClassAd my;
  ClassAd target;
  target.insert_int("Y", 9);
  EXPECT_EQ(eval("Y", &my, &target), Value::integer(9));
}

TEST(Eval, MissingAttrIsUndefined) {
  ClassAd my;
  EXPECT_TRUE(eval("Nope", &my).is_undefined());
}

TEST(Eval, ChainedReferences) {
  ClassAd my;
  my.insert("A", parse_expr("B + 1"));
  my.insert_int("B", 41);
  EXPECT_EQ(my.evaluate("A"), Value::integer(42));
}

TEST(Eval, ReferenceCycleIsError) {
  ClassAd my;
  my.insert("A", parse_expr("B"));
  my.insert("B", parse_expr("A"));
  EXPECT_TRUE(my.evaluate("A").is_error());
}

TEST(Eval, CrossAdReferences) {
  // MY.Requirements referencing TARGET re-roots evaluation in the target ad.
  ClassAd machine;
  machine.insert_int("Memory", 4096);
  ClassAd job;
  job.insert("Requirements", parse_expr("TARGET.Memory >= 2048"));
  EXPECT_EQ(job.evaluate("Requirements", &machine), Value::boolean(true));
}

// ---------- ClassAd container ----------

TEST(ClassAdTest, CaseInsensitiveNames) {
  ClassAd ad;
  ad.insert_int("FooBar", 1);
  EXPECT_TRUE(ad.contains("foobar"));
  EXPECT_TRUE(ad.contains("FOOBAR"));
  EXPECT_EQ(ad.get_int("fooBAR"), 1);
}

TEST(ClassAdTest, TypedAccessors) {
  ClassAd ad;
  ad.insert_int("i", 5);
  ad.insert_real("r", 2.5);
  ad.insert_bool("b", true);
  ad.insert_string("s", "hi");
  EXPECT_EQ(ad.get_int("i"), 5);
  EXPECT_EQ(ad.get_real("r"), 2.5);
  EXPECT_EQ(ad.get_real("i"), 5.0);  // numeric promotion
  EXPECT_EQ(ad.get_bool("b"), true);
  EXPECT_EQ(ad.get_string("s"), "hi");
  EXPECT_FALSE(ad.get_int("s").has_value());
  EXPECT_FALSE(ad.get_int("missing").has_value());
}

TEST(ClassAdTest, EraseAndSize) {
  ClassAd ad;
  ad.insert_int("a", 1);
  ad.insert_int("b", 2);
  EXPECT_EQ(ad.size(), 2u);
  EXPECT_TRUE(ad.erase("A"));
  EXPECT_FALSE(ad.erase("A"));
  EXPECT_EQ(ad.size(), 1u);
}

// ---------- parser ----------

TEST(Parser, ParsesFullAd) {
  const ClassAd ad = parse_classad("[ Cpus = 4; Memory = 8192; Arch = \"x86_64\"; ]");
  EXPECT_EQ(ad.get_int("Cpus"), 4);
  EXPECT_EQ(ad.get_int("Memory"), 8192);
  EXPECT_EQ(ad.get_string("Arch"), "x86_64");
}

TEST(Parser, ParsesBareAssignments) {
  const ClassAd ad = parse_classad("A = 1; B = A + 1");
  EXPECT_EQ(ad.get_int("B"), 2);
}

TEST(Parser, Comments) {
  const ClassAd ad = parse_classad("A = 1; // trailing comment\nB = 2");
  EXPECT_EQ(ad.get_int("B"), 2);
}

TEST(Parser, ErrorsCarryOffsets) {
  try {
    parse_expr("1 + ");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.offset(), 3u);
  }
}

TEST(Parser, RejectsMalformed) {
  EXPECT_THROW(parse_expr("(1 + 2"), ParseError);
  EXPECT_THROW(parse_expr("1 &"), ParseError);
  EXPECT_THROW(parse_expr("\"unterminated"), ParseError);
  EXPECT_THROW(parse_classad("[ A = 1"), ParseError);
  EXPECT_THROW(parse_classad("[ = 1 ]"), ParseError);
}

TEST(Parser, UnparseRoundTrip) {
  const ExprPtr e = parse_expr("(Memory >= 2048) && (Arch == \"x86_64\")");
  const ExprPtr e2 = parse_expr(e->unparse());
  ClassAd ad;
  ad.insert_int("Memory", 4096);
  ad.insert_string("Arch", "x86_64");
  EXPECT_EQ(ad.evaluate_expr(*e2), Value::boolean(true));
}

TEST(Parser, ScientificNotation) {
  EXPECT_EQ(eval("1.5e3"), Value::real(1500.0));
  EXPECT_EQ(eval("2e2"), Value::real(200.0));
}

// ---------- matchmaking ----------

ClassAd machine_ad(int memory, const std::string& arch) {
  ClassAd ad;
  ad.insert_int("Memory", memory);
  ad.insert_string("Arch", arch);
  return ad;
}

TEST(Matchmaker, SymmetricMatch) {
  ClassAd job;
  job.insert("Requirements", parse_expr("TARGET.Memory >= 2048"));
  ClassAd machine = machine_ad(4096, "x86_64");
  machine.insert("Requirements", parse_expr("true"));
  EXPECT_TRUE(Matchmaker::matches(job, machine));
}

TEST(Matchmaker, RejectsWhenEitherSideFails) {
  ClassAd job;
  job.insert("Requirements", parse_expr("TARGET.Memory >= 8192"));
  ClassAd machine = machine_ad(4096, "x86_64");
  EXPECT_FALSE(Matchmaker::matches(job, machine));

  ClassAd picky_machine = machine_ad(16384, "x86_64");
  picky_machine.insert("Requirements", parse_expr("TARGET.User == \"alice\""));
  ClassAd job2;
  job2.insert("Requirements", parse_expr("true"));
  job2.insert_string("User", "bob");
  EXPECT_FALSE(Matchmaker::matches(job2, picky_machine));
}

TEST(Matchmaker, MissingRequirementsMeansTrue) {
  ClassAd a;
  ClassAd b;
  EXPECT_TRUE(Matchmaker::matches(a, b));
}

TEST(Matchmaker, UndefinedRequirementsIsNoMatch) {
  ClassAd job;
  job.insert("Requirements", parse_expr("TARGET.NoSuchAttr >= 1"));
  ClassAd machine = machine_ad(4096, "x86_64");
  EXPECT_FALSE(Matchmaker::matches(job, machine));
}

TEST(Matchmaker, BestMatchUsesRank) {
  ClassAd job;
  job.insert("Requirements", parse_expr("TARGET.Memory >= 1024"));
  job.insert("Rank", parse_expr("TARGET.Memory"));
  std::vector<ClassAd> machines = {machine_ad(2048, "a"), machine_ad(8192, "b"),
                                   machine_ad(4096, "c")};
  const auto best = Matchmaker::best_match(job, machines);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->index, 1u);
  EXPECT_EQ(best->rank, 8192.0);
}

TEST(Matchmaker, AllMatchesSortedByRank) {
  ClassAd job;
  job.insert("Rank", parse_expr("TARGET.Memory"));
  std::vector<ClassAd> machines = {machine_ad(1, "a"), machine_ad(3, "b"),
                                   machine_ad(2, "c")};
  const auto all = Matchmaker::all_matches(job, machines);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].index, 1u);
  EXPECT_EQ(all[1].index, 2u);
  EXPECT_EQ(all[2].index, 0u);
}

TEST(Matchmaker, NoCandidates) {
  ClassAd job;
  EXPECT_FALSE(Matchmaker::best_match(job, {}).has_value());
}

}  // namespace
}  // namespace erms::classad
