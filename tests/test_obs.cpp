// Observability layer: metrics registry fold exactness, histogram bucket
// bounds, trace-ring eviction, JSONL shape, and the full ERMS lifecycle
// leaving an attributable action trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/erms.h"
#include "hdfs/cluster.h"
#include "obs/metrics_registry.h"
#include "obs/observability.h"
#include "obs/trace.h"

namespace erms {
namespace {

using obs::ActionKind;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::TraceRing;

// ---------- MetricsRegistry ----------

TEST(Registry, RegistrationIsIdempotentByName) {
  MetricsRegistry r;
  const auto a = r.counter("x.count");
  const auto b = r.counter("x.count");
  EXPECT_EQ(a.index, b.index);
  const auto h1 = r.histogram("x.hist", 0.0, 10.0, 10);
  const auto h2 = r.histogram("x.hist", 5.0, 99.0, 3);  // bounds ignored
  EXPECT_EQ(h1.index, h2.index);
  r.observe(h2, 9.5);
  EXPECT_EQ(r.histogram_value(h1).total(), 1u);
  EXPECT_EQ(r.histogram_value(h1).overflow(), 0u);  // original [0,10) held
}

TEST(Registry, InvalidIdsAreNoOps) {
  MetricsRegistry r;
  r.add(obs::CounterId{}, 5);
  r.set(obs::GaugeId{}, 1.0);
  r.observe(obs::HistogramId{}, 1.0);
  EXPECT_EQ(r.counter_value(obs::CounterId{}), 0u);
  EXPECT_EQ(r.snapshot().counters.size(), 0u);
}

TEST(Registry, ConcurrentIncrementsFoldExactly) {
  MetricsRegistry r;
  const auto c = r.counter("hits");
  const auto h = r.histogram("lat", 0.0, 1.0, 4);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&r, c, h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        r.add(c);
        r.observe(h, 0.5);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  // Once writers are quiescent the fold is exact — no increment lost.
  EXPECT_EQ(r.counter_value(c), kThreads * kPerThread);
  EXPECT_EQ(r.histogram_value(h).total(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(r.histogram_sum(h), 0.5 * kThreads * kPerThread);
  EXPECT_GE(r.shard_count(), 1u);
}

TEST(Registry, HistogramBucketBounds) {
  MetricsRegistry r;
  // Four buckets of width 2.5 over [0, 10).
  const auto h = r.histogram("lat", 0.0, 10.0, 4);
  r.observe(h, -0.01);  // underflow
  r.observe(h, 0.0);    // bucket 0 (inclusive lower bound)
  r.observe(h, 2.49);   // bucket 0
  r.observe(h, 2.5);    // bucket 1
  r.observe(h, 9.99);   // bucket 3
  r.observe(h, 10.0);   // overflow (exclusive upper bound)
  r.observe(h, 1e9);    // overflow
  const metrics::Histogram folded = r.histogram_value(h);
  EXPECT_EQ(folded.underflow(), 1u);
  EXPECT_EQ(folded.bucket(0), 2u);
  EXPECT_EQ(folded.bucket(1), 1u);
  EXPECT_EQ(folded.bucket(2), 0u);
  EXPECT_EQ(folded.bucket(3), 1u);
  EXPECT_EQ(folded.overflow(), 2u);
  EXPECT_EQ(folded.total(), 7u);
}

TEST(Registry, GaugeIsLastWriterWins) {
  MetricsRegistry r;
  const auto g = r.gauge("depth");
  r.set(g, 4.0);
  r.set(g, 2.0);
  EXPECT_DOUBLE_EQ(r.gauge_value(g), 2.0);
}

TEST(Registry, TwoRegistriesDoNotCrossTalk) {
  // The thread-local shard cache is keyed by a unique registry serial, so a
  // thread touching two registries (or a registry recreated at the same
  // address) must not alias their cells.
  auto first = std::make_unique<MetricsRegistry>();
  const auto c1 = first->counter("n");
  first->add(c1, 7);
  EXPECT_EQ(first->counter_value(c1), 7u);
  first.reset();
  MetricsRegistry second;
  const auto c2 = second.counter("n");
  EXPECT_EQ(second.counter_value(c2), 0u);
  second.add(c2, 1);
  EXPECT_EQ(second.counter_value(c2), 1u);
}

TEST(Registry, SnapshotAndReportsCarryEveryMetric) {
  MetricsRegistry r;
  r.add(r.counter("a.count"), 3);
  r.set(r.gauge("b.gauge"), 1.5);
  r.observe(r.histogram("c.hist", 0.0, 1.0, 2), 0.25);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].histogram.total(), 1u);

  const std::string text = r.text_report();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("b.gauge"), std::string::npos);
  EXPECT_NE(text.find("c.hist"), std::string::npos);

  std::ostringstream os;
  r.to_jsonl(os);
  const std::string jsonl = os.str();
  EXPECT_NE(jsonl.find("\"a.count\""), std::string::npos);
  // One JSON object per line.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
}

// ---------- TraceRing ----------

TEST(Trace, RingEvictsOldestAndCountsDrops) {
  TraceRing ring{4};
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.kind = ActionKind::kClassify;
    ev.path = "/f" + std::to_string(i);
    ring.record(std::move(ev));
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest, with the original (never reused) sequence numbers.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 7u + i);
    EXPECT_EQ(events[i].path, "/f" + std::to_string(6 + i));
  }
}

TEST(Trace, JsonOmitsSentinelFieldsAndEscapes) {
  TraceEvent ev;
  ev.kind = ActionKind::kNodeFailure;
  ev.node = 3;
  ev.count = 2;
  const std::string json = ev.to_json();
  EXPECT_NE(json.find("\"kind\":\"node_failure\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":3"), std::string::npos);
  // Unset fields stay out of the line.
  EXPECT_EQ(json.find("\"path\""), std::string::npos);
  EXPECT_EQ(json.find("\"rep_before\""), std::string::npos);
  EXPECT_EQ(json.find("\"job\""), std::string::npos);

  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Trace, ExportWritesOneLinePerEvent) {
  obs::Observability bundle{8};
  for (int i = 0; i < 3; ++i) {
    TraceEvent ev;
    ev.kind = ActionKind::kCommission;
    ev.node = i;
    bundle.trace().record(std::move(ev));
  }
  const std::string path = ::testing::TempDir() + "erms_trace_test.jsonl";
  ASSERT_TRUE(bundle.export_trace(path));
  std::ifstream in{path};
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

// ---------- the full control loop leaves an attributable trace ----------

struct Testbed {
  sim::Simulation sim;
  hdfs::Topology topo = hdfs::Topology::uniform(3, 6);
  std::unique_ptr<hdfs::Cluster> cluster;
  std::vector<hdfs::NodeId> pool;

  Testbed() {
    cluster = std::make_unique<hdfs::Cluster>(sim, topo, hdfs::ClusterConfig{});
    for (std::uint32_t n = 10; n < 18; ++n) {
      pool.push_back(hdfs::NodeId{n});
    }
  }
};

core::ErmsConfig observed_erms() {
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::seconds(60.0);
  cfg.thresholds.cold_age = sim::minutes(15.0);
  cfg.evaluation_period = sim::seconds(20.0);
  cfg.observe = true;
  return cfg;
}

std::uint64_t first_seq(const std::vector<TraceEvent>& events, ActionKind kind,
                        const std::string& to = "") {
  for (const TraceEvent& ev : events) {
    if (ev.kind == kind && (to.empty() || ev.to == to)) {
      return ev.seq;
    }
  }
  return 0;  // seq numbers start at 1, so 0 means "absent"
}

TEST(Observed, LifecycleEmitsOrderedAttributableTrace) {
  Testbed t;
  core::ErmsManager erms{*t.cluster, t.pool, observed_erms()};
  ASSERT_NE(erms.observability(), nullptr);
  const auto file = t.cluster->populate_file("/life", 128 * util::MiB, 3);
  erms.start();

  // Hot phase: heavy concurrent access.
  for (int i = 0; i < 300; ++i) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 0.6e6)}, [&t, &file] {
      t.cluster->read_file(hdfs::NodeId{static_cast<std::uint32_t>(rand() % 10)}, *file,
                           [](const hdfs::ReadOutcome&) {});
    });
  }
  // Then silence through cooled → cold, and a re-warm burst at 31 min.
  for (int i = 0; i < 300; ++i) {
    t.sim.schedule_at(
        sim::SimTime{sim::minutes(31.0).micros() + static_cast<std::int64_t>(i * 0.6e6)},
        [&t, &file] {
          t.cluster->read_file(hdfs::NodeId{static_cast<std::uint32_t>(rand() % 10)}, *file,
                               [](const hdfs::ReadOutcome&) {});
        });
  }
  t.sim.run_until(sim::SimTime{sim::minutes(40.0).micros()});

  const auto events = erms.observability()->trace().snapshot();
  ASSERT_FALSE(events.empty());

  // The lifecycle appears as an ordered chain of decisions and actions:
  // hot classify → increase, cooled classify → decrease, cold classify →
  // encode, hot-again classify → decode.
  const std::uint64_t hot = first_seq(events, ActionKind::kClassify, "hot");
  const std::uint64_t increase = first_seq(events, ActionKind::kReplicaIncrease);
  const std::uint64_t cooled = first_seq(events, ActionKind::kClassify, "cooled");
  const std::uint64_t decrease = first_seq(events, ActionKind::kReplicaDecrease);
  const std::uint64_t cold = first_seq(events, ActionKind::kClassify, "cold");
  const std::uint64_t encode = first_seq(events, ActionKind::kEncode);
  const std::uint64_t decode = first_seq(events, ActionKind::kDecode);
  ASSERT_NE(hot, 0u);
  ASSERT_NE(increase, 0u);
  ASSERT_NE(cooled, 0u);
  ASSERT_NE(decrease, 0u);
  ASSERT_NE(cold, 0u);
  ASSERT_NE(encode, 0u);
  ASSERT_NE(decode, 0u);
  EXPECT_LT(hot, increase);
  EXPECT_LT(increase, cooled);
  EXPECT_LT(cooled, decrease);
  EXPECT_LT(decrease, cold);
  EXPECT_LT(cold, encode);
  EXPECT_LT(encode, decode);

  // Every job event explains itself: rule, measured trigger vs threshold,
  // spans, and the replica delta it produced.
  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case ActionKind::kClassify:
        EXPECT_FALSE(ev.from.empty());
        EXPECT_FALSE(ev.to.empty());
        EXPECT_NE(ev.from, ev.to);
        break;
      case ActionKind::kReplicaIncrease:
        EXPECT_EQ(ev.outcome, "completed");
        EXPECT_GT(ev.rule, 0);
        EXPECT_GT(ev.trigger, ev.threshold);
        EXPECT_GT(ev.rep_after, ev.rep_before);
        EXPECT_GT(ev.bytes_moved, 0u);
        EXPECT_FALSE(ev.targets.empty());
        EXPECT_GT(ev.exec_span.micros(), 0);
        EXPECT_GE(ev.queue_wait.micros(), 0);
        break;
      case ActionKind::kReplicaDecrease:
        EXPECT_EQ(ev.outcome, "completed");
        EXPECT_LT(ev.rep_after, ev.rep_before);
        EXPECT_FALSE(ev.targets.empty());
        break;
      case ActionKind::kEncode:
        EXPECT_EQ(ev.outcome, "completed");
        EXPECT_EQ(ev.rep_after, 1);
        break;
      case ActionKind::kDecode:
        EXPECT_EQ(ev.outcome, "completed");
        EXPECT_GE(ev.rep_after, 3);
        break;
      default:
        break;
    }
  }

  // Ground-truth layer: every replica-count mutation the cluster performed
  // is present, so the decision events are corroborated.
  EXPECT_NE(first_seq(events, ActionKind::kSetReplication), 0u);
  EXPECT_NE(first_seq(events, ActionKind::kClusterEncode), 0u);
  EXPECT_NE(first_seq(events, ActionKind::kClusterDecode), 0u);
  EXPECT_NE(first_seq(events, ActionKind::kCommission), 0u);

  // The registry mirrors the manager's stats.
  obs::MetricsRegistry& r = erms.observability()->registry();
  const auto& stats = erms.stats();
  EXPECT_EQ(r.counter_value(r.counter("erms.promotions.hot")), stats.hot_promotions);
  EXPECT_EQ(r.counter_value(r.counter("erms.cooldowns")), stats.cooldowns);
  EXPECT_EQ(r.counter_value(r.counter("erms.encodes")), stats.encodes);
  EXPECT_EQ(r.counter_value(r.counter("erms.decodes")), stats.decodes);
  EXPECT_EQ(r.counter_value(r.counter("erms.evaluations")), stats.evaluations);
  EXPECT_GT(r.counter_value(r.counter("condor.jobs.completed")), 0u);
  EXPECT_GT(r.counter_value(r.counter("hdfs.reads.completed")), 0u);
  EXPECT_GT(r.counter_value(r.counter("net.flows.completed")), 0u);
  EXPECT_GT(r.counter_value(r.counter("standby.commissions")), 0u);
  EXPECT_GT(r.histogram_value(r.histogram("condor.exec.seconds", 0, 1, 1)).total(), 0u);

  erms.stop();
}

TEST(Observed, DisabledByDefaultAndDetachesCleanly) {
  Testbed t;
  {
    core::ErmsManager erms{*t.cluster, t.pool, core::ErmsConfig{}};
    EXPECT_EQ(erms.observability(), nullptr);
  }
  {
    core::ErmsConfig cfg = observed_erms();
    core::ErmsManager erms{*t.cluster, t.pool, cfg};
    erms.start();
    erms.stop();
  }
  // The manager is gone; the cluster it observed must still be usable (the
  // destructor detached the dangling registry pointers).
  const auto file = t.cluster->populate_file("/after", 64 * util::MiB, 3);
  bool read_ok = false;
  t.cluster->read_file(hdfs::NodeId{1}, *file,
                       [&read_ok](const hdfs::ReadOutcome& out) { read_ok = out.ok; });
  t.sim.run_until(sim::SimTime{sim::minutes(5.0).micros()});
  EXPECT_TRUE(read_ok);
}

}  // namespace
}  // namespace erms
