// Differential suite for the interned/sharded metadata path: sharding the
// namespace (lock granularity) or the judge's CEP engine (push parallelism)
// must never change observable behaviour. Every shard configuration has to
// tell the byte-identical story on the same chaos seed — same action-trace
// JSONL, same invariant report, same per-file replica footprint — and the
// feed's windowed counts must match a brute-force recount of the raw audit
// stream.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cep/engine.h"
#include "cep/sharded_engine.h"
#include "core/erms.h"
#include "fault/fault_plan.h"
#include "fault/invariant_checker.h"
#include "hdfs/cluster.h"
#include "judge/feed.h"

namespace erms {
namespace {

using hdfs::Cluster;
using hdfs::ClusterConfig;
using hdfs::NodeId;
using hdfs::Topology;
using util::MiB;

struct RunResult {
  bool ok{false};
  std::string trace;     // action-trace JSONL, byte for byte
  std::string report;    // InvariantChecker text
  std::string replicas;  // per-file replication + per-block location counts
};

/// One full chaos run at the given shard / batch / thread configuration.
/// Everything else — seed, workload, fault plan, thresholds — is held fixed.
RunResult run_scenario(std::uint64_t seed, std::size_t namespace_shards,
                       std::size_t judge_shards, std::size_t batch_flush = 0,
                       std::size_t sweep_threads = 1) {
  sim::Simulation sim;
  Topology topo = Topology::uniform(3, 6);
  ClusterConfig ccfg;
  ccfg.namespace_shards = namespace_shards;
  Cluster cluster{sim, topo, ccfg};
  std::vector<NodeId> pool;
  for (std::uint32_t n = 10; n < 18; ++n) {
    pool.push_back(NodeId{n});
  }

  core::ErmsConfig ecfg;
  ecfg.thresholds.window = sim::seconds(60.0);
  ecfg.thresholds.cold_age = sim::minutes(15.0);
  ecfg.evaluation_period = sim::seconds(20.0);
  ecfg.observe = true;
  ecfg.trace_capacity = 65536;
  ecfg.judge_shards = judge_shards;
  ecfg.judge_batch_flush_events = batch_flush;
  ecfg.sweep_threads = sweep_threads;
  core::ErmsManager erms{cluster, pool, ecfg};

  std::vector<hdfs::FileId> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back(
        *cluster.populate_file("/diff/f" + std::to_string(i), 128 * MiB, 3));
  }
  erms.start();

  // Skewed steady reads: file 0 takes half the traffic so the judge has hot
  // *and* quiet files to rule on while faults land.
  for (int i = 0; i < 240; ++i) {
    sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 2.5e6)},
                    [&cluster, &files, i] {
                      const std::size_t which =
                          (i % 2 == 0) ? 0 : 1 + (static_cast<std::size_t>(i) / 2) %
                                                     (files.size() - 1);
                      cluster.read_file(NodeId{static_cast<std::uint32_t>(i % 10)},
                                        files[which], [](const hdfs::ReadOutcome&) {});
                    });
  }

  fault::ChaosOptions opt;
  opt.start = sim::SimTime{sim::minutes(1.0).micros()};
  opt.end = sim::SimTime{sim::minutes(10.0).micros()};
  for (std::uint32_t n = 0; n < 10; ++n) {
    opt.victims.push_back(n);
  }
  opt.racks = {0, 1, 2};
  opt.max_concurrent_dead = 1;
  opt.mean_gap = sim::seconds(40.0);
  opt.min_downtime = sim::seconds(30.0);
  opt.max_downtime = sim::minutes(2.0);
  const fault::FaultPlan plan = fault::FaultPlan::randomized(opt, seed);
  fault::FaultInjector injector{cluster, &erms.observability()->trace()};
  injector.arm(plan);

  sim.run_until(sim::SimTime{sim::minutes(20.0).micros()});

  const fault::InvariantChecker checker{cluster, &erms.scheduler(),
                                        &erms.observability()->trace()};
  const fault::InvariantReport report = checker.check(/*converged=*/true);

  RunResult out;
  out.ok = report.ok;
  out.report = report.text;
  std::ostringstream trace;
  erms.observability()->trace().to_jsonl(trace);
  out.trace = trace.str();
  std::ostringstream reps;
  for (const hdfs::FileId f : cluster.metadata().file_ids()) {
    const hdfs::FileInfo* info = cluster.metadata().find(f);
    reps << info->path << " rep=" << info->replication
         << " coded=" << (info->erasure_coded ? 1 : 0) << " locs=";
    for (const hdfs::BlockId b : info->blocks) {
      reps << cluster.locations_view(b).size() << ',';
    }
    reps << '\n';
  }
  out.replicas = reps.str();
  erms.stop();
  return out;
}

TEST(ScaleDifferential, ShardConfigsAreByteIdentical) {
  const std::uint64_t seeds[] = {7, 11, 23};
  struct Config {
    std::size_t namespace_shards;
    std::size_t judge_shards;
  };
  const Config variants[] = {{4, 1}, {1, 4}, {8, 3}};
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RunResult base = run_scenario(seed, 1, 1);
    EXPECT_TRUE(base.ok) << base.report;
    EXPECT_FALSE(base.trace.empty());
    for (const Config& v : variants) {
      SCOPED_TRACE("namespace_shards=" + std::to_string(v.namespace_shards) +
                   " judge_shards=" + std::to_string(v.judge_shards));
      const RunResult got = run_scenario(seed, v.namespace_shards, v.judge_shards);
      EXPECT_EQ(got.trace, base.trace);
      EXPECT_EQ(got.report, base.report);
      EXPECT_EQ(got.replicas, base.replicas);
      EXPECT_EQ(got.ok, base.ok);
    }
  }
}

// Batched audit delivery and parallel judge sweeps are pure mechanics: any
// flush threshold and any thread count must replay the same chaos run to the
// same bytes as the per-event, single-threaded pipeline.
TEST(ScaleDifferential, BatchAndSweepConfigsAreByteIdentical) {
  const std::uint64_t seeds[] = {7, 11, 23};
  struct Config {
    std::size_t batch_flush;
    std::size_t sweep_threads;
  };
  const Config variants[] = {{1, 1}, {7, 4}, {4096, 8}, {256, 3}};
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RunResult base = run_scenario(seed, 1, 1);
    EXPECT_TRUE(base.ok) << base.report;
    EXPECT_FALSE(base.trace.empty());
    for (const Config& v : variants) {
      SCOPED_TRACE("batch_flush=" + std::to_string(v.batch_flush) +
                   " sweep_threads=" + std::to_string(v.sweep_threads));
      const RunResult got =
          run_scenario(seed, 1, 1, v.batch_flush, v.sweep_threads);
      EXPECT_EQ(got.trace, base.trace);
      EXPECT_EQ(got.report, base.report);
      EXPECT_EQ(got.replicas, base.replicas);
      EXPECT_EQ(got.ok, base.ok);
    }
  }
}

// Batching, sweeping and sharding compose: the full stack enabled at once
// still matches the plain baseline.
TEST(ScaleDifferential, CombinedShardBatchSweepIsByteIdentical) {
  for (const std::uint64_t seed : {7ull, 23ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RunResult base = run_scenario(seed, 1, 1);
    const RunResult got = run_scenario(seed, 4, 3, 7, 4);
    EXPECT_EQ(got.trace, base.trace);
    EXPECT_EQ(got.report, base.report);
    EXPECT_EQ(got.replicas, base.replicas);
  }
}

// ---- feed vs. brute force ----------------------------------------------------

audit::AuditEvent scripted_event(double t_s, std::int64_t fid, bool open,
                                 std::int64_t blk, std::int64_t dn) {
  audit::AuditEvent e;
  e.time = sim::SimTime{static_cast<std::int64_t>(t_s * 1e6)};
  e.cmd = open ? "open" : "read";
  e.src = "/diff/f" + std::to_string(fid);
  e.fid = fid;
  if (!open) {
    e.block = blk;
    e.datanode = dn;
  }
  return e;
}

/// Deterministic pseudo-random audit script shared by the oracle tests.
std::vector<audit::AuditEvent> scripted_stream() {
  std::vector<audit::AuditEvent> events;
  std::uint64_t h = 0x243F6A8885A308D3ULL;  // pi digits, no RNG dependency
  for (int i = 0; i < 4000; ++i) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    const auto fid = static_cast<std::int64_t>(1 + h % 37);
    const bool open = (h >> 8) % 4 == 0;
    const auto blk = static_cast<std::int64_t>(100 + (h >> 16) % 5);
    const auto dn = static_cast<std::int64_t>((h >> 24) % 9);
    events.push_back(scripted_event(i * 0.05, fid, open, blk, dn));
  }
  return events;
}

/// Replays the script into a feed over `engine`, then compares every windowed
/// count against a brute-force recount of the raw events.
void check_feed_against_oracle(cep::EngineBase& engine) {
  const sim::SimDuration window = sim::seconds(30.0);
  judge::AccessStatsFeed feed{engine, window};
  const std::vector<audit::AuditEvent> events = scripted_stream();
  for (const audit::AuditEvent& e : events) {
    feed.on_audit(e);
  }
  const sim::SimTime now = events.back().time;
  feed.advance_to(now);

  // Brute force: count open/read events with time in (now - window, now].
  std::map<std::int64_t, std::uint64_t> want_files;
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> want_blocks;
  std::map<std::int64_t, std::uint64_t> want_nodes;
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> want_file_node;
  for (const audit::AuditEvent& e : events) {
    if (e.time <= now - window) {
      continue;
    }
    if (e.cmd == "open") {
      ++want_files[e.fid];
    } else {
      ++want_blocks[{e.fid, *e.block}];
      ++want_nodes[*e.datanode];
      ++want_file_node[{e.fid, *e.datanode}];
    }
  }

  std::map<std::int64_t, std::uint64_t> got_files;
  feed.for_each_file_access([&](hdfs::FileId fid, std::uint64_t n) {
    got_files[static_cast<std::int64_t>(fid.value())] = n;
  });
  EXPECT_EQ(got_files, want_files);

  std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> got_blocks;
  feed.for_each_block_access(
      [&](hdfs::FileId fid, std::int64_t blk, std::uint64_t n) {
        got_blocks[{static_cast<std::int64_t>(fid.value()), blk}] = n;
      });
  EXPECT_EQ(got_blocks, want_blocks);

  std::map<std::int64_t, std::uint64_t> got_nodes;
  feed.for_each_node_access(
      [&](std::int64_t dn, std::uint64_t n) { got_nodes[dn] = n; });
  EXPECT_EQ(got_nodes, want_nodes);

  for (const auto& [dn, unused] : want_nodes) {
    std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> got_on;
    feed.for_each_file_access_on_node(dn, [&](hdfs::FileId fid, std::uint64_t n) {
      got_on[{static_cast<std::int64_t>(fid.value()), dn}] = n;
    });
    for (const auto& [key, n] : got_on) {
      EXPECT_EQ(n, want_file_node[key]) << "fid=" << key.first << " dn=" << key.second;
    }
    std::size_t want_on_count = 0;
    for (const auto& [key, n] : want_file_node) {
      want_on_count += key.second == dn ? 1 : 0;
    }
    EXPECT_EQ(got_on.size(), want_on_count) << "dn=" << dn;
  }

  // Per-file point probes agree with the bulk iteration.
  for (const auto& [fid, n] : want_files) {
    EXPECT_EQ(feed.file_accesses(hdfs::FileId{
                  static_cast<hdfs::FileId::rep_type>(fid)}),
              n);
  }
}

TEST(ScaleDifferential, ScalarFeedMatchesBruteForceRecount) {
  cep::Engine engine;
  check_feed_against_oracle(engine);
}

TEST(ScaleDifferential, ShardedFeedMatchesBruteForceRecount) {
  cep::ShardedEngineOptions opts;
  opts.shards = 4;
  opts.batch_events = 64;
  opts.route_by = "fid";
  cep::ShardedEngine engine{opts};
  check_feed_against_oracle(engine);
}

}  // namespace
}  // namespace erms
