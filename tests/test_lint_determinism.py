#!/usr/bin/env python3
"""Tests for scripts/lint_determinism.py, run under ctest.

Each bad fixture in tests/lint_fixtures/ must trip exactly the rules it was
written for; the clean fixture must produce zero findings; and the baseline
mechanism must accept explained entries, reject unexplained ones, and flag
stale ones. Stdlib only — this is part of the tier-1 test suite.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINTER = REPO / "scripts" / "lint_determinism.py"
FIXTURES = REPO / "tests" / "lint_fixtures"


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, str(LINTER), *map(str, args)],
        capture_output=True, text=True, cwd=REPO,
    )
    return proc.returncode, proc.stdout + proc.stderr


def rule_counts(output):
    counts = {}
    for line in output.splitlines():
        if "[" in line and "]" in line and ":" in line:
            rule = line.split("[", 1)[1].split("]", 1)[0]
            counts[rule] = counts.get(rule, 0) + 1
    return counts


class FixtureRules(unittest.TestCase):
    def assert_fixture(self, name, rule, expected_count):
        code, out = run_lint(FIXTURES / name, "--no-baseline")
        self.assertEqual(code, 1, f"{name} should fail the linter:\n{out}")
        counts = rule_counts(out)
        self.assertEqual(
            counts.get(rule, 0), expected_count,
            f"{name}: expected {expected_count}x [{rule}], got {counts}:\n{out}",
        )
        self.assertEqual(
            sum(counts.values()), expected_count,
            f"{name}: unexpected extra rules fired: {counts}:\n{out}",
        )

    def test_wallclock(self):
        self.assert_fixture("bad_wallclock.cpp", "wall-clock", 4)

    def test_unordered_drain(self):
        # Plain drain, member-resolved drain, unsorted bulk copy — and NOT
        # the sorted copy, the allowlisted loop, or the ordered member.
        self.assert_fixture("bad_unordered_drain.cpp", "unordered-drain", 3)

    def test_unseeded_rng(self):
        self.assert_fixture("bad_unseeded_rng.cpp", "ambient-rng", 5)

    def test_pointer_key(self):
        self.assert_fixture("bad_pointer_key.cpp", "pointer-key", 2)

    def test_raw_mutex(self):
        self.assert_fixture("bad_raw_mutex.cpp", "raw-mutex", 3)

    def test_uninit_trace_struct(self):
        self.assert_fixture("bad_uninit_trace_struct.cpp", "uninit-member", 3)

    def test_clean_fixture_passes(self):
        code, out = run_lint(FIXTURES / "clean_fixture.cpp", "--no-baseline")
        self.assertEqual(code, 0, f"clean fixture must lint clean:\n{out}")


class BaselineMechanism(unittest.TestCase):
    def write_baseline(self, entries):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False, dir=tempfile.gettempdir()
        )
        json.dump({"version": 1, "entries": entries}, f)
        f.close()
        self.addCleanup(Path(f.name).unlink)
        return f.name

    def entry(self, reason):
        # Matches the std::set<const Session*> line in bad_pointer_key.cpp.
        return {
            "file": "tests/lint_fixtures/bad_pointer_key.cpp",
            "rule": "pointer-key",
            "line_text": "std::set<const Session*> active;"
                         "        // BAD: iteration order differs per run",
            "reason": reason,
        }

    def map_entry(self, reason):
        return {
            "file": "tests/lint_fixtures/bad_pointer_key.cpp",
            "rule": "pointer-key",
            "line_text": "std::map<Session*, std::string> names;"
                         "  // BAD: pointer order = allocation order",
            "reason": reason,
        }

    def test_explained_baseline_suppresses(self):
        baseline = self.write_baseline(
            [self.entry("fixture"), self.map_entry("fixture")]
        )
        code, out = run_lint(
            FIXTURES / "bad_pointer_key.cpp", "--baseline", baseline
        )
        self.assertEqual(code, 0, f"explained baseline must suppress:\n{out}")

    def test_unexplained_baseline_fails(self):
        baseline = self.write_baseline(
            [self.entry(""), self.map_entry("fixture")]
        )
        code, out = run_lint(
            FIXTURES / "bad_pointer_key.cpp", "--baseline", baseline
        )
        self.assertEqual(code, 1)
        self.assertIn("WITHOUT a reason", out)

    def test_stale_baseline_entry_fails(self):
        stale = {
            "file": "tests/lint_fixtures/bad_pointer_key.cpp",
            "rule": "wall-clock",
            "line_text": "auto t = std::chrono::system_clock::now();",
            "reason": "was fixed long ago",
        }
        baseline = self.write_baseline(
            [self.entry("fixture"), self.map_entry("fixture"), stale]
        )
        code, out = run_lint(
            FIXTURES / "bad_pointer_key.cpp", "--baseline", baseline
        )
        self.assertEqual(code, 1)
        self.assertIn("stale-baseline", out)


class TreeIsClean(unittest.TestCase):
    def test_src_lints_clean_with_checked_in_baseline(self):
        code, out = run_lint(REPO / "src")
        self.assertEqual(code, 0, f"src/ must lint clean:\n{out}")

    def test_checked_in_baseline_reasons_nonempty(self):
        data = json.loads((REPO / "scripts" / "determinism_baseline.json").read_text())
        for entry in data["entries"]:
            self.assertTrue(
                entry.get("reason", "").strip(),
                f"baseline entry without a reason: {entry}",
            )


if __name__ == "__main__":
    unittest.main(verbosity=2)
