#include <gtest/gtest.h>

#include "audit/audit.h"

namespace erms::audit {
namespace {

AuditEvent sample_event() {
  AuditEvent e;
  e.time = sim::SimTime{3'725'123'000};  // 01:02:05.123
  e.allowed = true;
  e.ugi = "hadoop";
  e.ip = "/10.0.1.7";
  e.cmd = "open";
  e.src = "/data/part-0001";
  return e;
}

TEST(AuditFormat, LineShape) {
  const std::string line = sample_event().to_line();
  EXPECT_NE(line.find("INFO FSNamesystem.audit:"), std::string::npos);
  EXPECT_NE(line.find("allowed=true"), std::string::npos);
  EXPECT_NE(line.find("ugi=hadoop"), std::string::npos);
  EXPECT_NE(line.find("ip=/10.0.1.7"), std::string::npos);
  EXPECT_NE(line.find("cmd=open"), std::string::npos);
  EXPECT_NE(line.find("src=/data/part-0001"), std::string::npos);
  EXPECT_NE(line.find("dst=null"), std::string::npos);
  EXPECT_NE(line.find("01:02:05,123"), std::string::npos);
}

TEST(AuditFormat, ExtensionsOnlyWhenPresent) {
  AuditEvent e = sample_event();
  EXPECT_EQ(e.to_line().find("blk="), std::string::npos);
  e.block = 42;
  e.datanode = 7;
  const std::string line = e.to_line();
  EXPECT_NE(line.find("blk=42"), std::string::npos);
  EXPECT_NE(line.find("dn=7"), std::string::npos);
}

TEST(AuditParse, RoundTrip) {
  AuditEvent e = sample_event();
  e.block = 11;
  e.datanode = 3;
  const auto parsed = AuditLogParser::parse_line(e.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, e.time);
  EXPECT_EQ(parsed->allowed, e.allowed);
  EXPECT_EQ(parsed->ugi, e.ugi);
  EXPECT_EQ(parsed->ip, e.ip);
  EXPECT_EQ(parsed->cmd, e.cmd);
  EXPECT_EQ(parsed->src, e.src);
  EXPECT_EQ(parsed->block, e.block);
  EXPECT_EQ(parsed->datanode, e.datanode);
}

TEST(AuditParse, RoundTripDenied) {
  AuditEvent e = sample_event();
  e.allowed = false;
  const auto parsed = AuditLogParser::parse_line(e.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->allowed);
}

TEST(AuditParse, RealHadoopLine) {
  const auto parsed = AuditLogParser::parse_line(
      "2012-05-03 14:21:07,987 INFO FSNamesystem.audit: allowed=true "
      "ugi=webuser ip=/10.0.2.14 cmd=open src=/logs/day1 dst=null perm=null");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cmd, "open");
  EXPECT_EQ(parsed->src, "/logs/day1");
  EXPECT_TRUE(parsed->dst.empty());
  EXPECT_FALSE(parsed->block.has_value());
}

TEST(AuditParse, RejectsNonAuditLines) {
  EXPECT_FALSE(AuditLogParser::parse_line("").has_value());
  EXPECT_FALSE(AuditLogParser::parse_line("not an audit line at all").has_value());
  EXPECT_FALSE(AuditLogParser::parse_line(
                   "2012-05-03 14:21:07,987 INFO NameNode: something else entirely")
                   .has_value());
  // Missing cmd= field.
  EXPECT_FALSE(AuditLogParser::parse_line(
                   "2012-05-03 14:21:07,987 INFO FSNamesystem.audit: allowed=true")
                   .has_value());
}

TEST(AuditParse, WholeLogSkipsJunk) {
  const AuditEvent a = sample_event();
  AuditEvent b = sample_event();
  b.cmd = "create";
  const std::string log =
      a.to_line() + "\njunk line\n\n" + b.to_line() + "\ntrailing junk";
  const auto events = AuditLogParser::parse(log);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cmd, "open");
  EXPECT_EQ(events[1].cmd, "create");
}

TEST(AuditCep, EventCarriesAttributes) {
  AuditEvent e = sample_event();
  e.block = 9;
  e.datanode = 2;
  const cep::Event ce = e.to_cep_event();
  EXPECT_EQ(ce.type, "audit");
  EXPECT_EQ(ce.time, e.time);
  EXPECT_EQ(ce.attrs.get_string("cmd"), "open");
  EXPECT_EQ(ce.attrs.get_string("src"), "/data/part-0001");
  EXPECT_EQ(ce.attrs.get_int("blk"), 9);
  EXPECT_EQ(ce.attrs.get_int("dn"), 2);
  EXPECT_EQ(ce.attrs.get_bool("allowed"), true);
}

TEST(AuditCep, OmitsAbsentExtensions) {
  const cep::Event ce = sample_event().to_cep_event();
  EXPECT_FALSE(ce.attrs.contains("blk"));
  EXPECT_FALSE(ce.attrs.contains("dn"));
  EXPECT_FALSE(ce.attrs.contains("dst"));
}

TEST(AuditTimestamp, MultiDayRollover) {
  AuditEvent e = sample_event();
  e.time = sim::SimTime{(48ll * 3600 + 61) * 1'000'000};  // day 3, 00:01:01
  const auto parsed = AuditLogParser::parse_line(e.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, e.time);
}

}  // namespace
}  // namespace erms::audit
