#include <gtest/gtest.h>

#include "audit/audit.h"

namespace erms::audit {
namespace {

AuditEvent sample_event() {
  AuditEvent e;
  e.time = sim::SimTime{3'725'123'000};  // 01:02:05.123
  e.allowed = true;
  e.ugi = "hadoop";
  e.ip = "/10.0.1.7";
  e.cmd = "open";
  e.src = "/data/part-0001";
  return e;
}

TEST(AuditFormat, LineShape) {
  const std::string line = sample_event().to_line();
  EXPECT_NE(line.find("INFO FSNamesystem.audit:"), std::string::npos);
  EXPECT_NE(line.find("allowed=true"), std::string::npos);
  EXPECT_NE(line.find("ugi=hadoop"), std::string::npos);
  EXPECT_NE(line.find("ip=/10.0.1.7"), std::string::npos);
  EXPECT_NE(line.find("cmd=open"), std::string::npos);
  EXPECT_NE(line.find("src=/data/part-0001"), std::string::npos);
  EXPECT_NE(line.find("dst=null"), std::string::npos);
  EXPECT_NE(line.find("01:02:05,123"), std::string::npos);
}

TEST(AuditFormat, ExtensionsOnlyWhenPresent) {
  AuditEvent e = sample_event();
  EXPECT_EQ(e.to_line().find("blk="), std::string::npos);
  e.block = 42;
  e.datanode = 7;
  const std::string line = e.to_line();
  EXPECT_NE(line.find("blk=42"), std::string::npos);
  EXPECT_NE(line.find("dn=7"), std::string::npos);
}

TEST(AuditParse, RoundTrip) {
  AuditEvent e = sample_event();
  e.block = 11;
  e.datanode = 3;
  const auto parsed = AuditLogParser::parse_line(e.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, e.time);
  EXPECT_EQ(parsed->allowed, e.allowed);
  EXPECT_EQ(parsed->ugi, e.ugi);
  EXPECT_EQ(parsed->ip, e.ip);
  EXPECT_EQ(parsed->cmd, e.cmd);
  EXPECT_EQ(parsed->src, e.src);
  EXPECT_EQ(parsed->block, e.block);
  EXPECT_EQ(parsed->datanode, e.datanode);
}

TEST(AuditParse, RoundTripDenied) {
  AuditEvent e = sample_event();
  e.allowed = false;
  const auto parsed = AuditLogParser::parse_line(e.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->allowed);
}

TEST(AuditParse, RealHadoopLine) {
  const auto parsed = AuditLogParser::parse_line(
      "2012-05-03 14:21:07,987 INFO FSNamesystem.audit: allowed=true "
      "ugi=webuser ip=/10.0.2.14 cmd=open src=/logs/day1 dst=null perm=null");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cmd, "open");
  EXPECT_EQ(parsed->src, "/logs/day1");
  EXPECT_TRUE(parsed->dst.empty());
  EXPECT_FALSE(parsed->block.has_value());
}

TEST(AuditParse, RejectsNonAuditLines) {
  EXPECT_FALSE(AuditLogParser::parse_line("").has_value());
  EXPECT_FALSE(AuditLogParser::parse_line("not an audit line at all").has_value());
  EXPECT_FALSE(AuditLogParser::parse_line(
                   "2012-05-03 14:21:07,987 INFO NameNode: something else entirely")
                   .has_value());
  // Missing cmd= field.
  EXPECT_FALSE(AuditLogParser::parse_line(
                   "2012-05-03 14:21:07,987 INFO FSNamesystem.audit: allowed=true")
                   .has_value());
}

TEST(AuditParse, WholeLogSkipsJunk) {
  const AuditEvent a = sample_event();
  AuditEvent b = sample_event();
  b.cmd = "create";
  const std::string log =
      a.to_line() + "\njunk line\n\n" + b.to_line() + "\ntrailing junk";
  const auto events = AuditLogParser::parse(log);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cmd, "open");
  EXPECT_EQ(events[1].cmd, "create");
}

TEST(AuditCep, EventCarriesAttributes) {
  AuditEvent e = sample_event();
  e.block = 9;
  e.datanode = 2;
  const cep::Event ce = e.to_cep_event();
  EXPECT_EQ(ce.type, "audit");
  EXPECT_EQ(ce.time, e.time);
  EXPECT_EQ(ce.attrs.get_string("cmd"), "open");
  EXPECT_EQ(ce.attrs.get_string("src"), "/data/part-0001");
  EXPECT_EQ(ce.attrs.get_int("blk"), 9);
  EXPECT_EQ(ce.attrs.get_int("dn"), 2);
  EXPECT_EQ(ce.attrs.get_bool("allowed"), true);
}

TEST(AuditCep, OmitsAbsentExtensions) {
  const cep::Event ce = sample_event().to_cep_event();
  EXPECT_FALSE(ce.attrs.contains("blk"));
  EXPECT_FALSE(ce.attrs.contains("dn"));
  EXPECT_FALSE(ce.attrs.contains("dst"));
}

TEST(AuditParse, MalformedAndTruncatedLines) {
  // Empty / whitespace-only input.
  EXPECT_FALSE(AuditLogParser::parse_line("").has_value());
  EXPECT_FALSE(AuditLogParser::parse_line("   ").has_value());
  // Truncated before the audit tag.
  EXPECT_FALSE(AuditLogParser::parse_line("2012-05-01 01:02:05,123").has_value());
  EXPECT_FALSE(AuditLogParser::parse_line("2012-05-01 01:02:05,123 INFO").has_value());
  // Truncated timestamps.
  EXPECT_FALSE(AuditLogParser::parse_line(
                   "2012-05 01:02:05,123 INFO FSNamesystem.audit: cmd=open src=/a")
                   .has_value());
  EXPECT_FALSE(AuditLogParser::parse_line(
                   "2012-05-01 01:02 INFO FSNamesystem.audit: cmd=open src=/a")
                   .has_value());
  EXPECT_FALSE(AuditLogParser::parse_line(
                   "2012-05-01 01:02:05 INFO FSNamesystem.audit: cmd=open src=/a")
                   .has_value());
  // Non-numeric timestamp fields.
  EXPECT_FALSE(AuditLogParser::parse_line(
                   "yyyy-mm-dd 01:02:05,123 INFO FSNamesystem.audit: cmd=open src=/a")
                   .has_value());
  // Wrong tag.
  EXPECT_FALSE(AuditLogParser::parse_line(
                   "2012-05-01 01:02:05,123 INFO NameNode.audit: cmd=open src=/a")
                   .has_value());
  // A line cut off mid key=value list still parses what it has, as long as
  // cmd= survived.
  const std::string full = sample_event().to_line();
  const std::string cut = full.substr(0, full.find(" src="));
  const auto parsed = AuditLogParser::parse_line(cut);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cmd, "open");
  EXPECT_TRUE(parsed->src.empty());
  // Cut before cmd= → rejected.
  EXPECT_FALSE(
      AuditLogParser::parse_line(full.substr(0, full.find(" cmd="))).has_value());
}

TEST(AuditParse, FieldsWithoutEqualsAreSkipped) {
  const auto parsed = AuditLogParser::parse_line(
      "2012-05-01 01:02:05,123 INFO FSNamesystem.audit: noise cmd=open src=/a junk");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cmd, "open");
  EXPECT_EQ(parsed->src, "/a");
}

TEST(AuditParse, NonNumericExtensionParsesAsZero) {
  // strtoll-compatible behavior: garbage yields 0, not a reject.
  const auto parsed = AuditLogParser::parse_line(
      "2012-05-01 01:02:05,123 INFO FSNamesystem.audit: cmd=read src=/a blk=abc dn=9");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->block.has_value());
  EXPECT_EQ(*parsed->block, 0);
  EXPECT_EQ(parsed->datanode, 9);
}

TEST(AuditParse, ParseReservesAndHandlesTrailingNewline) {
  std::string log;
  for (int i = 0; i < 100; ++i) {
    AuditEvent e = sample_event();
    e.time = sim::SimTime{static_cast<std::int64_t>(i) * 1'000'000};
    log += e.to_line();
    log += '\n';
  }
  const auto events = AuditLogParser::parse(log);
  ASSERT_EQ(events.size(), 100u);
  EXPECT_EQ(events[99].time, sim::SimTime{99'000'000});
  // No trailing newline on the last line.
  const auto events2 = AuditLogParser::parse(log.substr(0, log.size() - 1));
  EXPECT_EQ(events2.size(), 100u);
}

TEST(AuditSlotted, MatchesClassAdEventAttributes) {
  cep::SymbolTable attrs(/*fold_case=*/true);
  cep::SymbolTable streams(/*fold_case=*/false);
  const AuditSlots slots = AuditSlots::resolve(attrs, streams);
  AuditEvent e = sample_event();
  e.block = 11;
  e.datanode = 3;
  e.dst = "/moved";
  cep::SlottedEvent slotted;
  e.to_slotted(slots, slotted);
  EXPECT_EQ(slotted.time, e.time);
  EXPECT_EQ(slotted.stream, streams.find(AuditEvent::kStream));
  ASSERT_NE(slotted.get(slots.cmd), nullptr);
  EXPECT_EQ(slotted.get(slots.cmd)->s, "open");
  EXPECT_EQ(slotted.get(slots.src)->s, "/data/part-0001");
  EXPECT_EQ(slotted.get(slots.blk)->i, 11);
  EXPECT_EQ(slotted.get(slots.dn)->i, 3);
  EXPECT_EQ(slotted.get(slots.dst)->s, "/moved");
  EXPECT_TRUE(slotted.get(slots.allowed)->b);

  // Reusing the event for a record without extensions clears them.
  AuditEvent bare = sample_event();
  bare.to_slotted(slots, slotted);
  EXPECT_EQ(slotted.get(slots.blk), nullptr);
  EXPECT_EQ(slotted.get(slots.dn), nullptr);
  EXPECT_EQ(slotted.get(slots.dst), nullptr);
  EXPECT_EQ(slotted.get(slots.cmd)->s, "open");
}

TEST(AuditTimestamp, MultiDayRollover) {
  AuditEvent e = sample_event();
  e.time = sim::SimTime{(48ll * 3600 + 61) * 1'000'000};  // day 3, 00:01:01
  const auto parsed = AuditLogParser::parse_line(e.to_line());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, e.time);
}

}  // namespace
}  // namespace erms::audit
