// Differential suite for the erasure-codec zoo (RS / AzureLRC /
// Hitchhiker-XOR+). Every codec is checked three ways:
//  - encode against a byte-at-a-time GF(2^8) reference that multiplies the
//    generator matrix directly (no region kernels, no table caches);
//  - every single-erasure pattern through both reconstruct() and the
//    plan_repair()/repair() path, byte-identical to the original shards
//    (the issue's acceptance gate);
//  - the repair-bandwidth contracts: LRC reads its local group, Hitchhiker
//    reads (k+|group|)/2 shard-equivalents, RS reads k — these plans are
//    what the cluster sizes its recovery flows from.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "ec/azure_lrc.h"
#include "ec/codec.h"
#include "ec/codec_registry.h"
#include "ec/hh_xor_plus.h"
#include "ec/stripe_codec.h"
#include "util/thread_pool.h"

namespace erms::ec {
namespace {

using Shard = ErasureCodec::Shard;

std::vector<Shard> random_shards(std::size_t count, std::size_t len, unsigned seed) {
  std::mt19937 rng{seed};
  std::vector<Shard> shards(count);
  for (auto& s : shards) {
    s.resize(len);
    for (auto& b : s) {
      b = static_cast<std::uint8_t>(rng() % 256);
    }
  }
  return shards;
}

/// Brute-force reference encode: walk the generator matrix and multiply
/// byte by byte with GF256::mul. Shares nothing with LinearCodec's cached
/// MulTable/region-kernel path.
std::vector<Shard> naive_encode(const LinearCodec& codec, const std::vector<Shard>& data) {
  const Matrix& gen = codec.generator();
  const std::size_t k = codec.data_shards();
  const std::size_t m = codec.parity_shards();
  const std::size_t s = codec.subshards();
  const std::size_t len = data.front().size();
  const std::size_t cell = len / s;
  std::vector<Shard> parity(m, Shard(len, 0));
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t t = 0; t < s; ++t) {
      const std::size_t row = (k + j) * s + t;
      std::uint8_t* dst = parity[j].data() + t * cell;
      for (std::size_t c = 0; c < k * s; ++c) {
        const GF256::Elem f = gen.at(row, c);
        if (f == 0) {
          continue;
        }
        const std::uint8_t* src = data[c / s].data() + (c % s) * cell;
        for (std::size_t b = 0; b < cell; ++b) {
          dst[b] = GF256::add(dst[b], GF256::mul(f, src[b]));
        }
      }
    }
  }
  return parity;
}

struct ZooEntry {
  const char* label;
  CodecSpec spec;
  std::size_t k;
};

/// The shapes the repo's benchmarks and the paper's configs use, plus edge
/// shapes (k=1, tiny groups).
const ZooEntry kZoo[] = {
    {"rs8_4", {CodecKind::kRs, 4, 0, 0}, 8},
    {"rs6_4", {CodecKind::kRs, 4, 0, 0}, 6},
    {"rs1_4", {CodecKind::kRs, 4, 0, 0}, 1},
    {"azure_lrc8_2_2", {CodecKind::kAzureLrc, 0, 2, 2}, 8},
    {"azure_lrc6_3_2", {CodecKind::kAzureLrc, 0, 3, 2}, 6},
    {"azure_lrc5_2_1", {CodecKind::kAzureLrc, 0, 2, 1}, 5},
    {"hh_xor_plus8_4", {CodecKind::kHitchhikerXorPlus, 4, 0, 0}, 8},
    {"hh_xor_plus6_3", {CodecKind::kHitchhikerXorPlus, 3, 0, 0}, 6},
    {"hh_xor_plus4_2", {CodecKind::kHitchhikerXorPlus, 2, 0, 0}, 4},
};

class CodecZooTest : public ::testing::TestWithParam<ZooEntry> {};

TEST_P(CodecZooTest, EncodeMatchesNaiveGfReference) {
  const ZooEntry& e = GetParam();
  auto codec = make_codec(e.spec, e.k);
  auto* linear = dynamic_cast<LinearCodec*>(codec.get());
  ASSERT_NE(linear, nullptr);
  for (const std::size_t len : {std::size_t{2}, std::size_t{64}, std::size_t{1024}}) {
    const auto data = random_shards(e.k, len, static_cast<unsigned>(17 + len));
    const auto fast = codec->encode(data);
    const auto slow = naive_encode(*linear, data);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t j = 0; j < fast.size(); ++j) {
      ASSERT_EQ(fast[j], slow[j]) << e.label << " parity " << j << " len " << len;
    }
  }
}

TEST_P(CodecZooTest, EverySingleErasureReconstructsByteIdentical) {
  const ZooEntry& e = GetParam();
  auto codec = make_codec(e.spec, e.k);
  const std::size_t n = codec->total_shards();
  const auto data = random_shards(e.k, 256, 31);
  auto parity = codec->encode(data);
  std::vector<Shard> original = data;
  original.insert(original.end(), parity.begin(), parity.end());

  for (std::size_t lost = 0; lost < n; ++lost) {
    // reconstruct() path.
    {
      std::vector<Shard> shards = original;
      std::vector<bool> present(n, true);
      present[lost] = false;
      shards[lost].clear();
      ASSERT_TRUE(codec->reconstruct(shards, present)) << e.label << " lost " << lost;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(shards[i], original[i]) << e.label << " lost " << lost << " shard " << i;
      }
    }
    // plan_repair()/repair() path — and the plan must not touch the lost
    // shard or any cell outside the survivors.
    {
      std::vector<Shard> shards = original;
      std::vector<bool> present(n, true);
      present[lost] = false;
      shards[lost].clear();
      const auto plan = codec->plan_repair(lost, present);
      ASSERT_TRUE(plan.has_value()) << e.label << " lost " << lost;
      for (const CellRef c : plan->cells) {
        ASSERT_NE(c.shard, lost);
        ASSERT_LT(c.sub, codec->subshards());
      }
      ASSERT_TRUE(codec->repair(shards, lost, *plan)) << e.label << " lost " << lost;
      ASSERT_EQ(shards[lost], original[lost]) << e.label << " lost " << lost;
    }
  }
}

TEST_P(CodecZooTest, RepairPlanNeverReadsMoreThanRs) {
  const ZooEntry& e = GetParam();
  auto codec = make_codec(e.spec, e.k);
  const std::size_t n = codec->total_shards();
  std::vector<bool> present(n, true);
  for (std::size_t lost = 0; lost < n; ++lost) {
    present[lost] = false;
    const auto plan = codec->plan_repair(lost, present);
    present[lost] = true;
    ASSERT_TRUE(plan.has_value());
    // RS reads k whole shards; no code in the zoo ever reads more.
    EXPECT_LE(plan->shard_equivalents(), static_cast<double>(e.k) + 1e-9)
        << e.label << " lost " << lost;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, CodecZooTest, ::testing::ValuesIn(kZoo),
                         [](const ::testing::TestParamInfo<ZooEntry>& info) {
                           return std::string(info.param.label);
                         });

// ---------- repair-bandwidth contracts ----------

TEST(AzureLrc, DataRepairReadsOnlyTheLocalGroup) {
  AzureLrcCodec lrc(8, 2, 2);  // groups {0..3} {4..7}, locals 8,9, globals 10,11
  std::vector<bool> present(12, true);
  for (std::size_t lost = 0; lost < 8; ++lost) {
    present[lost] = false;
    const auto plan = lrc.plan_repair(lost, present);
    present[lost] = true;
    ASSERT_TRUE(plan.has_value());
    // 3 surviving group members + 1 local parity — half of RS(8,4)'s 8.
    EXPECT_EQ(plan->cells.size(), 4u) << "lost " << lost;
    EXPECT_EQ(plan->fanout(), 4u);
    const std::size_t local = 8 + (lost < 4 ? 0 : 1);
    EXPECT_TRUE(std::any_of(plan->cells.begin(), plan->cells.end(),
                            [&](CellRef c) { return c.shard == local; }));
  }
}

TEST(AzureLrc, LocalParityLossReadsItsGroup) {
  AzureLrcCodec lrc(8, 2, 2);
  std::vector<bool> present(12, true);
  present[8] = false;
  const auto plan = lrc.plan_repair(8, present);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cells.size(), 4u);  // group 0 = {0,1,2,3}
  for (const CellRef c : plan->cells) {
    EXPECT_LT(c.shard, 4u);
  }
}

TEST(AzureLrc, FallsBackWhenLocalParityDead) {
  // Data shard + its local parity both down: the structured plan is
  // impossible, the generic span-based plan (via the globals) takes over.
  AzureLrcCodec lrc(8, 2, 2);
  const auto data = random_shards(8, 128, 77);
  auto parity = lrc.encode(data);
  std::vector<Shard> original = data;
  original.insert(original.end(), parity.begin(), parity.end());

  std::vector<bool> present(12, true);
  present[1] = false;
  present[8] = false;  // group 0's local parity
  const auto plan = lrc.plan_repair(1, present);
  ASSERT_TRUE(plan.has_value());
  auto shards = original;
  shards[1].clear();
  shards[8].clear();
  ASSERT_TRUE(lrc.repair(shards, 1, *plan));
  EXPECT_EQ(shards[1], original[1]);
}

TEST(AzureLrc, AnyTwoLossesRecoverable) {
  // l + g = 4 parities, but the code is not MDS: the guaranteed floor is
  // any g = 2 arbitrary losses (globals alone cover the worst case of both
  // in one group). Enumerate them all.
  AzureLrcCodec lrc(8, 2, 2);
  const auto data = random_shards(8, 64, 78);
  auto parity = lrc.encode(data);
  std::vector<Shard> original = data;
  original.insert(original.end(), parity.begin(), parity.end());
  const std::size_t n = 12;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      auto shards = original;
      std::vector<bool> present(n, true);
      present[a] = present[b] = false;
      shards[a].clear();
      shards[b].clear();
      ASSERT_TRUE(lrc.reconstruct(shards, present)) << a << "," << b;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(shards[i], original[i]) << a << "," << b;
      }
    }
  }
}

TEST(AzureLrc, ReconstructIsHonestOnTripleLosses) {
  // Losses beyond g are recoverable exactly when the surviving rows have
  // full rank; reconstruct() must answer by rank and, when it says yes,
  // produce the original bytes. Three data shards of one group plus that
  // group's local parity is information-theoretically dead — assert that
  // specific refusal too.
  AzureLrcCodec lrc(8, 2, 2);
  const auto data = random_shards(8, 64, 79);
  auto parity = lrc.encode(data);
  std::vector<Shard> original = data;
  original.insert(original.end(), parity.begin(), parity.end());
  const std::size_t n = 12;
  std::size_t recovered = 0;
  std::size_t total = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        auto shards = original;
        std::vector<bool> present(n, true);
        present[a] = present[b] = present[c] = false;
        shards[a].clear();
        shards[b].clear();
        shards[c].clear();
        ++total;
        if (lrc.reconstruct(shards, present)) {
          ++recovered;
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(shards[i], original[i]) << a << "," << b << "," << c;
          }
        }
      }
    }
  }
  // The structure guarantees a large recoverable fraction (every pattern
  // with at most 2 losses per "dimension"); the exact count is a stable
  // property of the deterministic construction.
  EXPECT_GT(recovered * 10, total * 8) << recovered << "/" << total;
  {
    // 4 losses: a whole group + its local parity = rank-deficient for sure.
    auto shards = original;
    std::vector<bool> present(n, true);
    for (const std::size_t i : {0u, 1u, 2u, 8u}) {
      present[i] = false;
      shards[i].clear();
    }
    EXPECT_FALSE(lrc.reconstruct(shards, present));
  }
}

TEST(HitchhikerXorPlus, DataRepairReadsHalfShards) {
  HitchhikerXorPlusCodec hh(8, 4);  // groups of 3/3/2 across parities 1..3
  std::vector<bool> present(12, true);
  for (std::size_t lost = 0; lost < 8; ++lost) {
    present[lost] = false;
    const auto plan = hh.plan_repair(lost, present);
    present[lost] = true;
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->subshards, 2u);
    // (k - 1) b-halves + parity0 b + group-parity b + (|G| - 1) a-halves
    // = k + |G| cells; |G| ∈ {2, 3} here, so 5.0–5.5 shard-equivalents,
    // strictly below RS's 8.
    const double eq = plan->shard_equivalents();
    EXPECT_GE(eq, 5.0);
    EXPECT_LE(eq, 5.5);
    EXPECT_LT(eq, 8.0);
  }
}

TEST(HitchhikerXorPlus, ToleratesAnyMLossesLikeRs) {
  // The piggyback preserves the base RS fault tolerance: decode the a
  // instance from surviving first halves, strip piggybacks, decode b.
  HitchhikerXorPlusCodec hh(6, 3);
  const auto data = random_shards(6, 128, 91);
  auto parity = hh.encode(data);
  std::vector<Shard> original = data;
  original.insert(original.end(), parity.begin(), parity.end());
  const std::size_t n = 9;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const int erased = __builtin_popcount(mask);
    if (erased == 0 || erased > 3) {
      continue;
    }
    auto shards = original;
    std::vector<bool> present(n, true);
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        present[i] = false;
        shards[i].clear();
      }
    }
    ASSERT_TRUE(hh.reconstruct(shards, present)) << "mask=" << mask;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(shards[i], original[i]) << "mask=" << mask << " shard=" << i;
    }
  }
  // m + 1 losses must be refused.
  auto shards = original;
  std::vector<bool> present(n, true);
  for (std::size_t i = 0; i < 4; ++i) {
    present[i] = false;
    shards[i].clear();
  }
  EXPECT_FALSE(hh.reconstruct(shards, present));
}

TEST(HitchhikerXorPlus, MultiFailureFallsBackToGenericPlan) {
  HitchhikerXorPlusCodec hh(8, 4);
  const auto data = random_shards(8, 64, 92);
  auto parity = hh.encode(data);
  std::vector<Shard> original = data;
  original.insert(original.end(), parity.begin(), parity.end());
  // Two data shards down: the half-shard plan needs every other data shard,
  // so repairing shard 2 must fall back to a full-rank generic plan.
  std::vector<bool> present(12, true);
  present[2] = present[5] = false;
  const auto plan = hh.plan_repair(2, present);
  ASSERT_TRUE(plan.has_value());
  auto shards = original;
  shards[2].clear();
  shards[5].clear();
  ASSERT_TRUE(hh.repair(shards, 2, *plan));
  EXPECT_EQ(shards[2], original[2]);
}

TEST(RsCodec, PlanIsFirstKPresentShards) {
  // The cluster's legacy RS recovery pulled the first k live shards in
  // data-then-parity order; RsCodec::plan_repair must reproduce exactly
  // that so plan-driven recovery stays byte-identical for RS files.
  RsCodec rs(8, 4);
  std::vector<bool> present(12, true);
  present[3] = false;
  present[1] = false;  // second failure: plan for 3 must skip 1
  const auto plan = rs.plan_repair(3, present);
  ASSERT_TRUE(plan.has_value());
  std::vector<std::uint16_t> shards;
  for (const CellRef c : plan->cells) {
    shards.push_back(c.shard);
  }
  EXPECT_EQ(shards, (std::vector<std::uint16_t>{0, 2, 4, 5, 6, 7, 8, 9}));
}

// ---------- randomized cross-codec differential ----------

TEST(CodecZoo, RandomizedDifferentialAgainstRs) {
  // Same data, every codec, random single erasures: every codec's repair
  // must agree byte-for-byte with RS's reconstruction (both must equal the
  // original shards / original bytes).
  std::mt19937 rng{2026};
  const std::size_t k = 8;
  RsCodec rs(k, 4);
  auto lrc = make_codec({CodecKind::kAzureLrc, 0, 2, 2}, k);
  auto hh = make_codec({CodecKind::kHitchhikerXorPlus, 4, 0, 0}, k);
  for (int trial = 0; trial < 20; ++trial) {
    const auto data = random_shards(k, 128, 1000 + static_cast<unsigned>(trial));
    for (ErasureCodec* codec : {static_cast<ErasureCodec*>(&rs), lrc.get(), hh.get()}) {
      auto parity = codec->encode(data);
      std::vector<Shard> original = data;
      original.insert(original.end(), parity.begin(), parity.end());
      const std::size_t lost = rng() % codec->total_shards();
      auto shards = original;
      std::vector<bool> present(codec->total_shards(), true);
      present[lost] = false;
      shards[lost].clear();
      const auto plan = codec->plan_repair(lost, present);
      ASSERT_TRUE(plan.has_value());
      ASSERT_TRUE(codec->repair(shards, lost, *plan));
      ASSERT_EQ(shards[lost], original[lost])
          << codec->name() << " trial " << trial << " lost " << lost;
    }
  }
}

// ---------- stripe layer + registry + pool ----------

TEST(StripeCodecZoo, RoundTripsEveryCodecWithOddSizes) {
  for (const ZooEntry& e : kZoo) {
    StripeCodec codec(e.spec, e.k);
    for (const std::size_t size : {std::size_t{1}, std::size_t{7919}, std::size_t{65536}}) {
      std::vector<std::uint8_t> bytes(size);
      std::mt19937 rng{static_cast<unsigned>(size)};
      for (auto& b : bytes) {
        b = static_cast<std::uint8_t>(rng() % 256);
      }
      auto stripe = codec.encode(bytes);
      const std::size_t n = codec.code().total_shards();
      ASSERT_EQ(stripe.shards.size(), n);
      ASSERT_EQ(stripe.shards.front().size() % codec.code().subshards(), 0u);
      std::vector<bool> present(n, true);
      present[0] = false;
      stripe.shards[0].clear();
      std::vector<std::uint8_t> out;
      ASSERT_TRUE(codec.decode(stripe, present, out)) << e.label << " size " << size;
      EXPECT_EQ(out, bytes) << e.label << " size " << size;
    }
  }
}

TEST(CodecRegistry, NamesRoundTrip) {
  EXPECT_EQ(registered_codec_names().size(), codec_kind_count());
  for (const std::string_view name : registered_codec_names()) {
    const auto kind = codec_kind_from(name);
    ASSERT_TRUE(kind.has_value());
    EXPECT_EQ(to_string(*kind), name);
  }
  EXPECT_FALSE(codec_kind_from("bogus").has_value());
  EXPECT_EQ(std::string(to_string(CodecKind::kAzureLrc)), "azure_lrc");
}

TEST(CodecRegistry, NormalizeClampsShapes) {
  // l beyond k collapses to k; Hitchhiker below 2 parities is bumped.
  const CodecSpec lrc = normalize_spec({CodecKind::kAzureLrc, 0, 9, 2}, 4);
  EXPECT_EQ(lrc.local_groups, 4u);
  EXPECT_EQ(lrc.total_parities(), 6u);
  const CodecSpec hh = normalize_spec({CodecKind::kHitchhikerXorPlus, 1, 0, 0}, 8);
  EXPECT_EQ(hh.parities, 2u);
  const CodecSpec rs = normalize_spec({CodecKind::kRs, 0, 0, 0}, 8);
  EXPECT_EQ(rs.parities, 1u);
}

TEST(CodecZoo, ThreadedEncodeMatchesSerialBitForBit) {
  util::ThreadPool pool(4);
  for (const ZooEntry& e : kZoo) {
    auto serial = make_codec(e.spec, e.k);
    auto threaded = make_codec(e.spec, e.k);
    threaded->set_thread_pool(&pool);
    // Big enough to cross the parallel threshold (2 x 64 KiB chunks).
    const auto data = random_shards(e.k, 512 * 1024, 55);
    const auto a = serial->encode(data);
    const auto b = threaded->encode(data);
    ASSERT_EQ(a, b) << e.label;
  }
}

}  // namespace
}  // namespace erms::ec
