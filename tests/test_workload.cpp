#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "workload/swim.h"
#include "workload/swim_format.h"

namespace erms::workload {
namespace {

SwimConfig small_config() {
  SwimConfig cfg;
  cfg.file_count = 50;
  cfg.duration = sim::hours(2.0);
  cfg.epoch = sim::minutes(30.0);
  cfg.mean_interarrival_s = 5.0;
  return cfg;
}

TEST(Swim, Deterministic) {
  SwimTraceGenerator gen{small_config()};
  const Trace a = gen.generate(7);
  const Trace b = gen.generate(7);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
    EXPECT_EQ(a.jobs[i].input_path, b.jobs[i].input_path);
  }
}

TEST(Swim, DifferentSeedsDiffer) {
  SwimTraceGenerator gen{small_config()};
  const Trace a = gen.generate(1);
  const Trace b = gen.generate(2);
  bool differs = a.jobs.size() != b.jobs.size();
  for (std::size_t i = 0; !differs && i < a.jobs.size(); ++i) {
    differs = a.jobs[i].input_path != b.jobs[i].input_path;
  }
  EXPECT_TRUE(differs);
}

TEST(Swim, FileSizesWithinBounds) {
  SwimTraceGenerator gen{small_config()};
  const Trace t = gen.generate(3);
  ASSERT_EQ(t.files.size(), 50u);
  for (const FileSpec& f : t.files) {
    EXPECT_GE(f.bytes, gen.config().min_file_bytes);
    EXPECT_LE(f.bytes, gen.config().max_file_bytes);
  }
}

TEST(Swim, JobsWithinDurationAndSorted) {
  SwimTraceGenerator gen{small_config()};
  const Trace t = gen.generate(4);
  ASSERT_FALSE(t.jobs.empty());
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_LT(t.jobs[i].submit_time.seconds(), gen.config().duration.seconds());
    if (i > 0) {
      EXPECT_GE(t.jobs[i].submit_time, t.jobs[i - 1].submit_time);
    }
  }
}

TEST(Swim, ArrivalRateRoughlyMatchesMean) {
  SwimConfig cfg = small_config();
  cfg.diurnal_amplitude = 0.0;  // flat rate for this check
  cfg.duration = sim::hours(10.0);
  SwimTraceGenerator gen{cfg};
  const Trace t = gen.generate(5);
  const double expected = cfg.duration.seconds() / cfg.mean_interarrival_s;
  EXPECT_NEAR(static_cast<double>(t.jobs.size()), expected, expected * 0.1);
}

TEST(Swim, PopularityIsHeavyTailed) {
  SwimConfig cfg = small_config();
  cfg.duration = sim::hours(1.0);
  cfg.epoch = sim::hours(1.0);  // single epoch: a stable hot set
  cfg.mean_interarrival_s = 0.5;
  SwimTraceGenerator gen{cfg};
  const Trace t = gen.generate(6);
  std::map<std::string, std::size_t> counts;
  for (const JobSpec& j : t.jobs) {
    ++counts[j.input_path];
  }
  std::vector<std::size_t> sorted;
  for (const auto& [path, n] : counts) {
    sorted.push_back(n);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  // Top file gets a large multiple of the median file's accesses.
  ASSERT_GE(sorted.size(), 3u);
  EXPECT_GT(sorted[0], 5 * sorted[sorted.size() / 2]);
}

TEST(Swim, EpochChurnRotatesHotSet) {
  SwimConfig cfg = small_config();
  cfg.duration = sim::hours(2.0);
  cfg.epoch = sim::hours(1.0);
  cfg.mean_interarrival_s = 0.5;
  SwimTraceGenerator gen{cfg};
  const Trace t = gen.generate(8);
  // Most-accessed file per epoch.
  std::map<std::string, std::size_t> first;
  std::map<std::string, std::size_t> second;
  for (const JobSpec& j : t.jobs) {
    auto& counts = j.submit_time < sim::SimTime{sim::hours(1.0).micros()} ? first : second;
    ++counts[j.input_path];
  }
  auto top = [](const std::map<std::string, std::size_t>& counts) {
    std::string best;
    std::size_t n = 0;
    for (const auto& [path, c] : counts) {
      if (c > n) {
        n = c;
        best = path;
      }
    }
    return best;
  };
  // With 50 files the chance the same file tops both epochs is 1/50.
  EXPECT_NE(top(first), top(second));
}

TEST(Swim, TotalInputBytes) {
  Trace t;
  t.files = {{"/a", 100}, {"/b", 50}};
  t.jobs = {{sim::SimTime{0}, "/a"}, {sim::SimTime{1}, "/a"}, {sim::SimTime{2}, "/b"}};
  EXPECT_EQ(t.total_input_bytes(), 250u);
}

TEST(Swim, SaveLoadRoundTrip) {
  SwimTraceGenerator gen{small_config()};
  const Trace t = gen.generate(9);
  std::stringstream ss;
  save_trace(t, ss);
  const Trace back = load_trace(ss);
  ASSERT_EQ(back.files.size(), t.files.size());
  ASSERT_EQ(back.jobs.size(), t.jobs.size());
  for (std::size_t i = 0; i < t.files.size(); ++i) {
    EXPECT_EQ(back.files[i].path, t.files[i].path);
    EXPECT_EQ(back.files[i].bytes, t.files[i].bytes);
  }
  for (std::size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].submit_time, t.jobs[i].submit_time);
    EXPECT_EQ(back.jobs[i].input_path, t.jobs[i].input_path);
  }
}

// ---------- SWIM trace-file format ----------

constexpr const char* kSwimSample =
    "job0\t0.0\t0.0\t134217728\t1000\t500\n"
    "job1\t12.5\t12.5\t134217728\t2000\t100\n"
    "job2\t30.0\t17.5\t536870912\t0\t0\n"
    "garbage line without tabs\n"
    "job3\t45.0\t15.0\t0\t0\t0\n"          // zero input -> skipped
    "job4\t-3\t0\t1024\t0\t0\n"            // negative submit -> skipped
    "job5\t60.0\t15.0\t68719476736\t0\t0\n";  // 64 GiB -> clamped

TEST(SwimFormat, ParsesTabSeparatedRecords) {
  const auto records = parse_swim_text(kSwimSample);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].job_id, "job0");
  EXPECT_DOUBLE_EQ(records[1].submit_time_s, 12.5);
  EXPECT_EQ(records[1].map_input_bytes, 134217728u);
  EXPECT_EQ(records[1].shuffle_bytes, 2000u);
  EXPECT_EQ(records[2].map_input_bytes, 536870912u);
  EXPECT_EQ(records[3].job_id, "job5");
}

TEST(SwimFormat, ImportSharesFilesBySize) {
  const auto records = parse_swim_text(kSwimSample);
  const Trace trace = import_swim(records);
  // 128 MiB (x2), 512 MiB, and the clamped 8 GiB: three distinct files.
  EXPECT_EQ(trace.files.size(), 3u);
  ASSERT_EQ(trace.jobs.size(), 4u);
  EXPECT_EQ(trace.jobs[0].input_path, trace.jobs[1].input_path);
  EXPECT_NE(trace.jobs[0].input_path, trace.jobs[2].input_path);
}

TEST(SwimFormat, ImportClampsAndBuckets) {
  SwimImportOptions opts;
  opts.min_file_bytes = 64 * util::MiB;
  opts.max_file_bytes = 1 * util::GiB;
  opts.size_bucket_bytes = 256 * util::MiB;
  std::vector<SwimJobRecord> records(3);
  records[0].job_id = "a";
  records[0].map_input_bytes = 1;  // clamps up to 64 MiB, buckets to 256 MiB
  records[1].job_id = "b";
  records[1].map_input_bytes = 300 * util::MiB;  // buckets to 512 MiB
  records[2].job_id = "c";
  records[2].map_input_bytes = 100 * util::GiB;  // clamps to 1 GiB
  const Trace trace = import_swim(records, opts);
  ASSERT_EQ(trace.files.size(), 3u);
  EXPECT_EQ(trace.files[0].bytes, 256 * util::MiB);
  EXPECT_EQ(trace.files[1].bytes, 512 * util::MiB);
  EXPECT_EQ(trace.files[2].bytes, 1 * util::GiB);
}

TEST(SwimFormat, TimeCompressionScalesSubmits) {
  const auto records = parse_swim_text(kSwimSample);
  SwimImportOptions opts;
  opts.time_compression = 10.0;
  const Trace trace = import_swim(records, opts);
  EXPECT_DOUBLE_EQ(trace.jobs[1].submit_time.seconds(), 1.25);
}

TEST(SwimFormat, JobsSortedBySubmitTime) {
  std::vector<SwimJobRecord> records(2);
  records[0].job_id = "late";
  records[0].submit_time_s = 100.0;
  records[0].map_input_bytes = util::MiB;
  records[1].job_id = "early";
  records[1].submit_time_s = 1.0;
  records[1].map_input_bytes = util::MiB;
  const Trace trace = import_swim(records);
  ASSERT_EQ(trace.jobs.size(), 2u);
  EXPECT_LT(trace.jobs[0].submit_time, trace.jobs[1].submit_time);
}

TEST(SwimFormat, EmptyInput) {
  EXPECT_TRUE(parse_swim_text("").empty());
  EXPECT_TRUE(import_swim({}).jobs.empty());
}

}  // namespace
}  // namespace erms::workload
