#include <gtest/gtest.h>

#include "classad/parser.h"
#include "condor/scheduler.h"
#include "sim/simulation.h"

namespace erms::condor {
namespace {

classad::ClassAd job_ad(const std::string& cmd) {
  classad::ClassAd ad;
  ad.insert_string("Cmd", cmd);
  return ad;
}

struct Fixture {
  sim::Simulation sim;
  Scheduler sched{sim};
};

TEST(Scheduler, RunsImmediateJob) {
  Fixture f;
  int ran = 0;
  f.sched.register_command("noop",
                           [&](const classad::ClassAd&, std::function<void(bool)> done) {
                             ++ran;
                             done(true);
                           });
  JobStatus final_status{};
  const JobId id = f.sched.submit(job_ad("noop"), JobClass::kImmediate, 0,
                                  [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(final_status, JobStatus::kCompleted);
  EXPECT_EQ(f.sched.find(id)->status, JobStatus::kCompleted);
}

TEST(Scheduler, UnknownCommandFails) {
  Fixture f;
  JobStatus final_status{};
  f.sched.submit(job_ad("missing"), JobClass::kImmediate, 0,
                 [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_EQ(final_status, JobStatus::kFailed);
}

TEST(Scheduler, MissingCmdAttributeFails) {
  Fixture f;
  JobStatus final_status{};
  f.sched.submit(classad::ClassAd{}, JobClass::kImmediate, 0,
                 [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_EQ(final_status, JobStatus::kFailed);
}

TEST(Scheduler, PriorityOrdersStarts) {
  Fixture f;
  Scheduler::Config cfg;
  cfg.max_running = 1;
  Scheduler sched{f.sim, cfg};
  std::vector<int> order;
  sched.register_command("task",
                         [&](const classad::ClassAd& ad, std::function<void(bool)> done) {
                           order.push_back(static_cast<int>(*ad.get_int("N")));
                           // Finish after 1s so queued jobs wait.
                           f.sim.schedule_after(sim::seconds(1.0), [done] { done(true); });
                         });
  for (int i = 0; i < 3; ++i) {
    classad::ClassAd ad = job_ad("task");
    ad.insert_int("N", i);
    sched.submit(std::move(ad), JobClass::kImmediate, i);  // rising priority
  }
  f.sim.run();
  // The pump runs after all three submissions land (submit defers it), so
  // starts follow pure priority order.
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(Scheduler, MaxRunningThrottles) {
  Fixture f;
  Scheduler::Config cfg;
  cfg.max_running = 2;
  Scheduler sched{f.sim, cfg};
  int concurrent = 0;
  int peak = 0;
  sched.register_command("slow",
                         [&](const classad::ClassAd&, std::function<void(bool)> done) {
                           peak = std::max(peak, ++concurrent);
                           f.sim.schedule_after(sim::seconds(1.0), [&, done] {
                             --concurrent;
                             done(true);
                           });
                         });
  for (int i = 0; i < 6; ++i) {
    sched.submit(job_ad("slow"), JobClass::kImmediate);
  }
  f.sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sched.jobs_in_status(JobStatus::kCompleted).size(), 6u);
}

TEST(Scheduler, WhenIdleWaitsForProbe) {
  Fixture f;
  bool idle = false;
  f.sched.set_idle_probe([&] { return idle; });
  double ran_at = -1.0;
  f.sched.register_command("bg",
                           [&](const classad::ClassAd&, std::function<void(bool)> done) {
                             ran_at = f.sim.now().seconds();
                             done(true);
                           });
  f.sched.submit(job_ad("bg"), JobClass::kWhenIdle);
  f.sim.schedule_after(sim::seconds(60.0), [&] { idle = true; });
  f.sim.run_until(sim::SimTime{sim::seconds(200.0).micros()});
  // Started only after the probe flipped (>= 60s, found by the 5s poll).
  ASSERT_GE(ran_at, 60.0);
  EXPECT_LE(ran_at, 70.0);
}

TEST(Scheduler, ImmediateJobsIgnoreIdleProbe) {
  Fixture f;
  f.sched.set_idle_probe([] { return false; });
  bool ran = false;
  f.sched.register_command("now",
                           [&](const classad::ClassAd&, std::function<void(bool)> done) {
                             ran = true;
                             done(true);
                           });
  f.sched.submit(job_ad("now"), JobClass::kImmediate);
  f.sim.run_until(sim::SimTime{sim::seconds(1.0).micros()});
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RollbackOnFailure) {
  Fixture f;
  bool rolled_back = false;
  f.sched.register_command(
      "flaky",
      [](const classad::ClassAd&, std::function<void(bool)> done) { done(false); },
      [&](const classad::ClassAd&, std::function<void()> finished) {
        rolled_back = true;
        finished();
      });
  JobStatus final_status{};
  f.sched.submit(job_ad("flaky"), JobClass::kImmediate, 0,
                 [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_TRUE(rolled_back);
  EXPECT_EQ(final_status, JobStatus::kRolledBack);
}

TEST(Scheduler, FailureWithoutRollbackIsFailed) {
  Fixture f;
  f.sched.register_command(
      "bad", [](const classad::ClassAd&, std::function<void(bool)> done) { done(false); });
  JobStatus final_status{};
  f.sched.submit(job_ad("bad"), JobClass::kImmediate, 0,
                 [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_EQ(final_status, JobStatus::kFailed);
}

TEST(Scheduler, CancelQueuedJob) {
  Fixture f;
  Scheduler::Config cfg;
  cfg.max_running = 1;
  Scheduler sched{f.sim, cfg};
  sched.register_command("slow",
                         [&](const classad::ClassAd&, std::function<void(bool)> done) {
                           f.sim.schedule_after(sim::seconds(10.0), [done] { done(true); });
                         });
  sched.submit(job_ad("slow"), JobClass::kImmediate);
  const JobId second = sched.submit(job_ad("slow"), JobClass::kImmediate);
  // Cancel before the first job finishes.
  f.sim.schedule_after(sim::seconds(1.0), [&] { EXPECT_TRUE(sched.cancel(second)); });
  f.sim.run();
  EXPECT_EQ(sched.find(second)->status, JobStatus::kCancelled);
  EXPECT_FALSE(sched.cancel(second));  // already terminal
}

TEST(Scheduler, JobTimestampsOrdered) {
  Fixture f;
  f.sched.register_command("noop",
                           [&](const classad::ClassAd&, std::function<void(bool)> done) {
                             f.sim.schedule_after(sim::seconds(2.0), [done] { done(true); });
                           });
  const JobId id = f.sched.submit(job_ad("noop"), JobClass::kImmediate);
  f.sim.run();
  const Job* job = f.sched.find(id);
  ASSERT_NE(job, nullptr);
  EXPECT_LE(job->submitted, job->started);
  EXPECT_LT(job->started, job->finished);
  EXPECT_NEAR((job->finished - job->started).seconds(), 2.0, 1e-6);
}

// ---------- job log & replay ----------

TEST(JobLog, RecordsLifecycle) {
  Fixture f;
  f.sched.register_command("noop", [](const classad::ClassAd&,
                                      std::function<void(bool)> done) { done(true); });
  const JobId id = f.sched.submit(job_ad("noop"), JobClass::kImmediate);
  f.sim.run();
  const auto& log = f.sched.log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].kind, JobLogRecord::Kind::kSubmit);
  EXPECT_EQ(log[1].kind, JobLogRecord::Kind::kExecute);
  EXPECT_EQ(log[2].kind, JobLogRecord::Kind::kTerminateOk);
  EXPECT_EQ(log[0].job, id);
  EXPECT_EQ(log[0].cmd, "noop");
}

TEST(JobLog, ReplayReconstructsStatuses) {
  Fixture f;
  f.sched.register_command("ok", [](const classad::ClassAd&,
                                    std::function<void(bool)> done) { done(true); });
  f.sched.register_command(
      "fail",
      [](const classad::ClassAd&, std::function<void(bool)> done) { done(false); },
      [](const classad::ClassAd&, std::function<void()> fin) { fin(); });
  const JobId a = f.sched.submit(job_ad("ok"), JobClass::kImmediate);
  const JobId b = f.sched.submit(job_ad("fail"), JobClass::kImmediate);
  const JobId c = f.sched.submit(job_ad("ok"), JobClass::kImmediate);
  f.sim.run();
  const auto statuses = replay_log(f.sched.log());
  EXPECT_EQ(statuses.at(a), JobStatus::kCompleted);
  EXPECT_EQ(statuses.at(b), JobStatus::kRolledBack);
  EXPECT_EQ(statuses.at(c), JobStatus::kCompleted);
  // Replay agrees with live state for every job.
  for (const auto& [id, status] : statuses) {
    EXPECT_EQ(f.sched.find(id)->status, status);
  }
}

// ---------- machine ads ----------

TEST(Machines, AdvertiseAndQuery) {
  Fixture f;
  for (int i = 0; i < 4; ++i) {
    classad::ClassAd ad;
    ad.insert_int("Node", i);
    ad.insert_string("State", i < 2 ? "active" : "standby");
    f.sched.advertise("dn" + std::to_string(i), std::move(ad));
  }
  EXPECT_EQ(f.sched.machine_count(), 4u);
  const auto active = f.sched.query_machines("State == \"active\"");
  EXPECT_EQ(active, (std::vector<std::string>{"dn0", "dn1"}));
  const auto standby = f.sched.query_machines("State == \"standby\" && Node > 2");
  EXPECT_EQ(standby, (std::vector<std::string>{"dn3"}));
}

TEST(Machines, AdvertiseRefreshes) {
  Fixture f;
  classad::ClassAd ad;
  ad.insert_string("State", "standby");
  f.sched.advertise("dn0", ad);
  EXPECT_TRUE(f.sched.query_machines("State == \"active\"").empty());
  ad.insert_string("State", "active");
  f.sched.advertise("dn0", ad);
  EXPECT_EQ(f.sched.query_machines("State == \"active\"").size(), 1u);
}

TEST(Machines, BadConstraintThrows) {
  Fixture f;
  f.sched.advertise("dn0", classad::ClassAd{});
  EXPECT_THROW(f.sched.query_machines("State == "), classad::ParseError);
}

TEST(Machines, NonBooleanConstraintMatchesNothing) {
  Fixture f;
  classad::ClassAd ad;
  ad.insert_int("Node", 1);
  f.sched.advertise("dn0", ad);
  EXPECT_TRUE(f.sched.query_machines("Node").empty());        // int, not bool
  EXPECT_TRUE(f.sched.query_machines("Missing == 1").empty());  // undefined
}

TEST(Scheduler, TerminateCallbackCanSubmitFollowUp) {
  // ERMS's executors chain jobs from terminate callbacks; re-entrancy into
  // the scheduler must be safe.
  Fixture f;
  f.sched.register_command("noop", [](const classad::ClassAd&,
                                      std::function<void(bool)> done) { done(true); });
  int completed = 0;
  f.sched.submit(job_ad("noop"), JobClass::kImmediate, 0, [&](const Job&) {
    ++completed;
    f.sched.submit(job_ad("noop"), JobClass::kImmediate, 0,
                   [&](const Job&) { ++completed; });
  });
  f.sim.run();
  EXPECT_EQ(completed, 2);
}

TEST(Machines, Invalidate) {
  Fixture f;
  f.sched.advertise("dn0", classad::ClassAd{});
  EXPECT_TRUE(f.sched.invalidate("dn0"));
  EXPECT_FALSE(f.sched.invalidate("dn0"));
  EXPECT_EQ(f.sched.machine(std::string("dn0")), nullptr);
}

}  // namespace
}  // namespace erms::condor
