#include <gtest/gtest.h>

#include "classad/parser.h"
#include "condor/scheduler.h"
#include "sim/simulation.h"

namespace erms::condor {
namespace {

classad::ClassAd job_ad(const std::string& cmd) {
  classad::ClassAd ad;
  ad.insert_string("Cmd", cmd);
  return ad;
}

struct Fixture {
  sim::Simulation sim;
  Scheduler sched{sim};
};

TEST(Scheduler, RunsImmediateJob) {
  Fixture f;
  int ran = 0;
  f.sched.register_command("noop",
                           [&](const classad::ClassAd&, std::function<void(bool)> done) {
                             ++ran;
                             done(true);
                           });
  JobStatus final_status{};
  const JobId id = f.sched.submit(job_ad("noop"), JobClass::kImmediate, 0,
                                  [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(final_status, JobStatus::kCompleted);
  EXPECT_EQ(f.sched.find(id)->status, JobStatus::kCompleted);
}

TEST(Scheduler, UnknownCommandFails) {
  Fixture f;
  JobStatus final_status{};
  f.sched.submit(job_ad("missing"), JobClass::kImmediate, 0,
                 [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_EQ(final_status, JobStatus::kFailed);
}

TEST(Scheduler, MissingCmdAttributeFails) {
  Fixture f;
  JobStatus final_status{};
  f.sched.submit(classad::ClassAd{}, JobClass::kImmediate, 0,
                 [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_EQ(final_status, JobStatus::kFailed);
}

TEST(Scheduler, PriorityOrdersStarts) {
  Fixture f;
  Scheduler::Config cfg;
  cfg.max_running = 1;
  Scheduler sched{f.sim, cfg};
  std::vector<int> order;
  sched.register_command("task",
                         [&](const classad::ClassAd& ad, std::function<void(bool)> done) {
                           order.push_back(static_cast<int>(*ad.get_int("N")));
                           // Finish after 1s so queued jobs wait.
                           f.sim.schedule_after(sim::seconds(1.0), [done] { done(true); });
                         });
  for (int i = 0; i < 3; ++i) {
    classad::ClassAd ad = job_ad("task");
    ad.insert_int("N", i);
    sched.submit(std::move(ad), JobClass::kImmediate, i);  // rising priority
  }
  f.sim.run();
  // The pump runs after all three submissions land (submit defers it), so
  // starts follow pure priority order.
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(Scheduler, MaxRunningThrottles) {
  Fixture f;
  Scheduler::Config cfg;
  cfg.max_running = 2;
  Scheduler sched{f.sim, cfg};
  int concurrent = 0;
  int peak = 0;
  sched.register_command("slow",
                         [&](const classad::ClassAd&, std::function<void(bool)> done) {
                           peak = std::max(peak, ++concurrent);
                           f.sim.schedule_after(sim::seconds(1.0), [&, done] {
                             --concurrent;
                             done(true);
                           });
                         });
  for (int i = 0; i < 6; ++i) {
    sched.submit(job_ad("slow"), JobClass::kImmediate);
  }
  f.sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sched.jobs_in_status(JobStatus::kCompleted).size(), 6u);
}

TEST(Scheduler, WhenIdleWaitsForProbe) {
  Fixture f;
  bool idle = false;
  f.sched.set_idle_probe([&] { return idle; });
  double ran_at = -1.0;
  f.sched.register_command("bg",
                           [&](const classad::ClassAd&, std::function<void(bool)> done) {
                             ran_at = f.sim.now().seconds();
                             done(true);
                           });
  f.sched.submit(job_ad("bg"), JobClass::kWhenIdle);
  f.sim.schedule_after(sim::seconds(60.0), [&] { idle = true; });
  f.sim.run_until(sim::SimTime{sim::seconds(200.0).micros()});
  // Started only after the probe flipped (>= 60s, found by the 5s poll).
  ASSERT_GE(ran_at, 60.0);
  EXPECT_LE(ran_at, 70.0);
}

TEST(Scheduler, ImmediateJobsIgnoreIdleProbe) {
  Fixture f;
  f.sched.set_idle_probe([] { return false; });
  bool ran = false;
  f.sched.register_command("now",
                           [&](const classad::ClassAd&, std::function<void(bool)> done) {
                             ran = true;
                             done(true);
                           });
  f.sched.submit(job_ad("now"), JobClass::kImmediate);
  f.sim.run_until(sim::SimTime{sim::seconds(1.0).micros()});
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RollbackOnFailure) {
  Fixture f;
  bool rolled_back = false;
  f.sched.register_command(
      "flaky",
      [](const classad::ClassAd&, std::function<void(bool)> done) { done(false); },
      [&](const classad::ClassAd&, std::function<void()> finished) {
        rolled_back = true;
        finished();
      });
  JobStatus final_status{};
  f.sched.submit(job_ad("flaky"), JobClass::kImmediate, 0,
                 [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_TRUE(rolled_back);
  EXPECT_EQ(final_status, JobStatus::kRolledBack);
}

TEST(Scheduler, FailureWithoutRollbackIsFailed) {
  Fixture f;
  f.sched.register_command(
      "bad", [](const classad::ClassAd&, std::function<void(bool)> done) { done(false); });
  JobStatus final_status{};
  f.sched.submit(job_ad("bad"), JobClass::kImmediate, 0,
                 [&](const Job& j) { final_status = j.status; });
  f.sim.run();
  EXPECT_EQ(final_status, JobStatus::kFailed);
}

TEST(Scheduler, CancelQueuedJob) {
  Fixture f;
  Scheduler::Config cfg;
  cfg.max_running = 1;
  Scheduler sched{f.sim, cfg};
  sched.register_command("slow",
                         [&](const classad::ClassAd&, std::function<void(bool)> done) {
                           f.sim.schedule_after(sim::seconds(10.0), [done] { done(true); });
                         });
  sched.submit(job_ad("slow"), JobClass::kImmediate);
  const JobId second = sched.submit(job_ad("slow"), JobClass::kImmediate);
  // Cancel before the first job finishes.
  f.sim.schedule_after(sim::seconds(1.0), [&] { EXPECT_TRUE(sched.cancel(second)); });
  f.sim.run();
  EXPECT_EQ(sched.find(second)->status, JobStatus::kCancelled);
  EXPECT_FALSE(sched.cancel(second));  // already terminal
}

TEST(Scheduler, JobTimestampsOrdered) {
  Fixture f;
  f.sched.register_command("noop",
                           [&](const classad::ClassAd&, std::function<void(bool)> done) {
                             f.sim.schedule_after(sim::seconds(2.0), [done] { done(true); });
                           });
  const JobId id = f.sched.submit(job_ad("noop"), JobClass::kImmediate);
  f.sim.run();
  const Job* job = f.sched.find(id);
  ASSERT_NE(job, nullptr);
  EXPECT_LE(job->submitted, job->started);
  EXPECT_LT(job->started, job->finished);
  EXPECT_NEAR((job->finished - job->started).seconds(), 2.0, 1e-6);
}

// ---------- job log & replay ----------

TEST(JobLog, RecordsLifecycle) {
  Fixture f;
  f.sched.register_command("noop", [](const classad::ClassAd&,
                                      std::function<void(bool)> done) { done(true); });
  const JobId id = f.sched.submit(job_ad("noop"), JobClass::kImmediate);
  f.sim.run();
  const auto& log = f.sched.log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].kind, JobLogRecord::Kind::kSubmit);
  EXPECT_EQ(log[1].kind, JobLogRecord::Kind::kExecute);
  EXPECT_EQ(log[2].kind, JobLogRecord::Kind::kTerminateOk);
  EXPECT_EQ(log[0].job, id);
  EXPECT_EQ(log[0].cmd, "noop");
}

TEST(JobLog, ReplayReconstructsStatuses) {
  Fixture f;
  f.sched.register_command("ok", [](const classad::ClassAd&,
                                    std::function<void(bool)> done) { done(true); });
  f.sched.register_command(
      "fail",
      [](const classad::ClassAd&, std::function<void(bool)> done) { done(false); },
      [](const classad::ClassAd&, std::function<void()> fin) { fin(); });
  const JobId a = f.sched.submit(job_ad("ok"), JobClass::kImmediate);
  const JobId b = f.sched.submit(job_ad("fail"), JobClass::kImmediate);
  const JobId c = f.sched.submit(job_ad("ok"), JobClass::kImmediate);
  f.sim.run();
  const auto statuses = replay_log(f.sched.log());
  EXPECT_EQ(statuses.at(a), JobStatus::kCompleted);
  EXPECT_EQ(statuses.at(b), JobStatus::kRolledBack);
  EXPECT_EQ(statuses.at(c), JobStatus::kCompleted);
  // Replay agrees with live state for every job.
  for (const auto& [id, status] : statuses) {
    EXPECT_EQ(f.sched.find(id)->status, status);
  }
}

// ---------- retry / backoff / timeout ----------

TEST(Retry, FailedJobRetriesWithBackoffThenSucceeds) {
  sim::Simulation sim;
  Scheduler::Config cfg;
  cfg.max_retries = 3;
  cfg.retry_backoff = sim::seconds(2.0);
  Scheduler sched{sim, cfg};
  int calls = 0;
  sched.register_command("flaky",
                         [&](const classad::ClassAd&, std::function<void(bool)> done) {
                           ++calls;
                           done(calls >= 3);
                         });
  JobStatus final_status{};
  const JobId id = sched.submit(job_ad("flaky"), JobClass::kImmediate, 0,
                                [&](const Job& j) { final_status = j.status; });
  sim.run();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(final_status, JobStatus::kCompleted);
  EXPECT_EQ(sched.find(id)->attempts, 3u);
  EXPECT_EQ(sched.retries(), 2u);

  // The log shows the retries, and the backoff doubles: attempt 2 at
  // +2 s, attempt 3 at +2+4 s.
  std::vector<sim::SimTime> executes;
  std::size_t retry_records = 0;
  for (const JobLogRecord& rec : sched.log()) {
    if (rec.kind == JobLogRecord::Kind::kExecute) {
      executes.push_back(rec.time);
    }
    retry_records += rec.kind == JobLogRecord::Kind::kRetry ? 1 : 0;
  }
  ASSERT_EQ(executes.size(), 3u);
  EXPECT_EQ(retry_records, 2u);
  EXPECT_NEAR((executes[1] - executes[0]).seconds(), 2.0, 0.1);
  EXPECT_NEAR((executes[2] - executes[1]).seconds(), 4.0, 0.1);
}

TEST(Retry, BackoffIsCapped) {
  sim::Simulation sim;
  Scheduler::Config cfg;
  cfg.max_retries = 5;
  cfg.retry_backoff = sim::seconds(2.0);
  cfg.retry_backoff_cap = sim::seconds(5.0);
  Scheduler sched{sim, cfg};
  sched.register_command("fail", [](const classad::ClassAd&,
                                    std::function<void(bool)> done) { done(false); });
  sched.submit(job_ad("fail"), JobClass::kImmediate);
  sim.run();
  std::vector<sim::SimTime> executes;
  for (const JobLogRecord& rec : sched.log()) {
    if (rec.kind == JobLogRecord::Kind::kExecute) {
      executes.push_back(rec.time);
    }
  }
  ASSERT_EQ(executes.size(), 6u);  // 1 + 5 retries — bounded, no runaway
  // Later gaps saturate at the cap instead of doubling forever.
  EXPECT_NEAR((executes[5] - executes[4]).seconds(), 5.0, 0.1);
  EXPECT_EQ(sched.retries(), 5u);
}

TEST(Retry, ExhaustedRetriesRollBack) {
  sim::Simulation sim;
  Scheduler::Config cfg;
  cfg.max_retries = 2;
  cfg.retry_backoff = sim::seconds(1.0);
  Scheduler sched{sim, cfg};
  int rollbacks = 0;
  sched.register_command(
      "fail",
      [](const classad::ClassAd&, std::function<void(bool)> done) { done(false); },
      [&](const classad::ClassAd&, std::function<void()> fin) {
        ++rollbacks;
        fin();
      });
  JobStatus final_status{};
  const JobId id = sched.submit(job_ad("fail"), JobClass::kImmediate, 0,
                                [&](const Job& j) { final_status = j.status; });
  sim.run();
  EXPECT_EQ(final_status, JobStatus::kRolledBack);
  EXPECT_EQ(sched.find(id)->attempts, 3u);  // 1 + 2 retries
  EXPECT_EQ(rollbacks, 1) << "rollback fires once, after the last attempt";
}

TEST(Retry, TimeoutWatchdogRetiresHungAttempts) {
  sim::Simulation sim;
  Scheduler::Config cfg;
  cfg.max_retries = 1;
  cfg.retry_backoff = sim::seconds(2.0);
  cfg.job_timeout = sim::seconds(5.0);
  Scheduler sched{sim, cfg};
  // The executor hangs forever; completions are stashed to replay late.
  std::vector<std::function<void(bool)>> stuck;
  sched.register_command("hang",
                         [&](const classad::ClassAd&, std::function<void(bool)> done) {
                           stuck.push_back(std::move(done));
                         });
  JobStatus final_status{};
  const JobId id = sched.submit(job_ad("hang"), JobClass::kImmediate, 0,
                                [&](const Job& j) { final_status = j.status; });
  sim.run();
  // attempt 1 times out at 5 s, retries at 7 s, attempt 2 times out at 12 s.
  EXPECT_EQ(final_status, JobStatus::kFailed);
  EXPECT_EQ(sched.timeouts(), 2u);
  EXPECT_EQ(sched.retries(), 1u);
  EXPECT_NEAR(sim.now().seconds(), 12.0, 0.1);
  // A late executor completion from a retired attempt must be ignored.
  ASSERT_EQ(stuck.size(), 2u);
  for (auto& done : stuck) {
    done(true);
  }
  sim.run();
  EXPECT_EQ(sched.find(id)->status, JobStatus::kFailed);
}

TEST(JobLog, RecoverStatusesMatchesLiveThroughRetries) {
  // The crash-recovery differential: replaying the log at a mid-run cutoff
  // and at the end must reproduce the live scheduler's statuses exactly,
  // across completions, retries, rollbacks, plain failures, and cancels.
  sim::Simulation sim;
  Scheduler::Config cfg;
  cfg.max_retries = 2;
  cfg.retry_backoff = sim::seconds(1.0);
  cfg.max_running = 8;
  Scheduler sched{sim, cfg};
  int flaky_calls = 0;
  sched.register_command("ok", [](const classad::ClassAd&,
                                  std::function<void(bool)> done) { done(true); });
  sched.register_command("flaky",
                         [&](const classad::ClassAd&, std::function<void(bool)> done) {
                           ++flaky_calls;
                           done(flaky_calls >= 3);
                         });
  sched.register_command(
      "fail_rb",
      [](const classad::ClassAd&, std::function<void(bool)> done) { done(false); },
      [](const classad::ClassAd&, std::function<void()> fin) { fin(); });
  sched.register_command("fail", [](const classad::ClassAd&,
                                    std::function<void(bool)> done) { done(false); });
  sched.submit(job_ad("ok"), JobClass::kImmediate);
  sched.submit(job_ad("flaky"), JobClass::kImmediate);
  sched.submit(job_ad("fail_rb"), JobClass::kImmediate);
  sched.submit(job_ad("fail"), JobClass::kImmediate);
  const JobId cancelled = sched.submit(job_ad("ok"), JobClass::kWhenIdle, -5);
  sched.set_idle_probe([] { return false; });  // keep it queued
  sched.cancel(cancelled);

  // Mid-run cutoff: retries still in flight.
  sim.run_until(sim::SimTime{sim::seconds(1.5).micros()});
  for (const auto& [id, status] : recover_statuses(sched.log())) {
    ASSERT_NE(sched.find(id), nullptr);
    EXPECT_EQ(sched.find(id)->status, status) << "mid-run divergence, job " << id.value();
  }

  sim.run();
  const auto statuses = recover_statuses(sched.log());
  EXPECT_EQ(statuses.size(), 5u);
  for (const auto& [id, status] : statuses) {
    ASSERT_NE(sched.find(id), nullptr);
    EXPECT_EQ(sched.find(id)->status, status) << "final divergence, job " << id.value();
  }
  EXPECT_EQ(statuses.at(cancelled), JobStatus::kCancelled);
}

// ---------- machine ads ----------

TEST(Machines, AdvertiseAndQuery) {
  Fixture f;
  for (int i = 0; i < 4; ++i) {
    classad::ClassAd ad;
    ad.insert_int("Node", i);
    ad.insert_string("State", i < 2 ? "active" : "standby");
    f.sched.advertise("dn" + std::to_string(i), std::move(ad));
  }
  EXPECT_EQ(f.sched.machine_count(), 4u);
  const auto active = f.sched.query_machines("State == \"active\"");
  EXPECT_EQ(active, (std::vector<std::string>{"dn0", "dn1"}));
  const auto standby = f.sched.query_machines("State == \"standby\" && Node > 2");
  EXPECT_EQ(standby, (std::vector<std::string>{"dn3"}));
}

TEST(Machines, AdvertiseRefreshes) {
  Fixture f;
  classad::ClassAd ad;
  ad.insert_string("State", "standby");
  f.sched.advertise("dn0", ad);
  EXPECT_TRUE(f.sched.query_machines("State == \"active\"").empty());
  ad.insert_string("State", "active");
  f.sched.advertise("dn0", ad);
  EXPECT_EQ(f.sched.query_machines("State == \"active\"").size(), 1u);
}

TEST(Machines, BadConstraintThrows) {
  Fixture f;
  f.sched.advertise("dn0", classad::ClassAd{});
  EXPECT_THROW(f.sched.query_machines("State == "), classad::ParseError);
}

TEST(Machines, NonBooleanConstraintMatchesNothing) {
  Fixture f;
  classad::ClassAd ad;
  ad.insert_int("Node", 1);
  f.sched.advertise("dn0", ad);
  EXPECT_TRUE(f.sched.query_machines("Node").empty());        // int, not bool
  EXPECT_TRUE(f.sched.query_machines("Missing == 1").empty());  // undefined
}

TEST(Scheduler, TerminateCallbackCanSubmitFollowUp) {
  // ERMS's executors chain jobs from terminate callbacks; re-entrancy into
  // the scheduler must be safe.
  Fixture f;
  f.sched.register_command("noop", [](const classad::ClassAd&,
                                      std::function<void(bool)> done) { done(true); });
  int completed = 0;
  f.sched.submit(job_ad("noop"), JobClass::kImmediate, 0, [&](const Job&) {
    ++completed;
    f.sched.submit(job_ad("noop"), JobClass::kImmediate, 0,
                   [&](const Job&) { ++completed; });
  });
  f.sim.run();
  EXPECT_EQ(completed, 2);
}

TEST(Machines, Invalidate) {
  Fixture f;
  f.sched.advertise("dn0", classad::ClassAd{});
  EXPECT_TRUE(f.sched.invalidate("dn0"));
  EXPECT_FALSE(f.sched.invalidate("dn0"));
  EXPECT_EQ(f.sched.machine(std::string("dn0")), nullptr);
}

}  // namespace
}  // namespace erms::condor
