// Snapshot/restore tests. The centerpiece is the resume-determinism
// contract: run → snapshot → restore in a fresh world → run must produce a
// byte-identical trace and invariant report versus the same run never
// interrupted. The rest is hostile-input coverage: truncated, bit-flipped
// and version-skewed snapshot files must be rejected with a structured
// error and must leave the live world untouched.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/erms.h"
#include "fault/fault_plan.h"
#include "fault/invariant_checker.h"
#include "hdfs/cluster.h"
#include "obs/observability.h"
#include "snapshot/codec.h"
#include "snapshot/world.h"

namespace erms {
namespace {

using hdfs::Cluster;
using hdfs::ClusterConfig;
using hdfs::NodeId;
using hdfs::Topology;
using util::MiB;

core::ErmsConfig soak_erms() {
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::seconds(60.0);
  cfg.thresholds.cold_age = sim::minutes(15.0);
  cfg.evaluation_period = sim::seconds(20.0);
  cfg.observe = true;
  cfg.trace_capacity = 65536;
  cfg.job_max_retries = 3;
  cfg.job_retry_backoff = sim::seconds(5.0);
  return cfg;
}

fault::ChaosOptions soak_options() {
  fault::ChaosOptions opt;
  opt.start = sim::SimTime{sim::minutes(1.0).micros()};
  opt.end = sim::SimTime{sim::minutes(10.0).micros()};
  for (std::uint32_t n = 0; n < 10; ++n) {
    opt.victims.push_back(n);
  }
  opt.racks = {0, 1, 2};
  opt.max_concurrent_dead = 1;
  opt.mean_gap = sim::seconds(60.0);
  opt.min_downtime = sim::seconds(30.0);
  opt.max_downtime = sim::seconds(60.0);
  return opt;
}

constexpr sim::SimTime kSnapshotAt{sim::minutes(6.0).micros()};
constexpr sim::SimTime kRunEnd{sim::minutes(20.0).micros()};
constexpr int kReads = 180;

/// One complete soak world: cluster + ERMS + fault injector. Construction
/// order (and therefore metric/query registration order) is identical on
/// every build, which is what lets a restored world pick up exactly where
/// the saved one stopped.
struct SoakWorld {
  sim::Simulation sim;
  Topology topo = Topology::uniform(3, 6);
  std::unique_ptr<Cluster> cluster;
  std::vector<NodeId> pool;
  std::unique_ptr<core::ErmsManager> erms;
  fault::FaultPlan plan;
  std::unique_ptr<fault::FaultInjector> injector;
  std::vector<hdfs::FileId> files;

  explicit SoakWorld(std::uint64_t seed) {
    cluster = std::make_unique<Cluster>(sim, topo, ClusterConfig{});
    for (std::uint32_t n = 10; n < 18; ++n) {
      pool.push_back(NodeId{n});
    }
    erms = std::make_unique<core::ErmsManager>(*cluster, pool, soak_erms());
    plan = fault::FaultPlan::randomized(soak_options(), seed);
    injector =
        std::make_unique<fault::FaultInjector>(*cluster, &erms->observability()->trace());
  }

  [[nodiscard]] snapshot::WorldParts parts() {
    return snapshot::WorldParts{&sim, cluster.get(), erms.get(), injector.get(), nullptr};
  }

  void populate() {
    for (int i = 0; i < 4; ++i) {
      files.push_back(*cluster->populate_file("/snap/f" + std::to_string(i), 64 * MiB, 3));
    }
  }

  /// Schedule the steady read workload, skipping everything at or before
  /// `after` — the restore path re-arms only the not-yet-executed tail. Must
  /// run before injector arming and manager start/resume so that equal-time
  /// events keep the reference run's order: reads, then faults, then tick.
  void schedule_reads(sim::SimTime after) {
    for (int i = 0; i < kReads; ++i) {
      const sim::SimTime at{static_cast<std::int64_t>(i) * 5'000'000};
      if (at <= after) {
        continue;
      }
      sim.schedule_at(at, [this, i] {
        cluster->read_file(NodeId{static_cast<std::uint32_t>(i % 10)},
                           files[static_cast<std::size_t>(i) % files.size()],
                           [](const hdfs::ReadOutcome&) {});
      });
    }
  }

  [[nodiscard]] std::string invariant_report() {
    const fault::InvariantChecker checker{*cluster, &erms->scheduler(),
                                          &erms->observability()->trace()};
    return checker.check(/*converged=*/true).text;
  }

  [[nodiscard]] std::string trace_jsonl() {
    std::ostringstream os;
    erms->observability()->trace().to_jsonl(os);
    return os.str();
  }
};

/// A tiny idle world for file-format fuzzing — quiescent by construction,
/// cheap to rebuild, and stable enough that "untouched" can be asserted by
/// comparing serialized state before and after a rejected restore.
struct TinyWorld {
  sim::Simulation sim;
  Topology topo = Topology::uniform(2, 3);
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<core::ErmsManager> erms;

  explicit TinyWorld(ClusterConfig cfg = {}) {
    cluster = std::make_unique<Cluster>(sim, topo, cfg);
    erms = std::make_unique<core::ErmsManager>(*cluster, std::vector<NodeId>{NodeId{5}},
                                               soak_erms());
    (void)cluster->populate_file("/tiny/a", 64 * MiB, 2);
  }

  [[nodiscard]] snapshot::WorldParts parts() {
    return snapshot::WorldParts{&sim, cluster.get(), erms.get(), nullptr, nullptr};
  }
};

// ---------------------------------------------------------------------------
// Resume determinism
// ---------------------------------------------------------------------------

struct RunArtifacts {
  std::string snapshot_bytes;
  std::string report;
  std::string trace;
  std::uint64_t blocks_lost{0};
  std::uint64_t injected{0};
};

/// The uninterrupted reference: same barrier, same save (flush side effects
/// included), but the run just keeps going afterwards.
RunArtifacts run_reference(std::uint64_t seed) {
  SoakWorld w(seed);
  w.populate();
  w.schedule_reads(sim::SimTime{-1});
  w.injector->arm(w.plan);
  w.erms->start();

  snapshot::SnapshotBarrier barrier{w.sim, w.parts()};
  RunArtifacts out;
  barrier.arm(kSnapshotAt, [&] {
    out.snapshot_bytes = snapshot::save_world_bytes(w.parts(), "seed=" + std::to_string(seed));
  });
  w.sim.run_until(kRunEnd);
  EXPECT_TRUE(barrier.fired()) << "no quiescent point found after " << kSnapshotAt;

  out.report = w.invariant_report();
  out.trace = w.trace_jsonl();
  out.blocks_lost = w.cluster->blocks_lost();
  out.injected = w.injector->injected();
  w.erms->stop();
  return out;
}

/// The interrupted run: identical to the reference until the barrier fires,
/// then the process "dies" (sim stops, world discarded). A fresh world is
/// rebuilt, restored from the snapshot bytes, re-armed and run to the end.
RunArtifacts run_restored(std::uint64_t seed, std::vector<hdfs::FileId>* files_out = nullptr) {
  std::string bytes;
  std::vector<hdfs::FileId> files;
  {
    SoakWorld w(seed);
    w.populate();
    files = w.files;
    w.schedule_reads(sim::SimTime{-1});
    w.injector->arm(w.plan);
    w.erms->start();

    snapshot::SnapshotBarrier barrier{w.sim, w.parts()};
    barrier.arm(kSnapshotAt, [&] {
      bytes = snapshot::save_world_bytes(w.parts(), "seed=" + std::to_string(seed));
      w.sim.stop();
    });
    w.sim.run_until(kRunEnd);
    EXPECT_FALSE(bytes.empty());
  }

  SoakWorld w(seed);
  w.files = files;  // dense ids are deterministic; restore rebuilds the namespace
  std::string user_data;
  const snapshot::SnapshotResult err =
      snapshot::restore_world_bytes(bytes, w.parts(), &user_data);
  EXPECT_FALSE(err.has_value()) << err->to_string();
  EXPECT_EQ(user_data, "seed=" + std::to_string(seed));

  // Re-arm continuation events in the reference run's equal-time order:
  // workload reads first, remaining fault events next, manager tick last.
  w.schedule_reads(w.sim.now());
  w.injector->arm_after(w.plan, w.sim.now());
  w.erms->resume();
  w.sim.run_until(kRunEnd);

  RunArtifacts out;
  out.snapshot_bytes = bytes;
  out.report = w.invariant_report();
  out.trace = w.trace_jsonl();
  out.blocks_lost = w.cluster->blocks_lost();
  out.injected = w.injector->injected();
  w.erms->stop();
  if (files_out != nullptr) {
    *files_out = files;
  }
  return out;
}

TEST(SnapshotResume, ByteIdenticalAcrossChaosSeeds) {
  for (const std::uint64_t seed : {3u, 5u, 9u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RunArtifacts ref = run_reference(seed);
    const RunArtifacts res = run_restored(seed);
    // Both runs were identical up to the barrier, so the snapshots they
    // saved there must match byte for byte...
    EXPECT_EQ(ref.snapshot_bytes, res.snapshot_bytes);
    // ...and so must everything the runs tell about their second half.
    EXPECT_EQ(ref.trace, res.trace);
    EXPECT_EQ(ref.report, res.report);
    EXPECT_EQ(ref.blocks_lost, res.blocks_lost);
    EXPECT_EQ(ref.injected, res.injected);
    EXPECT_EQ(ref.blocks_lost, 0u);
    EXPECT_GT(ref.injected, 0u);
  }
}

TEST(SnapshotResume, SaveRestoreSaveIsIdentity) {
  TinyWorld a;
  const std::string bytes = snapshot::save_world_bytes(a.parts(), "blob");

  TinyWorld b;
  std::string user_data;
  const snapshot::SnapshotResult err = snapshot::restore_world_bytes(bytes, b.parts(), &user_data);
  ASSERT_FALSE(err.has_value()) << err->to_string();
  EXPECT_EQ(user_data, "blob");
  EXPECT_EQ(snapshot::save_world_bytes(b.parts(), "blob"), bytes);
}

// ---------------------------------------------------------------------------
// Hostile input: every corruption is rejected with a structured error and
// zero mutation of the live world.
// ---------------------------------------------------------------------------

class SnapshotFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    donor_ = std::make_unique<TinyWorld>();
    bytes_ = snapshot::save_world_bytes(donor_->parts());
    victim_ = std::make_unique<TinyWorld>();
    baseline_ = snapshot::save_world_bytes(victim_->parts());
  }

  /// Restore must fail with `want` (or any error if nullopt) and must leave
  /// the victim world bit-identical to before the attempt.
  void expect_rejected(const std::string& corrupted,
                       std::optional<snapshot::ErrorCode> want = std::nullopt) {
    const snapshot::SnapshotResult err =
        snapshot::restore_world_bytes(corrupted, victim_->parts());
    ASSERT_TRUE(err.has_value());
    if (want.has_value()) {
      EXPECT_EQ(err->code, *want) << err->to_string();
    }
    EXPECT_FALSE(err->message.empty());
    EXPECT_EQ(snapshot::save_world_bytes(victim_->parts()), baseline_)
        << "rejected restore mutated the live world";
  }

  std::unique_ptr<TinyWorld> donor_;
  std::unique_ptr<TinyWorld> victim_;
  std::string bytes_;
  std::string baseline_;
};

TEST_F(SnapshotFuzz, TruncationsAtEveryBoundaryAreRejected) {
  const std::size_t cuts[] = {0, 1, 4, 7, 8, 11, 12, 15, 16, 20,
                              bytes_.size() / 4, bytes_.size() / 2, bytes_.size() - 1};
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("truncate to " + std::to_string(cut));
    ASSERT_LT(cut, bytes_.size());
    expect_rejected(bytes_.substr(0, cut));
  }
}

TEST_F(SnapshotFuzz, EverySingleByteFlipIsRejected) {
  // Every byte of the file is covered: header fields fail their own field
  // checks, all payload bytes (and the CRCs guarding them) fail CRC.
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    std::string mutated = bytes_;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    const snapshot::SnapshotResult err =
        snapshot::restore_world_bytes(mutated, victim_->parts());
    ASSERT_TRUE(err.has_value()) << "flip at offset " << i << " was accepted";
  }
  EXPECT_EQ(snapshot::save_world_bytes(victim_->parts()), baseline_);
}

TEST_F(SnapshotFuzz, BadMagicIsDiagnosed) {
  std::string mutated = bytes_;
  mutated[0] = 'X';
  expect_rejected(mutated, snapshot::ErrorCode::kBadMagic);
}

TEST_F(SnapshotFuzz, VersionSkewIsDiagnosedNotCorrupt) {
  std::string mutated = bytes_;
  mutated[8] = static_cast<char>(snapshot::kFormatVersion + 1);  // version u32 LSB
  expect_rejected(mutated, snapshot::ErrorCode::kBadVersion);
}

TEST_F(SnapshotFuzz, GarbageAndEmptyFilesAreRejected) {
  expect_rejected("", snapshot::ErrorCode::kBadMagic);
  expect_rejected(std::string(4096, '\xAB'), snapshot::ErrorCode::kBadMagic);
}

TEST_F(SnapshotFuzz, WrongWorldShapeIsStateMismatch) {
  // A world with a different block size: the meta fingerprint must reject
  // the snapshot before any section is applied.
  ClusterConfig other;
  other.block_size = 32 * MiB;
  TinyWorld wrong(other);
  const std::string wrong_baseline = snapshot::save_world_bytes(wrong.parts());
  const snapshot::SnapshotResult err = snapshot::restore_world_bytes(bytes_, wrong.parts());
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, snapshot::ErrorCode::kStateMismatch) << err->to_string();
  EXPECT_EQ(snapshot::save_world_bytes(wrong.parts()), wrong_baseline);
}

TEST_F(SnapshotFuzz, MissingFileIsIo) {
  TinyWorld w;
  const snapshot::SnapshotResult err =
      snapshot::restore_world("/nonexistent/erms.snap", w.parts());
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, snapshot::ErrorCode::kIo);
}

}  // namespace
}  // namespace erms
