#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulation.h"

namespace erms::net {
namespace {

/// 2 racks × 2 nodes. Disk 80 MB/s, NIC 125 MB/s, uplink 100 MB/s so the
/// inter-rack constraint is visible.
FabricSpec small_fabric() {
  FabricSpec spec;
  spec.rack_count = 2;
  spec.rack_uplink_bw = 100.0e6;
  for (int i = 0; i < 4; ++i) {
    FabricSpec::Node n;
    n.rack = i / 2;
    n.nic_bw = 125.0e6;
    n.disk_bw = 80.0e6;
    spec.nodes.push_back(n);
  }
  return spec;
}

TEST(Network, RejectsEmptySpec) {
  sim::Simulation sim;
  EXPECT_THROW(NetworkModel(sim, FabricSpec{}), std::invalid_argument);
}

TEST(Network, RejectsBadRack) {
  sim::Simulation sim;
  FabricSpec spec;
  spec.rack_count = 1;
  FabricSpec::Node n;
  n.rack = 3;
  spec.nodes.push_back(n);
  EXPECT_THROW(NetworkModel(sim, spec), std::invalid_argument);
}

TEST(Network, SingleFlowDiskBound) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  // 80 MB over a disk-bound path (disk 80 MB/s < NIC) within one rack.
  bool done = false;
  net.start_flow(0, 1, 80'000'000, {}, [&](FlowId) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now().seconds(), 1.0, 1e-5);
  EXPECT_EQ(net.total_bytes_completed(), 80'000'000u);
  EXPECT_EQ(net.inter_rack_bytes(), 0u);
}

TEST(Network, LocalReadUsesOnlyDisk) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  bool done = false;
  net.start_flow(2, 2, 40'000'000, {}, [&](FlowId) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now().seconds(), 0.5, 1e-5);  // 40 MB at 80 MB/s
}

TEST(Network, InterRackCountsUplinkTraffic) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  net.start_flow(0, 2, 10'000'000, {}, nullptr);
  sim.run();
  EXPECT_EQ(net.inter_rack_bytes(), 10'000'000u);
}

TEST(Network, TwoFlowsShareSourceDisk) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  int done = 0;
  // Both flows read from node 0's disk (80 MB/s): each gets 40 MB/s.
  net.start_flow(0, 1, 40'000'000, {}, [&](FlowId) { ++done; });
  net.start_flow(0, 1, 40'000'000, {}, [&](FlowId) { ++done; });
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(sim.now().seconds(), 1.0, 1e-5);
}

TEST(Network, IndependentFlowsDoNotInterfere) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  double t1 = 0.0;
  double t2 = 0.0;
  net.start_flow(0, 1, 80'000'000, {}, [&](FlowId) { t1 = sim.now().seconds(); });
  net.start_flow(2, 3, 80'000'000, {}, [&](FlowId) { t2 = sim.now().seconds(); });
  sim.run();
  EXPECT_NEAR(t1, 1.0, 1e-5);
  EXPECT_NEAR(t2, 1.0, 1e-5);
}

TEST(Network, UplinkIsTheInterRackBottleneck) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  // Two flows from different rack-0 sources to different rack-1 sinks: each
  // alone could do 80 MB/s (disk), but the shared 100 MB/s uplink caps the
  // pair at 50 MB/s each.
  int done = 0;
  net.start_flow(0, 2, 50'000'000, {}, [&](FlowId) { ++done; });
  net.start_flow(1, 3, 50'000'000, {}, [&](FlowId) { ++done; });
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(sim.now().seconds(), 1.0, 1e-5);
}

TEST(Network, RatesRebalanceWhenFlowFinishes) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  // Flow A: 40 MB from node 0. Flow B: 60 MB from node 0. Sharing the disk
  // at 40 MB/s each; A finishes at t=1s, then B runs at 80 MB/s:
  // B has 20 MB left → finishes at t=1.25s.
  double tb = 0.0;
  net.start_flow(0, 1, 40'000'000, {}, nullptr);
  net.start_flow(0, 1, 60'000'000, {}, [&](FlowId) { tb = sim.now().seconds(); });
  sim.run();
  EXPECT_NEAR(tb, 1.25, 1e-5);
}

TEST(Network, MaxMinFairnessConservation) {
  sim::Simulation sim;
  FabricSpec spec = small_fabric();
  NetworkModel net{sim, spec};
  // Saturate node 0's disk with 4 flows; the allocated rates must sum to no
  // more than the disk capacity and be equal (max-min).
  std::vector<FlowId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(net.start_flow(0, 1, 1'000'000'000, {}, nullptr));
  }
  double sum = 0.0;
  for (const FlowId id : ids) {
    const double r = net.flow_rate(id);
    EXPECT_NEAR(r, 20.0e6, 1e3);
    sum += r;
  }
  EXPECT_LE(sum, 80.0e6 * (1.0 + 1e-9));
  for (const FlowId id : ids) {
    net.cancel_flow(id);
  }
}

TEST(Network, CancelPreventsCompletion) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  bool fired = false;
  const FlowId id = net.start_flow(0, 1, 80'000'000, {}, [&](FlowId) { fired = true; });
  net.cancel_flow(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(Network, CancelFreesBandwidthForOthers) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  double t = 0.0;
  const FlowId victim = net.start_flow(0, 1, 1'000'000'000, {}, nullptr);
  net.start_flow(0, 1, 80'000'000, {}, [&](FlowId) { t = sim.now().seconds(); });
  sim.schedule_after(sim::seconds(0.5), [&] { net.cancel_flow(victim); });
  sim.run();
  // 0.5s at 40 MB/s (20 MB) + 60 MB at 80 MB/s (0.75s) = 1.25s.
  EXPECT_NEAR(t, 1.25, 1e-5);
}

TEST(Network, DstDiskConstrainsWrites) {
  sim::Simulation sim;
  FabricSpec spec = small_fabric();
  spec.nodes[1].disk_bw = 40.0e6;  // slow destination disk
  NetworkModel net{sim, spec};
  NetworkModel::FlowOptions opts;
  opts.src_disk = true;
  opts.dst_disk = true;
  net.start_flow(0, 1, 40'000'000, opts, nullptr);
  sim.run();
  EXPECT_NEAR(sim.now().seconds(), 1.0, 1e-5);  // bound by 40 MB/s write
}

TEST(Network, RateCapLimitsLoneFlow) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  NetworkModel::FlowOptions opts;
  opts.max_rate = 20.0e6;  // well below the 80 MB/s disk
  net.start_flow(0, 1, 20'000'000, opts, nullptr);
  sim.run();
  EXPECT_NEAR(sim.now().seconds(), 1.0, 1e-5);
}

TEST(Network, CappedFlowReleasesShareToOthers) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  NetworkModel::FlowOptions capped;
  capped.max_rate = 10.0e6;
  const FlowId slow = net.start_flow(0, 1, 1'000'000'000, capped, nullptr);
  const FlowId fast = net.start_flow(0, 1, 1'000'000'000, {}, nullptr);
  // Disk 80 MB/s: the capped flow takes 10, the other gets the remaining 70
  // (not the 40/40 plain fair split).
  EXPECT_NEAR(net.flow_rate(slow), 10.0e6, 1e3);
  EXPECT_NEAR(net.flow_rate(fast), 70.0e6, 1e3);
  net.cancel_flow(slow);
  net.cancel_flow(fast);
}

TEST(Network, CapAboveFairShareIsInert) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  NetworkModel::FlowOptions opts;
  opts.max_rate = 500.0e6;  // far above any link
  net.start_flow(0, 1, 80'000'000, opts, nullptr);
  sim.run();
  EXPECT_NEAR(sim.now().seconds(), 1.0, 1e-5);  // still disk-bound
}

TEST(Network, ManyCappedFlowsSumWithinLink) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  NetworkModel::FlowOptions opts;
  opts.max_rate = 15.0e6;
  std::vector<FlowId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(net.start_flow(0, 1, 1'000'000'000, opts, nullptr));
  }
  // 4 × 15 = 60 MB/s < 80 MB/s disk: every flow runs at its cap.
  for (const FlowId id : ids) {
    EXPECT_NEAR(net.flow_rate(id), 15.0e6, 1e3);
  }
  for (const FlowId id : ids) {
    net.cancel_flow(id);
  }
}

TEST(Network, ZeroByteFlowCompletes) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  bool done = false;
  net.start_flow(0, 1, 0, {}, [&](FlowId) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now().micros(), 0);
}

TEST(Network, ManyFlowsAllComplete) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    net.start_flow(static_cast<std::size_t>(i % 4),
                   static_cast<std::size_t>((i + 1) % 4), 1'000'000, {},
                   [&](FlowId) { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 64);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(NetworkFaults, AbortAccountsPartialBytes) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  // Disk-bound at 80 MB/s; abort at 0.5 s → exactly 40 MB made it across.
  bool completed = false;
  std::uint64_t partial = 0;
  NetworkModel::FlowOptions opts;
  opts.on_abort = [&](FlowId, std::uint64_t bytes) { partial = bytes; };
  const FlowId id =
      net.start_flow(0, 1, 80'000'000, opts, [&](FlowId) { completed = true; });
  sim.schedule_at(sim::SimTime{sim::seconds(0.5).micros()}, [&] { net.abort_flow(id); });
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_NEAR(static_cast<double>(partial), 40'000'000.0, 1e3);
  EXPECT_EQ(net.flows_aborted(), 1u);
  EXPECT_EQ(net.bytes_aborted(), partial);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(NetworkFaults, AbortFlowsTouchingNodeIsDeterministic) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  std::vector<std::uint64_t> aborted_order;
  NetworkModel::FlowOptions opts;
  opts.on_abort = [&](FlowId id, std::uint64_t) { aborted_order.push_back(id.value()); };
  net.start_flow(0, 1, 50'000'000, opts, [](FlowId) {});
  net.start_flow(2, 0, 50'000'000, opts, [](FlowId) {});
  net.start_flow(2, 3, 50'000'000, opts, [](FlowId) {});  // does not touch node 0
  sim.schedule_at(sim::SimTime{sim::seconds(0.1).micros()}, [&] {
    const auto victims = net.abort_flows_touching(0);
    EXPECT_EQ(victims.size(), 2u);
    // FlowId order, for replayable accounting.
    EXPECT_LT(victims[0].id.value(), victims[1].id.value());
  });
  sim.run();
  ASSERT_EQ(aborted_order.size(), 2u);
  EXPECT_LT(aborted_order[0], aborted_order[1]);
  EXPECT_EQ(net.flows_aborted(), 2u);
  EXPECT_EQ(net.active_flows(), 0u);  // third flow ran to completion
}

TEST(NetworkFaults, TimeoutAbortsSlowFlow) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  bool completed = false;
  bool aborted = false;
  NetworkModel::FlowOptions opts;
  opts.timeout = sim::seconds(0.25);
  opts.on_abort = [&](FlowId, std::uint64_t) { aborted = true; };
  net.start_flow(0, 1, 80'000'000, opts, [&](FlowId) { completed = true; });
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_TRUE(aborted);
  EXPECT_NEAR(sim.now().seconds(), 0.25, 1e-5);
}

TEST(NetworkFaults, TimeoutCancelledOnCompletion) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  bool completed = false;
  bool aborted = false;
  NetworkModel::FlowOptions opts;
  opts.timeout = sim::seconds(10.0);
  opts.on_abort = [&](FlowId, std::uint64_t) { aborted = true; };
  net.start_flow(0, 1, 8'000'000, opts, [&](FlowId) { completed = true; });
  sim.run();
  EXPECT_TRUE(completed);
  EXPECT_FALSE(aborted);
}

TEST(NetworkFaults, NodeDegradationSlowsFlows) {
  sim::Simulation sim;
  NetworkModel net{sim, small_fabric()};
  // Halve node 0's link capacities: the disk-bound 80 MB/s path drops to
  // 40 MB/s, so 40 MB takes 1 s instead of 0.5 s.
  net.set_node_degradation(0, 0.5);
  bool done = false;
  net.start_flow(0, 1, 40'000'000, {}, [&](FlowId) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now().seconds(), 1.0, 1e-5);
  // Restoring mid-run speeds the next flow back up.
  net.set_node_degradation(0, 1.0);
  done = false;
  const sim::SimTime before = sim.now();
  net.start_flow(0, 1, 40'000'000, {}, [&](FlowId) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR((sim.now() - before).seconds(), 0.5, 1e-5);
}

}  // namespace
}  // namespace erms::net
