#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "util/bytes.h"
#include "util/ids.h"
#include "util/log.h"
#include "util/ring_buffer.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace erms::util {
namespace {

struct AppleTag {};
struct OrangeTag {};
using AppleId = StrongId<AppleTag>;
using OrangeId = StrongId<OrangeTag>;

TEST(StrongId, DefaultIsZero) {
  AppleId id;
  EXPECT_EQ(id.value(), 0u);
}

TEST(StrongId, ComparesByValue) {
  EXPECT_EQ(AppleId{3}, AppleId{3});
  EXPECT_NE(AppleId{3}, AppleId{4});
  EXPECT_LT(AppleId{3}, AppleId{4});
  EXPECT_GE(AppleId{4}, AppleId{4});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<AppleId, OrangeId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<AppleId> set;
  set.insert(AppleId{1});
  set.insert(AppleId{1});
  set.insert(AppleId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(IdGenerator, Monotonic) {
  IdGenerator<AppleId> gen{10};
  EXPECT_EQ(gen.next(), AppleId{10});
  EXPECT_EQ(gen.next(), AppleId{11});
  EXPECT_EQ(gen.next(), AppleId{12});
}

TEST(Bytes, Constants) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(TiB, GiB * 1024u);
}

TEST(Bytes, FormatSmall) { EXPECT_EQ(format_bytes(512), "512 B"); }

TEST(Bytes, FormatMiB) { EXPECT_EQ(format_bytes(64 * MiB), "64.00 MiB"); }

TEST(Bytes, FormatFractionalGiB) { EXPECT_EQ(format_bytes(GiB + GiB / 2), "1.50 GiB"); }

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(Strings, SplitKeyValue) {
  std::string_view k;
  std::string_view v;
  ASSERT_TRUE(split_key_value("cmd=open", k, v));
  EXPECT_EQ(k, "cmd");
  EXPECT_EQ(v, "open");
  EXPECT_FALSE(split_key_value("noequals", k, v));
}

TEST(Strings, SplitKeyValueKeepsLaterEquals) {
  std::string_view k;
  std::string_view v;
  ASSERT_TRUE(split_key_value("expr=a=b", k, v));
  EXPECT_EQ(k, "expr");
  EXPECT_EQ(v, "a=b");
}

TEST(Table, AlignsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::cell(1)});
  t.add_row({"b", Table::cell(2.5, 1)});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nx,,\n");
}

TEST(Table, RejectsOverlongRows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"x", "y"}), std::invalid_argument);
}

TEST(Table, CsvRoundShape) {
  Table t({"h1", "h2"});
  t.add_row({Table::cell(std::uint64_t{7}), Table::cell(-1)});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "h1,h2\n7,-1\n");
}

TEST(Logger, NullLoggerDisabled) {
  Logger& null = Logger::null_logger();
  EXPECT_FALSE(null.enabled(LogLevel::kError));
}

TEST(Logger, RespectsLevel) {
  std::ostringstream os;
  Logger logger{&os, LogLevel::kWarn};
  logger.log(LogLevel::kInfo, "x", "hidden");
  logger.log(LogLevel::kError, "x", "shown");
  EXPECT_EQ(os.str().find("hidden"), std::string::npos);
  EXPECT_NE(os.str().find("shown"), std::string::npos);
}

TEST(Logger, FormatsComponent) {
  std::ostringstream os;
  Logger logger{&os, LogLevel::kDebug};
  logger.log(LogLevel::kInfo, "cluster", "hello");
  EXPECT_EQ(os.str(), "[INFO] cluster: hello\n");
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForTrivialSizes) {
  ThreadPool pool(2);
  int zero_calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);
  std::atomic<int> one_calls{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++one_calls;
  });
  EXPECT_EQ(one_calls.load(), 1);
}

TEST(ThreadPool, RunExecutesEnqueuedTasks) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(3);
    for (int i = 1; i <= 10; ++i) {
      pool.run([&sum, i] { sum.fetch_add(i); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(sum.load(), 55);
}

TEST(RingBuffer, PushPopFifo) {
  RingBuffer<int> ring;
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 5; ++i) {
    ring.push_back(i);
  }
  EXPECT_EQ(ring.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ring.front(), i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, WrapsAroundWithoutGrowing) {
  RingBuffer<int> ring;
  ring.reserve(8);
  const std::size_t cap = ring.capacity();
  // Steady-state push/pop at half capacity cycles the head all the way
  // around the buffer several times.
  int next = 0;
  int expect = 0;
  for (int i = 0; i < 4; ++i) {
    ring.push_back(next++);
  }
  for (int round = 0; round < 50; ++round) {
    ring.push_back(next++);
    EXPECT_EQ(ring.front(), expect++);
    ring.pop_front();
  }
  EXPECT_EQ(ring.capacity(), cap) << "stagger within capacity must not grow";
  while (!ring.empty()) {
    EXPECT_EQ(ring.front(), expect++);
    ring.pop_front();
  }
  EXPECT_EQ(expect, next);
}

TEST(RingBuffer, GrowthPreservesOrderMidWrap) {
  RingBuffer<int> ring;
  // Force a wrapped state, then overflow capacity so grow() relinearizes.
  for (int i = 0; i < 10; ++i) {
    ring.push_back(i);
  }
  for (int i = 0; i < 7; ++i) {
    ring.pop_front();
  }
  const std::size_t cap = ring.capacity();
  for (int i = 10; i < 200; ++i) {
    ring.push_back(i);
  }
  EXPECT_GT(ring.capacity(), cap);
  EXPECT_EQ(ring.size(), 193u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i) + 7);
  }
}

TEST(RingBuffer, IndexingCountsFromFront) {
  RingBuffer<int> ring;
  for (int i = 0; i < 20; ++i) {
    ring.push_back(i * 3);
  }
  for (int i = 0; i < 12; ++i) {
    ring.pop_front();
  }
  EXPECT_EQ(ring[0], ring.front());
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(12 + i) * 3);
  }
}

}  // namespace
}  // namespace erms::util
