#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace erms::sim {
namespace {

TEST(SimTime, ArithmeticAndConversion) {
  const SimTime t{2'500'000};
  EXPECT_DOUBLE_EQ(t.seconds(), 2.5);
  EXPECT_EQ((t + seconds(1.5)).micros(), 4'000'000);
  EXPECT_EQ((t - seconds(0.5)).micros(), 2'000'000);
  EXPECT_EQ((SimTime{5'000'000} - t).micros(), 2'500'000);
}

TEST(SimTime, DurationHelpers) {
  EXPECT_EQ(micros(7).micros(), 7);
  EXPECT_EQ(millis(3).micros(), 3000);
  EXPECT_EQ(seconds(2.0).micros(), 2'000'000);
  EXPECT_EQ(minutes(1.0).micros(), 60'000'000);
  EXPECT_EQ(hours(1.0).micros(), 3'600'000'000ll);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime{1}, SimTime{2});
  EXPECT_LE(SimTime{2}, SimTime{2});
  EXPECT_GT(seconds(2.0), seconds(1.0));
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime{30}, [&] { fired.push_back(3); });
  q.schedule(SimTime{10}, [&] { fired.push_back(1); });
  q.schedule(SimTime{20}, [&] { fired.push_back(2); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakBySequence) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime{10}, [&] { fired.push_back(1); });
  q.schedule(SimTime{10}, [&] { fired.push_back(2); });
  q.schedule(SimTime{10}, [&] { fired.push_back(3); });
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  EventHandle h = q.schedule(SimTime{10}, [&] { ++fired; });
  q.schedule(SimTime{20}, [&] { ++fired; });
  h.cancel();
  while (!q.empty()) {
    q.pop().fn();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EmptyAfterAllCancelled) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime{10}, [] {});
  EXPECT_FALSE(q.empty());
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandlePendingLifecycle) {
  EventQueue q;
  EventHandle h = q.schedule(SimTime{10}, [] {});
  EXPECT_TRUE(h.pending());
  q.pop().fn();
  EXPECT_FALSE(h.pending());
  EXPECT_NO_FATAL_FAILURE(h.cancel());  // cancel after fire is a no-op
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  SimTime seen;
  sim.schedule_after(seconds(5.0), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime{5'000'000});
  EXPECT_EQ(sim.now(), SimTime{5'000'000});
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_after(seconds(1.0), [&] {
    times.push_back(sim.now().seconds());
    sim.schedule_after(seconds(1.0), [&] { times.push_back(sim.now().seconds()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule_after(seconds(1.0), [&] { ++fired; });
  sim.schedule_after(seconds(10.0), [&] { ++fired; });
  sim.run_until(SimTime{5'000'000});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime{5'000'000});
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunUntilAdvancesClockPastEmptyQueue) {
  Simulation sim;
  sim.run_until(SimTime{42});
  EXPECT_EQ(sim.now(), SimTime{42});
}

TEST(Simulation, StopBreaksRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_after(seconds(1.0), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(seconds(2.0), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, ScheduleAtPastClampsToNow) {
  Simulation sim;
  sim.schedule_after(seconds(5.0), [] {});
  sim.run();
  SimTime seen;
  sim.schedule_at(SimTime{0}, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime{5'000'000});
}

TEST(Simulation, CountsEvents) {
  Simulation sim;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(micros(i), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), 10u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{5};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, PoissonZeroMean) {
  Rng rng{5};
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument); }

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf{100, 1.2};
  double sum = 0.0;
  for (std::size_t k = 1; k <= 100; ++k) {
    sum += zipf.pmf(k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfMonotoneDecreasing) {
  ZipfDistribution zipf{50, 1.0};
  for (std::size_t k = 2; k <= 50; ++k) {
    EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1));
  }
}

TEST(Zipf, SampleMatchesPmfHead) {
  ZipfDistribution zipf{100, 1.1};
  Rng rng{99};
  const int n = 50000;
  int rank1 = 0;
  for (int i = 0; i < n; ++i) {
    const std::size_t k = zipf.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
    rank1 += k == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(rank1) / n, zipf.pmf(1), 0.02);
}

/// Property sweep: the head-probability of the distribution follows the
/// exponent across a range of exponents.
class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, HeavierTailForSmallerExponent) {
  const double s = GetParam();
  ZipfDistribution zipf{1000, s};
  // P(rank<=10) grows with the exponent.
  double head = 0.0;
  for (std::size_t k = 1; k <= 10; ++k) {
    head += zipf.pmf(k);
  }
  ZipfDistribution flatter{1000, s - 0.3};
  double flatter_head = 0.0;
  for (std::size_t k = 1; k <= 10; ++k) {
    flatter_head += flatter.pmf(k);
  }
  EXPECT_GT(head, flatter_head);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.8, 1.0, 1.2, 1.5, 2.0));

}  // namespace
}  // namespace erms::sim
