#include <gtest/gtest.h>

#include "hdfs/cluster.h"
#include "mapred/jobrunner.h"
#include "mapred/testdfsio.h"

namespace erms::mapred {
namespace {

using hdfs::Cluster;
using hdfs::ClusterConfig;
using hdfs::NodeId;
using hdfs::Topology;
using util::MiB;

struct Fixture {
  sim::Simulation sim;
  Topology topo = Topology::uniform(3, 6);
  std::unique_ptr<Cluster> cluster;

  explicit Fixture(ClusterConfig cfg = {}) {
    cluster = std::make_unique<Cluster>(sim, topo, cfg);
  }
};

TEST(JobRunner, RunsSingleJobToCompletion) {
  Fixture f;
  f.cluster->populate_file("/in", 256 * MiB, 3);
  JobRunner runner{*f.cluster, MapRedConfig{}};
  const auto id = runner.submit("/in");
  ASSERT_TRUE(id.has_value());
  f.sim.run();
  ASSERT_EQ(runner.results().size(), 1u);
  const JobResult& r = runner.results()[0];
  EXPECT_EQ(r.tasks, 4u);
  EXPECT_EQ(r.node_local + r.rack_local + r.remote, 4u);
  EXPECT_EQ(r.failed_tasks, 0u);
  EXPECT_EQ(r.bytes_read, 256 * MiB);
  EXPECT_GT(r.duration_seconds(), 0.0);
  EXPECT_TRUE(runner.idle());
}

TEST(JobRunner, UnknownInputRejected) {
  Fixture f;
  JobRunner runner{*f.cluster, MapRedConfig{}};
  EXPECT_FALSE(runner.submit("/missing").has_value());
}

TEST(JobRunner, ManyJobsAllComplete) {
  Fixture f;
  for (int i = 0; i < 8; ++i) {
    f.cluster->populate_file("/in" + std::to_string(i), 128 * MiB, 3);
  }
  JobRunner runner{*f.cluster, MapRedConfig{}};
  for (int i = 0; i < 8; ++i) {
    runner.submit("/in" + std::to_string(i));
  }
  f.sim.run();
  EXPECT_EQ(runner.results().size(), 8u);
  const WorkloadReport rep = runner.report();
  EXPECT_EQ(rep.jobs, 8u);
  EXPECT_GT(rep.mean_read_throughput_mbps, 0.0);
  EXPECT_EQ(rep.failed_tasks, 0u);
}

TEST(JobRunner, TraceSubmission) {
  Fixture f;
  workload::Trace trace;
  trace.files = {{"/a", 128 * MiB}, {"/b", 64 * MiB}};
  for (const auto& file : trace.files) {
    f.cluster->populate_file(file.path, file.bytes, 3);
  }
  trace.jobs = {{sim::SimTime{0}, "/a"},
                {sim::SimTime{sim::seconds(10.0).micros()}, "/b"},
                {sim::SimTime{sim::seconds(20.0).micros()}, "/a"}};
  JobRunner runner{*f.cluster, MapRedConfig{}};
  runner.submit_trace(trace);
  f.sim.run();
  EXPECT_EQ(runner.results().size(), 3u);
}

TEST(JobRunner, FairImprovesLocalityOverFifo) {
  // Contended cluster, several concurrent jobs: delay scheduling should lift
  // the node-local fraction (the Fig. 3(b) vanilla gap between schedulers).
  auto run = [](SchedulerKind kind) {
    Fixture f;
    for (int i = 0; i < 6; ++i) {
      f.cluster->populate_file("/in" + std::to_string(i), 512 * MiB, 3);
    }
    MapRedConfig cfg;
    cfg.scheduler = kind;
    JobRunner runner{*f.cluster, cfg};
    for (int i = 0; i < 6; ++i) {
      runner.submit("/in" + std::to_string(i));
    }
    f.sim.run();
    return runner.report();
  };
  const WorkloadReport fifo = run(SchedulerKind::kFifo);
  const WorkloadReport fair = run(SchedulerKind::kFair);
  EXPECT_EQ(fifo.jobs, 6u);
  EXPECT_EQ(fair.jobs, 6u);
  EXPECT_GT(fair.mean_locality, fifo.mean_locality);
}

TEST(JobRunner, HigherReplicationImprovesLocality) {
  auto run = [](std::uint32_t rep) {
    Fixture f;
    for (int i = 0; i < 4; ++i) {
      f.cluster->populate_file("/in" + std::to_string(i), 512 * MiB, rep);
    }
    JobRunner runner{*f.cluster, MapRedConfig{}};
    for (int i = 0; i < 4; ++i) {
      runner.submit("/in" + std::to_string(i));
    }
    f.sim.run();
    return runner.report().mean_locality;
  };
  EXPECT_GT(run(6), run(1));
}

TEST(JobRunner, OnJobDoneCallback) {
  Fixture f;
  f.cluster->populate_file("/in", 64 * MiB, 3);
  JobRunner runner{*f.cluster, MapRedConfig{}};
  int called = 0;
  runner.set_on_job_done([&](const JobResult& r) {
    ++called;
    EXPECT_EQ(r.input_path, "/in");
  });
  runner.submit("/in");
  f.sim.run();
  EXPECT_EQ(called, 1);
}

TEST(JobRunner, SurvivesReplicaContention) {
  // Single-replica hot file + many jobs: tasks must retry through kAllBusy
  // and still finish.
  Fixture f;
  f.cluster->populate_file("/hot", 256 * MiB, 1);
  JobRunner runner{*f.cluster, MapRedConfig{}};
  for (int i = 0; i < 6; ++i) {
    runner.submit("/hot");
  }
  f.sim.run();
  EXPECT_EQ(runner.results().size(), 6u);
  for (const JobResult& r : runner.results()) {
    EXPECT_EQ(r.failed_tasks, 0u);
  }
}

// ---------- TestDFSIO ----------

TEST(TestDfsIo, SingleReaderBaseline) {
  Fixture f;
  f.cluster->populate_file("/bench", 1 * util::GiB, 3);
  TestDfsIoOptions opts;
  opts.readers = 1;
  const TestDfsIoResult r = run_concurrent_read(*f.cluster, "/bench", opts);
  EXPECT_EQ(r.succeeded, 1u);
  EXPECT_GT(r.mean_execution_s, 0.0);
  EXPECT_GT(r.mean_reader_throughput_mbps, 0.0);
}

TEST(TestDfsIo, MoreReadersSlower) {
  auto exec_time = [](std::size_t readers) {
    Fixture f;
    f.cluster->populate_file("/bench", 1 * util::GiB, 3);
    TestDfsIoOptions opts;
    opts.readers = readers;
    return run_concurrent_read(*f.cluster, "/bench", opts).mean_execution_s;
  };
  const double few = exec_time(4);
  const double many = exec_time(24);
  EXPECT_GT(many, few);  // Fig. 6: high concurrency decreases performance
}

TEST(TestDfsIo, MoreReplicasFaster) {
  auto exec_time = [](std::uint32_t rep) {
    Fixture f;
    f.cluster->populate_file("/bench", 1 * util::GiB, rep);
    TestDfsIoOptions opts;
    opts.readers = 21;
    return run_concurrent_read(*f.cluster, "/bench", opts).mean_execution_s;
  };
  const double rep1 = exec_time(1);
  const double rep5 = exec_time(5);
  EXPECT_GT(rep1, rep5);  // Fig. 6: replication increases performance
}

TEST(TestDfsIo, UnknownFile) {
  Fixture f;
  TestDfsIoOptions opts;
  const TestDfsIoResult r = run_concurrent_read(*f.cluster, "/none", opts);
  EXPECT_EQ(r.succeeded, 0u);
}

TEST(MaxConcurrent, ScalesWithReplicas) {
  // Fig. 8's mechanism: each replica adds ~max_sessions of admission.
  auto probe = [](std::uint32_t rep) {
    Fixture f;
    f.cluster->populate_file("/bench", 64 * MiB, rep);  // single block
    return max_concurrent_readers(*f.cluster, "/bench", 60);
  };
  const std::size_t r1 = probe(1);
  const std::size_t r2 = probe(2);
  const std::size_t r4 = probe(4);
  EXPECT_EQ(r1, 9u);  // one node × 9 sessions
  EXPECT_EQ(r2, 18u);
  EXPECT_EQ(r4, 36u);
}

TEST(TestDfsIo, ClientNodesOverride) {
  Fixture f;
  f.cluster->populate_file("/bench", 256 * MiB, 3);
  TestDfsIoOptions opts;
  opts.readers = 4;
  opts.client_nodes = {hdfs::NodeId{0}};  // all readers on one client
  const TestDfsIoResult r = run_concurrent_read(*f.cluster, "/bench", opts);
  EXPECT_EQ(r.succeeded, 4u);
}

TEST(MaxConcurrent, CapsAtProbeLimit) {
  Fixture f;
  f.cluster->populate_file("/bench", 64 * MiB, 3);  // capacity 27
  EXPECT_EQ(max_concurrent_readers(*f.cluster, "/bench", 10), 10u);
}

TEST(JobRunner, JobOverErasureCodedFileCompletes) {
  Fixture f;
  const auto file = f.cluster->populate_file("/cold", 256 * MiB, 3);
  f.cluster->encode_file(*file, 4, nullptr);
  f.sim.run();
  JobRunner runner{*f.cluster, MapRedConfig{}};
  runner.submit("/cold");
  f.sim.run();
  ASSERT_EQ(runner.results().size(), 1u);
  EXPECT_EQ(runner.results()[0].failed_tasks, 0u);
  EXPECT_EQ(runner.results()[0].bytes_read, 256 * MiB);
}

TEST(JobRunner, EmitsOpenAuditPerJob) {
  Fixture f;
  f.cluster->populate_file("/in", 64 * MiB, 3);
  int opens = 0;
  f.cluster->set_audit_sink([&](const audit::AuditEvent& e) {
    opens += e.cmd == "open" ? 1 : 0;
  });
  JobRunner runner{*f.cluster, MapRedConfig{}};
  runner.submit("/in");
  runner.submit("/in");
  f.sim.run();
  EXPECT_EQ(opens, 2);
}

TEST(MaxConcurrent, ZeroWhenNoReplica) {
  Fixture f;
  EXPECT_EQ(max_concurrent_readers(*f.cluster, "/none", 10), 0u);
}

}  // namespace
}  // namespace erms::mapred
