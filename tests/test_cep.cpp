#include <gtest/gtest.h>

#include "cep/engine.h"
#include "cep/epl_parser.h"
#include "cep/pattern.h"
#include "classad/parser.h"

namespace erms::cep {
namespace {

Event ev(double t_seconds, const std::string& type) {
  return Event{sim::SimTime{static_cast<std::int64_t>(t_seconds * 1e6)}, type};
}

// ---------- windows ----------

TEST(Window, TimeWindowEvictsOldEvents) {
  SlidingWindow w{WindowSpec::time(sim::seconds(10.0))};
  std::vector<double> evicted;
  const auto on_evict = [&](const Event& e) { evicted.push_back(e.time.seconds()); };
  w.push(ev(0.0, "a"), on_evict);
  w.push(ev(5.0, "a"), on_evict);
  w.push(ev(11.0, "a"), on_evict);  // evicts t=0 (0 <= 11-10... boundary)
  EXPECT_EQ(evicted, (std::vector<double>{0.0}));
  EXPECT_EQ(w.size(), 2u);
}

TEST(Window, TimeWindowBoundaryInclusiveEviction) {
  // An event exactly `duration` old is evicted (window is (now-d, now]).
  SlidingWindow w{WindowSpec::time(sim::seconds(10.0))};
  int evictions = 0;
  const auto on_evict = [&](const Event&) { ++evictions; };
  w.push(ev(0.0, "a"), on_evict);
  w.evict_until(sim::SimTime{10'000'000}, on_evict);
  EXPECT_EQ(evictions, 1);
  EXPECT_TRUE(w.empty());
}

TEST(Window, LengthWindowKeepsLastN) {
  SlidingWindow w{WindowSpec::length(3)};
  int evictions = 0;
  const auto on_evict = [&](const Event&) { ++evictions; };
  for (int i = 0; i < 5; ++i) {
    w.push(ev(i, "a"), on_evict);
  }
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(evictions, 2);
  EXPECT_DOUBLE_EQ(w.events().front().time.seconds(), 2.0);
}

TEST(Window, LengthWindowIgnoresEvictUntil) {
  SlidingWindow w{WindowSpec::length(10)};
  w.push(ev(0.0, "a"), nullptr);
  w.evict_until(sim::SimTime{100'000'000}, nullptr);
  EXPECT_EQ(w.size(), 1u);
}

// ---------- engine ----------

Query count_by_user(double window_s) {
  Query q;
  q.from = "req";
  q.group_by = {"user"};
  q.select = {Aggregate{Aggregate::Kind::kCount, "", "n"}};
  q.window = WindowSpec::time(sim::seconds(window_s));
  return q;
}

TEST(Engine, CountsPerGroup) {
  Engine engine;
  const QueryId id = engine.register_query(count_by_user(60.0));
  engine.push(ev(1.0, "req").with_string("user", "alice"));
  engine.push(ev(2.0, "req").with_string("user", "bob"));
  engine.push(ev(3.0, "req").with_string("user", "alice"));
  const auto rows = engine.snapshot(id);
  ASSERT_EQ(rows.size(), 2u);
  const auto alice = engine.group_row(id, {"alice"});
  ASSERT_TRUE(alice.has_value());
  EXPECT_EQ(alice->values.get_int("n"), 2);
}

TEST(Engine, WindowEvictionDecrementsCounts) {
  Engine engine;
  const QueryId id = engine.register_query(count_by_user(10.0));
  engine.push(ev(0.0, "req").with_string("user", "alice"));
  engine.push(ev(5.0, "req").with_string("user", "alice"));
  engine.push(ev(12.0, "req").with_string("user", "alice"));
  const auto row = engine.group_row(id, {"alice"});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->values.get_int("n"), 2);  // t=0 expired
}

TEST(Engine, AdvanceToEvictsWithoutEvents) {
  Engine engine;
  const QueryId id = engine.register_query(count_by_user(10.0));
  engine.push(ev(0.0, "req").with_string("user", "alice"));
  engine.advance_to(sim::SimTime{30'000'000});
  EXPECT_TRUE(engine.snapshot(id).empty());  // group removed at count 0
}

TEST(Engine, WhereFilters) {
  Query q = count_by_user(60.0);
  q.where = classad::parse_expr("cmd == \"open\"");
  Engine engine;
  const QueryId id = engine.register_query(std::move(q));
  engine.push(ev(1.0, "req").with_string("user", "a").with_string("cmd", "open"));
  engine.push(ev(2.0, "req").with_string("user", "a").with_string("cmd", "delete"));
  const auto row = engine.group_row(id, {"a"});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->values.get_int("n"), 1);
}

TEST(Engine, FromFiltersStream) {
  Engine engine;
  const QueryId id = engine.register_query(count_by_user(60.0));
  engine.push(ev(1.0, "req").with_string("user", "a"));
  engine.push(ev(2.0, "other").with_string("user", "a"));
  const auto row = engine.group_row(id, {"a"});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->values.get_int("n"), 1);
}

TEST(Engine, SumAvgMinMax) {
  Query q;
  q.from = "m";
  q.group_by = {"k"};
  q.select = {Aggregate{Aggregate::Kind::kSum, "v", "s"},
              Aggregate{Aggregate::Kind::kAvg, "v", "a"},
              Aggregate{Aggregate::Kind::kMin, "v", "lo"},
              Aggregate{Aggregate::Kind::kMax, "v", "hi"}};
  q.window = WindowSpec::time(sim::seconds(100.0));
  Engine engine;
  const QueryId id = engine.register_query(std::move(q));
  for (const double v : {4.0, 1.0, 7.0}) {
    engine.push(ev(v, "m").with_string("k", "g").with_real("v", v));
  }
  const auto row = engine.group_row(id, {"g"});
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(*row->values.get_real("s"), 12.0);
  EXPECT_DOUBLE_EQ(*row->values.get_real("a"), 4.0);
  EXPECT_DOUBLE_EQ(*row->values.get_real("lo"), 1.0);
  EXPECT_DOUBLE_EQ(*row->values.get_real("hi"), 7.0);
}

TEST(Engine, MinMaxSurviveEviction) {
  Query q;
  q.from = "m";
  q.select = {Aggregate{Aggregate::Kind::kMax, "v", "hi"}};
  q.window = WindowSpec::time(sim::seconds(10.0));
  Engine engine;
  const QueryId id = engine.register_query(std::move(q));
  engine.push(ev(0.0, "m").with_real("v", 100.0));
  engine.push(ev(5.0, "m").with_real("v", 1.0));
  engine.push(ev(12.0, "m").with_real("v", 2.0));  // evicts the 100
  const auto rows = engine.snapshot(id);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(*rows[0].values.get_real("hi"), 2.0);
}

TEST(Engine, HavingGatesListener) {
  Query q = count_by_user(60.0);
  q.having = classad::parse_expr("n > 2");
  Engine engine;
  std::vector<std::int64_t> fired;
  engine.register_query(std::move(q), [&](const ResultRow& row) {
    fired.push_back(*row.values.get_int("n"));
  });
  for (int i = 0; i < 4; ++i) {
    engine.push(ev(i, "req").with_string("user", "a"));
  }
  // Listener fires on the 3rd and 4th events (n=3, n=4).
  EXPECT_EQ(fired, (std::vector<std::int64_t>{3, 4}));
}

TEST(Engine, RemoveQuery) {
  Engine engine;
  const QueryId id = engine.register_query(count_by_user(60.0));
  EXPECT_TRUE(engine.remove_query(id));
  EXPECT_FALSE(engine.remove_query(id));
  EXPECT_TRUE(engine.snapshot(id).empty());
}

TEST(Engine, LengthWindowQuery) {
  Query q;
  q.from = "m";
  q.select = {Aggregate{Aggregate::Kind::kCount, "", "n"}};
  q.window = WindowSpec::length(3);
  Engine engine;
  const QueryId id = engine.register_query(std::move(q));
  for (int i = 0; i < 10; ++i) {
    engine.push(ev(i, "m"));
  }
  const auto rows = engine.snapshot(id);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values.get_int("n"), 3);
}

TEST(Engine, MultipleQueriesIndependent) {
  Engine engine;
  const QueryId q1 = engine.register_query(count_by_user(60.0));
  Query by_cmd;
  by_cmd.from = "req";
  by_cmd.group_by = {"cmd"};
  by_cmd.select = {Aggregate{Aggregate::Kind::kCount, "", "n"}};
  by_cmd.window = WindowSpec::time(sim::seconds(60.0));
  const QueryId q2 = engine.register_query(std::move(by_cmd));
  engine.push(ev(1.0, "req").with_string("user", "a").with_string("cmd", "open"));
  engine.push(ev(2.0, "req").with_string("user", "b").with_string("cmd", "open"));
  EXPECT_EQ(engine.snapshot(q1).size(), 2u);
  const auto open = engine.group_row(q2, {"open"});
  ASSERT_TRUE(open.has_value());
  EXPECT_EQ(open->values.get_int("n"), 2);
  EXPECT_EQ(engine.events_processed(), 2u);
}

// ---------- EPL parser ----------

TEST(Epl, ParsesFullStatement) {
  const Query q = parse_epl(
      "SELECT count(*) AS n, avg(latency) AS lat FROM audit "
      "WHERE cmd == \"open\" GROUP BY src, dn WINDOW TIME 60s HAVING n > 10");
  EXPECT_EQ(q.from, "audit");
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[0].kind, Aggregate::Kind::kCount);
  EXPECT_EQ(q.select[0].alias, "n");
  EXPECT_EQ(q.select[1].kind, Aggregate::Kind::kAvg);
  EXPECT_EQ(q.select[1].attr, "latency");
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"src", "dn"}));
  EXPECT_EQ(q.window.kind, WindowSpec::Kind::kTime);
  EXPECT_EQ(q.window.duration.micros(), 60'000'000);
  ASSERT_NE(q.where, nullptr);
  ASSERT_NE(q.having, nullptr);
}

TEST(Epl, WindowUnits) {
  EXPECT_EQ(parse_epl("SELECT count(*) FROM s WINDOW TIME 500ms").window.duration.micros(),
            500'000);
  EXPECT_EQ(parse_epl("SELECT count(*) FROM s WINDOW TIME 2m").window.duration.micros(),
            120'000'000);
  EXPECT_EQ(parse_epl("SELECT count(*) FROM s WINDOW TIME 1h").window.duration.micros(),
            3'600'000'000ll);
}

TEST(Epl, LengthWindow) {
  const Query q = parse_epl("SELECT count(*) FROM s WINDOW LENGTH 250");
  EXPECT_EQ(q.window.kind, WindowSpec::Kind::kLength);
  EXPECT_EQ(q.window.count, 250u);
}

TEST(Epl, DefaultAliases) {
  const Query q = parse_epl("SELECT count(*), sum(x) FROM s WINDOW TIME 1s");
  EXPECT_EQ(q.select[0].alias, "count");
  EXPECT_EQ(q.select[1].alias, "sum_x");
}

TEST(Epl, CaseInsensitiveKeywords) {
  const Query q =
      parse_epl("select count(*) as N from S where a > 1 window time 5s having N > 2");
  EXPECT_EQ(q.from, "S");
  EXPECT_NE(q.where, nullptr);
  EXPECT_NE(q.having, nullptr);
}

TEST(Epl, KeywordInsideStringLiteralIgnored) {
  const Query q = parse_epl(
      "SELECT count(*) AS n FROM s WHERE cmd == \"where from\" WINDOW TIME 1s");
  EXPECT_EQ(q.from, "s");
  ASSERT_NE(q.where, nullptr);
}

TEST(Epl, RejectsMalformed) {
  EXPECT_THROW(parse_epl("FROM s WINDOW TIME 1s"), classad::ParseError);
  EXPECT_THROW(parse_epl("SELECT count(*) FROM s"), classad::ParseError);  // no window
  EXPECT_THROW(parse_epl("SELECT count(*) WINDOW TIME 1s"), classad::ParseError);
  EXPECT_THROW(parse_epl("SELECT nonsense(*) FROM s WINDOW TIME 1s"), classad::ParseError);
  EXPECT_THROW(parse_epl("SELECT sum(*) FROM s WINDOW TIME 1s"), classad::ParseError);
  EXPECT_THROW(parse_epl("SELECT count(*) FROM s WINDOW TIME abc"), classad::ParseError);
  EXPECT_THROW(parse_epl("SELECT count(*) FROM s WINDOW LENGTH -3"), classad::ParseError);
  EXPECT_THROW(parse_epl("SELECT count(*) FROM s GROUP x WINDOW TIME 1s"),
               classad::ParseError);
}

// ---------- pattern detector ----------

Pattern born_hot(std::size_t followers, double within_s) {
  Pattern p;
  p.name = "born-hot";
  p.from = "audit";
  p.opening = classad::parse_expr("cmd == \"create\"");
  p.follower = classad::parse_expr("cmd == \"read\"");
  p.correlate_by = {"src"};
  p.follower_count = followers;
  p.within = sim::seconds(within_s);
  return p;
}

Event audit_ev(double t, const std::string& cmd, const std::string& src) {
  return ev(t, "audit").with_string("cmd", cmd).with_string("src", src);
}

TEST(Patterns, FiresOnSequenceWithinWindow) {
  PatternDetector det;
  std::vector<PatternMatch> fired;
  det.add_pattern(born_hot(3, 60.0),
                  [&](const PatternMatch& m) { fired.push_back(m); });
  det.push(audit_ev(0.0, "create", "/f"));
  det.push(audit_ev(10.0, "read", "/f"));
  det.push(audit_ev(20.0, "read", "/f"));
  EXPECT_TRUE(fired.empty());
  det.push(audit_ev(30.0, "read", "/f"));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].pattern, "born-hot");
  EXPECT_EQ(fired[0].key, (std::vector<std::string>{"/f"}));
  EXPECT_DOUBLE_EQ(fired[0].opened.seconds(), 0.0);
  EXPECT_DOUBLE_EQ(fired[0].completed.seconds(), 30.0);
  EXPECT_EQ(det.matches_fired(), 1u);
}

TEST(Patterns, WindowExpiryDropsInstance) {
  PatternDetector det;
  int fired = 0;
  const PatternId id =
      det.add_pattern(born_hot(2, 30.0), [&](const PatternMatch&) { ++fired; });
  det.push(audit_ev(0.0, "create", "/f"));
  EXPECT_EQ(det.open_instances(id), 1u);
  det.push(audit_ev(10.0, "read", "/f"));
  // The window closes; followers after it must not complete the pattern.
  det.push(audit_ev(100.0, "read", "/f"));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(det.open_instances(id), 0u);
}

TEST(Patterns, CorrelationKeysAreIndependent) {
  PatternDetector det;
  std::vector<std::string> fired;
  det.add_pattern(born_hot(2, 60.0),
                  [&](const PatternMatch& m) { fired.push_back(m.key[0]); });
  det.push(audit_ev(0.0, "create", "/a"));
  det.push(audit_ev(1.0, "create", "/b"));
  det.push(audit_ev(2.0, "read", "/a"));
  det.push(audit_ev(3.0, "read", "/b"));
  det.push(audit_ev(4.0, "read", "/b"));
  EXPECT_EQ(fired, (std::vector<std::string>{"/b"}));
  det.push(audit_ev(5.0, "read", "/a"));
  EXPECT_EQ(fired, (std::vector<std::string>{"/b", "/a"}));
}

TEST(Patterns, FollowersWithoutOpenerIgnored) {
  PatternDetector det;
  int fired = 0;
  det.add_pattern(born_hot(1, 60.0), [&](const PatternMatch&) { ++fired; });
  det.push(audit_ev(0.0, "read", "/f"));
  det.push(audit_ev(1.0, "read", "/f"));
  EXPECT_EQ(fired, 0);
}

TEST(Patterns, ReopenAfterMatch) {
  PatternDetector det;
  int fired = 0;
  det.add_pattern(born_hot(1, 60.0), [&](const PatternMatch&) { ++fired; });
  det.push(audit_ev(0.0, "create", "/f"));
  det.push(audit_ev(1.0, "read", "/f"));
  EXPECT_EQ(fired, 1);
  // After completion, reads alone must not fire again until a new opener.
  det.push(audit_ev(2.0, "read", "/f"));
  EXPECT_EQ(fired, 1);
  det.push(audit_ev(3.0, "create", "/f"));
  det.push(audit_ev(4.0, "read", "/f"));
  EXPECT_EQ(fired, 2);
}

TEST(Patterns, OpenerRefreshRestartsWindow) {
  PatternDetector det;
  int fired = 0;
  det.add_pattern(born_hot(2, 30.0), [&](const PatternMatch&) { ++fired; });
  det.push(audit_ev(0.0, "create", "/f"));
  det.push(audit_ev(10.0, "read", "/f"));
  det.push(audit_ev(25.0, "create", "/f"));  // refresh: follower count resets
  det.push(audit_ev(40.0, "read", "/f"));
  EXPECT_EQ(fired, 0);  // only one follower since the refresh
  det.push(audit_ev(50.0, "read", "/f"));
  EXPECT_EQ(fired, 1);
}

TEST(Patterns, StreamFilterApplies) {
  PatternDetector det;
  int fired = 0;
  det.add_pattern(born_hot(1, 60.0), [&](const PatternMatch&) { ++fired; });
  det.push(ev(0.0, "other").with_string("cmd", "create").with_string("src", "/f"));
  det.push(ev(1.0, "other").with_string("cmd", "read").with_string("src", "/f"));
  EXPECT_EQ(fired, 0);
}

TEST(Patterns, RemovePattern) {
  PatternDetector det;
  const PatternId id = det.add_pattern(born_hot(1, 60.0), nullptr);
  EXPECT_EQ(det.pattern_count(), 1u);
  EXPECT_TRUE(det.remove_pattern(id));
  EXPECT_FALSE(det.remove_pattern(id));
  EXPECT_EQ(det.pattern_count(), 0u);
}

TEST(EplPattern, ParsesFullStatement) {
  const Pattern p = parse_epl_pattern(
      "PATTERN born_hot ON audit OPENING cmd == \"create\" "
      "FOLLOWED BY 10 MATCHING cmd == \"read\" CORRELATE BY src WITHIN 120s");
  EXPECT_EQ(p.name, "born_hot");
  EXPECT_EQ(p.from, "audit");
  ASSERT_NE(p.opening, nullptr);
  ASSERT_NE(p.follower, nullptr);
  EXPECT_EQ(p.follower_count, 10u);
  EXPECT_EQ(p.correlate_by, (std::vector<std::string>{"src"}));
  EXPECT_EQ(p.within.micros(), 120'000'000);
}

TEST(EplPattern, OptionalClausesAndUnits) {
  const Pattern p = parse_epl_pattern(
      "PATTERN x OPENING a > 1 FOLLOWED BY 2 MATCHING b > 2 WITHIN 2m");
  EXPECT_TRUE(p.from.empty());
  EXPECT_TRUE(p.correlate_by.empty());
  EXPECT_EQ(p.within.micros(), 120'000'000);
}

TEST(EplPattern, ParsedPatternDetects) {
  PatternDetector det;
  int fired = 0;
  det.add_pattern(parse_epl_pattern("PATTERN b ON audit OPENING cmd == \"create\" "
                                    "FOLLOWED BY 2 MATCHING cmd == \"read\" "
                                    "CORRELATE BY src WITHIN 60s"),
                  [&](const PatternMatch&) { ++fired; });
  det.push(audit_ev(0.0, "create", "/f"));
  det.push(audit_ev(1.0, "read", "/f"));
  det.push(audit_ev(2.0, "read", "/f"));
  EXPECT_EQ(fired, 1);
}

TEST(EplPattern, RejectsMalformed) {
  EXPECT_THROW(parse_epl_pattern("OPENING a FOLLOWED BY 1 MATCHING b WITHIN 1s"),
               classad::ParseError);  // must start with PATTERN
  EXPECT_THROW(parse_epl_pattern("PATTERN p FOLLOWED BY 1 MATCHING b WITHIN 1s"),
               classad::ParseError);  // missing OPENING
  EXPECT_THROW(parse_epl_pattern("PATTERN p OPENING a FOLLOWED BY 1 WITHIN 1s"),
               classad::ParseError);  // missing MATCHING
  EXPECT_THROW(parse_epl_pattern("PATTERN p OPENING a FOLLOWED BY 1 MATCHING b"),
               classad::ParseError);  // missing WITHIN
  EXPECT_THROW(
      parse_epl_pattern("PATTERN p OPENING a FOLLOWED BY 0 MATCHING b WITHIN 1s"),
      classad::ParseError);  // zero count
  EXPECT_THROW(
      parse_epl_pattern("PATTERN p OPENING a FOLLOWED 3 MATCHING b WITHIN 1s"),
      classad::ParseError);  // FOLLOWED without BY
}

TEST(Epl, ParsedQueryRunsEndToEnd) {
  Engine engine;
  const QueryId id = engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY src WINDOW TIME "
      "30s"));
  for (int i = 0; i < 5; ++i) {
    engine.push(ev(i, "audit").with_string("cmd", "read").with_string("src", "/f"));
  }
  engine.push(ev(5.0, "audit").with_string("cmd", "open").with_string("src", "/f"));
  const auto row = engine.group_row(id, {"/f"});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->values.get_int("n"), 5);
}

}  // namespace
}  // namespace erms::cep
