// Linter fixture: uninitialized scalar members in a trace-carried struct.
// Never compiled — exercises the `uninit-member` rule on structs tagged with
// the trace-struct marker; untagged structs must NOT fire.
#include <cstdint>
#include <string>

namespace fixture {

// erms-lint: trace-struct
struct Event {
  std::uint64_t seq;    // BAD: exported indeterminate if never assigned
  double duration_s;    // BAD
  bool important;       // BAD
  std::uint32_t kind{0};        // OK: initialized
  std::string label;            // OK: class type, default-constructs empty
};

// Untagged struct: same shape, not trace-carried, must not fire.
struct Scratch {
  std::uint64_t seq;
  double duration_s;
};

}  // namespace fixture
