// Linter fixture: containers ordered by raw pointer value. Never compiled —
// exercises the `pointer-key` rule.
#include <map>
#include <set>
#include <string>

namespace fixture {

struct Session;

struct Registry {
  std::map<Session*, std::string> names;  // BAD: pointer order = allocation order
  std::set<const Session*> active;        // BAD: iteration order differs per run
};

}  // namespace fixture
