// Linter fixture: hash-order drains feeding observable decisions. Never
// compiled — exercises the `unordered-drain` rule: plain range-for, bulk
// copy without a sort, member access resolved through a struct type, and
// the sorted / allowlisted forms that must NOT fire.
#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Node {
  std::unordered_set<std::uint64_t> blocks;
  std::vector<std::uint64_t> ordered_blocks;
};

inline std::uint64_t drain_everything() {
  std::unordered_map<std::string, std::uint64_t> pending;
  std::uint64_t sum = 0;
  for (const auto& [path, bytes] : pending) {  // BAD: hash-order drain
    sum += bytes;
  }

  Node node;
  for (const std::uint64_t b : node.blocks) {  // BAD: member resolved unordered
    sum += b;
  }

  std::unordered_set<std::uint64_t> victims;
  std::vector<std::uint64_t> copied(victims.begin(), victims.end());  // BAD: no sort
  sum += copied.size();

  // OK: bulk copy immediately ordered by an explicit sort.
  std::vector<std::uint64_t> drained(victims.begin(), victims.end());
  std::sort(drained.begin(), drained.end());

  // erms-lint: ordered-drain — accumulation is commutative (pure sum), order
  // cannot reach the trace.
  for (const std::uint64_t v : victims) {
    sum += v;
  }

  // OK: FileRecord-style ordered member sharing a name with an unordered one.
  for (const std::uint64_t b : node.ordered_blocks) {
    sum += b;
  }
  return sum;
}

}  // namespace fixture
