// Linter fixture: raw std::mutex family outside util/mutex.h. Never
// compiled — exercises the `raw-mutex` rule; these types carry no
// thread-safety capability so the ERMS_STATIC_ANALYSIS build cannot check
// their lock discipline.
#include <condition_variable>
#include <mutex>

namespace fixture {

class Queue {
 public:
  void close() {
    std::lock_guard<std::mutex> lock(mu_);  // BAD: use util::LockGuard
    closed_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;               // BAD: use util::Mutex
  std::condition_variable cv_;  // BAD: use util::CondVar
  bool closed_{false};
};

}  // namespace fixture
