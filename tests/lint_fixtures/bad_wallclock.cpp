// Linter fixture: wall-clock reads in sim code. Never compiled — exists so
// tests/test_lint_determinism.py can assert the `wall-clock` rule fires on
// each of the banned host-clock constructs.
#include <chrono>
#include <ctime>

namespace fixture {

double sample_latency_seconds() {
  auto begin = std::chrono::steady_clock::now();  // BAD: host monotonic clock
  auto wall = std::chrono::system_clock::now();   // BAD: host wall clock
  (void)wall;
  auto end = std::chrono::high_resolution_clock::now();  // BAD
  return std::chrono::duration<double>(end - begin).count();
}

long stamp_event() {
  return static_cast<long>(time(nullptr));  // BAD: C wall clock
}

}  // namespace fixture
