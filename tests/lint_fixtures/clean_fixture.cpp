// Linter fixture: deterministic code that must produce ZERO findings — the
// negative control for tests/test_lint_determinism.py. Uses the sanctioned
// counterpart of every banned construct.
#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// erms-lint: trace-struct
struct CleanEvent {
  std::uint64_t seq{0};
  double at_s{0.0};
  std::string path;
};

inline std::uint64_t deterministic_work(std::uint64_t seed) {
  // Explicitly seeded engine: the run is reproducible from `seed`.
  std::mt19937_64 engine{seed};

  // Ordered container: iteration order is the key order, same on every run.
  std::map<std::uint64_t, std::uint64_t> by_id;
  by_id[engine() % 16] = 1;
  std::uint64_t sum = 0;
  for (const auto& [id, count] : by_id) {
    sum += id * count;
  }

  // Unordered map used for lookup only — never drained.
  std::unordered_map<std::string, std::uint64_t> index;
  index.emplace("a", 1);
  sum += index.count("a");

  // Drain through an explicit sort: hash order never escapes.
  std::vector<std::uint64_t> keys;
  keys.reserve(by_id.size());
  for (const auto& [id, count] : by_id) {
    keys.push_back(id + count);
  }
  std::sort(keys.begin(), keys.end());
  return sum + keys.size();
}

}  // namespace fixture
