// Linter fixture: ambient / unseeded randomness. Never compiled — exercises
// the `ambient-rng` rule on every banned construct plus the sanctioned
// explicitly-seeded form that must NOT fire.
#include <cstdlib>
#include <random>

namespace fixture {

inline int roll_dice() {
  std::random_device rd;                 // BAD: nondeterministic hardware seed
  std::default_random_engine engine;    // BAD: implementation-defined default
  std::mt19937 twister;                 // BAD: default-constructed, fixed seed
  (void)engine;
  (void)twister;
  srand(static_cast<unsigned>(rd()));   // BAD: global C RNG state
  return std::rand() % 6;               // BAD: ambient global generator
}

// OK: engine seeded explicitly from a caller-provided experiment seed.
inline int roll_dice_seeded(std::uint64_t seed) {
  std::mt19937_64 engine{seed};
  return static_cast<int>(engine() % 6);
}

}  // namespace fixture
