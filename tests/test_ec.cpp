#include <gtest/gtest.h>

#include <random>

#include "ec/gf256.h"
#include "ec/matrix.h"
#include "ec/reed_solomon.h"
#include "ec/stripe_codec.h"

namespace erms::ec {
namespace {

// ---------- GF(2^8) ----------

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(GF256::sub(0x53, 0xCA), 0x53 ^ 0xCA);
}

TEST(GF256, MulIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto e = static_cast<GF256::Elem>(a);
    EXPECT_EQ(GF256::mul(e, 1), e);
    EXPECT_EQ(GF256::mul(1, e), e);
    EXPECT_EQ(GF256::mul(e, 0), 0);
    EXPECT_EQ(GF256::mul(0, e), 0);
  }
}

TEST(GF256, InverseRoundTrip) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto e = static_cast<GF256::Elem>(a);
    EXPECT_EQ(GF256::mul(e, GF256::inv(e)), 1) << "a=" << a;
    EXPECT_EQ(GF256::div(e, e), 1);
  }
}

TEST(GF256, DivIsMulByInverse) {
  std::mt19937 rng{1};
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<GF256::Elem>(rng() % 256);
    const auto b = static_cast<GF256::Elem>(1 + rng() % 255);
    EXPECT_EQ(GF256::div(a, b), GF256::mul(a, GF256::inv(b)));
  }
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (unsigned a = 1; a < 256; a += 7) {
    GF256::Elem acc = 1;
    for (unsigned n = 0; n < 10; ++n) {
      EXPECT_EQ(GF256::pow(static_cast<GF256::Elem>(a), n), acc);
      acc = GF256::mul(acc, static_cast<GF256::Elem>(a));
    }
  }
}

TEST(GF256, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group: powers 0..254 are distinct.
  std::array<bool, 256> seen{};
  for (unsigned n = 0; n < 255; ++n) {
    const GF256::Elem v = GF256::exp(n);
    EXPECT_FALSE(seen[v]) << "repeat at n=" << n;
    seen[v] = true;
  }
  EXPECT_FALSE(seen[0]);  // zero is never hit
}

TEST(GF256, LogExpRoundTrip) {
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(GF256::exp(GF256::log(static_cast<GF256::Elem>(a))), a);
  }
}

/// Field-axiom property tests over sampled triples.
class GfAxiomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(GfAxiomTest, AssociativeCommutativeDistributive) {
  std::mt19937 rng{GetParam()};
  for (int i = 0; i < 3000; ++i) {
    const auto a = static_cast<GF256::Elem>(rng() % 256);
    const auto b = static_cast<GF256::Elem>(rng() % 256);
    const auto c = static_cast<GF256::Elem>(rng() % 256);
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    EXPECT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GfAxiomTest, ::testing::Values(1u, 2u, 3u, 4u));

// ---------- Matrix ----------

TEST(Matrix, IdentityMultiplication) {
  Matrix m(3, 3);
  std::mt19937 rng{2};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      m.set(r, c, static_cast<GF256::Elem>(rng() % 256));
    }
  }
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);
}

TEST(Matrix, InverseProducesIdentity) {
  std::mt19937 rng{3};
  for (int attempt = 0; attempt < 20; ++attempt) {
    Matrix m(4, 4);
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        m.set(r, c, static_cast<GF256::Elem>(rng() % 256));
      }
    }
    const auto inv = m.inverted();
    if (!inv) {
      continue;  // singular draw
    }
    EXPECT_EQ(m.multiply(*inv), Matrix::identity(4));
    EXPECT_EQ(inv->multiply(m), Matrix::identity(4));
  }
}

TEST(Matrix, SingularReturnsNullopt) {
  Matrix m(2, 2);  // all zeros
  EXPECT_FALSE(m.inverted().has_value());
  Matrix dup(2, 2);  // duplicate rows
  dup.set(0, 0, 5);
  dup.set(0, 1, 7);
  dup.set(1, 0, 5);
  dup.set(1, 1, 7);
  EXPECT_FALSE(dup.inverted().has_value());
}

TEST(Matrix, VandermondeSubmatricesInvertible) {
  const Matrix v = Matrix::vandermonde(10, 4);
  // Any 4 distinct rows must be invertible.
  std::mt19937 rng{4};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> rows = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::shuffle(rows.begin(), rows.end(), rng);
    rows.resize(4);
    EXPECT_TRUE(v.select_rows(rows).inverted().has_value());
  }
}

TEST(Matrix, SelectRowsOrder) {
  Matrix m(3, 2);
  for (std::size_t r = 0; r < 3; ++r) {
    m.set(r, 0, static_cast<GF256::Elem>(r + 1));
  }
  const Matrix s = m.select_rows({2, 0});
  EXPECT_EQ(s.at(0, 0), 3);
  EXPECT_EQ(s.at(1, 0), 1);
}

TEST(Matrix, ZeroDimensionThrows) { EXPECT_THROW(Matrix(0, 3), std::invalid_argument); }

// ---------- Reed-Solomon ----------

std::vector<ReedSolomon::Shard> random_shards(std::size_t count, std::size_t len,
                                              unsigned seed) {
  std::mt19937 rng{seed};
  std::vector<ReedSolomon::Shard> shards(count);
  for (auto& s : shards) {
    s.resize(len);
    for (auto& b : s) {
      b = static_cast<std::uint8_t>(rng() % 256);
    }
  }
  return shards;
}

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(4, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
}

TEST(ReedSolomon, SystematicTopIsIdentity) {
  ReedSolomon rs(5, 3);
  const Matrix& e = rs.encoding_matrix();
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(e.at(r, c), r == c ? 1 : 0);
    }
  }
}

TEST(ReedSolomon, VerifyAcceptsEncodeOutput) {
  ReedSolomon rs(6, 4);
  const auto data = random_shards(6, 256, 10);
  const auto parity = rs.encode(data);
  EXPECT_TRUE(rs.verify(data, parity));
}

TEST(ReedSolomon, VerifyRejectsCorruption) {
  ReedSolomon rs(6, 4);
  const auto data = random_shards(6, 256, 11);
  auto parity = rs.encode(data);
  parity[2][17] ^= 0x40;
  EXPECT_FALSE(rs.verify(data, parity));
}

TEST(ReedSolomon, RejectsUnequalShardLengths) {
  ReedSolomon rs(3, 2);
  auto data = random_shards(3, 64, 12);
  data[1].resize(63);
  EXPECT_THROW(rs.encode(data), std::invalid_argument);
}

TEST(ReedSolomon, ReconstructFailsBelowK) {
  ReedSolomon rs(4, 2);
  auto data = random_shards(4, 64, 13);
  auto parity = rs.encode(data);
  std::vector<ReedSolomon::Shard> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  std::vector<bool> present(6, false);
  present[0] = present[1] = present[2] = true;  // only 3 of k=4
  EXPECT_FALSE(rs.reconstruct(shards, present));
}

/// The core erasure property: for RS(k,4) every erasure pattern of ≤ m
/// shards is recoverable. Parameterized over k.
class RsErasureTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsErasureTest, AllErasurePatternsUpToM) {
  const std::size_t k = GetParam();
  const std::size_t m = 4;  // the paper's parity count
  ReedSolomon rs(k, m);
  const auto data = random_shards(k, 128, static_cast<unsigned>(20 + k));
  const auto parity = rs.encode(data);
  std::vector<ReedSolomon::Shard> original = data;
  original.insert(original.end(), parity.begin(), parity.end());
  const std::size_t total = k + m;

  // Enumerate every subset of erased shards with |S| <= m via bitmask.
  for (std::uint32_t mask = 0; mask < (1u << total); ++mask) {
    const int erased = __builtin_popcount(mask);
    if (erased == 0 || erased > static_cast<int>(m)) {
      continue;
    }
    std::vector<ReedSolomon::Shard> shards = original;
    std::vector<bool> present(total, true);
    for (std::size_t i = 0; i < total; ++i) {
      if (mask & (1u << i)) {
        present[i] = false;
        shards[i].clear();
      }
    }
    ASSERT_TRUE(rs.reconstruct(shards, present)) << "mask=" << mask;
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_EQ(shards[i], original[i]) << "mask=" << mask << " shard=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DataShards, RsErasureTest, ::testing::Values(1u, 2u, 3u, 5u, 8u));

/// Same erasure property across parity counts m (the paper fixes m=4; the
/// codec must hold for any configuration).
class RsParityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsParityTest, ToleratesExactlyMLosses) {
  const std::size_t m = GetParam();
  const std::size_t k = 6;
  ReedSolomon rs(k, m);
  const auto data = random_shards(k, 64, static_cast<unsigned>(90 + m));
  const auto parity = rs.encode(data);
  std::vector<ReedSolomon::Shard> original = data;
  original.insert(original.end(), parity.begin(), parity.end());

  // Losing the first m shards is recoverable...
  {
    std::vector<ReedSolomon::Shard> shards = original;
    std::vector<bool> present(k + m, true);
    for (std::size_t i = 0; i < m; ++i) {
      present[i] = false;
      shards[i].clear();
    }
    ASSERT_TRUE(rs.reconstruct(shards, present));
    for (std::size_t i = 0; i < k + m; ++i) {
      EXPECT_EQ(shards[i], original[i]);
    }
  }
  // ...losing m+1 is not.
  {
    std::vector<ReedSolomon::Shard> shards = original;
    std::vector<bool> present(k + m, true);
    for (std::size_t i = 0; i <= m && i < k + m; ++i) {
      present[i] = false;
      shards[i].clear();
    }
    EXPECT_FALSE(rs.reconstruct(shards, present));
  }
}

INSTANTIATE_TEST_SUITE_P(ParityCounts, RsParityTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(ReedSolomon, PaperConfiguration) {
  // §IV.B: "a replication factor of one and four coding parities" — RS(k,4)
  // tolerates any 4 shard losses.
  ReedSolomon rs(10, 4);
  auto data = random_shards(10, 64, 42);
  auto parity = rs.encode(data);
  std::vector<ReedSolomon::Shard> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  std::vector<bool> present(14, true);
  // Lose 4 shards: 2 data, 2 parity.
  present[0] = present[5] = present[10] = present[13] = false;
  shards[0].clear();
  shards[5].clear();
  shards[10].clear();
  shards[13].clear();
  ASSERT_TRUE(rs.reconstruct(shards, present));
  EXPECT_EQ(shards[0], data[0]);
  EXPECT_EQ(shards[5], data[5]);
  EXPECT_TRUE(rs.verify({shards.begin(), shards.begin() + 10},
                        {shards.begin() + 10, shards.end()}));
}

// ---------- StripeCodec ----------

TEST(StripeCodec, RoundTripNoErasures) {
  StripeCodec codec(4, 2);
  std::vector<std::uint8_t> bytes(1000);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 31);
  }
  auto stripe = codec.encode(bytes);
  EXPECT_EQ(stripe.shards.size(), 6u);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(codec.decode(stripe, std::vector<bool>(6, true), out));
  EXPECT_EQ(out, bytes);
}

TEST(StripeCodec, RoundTripWithErasures) {
  StripeCodec codec(5, 4);
  std::vector<std::uint8_t> bytes(12345);
  std::mt19937 rng{7};
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(rng() % 256);
  }
  auto stripe = codec.encode(bytes);
  std::vector<bool> present(9, true);
  present[0] = present[2] = present[6] = present[8] = false;
  stripe.shards[0].clear();
  stripe.shards[2].clear();
  stripe.shards[6].clear();
  stripe.shards[8].clear();
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(codec.decode(stripe, present, out));
  EXPECT_EQ(out, bytes);
}

TEST(StripeCodec, SizeNotMultipleOfK) {
  StripeCodec codec(3, 2);
  std::vector<std::uint8_t> bytes(7, 0xAB);
  auto stripe = codec.encode(bytes);
  EXPECT_EQ(stripe.original_size, 7u);
  EXPECT_EQ(stripe.shards[0].size(), 3u);  // ceil(7/3)
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(codec.decode(stripe, std::vector<bool>(5, true), out));
  EXPECT_EQ(out, bytes);
}

TEST(StripeCodec, EmptyInput) {
  StripeCodec codec(3, 2);
  auto stripe = codec.encode({});
  std::vector<std::uint8_t> out{1, 2, 3};
  ASSERT_TRUE(codec.decode(stripe, std::vector<bool>(5, true), out));
  EXPECT_TRUE(out.empty());
}

TEST(StripeCodec, StorageRatioMatchesPaperClaim) {
  // RS(k=10, m=4) at rep 1 vs triplication: (14/10)/3 ≈ 0.47 — less than
  // half the storage, the Fig. 5 saving.
  EXPECT_NEAR(StripeCodec::storage_ratio(10, 4, 3), 14.0 / 30.0, 1e-12);
  // A 1-block file with 4 parities is *more* expensive than triplication.
  EXPECT_GT(StripeCodec::storage_ratio(1, 4, 3), 1.0);
}

}  // namespace
}  // namespace erms::ec
