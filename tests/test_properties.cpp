// Property-style test sweeps across modules: randomized inputs, invariant
// checks, parameterized over seeds and configuration axes.
#include <gtest/gtest.h>

#include <set>

#include "cep/window.h"
#include "condor/scheduler.h"
#include "core/erms_placement.h"
#include "core/standby.h"
#include "hdfs/cluster.h"
#include "net/network.h"

namespace erms {
namespace {

using hdfs::BlockId;
using hdfs::Cluster;
using hdfs::ClusterConfig;
using hdfs::FileId;
using hdfs::FileInfo;
using hdfs::NodeId;
using hdfs::Topology;
using util::MiB;

// ---------- placement invariants ----------

/// Axes: (seed, replication target, use ERMS policy with commissioned pool).
using PlacementParam = std::tuple<std::uint64_t, std::uint32_t, bool>;

class PlacementInvariants : public ::testing::TestWithParam<PlacementParam> {};

TEST_P(PlacementInvariants, DistinctNodesCapacityAndPoolRules) {
  const auto [seed, rep, erms_policy] = GetParam();
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.seed = seed;
  Cluster cluster{sim, Topology::uniform(3, 6), cfg};

  std::vector<NodeId> pool;
  std::shared_ptr<core::ErmsPlacementPolicy> policy;
  std::unique_ptr<core::StandbyManager> standby;
  if (erms_policy) {
    for (std::uint32_t n = 10; n < 18; ++n) {
      pool.push_back(NodeId{n});
    }
    policy = std::make_shared<core::ErmsPlacementPolicy>(
        std::set<NodeId>(pool.begin(), pool.end()), 3);
    cluster.set_placement_policy(policy);
    standby = std::make_unique<core::StandbyManager>(cluster, pool);
    standby->ensure_commissioned(pool.size());
    sim.run();
  }

  std::vector<FileId> files;
  for (int i = 0; i < 8; ++i) {
    files.push_back(*cluster.populate_file("/p" + std::to_string(i),
                                           (64 + 64 * (i % 4)) * MiB, 3));
  }
  // Elastic cycle on half the files.
  for (std::size_t i = 0; i < files.size(); i += 2) {
    cluster.change_replication(files[i], rep, Cluster::IncreaseMode::kDirect, nullptr);
  }
  sim.run();

  for (std::size_t i = 0; i < files.size(); ++i) {
    const FileInfo* info = cluster.metadata().find(files[i]);
    const std::uint32_t want = (i % 2 == 0) ? rep : 3;
    EXPECT_EQ(info->replication, want);
    for (const BlockId b : info->blocks) {
      const auto locs = cluster.locations(b);
      // Replication satisfied exactly (cluster has enough nodes).
      EXPECT_EQ(locs.size(), want) << "file " << i;
      // No duplicates.
      const std::set<NodeId> distinct(locs.begin(), locs.end());
      EXPECT_EQ(distinct.size(), locs.size());
      // Pool rule: at most rep-3 replicas on the pool, base on actives.
      if (erms_policy) {
        std::size_t on_pool = 0;
        for (const NodeId n : locs) {
          on_pool += policy->in_standby_pool(n) ? 1 : 0;
        }
        EXPECT_LE(on_pool, want > 3 ? want - 3 : 0u);
      }
    }
  }
  // Capacity invariant holds everywhere.
  for (const NodeId n : cluster.nodes()) {
    EXPECT_LE(cluster.node(n).used_bytes, cluster.node(n).config.capacity_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementInvariants,
    ::testing::Combine(::testing::Values(1u, 7u, 23u), ::testing::Values(5u, 8u, 10u),
                       ::testing::Bool()));

// ---------- replication churn converges ----------

class ReplicationChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplicationChurn, RandomSequenceEndsConsistent) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.seed = GetParam();
  Cluster cluster{sim, Topology::uniform(3, 6), cfg};
  sim::Rng rng{GetParam() * 31 + 1};

  const FileId file = *cluster.populate_file("/churn", 256 * MiB, 3);
  for (int step = 0; step < 12; ++step) {
    const auto target = static_cast<std::uint32_t>(rng.uniform_int(1, 9));
    const auto mode = rng.chance(0.8) ? Cluster::IncreaseMode::kDirect
                                      : Cluster::IncreaseMode::kOneByOne;
    cluster.change_replication(file, target, mode, nullptr);
    sim.run();
    const FileInfo* info = cluster.metadata().find(file);
    ASSERT_EQ(info->replication, target);
    for (const BlockId b : info->blocks) {
      const auto locs = cluster.locations(b);
      EXPECT_EQ(locs.size(), target) << "step " << step;
      EXPECT_EQ(std::set<NodeId>(locs.begin(), locs.end()).size(), locs.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationChurn, ::testing::Values(3u, 11u, 42u, 99u));

// ---------- erasure recoverability matches the shard-count rule ----------

class ErasureFailures : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ErasureFailures, AvailabilityIffEnoughShards) {
  sim::Simulation sim;
  ClusterConfig cfg;
  cfg.seed = GetParam();
  Cluster cluster{sim, Topology::uniform(3, 6), cfg};
  const FileId file = *cluster.populate_file("/ec", 512 * MiB, 3);  // k = 8
  cluster.encode_file(file, 4, nullptr);
  sim.run();

  sim::Rng rng{GetParam() + 5};
  // Fail a random subset of nodes and check file_available against the
  // ground truth computed from surviving shard counts.
  std::vector<NodeId> nodes = cluster.nodes();
  rng.shuffle(nodes);
  const auto kill = static_cast<std::size_t>(rng.uniform_int(1, 8));
  for (std::size_t i = 0; i < kill; ++i) {
    // Note: no sim.run() — recovery must not kick in before we check.
    cluster.fail_node(nodes[i]);
  }
  const FileInfo* info = cluster.metadata().find(file);
  std::size_t live = 0;
  auto alive = [&](BlockId b) {
    for (const NodeId n : cluster.locations(b)) {
      if (cluster.is_serving(n)) {
        return true;
      }
    }
    return false;
  };
  for (const BlockId b : info->blocks) {
    live += alive(b) ? 1 : 0;
  }
  for (const BlockId b : info->parity_blocks) {
    live += alive(b) ? 1 : 0;
  }
  EXPECT_EQ(cluster.file_available(file), live >= info->blocks.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErasureFailures,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------- network: random fabrics conserve capacity ----------

class NetworkFairness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFairness, SharesNeverExceedLinkCapacity) {
  sim::Rng rng{GetParam()};
  net::FabricSpec spec;
  spec.rack_count = static_cast<std::size_t>(rng.uniform_int(1, 4));
  spec.rack_uplink_bw = rng.uniform_real(50e6, 400e6);
  const auto nodes = static_cast<std::size_t>(rng.uniform_int(4, 16));
  for (std::size_t i = 0; i < nodes; ++i) {
    net::FabricSpec::Node n;
    n.rack = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(spec.rack_count) - 1));
    n.nic_bw = rng.uniform_real(50e6, 200e6);
    n.disk_bw = rng.uniform_real(30e6, 120e6);
    spec.nodes.push_back(n);
  }
  sim::Simulation sim;
  net::NetworkModel netm{sim, spec};

  int done = 0;
  const int flows = 40;
  std::vector<net::FlowId> ids;
  std::vector<std::pair<std::size_t, std::size_t>> endpoints;
  for (int i = 0; i < flows; ++i) {
    const auto src = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    const auto dst = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    endpoints.emplace_back(src, dst);
    ids.push_back(netm.start_flow(src, dst,
                                  static_cast<std::uint64_t>(rng.uniform_int(1, 64)) * MiB,
                                  {}, [&](net::FlowId) { ++done; }));
  }
  // Mid-flight: per-source-disk shares must not exceed the disk capacity.
  std::vector<double> disk_sum(nodes, 0.0);
  for (int i = 0; i < flows; ++i) {
    disk_sum[endpoints[i].first] += netm.flow_rate(ids[i]);
  }
  for (std::size_t n = 0; n < nodes; ++n) {
    EXPECT_LE(disk_sum[n], spec.nodes[n].disk_bw * (1.0 + 1e-6)) << "node " << n;
  }
  sim.run();
  EXPECT_EQ(done, flows);
  EXPECT_EQ(netm.active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFairness,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u, 60u));

// ---------- scheduler: random job mixes all reach terminal states ----------

class SchedulerChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerChaos, EveryJobTerminatesAndReplayAgrees) {
  sim::Simulation sim;
  condor::Scheduler::Config cfg;
  cfg.max_running = 3;
  condor::Scheduler sched{sim, cfg};
  sim::Rng rng{GetParam()};
  bool idle = false;
  sched.set_idle_probe([&] { return idle; });
  sim.schedule_after(sim::seconds(30.0), [&] { idle = true; });

  sched.register_command(
      "work",
      [&sim, &rng](const classad::ClassAd& ad, std::function<void(bool)> done) {
        const double dur = rng.uniform_real(0.1, 5.0);
        const bool ok = ad.get_int("N").value_or(0) % 5 != 0;
        sim.schedule_after(sim::seconds(dur), [done, ok] { done(ok); });
      },
      [&sim](const classad::ClassAd&, std::function<void()> fin) {
        sim.schedule_after(sim::seconds(0.5), std::move(fin));
      });

  std::vector<condor::JobId> jobs;
  for (int i = 0; i < 40; ++i) {
    classad::ClassAd ad;
    ad.insert_string("Cmd", "work");
    ad.insert_int("N", i);
    const auto cls = rng.chance(0.3) ? condor::JobClass::kWhenIdle
                                     : condor::JobClass::kImmediate;
    jobs.push_back(sched.submit(std::move(ad), cls,
                                static_cast<int>(rng.uniform_int(0, 5))));
  }
  sim.run_until(sim::SimTime{sim::minutes(30.0).micros()});

  const auto replayed = condor::replay_log(sched.log());
  for (const condor::JobId id : jobs) {
    const condor::Job* job = sched.find(id);
    ASSERT_NE(job, nullptr);
    EXPECT_TRUE(job->status == condor::JobStatus::kCompleted ||
                job->status == condor::JobStatus::kRolledBack)
        << condor::to_string(job->status);
    EXPECT_EQ(replayed.at(id), job->status);
  }
  EXPECT_EQ(sched.running_count(), 0u);
  EXPECT_EQ(sched.queued_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerChaos, ::testing::Values(5u, 15u, 25u, 35u));

// ---------- sliding windows never hold out-of-window events ----------

class WindowInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowInvariant, ContentsAlwaysInWindow) {
  sim::Rng rng{GetParam()};
  const bool time_window = rng.chance(0.5);
  const double duration_s = rng.uniform_real(1.0, 30.0);
  const auto count = static_cast<std::size_t>(rng.uniform_int(1, 50));
  cep::SlidingWindow window{time_window ? cep::WindowSpec::time(sim::seconds(duration_s))
                                        : cep::WindowSpec::length(count)};
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.uniform_real(0.0, 2.0);
    cep::Event e{sim::SimTime{static_cast<std::int64_t>(t * 1e6)}, "s"};
    window.push(std::move(e), nullptr);
    if (time_window) {
      const sim::SimTime cutoff =
          sim::SimTime{static_cast<std::int64_t>(t * 1e6)} - sim::seconds(duration_s);
      for (const cep::Event& held : window.events()) {
        EXPECT_GT(held.time, cutoff);
      }
    } else {
      EXPECT_LE(window.size(), count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowInvariant,
                         ::testing::Values(2u, 12u, 22u, 32u, 42u, 52u));

}  // namespace
}  // namespace erms
