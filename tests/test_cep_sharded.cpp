// Differential tests for the rebuilt audit ingest pipeline: the compiled
// fast path, the slotted event representation and the ShardedEngine must all
// produce byte-identical snapshots to the scalar ClassAd path. Workloads are
// randomized (fixed seeds) over every aggregate kind, time and length
// windows, group churn and eviction. Numeric attribute values are integers
// so sums are exact in double arithmetic — cross-shard merge order must not
// be able to change a correct result.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "cep/engine.h"
#include "cep/epl_parser.h"
#include "cep/sharded_engine.h"

namespace erms::cep {
namespace {

/// Render snapshot rows to one comparable string (ClassAd::unparse is
/// deterministic: attributes print lower-cased in sorted order).
std::string render(const std::vector<ResultRow>& rows) {
  std::string out;
  for (const ResultRow& row : rows) {
    out += row.values.unparse();
    out += '\n';
  }
  return out;
}

/// A randomized audit-like workload with monotone non-decreasing times.
/// `files` controls group churn: small pools revisit groups, large pools
/// keep creating (and evicting) fresh ones.
std::vector<Event> make_workload(std::uint32_t seed, int n, int files) {
  std::mt19937 rng{seed};
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(n));
  std::int64_t t_us = 0;
  for (int i = 0; i < n; ++i) {
    t_us += static_cast<std::int64_t>(rng() % 2000);  // repeats timestamps too
    const char* cmds[] = {"open", "read", "write", "delete"};
    Event e{sim::SimTime{t_us}, rng() % 10 == 0 ? "other" : "audit"};
    e.with_string("cmd", cmds[rng() % 4]);
    e.with_string("src", "/data/f" + std::to_string(rng() % static_cast<std::uint32_t>(files)));
    e.with_int("blk", static_cast<std::int64_t>(rng() % 64));
    e.with_int("dn", static_cast<std::int64_t>(rng() % 12));
    if (rng() % 5 != 0) {  // sometimes absent: exercises null aggregate inputs
      e.with_int("bytes", static_cast<std::int64_t>(rng() % 100000));
    }
    if (rng() % 7 == 0) {
      e.attrs.insert_bool("allowed", rng() % 2 == 0);
    }
    events.push_back(std::move(e));
  }
  return events;
}

/// Queries covering every aggregate kind, WHERE shapes on and off the fast
/// path, multi-attribute group-bys and a global (no group-by) aggregate.
std::vector<std::string> time_window_queries() {
  return {
      "SELECT count(*) AS n FROM audit WHERE cmd == \"open\" GROUP BY src WINDOW TIME 20s",
      "SELECT count(*) AS n, sum(bytes) AS s, avg(bytes) AS a, min(bytes) AS mn, "
      "max(bytes) AS mx FROM audit WHERE cmd == \"read\" GROUP BY src WINDOW TIME 12s",
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY src, blk WINDOW TIME 8s",
      "SELECT count(*) AS n, max(bytes) AS mx FROM audit GROUP BY dn WINDOW TIME 30s",
      "SELECT count(*) AS n, min(bytes) AS mn FROM audit WHERE allowed GROUP BY src "
      "WINDOW TIME 15s",
      "SELECT sum(bytes) AS s, avg(bytes) AS a FROM audit WHERE cmd != \"delete\" "
      "WINDOW TIME 10s",
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" && dn >= 6 GROUP BY dn "
      "WINDOW TIME 25s",
  };
}

std::vector<QueryId> register_all(EngineBase& engine, const std::vector<std::string>& epl) {
  std::vector<QueryId> ids;
  ids.reserve(epl.size());
  for (const std::string& q : epl) {
    ids.push_back(engine.register_query(parse_epl(q)));
  }
  return ids;
}

/// Push the same events through both engines, comparing every query's
/// snapshot at periodic checkpoints and after a final advance past the
/// longest window.
void run_differential(EngineBase& reference, EngineBase& candidate,
                      const std::vector<Event>& events,
                      const std::vector<std::string>& epl, int checkpoint_every,
                      bool expect_drain = true) {
  const std::vector<QueryId> ref_ids = register_all(reference, epl);
  const std::vector<QueryId> cand_ids = register_all(candidate, epl);
  ASSERT_EQ(ref_ids.size(), cand_ids.size());
  int since_check = 0;
  for (const Event& e : events) {
    reference.push(e);
    candidate.push(e);
    if (++since_check >= checkpoint_every) {
      since_check = 0;
      // Align both engines' notion of "now" before reading (the sharded
      // engine drains and advances its shards on read).
      reference.advance_to(e.time);
      candidate.advance_to(e.time);
      for (std::size_t q = 0; q < ref_ids.size(); ++q) {
        ASSERT_EQ(render(reference.snapshot(ref_ids[q])),
                  render(candidate.snapshot(cand_ids[q])))
            << "query " << q << " diverged at t=" << e.time;
      }
    }
  }
  // Advance far past every window: both must drain to empty the same way.
  const sim::SimTime far{events.back().time + sim::seconds(120.0)};
  reference.advance_to(far);
  candidate.advance_to(far);
  for (std::size_t q = 0; q < ref_ids.size(); ++q) {
    const std::string ref_rows = render(reference.snapshot(ref_ids[q]));
    EXPECT_EQ(ref_rows, render(candidate.snapshot(cand_ids[q]))) << "query " << q;
    if (expect_drain) {  // time windows empty out; length windows keep N
      EXPECT_TRUE(ref_rows.empty()) << "window failed to drain for query " << q;
    }
  }
}

TEST(CepDifferential, CompiledFastPathMatchesClassAdPath) {
  for (const std::uint32_t seed : {1u, 2u, 3u}) {
    for (const int files : {4, 300}) {
      Engine fallback;
      fallback.set_use_fast_path(false);
      Engine fast;
      ASSERT_TRUE(fast.use_fast_path());
      run_differential(fallback, fast, make_workload(seed, 4000, files),
                       time_window_queries(), 257);
    }
  }
}

TEST(CepDifferential, ShardedMatchesScalarAcrossShardCounts) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t batch : {32u, 256u}) {
      Engine scalar;
      ShardedEngineOptions opts;
      opts.shards = shards;
      opts.batch_events = batch;
      ShardedEngine sharded(opts);
      run_differential(scalar, sharded,
                       make_workload(40 + static_cast<std::uint32_t>(shards), 4000, 50),
                       time_window_queries(), 401);
    }
  }
}

TEST(CepDifferential, ShardedFallbackWherePathAlsoMatches) {
  Engine scalar;
  ShardedEngineOptions opts;
  opts.shards = 4;
  ShardedEngine sharded(opts);
  sharded.set_use_fast_path(false);
  run_differential(scalar, sharded, make_workload(77, 3000, 30), time_window_queries(), 499);
}

TEST(CepDifferential, LengthWindowsMatchAtOneShard) {
  // LENGTH windows are shard-local by design; equivalence holds at 1 shard.
  const std::vector<std::string> epl = {
      "SELECT count(*) AS n, sum(bytes) AS s, min(bytes) AS mn, max(bytes) AS mx "
      "FROM audit WHERE cmd == \"read\" GROUP BY src WINDOW LENGTH 64",
      "SELECT count(*) AS n FROM audit GROUP BY dn WINDOW LENGTH 7",
  };
  Engine scalar;
  ShardedEngineOptions opts;
  opts.shards = 1;
  opts.batch_events = 64;
  ShardedEngine sharded(opts);
  run_differential(scalar, sharded, make_workload(11, 3000, 20), epl, 311,
                   /*expect_drain=*/false);
}

TEST(CepDifferential, GroupChurnAndEvictionUnderTinyWindow) {
  // 2s window + ~1ms..2s inter-arrival: groups constantly appear, empty out
  // and get re-created, on both sides of the shard boundary.
  const std::vector<std::string> epl = {
      "SELECT count(*) AS n, max(bytes) AS mx FROM audit GROUP BY src WINDOW TIME 2s",
      "SELECT count(*) AS n, min(bytes) AS mn FROM audit GROUP BY src, dn WINDOW TIME 2s",
  };
  for (const std::uint32_t seed : {5u, 6u}) {
    Engine scalar;
    ShardedEngineOptions opts;
    opts.shards = 4;
    opts.batch_events = 16;
    ShardedEngine sharded(opts);
    run_differential(scalar, sharded, make_workload(seed, 5000, 500), epl, 199);
  }
}

/// Brute-force oracle: recompute one query's windowed aggregates straight
/// from the event list and compare against the engine. Guards against the
/// reference engine and the candidates being identically wrong.
TEST(CepOracle, ScalarEngineMatchesBruteForce) {
  const sim::SimDuration window = sim::seconds(12.0);
  Engine engine;
  const QueryId id = engine.register_query(parse_epl(
      "SELECT count(*) AS n, sum(bytes) AS s, min(bytes) AS mn, max(bytes) AS mx "
      "FROM audit WHERE cmd == \"read\" GROUP BY src WINDOW TIME 12s"));
  const std::vector<Event> events = make_workload(21, 3000, 25);
  std::vector<const Event*> matched;  // in arrival order
  int i = 0;
  for (const Event& e : events) {
    engine.push(e);
    if (e.type == "audit" && e.attrs.get_string("cmd") == "read") {
      matched.push_back(&e);
    }
    if (++i % 500 != 0) {
      continue;
    }
    const sim::SimTime cutoff = e.time - window;
    struct Agg {
      std::int64_t n{0};
      std::int64_t sum{0};
      std::int64_t mn{0};
      std::int64_t mx{0};
      bool any_bytes{false};
    };
    std::map<std::string, Agg> expect;
    for (const Event* m : matched) {
      if (m->time <= cutoff) {
        continue;  // evicted
      }
      Agg& a = expect[*m->attrs.get_string("src")];
      ++a.n;
      if (const auto b = m->attrs.get_int("bytes")) {
        a.sum += *b;
        a.mn = a.any_bytes ? std::min(a.mn, *b) : *b;
        a.mx = a.any_bytes ? std::max(a.mx, *b) : *b;
        a.any_bytes = true;
      }
    }
    const std::vector<ResultRow> rows = engine.snapshot(id);
    ASSERT_EQ(rows.size(), expect.size()) << "at t=" << e.time;
    for (const ResultRow& row : rows) {
      const auto src = row.values.get_string("src");
      ASSERT_TRUE(src.has_value());
      const auto it = expect.find(*src);
      ASSERT_NE(it, expect.end()) << "unexpected group " << *src;
      EXPECT_EQ(row.values.get_int("n").value_or(-1), it->second.n) << *src;
      EXPECT_EQ(row.values.get_real("s").value_or(-1),
                static_cast<double>(it->second.sum))
          << *src;
      if (it->second.any_bytes) {
        EXPECT_EQ(row.values.get_real("mn").value_or(-1),
                  static_cast<double>(it->second.mn))
            << *src;
        EXPECT_EQ(row.values.get_real("mx").value_or(-1),
                  static_cast<double>(it->second.mx))
            << *src;
      } else {
        EXPECT_FALSE(row.values.get_real("mn").has_value()) << *src;
        EXPECT_FALSE(row.values.get_real("mx").has_value()) << *src;
      }
    }
  }
}

TEST(CepSharded, SlottedAuditPathMatchesClassAdEvents) {
  // The feed's real ingest shape: AuditEvent::to_slotted into a reused
  // event, versus the same records as ClassAd events into a scalar engine.
  Engine scalar;
  ShardedEngineOptions opts;
  opts.shards = 4;
  opts.batch_events = 64;
  ShardedEngine sharded(opts);
  const std::vector<std::string> epl = {
      "SELECT count(*) AS n FROM audit WHERE cmd == \"open\" GROUP BY src WINDOW TIME 60s",
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY src, blk WINDOW TIME 60s",
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY dn WINDOW TIME 60s",
  };
  const std::vector<QueryId> sids = register_all(scalar, epl);
  const std::vector<QueryId> hids = register_all(sharded, epl);
  const audit::AuditSlots slots =
      audit::AuditSlots::resolve(sharded.attr_symbols(), sharded.stream_symbols());
  SlottedEvent scratch;
  std::mt19937 rng{99};
  std::int64_t t_us = 0;
  for (int i = 0; i < 5000; ++i) {
    t_us += static_cast<std::int64_t>(rng() % 5000);
    audit::AuditEvent e;
    e.time = sim::SimTime{t_us};
    e.cmd = (rng() % 3 == 0) ? "open" : "read";
    e.src = "/data/part-" + std::to_string(rng() % 40);
    e.block = static_cast<std::int64_t>(rng() % 200);
    e.datanode = static_cast<std::int64_t>(rng() % 16);
    scalar.push(e.to_cep_event());
    e.to_slotted(slots, scratch);
    sharded.push_slotted(scratch);
  }
  const sim::SimTime now{t_us};
  scalar.advance_to(now);
  sharded.advance_to(now);
  for (std::size_t q = 0; q < epl.size(); ++q) {
    EXPECT_EQ(render(scalar.snapshot(sids[q])), render(sharded.snapshot(hids[q])))
        << "query " << q;
  }
  EXPECT_EQ(scalar.events_processed(), sharded.events_processed());
}

TEST(CepSharded, RegisterAndRemoveFanOut) {
  ShardedEngineOptions opts;
  opts.shards = 3;
  ShardedEngine engine(opts);
  const QueryId a = engine.register_query(
      parse_epl("SELECT count(*) AS n FROM audit GROUP BY src WINDOW TIME 10s"));
  const QueryId b = engine.register_query(
      parse_epl("SELECT count(*) AS n FROM audit GROUP BY dn WINDOW TIME 10s"));
  EXPECT_NE(a, b);
  EXPECT_EQ(engine.query_count(), 2u);
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    EXPECT_EQ(engine.shard(s).query_count(), 2u);
  }
  EXPECT_TRUE(engine.remove_query(a));
  EXPECT_FALSE(engine.remove_query(a));
  EXPECT_EQ(engine.query_count(), 1u);

  Event e{sim::SimTime{1000}, "audit"};
  e.with_string("src", "/x").with_int("dn", 3);
  engine.push(e);
  const auto rows = engine.snapshot(b);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values.get_int("n"), 1);
  EXPECT_TRUE(engine.snapshot(a).empty());
}

}  // namespace
}  // namespace erms::cep
