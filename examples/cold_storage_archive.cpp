// Cold-storage archive: demonstrates the erasure-coding half of ERMS, both
// at the cluster level (metadata + simulated transfer cost) and at the byte
// level with the real Reed-Solomon codec — including recovery after losing
// as many shards as the paper's 4-parity configuration tolerates.
#include <cstdio>
#include <iostream>

#include "core/erms.h"
#include "ec/gf_region.h"
#include "ec/stripe_codec.h"
#include "hdfs/cluster.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace erms;

namespace {

void byte_level_demo() {
  std::printf("== Byte-level Reed-Solomon (the codec ERMS applies to cold files) ==\n");
  // A 100 MiB "file" striped over k=8 data shards with the paper's m=4
  // parities, coded through the fast region kernels with a worker pool
  // splitting each shard into concurrent sub-ranges (see src/ec/gf_region.h).
  const std::size_t k = 8;
  const std::size_t m = 4;
  util::ThreadPool pool;
  ec::StripeCodec codec{k, m};
  codec.set_thread_pool(&pool);
  std::printf("  kernel: %.*s, pool: %zu threads\n",
              static_cast<int>(ec::kernel_name(ec::active_kernel()).size()),
              ec::kernel_name(ec::active_kernel()).data(), pool.size());
  std::vector<std::uint8_t> file(100 * 1024 * 1024);
  for (std::size_t i = 0; i < file.size(); ++i) {
    file[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  ec::StripeCodec::Stripe stripe = codec.encode(file);
  std::printf("  encoded %zu MiB into %zu shards of %zu MiB\n", file.size() >> 20,
              stripe.shards.size(), stripe.shards[0].size() >> 20);

  // Lose 4 shards — the worst case the code tolerates.
  std::vector<bool> present(k + m, true);
  present[1] = present[4] = present[9] = present[11] = false;
  stripe.shards[1].clear();
  stripe.shards[4].clear();
  stripe.shards[9].clear();
  stripe.shards[11].clear();
  std::vector<std::uint8_t> recovered;
  const bool ok = codec.decode(stripe, present, recovered);
  std::printf("  lost 4 shards (2 data, 2 parity) -> recovery %s, bytes %s\n",
              ok ? "OK" : "FAILED", recovered == file ? "identical" : "CORRUPT");
  std::printf("  storage vs triplication: %.0f%%\n\n",
              100.0 * ec::StripeCodec::storage_ratio(k, m, 3));
}

}  // namespace

int main() {
  byte_level_demo();

  std::printf("== Cluster-level ageing dataset under ERMS ==\n");
  sim::Simulation sim;
  hdfs::Cluster cluster{sim, hdfs::Topology::uniform(3, 6), hdfs::ClusterConfig{}};
  std::vector<hdfs::NodeId> pool;
  for (std::uint32_t n = 10; n < 18; ++n) {
    pool.push_back(hdfs::NodeId{n});
  }
  core::ErmsConfig cfg;
  cfg.thresholds.cold_age = sim::minutes(10.0);
  cfg.evaluation_period = sim::seconds(30.0);
  core::ErmsManager erms{cluster, pool, cfg};
  erms.start();

  // An archive of daily logs; only today's file is read.
  std::vector<hdfs::FileId> days;
  for (int d = 0; d < 8; ++d) {
    days.push_back(*cluster.populate_file("/logs/day" + std::to_string(d),
                                          512 * util::MiB));
  }
  const std::uint64_t before = cluster.used_bytes_total();
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 5e6)}, [&cluster, &days] {
      cluster.read_file(hdfs::NodeId{1}, days.back(), [](const hdfs::ReadOutcome&) {});
    });
  }
  sim.run_until(sim::SimTime{sim::minutes(40.0).micros()});

  std::size_t coded = 0;
  for (const hdfs::FileId f : days) {
    coded += cluster.metadata().find(f)->erasure_coded ? 1 : 0;
  }
  std::printf("  after 40 min: %zu of %zu day-files erasure coded (RS k=8 blocks, m=4)\n",
              coded, days.size());
  std::printf("  storage: %s -> %s\n", util::format_bytes(before).c_str(),
              util::format_bytes(cluster.used_bytes_total()).c_str());

  // Kill a node that holds coded data: blocks reconstruct from the stripe.
  cluster.fail_node(hdfs::NodeId{4});
  sim.run_until(sim.now() + sim::minutes(10.0));
  std::printf("  node 4 failed: blocks lost=%llu (stripe reconstruction covers coded "
              "files), re-replications=%llu\n",
              static_cast<unsigned long long>(cluster.blocks_lost()),
              static_cast<unsigned long long>(cluster.rereplications_completed()));

  std::size_t available = 0;
  for (const hdfs::FileId f : days) {
    available += cluster.file_available(f) ? 1 : 0;
  }
  std::printf("  files still available: %zu of %zu\n", available, days.size());
  erms.stop();
  return 0;
}
