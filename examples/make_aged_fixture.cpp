// Generates tests/fixtures/aged_cluster.snap: a small cluster that has
// already lived a little — served reads, cooled and erasure-coded its file,
// survived a crash and a re-replication cycle — frozen at a quiescent point.
// Chaos tests restore it to start from "day two" state instead of a
// freshly populated cluster.
//
// The world shape here MUST stay in sync with the restoring test
// (tests/test_chaos.cpp, Chaos.DegradedEcReadDuringOutage): same topology,
// same ClusterConfig, same population order. The snapshot's fingerprint
// rejects a drifted shape, so a mismatch fails loudly, not subtly.
//
// Usage: make_aged_fixture <output-path>
// Regenerate via scripts/make_aged_fixture.py after changing any serialized
// component's format (and bump snapshot::kFormatVersion when the change is
// incompatible).
#include <cstdio>
#include <memory>
#include <string>

#include "hdfs/cluster.h"
#include "snapshot/world.h"

namespace {

int run(const std::string& out_path) {
  using namespace erms;

  sim::Simulation sim;
  hdfs::Topology topo = hdfs::Topology::uniform(3, 6);
  auto cluster = std::make_unique<hdfs::Cluster>(sim, topo, hdfs::ClusterConfig{});

  const auto file = *cluster->populate_file("/cold", 128 * util::MiB, 3);

  // Age 1: a burst of reads from every rack.
  for (int i = 0; i < 30; ++i) {
    sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i) * 2'000'000}, [&, i] {
      cluster->read_file(hdfs::NodeId{static_cast<std::uint32_t>(i % 10)}, file,
                         [](const hdfs::ReadOutcome&) {});
    });
  }

  // Age 2: crash a node that actually holds a replica, so the fixture has a
  // real re-replication in its history, then bring it back.
  hdfs::NodeId crashed{0};
  sim.schedule_at(sim::SimTime{sim::seconds(70.0).micros()}, [&] {
    crashed = cluster->locations(cluster->metadata().find(file)->blocks[0]).front();
    cluster->fail_node(crashed);
  });
  sim.schedule_at(sim::SimTime{sim::minutes(4.0).micros()},
                  [&] { cluster->revive_node(crashed); });

  // Age 3: the file goes cold and is erasure-coded.
  bool encoded = false;
  sim.schedule_at(sim::SimTime{sim::minutes(6.0).micros()},
                  [&] { cluster->encode_file(file, 4, [&](bool ok) { encoded = ok; }); });

  sim.run_until(sim::SimTime{sim::minutes(12.0).micros()});
  if (!encoded) {
    std::fprintf(stderr, "error: encode did not finish\n");
    return 1;
  }

  const snapshot::WorldParts parts{&sim, cluster.get(), nullptr, nullptr, nullptr};
  if (!snapshot::quiescent(parts)) {
    std::fprintf(stderr, "error: world not quiescent at capture time\n");
    return 1;
  }
  if (const snapshot::SnapshotResult err =
          snapshot::save_world(out_path, parts, "aged_cluster v1")) {
    std::fprintf(stderr, "error: cannot save %s: %s\n", out_path.c_str(),
                 err->to_string().c_str());
    return 1;
  }
  std::printf(
      "aged fixture written to %s (t=%.0fs, revived=%llu, rereplications=%llu, "
      "ec=%s)\n",
      out_path.c_str(), sim.now().seconds(),
      static_cast<unsigned long long>(cluster->nodes_revived()),
      static_cast<unsigned long long>(cluster->rereplications_completed()),
      cluster->metadata().find(file)->erasure_coded ? "yes" : "no");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-path>\n", argv[0]);
    return 2;
  }
  return run(argv[1]);
}
