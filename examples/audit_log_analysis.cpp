// Standalone CEP over an HDFS audit log: generate a log file in the real
// FSNamesystem.audit format, parse it back, and run continuous queries — the
// paper's "log parser + CEP engine" pipeline (§III.C) without a cluster.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "audit/audit.h"
#include "cep/engine.h"
#include "cep/epl_parser.h"
#include "cep/pattern.h"
#include "classad/parser.h"
#include "sim/random.h"

using namespace erms;

namespace {

/// Synthesize an audit log: 2000 records over 10 minutes, Zipf-skewed over
/// 20 paths, served by 18 datanodes.
std::string synthesize_log() {
  sim::Rng rng{7};
  const sim::ZipfDistribution zipf{20, 1.2};
  std::ostringstream os;
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.exponential(0.3);
    const std::size_t rank = zipf.sample(rng);
    audit::AuditEvent e;
    e.time = sim::SimTime{static_cast<std::int64_t>(t * 1e6)};
    e.cmd = rng.chance(0.3) ? "open" : "read";
    e.src = "/warehouse/table-" + std::to_string(rank);
    e.ip = "/10.0." + std::to_string(rng.uniform_int(0, 2)) + "." +
           std::to_string(rng.uniform_int(0, 17));
    if (e.cmd == "read") {
      e.block = rng.uniform_int(1, 200);
      e.datanode = rng.uniform_int(0, 17);
    }
    os << e.to_line() << '\n';
  }
  return os.str();
}

}  // namespace

int main() {
  const std::string log_text = synthesize_log();
  std::printf("Parsing %zu bytes of audit log...\n", log_text.size());
  const std::vector<audit::AuditEvent> events = audit::AuditLogParser::parse(log_text);
  std::printf("Parsed %zu audit records. First record:\n  %s\n\n", events.size(),
              events.front().to_line().c_str());

  // Continuous queries, written in the engine's EPL.
  cep::Engine engine;
  const cep::QueryId hot_paths = engine.register_query(cep::parse_epl(
      "SELECT count(*) AS n FROM audit GROUP BY src WINDOW TIME 120s"));
  const cep::QueryId node_load = engine.register_query(cep::parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY dn WINDOW TIME "
      "120s"));

  // An alerting query: fire whenever a path exceeds 50 accesses in-window
  // (what the Data Judge does with τ_M·r).
  std::size_t alerts = 0;
  std::string last_alert;
  engine.register_query(
      cep::parse_epl("SELECT count(*) AS n FROM audit GROUP BY src WINDOW TIME 120s "
                     "HAVING n == 50"),
      [&](const cep::ResultRow& row) {
        ++alerts;
        last_alert = row.values.get_string("src").value_or("?");
      });

  // Event correlation: a file creation followed by a read burst within two
  // minutes flags a born-hot file before any counter-based rule would.
  cep::PatternDetector patterns;
  cep::Pattern born_hot;
  born_hot.name = "born-hot";
  born_hot.from = "audit";
  born_hot.opening = classad::parse_expr("cmd == \"create\"");
  born_hot.follower = classad::parse_expr("cmd == \"read\"");
  born_hot.correlate_by = {"src"};
  born_hot.follower_count = 10;
  born_hot.within = sim::seconds(120.0);
  std::vector<std::string> born_hot_files;
  patterns.add_pattern(born_hot, [&](const cep::PatternMatch& m) {
    born_hot_files.push_back(m.key[0]);
  });

  // Sprinkle create events in so the pattern has openers.
  for (const audit::AuditEvent& e : events) {
    const cep::Event ce = e.to_cep_event();
    engine.push(ce);
    patterns.push(ce);
    if (e.src == "/warehouse/table-1" && e.block && *e.block % 50 == 0) {
      audit::AuditEvent create = e;
      create.cmd = "create";
      create.block.reset();
      create.datanode.reset();
      patterns.push(create.to_cep_event());
    }
  }

  // Top-5 hottest paths in the final window.
  auto rows = engine.snapshot(hot_paths);
  std::sort(rows.begin(), rows.end(), [](const cep::ResultRow& a, const cep::ResultRow& b) {
    return a.values.get_int("n").value_or(0) > b.values.get_int("n").value_or(0);
  });
  std::printf("Top paths in the last 120 s window:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, rows.size()); ++i) {
    std::printf("  %-28s %3lld accesses\n",
                rows[i].values.get_string("src").value_or("?").c_str(),
                static_cast<long long>(rows[i].values.get_int("n").value_or(0)));
  }

  auto nodes = engine.snapshot(node_load);
  std::sort(nodes.begin(), nodes.end(),
            [](const cep::ResultRow& a, const cep::ResultRow& b) {
              return a.values.get_int("n").value_or(0) > b.values.get_int("n").value_or(0);
            });
  std::printf("\nBusiest datanodes in the window:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(3, nodes.size()); ++i) {
    std::printf("  dn%-3s %3lld block reads\n",
                nodes[i].values.get_string("dn").value_or("?").c_str(),
                static_cast<long long>(nodes[i].values.get_int("n").value_or(0)));
  }

  std::printf("\nHot-path alerts fired: %zu (last: %s)\n", alerts,
              last_alert.empty() ? "none" : last_alert.c_str());
  std::printf("Born-hot patterns (create -> 10 reads in 120 s): %zu%s\n",
              born_hot_files.size(),
              born_hot_files.empty() ? "" : (" (" + born_hot_files.front() + ")").c_str());
  std::printf("Engine processed %llu events across %zu queries.\n",
              static_cast<unsigned long long>(engine.events_processed()),
              engine.query_count());
  return 0;
}
