// Trace replay CLI: load a SWIM-format job trace (or synthesize one), then
// replay it against vanilla HDFS and against ERMS, and print the comparison.
//
//   ./trace_replay                      # synthesize a demo trace
//   ./trace_replay trace.tsv            # replay a SWIM-format file
//   ./trace_replay trace.tsv 10 4.0     # time-compression 10x, tau_M = 4
//
// SWIM format (tab-separated, as published with the Facebook traces):
//   job_id  submit_time_s  inter_job_gap_s  map_input_b  shuffle_b  reduce_b
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/erms.h"
#include "hdfs/cluster.h"
#include "mapred/jobrunner.h"
#include "util/table.h"
#include "workload/swim_format.h"

using namespace erms;

namespace {

/// A small synthetic SWIM file for the no-argument demo: bursty accesses to
/// a shared hot input plus a long tail.
std::string demo_swim_text() {
  std::ostringstream os;
  sim::Rng rng{7};
  const sim::ZipfDistribution zipf{12, 1.6};
  double t = 0.0;
  for (int i = 0; i < 600; ++i) {
    t += rng.exponential(3.0);
    const std::size_t rank = zipf.sample(rng);
    const std::uint64_t input = (128ull << (rank % 4)) * util::MiB;
    os << "job" << i << '\t' << t << "\t0\t" << input << "\t0\t0\n";
  }
  return os.str();
}

struct ReplayResult {
  mapred::WorkloadReport report;
  core::ErmsStats erms_stats;
  std::uint64_t storage_end;
};

ReplayResult replay(const workload::Trace& trace, bool with_erms, double tau_M) {
  sim::Simulation sim;
  hdfs::Cluster cluster{sim, hdfs::Topology::uniform(3, 6), hdfs::ClusterConfig{}};
  std::unique_ptr<core::ErmsManager> erms;
  if (with_erms) {
    core::ErmsConfig cfg;
    cfg.thresholds.window = sim::minutes(5.0);
    cfg.thresholds.tau_M = tau_M;
    cfg.thresholds.tau_d = tau_M / 4.0;
    cfg.thresholds.M_M = tau_M * 1.5;
    cfg.thresholds.M_m = tau_M * 0.75;
    cfg.evaluation_period = sim::seconds(30.0);
    erms = std::make_unique<core::ErmsManager>(cluster, std::vector<hdfs::NodeId>{},
                                               cfg);
    erms->start();
  }
  for (const workload::FileSpec& file : trace.files) {
    cluster.populate_file(file.path, file.bytes);
  }
  mapred::MapRedConfig mr;
  mr.compute_seconds_per_gib = 1.0;
  mapred::JobRunner runner{cluster, mr};
  runner.submit_trace(trace);
  const sim::SimTime horizon =
      trace.jobs.empty() ? sim::SimTime{0}
                         : trace.jobs.back().submit_time + sim::hours(1.0);
  sim.run_until(horizon);

  ReplayResult out;
  out.report = runner.report();
  out.storage_end = cluster.used_bytes_total();
  if (erms) {
    out.erms_stats = erms->stats();
    erms->stop();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::printf("(no trace given — synthesizing a demo workload)\n");
    text = demo_swim_text();
  }
  const double compression = argc > 2 ? std::strtod(argv[2], nullptr) : 1.0;
  const double tau_M = argc > 3 ? std::strtod(argv[3], nullptr) : 6.0;

  const auto records = workload::parse_swim_text(text);
  workload::SwimImportOptions opts;
  opts.time_compression = compression;
  const workload::Trace trace = workload::import_swim(records, opts);
  if (trace.jobs.empty()) {
    std::fprintf(stderr, "no replayable jobs in the trace\n");
    return 1;
  }
  std::printf("Trace: %zu jobs over %.1f h, %zu distinct inputs, %s read\n\n",
              trace.jobs.size(), trace.jobs.back().submit_time.hours(),
              trace.files.size(), util::format_bytes(trace.total_input_bytes()).c_str());

  const ReplayResult vanilla = replay(trace, false, tau_M);
  const ReplayResult elastic = replay(trace, true, tau_M);

  util::Table table({"metric", "vanilla HDFS", "ERMS"});
  table.add_row({"jobs completed", util::Table::cell(std::uint64_t{vanilla.report.jobs}),
                 util::Table::cell(std::uint64_t{elastic.report.jobs})});
  table.add_row({"read throughput (MB/s)",
                 util::Table::cell(vanilla.report.mean_read_throughput_mbps),
                 util::Table::cell(elastic.report.mean_read_throughput_mbps)});
  table.add_row({"data locality", util::Table::cell(vanilla.report.mean_locality, 3),
                 util::Table::cell(elastic.report.mean_locality, 3)});
  table.add_row({"mean job duration (s)",
                 util::Table::cell(vanilla.report.mean_job_duration_s),
                 util::Table::cell(elastic.report.mean_job_duration_s)});
  table.add_row({"storage at end", util::format_bytes(vanilla.storage_end),
                 util::format_bytes(elastic.storage_end)});
  table.print(std::cout);
  std::printf("\nERMS actions: %llu promotions, %llu cooldowns, %llu encodes (tau_M=%.0f)\n",
              static_cast<unsigned long long>(elastic.erms_stats.hot_promotions),
              static_cast<unsigned long long>(elastic.erms_stats.cooldowns),
              static_cast<unsigned long long>(elastic.erms_stats.encodes), tau_M);
  return 0;
}
