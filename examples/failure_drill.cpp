// Failure drill: kill datanodes mid-workload and compare data availability
// and storage cost across redundancy schemes — all-rep-1, triplication, and
// ERMS-style mixed redundancy (hot files over-replicated, cold files
// erasure-coded with 4 parities).
#include <cstdio>
#include <iostream>

#include "hdfs/cluster.h"
#include "obs/observability.h"
#include "util/table.h"

using namespace erms;

namespace {

struct DrillResult {
  std::uint64_t blocks_lost{0};
  std::size_t files_unavailable{0};
  std::uint64_t storage_bytes{0};
  std::uint64_t rereplications{0};
};

/// 20 files of 256 MiB; kill 3 random nodes at t=60 s; measure at t=20 min.
/// When `bundle` is non-null the cluster records metrics and ground-truth
/// mutation events (failures, re-replications, encodes) into it.
DrillResult drill(const std::string& scheme, obs::Observability* bundle = nullptr) {
  sim::Simulation sim;
  hdfs::Cluster cluster{sim, hdfs::Topology::uniform(3, 6), hdfs::ClusterConfig{}};
  cluster.set_observability(bundle);

  std::vector<hdfs::FileId> files;
  for (int i = 0; i < 20; ++i) {
    std::uint32_t rep = 3;
    if (scheme == "rep1") {
      rep = 1;
    } else if (scheme == "erms" && i < 4) {
      rep = 5;  // the 4 "hot" files carry extra replicas
    }
    files.push_back(
        *cluster.populate_file("/d/f" + std::to_string(i), 256 * util::MiB, rep));
  }
  if (scheme == "erms") {
    // The 10 coldest files are erasure coded: rep 1 + 4 parities.
    for (int i = 10; i < 20; ++i) {
      cluster.encode_file(files[static_cast<std::size_t>(i)], 4, nullptr);
    }
    sim.run();
  }
  const std::uint64_t storage = cluster.used_bytes_total();

  sim.schedule_at(sim::SimTime{sim::seconds(60.0).micros()}, [&cluster] {
    cluster.fail_node(hdfs::NodeId{2});
    cluster.fail_node(hdfs::NodeId{9});
    cluster.fail_node(hdfs::NodeId{14});
  });
  sim.run_until(sim::SimTime{sim::minutes(20.0).micros()});

  DrillResult out;
  out.blocks_lost = cluster.blocks_lost();
  out.storage_bytes = storage;
  out.rereplications = cluster.rereplications_completed();
  for (const hdfs::FileId f : files) {
    out.files_unavailable += cluster.file_available(f) ? 0 : 1;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Failure drill: 18 nodes, 20 files x 256 MiB, 3 simultaneous node "
              "failures at t=60s\n\n");
  util::Table table(
      {"scheme", "storage", "blocks lost", "files unavailable", "recoveries"});
  obs::Observability bundle;  // observes the "erms" drill
  for (const std::string scheme : {"rep1", "triplication", "erms"}) {
    const DrillResult r = drill(scheme, scheme == "erms" ? &bundle : nullptr);
    table.add_row({scheme, util::format_bytes(r.storage_bytes),
                   util::Table::cell(r.blocks_lost),
                   util::Table::cell(std::uint64_t{r.files_unavailable}),
                   util::Table::cell(r.rereplications)});
  }
  table.print(std::cout);
  std::printf(
      "\nTriplication and ERMS both survive a 3-node burst; ERMS does it with less\n"
      "storage on cold data (RS k-blocks + 4 parities at replication 1) while hot\n"
      "files keep extra replicas for read capacity.\n");

  // What the observability layer saw during the ERMS drill: every node
  // failure and every repair is an attributable trace event.
  std::printf("\n--- erms drill, observed ---\n%s\n", bundle.text_report().c_str());
  std::printf("Recovery trail (first 6 events):\n");
  const auto events = bundle.trace().snapshot();
  for (std::size_t i = 0; i < events.size() && i < 6; ++i) {
    std::printf("  %s\n", events[i].to_json().c_str());
  }
  if (const char* path = obs::Observability::env_trace_path()) {
    if (bundle.export_trace(path)) {
      std::printf("Full trace exported to %s\n", path);
    }
  }
  return 0;
}
