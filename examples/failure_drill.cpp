// Failure drill: run a deterministic, replayable FaultPlan — crash/recover
// cycles, slow links, flow-abort storms — against three redundancy schemes
// (all-rep-1, triplication, ERMS-style mixed redundancy) and reconstruct the
// recovery timeline from the action trace. Every run of this binary tells
// the identical story: the plan is seeded, the simulation is deterministic,
// and the invariant checker's report is byte-stable.
#include <cstdio>
#include <iostream>

#include "fault/fault_plan.h"
#include "fault/invariant_checker.h"
#include "hdfs/cluster.h"
#include "obs/observability.h"
#include "util/table.h"

using namespace erms;

namespace {

struct DrillResult {
  std::uint64_t blocks_lost{0};
  std::size_t files_unavailable{0};
  std::uint64_t storage_bytes{0};
  std::uint64_t rereplications{0};
  std::uint64_t retries{0};
  bool invariants_ok{false};
};

/// The drill's schedule: two crash/recover cycles, a slow-node episode, a
/// rack degradation, and an abort storm — within triplication's tolerance
/// (never two victims down at once).
fault::FaultPlan drill_plan() {
  fault::FaultPlan plan;
  plan.crash(sim::SimTime{sim::seconds(60.0).micros()}, 2)
      .recover(sim::SimTime{sim::minutes(3.0).micros()}, 2)
      .slow_node(sim::SimTime{sim::minutes(2.0).micros()}, 9, 0.25)
      .restore_node(sim::SimTime{sim::minutes(4.0).micros()}, 9)
      .crash(sim::SimTime{sim::minutes(5.0).micros()}, 14)
      .abort_flows(sim::SimTime{sim::minutes(5.5).micros()}, 7)
      .degrade_rack(sim::SimTime{sim::minutes(6.0).micros()}, 1, 0.5)
      .restore_rack(sim::SimTime{sim::minutes(8.0).micros()}, 1)
      .recover(sim::SimTime{sim::minutes(9.0).micros()}, 14);
  plan.sort();
  return plan;
}

/// 20 files of 256 MiB under the drill plan; measure at t=20 min, after the
/// recovery queue has drained and both crashed nodes have re-registered.
DrillResult drill(const std::string& scheme, obs::Observability* bundle = nullptr) {
  sim::Simulation sim;
  hdfs::Cluster cluster{sim, hdfs::Topology::uniform(3, 6), hdfs::ClusterConfig{}};
  cluster.set_observability(bundle);

  std::vector<hdfs::FileId> files;
  for (int i = 0; i < 20; ++i) {
    std::uint32_t rep = 3;
    if (scheme == "rep1") {
      rep = 1;
    } else if (scheme == "erms" && i < 4) {
      rep = 5;  // the 4 "hot" files carry extra replicas
    }
    files.push_back(
        *cluster.populate_file("/d/f" + std::to_string(i), 256 * util::MiB, rep));
  }
  if (scheme == "erms") {
    // The 10 coldest files are erasure coded: rep 1 + 4 parities.
    for (int i = 10; i < 20; ++i) {
      cluster.encode_file(files[static_cast<std::size_t>(i)], 4, nullptr);
    }
    sim.run();
  }
  const std::uint64_t storage = cluster.used_bytes_total();

  fault::FaultInjector injector{cluster, bundle != nullptr ? &bundle->trace() : nullptr};
  injector.arm(drill_plan());
  sim.run_until(sim::SimTime{sim::minutes(20.0).micros()});

  DrillResult out;
  out.blocks_lost = cluster.blocks_lost();
  out.storage_bytes = storage;
  out.rereplications = cluster.rereplications_completed();
  out.retries = cluster.recovery_retries();
  for (const hdfs::FileId f : files) {
    out.files_unavailable += cluster.file_available(f) ? 0 : 1;
  }
  const fault::InvariantChecker checker{cluster, nullptr,
                                        bundle != nullptr ? &bundle->trace() : nullptr};
  // rep1 loses blocks by design (one replica, no parity) — only the
  // redundant schemes are expected to hold the invariants.
  out.invariants_ok = checker.check(/*converged=*/true).ok;
  return out;
}

}  // namespace

int main() {
  std::printf("Failure drill: 18 nodes, 20 files x 256 MiB, seeded fault plan\n");
  std::printf("(crash/recover x2, slow node, rack degradation, abort storm)\n\n");
  std::printf("Plan:\n%s\n", drill_plan().describe().c_str());

  util::Table table({"scheme", "storage", "blocks lost", "files unavailable",
                     "recoveries", "retries", "invariants"});
  obs::Observability bundle;  // observes the "erms" drill
  for (const std::string scheme : {"rep1", "triplication", "erms"}) {
    const DrillResult r = drill(scheme, scheme == "erms" ? &bundle : nullptr);
    table.add_row({scheme, util::format_bytes(r.storage_bytes),
                   util::Table::cell(r.blocks_lost),
                   util::Table::cell(std::uint64_t{r.files_unavailable}),
                   util::Table::cell(r.rereplications), util::Table::cell(r.retries),
                   r.invariants_ok ? "ok" : "VIOLATED"});
  }
  table.print(std::cout);
  std::printf(
      "\nTriplication and ERMS both ride out the drill; ERMS does it with less\n"
      "storage on cold data (RS k-blocks + 4 parities at replication 1) while hot\n"
      "files keep extra replicas for read capacity. rep1 has nothing to recover\n"
      "from, which is the point of not running rep1.\n");

  // Reconstruct the recovery timeline from the trace: every fault, teardown,
  // repair, and re-registration is an attributable event.
  std::printf("\n--- erms drill, recovery timeline (first 40 events) ---\n");
  int printed = 0;
  for (const obs::TraceEvent& ev : bundle.trace().snapshot()) {
    switch (ev.kind) {
      case obs::ActionKind::kFaultInjected:
      case obs::ActionKind::kNodeFailure:
      case obs::ActionKind::kFlowAborted:
      case obs::ActionKind::kRereplication:
      case obs::ActionKind::kNodeRecovered:
        if (printed++ < 40) {
          std::printf("  t=%7.1fs %-14s %s\n", ev.at.seconds(), to_string(ev.kind),
                      ev.to_json().c_str());
        }
        break;
      default:
        break;
    }
  }
  if (printed > 40) {
    std::printf("  ... %d more\n", printed - 40);
  }
  std::printf("\n--- erms drill, observed ---\n%s\n", bundle.text_report().c_str());
  if (const char* path = obs::Observability::env_trace_path()) {
    if (bundle.export_trace(path)) {
      std::printf("Full trace exported to %s\n", path);
    }
  }
  return 0;
}
