// Quickstart: build a small cluster, attach ERMS, replay a bursty workload,
// and watch the elastic replication decisions as they happen.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/erms.h"
#include "hdfs/cluster.h"

using namespace erms;

int main() {
  // 1. A simulated cluster shaped like the paper's testbed: 18 datanodes in
  //    3 racks, GbE network, 64 MiB blocks, triplication by default.
  sim::Simulation sim;
  const hdfs::Topology topo = hdfs::Topology::uniform(/*racks=*/3, /*nodes_per_rack=*/6);
  hdfs::ClusterConfig cluster_cfg;
  hdfs::Cluster cluster{sim, topo, cluster_cfg};

  // 2. Nodes 10..17 form the standby pool (10 active + 8 standby).
  std::vector<hdfs::NodeId> standby_pool;
  for (std::uint32_t n = 10; n < 18; ++n) {
    standby_pool.push_back(hdfs::NodeId{n});
  }

  // 3. ERMS: CEP window of 60 s, τ_M = 8 concurrent accesses per replica,
  //    cold data erasure-coded as RS(k, 4) after 10 quiet minutes.
  core::ErmsConfig erms_cfg;
  erms_cfg.thresholds.tau_M = 8.0;
  erms_cfg.thresholds.cold_age = sim::minutes(10.0);
  erms_cfg.evaluation_period = sim::seconds(20.0);
  // Record every classification flip and elastic action (export the JSONL
  // with ERMS_TRACE_PATH=/tmp/trace.jsonl — see docs/OPERATIONS.md).
  erms_cfg.observe = true;
  core::ErmsManager erms{cluster, standby_pool, erms_cfg};
  erms.start();

  // 4. Two files: one about to become hot, one left to go cold.
  const auto hot = cluster.populate_file("/data/trending", 256 * util::MiB);
  const auto cold = cluster.populate_file("/data/archive", 512 * util::MiB);

  // 5. A burst of reads against /data/trending for 3 minutes.
  for (int i = 0; i < 400; ++i) {
    const auto at = sim::SimTime{static_cast<std::int64_t>(i * 0.45e6)};
    sim.schedule_at(at, [&cluster, &hot, i] {
      cluster.read_file(hdfs::NodeId{static_cast<std::uint32_t>(i % 10)}, *hot,
                        [](const hdfs::ReadOutcome&) {});
    });
  }

  // 6. Print the manager's view once a minute.
  for (int minute = 1; minute <= 25; ++minute) {
    sim.schedule_at(sim::SimTime{sim::minutes(minute).micros()}, [&, minute] {
      const hdfs::FileInfo* h = cluster.metadata().find(*hot);
      const hdfs::FileInfo* c = cluster.metadata().find(*cold);
      auto type_of = [&](const std::string& path) {
        return judge::to_string(erms.current_type(path));
      };
      std::printf(
          "t=%2d min  trending: rep=%u type=%-6s   archive: rep=%u coded=%d type=%-6s  "
          "standby up=%zu\n",
          minute, h->replication, type_of("/data/trending"), c->replication,
          c->erasure_coded ? 1 : 0, type_of("/data/archive"),
          erms.standby().commissioned_count());
    });
  }

  sim.run_until(sim::SimTime{sim::minutes(26.0).micros()});

  const core::ErmsStats& stats = erms.stats();
  std::printf(
      "\nERMS actions: %llu hot promotions, %llu cooldowns, %llu encodes, %llu decodes\n",
      static_cast<unsigned long long>(stats.hot_promotions),
      static_cast<unsigned long long>(stats.cooldowns),
      static_cast<unsigned long long>(stats.encodes),
      static_cast<unsigned long long>(stats.decodes));
  std::printf("Cluster storage used: %s, energy: %.1f kWh-equivalent\n",
              util::format_bytes(cluster.used_bytes_total()).c_str(),
              cluster.energy_joules_total() / 3.6e6);

  // 7. The action trace explains every decision above: who flipped to hot,
  //    which rule fired, what each Condor job moved and where.
  std::printf("\nFirst action-trace events (JSONL):\n");
  const auto events = erms.observability()->trace().snapshot();
  for (std::size_t i = 0; i < events.size() && i < 8; ++i) {
    std::printf("  %s\n", events[i].to_json().c_str());
  }
  std::printf("  ... %zu events total", events.size());
  if (const char* path = obs::Observability::env_trace_path()) {
    std::printf(" (exported to %s on stop)", path);
  }
  std::printf("\n");
  erms.stop();
  return 0;
}
