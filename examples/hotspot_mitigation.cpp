// Hotspot mitigation: replay a SWIM-like day of MapReduce jobs and compare
// vanilla HDFS triplication against ERMS elastic replication. This is the
// scenario that motivates the paper's introduction: skewed popularity makes
// three replicas of a hot file a bottleneck.
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/erms.h"
#include "hdfs/cluster.h"
#include "mapred/jobrunner.h"
#include "util/table.h"
#include "workload/swim.h"

using namespace erms;

namespace {

struct RunResult {
  mapred::WorkloadReport report;
  std::uint64_t rejected_reads{0};
  core::ErmsStats erms_stats;
};

RunResult run(bool with_erms, const workload::Trace& trace) {
  sim::Simulation sim;
  const hdfs::Topology topo = hdfs::Topology::uniform(3, 6);
  hdfs::Cluster cluster{sim, topo, hdfs::ClusterConfig{}};
  // All 18 nodes active: this example isolates elastic replication (see
  // quickstart/fig8/fig9 for the active/standby model).
  std::vector<hdfs::NodeId> pool;

  std::unique_ptr<core::ErmsManager> erms;
  if (with_erms) {
    core::ErmsConfig cfg;
    // Job-level workloads need a window spanning several job lifetimes.
    cfg.thresholds.window = sim::minutes(5.0);
    cfg.thresholds.tau_M = 6.0;
    cfg.thresholds.tau_d = 1.5;
    cfg.thresholds.M_M = 9.0;
    cfg.thresholds.M_m = 4.5;
    cfg.thresholds.tau_DN = 250.0;  // ~70% of a node's read capacity per 5-min window
    cfg.evaluation_period = sim::seconds(30.0);
    erms = std::make_unique<core::ErmsManager>(cluster, pool, cfg);
    erms->start();
  }

  for (const workload::FileSpec& file : trace.files) {
    cluster.populate_file(file.path, file.bytes);
  }

  mapred::MapRedConfig mr;
  mr.scheduler = mapred::SchedulerKind::kFifo;
  mr.compute_seconds_per_gib = 1.0;
  mapred::JobRunner runner{cluster, mr};
  runner.submit_trace(trace);
  sim.run_until(sim::SimTime{sim::hours(3.0).micros()});

  RunResult out;
  out.report = runner.report();
  out.rejected_reads = cluster.reads_rejected();
  if (erms) {
    out.erms_stats = erms->stats();
    erms->stop();
  }
  return out;
}

}  // namespace

int main() {
  workload::SwimConfig swim;
  swim.file_count = 24;
  swim.duration = sim::hours(1.0);
  swim.epoch = sim::minutes(30.0);
  swim.mean_interarrival_s = 1.5;
  swim.zipf_exponent = 1.8;
  swim.size_mu = 19.8;  // median ~400 MiB
  swim.min_file_bytes = 128 * util::MiB;
  swim.max_file_bytes = 2 * util::GiB;
  const workload::Trace trace = workload::SwimTraceGenerator{swim}.generate(2012);
  std::printf("Trace: %zu files, %zu jobs, %s of input read\n\n", trace.files.size(),
              trace.jobs.size(), util::format_bytes(trace.total_input_bytes()).c_str());

  const RunResult vanilla = run(false, trace);
  const RunResult elastic = run(true, trace);

  util::Table table({"metric", "vanilla HDFS", "ERMS"});
  table.add_row({"jobs completed", util::Table::cell(std::uint64_t{vanilla.report.jobs}),
                 util::Table::cell(std::uint64_t{elastic.report.jobs})});
  table.add_row({"mean read throughput (MB/s)",
                 util::Table::cell(vanilla.report.mean_read_throughput_mbps),
                 util::Table::cell(elastic.report.mean_read_throughput_mbps)});
  table.add_row({"data locality of jobs", util::Table::cell(vanilla.report.mean_locality),
                 util::Table::cell(elastic.report.mean_locality)});
  table.add_row({"mean job duration (s)",
                 util::Table::cell(vanilla.report.mean_job_duration_s),
                 util::Table::cell(elastic.report.mean_job_duration_s)});
  table.add_row({"session-rejected reads", util::Table::cell(vanilla.rejected_reads),
                 util::Table::cell(elastic.rejected_reads)});
  table.print(std::cout);

  std::printf("\nERMS issued %llu hot promotions (%llu from node-overload rule 4), "
              "%llu cooldowns\n",
              static_cast<unsigned long long>(elastic.erms_stats.hot_promotions),
              static_cast<unsigned long long>(elastic.erms_stats.overload_promotions),
              static_cast<unsigned long long>(elastic.erms_stats.cooldowns));
  return 0;
}
