#include "util/log.h"

namespace erms::util {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::log(LogLevel level, const std::string& component, const std::string& message) {
  if (!enabled(level)) {
    return;
  }
  (*sink_) << '[' << level_name(level) << "] " << component << ": " << message << '\n';
}

Logger& Logger::null_logger() {
  static Logger logger{nullptr, LogLevel::kOff};
  return logger;
}

}  // namespace erms::util
