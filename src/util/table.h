#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace erms::util {

/// Column-aligned plain-text table, used by the benchmark harnesses to print
/// the rows the paper's figures report. Also exports CSV for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; each cell is pre-formatted. Rows shorter than the header
  /// are padded with empty cells, longer rows are an error.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string cell(double v, int precision = 2);
  static std::string cell(std::uint64_t v);
  static std::string cell(std::int64_t v);
  static std::string cell(int v);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Write the table with aligned columns.
  void print(std::ostream& os) const;

  /// Write RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace erms::util
