#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace erms::util {

/// Small vector with `N` inline slots for trivially copyable element types.
/// Designed for the block→replica-locations table: almost every block has
/// `replication` (3) locations, so the common case needs no heap allocation
/// and the per-entry footprint stays constant. Spills to the heap past `N`.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec only supports trivially copyable element types");

 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { assign(other.data(), other.size_); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.data(), other.size_);
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept { steal(std::move(other)); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      steal(std::move(other));
    }
    return *this;
  }

  ~SmallVec() { release(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] T* data() {
    return capacity_ == N ? reinterpret_cast<T*>(inline_raw_) : heap_;
  }
  [[nodiscard]] const T* data() const {
    return capacity_ == N ? reinterpret_cast<const T*>(inline_raw_) : heap_;
  }

  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

  void push_back(T value) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data()[size_++] = value;
  }

  void clear() { size_ = 0; }

  /// Remove the first occurrence of `value`; preserves relative order of the
  /// remaining elements. Returns true if an element was removed.
  bool erase_value(T value) {
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) {
      if (d[i] == value) {
        for (std::size_t j = i + 1; j < size_; ++j) d[j - 1] = d[j];
        --size_;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool contains(T value) const {
    const T* d = data();
    return std::find(d, d + size_, value) != d + size_;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

 private:
  void grow(std::size_t n) {
    n = std::max<std::size_t>(n, static_cast<std::size_t>(capacity_) * 2);
    T* fresh = static_cast<T*>(::operator new(n * sizeof(T)));
    std::memcpy(static_cast<void*>(fresh), static_cast<const void*>(data()),
                size_ * sizeof(T));
    if (capacity_ != N) ::operator delete(heap_);
    heap_ = fresh;
    capacity_ = n;
  }

  void assign(const T* src, std::size_t n) {
    if (n > capacity_) grow(n);
    std::memcpy(static_cast<void*>(data()), static_cast<const void*>(src), n * sizeof(T));
    size_ = n;
  }

  void steal(SmallVec&& other) noexcept {
    if (other.capacity_ == N) {
      std::memcpy(static_cast<void*>(inline_raw_),
                  static_cast<const void*>(other.inline_raw_), other.size_ * sizeof(T));
      capacity_ = N;
    } else {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.capacity_ = N;
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void release() {
    if (capacity_ != N) {
      ::operator delete(heap_);
      capacity_ = N;
    }
    size_ = 0;
  }

  // Raw bytes rather than T[] so element types with default member
  // initializers (e.g. StrongId) stay usable inside the union.
  union {
    alignas(T) unsigned char inline_raw_[N * sizeof(T)];
    T* heap_;
  };
  std::uint32_t size_{0};
  std::uint32_t capacity_{N};
};

}  // namespace erms::util
