#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace erms::util {

/// `std::mutex` carrying a Clang Thread Safety capability, so
/// `ERMS_GUARDED_BY(mu_)` fields are checked at compile time under
/// `-DERMS_STATIC_ANALYSIS=ON` (DESIGN.md §15). Off Clang this is exactly a
/// `std::mutex`. All locking in src/ goes through this wrapper —
/// scripts/lint_determinism.py fails the build on new raw `std::mutex`
/// call sites.
class ERMS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ERMS_ACQUIRE() { mu_.lock(); }
  void unlock() ERMS_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() ERMS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex mu_;
};

/// RAII lock for `util::Mutex`; the scoped-capability annotation tells the
/// analysis the mutex is held for exactly this object's lifetime.
class ERMS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ERMS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() ERMS_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Movable-free `std::unique_lock` equivalent for use with `CondVar`. Waits
/// release and reacquire internally, so from the analysis's point of view
/// the capability is held for the whole scope — which is the invariant that
/// matters at every statement the caller can observe.
class ERMS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ERMS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() ERMS_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with `util::Mutex` via `UniqueLock`. Prefer the
/// explicit `while (!cond) cv.wait(lock);` form over a predicate lambda:
/// the analysis checks the loop body in the caller's scope (where the lock
/// is visibly held), whereas a lambda body is analyzed as a separate
/// function holding nothing.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Atomically release `lock`, wait, reacquire before returning.
  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

 private:
  std::condition_variable cv_;
};

}  // namespace erms::util
