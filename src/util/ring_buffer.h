#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace erms::util {

/// A vector-backed circular FIFO with power-of-two capacity. std::deque
/// allocates fixed-size chunks and walks a chunk map on every access; the
/// CEP engine's window rings push and pop once per event per query, so that
/// indirection (and the chunk churn at the window boundary) shows up in
/// profiles. This ring touches one flat array, and once grown to the window's
/// high-water mark it never allocates again.
template <typename T>
class RingBuffer {
 public:
  void push_back(const T& v) {
    if (count_ == buf_.size()) {
      grow(count_ + 1);
    }
    buf_[(head_ + count_) & (buf_.size() - 1)] = v;
    ++count_;
  }

  [[nodiscard]] const T& front() const { return buf_[head_]; }
  [[nodiscard]] T& front() { return buf_[head_]; }

  void pop_front() {
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  /// i-th element counted from the front (0 = front()).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return buf_[(head_ + i) & (buf_.size() - 1)];
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

  /// Pre-size to at least `n` slots (rounded up to a power of two).
  void reserve(std::size_t n) {
    if (n > buf_.size()) {
      grow(n);
    }
  }

 private:
  void grow(std::size_t min_cap) {
    std::size_t cap = 16;
    while (cap < min_cap) {
      cap <<= 1;
    }
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_.swap(next);
    head_ = 0;
  }

  std::vector<T> buf_;   // capacity, always a power of two (or empty)
  std::size_t head_{0};  // index of front()
  std::size_t count_{0};
};

}  // namespace erms::util
