#pragma once

#include <ostream>
#include <sstream>
#include <string>

namespace erms::util {

enum class LogLevel { kDebug, kInfo, kWarn, kError, kOff };

/// Minimal leveled logger. Library code logs through an injected `Logger&`
/// (Core Guidelines I.3: no global mutable singletons in the libraries); the
/// examples and benches construct one writing to stderr.
class Logger {
 public:
  explicit Logger(std::ostream* sink = nullptr, LogLevel level = LogLevel::kInfo)
      : sink_(sink), level_(level) {}

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return sink_ != nullptr && level >= level_ && level_ != LogLevel::kOff;
  }

  void log(LogLevel level, const std::string& component, const std::string& message);

  /// A logger that drops everything; handy default for library constructors.
  static Logger& null_logger();

 private:
  std::ostream* sink_;
  LogLevel level_;
};

}  // namespace erms::util
