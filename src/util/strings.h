#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace erms::util {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse the "key=value" form used by HDFS audit logs; returns false if there
/// is no '=' in `s`.
bool split_key_value(std::string_view s, std::string_view& key, std::string_view& value);

}  // namespace erms::util
