#include "util/thread_pool.h"

#include <atomic>
#include <memory>

namespace erms::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::run(std::function<void()> fn) {
  {
    LockGuard lock(mu_);
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      UniqueLock lock(mu_);
      while (!stopping_ && queue_.empty()) {
        cv_.wait(lock);
      }
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      fn = std::move(queue_.front());
      queue_.pop();
    }
    fn();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (n == 1) {
    fn(0);
    return;
  }

  // Shared work-stealing counter: workers and the caller pull indices until
  // exhausted. `state` is shared_ptr-owned because enqueued helpers may still
  // be scheduled (and must be safe to run as no-ops) after the loop finished.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t total;
    const std::function<void(std::size_t)>* body;
    Mutex mu;  // cv handshake only; progress lives in the atomics above
    CondVar cv;
  };
  auto state = std::make_shared<State>();
  state->total = n;
  state->body = &fn;

  auto drain = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->total) {
        return;
      }
      (*s->body)(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->total) {
        LockGuard lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    run([state, drain] { drain(state); });
  }
  drain(state);

  UniqueLock lock(state->mu);
  while (state->done.load(std::memory_order_acquire) != state->total) {
    state->cv.wait(lock);
  }
}

}  // namespace erms::util
