#pragma once

#include <cstdint>
#include <string>

namespace erms::util {

/// Byte quantities. Plain u64 with named constructors so call sites read as
/// `64 * MiB` rather than magic numbers.
inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;
inline constexpr std::uint64_t TiB = 1024ull * GiB;

/// Render a byte count as a human-readable string ("1.50 GiB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace erms::util
