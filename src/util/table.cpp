#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace erms::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::cell(std::uint64_t v) { return std::to_string(v); }
std::string Table::cell(std::int64_t v) { return std::to_string(v); }
std::string Table::cell(int v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

}  // namespace erms::util
