#pragma once

// Clang Thread Safety Analysis annotations (DESIGN.md §15).
//
// These macros attach compile-time locking contracts to data and functions:
// which mutex guards which field, which capabilities a function needs on
// entry, what it acquires and releases. Under Clang with
// `-DERMS_STATIC_ANALYSIS=ON` the build compiles with
// `-Werror=thread-safety`, so forgetting a lock acquisition around an
// `ERMS_GUARDED_BY` field is a build break, not a TSan lottery ticket. Under
// any other compiler every macro expands to nothing and the annotated code
// is byte-identical to unannotated code.
//
// Use the `util::Mutex` / `util::LockGuard` wrappers from util/mutex.h
// instead of `std::mutex` directly — the raw types carry no capability
// attributes, so the analysis is blind to them (and
// scripts/lint_determinism.py rejects new raw-mutex call sites for exactly
// that reason).
//
// Naming follows the Clang documentation's canonical macro set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with an ERMS_
// prefix.

#if defined(__clang__)
#define ERMS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ERMS_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a class as a capability (e.g. a mutex type). The string is the
/// capability kind shown in diagnostics ("mutex", "role", ...).
#define ERMS_CAPABILITY(x) ERMS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime equals a capability hold
/// (constructor acquires, destructor releases).
#define ERMS_SCOPED_CAPABILITY ERMS_THREAD_ANNOTATION_(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define ERMS_GUARDED_BY(x) ERMS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define ERMS_PT_GUARDED_BY(x) ERMS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define ERMS_REQUIRES(...) \
  ERMS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ERMS_REQUIRES_SHARED(...) \
  ERMS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define ERMS_ACQUIRE(...) \
  ERMS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ERMS_ACQUIRE_SHARED(...) \
  ERMS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define ERMS_RELEASE(...) \
  ERMS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ERMS_RELEASE_SHARED(...) \
  ERMS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire and returns `success` on success.
#define ERMS_TRY_ACQUIRE(...) \
  ERMS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard for
/// functions that acquire it themselves).
#define ERMS_EXCLUDES(...) ERMS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares lock acquisition order between two mutexes.
#define ERMS_ACQUIRED_BEFORE(...) \
  ERMS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ERMS_ACQUIRED_AFTER(...) \
  ERMS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define ERMS_RETURN_CAPABILITY(x) ERMS_THREAD_ANNOTATION_(lock_returned(x))

/// Assert (not prove) that the capability is held — for code reachable only
/// with the lock held via a path the analysis cannot see.
#define ERMS_ASSERT_CAPABILITY(x) \
  ERMS_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disable the analysis for one function. Every use needs a
/// comment explaining why the contract cannot be expressed.
#define ERMS_NO_THREAD_SAFETY_ANALYSIS \
  ERMS_THREAD_ANNOTATION_(no_thread_safety_analysis)
