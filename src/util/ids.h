#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace erms::util {

/// Strongly typed integer id. Distinct `Tag` types produce incompatible ids,
/// so a BlockId can never be passed where a NodeId is expected.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(StrongId a, StrongId b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(StrongId a, StrongId b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(StrongId a, StrongId b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) { return os << id.value_; }

 private:
  Rep value_{0};
};

/// Monotonically increasing id generator for a StrongId type.
template <typename Id>
class IdGenerator {
 public:
  constexpr explicit IdGenerator(typename Id::rep_type first = 0) : next_(first) {}
  [[nodiscard]] Id next() { return Id{next_++}; }

  /// The id the next call to next() would mint (snapshot support: restoring
  /// this value resumes the id sequence without gaps or reuse).
  [[nodiscard]] constexpr typename Id::rep_type peek() const { return next_; }
  constexpr void reset(typename Id::rep_type next) { next_ = next; }

 private:
  typename Id::rep_type next_;
};

}  // namespace erms::util

namespace std {
template <typename Tag, typename Rep>
struct hash<erms::util::StrongId<Tag, Rep>> {
  size_t operator()(erms::util::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
