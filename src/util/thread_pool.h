#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace erms::util {

/// Small fixed-size worker pool. Two uses inside ERMS: fire-and-forget
/// background jobs via run(), and data-parallel loops via parallel_for(),
/// which the erasure codec uses to split megabyte shards into cache-friendly
/// sub-ranges encoded concurrently.
///
/// parallel_for() blocks until every index has run; the calling thread
/// participates, so a pool of size 1 still makes progress even when workers
/// are busy, and nested calls cannot deadlock.
class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task for any worker. Tasks must not throw.
  void run(std::function<void()> fn) ERMS_EXCLUDES(mu_);

  /// Execute fn(i) for every i in [0, n), spread across the workers and the
  /// calling thread. Returns when all n calls have finished. `fn` must be
  /// safe to call concurrently and must not throw.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop() ERMS_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ ERMS_GUARDED_BY(mu_);
  bool stopping_ ERMS_GUARDED_BY(mu_){false};
};

}  // namespace erms::util
