#include "util/strings.h"

#include <cctype>

namespace erms::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool split_key_value(std::string_view s, std::string_view& key, std::string_view& value) {
  const std::size_t pos = s.find('=');
  if (pos == std::string_view::npos) {
    return false;
  }
  key = s.substr(0, pos);
  value = s.substr(pos + 1);
  return true;
}

}  // namespace erms::util
