#include "sim/event_queue.h"

#include <cassert>

namespace erms::sim {

EventHandle EventQueue::schedule(SimTime at, Callback fn) {
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{cancelled};
  queue_.push(Entry{at, next_seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

void EventQueue::drop_cancelled() {
  while (!queue_.empty() && *queue_.top().cancelled) {
    queue_.pop();
  }
}

bool EventQueue::empty() {
  drop_cancelled();
  return queue_.empty();
}

SimTime EventQueue::next_time() {
  drop_cancelled();
  assert(!queue_.empty());
  return queue_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!queue_.empty());
  // priority_queue::top() is const; the entry is about to be discarded so the
  // move through const_cast is safe and avoids copying the std::function.
  Entry& top = const_cast<Entry&>(queue_.top());
  // Mark fired so outstanding handles report !pending().
  *top.cancelled = true;
  Fired fired{top.time, std::move(top.fn)};
  queue_.pop();
  return fired;
}

void EventQueue::clear() {
  while (!queue_.empty()) {
    queue_.pop();
  }
}

}  // namespace erms::sim
