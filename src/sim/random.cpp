#include "sim/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace erms::sim {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  return std::uniform_real_distribution<double>{lo, hi}(engine_);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  return std::exponential_distribution<double>{1.0 / mean}(engine_);
}

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  return std::poisson_distribution<std::int64_t>{mean}(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>{mu, sigma}(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return std::bernoulli_distribution{p}(engine_);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) : exponent_(exponent) {
  if (n == 0) {
    throw std::invalid_argument("ZipfDistribution: n must be > 0");
  }
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[k - 1] = sum;
  }
  for (double& v : cdf_) {
    v /= sum;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t k) const {
  assert(k >= 1 && k <= cdf_.size());
  const double lo = (k == 1) ? 0.0 : cdf_[k - 2];
  return cdf_[k - 1] - lo;
}

}  // namespace erms::sim
