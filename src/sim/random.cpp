#include "sim/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace erms::sim {

namespace {
constexpr std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 — the canonical seed expander for xoshiro: one word of seed
/// becomes four well-mixed state words, and a zero seed cannot produce the
/// (forbidden) all-zero state.
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (std::uint64_t& word : s_) {
    word = splitmix64(x);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection below 2^64 mod span keeps the modulo unbiased.
  const std::uint64_t reject = (0 - span) % span;
  std::uint64_t r = next_u64();
  while (r < reject) {
    r = next_u64();
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + r % span);
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  // 1 - u is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform01());
}

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  // Knuth's product-of-uniforms, chunked so exp(-chunk) never underflows:
  // Poisson(a + b) = Poisson(a) + Poisson(b) for independent draws.
  std::int64_t count = 0;
  double remaining = mean;
  while (remaining > 0.0) {
    const double chunk = std::min(remaining, 30.0);
    remaining -= chunk;
    const double limit = std::exp(-chunk);
    double prod = 1.0;
    std::int64_t k = 0;
    do {
      ++k;
      prod *= uniform01();
    } while (prod > limit);
    count += k - 1;
  }
  return count;
}

double Rng::lognormal(double mu, double sigma) {
  // Box–Muller, discarding the second normal so the generator carries no
  // hidden cached value between calls (the four state words are the whole
  // stream state — the property snapshots rely on).
  const double u1 = 1.0 - uniform01();  // (0, 1]: log stays finite
  const double u2 = uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return std::exp(mu + sigma * z);
}

bool Rng::chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) : exponent_(exponent) {
  if (n == 0) {
    throw std::invalid_argument("ZipfDistribution: n must be > 0");
  }
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[k - 1] = sum;
  }
  for (double& v : cdf_) {
    v /= sum;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t k) const {
  assert(k >= 1 && k <= cdf_.size());
  const double lo = (k == 1) ? 0.0 : cdf_[k - 2];
  return cdf_[k - 1] - lo;
}

}  // namespace erms::sim
