#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace erms::sim {

/// Discrete-event simulation driver: a virtual clock plus the event queue.
/// All simulated components hold a reference to one Simulation and schedule
/// callbacks on it; `run()` advances the clock event by event.
class Simulation {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventHandle schedule_after(SimDuration delay, EventQueue::Callback fn) {
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  EventHandle schedule_at(SimTime at, EventQueue::Callback fn) {
    return queue_.schedule(at < now_ ? now_ : at, std::move(fn));
  }

  /// Run one event. Returns false if the queue was empty.
  bool step();

  /// Run until the queue drains or `stop()` is called.
  void run();

  /// Run until the virtual clock reaches `deadline` (events at exactly
  /// `deadline` are executed). The clock is advanced to `deadline` even if
  /// the queue drains earlier.
  void run_until(SimTime deadline);

  /// Ask a running `run()`/`run_until()` loop to return after the current
  /// event.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  /// Snapshot support: restore the clock and event counter verbatim. Pending
  /// events are closures and cannot be serialized — a restored run starts
  /// with an empty queue and every component re-arms its own events, which
  /// is why snapshots are only taken at quiescent points (DESIGN.md §16).
  void restore_clock(SimTime now, std::uint64_t events_executed) {
    now_ = now;
    events_executed_ = events_executed;
    stopped_ = false;
  }

 private:
  SimTime now_{};
  EventQueue queue_;
  bool stopped_{false};
  std::uint64_t events_executed_{0};
};

}  // namespace erms::sim
