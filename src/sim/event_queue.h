#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace erms::sim {

/// Handle to a scheduled event; lets the owner cancel it before it fires.
/// Cancellation is lazy: the queue entry stays until popped, then is skipped.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly or on
  /// a default-constructed handle.
  void cancel() {
    if (auto state = state_.lock()) {
      *state = true;
    }
  }

  /// True while the event is still pending (scheduled, not fired, not
  /// cancelled through another copy of the handle).
  [[nodiscard]] bool pending() const {
    auto state = state_.lock();
    return state != nullptr && !*state;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> state) : state_(std::move(state)) {}
  std::weak_ptr<bool> state_;
};

/// Time-ordered event queue. Ties are broken by insertion sequence so runs
/// are deterministic for a fixed seed. Cancelled entries are skipped lazily;
/// `empty()`/`next_time()` first drain any cancelled entries at the front.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `at`. Returns a cancellation handle.
  EventHandle schedule(SimTime at, Callback fn);

  [[nodiscard]] bool empty();

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  /// Pop and return the earliest pending event. Precondition: !empty().
  struct Fired {
    SimTime time;
    Callback fn;
  };
  Fired pop();

  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return b.time < a.time;
      }
      return b.seq < a.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::uint64_t next_seq_{0};
};

}  // namespace erms::sim
