#pragma once

#include <cstdint>
#include <ostream>

namespace erms::sim {

/// Simulated time, in integer microseconds since simulation start.
/// An integer representation keeps event ordering exact — no floating-point
/// drift when summing many small transfer times.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }

  friend constexpr bool operator==(SimTime a, SimTime b) { return a.micros_ == b.micros_; }
  friend constexpr bool operator!=(SimTime a, SimTime b) { return a.micros_ != b.micros_; }
  friend constexpr bool operator<(SimTime a, SimTime b) { return a.micros_ < b.micros_; }
  friend constexpr bool operator<=(SimTime a, SimTime b) { return a.micros_ <= b.micros_; }
  friend constexpr bool operator>(SimTime a, SimTime b) { return a.micros_ > b.micros_; }
  friend constexpr bool operator>=(SimTime a, SimTime b) { return a.micros_ >= b.micros_; }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.seconds() << "s";
  }

 private:
  std::int64_t micros_{0};
};

/// A span of simulated time; separate type so `time + time` does not compile.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t micros) : micros_(micros) {}

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  friend constexpr bool operator==(SimDuration a, SimDuration b) { return a.micros_ == b.micros_; }
  friend constexpr bool operator!=(SimDuration a, SimDuration b) { return a.micros_ != b.micros_; }
  friend constexpr bool operator<(SimDuration a, SimDuration b) { return a.micros_ < b.micros_; }
  friend constexpr bool operator<=(SimDuration a, SimDuration b) { return a.micros_ <= b.micros_; }
  friend constexpr bool operator>(SimDuration a, SimDuration b) { return a.micros_ > b.micros_; }
  friend constexpr bool operator>=(SimDuration a, SimDuration b) { return a.micros_ >= b.micros_; }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration{a.micros_ + b.micros_};
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration{a.micros_ - b.micros_};
  }
  friend constexpr SimDuration operator*(SimDuration d, std::int64_t k) {
    return SimDuration{d.micros_ * k};
  }

 private:
  std::int64_t micros_{0};
};

constexpr SimTime operator+(SimTime t, SimDuration d) { return SimTime{t.micros() + d.micros()}; }
constexpr SimTime operator-(SimTime t, SimDuration d) { return SimTime{t.micros() - d.micros()}; }
constexpr SimDuration operator-(SimTime a, SimTime b) { return SimDuration{a.micros() - b.micros()}; }

constexpr SimDuration micros(std::int64_t n) { return SimDuration{n}; }
constexpr SimDuration millis(std::int64_t n) { return SimDuration{n * 1000}; }
constexpr SimDuration seconds(double s) {
  return SimDuration{static_cast<std::int64_t>(s * 1e6)};
}
constexpr SimDuration minutes(double m) { return seconds(m * 60.0); }
constexpr SimDuration hours(double h) { return seconds(h * 3600.0); }

}  // namespace erms::sim
