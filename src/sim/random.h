#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace erms::sim {

/// Deterministic random source for a simulation run. One instance per run,
/// seeded explicitly, so experiments are reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean);

  /// Poisson-distributed count with the given mean (>=0).
  std::int64_t poisson(double mean);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool chance(double p);

  /// Shuffle a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed ranks in [1, n]: P(k) ∝ 1/k^s. Used to model heavy-tailed
/// file popularity (paper §V: "data access patterns in HDFS clusters are
/// heavy-tailed"). The CDF is precomputed once; sampling is a binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  [[nodiscard]] std::size_t n() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

  /// Sample a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k (1-based).
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

}  // namespace erms::sim
