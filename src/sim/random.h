#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace erms::sim {

/// Deterministic random source for a simulation run. One instance per run,
/// seeded explicitly, so experiments are reproducible.
///
/// The generator is xoshiro256** (Blackman & Vigna) with every distribution
/// hand-rolled on top of the raw 64-bit stream. Two reasons, both
/// determinism (DESIGN.md §15):
///   1. The complete stream state is four u64 words, exposed via state() /
///      set_state() so snapshots capture and restore mid-run randomness
///      exactly — std::mt19937_64 buried its 2.5 KiB state behind an
///      iostream interface and std::*_distribution kept hidden per-object
///      state on top of it.
///   2. std::uniform_int_distribution and friends are
///      implementation-defined: the same seed draws different sequences on
///      libstdc++ vs libc++. Explicit algorithms make the byte-identical
///      replay contract hold across standard libraries.
class Rng {
 public:
  /// Complete generator state. Serializable; restoring it resumes the
  /// stream at exactly the draw where state() was taken.
  using State = std::array<std::uint64_t, 4>;

  explicit Rng(std::uint64_t seed);

  /// Uniform integer in [lo, hi] inclusive (unbiased, by rejection).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean);

  /// Poisson-distributed count with the given mean (>=0).
  std::int64_t poisson(double mean);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool chance(double p);

  /// Fisher–Yates shuffle (std::shuffle's element order is
  /// implementation-defined; this one is pinned).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Next raw 64-bit draw from the stream.
  std::uint64_t next_u64();

  [[nodiscard]] State state() const { return s_; }
  void set_state(const State& s) { s_ = s; }

 private:
  /// Uniform in [0, 1) with 53 random bits.
  double uniform01();

  State s_;
};

/// Zipf-distributed ranks in [1, n]: P(k) ∝ 1/k^s. Used to model heavy-tailed
/// file popularity (paper §V: "data access patterns in HDFS clusters are
/// heavy-tailed"). The CDF is precomputed once; sampling is a binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  [[nodiscard]] std::size_t n() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

  /// Sample a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k (1-based).
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1)
};

}  // namespace erms::sim
