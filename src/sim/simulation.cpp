#include "sim/simulation.h"

namespace erms::sim {

bool Simulation::step() {
  if (queue_.empty()) {
    return false;
  }
  EventQueue::Fired fired = queue_.pop();
  now_ = fired.time;
  ++events_executed_;
  fired.fn();
  return true;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace erms::sim
