#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace erms::obs {

/// What an entry in the action trace describes. Two layers:
///  - decision/job events recorded by the ERMS control loop
///    (kClassify .. kPowerDown), carrying the judge rule, trigger value and
///    threshold plus Condor queue-wait / execution spans, and
///  - ground-truth cluster mutations recorded by hdfs::Cluster
///    (kSetReplication .. kNodeFailure), carrying exact bytes moved and
///    target nodes — so every replica-count change in the cluster is
///    attributable even in runs that drive the cluster directly.
enum class ActionKind : std::uint8_t {
  kClassify,         // judge classification flip for a file
  kReplicaIncrease,  // ERMS replica-increase job completed/terminated
  kReplicaDecrease,  // ERMS replica-decrease job completed/terminated
  kEncode,           // ERMS erasure-encode job completed/terminated
  kDecode,           // ERMS erasure-decode job completed/terminated
  kOverload,         // node exceeded tau_DN; hottest file promoted
  kCommission,       // standby node commission requested
  kPowerDown,        // idle active node powered down to standby
  kSetReplication,   // cluster finished changing a file's replica count
  kClusterEncode,    // cluster finished erasure-encoding a file
  kClusterDecode,    // cluster finished decoding a file back to replicas
  kRereplication,    // cluster restored a lost replica
  kNodeFailure,      // node failed (count = replicas lost with it)
  kFlowAborted,      // in-flight transfer torn down (bytes_moved = partial)
  kNodeRecovered,    // dead node rejoined (count = replicas reclaimed)
  kJobRetry,         // Condor job failed and was requeued with backoff
  kFaultInjected,    // fault injector fired a planned fault
};

[[nodiscard]] const char* to_string(ActionKind kind);

/// One sim-timestamped entry in the action trace. Only the fields that make
/// sense for the `kind` are filled; numeric fields default to sentinel
/// values that the JSONL export omits. Every scalar member must carry an
/// initializer — a partially-filled event is exported as-is, so an
/// uninitialized field would leak indeterminate bytes into the trace diff.
// erms-lint: trace-struct
struct TraceEvent {
  std::uint64_t seq{0};          // assigned by the ring, monotonically increasing
  ActionKind kind{ActionKind::kClassify};
  sim::SimTime at{};             // sim time the event was recorded

  std::string path;              // file the action concerns (empty if none)
  std::int64_t node{-1};         // node the action concerns (failures, standby)
  std::int64_t block{-1};        // block id (re-replications)

  int rule{0};                   // judge rule (paper formulas 1-6) that fired
  double trigger{0.0};           // measured value that tripped the rule
  double threshold{0.0};         // threshold it was compared against
  std::string from;              // previous classification (kClassify)
  std::string to;                // new classification (kClassify)

  std::int64_t rep_before{-1};   // replica count before the action
  std::int64_t rep_after{-1};    // replica count after the action
  std::uint64_t bytes_moved{0};  // bytes copied/written by the action
  std::uint64_t count{0};        // generic count (replicas lost, nodes, ...)

  sim::SimDuration queue_wait{}; // submit -> start (Condor jobs)
  sim::SimDuration exec_span{};  // start -> finish (Condor jobs)
  std::int64_t job{-1};          // Condor job id
  std::string outcome;           // terminal job status / completion note

  std::vector<std::int64_t> targets;  // nodes gaining (or losing) replicas

  std::string codec;             // erasure code involved (encode, repair)
  std::string band;              // temperature band that chose it (kEncode)
  std::uint64_t bytes_read{0};   // bytes pulled to repair / serve degraded

  /// Single-line JSON object (no trailing newline).
  [[nodiscard]] std::string to_json() const;
};

/// Bounded ring of TraceEvents. Recording takes a mutex — action events are
/// rare (a handful per evaluation period) so contention is irrelevant; the
/// bound is what matters: memory stays O(capacity) however long the
/// simulation runs, and `dropped()` reports how many old events were
/// evicted. Sequence numbers are assigned on record and never reused, so an
/// exported trace shows exactly which prefix was lost.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096);

  void record(TraceEvent event) ERMS_EXCLUDES(mu_);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// Total events ever recorded (== last seq).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events evicted because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Oldest-to-newest copy of the current contents.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// One JSON object per line, oldest first.
  void to_jsonl(std::ostream& os) const;

  /// Snapshot support (src/snapshot/): replace the contents with `events`
  /// (oldest first, seq fields preserved) and the next sequence number.
  /// `events` beyond capacity keeps only the newest, like live recording.
  void restore(std::vector<TraceEvent> events, std::uint64_t next_seq)
      ERMS_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::vector<TraceEvent> ring_ ERMS_GUARDED_BY(mu_);
  const std::size_t capacity_;
  std::size_t head_ ERMS_GUARDED_BY(mu_){0};  // index of the oldest event
  std::size_t size_ ERMS_GUARDED_BY(mu_){0};
  std::uint64_t next_seq_ ERMS_GUARDED_BY(mu_){1};
};

/// Escape a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace erms::obs
