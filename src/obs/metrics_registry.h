#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace erms::obs {

/// Typed handles into a MetricsRegistry. Default-constructed ids are
/// invalid; recording against an invalid id is a no-op, so instrumented
/// components can keep an id struct around whether or not observability is
/// attached.
struct CounterId {
  std::uint32_t index{UINT32_MAX};
  [[nodiscard]] bool valid() const { return index != UINT32_MAX; }
};
struct GaugeId {
  std::uint32_t index{UINT32_MAX};
  [[nodiscard]] bool valid() const { return index != UINT32_MAX; }
};
struct HistogramId {
  std::uint32_t index{UINT32_MAX};
  [[nodiscard]] bool valid() const { return index != UINT32_MAX; }
};

/// Registry of named counters, gauges and histograms.
///
/// Registration (by name, idempotent) takes a mutex; the *recording* fast
/// path is lock-free: counter and histogram cells live in per-thread shards
/// (chunked arrays of relaxed atomics, allocated on first touch via CAS) and
/// are folded only at scrape time, so concurrent `add`/`observe` from
/// simulation callbacks, `util::ThreadPool` workers and CEP shard flushes
/// never contend on a shared cache line. Gauges are registry-level atomics
/// (last writer wins — sharding a "current value" would be meaningless).
///
/// Scrapes (`counter_value`, `histogram_value`, `snapshot`) fold every
/// shard; a fold concurrent with increments sees a value that was true at
/// some instant during the call, and once writers are quiescent the fold is
/// exact — no increment is ever lost.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // ----- registration (mutex; idempotent by name) -------------------------
  CounterId counter(const std::string& name) ERMS_EXCLUDES(mu_);
  GaugeId gauge(const std::string& name) ERMS_EXCLUDES(mu_);
  /// Fixed-width buckets over [lo, hi), like metrics::Histogram. If `name`
  /// is already registered the existing id is returned and the new bounds
  /// are ignored.
  HistogramId histogram(const std::string& name, double lo, double hi, std::size_t buckets)
      ERMS_EXCLUDES(mu_);

  // ----- recording (lock-free fast path) ----------------------------------
  void add(CounterId id, std::uint64_t delta = 1);
  void set(GaugeId id, double value);
  void observe(HistogramId id, double x);

  // ----- scrape (folds the per-thread shards) -----------------------------
  [[nodiscard]] std::uint64_t counter_value(CounterId id) const ERMS_EXCLUDES(mu_);
  [[nodiscard]] double gauge_value(GaugeId id) const;
  /// Folded into a plain metrics::Histogram (counts summed across shards).
  [[nodiscard]] metrics::Histogram histogram_value(HistogramId id) const ERMS_EXCLUDES(mu_);
  /// Sum of every value observed into the histogram (for means).
  [[nodiscard]] double histogram_sum(HistogramId id) const ERMS_EXCLUDES(mu_);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    struct Hist {
      std::string name;
      metrics::Histogram histogram;
      double sum;
    };
    std::vector<Hist> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const ERMS_EXCLUDES(mu_);

  /// Human-readable dump: one aligned line per metric, histograms with
  /// count/mean/p50/p90/p99 estimated from the folded buckets.
  [[nodiscard]] std::string text_report() const;
  /// One JSON object per line per metric (machine-readable scrape).
  void to_jsonl(std::ostream& os) const;

  [[nodiscard]] std::size_t shard_count() const ERMS_EXCLUDES(mu_);

  /// Snapshot support (src/snapshot/): bulk-load a histogram's folded cell
  /// (bucket counts, under/overflow, value sum) into the calling thread's
  /// shard. Registers the name if needed; counters and gauges restore
  /// through the public counter()/add()/gauge()/set() paths.
  void restore_histogram(const std::string& name, double lo, double hi,
                         const std::vector<std::uint64_t>& counts, double sum)
      ERMS_EXCLUDES(mu_);

 private:
  // Chunked id space: slot i of kind K lives in block i/kBlockSlots. Block
  // pointers are allocated on first touch with compare-exchange, so readers
  // never see a partially initialised block and no lock is taken.
  static constexpr std::size_t kBlockSlots = 256;
  static constexpr std::size_t kMaxBlocks = 64;

  struct HistSpec {
    double lo;
    double hi;
    std::size_t buckets;
  };

  /// Per-(thread, histogram) cell: bucket counts plus underflow/overflow
  /// and the running sum of observed values.
  struct HistCell {
    explicit HistCell(const HistSpec& spec);
    std::vector<std::atomic<std::uint64_t>> counts;  // [b0..bn-1, under, over]
    std::atomic<double> sum{0.0};
  };

  struct Shard {
    Shard();
    ~Shard();
    std::atomic<std::atomic<std::uint64_t>*> counter_blocks[kMaxBlocks];
    std::atomic<std::atomic<HistCell*>*> hist_blocks[kMaxBlocks];
  };

  Shard& local_shard() ERMS_EXCLUDES(mu_);
  [[nodiscard]] const HistSpec* hist_spec(std::uint32_t index) const;

  const std::uint64_t serial_;

  mutable util::Mutex mu_;  // registration + shard list + scrape
  std::vector<std::unique_ptr<Shard>> shards_ ERMS_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t> counter_ids_ ERMS_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t> gauge_ids_ ERMS_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t> hist_ids_ ERMS_GUARDED_BY(mu_);
  std::vector<std::string> counter_names_ ERMS_GUARDED_BY(mu_);
  std::vector<std::string> gauge_names_ ERMS_GUARDED_BY(mu_);
  std::vector<std::string> hist_names_ ERMS_GUARDED_BY(mu_);

  // Registry-level chunked storage: gauges and immutable histogram specs.
  std::atomic<std::atomic<double>*> gauge_blocks_[kMaxBlocks];
  std::atomic<std::atomic<HistSpec*>*> spec_blocks_[kMaxBlocks];
};

}  // namespace erms::obs
