#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace erms::obs {
namespace {

std::atomic<std::uint64_t> g_next_serial{1};

/// Estimate the q-quantile from folded fixed-width buckets (linear
/// interpolation inside the bucket that crosses the target rank).
double bucket_quantile(const metrics::Histogram& h, double q) {
  const std::uint64_t total = h.total();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = h.underflow();
  if (static_cast<double>(seen) >= rank && seen > 0) return h.lo();
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    const std::uint64_t c = h.bucket(i);
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= rank) {
      const double frac = (rank - static_cast<double>(seen)) / static_cast<double>(c);
      return h.bucket_lo(i) + frac * (h.bucket_hi(i) - h.bucket_lo(i));
    }
    seen += c;
  }
  return h.hi();
}

}  // namespace

MetricsRegistry::HistCell::HistCell(const HistSpec& spec) : counts(spec.buckets + 2) {}

MetricsRegistry::Shard::Shard() {
  for (auto& b : counter_blocks) b.store(nullptr, std::memory_order_relaxed);
  for (auto& b : hist_blocks) b.store(nullptr, std::memory_order_relaxed);
}

MetricsRegistry::Shard::~Shard() {
  for (auto& b : counter_blocks) delete[] b.load(std::memory_order_acquire);
  for (auto& b : hist_blocks) {
    auto* block = b.load(std::memory_order_acquire);
    if (block == nullptr) continue;
    for (std::size_t i = 0; i < kBlockSlots; ++i) delete block[i].load(std::memory_order_acquire);
    delete[] block;
  }
}

MetricsRegistry::MetricsRegistry() : serial_(g_next_serial.fetch_add(1, std::memory_order_relaxed)) {
  for (auto& b : gauge_blocks_) b.store(nullptr, std::memory_order_relaxed);
  for (auto& b : spec_blocks_) b.store(nullptr, std::memory_order_relaxed);
}

MetricsRegistry::~MetricsRegistry() {
  for (auto& b : gauge_blocks_) delete[] b.load(std::memory_order_acquire);
  for (auto& b : spec_blocks_) {
    auto* block = b.load(std::memory_order_acquire);
    if (block == nullptr) continue;
    for (std::size_t i = 0; i < kBlockSlots; ++i) delete block[i].load(std::memory_order_acquire);
    delete[] block;
  }
}

namespace {

/// Ensure `blocks[slot / kBlockSlots]` exists; first-touch allocation races
/// are resolved with compare-exchange (the loser frees its block).
template <typename T, std::size_t N>
T* ensure_block(std::atomic<T*> (&blocks)[N], std::size_t block_index, std::size_t block_slots) {
  if (block_index >= N) return nullptr;
  T* block = blocks[block_index].load(std::memory_order_acquire);
  if (block != nullptr) return block;
  T* fresh = new T[block_slots]{};
  if (blocks[block_index].compare_exchange_strong(block, fresh, std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
    return fresh;
  }
  delete[] fresh;
  return block;
}

}  // namespace

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // Cache keyed by registry serial (unique per registry ever constructed),
  // so entries for destroyed registries can never alias a live one.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [serial, shard] : cache) {
    if (serial == serial_) return *shard;
  }
  auto owned = std::make_unique<Shard>();
  Shard* raw = owned.get();
  {
    util::LockGuard lock(mu_);
    shards_.push_back(std::move(owned));
  }
  cache.emplace_back(serial_, raw);
  return *raw;
}

CounterId MetricsRegistry::counter(const std::string& name) {
  util::LockGuard lock(mu_);
  auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return CounterId{it->second};
  const auto index = static_cast<std::uint32_t>(counter_names_.size());
  if (index >= kBlockSlots * kMaxBlocks) return CounterId{};
  counter_ids_.emplace(name, index);
  counter_names_.push_back(name);
  return CounterId{index};
}

GaugeId MetricsRegistry::gauge(const std::string& name) {
  util::LockGuard lock(mu_);
  auto it = gauge_ids_.find(name);
  if (it != gauge_ids_.end()) return GaugeId{it->second};
  const auto index = static_cast<std::uint32_t>(gauge_names_.size());
  if (index >= kBlockSlots * kMaxBlocks) return GaugeId{};
  gauge_ids_.emplace(name, index);
  gauge_names_.push_back(name);
  return GaugeId{index};
}

HistogramId MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                       std::size_t buckets) {
  util::LockGuard lock(mu_);
  auto it = hist_ids_.find(name);
  if (it != hist_ids_.end()) return HistogramId{it->second};
  const auto index = static_cast<std::uint32_t>(hist_names_.size());
  if (index >= kBlockSlots * kMaxBlocks) return HistogramId{};
  if (!(hi > lo) || buckets == 0) return HistogramId{};
  auto* block = ensure_block(spec_blocks_, index / kBlockSlots, kBlockSlots);
  if (block == nullptr) return HistogramId{};
  block[index % kBlockSlots].store(new HistSpec{lo, hi, buckets}, std::memory_order_release);
  hist_ids_.emplace(name, index);
  hist_names_.push_back(name);
  return HistogramId{index};
}

void MetricsRegistry::add(CounterId id, std::uint64_t delta) {
  if (!id.valid()) return;
  Shard& shard = local_shard();
  auto* block = ensure_block(shard.counter_blocks, id.index / kBlockSlots, kBlockSlots);
  if (block == nullptr) return;
  block[id.index % kBlockSlots].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::set(GaugeId id, double value) {
  if (!id.valid()) return;
  auto* block = ensure_block(gauge_blocks_, id.index / kBlockSlots, kBlockSlots);
  if (block == nullptr) return;
  block[id.index % kBlockSlots].store(value, std::memory_order_relaxed);
}

const MetricsRegistry::HistSpec* MetricsRegistry::hist_spec(std::uint32_t index) const {
  auto* block = spec_blocks_[index / kBlockSlots].load(std::memory_order_acquire);
  if (block == nullptr) return nullptr;
  return block[index % kBlockSlots].load(std::memory_order_acquire);
}

void MetricsRegistry::observe(HistogramId id, double x) {
  if (!id.valid()) return;
  const HistSpec* spec = hist_spec(id.index);
  if (spec == nullptr) return;
  Shard& shard = local_shard();
  auto* block = ensure_block(shard.hist_blocks, id.index / kBlockSlots, kBlockSlots);
  if (block == nullptr) return;
  auto& slot = block[id.index % kBlockSlots];
  HistCell* cell = slot.load(std::memory_order_acquire);
  if (cell == nullptr) {
    // The shard is thread-local, so only its owning thread allocates cells;
    // scrapers only read, hence a plain store is race-free.
    cell = new HistCell(*spec);
    slot.store(cell, std::memory_order_release);
  }
  std::size_t bucket;
  if (x < spec->lo) {
    bucket = spec->buckets;  // underflow slot
  } else if (x >= spec->hi) {
    bucket = spec->buckets + 1;  // overflow slot
  } else {
    const double width = (spec->hi - spec->lo) / static_cast<double>(spec->buckets);
    bucket = std::min(spec->buckets - 1,
                      static_cast<std::size_t>((x - spec->lo) / width));
  }
  cell->counts[bucket].fetch_add(1, std::memory_order_relaxed);
  double sum = cell->sum.load(std::memory_order_relaxed);
  while (!cell->sum.compare_exchange_weak(sum, sum + x, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::restore_histogram(const std::string& name, double lo, double hi,
                                        const std::vector<std::uint64_t>& counts, double sum) {
  if (counts.size() < 3) return;  // [b0..bn-1, under, over] needs >= 1 bucket
  const std::size_t buckets = counts.size() - 2;
  const HistogramId id = histogram(name, lo, hi, buckets);
  if (!id.valid()) return;
  const HistSpec* spec = hist_spec(id.index);
  if (spec == nullptr || spec->buckets != buckets) return;
  Shard& shard = local_shard();
  auto* block = ensure_block(shard.hist_blocks, id.index / kBlockSlots, kBlockSlots);
  if (block == nullptr) return;
  auto& slot = block[id.index % kBlockSlots];
  HistCell* cell = slot.load(std::memory_order_acquire);
  if (cell == nullptr) {
    cell = new HistCell(*spec);
    slot.store(cell, std::memory_order_release);
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cell->counts[i].store(counts[i], std::memory_order_relaxed);
  }
  cell->sum.store(sum, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::counter_value(CounterId id) const {
  if (!id.valid()) return 0;
  util::LockGuard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    auto* block = shard->counter_blocks[id.index / kBlockSlots].load(std::memory_order_acquire);
    if (block == nullptr) continue;
    total += block[id.index % kBlockSlots].load(std::memory_order_relaxed);
  }
  return total;
}

double MetricsRegistry::gauge_value(GaugeId id) const {
  if (!id.valid()) return 0.0;
  auto* block = gauge_blocks_[id.index / kBlockSlots].load(std::memory_order_acquire);
  if (block == nullptr) return 0.0;
  return block[id.index % kBlockSlots].load(std::memory_order_relaxed);
}

metrics::Histogram MetricsRegistry::histogram_value(HistogramId id) const {
  const HistSpec* spec = id.valid() ? hist_spec(id.index) : nullptr;
  if (spec == nullptr) return metrics::Histogram(0.0, 1.0, 1);
  metrics::Histogram folded(spec->lo, spec->hi, spec->buckets);
  util::LockGuard lock(mu_);
  for (const auto& shard : shards_) {
    auto* block = shard->hist_blocks[id.index / kBlockSlots].load(std::memory_order_acquire);
    if (block == nullptr) continue;
    const HistCell* cell = block[id.index % kBlockSlots].load(std::memory_order_acquire);
    if (cell == nullptr) continue;
    for (std::size_t i = 0; i < spec->buckets; ++i) {
      folded.accumulate_bucket(i, cell->counts[i].load(std::memory_order_relaxed));
    }
    folded.accumulate_underflow(cell->counts[spec->buckets].load(std::memory_order_relaxed));
    folded.accumulate_overflow(cell->counts[spec->buckets + 1].load(std::memory_order_relaxed));
  }
  return folded;
}

double MetricsRegistry::histogram_sum(HistogramId id) const {
  if (!id.valid()) return 0.0;
  util::LockGuard lock(mu_);
  double total = 0.0;
  for (const auto& shard : shards_) {
    auto* block = shard->hist_blocks[id.index / kBlockSlots].load(std::memory_order_acquire);
    if (block == nullptr) continue;
    const HistCell* cell = block[id.index % kBlockSlots].load(std::memory_order_acquire);
    if (cell == nullptr) continue;
    total += cell->sum.load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  // Take the name lists under the lock, then fold each metric (the folds
  // re-lock; ids are stable so this is just a little redundant locking on a
  // cold path).
  std::vector<std::string> counters, gauges, hists;
  {
    util::LockGuard lock(mu_);
    counters = counter_names_;
    gauges = gauge_names_;
    hists = hist_names_;
  }
  Snapshot snap;
  snap.counters.reserve(counters.size());
  for (std::uint32_t i = 0; i < counters.size(); ++i) {
    snap.counters.emplace_back(counters[i], counter_value(CounterId{i}));
  }
  snap.gauges.reserve(gauges.size());
  for (std::uint32_t i = 0; i < gauges.size(); ++i) {
    snap.gauges.emplace_back(gauges[i], gauge_value(GaugeId{i}));
  }
  snap.histograms.reserve(hists.size());
  for (std::uint32_t i = 0; i < hists.size(); ++i) {
    snap.histograms.push_back(
        {hists[i], histogram_value(HistogramId{i}), histogram_sum(HistogramId{i})});
  }
  return snap;
}

std::string MetricsRegistry::text_report() const {
  const Snapshot snap = snapshot();
  std::size_t width = 0;
  for (const auto& [name, _] : snap.counters) width = std::max(width, name.size());
  for (const auto& [name, _] : snap.gauges) width = std::max(width, name.size());
  for (const auto& h : snap.histograms) width = std::max(width, h.name.size());

  std::ostringstream os;
  os << std::fixed;
  for (const auto& [name, value] : snap.counters) {
    os << "  " << std::left << std::setw(static_cast<int>(width)) << name << "  " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    os << "  " << std::left << std::setw(static_cast<int>(width)) << name << "  "
       << std::setprecision(3) << value << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::uint64_t n = h.histogram.total();
    const double mean = n > 0 ? h.sum / static_cast<double>(n) : 0.0;
    os << "  " << std::left << std::setw(static_cast<int>(width)) << h.name << "  count=" << n
       << std::setprecision(4) << " mean=" << mean << " p50=" << bucket_quantile(h.histogram, 0.50)
       << " p90=" << bucket_quantile(h.histogram, 0.90)
       << " p99=" << bucket_quantile(h.histogram, 0.99) << "\n";
  }
  return os.str();
}

void MetricsRegistry::to_jsonl(std::ostream& os) const {
  const Snapshot snap = snapshot();
  for (const auto& [name, value] : snap.counters) {
    os << R"({"metric":")" << name << R"(","type":"counter","value":)" << value << "}\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    os << R"({"metric":")" << name << R"(","type":"gauge","value":)" << value << "}\n";
  }
  for (const auto& h : snap.histograms) {
    os << R"({"metric":")" << h.name << R"(","type":"histogram","lo":)" << h.histogram.lo()
       << R"(,"hi":)" << h.histogram.hi() << R"(,"counts":[)";
    for (std::size_t i = 0; i < h.histogram.bucket_count(); ++i) {
      if (i != 0) os << ',';
      os << h.histogram.bucket(i);
    }
    os << R"(],"underflow":)" << h.histogram.underflow() << R"(,"overflow":)"
       << h.histogram.overflow() << R"(,"count":)" << h.histogram.total() << R"(,"sum":)"
       << h.sum << "}\n";
  }
}

std::size_t MetricsRegistry::shard_count() const {
  util::LockGuard lock(mu_);
  return shards_.size();
}

}  // namespace erms::obs
