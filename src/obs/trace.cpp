#include "obs/trace.h"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace erms::obs {

const char* to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kClassify: return "classify";
    case ActionKind::kReplicaIncrease: return "replica_increase";
    case ActionKind::kReplicaDecrease: return "replica_decrease";
    case ActionKind::kEncode: return "encode";
    case ActionKind::kDecode: return "decode";
    case ActionKind::kOverload: return "overload";
    case ActionKind::kCommission: return "commission";
    case ActionKind::kPowerDown: return "power_down";
    case ActionKind::kSetReplication: return "set_replication";
    case ActionKind::kClusterEncode: return "cluster_encode";
    case ActionKind::kClusterDecode: return "cluster_decode";
    case ActionKind::kRereplication: return "rereplication";
    case ActionKind::kNodeFailure: return "node_failure";
    case ActionKind::kFlowAborted: return "flow_aborted";
    case ActionKind::kNodeRecovered: return "node_recovered";
    case ActionKind::kJobRetry: return "job_retry";
    case ActionKind::kFaultInjected: return "fault_injected";
  }
  return "unknown";
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

}  // namespace

std::string TraceEvent::to_json() const {
  std::string out;
  out.reserve(192);
  out += R"({"seq":)" + std::to_string(seq);
  out += R"(,"t_us":)" + std::to_string(at.micros());
  out += R"(,"kind":")";
  out += to_string(kind);
  out += '"';
  if (!path.empty()) out += R"(,"path":")" + json_escape(path) + '"';
  if (node >= 0) out += R"(,"node":)" + std::to_string(node);
  if (block >= 0) out += R"(,"block":)" + std::to_string(block);
  if (rule != 0) out += R"(,"rule":)" + std::to_string(rule);
  if (trigger != 0.0 || threshold != 0.0) {
    out += R"(,"trigger":)";
    append_number(out, trigger);
    out += R"(,"threshold":)";
    append_number(out, threshold);
  }
  if (!from.empty()) out += R"(,"from":")" + json_escape(from) + '"';
  if (!to.empty()) out += R"(,"to":")" + json_escape(to) + '"';
  if (rep_before >= 0) out += R"(,"rep_before":)" + std::to_string(rep_before);
  if (rep_after >= 0) out += R"(,"rep_after":)" + std::to_string(rep_after);
  if (bytes_moved > 0) out += R"(,"bytes_moved":)" + std::to_string(bytes_moved);
  if (count > 0) out += R"(,"count":)" + std::to_string(count);
  if (queue_wait.micros() > 0) out += R"(,"queue_wait_us":)" + std::to_string(queue_wait.micros());
  if (exec_span.micros() > 0) out += R"(,"exec_us":)" + std::to_string(exec_span.micros());
  if (job >= 0) out += R"(,"job":)" + std::to_string(job);
  if (!outcome.empty()) out += R"(,"outcome":")" + json_escape(outcome) + '"';
  if (!targets.empty()) {
    out += R"(,"targets":[)";
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(targets[i]);
    }
    out += ']';
  }
  if (!codec.empty()) out += R"(,"codec":")" + json_escape(codec) + '"';
  if (!band.empty()) out += R"(,"band":")" + json_escape(band) + '"';
  if (bytes_read > 0) out += R"(,"bytes_read":)" + std::to_string(bytes_read);
  out += '}';
  return out;
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceRing::record(TraceEvent event) {
  util::LockGuard lock(mu_);
  event.seq = next_seq_++;
  if (size_ < capacity_) {
    ring_.push_back(std::move(event));
    ++size_;
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
  }
}

std::size_t TraceRing::size() const {
  util::LockGuard lock(mu_);
  return size_;
}

std::uint64_t TraceRing::recorded() const {
  util::LockGuard lock(mu_);
  return next_seq_ - 1;
}

std::uint64_t TraceRing::dropped() const {
  util::LockGuard lock(mu_);
  return (next_seq_ - 1) - size_;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  util::LockGuard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

void TraceRing::to_jsonl(std::ostream& os) const {
  for (const auto& event : snapshot()) {
    os << event.to_json() << '\n';
  }
}

void TraceRing::restore(std::vector<TraceEvent> events, std::uint64_t next_seq) {
  util::LockGuard lock(mu_);
  // Over-capacity input keeps only the newest, exactly like live recording
  // would have. While not yet full, record() appends at ring_[size_], so the
  // vector length must track size_ exactly.
  const std::size_t keep = std::min(events.size(), capacity_);
  const std::size_t first = events.size() - keep;
  ring_.clear();
  ring_.reserve(capacity_);
  for (std::size_t i = 0; i < keep; ++i) {
    ring_.push_back(std::move(events[first + i]));
  }
  head_ = 0;
  size_ = keep;
  next_seq_ = next_seq;
}

}  // namespace erms::obs
