#include "obs/observability.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace erms::obs {

Observability::Observability(std::size_t trace_capacity) : trace_(trace_capacity) {}

std::string Observability::text_report() const {
  std::ostringstream os;
  os << "metrics:\n" << registry_.text_report();
  os << "trace: " << trace_.recorded() << " events recorded, " << trace_.size() << " retained, "
     << trace_.dropped() << " dropped (capacity " << trace_.capacity() << ")\n";
  return os.str();
}

bool Observability::export_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  trace_.to_jsonl(out);
  return static_cast<bool>(out);
}

const char* Observability::env_trace_path() {
  const char* path = std::getenv("ERMS_TRACE_PATH");
  if (path == nullptr || path[0] == '\0') return nullptr;
  return path;
}

}  // namespace erms::obs
