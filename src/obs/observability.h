#pragma once

#include <string>

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace erms::obs {

/// The bundle instrumented components receive: one metrics registry plus one
/// action-trace ring. Components hold a raw `Observability*` (null when
/// observability is disabled) and pre-resolve their metric ids once in
/// `set_observability`, so the disabled path costs a single pointer test.
class Observability {
 public:
  explicit Observability(std::size_t trace_capacity = 4096);

  [[nodiscard]] MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }
  [[nodiscard]] TraceRing& trace() { return trace_; }
  [[nodiscard]] const TraceRing& trace() const { return trace_; }

  /// Metrics dump followed by trace tail statistics — for example programs.
  [[nodiscard]] std::string text_report() const;

  /// Write the whole trace ring as JSONL to `path`. Returns false if the
  /// file could not be written.
  bool export_trace(const std::string& path) const;

  /// Value of the ERMS_TRACE_PATH env knob, or nullptr when unset/empty.
  static const char* env_trace_path();

 private:
  MetricsRegistry registry_;
  TraceRing trace_;
};

}  // namespace erms::obs
