#include "judge/feed.h"

#include <cstdlib>

#include "cep/epl_parser.h"

namespace erms::judge {

namespace {

std::string window_clause(sim::SimDuration window) {
  return " WINDOW TIME " + std::to_string(window.seconds()) + "s";
}

}  // namespace

AccessStatsFeed::AccessStatsFeed(cep::EngineBase& engine, sim::SimDuration window)
    : engine_(engine),
      // The judge's three standing queries, written in the engine's EPL.
      file_query_(engine.register_query(cep::parse_epl(
          "SELECT count(*) AS n FROM audit WHERE cmd == \"open\" GROUP BY src" +
          window_clause(window)))),
      block_query_(engine.register_query(cep::parse_epl(
          "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY src, blk" +
          window_clause(window)))),
      node_query_(engine.register_query(cep::parse_epl(
          "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY dn" +
          window_clause(window)))),
      file_node_query_(engine.register_query(cep::parse_epl(
          "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY src, dn" +
          window_clause(window)))),
      slots_(audit::AuditSlots::resolve(engine.attr_symbols(), engine.stream_symbols())) {}

void AccessStatsFeed::on_audit(const audit::AuditEvent& event) {
  ++events_ingested_;
  if (event.cmd == "open" || event.cmd == "read") {
    last_access_[event.src] = event.time;
  }
  event.to_slotted(slots_, scratch_);
  engine_.push_slotted(scratch_);
}

void AccessStatsFeed::advance_to(sim::SimTime now) { engine_.advance_to(now); }

std::uint64_t AccessStatsFeed::file_accesses(const std::string& path) const {
  const auto row = engine_.group_row(file_query_, {path});
  if (!row) {
    return 0;
  }
  return static_cast<std::uint64_t>(row->values.get_int("n").value_or(0));
}

std::unordered_map<std::string, std::uint64_t> AccessStatsFeed::all_file_accesses() const {
  std::unordered_map<std::string, std::uint64_t> out;
  for (const cep::ResultRow& row : engine_.snapshot(file_query_)) {
    const auto path = row.values.get_string("src");
    const auto n = row.values.get_int("n");
    if (path && n) {
      out[*path] = static_cast<std::uint64_t>(*n);
    }
  }
  return out;
}

std::unordered_map<std::int64_t, std::uint64_t> AccessStatsFeed::block_accesses(
    const std::string& path) const {
  std::unordered_map<std::int64_t, std::uint64_t> out;
  for (const cep::ResultRow& row : engine_.snapshot(block_query_)) {
    const auto src = row.values.get_string("src");
    if (!src || *src != path) {
      continue;
    }
    const auto blk = row.values.get_string("blk");  // group keys render as strings
    const auto n = row.values.get_int("n");
    if (blk && n && !blk->empty()) {
      out[std::strtoll(blk->c_str(), nullptr, 10)] = static_cast<std::uint64_t>(*n);
    }
  }
  return out;
}

std::unordered_map<std::int64_t, std::uint64_t> AccessStatsFeed::node_accesses() const {
  std::unordered_map<std::int64_t, std::uint64_t> out;
  for (const cep::ResultRow& row : engine_.snapshot(node_query_)) {
    const auto dn = row.values.get_string("dn");
    const auto n = row.values.get_int("n");
    if (dn && n && !dn->empty()) {
      out[std::strtoll(dn->c_str(), nullptr, 10)] = static_cast<std::uint64_t>(*n);
    }
  }
  return out;
}

std::unordered_map<std::string, std::uint64_t> AccessStatsFeed::file_accesses_on_node(
    std::int64_t datanode) const {
  std::unordered_map<std::string, std::uint64_t> out;
  const std::string want = std::to_string(datanode);
  for (const cep::ResultRow& row : engine_.snapshot(file_node_query_)) {
    const auto dn = row.values.get_string("dn");
    if (!dn || *dn != want) {
      continue;
    }
    const auto src = row.values.get_string("src");
    const auto n = row.values.get_int("n");
    if (src && n) {
      out[*src] = static_cast<std::uint64_t>(*n);
    }
  }
  return out;
}

sim::SimTime AccessStatsFeed::last_access(const std::string& path) const {
  const auto it = last_access_.find(path);
  return it == last_access_.end() ? sim::SimTime{0} : it->second;
}

std::vector<std::string> AccessStatsFeed::active_paths() const {
  std::vector<std::string> out;
  for (const cep::ResultRow& row : engine_.snapshot(file_query_)) {
    if (const auto path = row.values.get_string("src")) {
      out.push_back(*path);
    }
  }
  return out;
}

}  // namespace erms::judge
