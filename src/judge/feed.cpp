#include "judge/feed.h"

#include <algorithm>
#include <charconv>
#include <string>

#include "cep/epl_parser.h"
#include "snapshot/codec.h"

namespace erms::judge {

namespace {

std::string window_clause(sim::SimDuration window) {
  return " WINDOW TIME " + std::to_string(window.seconds()) + "s";
}

/// Group keys render ints as decimal strings; parse one back to a FileId.
/// Returns FileId{0} (never a valid id) for empty/garbage keys.
hdfs::FileId parse_fid(const std::string& key) {
  hdfs::FileId::rep_type v = 0;
  std::from_chars(key.data(), key.data() + key.size(), v);
  return hdfs::FileId{v};
}

std::int64_t parse_i64(const std::string& key) {
  std::int64_t v = 0;
  std::from_chars(key.data(), key.data() + key.size(), v);
  return v;
}

}  // namespace

AccessStatsFeed::AccessStatsFeed(cep::EngineBase& engine, sim::SimDuration window)
    : engine_(engine),
      // The judge's standing queries, written in the engine's EPL. All
      // grouping is by the interned fid — a short decimal key — instead of
      // the path string.
      file_query_(engine.register_query(cep::parse_epl(
          "SELECT count(*) AS n FROM audit WHERE cmd == \"open\" GROUP BY fid" +
          window_clause(window)))),
      block_query_(engine.register_query(cep::parse_epl(
          "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY fid, blk" +
          window_clause(window)))),
      node_query_(engine.register_query(cep::parse_epl(
          "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY dn" +
          window_clause(window)))),
      file_node_query_(engine.register_query(cep::parse_epl(
          "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY fid, dn" +
          window_clause(window)))),
      slots_(audit::AuditSlots::resolve(engine.attr_symbols(), engine.stream_symbols())) {}

void AccessStatsFeed::on_audit(const audit::AuditEvent& event) {
  ++events_ingested_;
  if (event.fid > 0 && (event.cmd == "open" || event.cmd == "read")) {
    const auto idx = static_cast<std::size_t>(event.fid);
    if (last_access_.size() <= idx) {
      last_access_.resize(idx + 1);
    }
    last_access_[idx] = event.time;
  }
  event.to_slotted(slots_, scratch_);
  engine_.push_slotted(scratch_);
}

void AccessStatsFeed::on_audit_batch(const audit::AuditEvent* events, std::size_t count) {
  // Feed the engine in bounded chunks: the engine runs each chunk through
  // every query, so a chunk that fits in cache is read hot on every pass
  // where an unbounded batch would stream from memory each time. Chunk
  // boundaries are unobservable — push_batch(a+b) ≡ push_batch(a),
  // push_batch(b) — so any caller batch size yields identical state.
  constexpr std::size_t kEngineChunk = 4096;
  for (std::size_t base = 0; base < count; base += kEngineChunk) {
    const std::size_t n = std::min(kEngineChunk, count - base);
    batch_.clear();  // keeps the slotted events' capacity for reuse
    for (std::size_t i = 0; i < n; ++i) {
      const audit::AuditEvent& event = events[base + i];
      ++events_ingested_;
      if (event.fid > 0 && (event.cmd == "open" || event.cmd == "read")) {
        const auto idx = static_cast<std::size_t>(event.fid);
        if (last_access_.size() <= idx) {
          last_access_.resize(idx + 1);
        }
        last_access_[idx] = event.time;
      }
      event.to_slotted(slots_, batch_.emplace_back());
    }
    engine_.push_batch(batch_);
  }
}

void AccessStatsFeed::advance_to(sim::SimTime now) { engine_.advance_to(now); }

std::uint64_t AccessStatsFeed::file_accesses(hdfs::FileId file) const {
  const auto row = engine_.group_row(file_query_, {std::to_string(file.value())});
  if (!row) {
    return 0;
  }
  return static_cast<std::uint64_t>(row->values.get_int("n").value_or(0));
}

void AccessStatsFeed::for_each_file_access(
    const std::function<void(hdfs::FileId, std::uint64_t)>& fn,
    cep::GroupOrder order) const {
  engine_.for_each_group_count(
      file_query_,
      [&](const std::vector<std::string>& key, std::uint64_t n) {
        const hdfs::FileId fid = parse_fid(key[0]);
        if (fid.value() != 0) {
          fn(fid, n);
        }
      },
      order);
}

void AccessStatsFeed::for_each_block_access(
    const std::function<void(hdfs::FileId, std::int64_t, std::uint64_t)>& fn,
    cep::GroupOrder order) const {
  engine_.for_each_group_count(
      block_query_,
      [&](const std::vector<std::string>& key, std::uint64_t n) {
        const hdfs::FileId fid = parse_fid(key[0]);
        if (fid.value() != 0 && !key[1].empty()) {
          fn(fid, parse_i64(key[1]), n);
        }
      },
      order);
}

void AccessStatsFeed::for_each_node_access(
    const std::function<void(std::int64_t, std::uint64_t)>& fn) const {
  engine_.for_each_group_count(
      node_query_, [&](const std::vector<std::string>& key, std::uint64_t n) {
        if (!key[0].empty()) {
          fn(parse_i64(key[0]), n);
        }
      });
}

void AccessStatsFeed::for_each_file_node_access(
    const std::function<void(hdfs::FileId, std::int64_t, std::uint64_t)>& fn) const {
  engine_.for_each_group_count(
      file_node_query_, [&](const std::vector<std::string>& key, std::uint64_t n) {
        const hdfs::FileId fid = parse_fid(key[0]);
        if (fid.value() != 0 && !key[1].empty()) {
          fn(fid, parse_i64(key[1]), n);
        }
      });
}

void AccessStatsFeed::for_each_file_access_on_node(
    std::int64_t datanode,
    const std::function<void(hdfs::FileId, std::uint64_t)>& fn) const {
  const std::string want = std::to_string(datanode);
  engine_.for_each_group_count(
      file_node_query_, [&](const std::vector<std::string>& key, std::uint64_t n) {
        if (key[1] != want) {
          return;
        }
        const hdfs::FileId fid = parse_fid(key[0]);
        if (fid.value() != 0) {
          fn(fid, n);
        }
      });
}

sim::SimTime AccessStatsFeed::last_access(hdfs::FileId file) const {
  if (file.value() >= last_access_.size()) {
    return sim::SimTime{0};
  }
  return last_access_[file.value()];
}

std::vector<hdfs::FileId> AccessStatsFeed::active_files() const {
  std::vector<hdfs::FileId> out;
  for_each_file_access([&](hdfs::FileId fid, std::uint64_t) { out.push_back(fid); });
  return out;
}

void AccessStatsFeed::save_state(snapshot::Writer& w) const {
  w.u64(last_access_.size());
  for (const sim::SimTime t : last_access_) w.i64(t.micros());
  w.u64(events_ingested_);
}

void AccessStatsFeed::load_state(snapshot::Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.require(n <= r.remaining() / sizeof(std::int64_t) + 1, "last-access table size")) return;
  last_access_.clear();
  last_access_.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    last_access_.push_back(sim::SimTime{r.i64()});
  }
  events_ingested_ = r.u64();
}

}  // namespace erms::judge
