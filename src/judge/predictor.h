#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "hdfs/types.h"
#include "judge/judge.h"
#include "sim/time.h"

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::judge {

/// Trend-based access prediction — the paper's future work ("we plan to
/// investigate more effective solutions to detect and predict the real-time
/// data types", §V). Each file's windowed access count is smoothed with a
/// double (Holt) exponential filter: a level plus a trend. Extrapolating one
/// horizon ahead lets ERMS start commissioning standby nodes and copying
/// replicas *before* formula (1) would fire, hiding the ~30 s node-startup
/// plus transfer latency.
///
/// State is a dense vector indexed by FileId — three doubles per slot, no
/// per-file hashing or node allocation, so tracking millions of files costs
/// flat, contiguous memory.
class AccessPredictor {
 public:
  struct Config {
    /// Smoothing factor for the level (0..1; higher = more reactive).
    double alpha = 0.5;
    /// Smoothing factor for the trend.
    double beta = 0.3;
    /// How far ahead to extrapolate, in observation periods.
    double horizon_periods = 2.0;
  };

  AccessPredictor() : AccessPredictor(Config{}) {}
  explicit AccessPredictor(Config config) : config_(config) {}

  /// Record one observation period's access count for `file`.
  void observe(hdfs::FileId file, double accesses);

  /// Pre-size the state vector for ids below `bound`. After this, observe()
  /// calls for distinct files below the bound touch only their own slot (plus
  /// the atomic tracked counter), so a parallel sweep may call them
  /// concurrently from different ranges.
  void reserve(std::size_t bound);

  /// Predicted access count `horizon_periods` ahead; 0 for unseen files.
  /// Never negative.
  [[nodiscard]] double predict(hdfs::FileId file) const;

  /// Current smoothed level / trend (for introspection and tests).
  [[nodiscard]] double level(hdfs::FileId file) const;
  [[nodiscard]] double trend(hdfs::FileId file) const;

  /// Forget a file (deleted).
  void forget(hdfs::FileId file);

  [[nodiscard]] std::size_t tracked_files() const {
    return tracked_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Snapshot support (src/snapshot/): the dense level/trend table, with
  /// doubles stored as raw bit patterns.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct State {
    double level{0.0};
    double trend{0.0};
    bool primed{false};
  };
  [[nodiscard]] const State* state_for(hdfs::FileId file) const;

  Config config_;
  std::vector<State> state_;  // index = file.value(); slot 0 unused
  std::atomic<std::size_t> tracked_{0};
};

/// Wraps a DataJudge with prediction: classification uses the *larger* of
/// the observed and predicted access counts, so rising files are promoted
/// early, while cooling decisions still use observed counts only (we never
/// drop replicas on a forecast).
class PredictiveJudge {
 public:
  explicit PredictiveJudge(Thresholds thresholds)
      : PredictiveJudge(thresholds, AccessPredictor::Config{}) {}
  PredictiveJudge(Thresholds thresholds, AccessPredictor::Config predictor_config)
      : judge_(thresholds), predictor_(predictor_config) {}

  /// Feed one evaluation period's observation and classify.
  [[nodiscard]] Classification classify(const FileObservation& obs, sim::SimTime now,
                                        std::uint32_t default_replication,
                                        std::uint32_t max_replication);

  [[nodiscard]] DataJudge& judge() { return judge_; }
  [[nodiscard]] AccessPredictor& predictor() { return predictor_; }

  /// How many classifications were upgraded to hot purely by the forecast.
  [[nodiscard]] std::uint64_t predictive_promotions() const {
    return predictive_promotions_;
  }

 private:
  DataJudge judge_;
  AccessPredictor predictor_;
  std::uint64_t predictive_promotions_{0};
};

}  // namespace erms::judge
