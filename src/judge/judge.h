#pragma once

#include <cstdint>
#include <vector>

#include "hdfs/types.h"
#include "judge/thresholds.h"
#include "sim/time.h"

namespace erms::judge {

/// Windowed access statistics for one file, as gathered from the CEP engine.
/// Keyed by the interned FileId — the judge never touches path strings.
struct FileObservation {
  hdfs::FileId file;
  /// N_d — accesses to the file within the window.
  std::uint64_t accesses{0};
  /// N_bi — accesses to each block within the window (index-aligned with
  /// the file's blocks; may be shorter if some blocks were untouched).
  std::vector<std::uint64_t> block_accesses;
  /// n_d — the file's block count.
  std::size_t block_count{0};
  /// r — the file's current replication factor.
  std::uint32_t replication{1};
  /// T_a — last time the file was accessed (any window).
  sim::SimTime last_access;
};

/// Outcome of classifying one file.
struct Classification {
  DataType type{DataType::kNormal};
  /// Which formula fired: 1-3 → hot, 5 → cooled, 6 → cold, 0 → normal.
  int rule{0};
  /// For hot data, the replication factor ERMS should raise the file to
  /// ("ERMS figures out optimal replica for hot data, and then increase the
  /// extra replicas directly" — §IV.C).
  std::uint32_t optimal_replication{0};
  /// The measured value the firing rule compared (e.g. N_d/r for rules 1, 5,
  /// 6; max N_bi/r for rule 2; the intense-block fraction for rule 3) and
  /// the threshold it was compared against — recorded so an action trace can
  /// show *why* a classification happened. Both 0 when no rule fired.
  double trigger{0.0};
  double threshold{0.0};
};

/// The Data Judge: applies formulas (1)-(6) to windowed access statistics.
/// Pure logic — unit-testable without a cluster or CEP engine.
class DataJudge {
 public:
  explicit DataJudge(Thresholds thresholds);

  [[nodiscard]] const Thresholds& thresholds() const { return thresholds_; }
  void set_thresholds(Thresholds t);

  /// Classify one file at time `now`. `default_replication` is r_D;
  /// `max_replication` bounds the optimal factor (p+q live nodes).
  [[nodiscard]] Classification classify(const FileObservation& obs, sim::SimTime now,
                                        std::uint32_t default_replication,
                                        std::uint32_t max_replication) const;

  /// Formula (4): is a datanode overloaded given Σ_i N_bi·r_bi — the total
  /// replica-weighted access count of blocks it serves?
  [[nodiscard]] bool node_overloaded(double weighted_accesses) const {
    return weighted_accesses > thresholds_.tau_DN;
  }

  /// Smallest replication factor r with N_d/r ≤ τ_M and max_i N_bi/r ≤ M_M,
  /// clamped to [default_replication, max_replication].
  [[nodiscard]] std::uint32_t optimal_replication(const FileObservation& obs,
                                                  std::uint32_t default_replication,
                                                  std::uint32_t max_replication) const;

  /// Recalibrate τ_M from a measured per-replica session capacity — "ERMS
  /// could dynamically change these thresholds based on system
  /// environments" (§III.C). Scales the other access thresholds
  /// proportionally.
  void calibrate(double measured_sessions_per_replica);

 private:
  Thresholds thresholds_;
};

}  // namespace erms::judge
