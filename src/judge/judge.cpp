#include "judge/judge.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace erms::judge {

DataJudge::DataJudge(Thresholds thresholds) : thresholds_(thresholds) {
  assert(thresholds_.valid());
}

void DataJudge::set_thresholds(Thresholds t) {
  assert(t.valid());
  thresholds_ = t;
}

std::uint32_t DataJudge::optimal_replication(const FileObservation& obs,
                                             std::uint32_t default_replication,
                                             std::uint32_t max_replication) const {
  // r must absorb the file-level load (formula 1 inverted) ...
  double needed = static_cast<double>(obs.accesses) / thresholds_.tau_M;
  // ... and the hottest block's load (formula 2 inverted).
  for (const std::uint64_t nb : obs.block_accesses) {
    needed = std::max(needed, static_cast<double>(nb) / thresholds_.M_M);
  }
  auto r = static_cast<std::uint32_t>(std::ceil(needed));
  r = std::max(r, default_replication);
  r = std::min(r, max_replication);
  return r;
}

Classification DataJudge::classify(const FileObservation& obs, sim::SimTime now,
                                   std::uint32_t default_replication,
                                   std::uint32_t max_replication) const {
  Classification result;
  const double r = std::max<double>(1.0, obs.replication);
  const double per_replica = static_cast<double>(obs.accesses) / r;

  // Formula (1): N_d / r > τ_M — the average per-replica load is too high.
  if (per_replica > thresholds_.tau_M) {
    result.type = DataType::kHot;
    result.rule = 1;
    result.trigger = per_replica;
    result.threshold = thresholds_.tau_M;
    result.optimal_replication = optimal_replication(obs, default_replication, max_replication);
    return result;
  }

  // Formula (2): ∃ i: N_bi / r > M_M — one block is a hotspot even though
  // the file-level average looks regular.
  for (const std::uint64_t nb : obs.block_accesses) {
    if (static_cast<double>(nb) / r > thresholds_.M_M) {
      result.type = DataType::kHot;
      result.rule = 2;
      result.trigger = static_cast<double>(nb) / r;
      result.threshold = thresholds_.M_M;
      result.optimal_replication =
          optimal_replication(obs, default_replication, max_replication);
      return result;
    }
  }

  // Formula (3): count(N_bj / r > M_m) / n_d > ε — enough blocks are
  // intensely accessed.
  if (obs.block_count > 0) {
    std::size_t intense = 0;
    for (const std::uint64_t nb : obs.block_accesses) {
      intense += (static_cast<double>(nb) / r > thresholds_.M_m) ? 1 : 0;
    }
    const double fraction =
        static_cast<double>(intense) / static_cast<double>(obs.block_count);
    if (fraction > thresholds_.epsilon) {
      result.type = DataType::kHot;
      result.rule = 3;
      result.trigger = fraction;
      result.threshold = thresholds_.epsilon;
      result.optimal_replication =
          optimal_replication(obs, default_replication, max_replication);
      return result;
    }
  }

  // Formula (6): N_d / r < τ_m and T_n − T_a > t — rarely accessed and old.
  if (per_replica < thresholds_.tau_m && (now - obs.last_access) > thresholds_.cold_age) {
    result.type = DataType::kCold;
    result.rule = 6;
    result.trigger = per_replica;
    result.threshold = thresholds_.tau_m;
    return result;
  }

  // Formula (5): N_d / r < τ_d — over-replicated hot data has cooled down.
  // Only meaningful while the file still carries extra replicas.
  if (per_replica < thresholds_.tau_d && obs.replication > default_replication) {
    result.type = DataType::kCooled;
    result.rule = 5;
    result.trigger = per_replica;
    result.threshold = thresholds_.tau_d;
    return result;
  }

  result.type = DataType::kNormal;
  result.rule = 0;
  return result;
}

void DataJudge::calibrate(double measured_sessions_per_replica) {
  if (measured_sessions_per_replica <= 0.0) {
    return;
  }
  const double scale = measured_sessions_per_replica / thresholds_.tau_M;
  thresholds_.tau_M = measured_sessions_per_replica;
  thresholds_.tau_d *= scale;
  thresholds_.tau_m *= scale;
  thresholds_.M_M *= scale;
  thresholds_.M_m *= scale;
  thresholds_.tau_DN *= scale;
  assert(thresholds_.valid());
}

}  // namespace erms::judge
