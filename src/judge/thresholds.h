#pragma once

#include "sim/time.h"

namespace erms::judge {

/// The four data types ERMS distinguishes (paper §I): hot data is heavily
/// and concurrently accessed; cooled data is formerly hot data whose load
/// dropped; cold data is rarely accessed and old; everything else is normal.
enum class DataType { kHot, kCooled, kNormal, kCold };

[[nodiscard]] constexpr const char* to_string(DataType t) {
  switch (t) {
    case DataType::kHot:
      return "hot";
    case DataType::kCooled:
      return "cooled";
    case DataType::kNormal:
      return "normal";
    case DataType::kCold:
      return "cold";
  }
  return "?";
}

/// Classification thresholds from §III.C. All access counts are measured
/// within the CEP time window `window` (t_w in the paper); the per-replica
/// quantities in formulas (1)-(6) divide by the file's current replication
/// factor r. Invariant: 0 < tau_m < tau_d < tau_M and M_m < M_M.
struct Thresholds {
  /// τ_M — the largest access count one replica can hold (formula 1). The
  /// paper measures 8–10 concurrent sessions per replica (Fig. 8) and
  /// evaluates ERMS at τ_M ∈ {8, 6, 4} (Fig. 3).
  double tau_M = 8.0;
  /// τ_d — below this per-replica access count, hot data has cooled
  /// (formula 5).
  double tau_d = 2.0;
  /// τ_m — below this per-replica access count (and old enough), data is
  /// cold (formula 6).
  double tau_m = 0.5;
  /// τ_DN — per-datanode total weighted access count above which the node
  /// is overloaded (formula 4).
  double tau_DN = 40.0;
  /// M_M — the per-block per-replica access count that alone marks a file
  /// hot (formula 2: locality hotspots inside a file).
  double M_M = 12.0;
  /// M_m — the lower per-block bound used with ε (formula 3), M_m < M_M.
  double M_m = 6.0;
  /// ε — fraction of a file's blocks that must exceed M_m for formula 3.
  double epsilon = 0.5;
  /// t — minimum time since last access before data may be cold (formula 6).
  sim::SimDuration cold_age = sim::hours(24.0);
  /// t_w — CEP sliding window length over the audit stream.
  sim::SimDuration window = sim::seconds(60.0);

  [[nodiscard]] bool valid() const {
    return tau_m > 0.0 && tau_m < tau_d && tau_d < tau_M && M_m < M_M && epsilon > 0.0 &&
           epsilon < 1.0 && tau_DN > 0.0 && cold_age.micros() > 0 && window.micros() > 0;
  }
};

}  // namespace erms::judge
