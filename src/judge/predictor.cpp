#include "judge/predictor.h"

#include <algorithm>

#include "snapshot/codec.h"

namespace erms::judge {

void AccessPredictor::save_state(snapshot::Writer& w) const {
  w.u64(state_.size());
  for (const State& s : state_) {
    w.f64(s.level);
    w.f64(s.trend);
    w.u8(s.primed ? 1 : 0);
  }
  w.u64(tracked_.load(std::memory_order_relaxed));
}

void AccessPredictor::load_state(snapshot::Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.require(n <= r.remaining() / 17 + 1, "predictor table size")) return;
  state_.clear();
  state_.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    State s;
    s.level = r.f64();
    s.trend = r.f64();
    s.primed = r.u8() != 0;
    state_.push_back(s);
  }
  tracked_.store(r.u64(), std::memory_order_relaxed);
}

void AccessPredictor::observe(hdfs::FileId file, double accesses) {
  if (state_.size() <= file.value()) {
    state_.resize(file.value() + 1);
  }
  State& s = state_[file.value()];
  if (!s.primed) {
    s.level = accesses;
    s.trend = 0.0;
    s.primed = true;
    tracked_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double previous_level = s.level;
  s.level = config_.alpha * accesses + (1.0 - config_.alpha) * (s.level + s.trend);
  s.trend = config_.beta * (s.level - previous_level) + (1.0 - config_.beta) * s.trend;
}

void AccessPredictor::reserve(std::size_t bound) {
  if (state_.size() < bound) {
    state_.resize(bound);
  }
}

const AccessPredictor::State* AccessPredictor::state_for(hdfs::FileId file) const {
  if (file.value() >= state_.size() || !state_[file.value()].primed) {
    return nullptr;
  }
  return &state_[file.value()];
}

double AccessPredictor::predict(hdfs::FileId file) const {
  const State* s = state_for(file);
  if (s == nullptr) {
    return 0.0;
  }
  return std::max(0.0, s->level + config_.horizon_periods * s->trend);
}

double AccessPredictor::level(hdfs::FileId file) const {
  const State* s = state_for(file);
  return s == nullptr ? 0.0 : s->level;
}

double AccessPredictor::trend(hdfs::FileId file) const {
  const State* s = state_for(file);
  return s == nullptr ? 0.0 : s->trend;
}

void AccessPredictor::forget(hdfs::FileId file) {
  if (file.value() < state_.size() && state_[file.value()].primed) {
    state_[file.value()] = State{};
    tracked_.fetch_sub(1, std::memory_order_relaxed);
  }
}

Classification PredictiveJudge::classify(const FileObservation& obs, sim::SimTime now,
                                         std::uint32_t default_replication,
                                         std::uint32_t max_replication) {
  predictor_.observe(obs.file, static_cast<double>(obs.accesses));

  const Classification observed =
      judge_.classify(obs, now, default_replication, max_replication);

  // Re-classify with the forecast count. Only the *hot* outcome (and a
  // higher optimal factor) may be taken from the forecast: cooling and
  // encoding always wait for real counts.
  const double predicted = predictor_.predict(obs.file);
  if (predicted > static_cast<double>(obs.accesses)) {
    // Scale the whole observation by the forecast ratio so the block-level
    // rules (2) and (3) see the rise too.
    const double ratio = predicted / std::max(1.0, static_cast<double>(obs.accesses));
    FileObservation boosted = obs;
    boosted.accesses = static_cast<std::uint64_t>(predicted);
    for (std::uint64_t& nb : boosted.block_accesses) {
      nb = static_cast<std::uint64_t>(static_cast<double>(nb) * ratio);
    }
    const Classification forecast =
        judge_.classify(boosted, now, default_replication, max_replication);
    const bool upgrades = forecast.type == DataType::kHot &&
                          (observed.type != DataType::kHot ||
                           forecast.optimal_replication > observed.optimal_replication);
    if (upgrades) {
      ++predictive_promotions_;
      return forecast;
    }
  }
  return observed;
}

}  // namespace erms::judge
