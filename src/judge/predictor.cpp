#include "judge/predictor.h"

#include <algorithm>

namespace erms::judge {

void AccessPredictor::observe(const std::string& path, double accesses) {
  State& s = state_[path];
  if (!s.primed) {
    s.level = accesses;
    s.trend = 0.0;
    s.primed = true;
    return;
  }
  const double previous_level = s.level;
  s.level = config_.alpha * accesses + (1.0 - config_.alpha) * (s.level + s.trend);
  s.trend = config_.beta * (s.level - previous_level) + (1.0 - config_.beta) * s.trend;
}

double AccessPredictor::predict(const std::string& path) const {
  const auto it = state_.find(path);
  if (it == state_.end() || !it->second.primed) {
    return 0.0;
  }
  return std::max(0.0, it->second.level + config_.horizon_periods * it->second.trend);
}

double AccessPredictor::level(const std::string& path) const {
  const auto it = state_.find(path);
  return it == state_.end() ? 0.0 : it->second.level;
}

double AccessPredictor::trend(const std::string& path) const {
  const auto it = state_.find(path);
  return it == state_.end() ? 0.0 : it->second.trend;
}

Classification PredictiveJudge::classify(const FileObservation& obs, sim::SimTime now,
                                         std::uint32_t default_replication,
                                         std::uint32_t max_replication) {
  predictor_.observe(obs.path, static_cast<double>(obs.accesses));

  const Classification observed =
      judge_.classify(obs, now, default_replication, max_replication);

  // Re-classify with the forecast count. Only the *hot* outcome (and a
  // higher optimal factor) may be taken from the forecast: cooling and
  // encoding always wait for real counts.
  const double predicted = predictor_.predict(obs.path);
  if (predicted > static_cast<double>(obs.accesses)) {
    // Scale the whole observation by the forecast ratio so the block-level
    // rules (2) and (3) see the rise too.
    const double ratio = predicted / std::max(1.0, static_cast<double>(obs.accesses));
    FileObservation boosted = obs;
    boosted.accesses = static_cast<std::uint64_t>(predicted);
    for (std::uint64_t& nb : boosted.block_accesses) {
      nb = static_cast<std::uint64_t>(static_cast<double>(nb) * ratio);
    }
    const Classification forecast =
        judge_.classify(boosted, now, default_replication, max_replication);
    const bool upgrades = forecast.type == DataType::kHot &&
                          (observed.type != DataType::kHot ||
                           forecast.optimal_replication > observed.optimal_replication);
    if (upgrades) {
      ++predictive_promotions_;
      return forecast;
    }
  }
  return observed;
}

}  // namespace erms::judge
