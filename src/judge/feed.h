#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/audit.h"
#include "cep/engine.h"
#include "judge/thresholds.h"

namespace erms::judge {

/// Bridges the audit stream to the Data Judge: converts audit records to CEP
/// events, registers the three continuous queries ERMS needs (per-file,
/// per-block and per-datanode access counts over the sliding time window
/// t_w), and exposes the windowed counts. This is the paper's "log parser +
/// CEP engine" pipeline assembled (§III.C).
class AccessStatsFeed {
 public:
  /// Works against any EngineBase — the scalar Engine or a ShardedEngine
  /// (the manager picks based on ErmsConfig::judge_shards).
  AccessStatsFeed(cep::EngineBase& engine, sim::SimDuration window);

  /// Consume one audit record (wire this to Cluster::set_audit_sink).
  void on_audit(const audit::AuditEvent& event);

  /// Evict expired window entries before reading counts.
  void advance_to(sim::SimTime now);

  /// N_d — file-level accesses (cmd=open) in the window, by path.
  [[nodiscard]] std::uint64_t file_accesses(const std::string& path) const;
  [[nodiscard]] std::unordered_map<std::string, std::uint64_t> all_file_accesses() const;

  /// N_bi — block-level reads (cmd=read) in the window, for path's blocks.
  [[nodiscard]] std::unordered_map<std::int64_t, std::uint64_t> block_accesses(
      const std::string& path) const;

  /// Σ N_b per datanode in the window (input to formula 4).
  [[nodiscard]] std::unordered_map<std::int64_t, std::uint64_t> node_accesses() const;

  /// Per-file read counts served by one datanode in the window — used to
  /// find "the data D that contributes the largest access to DN" when
  /// formula (4) flags an overloaded node.
  [[nodiscard]] std::unordered_map<std::string, std::uint64_t> file_accesses_on_node(
      std::int64_t datanode) const;

  /// T_a — last access (open or read) per path, across all time.
  [[nodiscard]] sim::SimTime last_access(const std::string& path) const;

  /// Paths seen in the current window (union of open/read activity).
  [[nodiscard]] std::vector<std::string> active_paths() const;

  [[nodiscard]] std::uint64_t events_ingested() const { return events_ingested_; }

 private:
  cep::EngineBase& engine_;
  cep::QueryId file_query_;
  cep::QueryId block_query_;
  cep::QueryId node_query_;
  cep::QueryId file_node_query_;
  audit::AuditSlots slots_;      // audit attrs resolved once against engine_
  cep::SlottedEvent scratch_;    // reused per on_audit: no steady-state allocs
  std::unordered_map<std::string, sim::SimTime> last_access_;
  std::uint64_t events_ingested_{0};
};

}  // namespace erms::judge
