#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "audit/audit.h"
#include "cep/engine.h"
#include "hdfs/types.h"
#include "judge/thresholds.h"

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::judge {

/// Bridges the audit stream to the Data Judge: converts audit records to CEP
/// events, registers the continuous queries ERMS needs (per-file, per-block
/// and per-datanode access counts over the sliding time window t_w), and
/// exposes the windowed counts. This is the paper's "log parser + CEP
/// engine" pipeline assembled (§III.C).
///
/// Grouping is by the audit records' interned `fid` (dense 32-bit FileId),
/// not the path string, so group keys stay short whatever the path length,
/// and readers iterate the engine's group state via callbacks instead of
/// materialising a fresh map per judge sweep.
class AccessStatsFeed {
 public:
  /// Works against any EngineBase — the scalar Engine or a ShardedEngine
  /// (the manager picks based on ErmsConfig::judge_shards).
  AccessStatsFeed(cep::EngineBase& engine, sim::SimDuration window);

  /// Consume one audit record (wire this to Cluster::set_audit_sink).
  /// Records without a `fid` still flow to the engine but carry no
  /// per-file state.
  void on_audit(const audit::AuditEvent& event);

  /// Consume a span of audit records, equivalent to on_audit on each in
  /// order. The span is converted into a reusable cep::EventBatch and handed
  /// to the engine whole — one virtual dispatch per batch, and a sharded
  /// engine splits it straight into per-shard batches (wire this to
  /// Cluster::set_audit_batch_sink).
  void on_audit_batch(const audit::AuditEvent* events, std::size_t count);

  /// Evict expired window entries before reading counts.
  void advance_to(sim::SimTime now);

  /// N_d — file-level accesses (cmd=open) in the window, for one file.
  [[nodiscard]] std::uint64_t file_accesses(hdfs::FileId file) const;

  /// Visit every (file, N_d) with open activity in the window. kSorted
  /// visits in group-key order (identical for scalar and sharded engines);
  /// kUnordered skips the per-visit sort for consumers that scatter into
  /// dense arrays. No per-sweep map is built either way.
  void for_each_file_access(
      const std::function<void(hdfs::FileId, std::uint64_t)>& fn,
      cep::GroupOrder order = cep::GroupOrder::kSorted) const;

  /// Visit every (file, block, N_bi) with read activity in the window.
  void for_each_block_access(
      const std::function<void(hdfs::FileId, std::int64_t, std::uint64_t)>& fn,
      cep::GroupOrder order = cep::GroupOrder::kSorted) const;

  /// Visit every (datanode, Σ N_b) in the window (input to formula 4).
  void for_each_node_access(
      const std::function<void(std::int64_t, std::uint64_t)>& fn) const;

  /// Visit every (file, datanode, reads) group in the window, in group-key
  /// order — one walk covering every datanode, for overload sweeps that
  /// snapshot the whole relation instead of re-walking it per node.
  void for_each_file_node_access(
      const std::function<void(hdfs::FileId, std::int64_t, std::uint64_t)>& fn) const;

  /// Visit every (file, reads served by `datanode`) in the window — used to
  /// find "the data D that contributes the largest access to DN" when
  /// formula (4) flags an overloaded node.
  void for_each_file_access_on_node(
      std::int64_t datanode,
      const std::function<void(hdfs::FileId, std::uint64_t)>& fn) const;

  /// T_a — last access (open or read) per file, across all time.
  [[nodiscard]] sim::SimTime last_access(hdfs::FileId file) const;

  /// Files seen in the current window (open activity), in id-key order.
  [[nodiscard]] std::vector<hdfs::FileId> active_files() const;

  [[nodiscard]] std::uint64_t events_ingested() const { return events_ingested_; }

  /// Snapshot support (src/snapshot/): the dense last-access table and the
  /// ingest counter. Query ids and attribute slots are re-resolved at
  /// construction, not serialised; the engine's window state is saved by
  /// the engine itself.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  cep::EngineBase& engine_;
  cep::QueryId file_query_;
  cep::QueryId block_query_;
  cep::QueryId node_query_;
  cep::QueryId file_node_query_;
  audit::AuditSlots slots_;      // audit attrs resolved once against engine_
  cep::SlottedEvent scratch_;    // reused per on_audit: no steady-state allocs
  cep::EventBatch batch_;        // reused per on_audit_batch: ditto
  std::vector<sim::SimTime> last_access_;  // dense, indexed by FileId
  std::uint64_t events_ingested_{0};
};

}  // namespace erms::judge
