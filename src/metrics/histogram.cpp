#include "metrics/histogram.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace erms::metrics {

Histogram::Histogram(double lo, double hi, std::size_t buckets) : lo_(lo), hi_(hi) {
  if (!(lo < hi) || buckets == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and buckets > 0");
  }
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%10.2f..%-10.2f %8llu |", bucket_lo(i), bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += buf;
    const auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(width));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace erms::metrics
