#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.h"

namespace erms::metrics {

/// A (time, value) series sampled from a running simulation, e.g. storage
/// utilisation over the course of an experiment (paper Fig. 5).
class TimeSeries {
 public:
  struct Point {
    sim::SimTime time;
    double value;
  };

  void record(sim::SimTime t, double value) { points_.push_back({t, value}); }

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Value at time `t` (step interpolation: last sample at or before `t`;
  /// the first sample's value if `t` precedes it). Precondition: !empty().
  [[nodiscard]] double value_at(sim::SimTime t) const;

  /// Time-weighted average over [from, to]. Precondition: !empty(), from<to.
  [[nodiscard]] double time_weighted_mean(sim::SimTime from, sim::SimTime to) const;

  /// Downsample to at most `n` evenly spaced points over the series' span
  /// (used when printing figure series).
  [[nodiscard]] std::vector<Point> resampled(std::size_t n) const;

 private:
  std::vector<Point> points_;  // non-decreasing in time
};

}  // namespace erms::metrics
