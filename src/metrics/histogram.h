#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace erms::metrics {

/// Fixed-width-bucket histogram over [lo, hi); values outside the range land
/// in underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  /// Bulk accumulation, for folding pre-counted cells (e.g. the per-thread
  /// shards of obs::MetricsRegistry) into one histogram.
  void accumulate_bucket(std::size_t i, std::uint64_t n) {
    counts_[i] += n;
    total_ += n;
  }
  void accumulate_underflow(std::uint64_t n) {
    underflow_ += n;
    total_ += n;
  }
  void accumulate_overflow(std::uint64_t n) {
    overflow_ += n;
    total_ += n;
  }

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Render an ASCII bar chart (for example programs).
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t total_{0};
};

}  // namespace erms::metrics
