#pragma once

#include <cstddef>
#include <vector>

namespace erms::metrics {

/// Streaming summary statistics (Welford's algorithm for the variance).
class StatsSummary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Exact percentile over a retained sample set (sorts on demand).
class PercentileTracker {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return values_.size(); }

  /// Percentile in [0, 100] by linear interpolation. Precondition: count()>0.
  [[nodiscard]] double percentile(double p) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_{false};
};

}  // namespace erms::metrics
