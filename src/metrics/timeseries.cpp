#include "metrics/timeseries.h"

#include <algorithm>
#include <cassert>

namespace erms::metrics {

double TimeSeries::value_at(sim::SimTime t) const {
  assert(!points_.empty());
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](sim::SimTime lhs, const Point& p) { return lhs < p.time; });
  if (it == points_.begin()) {
    return points_.front().value;
  }
  return std::prev(it)->value;
}

double TimeSeries::time_weighted_mean(sim::SimTime from, sim::SimTime to) const {
  assert(!points_.empty());
  assert(from < to);
  double area = 0.0;
  sim::SimTime cursor = from;
  double current = value_at(from);
  for (const Point& p : points_) {
    if (p.time <= from) {
      continue;
    }
    if (p.time >= to) {
      break;
    }
    area += current * (p.time - cursor).seconds();
    cursor = p.time;
    current = p.value;
  }
  area += current * (to - cursor).seconds();
  return area / (to - from).seconds();
}

std::vector<TimeSeries::Point> TimeSeries::resampled(std::size_t n) const {
  if (points_.empty() || n == 0) {
    return {};
  }
  if (points_.size() <= n) {
    return points_;
  }
  std::vector<Point> out;
  out.reserve(n);
  const sim::SimTime t0 = points_.front().time;
  const sim::SimTime t1 = points_.back().time;
  for (std::size_t i = 0; i < n; ++i) {
    const double frac = n == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    const sim::SimTime t{t0.micros() +
                         static_cast<std::int64_t>(frac * static_cast<double>((t1 - t0).micros()))};
    out.push_back({t, value_at(t)});
  }
  return out;
}

}  // namespace erms::metrics
