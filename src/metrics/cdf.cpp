#include "metrics/cdf.h"

#include <algorithm>

namespace erms::metrics {

std::vector<CdfBuilder::Point> CdfBuilder::build() const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<Point> out;
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse runs of equal values to one point at the run's end.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) {
      continue;
    }
    out.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<CdfBuilder::Point> CdfBuilder::build_uniform(std::size_t n) const {
  std::vector<Point> out;
  if (samples_.empty() || n == 0) {
    return out;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted.front();
  const double hi = sorted.back();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double frac = n == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    const double x = lo + (hi - lo) * frac;
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    out.push_back({x, static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size())});
  }
  return out;
}

}  // namespace erms::metrics
