#pragma once

#include <cstddef>
#include <vector>

namespace erms::metrics {

/// Builds an empirical CDF from samples (paper Fig. 4: CDF of data accesses
/// over time).
class CdfBuilder {
 public:
  void add(double x) { samples_.push_back(x); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  struct Point {
    double x;
    double p;  // P(X <= x)
  };

  /// The full empirical CDF (one point per distinct sample value).
  [[nodiscard]] std::vector<Point> build() const;

  /// CDF evaluated at `n` evenly spaced x positions across the sample range.
  [[nodiscard]] std::vector<Point> build_uniform(std::size_t n) const;

 private:
  std::vector<double> samples_;
};

}  // namespace erms::metrics
