#include "metrics/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace erms::metrics {

void StatsSummary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StatsSummary::mean() const { return count_ == 0 ? 0.0 : mean_; }

double StatsSummary::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double StatsSummary::stddev() const { return std::sqrt(variance()); }

double PercentileTracker::percentile(double p) const {
  assert(!values_.empty());
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (p <= 0.0) {
    return values_.front();
  }
  if (p >= 100.0) {
    return values_.back();
  }
  const double idx = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) {
    return values_.back();
  }
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

}  // namespace erms::metrics
