#include "classad/value.h"

#include <cstdio>

namespace erms::classad {

std::string Value::to_string() const {
  switch (type_) {
    case Type::kUndefined:
      return "undefined";
    case Type::kError:
      return "error";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kInt:
      return std::to_string(int_);
    case Type::kReal: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%g", real_);
      return buf;
    }
    case Type::kString:
      return '"' + string_ + '"';
  }
  return "error";
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) {
    return false;
  }
  switch (a.type_) {
    case Value::Type::kUndefined:
    case Value::Type::kError:
      return true;
    case Value::Type::kBool:
      return a.bool_ == b.bool_;
    case Value::Type::kInt:
      return a.int_ == b.int_;
    case Value::Type::kReal:
      return a.real_ == b.real_;
    case Value::Type::kString:
      return a.string_ == b.string_;
  }
  return false;
}

}  // namespace erms::classad
