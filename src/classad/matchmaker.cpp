#include "classad/matchmaker.h"

#include <algorithm>

namespace erms::classad {

bool Matchmaker::requirements_satisfied(const ClassAd& request, const ClassAd& candidate) {
  if (!request.contains("Requirements")) {
    return true;
  }
  const Value v = request.evaluate("Requirements", &candidate);
  return v.is_bool() && v.as_bool();
}

bool Matchmaker::matches(const ClassAd& a, const ClassAd& b) {
  return requirements_satisfied(a, b) && requirements_satisfied(b, a);
}

double Matchmaker::rank(const ClassAd& request, const ClassAd& candidate) {
  const Value v = request.evaluate("Rank", &candidate);
  if (v.is_number()) {
    return v.as_number();
  }
  if (v.is_bool()) {
    return v.as_bool() ? 1.0 : 0.0;
  }
  return 0.0;
}

std::optional<Matchmaker::Match> Matchmaker::best_match(
    const ClassAd& request, const std::vector<ClassAd>& candidates) {
  std::optional<Match> best;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!matches(request, candidates[i])) {
      continue;
    }
    const double r = rank(request, candidates[i]);
    if (!best || r > best->rank) {
      best = Match{i, r};
    }
  }
  return best;
}

std::vector<Matchmaker::Match> Matchmaker::all_matches(
    const ClassAd& request, const std::vector<ClassAd>& candidates) {
  std::vector<Match> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (matches(request, candidates[i])) {
      out.push_back(Match{i, rank(request, candidates[i])});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Match& a, const Match& b) { return a.rank > b.rank; });
  return out;
}

}  // namespace erms::classad
