#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace erms::classad {

/// A ClassAd value. ClassAds use three-valued logic: every expression can
/// evaluate to UNDEFINED (an attribute reference that does not resolve) or
/// ERROR (a type mismatch), and most operators propagate these.
class Value {
 public:
  enum class Type { kUndefined, kError, kBool, kInt, kReal, kString };

  Value() : type_(Type::kUndefined) {}

  static Value undefined() { return Value{}; }
  static Value error() {
    Value v;
    v.type_ = Type::kError;
    return v;
  }
  static Value boolean(bool b) {
    Value v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static Value integer(std::int64_t i) {
    Value v;
    v.type_ = Type::kInt;
    v.int_ = i;
    return v;
  }
  static Value real(double d) {
    Value v;
    v.type_ = Type::kReal;
    v.real_ = d;
    return v;
  }
  static Value string(std::string s) {
    Value v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_undefined() const { return type_ == Type::kUndefined; }
  [[nodiscard]] bool is_error() const { return type_ == Type::kError; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kInt || type_ == Type::kReal; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }

  /// Preconditions: matching type().
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const { return int_; }
  [[nodiscard]] double as_real() const { return real_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  /// Numeric promotion: int or real as double.
  [[nodiscard]] double as_number() const { return type_ == Type::kInt ? static_cast<double>(int_) : real_; }

  /// Render in ClassAd syntax (strings quoted).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b);
  friend std::ostream& operator<<(std::ostream& os, const Value& v) {
    return os << v.to_string();
  }

 private:
  Type type_;
  bool bool_{false};
  std::int64_t int_{0};
  double real_{0.0};
  std::string string_;
};

}  // namespace erms::classad
