#include "classad/classad.h"

#include <algorithm>
#include <cctype>

namespace erms::classad {

std::string ClassAd::canonical(const std::string& name) {
  std::string out = name;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

void ClassAd::insert(const std::string& name, ExprPtr expr) {
  attrs_[canonical(name)] = std::move(expr);
}

void ClassAd::insert_int(const std::string& name, std::int64_t v) {
  insert(name, literal(Value::integer(v)));
}
void ClassAd::insert_real(const std::string& name, double v) {
  insert(name, literal(Value::real(v)));
}
void ClassAd::insert_bool(const std::string& name, bool v) {
  insert(name, literal(Value::boolean(v)));
}
void ClassAd::insert_string(const std::string& name, std::string v) {
  insert(name, literal(Value::string(std::move(v))));
}

bool ClassAd::erase(const std::string& name) { return attrs_.erase(canonical(name)) > 0; }

ExprPtr ClassAd::lookup(const std::string& name) const {
  const auto it = attrs_.find(canonical(name));
  return it == attrs_.end() ? nullptr : it->second;
}

Value ClassAd::evaluate(const std::string& name, const ClassAd* target) const {
  const ExprPtr expr = lookup(name);
  if (!expr) {
    return Value::undefined();
  }
  return evaluate_expr(*expr, target);
}

Value ClassAd::evaluate_expr(const Expr& expr, const ClassAd* target) const {
  EvalContext ctx;
  ctx.my = this;
  ctx.target = target;
  return expr.evaluate(ctx);
}

std::optional<std::int64_t> ClassAd::get_int(const std::string& name,
                                             const ClassAd* target) const {
  const Value v = evaluate(name, target);
  if (v.type() == Value::Type::kInt) {
    return v.as_int();
  }
  return std::nullopt;
}

std::optional<double> ClassAd::get_real(const std::string& name, const ClassAd* target) const {
  const Value v = evaluate(name, target);
  if (v.is_number()) {
    return v.as_number();
  }
  return std::nullopt;
}

std::optional<bool> ClassAd::get_bool(const std::string& name, const ClassAd* target) const {
  const Value v = evaluate(name, target);
  if (v.is_bool()) {
    return v.as_bool();
  }
  return std::nullopt;
}

std::optional<std::string> ClassAd::get_string(const std::string& name,
                                               const ClassAd* target) const {
  const Value v = evaluate(name, target);
  if (v.is_string()) {
    return v.as_string();
  }
  return std::nullopt;
}

std::vector<std::string> ClassAd::attribute_names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& [name, expr] : attrs_) {
    out.push_back(name);
  }
  return out;
}

std::string ClassAd::unparse() const {
  std::string out = "[ ";
  for (const auto& [name, expr] : attrs_) {
    out += name + " = " + expr->unparse() + "; ";
  }
  out += "]";
  return out;
}

}  // namespace erms::classad
