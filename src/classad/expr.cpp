#include "classad/expr.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "classad/classad.h"

namespace erms::classad {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Coerce to the three-valued boolean domain: bool stays, numbers are
/// non-zero, everything else is ERROR (UNDEFINED stays UNDEFINED).
Value to_boolean(const Value& v) {
  if (v.is_undefined() || v.is_error() || v.is_bool()) {
    return v;
  }
  if (v.is_number()) {
    return Value::boolean(v.as_number() != 0.0);
  }
  return Value::error();
}

}  // namespace

Value AttrRefExpr::evaluate(EvalContext& ctx) const {
  if (ctx.depth >= EvalContext::kMaxDepth) {
    return Value::error();  // reference cycle
  }
  const ClassAd* primary = nullptr;
  const ClassAd* secondary = nullptr;
  switch (scope_) {
    case Scope::kMy:
      primary = ctx.my;
      break;
    case Scope::kTarget:
      primary = ctx.target;
      break;
    case Scope::kDefault:
      primary = ctx.my;
      secondary = ctx.target;
      break;
  }
  for (const ClassAd* ad : {primary, secondary}) {
    if (ad == nullptr) {
      continue;
    }
    if (const ExprPtr expr = ad->lookup(name_)) {
      // Re-root evaluation: inside the referenced ad, MY is that ad and
      // TARGET is the other one.
      EvalContext inner;
      inner.my = ad;
      inner.target = (ad == ctx.my) ? ctx.target : ctx.my;
      inner.depth = ctx.depth + 1;
      return expr->evaluate(inner);
    }
  }
  return Value::undefined();
}

std::string AttrRefExpr::unparse() const {
  switch (scope_) {
    case Scope::kMy:
      return "MY." + name_;
    case Scope::kTarget:
      return "TARGET." + name_;
    case Scope::kDefault:
      return name_;
  }
  return name_;
}

Value UnaryExpr::evaluate(EvalContext& ctx) const {
  const Value v = operand_->evaluate(ctx);
  switch (op_) {
    case UnaryOp::kNot: {
      const Value b = to_boolean(v);
      if (b.is_bool()) {
        return Value::boolean(!b.as_bool());
      }
      return b;  // undefined / error propagate
    }
    case UnaryOp::kMinus:
      if (v.type() == Value::Type::kInt) {
        return Value::integer(-v.as_int());
      }
      if (v.type() == Value::Type::kReal) {
        return Value::real(-v.as_real());
      }
      if (v.is_undefined()) {
        return v;
      }
      return Value::error();
  }
  return Value::error();
}

std::string UnaryExpr::unparse() const {
  return std::string(op_ == UnaryOp::kNot ? "!" : "-") + "(" + operand_->unparse() + ")";
}

Value BinaryExpr::evaluate(EvalContext& ctx) const {
  // Logical operators are non-strict in ClassAds:
  //   false && X == false,  true || X == true  for any X.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    const Value lb = to_boolean(lhs_->evaluate(ctx));
    if (lb.is_error()) {
      return lb;
    }
    const bool is_and = op_ == BinaryOp::kAnd;
    if (lb.is_bool() && lb.as_bool() == !is_and) {
      return lb;  // short circuit: false&&, true||
    }
    const Value rb = to_boolean(rhs_->evaluate(ctx));
    if (rb.is_error()) {
      return rb;
    }
    if (rb.is_bool() && rb.as_bool() == !is_and) {
      return rb;  // X && false == false, X || true == true, even X undefined
    }
    if (lb.is_undefined() || rb.is_undefined()) {
      return Value::undefined();
    }
    return Value::boolean(is_and ? (lb.as_bool() && rb.as_bool())
                                 : (lb.as_bool() || rb.as_bool()));
  }

  const Value l = lhs_->evaluate(ctx);
  const Value r = rhs_->evaluate(ctx);
  if (l.is_error() || r.is_error()) {
    return Value::error();
  }
  if (l.is_undefined() || r.is_undefined()) {
    return Value::undefined();
  }

  // String comparisons (case-insensitive, per ClassAd ==).
  if (l.is_string() && r.is_string()) {
    const int cmp = lower(l.as_string()).compare(lower(r.as_string()));
    switch (op_) {
      case BinaryOp::kEq:
        return Value::boolean(cmp == 0);
      case BinaryOp::kNe:
        return Value::boolean(cmp != 0);
      case BinaryOp::kLt:
        return Value::boolean(cmp < 0);
      case BinaryOp::kLe:
        return Value::boolean(cmp <= 0);
      case BinaryOp::kGt:
        return Value::boolean(cmp > 0);
      case BinaryOp::kGe:
        return Value::boolean(cmp >= 0);
      default:
        return Value::error();
    }
  }

  if (l.is_bool() && r.is_bool() && (op_ == BinaryOp::kEq || op_ == BinaryOp::kNe)) {
    return Value::boolean((l.as_bool() == r.as_bool()) == (op_ == BinaryOp::kEq));
  }

  if (!l.is_number() || !r.is_number()) {
    return Value::error();
  }

  const bool both_int = l.type() == Value::Type::kInt && r.type() == Value::Type::kInt;
  const double lf = l.as_number();
  const double rf = r.as_number();
  switch (op_) {
    case BinaryOp::kAdd:
      return both_int ? Value::integer(l.as_int() + r.as_int()) : Value::real(lf + rf);
    case BinaryOp::kSub:
      return both_int ? Value::integer(l.as_int() - r.as_int()) : Value::real(lf - rf);
    case BinaryOp::kMul:
      return both_int ? Value::integer(l.as_int() * r.as_int()) : Value::real(lf * rf);
    case BinaryOp::kDiv:
      if (both_int) {
        return r.as_int() == 0 ? Value::error() : Value::integer(l.as_int() / r.as_int());
      }
      return rf == 0.0 ? Value::error() : Value::real(lf / rf);
    case BinaryOp::kMod:
      if (!both_int || r.as_int() == 0) {
        return Value::error();
      }
      return Value::integer(l.as_int() % r.as_int());
    case BinaryOp::kLt:
      return Value::boolean(lf < rf);
    case BinaryOp::kLe:
      return Value::boolean(lf <= rf);
    case BinaryOp::kGt:
      return Value::boolean(lf > rf);
    case BinaryOp::kGe:
      return Value::boolean(lf >= rf);
    case BinaryOp::kEq:
      return Value::boolean(lf == rf);
    case BinaryOp::kNe:
      return Value::boolean(lf != rf);
    default:
      return Value::error();
  }
}

std::string BinaryExpr::unparse() const {
  const char* op = "?";
  switch (op_) {
    case BinaryOp::kAdd:
      op = "+";
      break;
    case BinaryOp::kSub:
      op = "-";
      break;
    case BinaryOp::kMul:
      op = "*";
      break;
    case BinaryOp::kDiv:
      op = "/";
      break;
    case BinaryOp::kMod:
      op = "%";
      break;
    case BinaryOp::kLt:
      op = "<";
      break;
    case BinaryOp::kLe:
      op = "<=";
      break;
    case BinaryOp::kGt:
      op = ">";
      break;
    case BinaryOp::kGe:
      op = ">=";
      break;
    case BinaryOp::kEq:
      op = "==";
      break;
    case BinaryOp::kNe:
      op = "!=";
      break;
    case BinaryOp::kAnd:
      op = "&&";
      break;
    case BinaryOp::kOr:
      op = "||";
      break;
  }
  return "(" + lhs_->unparse() + " " + op + " " + rhs_->unparse() + ")";
}

Value ConditionalExpr::evaluate(EvalContext& ctx) const {
  const Value c = cond_->evaluate(ctx);
  if (c.is_error() || c.is_undefined()) {
    return c;
  }
  if (!c.is_bool() && !c.is_number()) {
    return Value::error();
  }
  const bool taken = c.is_bool() ? c.as_bool() : c.as_number() != 0.0;
  return taken ? then_->evaluate(ctx) : otherwise_->evaluate(ctx);
}

std::string ConditionalExpr::unparse() const {
  return "(" + cond_->unparse() + " ? " + then_->unparse() + " : " + otherwise_->unparse() + ")";
}

Value FunctionCallExpr::evaluate(EvalContext& ctx) const {
  const std::string fn = lower(name_);
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) {
    args.push_back(a->evaluate(ctx));
  }

  auto arity = [&](std::size_t n) { return args.size() == n; };

  if (fn == "isundefined" && arity(1)) {
    return Value::boolean(args[0].is_undefined());
  }
  if (fn == "iserror" && arity(1)) {
    return Value::boolean(args[0].is_error());
  }
  // The remaining builtins propagate UNDEFINED/ERROR strictly.
  for (const Value& a : args) {
    if (a.is_error()) {
      return Value::error();
    }
    if (a.is_undefined()) {
      return Value::undefined();
    }
  }
  if (fn == "int" && arity(1) && args[0].is_number()) {
    return Value::integer(static_cast<std::int64_t>(args[0].as_number()));
  }
  if (fn == "real" && arity(1) && args[0].is_number()) {
    return Value::real(args[0].as_number());
  }
  if (fn == "floor" && arity(1) && args[0].is_number()) {
    return Value::integer(static_cast<std::int64_t>(std::floor(args[0].as_number())));
  }
  if (fn == "ceil" && arity(1) && args[0].is_number()) {
    return Value::integer(static_cast<std::int64_t>(std::ceil(args[0].as_number())));
  }
  if (fn == "round" && arity(1) && args[0].is_number()) {
    return Value::integer(static_cast<std::int64_t>(std::llround(args[0].as_number())));
  }
  if (fn == "abs" && arity(1)) {
    if (args[0].type() == Value::Type::kInt) {
      return Value::integer(std::abs(args[0].as_int()));
    }
    if (args[0].is_number()) {
      return Value::real(std::fabs(args[0].as_number()));
    }
  }
  if ((fn == "min" || fn == "max") && arity(2) && args[0].is_number() && args[1].is_number()) {
    const bool take_first = (fn == "min") == (args[0].as_number() <= args[1].as_number());
    return take_first ? args[0] : args[1];
  }
  if (fn == "strcat") {
    std::string out;
    for (const Value& a : args) {
      if (!a.is_string()) {
        return Value::error();
      }
      out += a.as_string();
    }
    return Value::string(std::move(out));
  }
  return Value::error();
}

std::string FunctionCallExpr::unparse() const {
  std::string out = name_ + "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += args_[i]->unparse();
  }
  return out + ")";
}

ExprPtr literal(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr attr_ref(std::string name) {
  return std::make_shared<AttrRefExpr>(AttrRefExpr::Scope::kDefault, std::move(name));
}

}  // namespace erms::classad
