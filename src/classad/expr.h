#pragma once

#include <memory>
#include <string>
#include <vector>

#include "classad/value.h"

namespace erms::classad {

class ClassAd;

/// Evaluation context: the ad the expression belongs to (MY) and, during
/// matchmaking, the candidate ad (TARGET). `depth` guards against reference
/// cycles between attributes.
struct EvalContext {
  const ClassAd* my = nullptr;
  const ClassAd* target = nullptr;
  int depth = 0;

  static constexpr int kMaxDepth = 64;
};

/// Immutable expression tree node. Shared (not unique) pointers because ads
/// are copied when jobs are queued and the trees are immutable.
class Expr {
 public:
  virtual ~Expr() = default;
  [[nodiscard]] virtual Value evaluate(EvalContext& ctx) const = 0;
  [[nodiscard]] virtual std::string unparse() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  [[nodiscard]] Value evaluate(EvalContext&) const override { return value_; }
  [[nodiscard]] std::string unparse() const override { return value_.to_string(); }

  [[nodiscard]] const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Attribute reference, optionally scoped: `MY.attr`, `TARGET.attr`, `attr`.
/// Unscoped references resolve in MY first, then TARGET (Condor semantics).
class AttrRefExpr final : public Expr {
 public:
  enum class Scope { kDefault, kMy, kTarget };

  AttrRefExpr(Scope scope, std::string name) : scope_(scope), name_(std::move(name)) {}

  [[nodiscard]] Value evaluate(EvalContext& ctx) const override;
  [[nodiscard]] std::string unparse() const override;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Scope scope() const { return scope_; }

 private:
  Scope scope_;
  std::string name_;
};

enum class UnaryOp { kNot, kMinus };

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand) : op_(op), operand_(std::move(operand)) {}
  [[nodiscard]] Value evaluate(EvalContext& ctx) const override;
  [[nodiscard]] std::string unparse() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] Value evaluate(EvalContext& ctx) const override;
  [[nodiscard]] std::string unparse() const override;

  [[nodiscard]] BinaryOp op() const { return op_; }
  [[nodiscard]] const ExprPtr& lhs() const { return lhs_; }
  [[nodiscard]] const ExprPtr& rhs() const { return rhs_; }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Ternary `cond ? a : b` (with ClassAd's UNDEFINED-propagating condition).
class ConditionalExpr final : public Expr {
 public:
  ConditionalExpr(ExprPtr cond, ExprPtr then, ExprPtr otherwise)
      : cond_(std::move(cond)), then_(std::move(then)), otherwise_(std::move(otherwise)) {}
  [[nodiscard]] Value evaluate(EvalContext& ctx) const override;
  [[nodiscard]] std::string unparse() const override;

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr otherwise_;
};

/// Builtin function call: isUndefined, isError, int, real, floor, ceil,
/// round, min, max, abs, strcat.
class FunctionCallExpr final : public Expr {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  [[nodiscard]] Value evaluate(EvalContext& ctx) const override;
  [[nodiscard]] std::string unparse() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

/// Convenience constructors.
ExprPtr literal(Value v);
ExprPtr attr_ref(std::string name);

}  // namespace erms::classad
