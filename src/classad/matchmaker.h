#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "classad/classad.h"

namespace erms::classad {

/// Condor-style matchmaking: two ads match when each ad's `Requirements`
/// expression evaluates to true with the other ad as TARGET. `Rank`
/// (evaluated in the requesting ad against the candidate) orders candidates.
class Matchmaker {
 public:
  /// Symmetric match test. A missing Requirements attribute counts as true
  /// (Condor's behaviour for machine ads without constraints).
  [[nodiscard]] static bool matches(const ClassAd& a, const ClassAd& b);

  /// One-sided test: does `request`'s Requirements accept `candidate`?
  [[nodiscard]] static bool requirements_satisfied(const ClassAd& request,
                                                   const ClassAd& candidate);

  /// Rank of `candidate` from `request`'s point of view; 0.0 when absent or
  /// non-numeric (Condor treats unranked matches equally).
  [[nodiscard]] static double rank(const ClassAd& request, const ClassAd& candidate);

  struct Match {
    std::size_t index;  // into the candidates vector
    double rank;
  };

  /// Best symmetric match for `request` among `candidates` (highest rank,
  /// first on ties). nullopt when none match.
  [[nodiscard]] static std::optional<Match> best_match(
      const ClassAd& request, const std::vector<ClassAd>& candidates);

  /// All symmetric matches, sorted by descending rank (stable for ties).
  [[nodiscard]] static std::vector<Match> all_matches(
      const ClassAd& request, const std::vector<ClassAd>& candidates);
};

}  // namespace erms::classad
