#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "classad/classad.h"
#include "classad/expr.h"

namespace erms::classad {

/// Thrown on malformed ClassAd text, with the byte offset of the problem.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parse a single expression, e.g. `TARGET.Memory >= 2048 && Arch == "x86_64"`.
/// Grammar (precedence low→high):
///   expr   := or ('?' expr ':' expr)?
///   or     := and ('||' and)*
///   and    := cmp ('&&' cmp)*
///   cmp    := sum (('=='|'!='|'<'|'<='|'>'|'>=') sum)*
///   sum    := term (('+'|'-') term)*
///   term   := unary (('*'|'/'|'%') unary)*
///   unary  := ('!'|'-')* primary
///   primary:= literal | ref | fn '(' args ')' | '(' expr ')'
///   ref    := [MY.|TARGET.] identifier
ExprPtr parse_expr(std::string_view input);

/// Parse a full ad: `[ attr = expr; attr2 = expr2 ]` (trailing ';' optional,
/// also accepts the bare `attr = expr` newline-free form without brackets).
ClassAd parse_classad(std::string_view input);

}  // namespace erms::classad
