#include "classad/lexer.h"

#include <cctype>
#include <cstdlib>

#include "classad/parser.h"

namespace erms::classad {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();

  auto push = [&](TokenKind kind, std::size_t at) {
    Token t;
    t.kind = kind;
    t.offset = at;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments: // to end of line.
    if (c == '/' && i + 1 < n && input[i + 1] == '/') {
      while (i < n && input[i] != '\n') {
        ++i;
      }
      continue;
    }
    const std::size_t start = i;
    if (is_ident_start(c)) {
      while (i < n && is_ident_char(input[i])) {
        ++i;
      }
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = std::string(input.substr(start, i - start));
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i])) != 0) {
        ++i;
      }
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1])) != 0) {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i])) != 0) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        std::size_t j = i + 1;
        if (j < n && (input[j] == '+' || input[j] == '-')) {
          ++j;
        }
        if (j < n && std::isdigit(static_cast<unsigned char>(input[j])) != 0) {
          is_real = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i])) != 0) {
            ++i;
          }
        }
      }
      const std::string text(input.substr(start, i - start));
      Token t;
      t.offset = start;
      if (is_real) {
        t.kind = TokenKind::kReal;
        t.real_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInteger;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string text;
      while (i < n && input[i] != '"') {
        if (input[i] == '\\' && i + 1 < n) {
          ++i;
          switch (input[i]) {
            case 'n':
              text += '\n';
              break;
            case 't':
              text += '\t';
              break;
            default:
              text += input[i];
          }
        } else {
          text += input[i];
        }
        ++i;
      }
      if (i >= n) {
        throw ParseError("unterminated string", start);
      }
      ++i;  // closing quote
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    auto two = [&](char second) { return i + 1 < n && input[i + 1] == second; };
    switch (c) {
      case '+':
        push(TokenKind::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenKind::kMinus, start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, start);
        ++i;
        break;
      case '%':
        push(TokenKind::kPercent, start);
        ++i;
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::kLe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      case '=':
        if (two('=')) {
          push(TokenKind::kEq, start);
          i += 2;
        } else {
          push(TokenKind::kAssign, start);
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kNot, start);
          ++i;
        }
        break;
      case '&':
        if (two('&')) {
          push(TokenKind::kAnd, start);
          i += 2;
        } else {
          throw ParseError("expected '&&'", start);
        }
        break;
      case '|':
        if (two('|')) {
          push(TokenKind::kOr, start);
          i += 2;
        } else {
          throw ParseError("expected '||'", start);
        }
        break;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        break;
      case '[':
        push(TokenKind::kLBracket, start);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, start);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        break;
      case ';':
        push(TokenKind::kSemicolon, start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, start);
        ++i;
        break;
      case '?':
        push(TokenKind::kQuestion, start);
        ++i;
        break;
      case ':':
        push(TokenKind::kColon, start);
        ++i;
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", start);
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace erms::classad
