#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace erms::classad {

enum class TokenKind {
  kEnd,
  kIdentifier,  // possibly MY / TARGET / true / false / undefined / error
  kInteger,
  kReal,
  kString,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,    // ==
  kNe,    // !=
  kAnd,   // &&
  kOr,    // ||
  kNot,   // !
  kAssign,  // =
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kDot,
  kQuestion,
  kColon,
};

struct Token {
  TokenKind kind{TokenKind::kEnd};
  std::string text;        // identifier / string contents
  std::int64_t int_value{0};
  double real_value{0.0};
  std::size_t offset{0};   // position in input, for error messages
};

/// Tokenize a ClassAd expression or ad. Throws ParseError (see parser.h) on
/// malformed input (unterminated string, bad number).
std::vector<Token> lex(std::string_view input);

}  // namespace erms::classad
