#include "classad/parser.h"

#include <algorithm>
#include <cctype>

#include "classad/lexer.h"

namespace erms::classad {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ExprPtr parse_full_expr() {
    ExprPtr e = expr();
    expect(TokenKind::kEnd, "trailing input after expression");
    return e;
  }

  ClassAd parse_ad() {
    ClassAd ad;
    const bool bracketed = accept(TokenKind::kLBracket);
    while (true) {
      if (bracketed && accept(TokenKind::kRBracket)) {
        break;
      }
      if (peek().kind == TokenKind::kEnd) {
        if (bracketed) {
          throw ParseError("missing ']'", peek().offset);
        }
        break;
      }
      const Token& name = peek();
      if (name.kind != TokenKind::kIdentifier) {
        throw ParseError("expected attribute name", name.offset);
      }
      advance();
      expect(TokenKind::kAssign, "expected '=' after attribute name");
      ad.insert(name.text, expr());
      // Separators between assignments are ';' (optionally trailing).
      while (accept(TokenKind::kSemicolon)) {
      }
    }
    expect(TokenKind::kEnd, "trailing input after ad");
    return ad;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }
  bool accept(TokenKind kind) {
    if (peek().kind == kind) {
      advance();
      return true;
    }
    return false;
  }
  void expect(TokenKind kind, const char* message) {
    if (!accept(kind)) {
      throw ParseError(message, peek().offset);
    }
  }

  ExprPtr expr() {
    ExprPtr cond = or_expr();
    if (accept(TokenKind::kQuestion)) {
      ExprPtr then = expr();
      expect(TokenKind::kColon, "expected ':' in conditional");
      ExprPtr otherwise = expr();
      return std::make_shared<ConditionalExpr>(std::move(cond), std::move(then),
                                               std::move(otherwise));
    }
    return cond;
  }

  ExprPtr or_expr() {
    ExprPtr lhs = and_expr();
    while (accept(TokenKind::kOr)) {
      lhs = std::make_shared<BinaryExpr>(BinaryOp::kOr, std::move(lhs), and_expr());
    }
    return lhs;
  }

  ExprPtr and_expr() {
    ExprPtr lhs = cmp_expr();
    while (accept(TokenKind::kAnd)) {
      lhs = std::make_shared<BinaryExpr>(BinaryOp::kAnd, std::move(lhs), cmp_expr());
    }
    return lhs;
  }

  ExprPtr cmp_expr() {
    ExprPtr lhs = sum_expr();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case TokenKind::kEq:
          op = BinaryOp::kEq;
          break;
        case TokenKind::kNe:
          op = BinaryOp::kNe;
          break;
        case TokenKind::kLt:
          op = BinaryOp::kLt;
          break;
        case TokenKind::kLe:
          op = BinaryOp::kLe;
          break;
        case TokenKind::kGt:
          op = BinaryOp::kGt;
          break;
        case TokenKind::kGe:
          op = BinaryOp::kGe;
          break;
        default:
          return lhs;
      }
      advance();
      lhs = std::make_shared<BinaryExpr>(op, std::move(lhs), sum_expr());
    }
  }

  ExprPtr sum_expr() {
    ExprPtr lhs = term_expr();
    while (true) {
      if (accept(TokenKind::kPlus)) {
        lhs = std::make_shared<BinaryExpr>(BinaryOp::kAdd, std::move(lhs), term_expr());
      } else if (accept(TokenKind::kMinus)) {
        lhs = std::make_shared<BinaryExpr>(BinaryOp::kSub, std::move(lhs), term_expr());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr term_expr() {
    ExprPtr lhs = unary_expr();
    while (true) {
      if (accept(TokenKind::kStar)) {
        lhs = std::make_shared<BinaryExpr>(BinaryOp::kMul, std::move(lhs), unary_expr());
      } else if (accept(TokenKind::kSlash)) {
        lhs = std::make_shared<BinaryExpr>(BinaryOp::kDiv, std::move(lhs), unary_expr());
      } else if (accept(TokenKind::kPercent)) {
        lhs = std::make_shared<BinaryExpr>(BinaryOp::kMod, std::move(lhs), unary_expr());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr unary_expr() {
    if (accept(TokenKind::kNot)) {
      return std::make_shared<UnaryExpr>(UnaryOp::kNot, unary_expr());
    }
    if (accept(TokenKind::kMinus)) {
      return std::make_shared<UnaryExpr>(UnaryOp::kMinus, unary_expr());
    }
    return primary();
  }

  ExprPtr primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kInteger: {
        advance();
        return literal(Value::integer(t.int_value));
      }
      case TokenKind::kReal: {
        advance();
        return literal(Value::real(t.real_value));
      }
      case TokenKind::kString: {
        advance();
        return literal(Value::string(t.text));
      }
      case TokenKind::kLParen: {
        advance();
        ExprPtr inner = expr();
        expect(TokenKind::kRParen, "expected ')'");
        return inner;
      }
      case TokenKind::kIdentifier:
        return identifier();
      default:
        throw ParseError("expected expression", t.offset);
    }
  }

  ExprPtr identifier() {
    const Token name = peek();
    advance();
    const std::string low = lower(name.text);
    // Keyword literals.
    if (low == "true") {
      return literal(Value::boolean(true));
    }
    if (low == "false") {
      return literal(Value::boolean(false));
    }
    if (low == "undefined") {
      return literal(Value::undefined());
    }
    if (low == "error") {
      return literal(Value::error());
    }
    // Scoped reference: MY.attr / TARGET.attr.
    if ((low == "my" || low == "target") && accept(TokenKind::kDot)) {
      const Token& attr = peek();
      if (attr.kind != TokenKind::kIdentifier) {
        throw ParseError("expected attribute after scope", attr.offset);
      }
      advance();
      const auto scope =
          low == "my" ? AttrRefExpr::Scope::kMy : AttrRefExpr::Scope::kTarget;
      return std::make_shared<AttrRefExpr>(scope, attr.text);
    }
    // Function call.
    if (accept(TokenKind::kLParen)) {
      std::vector<ExprPtr> args;
      if (!accept(TokenKind::kRParen)) {
        args.push_back(expr());
        while (accept(TokenKind::kComma)) {
          args.push_back(expr());
        }
        expect(TokenKind::kRParen, "expected ')' after arguments");
      }
      return std::make_shared<FunctionCallExpr>(name.text, std::move(args));
    }
    return std::make_shared<AttrRefExpr>(AttrRefExpr::Scope::kDefault, name.text);
  }

  std::vector<Token> tokens_;
  std::size_t pos_{0};
};

}  // namespace

ExprPtr parse_expr(std::string_view input) {
  Parser parser{lex(input)};
  return parser.parse_full_expr();
}

ClassAd parse_classad(std::string_view input) {
  Parser parser{lex(input)};
  return parser.parse_ad();
}

}  // namespace erms::classad
