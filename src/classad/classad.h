#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "classad/expr.h"
#include "classad/value.h"

namespace erms::classad {

/// A ClassAd: an attribute → expression record. ERMS uses ads to describe
/// datanodes (machine ads) and replication/erasure tasks (job ads), and the
/// matchmaker pairs them (paper §III.A: "ClassAds ... to detect when
/// datanodes are commissioned or decommissioned ... and to judge whether the
/// replicas are added or removed successfully").
///
/// Attribute names are case-insensitive, as in Condor.
class ClassAd {
 public:
  /// Insert/replace an attribute with an expression.
  void insert(const std::string& name, ExprPtr expr);

  /// Convenience typed inserts (wrap in literal expressions).
  void insert_int(const std::string& name, std::int64_t v);
  void insert_real(const std::string& name, double v);
  void insert_bool(const std::string& name, bool v);
  void insert_string(const std::string& name, std::string v);

  /// Remove an attribute; returns true if it existed.
  bool erase(const std::string& name);

  /// The expression bound to `name`, or nullptr.
  [[nodiscard]] ExprPtr lookup(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const { return lookup(name) != nullptr; }
  [[nodiscard]] std::size_t size() const { return attrs_.size(); }

  /// Evaluate `name` in this ad (optionally with a TARGET ad in scope).
  [[nodiscard]] Value evaluate(const std::string& name, const ClassAd* target = nullptr) const;

  /// Evaluate an arbitrary expression with this ad as MY.
  [[nodiscard]] Value evaluate_expr(const Expr& expr, const ClassAd* target = nullptr) const;

  /// Typed accessors; nullopt on missing attribute or type mismatch.
  [[nodiscard]] std::optional<std::int64_t> get_int(const std::string& name,
                                                    const ClassAd* target = nullptr) const;
  [[nodiscard]] std::optional<double> get_real(const std::string& name,
                                               const ClassAd* target = nullptr) const;
  [[nodiscard]] std::optional<bool> get_bool(const std::string& name,
                                             const ClassAd* target = nullptr) const;
  [[nodiscard]] std::optional<std::string> get_string(const std::string& name,
                                                      const ClassAd* target = nullptr) const;

  /// Attribute names in canonical (lower-cased, sorted) order.
  [[nodiscard]] std::vector<std::string> attribute_names() const;

  /// Render as `[ a = 1; b = "x"; ]`.
  [[nodiscard]] std::string unparse() const;

 private:
  static std::string canonical(const std::string& name);
  std::map<std::string, ExprPtr> attrs_;  // keys lower-cased
};

}  // namespace erms::classad
