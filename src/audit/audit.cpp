#include "audit/audit.h"

#include <cinttypes>
#include <cstdio>

#include "util/strings.h"

namespace erms::audit {

namespace {

/// Render SimTime as the audit log's "YYYY-MM-DD hh:mm:ss,mmm" timestamp.
/// Simulation time zero maps to an arbitrary epoch date.
std::string format_timestamp(sim::SimTime t) {
  const std::int64_t total_ms = t.micros() / 1000;
  const std::int64_t ms = total_ms % 1000;
  std::int64_t secs = total_ms / 1000;
  const std::int64_t sec = secs % 60;
  secs /= 60;
  const std::int64_t min = secs % 60;
  secs /= 60;
  const std::int64_t hour = secs % 24;
  const std::int64_t day = secs / 24;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "2012-05-%02" PRId64 " %02" PRId64 ":%02" PRId64 ":%02" PRId64 ",%03" PRId64,
                1 + day % 28, hour, min, sec, ms);
  return buf;
}

/// Invert format_timestamp back to SimTime (micros).
std::optional<sim::SimTime> parse_timestamp(std::string_view date, std::string_view clock) {
  int year = 0;
  int month = 0;
  int day = 0;
  int hour = 0;
  int min = 0;
  int sec = 0;
  int ms = 0;
  if (std::sscanf(std::string(date).c_str(), "%d-%d-%d", &year, &month, &day) != 3) {
    return std::nullopt;
  }
  if (std::sscanf(std::string(clock).c_str(), "%d:%d:%d,%d", &hour, &min, &sec, &ms) != 4) {
    return std::nullopt;
  }
  const std::int64_t days = day - 1;
  const std::int64_t total_ms =
      ((days * 24 + hour) * 60 + min) * 60000ll + sec * 1000ll + ms;
  return sim::SimTime{total_ms * 1000};
}

}  // namespace

std::string AuditEvent::to_line() const {
  std::string line = format_timestamp(time);
  line += " INFO FSNamesystem.audit: allowed=";
  line += allowed ? "true" : "false";
  line += " ugi=" + ugi;
  line += " ip=" + ip;
  line += " cmd=" + cmd;
  line += " src=" + src;
  line += " dst=" + (dst.empty() ? std::string("null") : dst);
  line += " perm=null";
  if (block) {
    line += " blk=" + std::to_string(*block);
  }
  if (datanode) {
    line += " dn=" + std::to_string(*datanode);
  }
  return line;
}

cep::Event AuditEvent::to_cep_event() const {
  cep::Event event{time, kStream};
  event.attrs.insert_bool("allowed", allowed);
  event.with_string("ugi", ugi)
      .with_string("ip", ip)
      .with_string("cmd", cmd)
      .with_string("src", src);
  if (!dst.empty()) {
    event.with_string("dst", dst);
  }
  if (block) {
    event.with_int("blk", *block);
  }
  if (datanode) {
    event.with_int("dn", *datanode);
  }
  return event;
}

std::optional<AuditEvent> AuditLogParser::parse_line(std::string_view line) {
  const std::vector<std::string_view> fields = util::split(util::trim(line), ' ');
  // Minimum shape: date time INFO FSNamesystem.audit: k=v...
  if (fields.size() < 5) {
    return std::nullopt;
  }
  if (fields[3] != "FSNamesystem.audit:") {
    return std::nullopt;
  }
  const auto time = parse_timestamp(fields[0], fields[1]);
  if (!time) {
    return std::nullopt;
  }
  AuditEvent event;
  event.time = *time;
  bool saw_cmd = false;
  for (std::size_t i = 4; i < fields.size(); ++i) {
    std::string_view key;
    std::string_view value;
    if (!util::split_key_value(fields[i], key, value)) {
      continue;
    }
    if (key == "allowed") {
      event.allowed = value == "true";
    } else if (key == "ugi") {
      event.ugi = std::string(value);
    } else if (key == "ip") {
      event.ip = std::string(value);
    } else if (key == "cmd") {
      event.cmd = std::string(value);
      saw_cmd = true;
    } else if (key == "src") {
      event.src = std::string(value);
    } else if (key == "dst") {
      event.dst = value == "null" ? std::string() : std::string(value);
    } else if (key == "blk") {
      event.block = std::strtoll(std::string(value).c_str(), nullptr, 10);
    } else if (key == "dn") {
      event.datanode = std::strtoll(std::string(value).c_str(), nullptr, 10);
    }
  }
  if (!saw_cmd) {
    return std::nullopt;
  }
  return event;
}

std::vector<AuditEvent> AuditLogParser::parse(std::string_view log_text) {
  std::vector<AuditEvent> events;
  for (const std::string_view line : util::split(log_text, '\n')) {
    if (auto event = parse_line(line)) {
      events.push_back(std::move(*event));
    }
  }
  return events;
}

}  // namespace erms::audit
