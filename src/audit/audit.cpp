#include "audit/audit.h"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>

#include "util/strings.h"

namespace erms::audit {

namespace {

/// Render SimTime as the audit log's "YYYY-MM-DD hh:mm:ss,mmm" timestamp.
/// Simulation time zero maps to an arbitrary epoch date.
std::string format_timestamp(sim::SimTime t) {
  const std::int64_t total_ms = t.micros() / 1000;
  const std::int64_t ms = total_ms % 1000;
  std::int64_t secs = total_ms / 1000;
  const std::int64_t sec = secs % 60;
  secs /= 60;
  const std::int64_t min = secs % 60;
  secs /= 60;
  const std::int64_t hour = secs % 24;
  const std::int64_t day = secs / 24;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "2012-05-%02" PRId64 " %02" PRId64 ":%02" PRId64 ":%02" PRId64 ",%03" PRId64,
                1 + day % 28, hour, min, sec, ms);
  return buf;
}

/// Consume a decimal int from the front of `s`; false if none is there.
bool eat_int(std::string_view& s, int& out) {
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
  if (res.ec != std::errc()) {
    return false;
  }
  s.remove_prefix(static_cast<std::size_t>(res.ptr - s.data()));
  return true;
}

bool eat_char(std::string_view& s, char c) {
  if (s.empty() || s.front() != c) {
    return false;
  }
  s.remove_prefix(1);
  return true;
}

/// Invert format_timestamp back to SimTime (micros). No intermediate
/// std::string: the fields are consumed in place with from_chars.
std::optional<sim::SimTime> parse_timestamp(std::string_view date, std::string_view clock) {
  int year = 0;
  int month = 0;
  int day = 0;
  int hour = 0;
  int min = 0;
  int sec = 0;
  int ms = 0;
  if (!eat_int(date, year) || !eat_char(date, '-') || !eat_int(date, month) ||
      !eat_char(date, '-') || !eat_int(date, day)) {
    return std::nullopt;
  }
  if (!eat_int(clock, hour) || !eat_char(clock, ':') || !eat_int(clock, min) ||
      !eat_char(clock, ':') || !eat_int(clock, sec) || !eat_char(clock, ',') ||
      !eat_int(clock, ms)) {
    return std::nullopt;
  }
  const std::int64_t days = day - 1;
  const std::int64_t total_ms =
      ((days * 24 + hour) * 60 + min) * 60000ll + sec * 1000ll + ms;
  return sim::SimTime{total_ms * 1000};
}

/// strtoll-like prefix parse: garbage yields 0, trailing junk is ignored.
std::int64_t parse_i64(std::string_view s) {
  std::int64_t v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

/// Walks ' '-separated fields in place, with exactly util::split semantics
/// (empty fields kept), but without materializing a vector per line.
struct FieldCursor {
  std::string_view rest;
  bool done{false};

  bool next(std::string_view& out) {
    if (done) {
      return false;
    }
    const std::size_t pos = rest.find(' ');
    if (pos == std::string_view::npos) {
      out = rest;
      done = true;
      return true;
    }
    out = rest.substr(0, pos);
    rest.remove_prefix(pos + 1);
    return true;
  }
};

}  // namespace

AuditSlots AuditSlots::resolve(cep::SymbolTable& attrs, cep::SymbolTable& streams) {
  AuditSlots s;
  s.stream = streams.intern(AuditEvent::kStream);
  s.allowed = attrs.intern("allowed");
  s.ugi = attrs.intern("ugi");
  s.ip = attrs.intern("ip");
  s.cmd = attrs.intern("cmd");
  s.src = attrs.intern("src");
  s.dst = attrs.intern("dst");
  s.blk = attrs.intern("blk");
  s.dn = attrs.intern("dn");
  s.fid = attrs.intern("fid");
  return s;
}

std::string AuditEvent::to_line() const {
  std::string line = format_timestamp(time);
  line += " INFO FSNamesystem.audit: allowed=";
  line += allowed ? "true" : "false";
  line += " ugi=" + ugi;
  line += " ip=" + ip;
  line += " cmd=" + cmd;
  line += " src=" + src;
  line += " dst=" + (dst.empty() ? std::string("null") : dst);
  line += " perm=null";
  if (block) {
    line += " blk=" + std::to_string(*block);
  }
  if (datanode) {
    line += " dn=" + std::to_string(*datanode);
  }
  if (fid != 0) {
    line += " fid=" + std::to_string(fid);
  }
  return line;
}

cep::Event AuditEvent::to_cep_event() const {
  cep::Event event{time, kStream};
  event.attrs.insert_bool("allowed", allowed);
  event.with_string("ugi", ugi)
      .with_string("ip", ip)
      .with_string("cmd", cmd)
      .with_string("src", src);
  if (!dst.empty()) {
    event.with_string("dst", dst);
  }
  if (block) {
    event.with_int("blk", *block);
  }
  if (datanode) {
    event.with_int("dn", *datanode);
  }
  if (fid != 0) {
    event.with_int("fid", fid);
  }
  return event;
}

void AuditEvent::to_slotted(const AuditSlots& slots, cep::SlottedEvent& out) const {
  out.reset(time, slots.stream);
  out.set_bool(slots.allowed, allowed);
  out.set_string(slots.ugi, ugi);
  out.set_string(slots.ip, ip);
  out.set_string(slots.cmd, cmd);
  out.set_string(slots.src, src);
  if (!dst.empty()) {
    out.set_string(slots.dst, dst);
  }
  if (block) {
    out.set_int(slots.blk, *block);
  }
  if (datanode) {
    out.set_int(slots.dn, *datanode);
  }
  if (fid != 0) {
    out.set_int(slots.fid, fid);
  }
}

std::optional<AuditEvent> AuditLogParser::parse_line(std::string_view line) {
  FieldCursor cursor{util::trim(line)};
  // Minimum shape: date time INFO FSNamesystem.audit: k=v...
  std::string_view date;
  std::string_view clock;
  std::string_view level;
  std::string_view tag;
  if (!cursor.next(date) || !cursor.next(clock) || !cursor.next(level) || !cursor.next(tag)) {
    return std::nullopt;
  }
  if (tag != "FSNamesystem.audit:") {
    return std::nullopt;
  }
  const auto time = parse_timestamp(date, clock);
  if (!time) {
    return std::nullopt;
  }
  AuditEvent event;
  event.time = *time;
  bool saw_cmd = false;
  bool saw_field = false;
  std::string_view field;
  while (cursor.next(field)) {
    saw_field = true;
    std::string_view key;
    std::string_view value;
    if (!util::split_key_value(field, key, value)) {
      continue;
    }
    if (key == "allowed") {
      event.allowed = value == "true";
    } else if (key == "ugi") {
      event.ugi = value;
    } else if (key == "ip") {
      event.ip = value;
    } else if (key == "cmd") {
      event.cmd = value;
      saw_cmd = true;
    } else if (key == "src") {
      event.src = value;
    } else if (key == "dst") {
      event.dst = value == "null" ? std::string_view() : value;
    } else if (key == "blk") {
      event.block = parse_i64(value);
    } else if (key == "dn") {
      event.datanode = parse_i64(value);
    } else if (key == "fid") {
      event.fid = parse_i64(value);
    }
  }
  if (!saw_cmd || !saw_field) {
    return std::nullopt;
  }
  return event;
}

std::vector<AuditEvent> AuditLogParser::parse(std::string_view log_text) {
  std::vector<AuditEvent> events;
  events.reserve(static_cast<std::size_t>(
                     std::count(log_text.begin(), log_text.end(), '\n')) +
                 1);
  std::size_t start = 0;
  while (start <= log_text.size()) {
    const std::size_t pos = log_text.find('\n', start);
    const std::string_view line =
        log_text.substr(start, pos == std::string_view::npos ? std::string_view::npos
                                                             : pos - start);
    if (auto event = parse_line(line)) {
      events.push_back(std::move(*event));
    }
    if (pos == std::string_view::npos) {
      break;
    }
    start = pos + 1;
  }
  return events;
}

}  // namespace erms::audit
