#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cep/event.h"
#include "cep/slotted_event.h"
#include "sim/time.h"

namespace erms::audit {

/// The audit stream's attribute/stream slots, resolved once against a CEP
/// engine's symbol tables. With these in hand, AuditEvent::to_slotted fills
/// a reusable SlottedEvent with zero map inserts and (once warm) zero
/// allocations — the hot half of the audit → Data Judge ingest path.
struct AuditSlots {
  cep::Slot stream{cep::kNoSlot};
  cep::Slot allowed{cep::kNoSlot};
  cep::Slot ugi{cep::kNoSlot};
  cep::Slot ip{cep::kNoSlot};
  cep::Slot cmd{cep::kNoSlot};
  cep::Slot src{cep::kNoSlot};
  cep::Slot dst{cep::kNoSlot};
  cep::Slot blk{cep::kNoSlot};
  cep::Slot dn{cep::kNoSlot};
  cep::Slot fid{cep::kNoSlot};

  static AuditSlots resolve(cep::SymbolTable& attrs, cep::SymbolTable& streams);
};

/// One HDFS namenode audit record. Mirrors the real FSNamesystem.audit line:
///
///   <ts> INFO FSNamesystem.audit: allowed=true ugi=hadoop ip=/10.0.1.7
///     cmd=open src=/data/part-0001 dst=null perm=null
///
/// plus three ERMS extensions: `blk=` and `dn=` carrying the block and
/// datanode of block-level reads, which the Data Judge's per-block and
/// per-datanode queries need, and `fid=` carrying the interned FileId so
/// the judge's hot path groups by a dense 32-bit key instead of re-hashing
/// the path string (the paper's parser joins audit records with namenode
/// metadata to the same effect).
struct AuditEvent {
  sim::SimTime time;
  bool allowed{true};
  std::string ugi{"hadoop"};
  std::string ip;       // "/10.0.<rack>.<node>"
  std::string cmd;      // open / create / setReplication / delete / ...
  std::string src;
  std::string dst;      // empty = "null"
  std::optional<std::int64_t> block;     // ERMS extension
  std::optional<std::int64_t> datanode;  // ERMS extension
  std::int64_t fid{0};                   // ERMS extension: interned FileId (0 = unknown)

  /// The CEP stream name audit events are published on.
  static constexpr const char* kStream = "audit";

  /// Format as an audit-log line (without trailing newline).
  [[nodiscard]] std::string to_line() const;

  /// Convert to a CEP event with attributes: allowed, ugi, ip, cmd, src,
  /// dst, and (when present) blk, dn.
  [[nodiscard]] cep::Event to_cep_event() const;

  /// Fill `out` with the same attributes in slotted form (same attribute set
  /// as to_cep_event, no ClassAd, no per-attribute allocations).
  void to_slotted(const AuditSlots& slots, cep::SlottedEvent& out) const;
};

/// Parses audit-log lines back into events — the component the paper calls
/// its "log parser ... to analyze the HDFS audit logs and translate the logs
/// records into events for CEP system" (§III.C).
class AuditLogParser {
 public:
  /// Parse one line; nullopt if the line is not an audit record.
  [[nodiscard]] static std::optional<AuditEvent> parse_line(std::string_view line);

  /// Parse a whole log (lines separated by '\n'), skipping non-audit lines.
  [[nodiscard]] static std::vector<AuditEvent> parse(std::string_view log_text);
};

}  // namespace erms::audit
