#include "ec/gf_region.h"

#include <cstdlib>
#include <cstring>

#include "ec/gf256.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace erms::ec {

void MulTable::init(std::uint8_t f) {
  factor = f;
  for (unsigned x = 0; x < 256; ++x) {
    full[x] = GF256::mul(f, static_cast<std::uint8_t>(x));
  }
  for (unsigned x = 0; x < 16; ++x) {
    lo[x] = full[x];
    hi[x] = full[x << 4];
  }
}

void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t len) {
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < len; ++i) {
    dst[i] ^= src[i];
  }
}

namespace {

// ----- scalar reference: log/exp multiply per byte --------------------------------

void mul_scalar(std::uint8_t f, std::uint8_t* dst, const std::uint8_t* src,
                std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] = GF256::mul(f, src[i]);
  }
}

void muladd_scalar(std::uint8_t f, std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] ^= GF256::mul(f, src[i]);
  }
}

// ----- table kernel: 256-entry product lookups ------------------------------------

void mul_table(const MulTable& t, std::uint8_t* dst, const std::uint8_t* src,
               std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] = t.full[src[i]];
  }
}

void muladd_table(const MulTable& t, std::uint8_t* dst, const std::uint8_t* src,
                  std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] ^= t.full[src[i]];
  }
}

// ----- split-nibble PSHUFB kernels ------------------------------------------------

#if defined(__x86_64__)

__attribute__((target("ssse3"))) void muladd_ssse3(const MulTable& t, std::uint8_t* dst,
                                                   const std::uint8_t* src,
                                                   std::size_t len) {
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i nib = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i l = _mm_and_si128(s, nib);
    const __m128i h = _mm_and_si128(_mm_srli_epi64(s, 4), nib);
    const __m128i p = _mm_xor_si128(_mm_shuffle_epi8(lo, l), _mm_shuffle_epi8(hi, h));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, p));
  }
  muladd_table(t, dst + i, src + i, len - i);
}

__attribute__((target("ssse3"))) void mul_ssse3(const MulTable& t, std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::size_t len) {
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i nib = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i l = _mm_and_si128(s, nib);
    const __m128i h = _mm_and_si128(_mm_srli_epi64(s, 4), nib);
    const __m128i p = _mm_xor_si128(_mm_shuffle_epi8(lo, l), _mm_shuffle_epi8(hi, h));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), p);
  }
  mul_table(t, dst + i, src + i, len - i);
}

__attribute__((target("avx2"))) void muladd_avx2(const MulTable& t, std::uint8_t* dst,
                                                 const std::uint8_t* src,
                                                 std::size_t len) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i nib = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i l = _mm256_and_si256(s, nib);
    const __m256i h = _mm256_and_si256(_mm256_srli_epi64(s, 4), nib);
    const __m256i p =
        _mm256_xor_si256(_mm256_shuffle_epi8(lo, l), _mm256_shuffle_epi8(hi, h));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, p));
  }
  muladd_table(t, dst + i, src + i, len - i);
}

__attribute__((target("avx2"))) void mul_avx2(const MulTable& t, std::uint8_t* dst,
                                              const std::uint8_t* src, std::size_t len) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i nib = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i l = _mm256_and_si256(s, nib);
    const __m256i h = _mm256_and_si256(_mm256_srli_epi64(s, 4), nib);
    const __m256i p =
        _mm256_xor_si256(_mm256_shuffle_epi8(lo, l), _mm256_shuffle_epi8(hi, h));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), p);
  }
  mul_table(t, dst + i, src + i, len - i);
}

#endif  // defined(__x86_64__)

KernelKind best_supported() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) {
    return KernelKind::kAvx2;
  }
  if (__builtin_cpu_supports("ssse3")) {
    return KernelKind::kSsse3;
  }
#endif
  return KernelKind::kTable;
}

}  // namespace

bool kernel_supported(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
    case KernelKind::kTable:
      return true;
    case KernelKind::kSsse3:
#if defined(__x86_64__)
      return __builtin_cpu_supports("ssse3");
#else
      return false;
#endif
    case KernelKind::kAvx2:
#if defined(__x86_64__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

std::string_view kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kTable:
      return "table";
    case KernelKind::kSsse3:
      return "ssse3";
    case KernelKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

KernelKind resolve_kernel(std::string_view name) {
  KernelKind want = best_supported();
  if (name == "scalar") {
    want = KernelKind::kScalar;
  } else if (name == "table") {
    want = KernelKind::kTable;
  } else if (name == "ssse3" || name == "simd") {
    want = KernelKind::kSsse3;
  } else if (name == "avx2") {
    want = KernelKind::kAvx2;
  }
  return kernel_supported(want) ? want : best_supported();
}

KernelKind active_kernel() {
  static const KernelKind kind = [] {
    const char* env = std::getenv("ERMS_EC_KERNEL");
    return env != nullptr ? resolve_kernel(env) : best_supported();
  }();
  return kind;
}

void mul_region(KernelKind kind, const MulTable& t, std::uint8_t* dst,
                const std::uint8_t* src, std::size_t len) {
  if (t.factor == 0) {
    std::memset(dst, 0, len);
    return;
  }
  if (t.factor == 1) {
    std::memcpy(dst, src, len);
    return;
  }
  switch (kind) {
    case KernelKind::kScalar:
      mul_scalar(t.factor, dst, src, len);
      return;
    case KernelKind::kTable:
      mul_table(t, dst, src, len);
      return;
    case KernelKind::kSsse3:
#if defined(__x86_64__)
      mul_ssse3(t, dst, src, len);
      return;
#else
      break;
#endif
    case KernelKind::kAvx2:
#if defined(__x86_64__)
      mul_avx2(t, dst, src, len);
      return;
#else
      break;
#endif
  }
  mul_table(t, dst, src, len);  // non-x86 fallback for SIMD kinds
}

void muladd_region(KernelKind kind, const MulTable& t, std::uint8_t* dst,
                   const std::uint8_t* src, std::size_t len) {
  if (t.factor == 0) {
    return;
  }
  if (t.factor == 1) {
    xor_region(dst, src, len);
    return;
  }
  switch (kind) {
    case KernelKind::kScalar:
      muladd_scalar(t.factor, dst, src, len);
      return;
    case KernelKind::kTable:
      muladd_table(t, dst, src, len);
      return;
    case KernelKind::kSsse3:
#if defined(__x86_64__)
      muladd_ssse3(t, dst, src, len);
      return;
#else
      break;
#endif
    case KernelKind::kAvx2:
#if defined(__x86_64__)
      muladd_avx2(t, dst, src, len);
      return;
#else
      break;
#endif
  }
  muladd_table(t, dst, src, len);  // non-x86 fallback for SIMD kinds
}

}  // namespace erms::ec
