#include "ec/codec.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.h"

namespace erms::ec {

namespace {

/// Sub-range size for pool-parallel region work (same tuning as
/// ReedSolomon: amortizes dispatch, keeps a chunk's rows cache-resident).
constexpr std::size_t kChunkBytes = 64 * 1024;
constexpr std::size_t kParallelMinBytes = 2 * kChunkBytes;

/// Row-echelon basis over GF(2^8) with one slot per pivot column. Rows are
/// normalized to a leading 1 at their pivot. Optionally tracks, for every
/// inserted row, its expression as a combination of the original inputs.
class EchelonBasis {
 public:
  explicit EchelonBasis(std::size_t cols, std::size_t track_inputs = 0)
      : cols_(cols), track_(track_inputs), rows_(cols), coeffs_(cols) {}

  /// Reduce `vec` (length cols) against the basis in place; `combo` (length
  /// track_inputs, may be empty when not tracking) is kept in sync. Returns
  /// the pivot column if a nonzero residual remains, nullopt if `vec`
  /// reduced to zero (i.e. it was in the span).
  std::optional<std::size_t> reduce(std::vector<GF256::Elem>& vec,
                                    std::vector<GF256::Elem>* combo) const {
    for (std::size_t p = 0; p < cols_; ++p) {
      if (vec[p] == 0) {
        continue;
      }
      if (rows_[p].empty()) {
        return p;
      }
      const GF256::Elem f = vec[p];
      for (std::size_t c = p; c < cols_; ++c) {
        vec[c] = GF256::sub(vec[c], GF256::mul(f, rows_[p][c]));
      }
      if (combo != nullptr) {
        for (std::size_t i = 0; i < track_; ++i) {
          (*combo)[i] = GF256::sub((*combo)[i], GF256::mul(f, coeffs_[p][i]));
        }
      }
    }
    return std::nullopt;
  }

  /// Insert a row (reduced first); returns false if it was dependent.
  bool insert(std::vector<GF256::Elem> vec, std::vector<GF256::Elem> combo) {
    const auto pivot = reduce(vec, track_ > 0 ? &combo : nullptr);
    if (!pivot) {
      return false;
    }
    const GF256::Elem inv = GF256::inv(vec[*pivot]);
    for (auto& v : vec) {
      v = GF256::mul(v, inv);
    }
    for (auto& v : combo) {
      v = GF256::mul(v, inv);
    }
    rows_[*pivot] = std::move(vec);
    coeffs_[*pivot] = std::move(combo);
    return true;
  }

  /// True if `vec` lies in the span; when tracking, `combo_out` receives the
  /// combination of original inputs that produces it.
  bool solve(std::vector<GF256::Elem> vec, std::vector<GF256::Elem>* combo_out) const {
    std::vector<GF256::Elem> combo(track_, 0);
    if (reduce(vec, track_ > 0 ? &combo : nullptr).has_value()) {
      return false;
    }
    if (combo_out != nullptr) {
      // reduce() accumulated the *negated* combination (vec - combo == 0);
      // in GF(2^8) negation is identity, so combo already is the answer.
      *combo_out = std::move(combo);
    }
    return true;
  }

 private:
  std::size_t cols_;
  std::size_t track_;
  std::vector<std::vector<GF256::Elem>> rows_;    // indexed by pivot column
  std::vector<std::vector<GF256::Elem>> coeffs_;  // combination per basis row
};

std::vector<GF256::Elem> matrix_row(const Matrix& m, std::size_t r) {
  return {m.row(r), m.row(r) + m.cols()};
}

}  // namespace

std::size_t RepairPlan::fanout() const {
  std::size_t n = 0;
  std::uint32_t prev = ~0u;
  for (const CellRef c : cells) {  // cells are sorted by shard
    if (c.shard != prev) {
      ++n;
      prev = c.shard;
    }
  }
  return n;
}

std::size_t RepairPlan::cells_on(std::size_t shard) const {
  std::size_t n = 0;
  for (const CellRef c : cells) {
    n += c.shard == shard ? 1 : 0;
  }
  return n;
}

bool ErasureCodec::verify(const std::vector<Shard>& data,
                          const std::vector<Shard>& parity) const {
  if (parity.size() != parity_shards()) {
    return false;
  }
  const std::vector<Shard> expect = encode(data);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    if (parity[i] != expect[i]) {
      return false;
    }
  }
  return true;
}

LinearCodec::LinearCodec(std::string name, std::size_t k, std::size_t m,
                         std::size_t s, Matrix generator)
    : name_(std::move(name)), k_(k), m_(m), s_(s), gen_(std::move(generator)) {
  if (k_ == 0 || m_ == 0 || s_ == 0) {
    throw std::invalid_argument("LinearCodec: need 1<=k, 1<=m, 1<=s");
  }
  if (gen_.rows() != (k_ + m_) * s_ || gen_.cols() != k_ * s_) {
    throw std::invalid_argument("LinearCodec: generator shape mismatch");
  }
  for (std::size_t r = 0; r < k_ * s_; ++r) {
    for (std::size_t c = 0; c < k_ * s_; ++c) {
      if (gen_.at(r, c) != (r == c ? 1 : 0)) {
        throw std::invalid_argument("LinearCodec: generator must be systematic");
      }
    }
  }
  const std::size_t rows = m_ * s_;
  const std::size_t cols = k_ * s_;
  parity_tables_.resize(rows * cols);
  parity_nonzero_.resize(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const GF256::Elem f = gen_.at(k_ * s_ + r, c);
      parity_tables_[r * cols + c].init(f);
      parity_nonzero_[r * cols + c] = f != 0 ? 1 : 0;
    }
  }
}

void LinearCodec::check_data_shards(const std::vector<Shard>& data) const {
  if (data.size() != k_) {
    throw std::invalid_argument("LinearCodec: wrong shard count");
  }
  for (const Shard& sh : data) {
    if (sh.size() != data.front().size()) {
      throw std::invalid_argument("LinearCodec: shards must be equal length");
    }
  }
  if (data.front().size() % s_ != 0) {
    throw std::invalid_argument("LinearCodec: shard length must be a multiple of subshards");
  }
}

void LinearCodec::apply_rows(const std::vector<MulTable>& tables,
                             const std::vector<std::uint8_t>& nonzero,
                             std::size_t rows, std::size_t cols,
                             const std::vector<const std::uint8_t*>& in_cells,
                             const std::vector<std::uint8_t*>& out_cells,
                             std::size_t cell_len) const {
  assert(tables.size() == rows * cols);
  assert(in_cells.size() == cols);
  assert(out_cells.size() == rows);
  if (cell_len == 0) {
    return;
  }
  const KernelKind kind = active_kernel();
  auto run_chunk = [&](std::size_t offset, std::size_t n) {
    for (std::size_t r = 0; r < rows; ++r) {
      std::uint8_t* dst = out_cells[r] + offset;
      bool first = true;
      for (std::size_t c = 0; c < cols; ++c) {
        if (nonzero[r * cols + c] == 0) {
          continue;  // LRC/Hitchhiker rows are sparse; skip zero entries
        }
        if (first) {
          // Overwrite on the first term so stale bytes never survive.
          mul_region(kind, tables[r * cols + c], dst, in_cells[c] + offset, n);
          first = false;
        } else {
          muladd_region(kind, tables[r * cols + c], dst, in_cells[c] + offset, n);
        }
      }
      if (first) {
        std::memset(dst, 0, n);  // all-zero row (degenerate but legal)
      }
    }
  };
  if (pool_ != nullptr && pool_->size() > 1 && cell_len >= kParallelMinBytes) {
    const std::size_t chunks = (cell_len + kChunkBytes - 1) / kChunkBytes;
    pool_->parallel_for(chunks, [&](std::size_t ci) {
      const std::size_t offset = ci * kChunkBytes;
      run_chunk(offset, std::min(kChunkBytes, cell_len - offset));
    });
  } else {
    for (std::size_t offset = 0; offset < cell_len; offset += kChunkBytes) {
      run_chunk(offset, std::min(kChunkBytes, cell_len - offset));
    }
  }
}

std::vector<LinearCodec::Shard> LinearCodec::encode(const std::vector<Shard>& data) const {
  check_data_shards(data);
  const std::size_t len = data.front().size();
  const std::size_t cell = len / s_;
  std::vector<Shard> parity(m_);
  for (auto& p : parity) {
    p.resize(len);
  }
  std::vector<const std::uint8_t*> in(k_ * s_);
  std::vector<std::uint8_t*> out(m_ * s_);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t t = 0; t < s_; ++t) {
      in[i * s_ + t] = data[i].data() + t * cell;
    }
  }
  for (std::size_t j = 0; j < m_; ++j) {
    for (std::size_t t = 0; t < s_; ++t) {
      out[j * s_ + t] = parity[j].data() + t * cell;
    }
  }
  apply_rows(parity_tables_, parity_nonzero_, m_ * s_, k_ * s_, in, out, cell);
  return parity;
}

bool LinearCodec::reconstruct(std::vector<Shard>& shards,
                              const std::vector<bool>& present) const {
  const std::size_t n = k_ + m_;
  if (shards.size() != n || present.size() != n) {
    throw std::invalid_argument("LinearCodec::reconstruct: wrong shard count");
  }
  bool any_missing = false;
  std::size_t len = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!present[i]) {
      any_missing = true;
    } else if (len == 0) {
      len = shards[i].size();
    } else if (shards[i].size() != len) {
      throw std::invalid_argument("LinearCodec::reconstruct: shard length mismatch");
    }
  }
  if (!any_missing) {
    return true;
  }
  if (len == 0 || len % s_ != 0) {
    return false;  // nothing present, or lengths unusable
  }
  const std::size_t cell = len / s_;
  const std::size_t cols = k_ * s_;

  // Greedily pick k*s independent cell rows from the present shards. For an
  // MDS code this takes the first k shards; for LRC it walks past dependent
  // local parities automatically.
  EchelonBasis basis(cols);
  std::vector<std::size_t> chosen;  // generator row ids
  chosen.reserve(cols);
  for (std::size_t i = 0; i < n && chosen.size() < cols; ++i) {
    if (!present[i]) {
      continue;
    }
    for (std::size_t t = 0; t < s_ && chosen.size() < cols; ++t) {
      const std::size_t row = i * s_ + t;
      if (basis.insert(matrix_row(gen_, row), {})) {
        chosen.push_back(row);
      }
    }
  }
  if (chosen.size() < cols) {
    return false;  // unrecoverable erasure pattern
  }
  const auto inv = gen_.select_rows(chosen).inverted();
  assert(inv.has_value());  // chosen rows are independent by construction

  // Data cells = inv * chosen cells.
  std::vector<MulTable> tables(cols * cols);
  std::vector<std::uint8_t> nonzero(cols * cols);
  for (std::size_t r = 0; r < cols; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const GF256::Elem f = inv->at(r, c);
      tables[r * cols + c].init(f);
      nonzero[r * cols + c] = f != 0 ? 1 : 0;
    }
  }
  std::vector<const std::uint8_t*> in(cols);
  for (std::size_t j = 0; j < cols; ++j) {
    const std::size_t row = chosen[j];
    in[j] = shards[row / s_].data() + (row % s_) * cell;
  }
  std::vector<Shard> data(k_);
  std::vector<std::uint8_t*> out(cols);
  for (std::size_t i = 0; i < k_; ++i) {
    data[i].resize(len);
    for (std::size_t t = 0; t < s_; ++t) {
      out[i * s_ + t] = data[i].data() + t * cell;
    }
  }
  apply_rows(tables, nonzero, cols, cols, in, out, cell);

  bool parity_missing = false;
  for (std::size_t j = 0; j < m_; ++j) {
    parity_missing = parity_missing || !present[k_ + j];
  }
  for (std::size_t i = 0; i < k_; ++i) {
    if (!present[i]) {
      // Copy (not move) when parities also need recomputing from `data`.
      shards[i] = parity_missing ? data[i] : std::move(data[i]);
    } else {
      data[i] = shards[i];  // keep the original bytes for parity recompute
    }
  }
  if (parity_missing) {
    std::vector<Shard> parity = encode(data);
    for (std::size_t j = 0; j < m_; ++j) {
      if (!present[k_ + j]) {
        shards[k_ + j] = std::move(parity[j]);
      }
    }
  }
  return true;
}

bool LinearCodec::recoverable(const std::vector<bool>& present) const {
  if (present.size() != k_ + m_) {
    return false;
  }
  // Only lost *data* rows must lie in the span of the surviving rows;
  // absent parity shards are irrelevant to availability.
  std::vector<std::size_t> rows;
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < k_ + m_; ++i) {
    for (std::size_t t = 0; t < s_; ++t) {
      if (present[i]) {
        rows.push_back(i * s_ + t);
      } else if (i < k_) {
        targets.push_back(i * s_ + t);
      }
    }
  }
  return rows_cover(rows, targets);
}

bool LinearCodec::rows_cover(const std::vector<std::size_t>& rows,
                             const std::vector<std::size_t>& targets) const {
  EchelonBasis basis(k_ * s_);
  for (const std::size_t r : rows) {
    basis.insert(matrix_row(gen_, r), {});
  }
  for (const std::size_t t : targets) {
    if (!basis.solve(matrix_row(gen_, t), nullptr)) {
      return false;
    }
  }
  return true;
}

std::optional<RepairPlan> LinearCodec::generic_plan(
    std::size_t lost, const std::vector<bool>& present) const {
  const std::size_t n = k_ + m_;
  if (lost >= n || present.size() != n || present[lost]) {
    return std::nullopt;
  }
  std::vector<std::size_t> targets(s_);
  for (std::size_t t = 0; t < s_; ++t) {
    targets[t] = lost * s_ + t;
  }
  // Greedy: add surviving shards (all their cells) in index order until the
  // lost rows are spanned.
  EchelonBasis basis(k_ * s_);
  std::vector<std::size_t> used;  // shard ids, in the order added
  std::size_t covered = 0;
  for (std::size_t i = 0; i < n && covered < s_; ++i) {
    if (i == lost || !present[i]) {
      continue;
    }
    for (std::size_t t = 0; t < s_; ++t) {
      basis.insert(matrix_row(gen_, i * s_ + t), {});
    }
    used.push_back(i);
    covered = 0;
    for (const std::size_t tr : targets) {
      covered += basis.solve(matrix_row(gen_, tr), nullptr) ? 1 : 0;
    }
  }
  if (covered < s_) {
    return std::nullopt;
  }
  // Prune pass, highest shard first: drop any helper whose removal keeps
  // the lost rows in span. Recovers e.g. the local-group plan for an LRC
  // data loss even without the structured override.
  for (std::size_t di = used.size(); di-- > 0;) {
    std::vector<std::size_t> rows;
    for (std::size_t j = 0; j < used.size(); ++j) {
      if (j == di) {
        continue;
      }
      for (std::size_t t = 0; t < s_; ++t) {
        rows.push_back(used[j] * s_ + t);
      }
    }
    if (rows_cover(rows, targets)) {
      used.erase(used.begin() + static_cast<std::ptrdiff_t>(di));
    }
  }
  RepairPlan plan;
  plan.subshards = static_cast<std::uint16_t>(s_);
  std::sort(used.begin(), used.end());
  for (const std::size_t i : used) {
    for (std::size_t t = 0; t < s_; ++t) {
      plan.cells.push_back({static_cast<std::uint16_t>(i), static_cast<std::uint16_t>(t)});
    }
  }
  return plan;
}

std::optional<RepairPlan> LinearCodec::plan_repair(
    std::size_t lost, const std::vector<bool>& present) const {
  return generic_plan(lost, present);
}

bool LinearCodec::repair(std::vector<Shard>& shards, std::size_t lost,
                         const RepairPlan& plan) const {
  const std::size_t n = k_ + m_;
  if (shards.size() != n || lost >= n || plan.cells.empty()) {
    return false;
  }
  std::size_t len = 0;
  for (const CellRef c : plan.cells) {
    if (c.shard >= n || c.sub >= s_ || c.shard == lost) {
      return false;
    }
    const std::size_t sz = shards[c.shard].size();
    if (sz == 0 || sz % s_ != 0 || (len != 0 && sz != len)) {
      return false;
    }
    len = sz;
  }
  const std::size_t cell = len / s_;
  const std::size_t cols = k_ * s_;

  // Express each lost row as a combination of the plan's cell rows.
  EchelonBasis basis(cols, plan.cells.size());
  for (std::size_t j = 0; j < plan.cells.size(); ++j) {
    std::vector<GF256::Elem> combo(plan.cells.size(), 0);
    combo[j] = 1;
    basis.insert(matrix_row(gen_, plan.cells[j].shard * s_ + plan.cells[j].sub),
                 std::move(combo));
  }
  std::vector<std::vector<GF256::Elem>> combos(s_);
  for (std::size_t t = 0; t < s_; ++t) {
    if (!basis.solve(matrix_row(gen_, lost * s_ + t), &combos[t])) {
      return false;  // plan does not determine the lost shard
    }
  }

  Shard rebuilt(len);
  std::vector<MulTable> tables(s_ * plan.cells.size());
  std::vector<std::uint8_t> nonzero(s_ * plan.cells.size());
  std::vector<const std::uint8_t*> in(plan.cells.size());
  std::vector<std::uint8_t*> out(s_);
  for (std::size_t j = 0; j < plan.cells.size(); ++j) {
    in[j] = shards[plan.cells[j].shard].data() + plan.cells[j].sub * cell;
  }
  for (std::size_t t = 0; t < s_; ++t) {
    out[t] = rebuilt.data() + t * cell;
    for (std::size_t j = 0; j < plan.cells.size(); ++j) {
      tables[t * plan.cells.size() + j].init(combos[t][j]);
      nonzero[t * plan.cells.size() + j] = combos[t][j] != 0 ? 1 : 0;
    }
  }
  apply_rows(tables, nonzero, s_, plan.cells.size(), in, out, cell);
  shards[lost] = std::move(rebuilt);
  return true;
}

Matrix systematic_rs_matrix(std::size_t k, std::size_t m) {
  if (k == 0 || k + m > 255) {
    throw std::invalid_argument("systematic_rs_matrix: need 1<=k, k+m<=255");
  }
  const Matrix v = Matrix::vandermonde(k + m, k);
  std::vector<std::size_t> top(k);
  for (std::size_t i = 0; i < k; ++i) {
    top[i] = i;
  }
  const auto top_inv = v.select_rows(top).inverted();
  assert(top_inv.has_value());  // Vandermonde rows with distinct points
  return v.multiply(*top_inv);
}

RsCodec::RsCodec(std::size_t data_shards, std::size_t parity_shards)
    : LinearCodec("rs", data_shards, parity_shards, 1,
                  systematic_rs_matrix(data_shards, parity_shards)) {}

std::optional<RepairPlan> RsCodec::plan_repair(std::size_t lost,
                                               const std::vector<bool>& present) const {
  const std::size_t n = total_shards();
  if (lost >= n || present.size() != n || present[lost]) {
    return std::nullopt;
  }
  RepairPlan plan;
  plan.subshards = 1;
  for (std::size_t i = 0; i < n && plan.cells.size() < data_shards(); ++i) {
    if (present[i]) {
      plan.cells.push_back({static_cast<std::uint16_t>(i), 0});
    }
  }
  if (plan.cells.size() < data_shards()) {
    return std::nullopt;
  }
  return plan;
}

}  // namespace erms::ec
