#include "ec/hh_xor_plus.h"

#include <algorithm>
#include <stdexcept>

namespace erms::ec {

namespace {

/// Piggyback groups: data indices split contiguously and balanced across
/// groups 1..m-1 (group 0 is unused — parity 0 carries no piggyback).
std::vector<std::vector<std::size_t>> make_groups(std::size_t k, std::size_t m) {
  std::vector<std::vector<std::size_t>> groups(m);
  const std::size_t count = m - 1;
  const std::size_t base = k / count;
  const std::size_t extra = k % count;
  std::size_t next = 0;
  for (std::size_t j = 1; j < m; ++j) {
    const std::size_t size = base + (j - 1 < extra ? 1 : 0);
    for (std::size_t i = 0; i < size; ++i) {
      groups[j].push_back(next++);
    }
  }
  return groups;
}

Matrix make_generator(std::size_t k, std::size_t m,
                      const std::vector<std::vector<std::size_t>>& groups) {
  if (k == 0 || m < 2 || k + m > 255) {
    throw std::invalid_argument("HitchhikerXorPlusCodec: need 1<=k, 2<=m, k+m<=255");
  }
  // Base parity matrix, column-normalized so row 0 is all ones. Scaling
  // column c of the parity block by inv(P[0][c]) scales rows/columns of
  // every k-row submatrix by nonzero constants, so the MDS property of the
  // systematic construction survives.
  const Matrix rs = systematic_rs_matrix(k, m);
  Matrix p(m, k);
  for (std::size_t c = 0; c < k; ++c) {
    const GF256::Elem d = GF256::inv(rs.at(k, c));  // P[0][c] != 0 (MDS)
    for (std::size_t j = 0; j < m; ++j) {
      p.set(j, c, GF256::mul(rs.at(k + j, c), d));
    }
  }
  // Sub-packetized generator, s = 2: column 2i is a_i, column 2i+1 is b_i.
  const std::size_t s = 2;
  Matrix gen((k + m) * s, k * s);
  for (std::size_t r = 0; r < k * s; ++r) {
    gen.set(r, r, 1);
  }
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t row_a = (k + j) * s;
    for (std::size_t c = 0; c < k; ++c) {
      gen.set(row_a, 2 * c, p.at(j, c));          // f_j(a)
      gen.set(row_a + 1, 2 * c + 1, p.at(j, c));  // f_j(b)
    }
    for (const std::size_t i : groups[j]) {
      gen.set(row_a + 1, 2 * i, 1);  // ⊕ a_i piggyback (j >= 1)
    }
  }
  return gen;
}

}  // namespace

HitchhikerXorPlusCodec::HitchhikerXorPlusCodec(std::size_t data_shards,
                                               std::size_t parity_shards)
    : LinearCodec("hh_xor_plus", data_shards, parity_shards, 2,
                  make_generator(data_shards, parity_shards,
                                 make_groups(data_shards, parity_shards))),
      groups_(make_groups(data_shards, parity_shards)),
      group_of_(data_shards) {
  for (std::size_t j = 1; j < parity_shards; ++j) {
    for (const std::size_t i : groups_[j]) {
      group_of_[i] = j;
    }
  }
}

std::optional<RepairPlan> HitchhikerXorPlusCodec::plan_repair(
    std::size_t lost, const std::vector<bool>& present) const {
  const std::size_t k = data_shards();
  const std::size_t n = total_shards();
  if (lost >= n || present.size() != n || present[lost]) {
    return std::nullopt;
  }
  if (lost < k) {
    // b_lost comes from the all-XOR parity-0 b row minus the other b's;
    // a_lost comes from parity j's piggybacked b row once every b and the
    // group's other a's are known. Requires every other shard's b half
    // (i.e. all other shards present) — on multi-failures fall back.
    const std::size_t j = group_of_[lost];  // always >= 1
    bool helpers = present[k] && present[k + j];
    for (std::size_t i = 0; i < k; ++i) {
      helpers = helpers && (i == lost || present[i]);
    }
    if (helpers) {
      RepairPlan plan;
      plan.subshards = 2;
      for (std::size_t i = 0; i < k; ++i) {
        if (i == lost) {
          continue;
        }
        if (group_of_[i] == j) {
          plan.cells.push_back({static_cast<std::uint16_t>(i), 0});  // a half
        }
        plan.cells.push_back({static_cast<std::uint16_t>(i), 1});  // b half
      }
      plan.cells.push_back({static_cast<std::uint16_t>(k), 1});      // f_0(b)
      plan.cells.push_back({static_cast<std::uint16_t>(k + j), 1});  // piggyback
      std::sort(plan.cells.begin(), plan.cells.end());
      return plan;
    }
  }
  return generic_plan(lost, present);
}

}  // namespace erms::ec
