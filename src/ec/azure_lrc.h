#pragma once

#include <cstddef>
#include <vector>

#include "ec/codec.h"

namespace erms::ec {

/// Azure-style Locally Repairable Code LRC(k, l, g): k data shards split
/// into l contiguous, balanced local groups, one XOR parity per group, plus
/// g Reed–Solomon global parities over all k data shards (Huang et al.,
/// "Erasure Coding in Windows Azure Storage", ATC'12).
///
/// Shard order: data 0..k-1, local parities k..k+l-1 (local j covers group
/// j), globals k+l..k+l+g-1. The win is the repair plan: a single lost data
/// shard is rebuilt from its group members plus the group's local parity —
/// ⌈k/l⌉ reads instead of RS's k. LRC(8,2,2) repairs a data shard from 4
/// shards where RS(8,4) needs 8, at the same storage overhead.
///
/// Fault tolerance: any g+1 losses are recoverable (the code is not MDS —
/// some patterns of g+2 are also recoverable when they split across groups,
/// e.g. one data shard plus its local parity; reconstruct() decides by
/// rank, not by count).
class AzureLrcCodec final : public LinearCodec {
 public:
  /// Requires 1 <= l <= k, l + g >= 1, k + l + g <= 255.
  AzureLrcCodec(std::size_t data_shards, std::size_t local_groups,
                std::size_t global_parities);

  [[nodiscard]] std::size_t local_groups() const { return l_; }
  [[nodiscard]] std::size_t global_parities() const { return g_; }
  /// Data shard indices of group `j`.
  [[nodiscard]] const std::vector<std::size_t>& group(std::size_t j) const {
    return groups_[j];
  }

  /// Structured plans: a lost data shard reads its group + local parity; a
  /// lost local parity reads its group; a lost global reads all k data
  /// shards. Falls back to the generic span-based plan when the structured
  /// helper set is degraded.
  [[nodiscard]] std::optional<RepairPlan> plan_repair(
      std::size_t lost, const std::vector<bool>& present) const override;

 private:
  std::size_t l_;
  std::size_t g_;
  std::vector<std::vector<std::size_t>> groups_;  // l groups of data indices
  std::vector<std::size_t> group_of_;             // data index -> group
};

}  // namespace erms::ec
