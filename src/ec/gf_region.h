#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace erms::ec {

/// Bulk GF(2^8) region kernels: the inner loops of Reed-Solomon encode and
/// decode. A coded shard is megabytes long while the coefficient matrix is
/// tiny, so all the time goes into `dst[i] (^)= f * src[i]` over long byte
/// ranges. Three implementations sit behind one dispatch point:
///
///  * kScalar — byte-at-a-time log/exp multiply (the reference; portable).
///  * kTable  — one 256-entry product table per coefficient, byte-at-a-time
///              lookups; f==0/1 degenerate to memset/word-wide XOR.
///  * kSsse3 / kAvx2 — split-nibble PSHUFB: two 16-entry tables (products of
///              the low and high nibble) applied 16/32 bytes per shuffle.
///
/// The default is the fastest kernel the CPU supports (CPUID probe), but the
/// `ERMS_EC_KERNEL` environment variable ("scalar", "table", "ssse3",
/// "avx2", "auto") can pin a specific one for testing and benchmarking.
enum class KernelKind : std::uint8_t { kScalar, kTable, kSsse3, kAvx2 };

/// Per-coefficient multiplication tables, computed once per matrix entry and
/// reused across the whole region (and across encode calls — ReedSolomon
/// caches one per parity-matrix entry).
struct MulTable {
  alignas(16) std::uint8_t lo[16];  // f * x          for x in [0,16)
  alignas(16) std::uint8_t hi[16];  // f * (x << 4)   for x in [0,16)
  std::uint8_t full[256];           // f * x          for x in [0,256)
  std::uint8_t factor{0};

  MulTable() = default;
  explicit MulTable(std::uint8_t f) { init(f); }
  void init(std::uint8_t f);
};

/// True if this build/CPU can execute `kind`.
bool kernel_supported(KernelKind kind);

/// The kernel every implicit-kind call uses: ERMS_EC_KERNEL if set (and
/// supported), else the best CPUID-supported kernel. Resolved once.
KernelKind active_kernel();

/// Name for logs/benchmarks ("scalar", "table", "ssse3", "avx2").
std::string_view kernel_name(KernelKind kind);

/// Parse a kernel name (the ERMS_EC_KERNEL syntax). "auto" or an unknown
/// string yields the best supported kernel; a known but unsupported kernel
/// falls back to the best supported one.
KernelKind resolve_kernel(std::string_view name);

/// dst[i] = f * src[i] for i in [0, len). Regions must not overlap.
void mul_region(KernelKind kind, const MulTable& t, std::uint8_t* dst,
                const std::uint8_t* src, std::size_t len);

/// dst[i] ^= f * src[i] for i in [0, len). Regions must not overlap.
void muladd_region(KernelKind kind, const MulTable& t, std::uint8_t* dst,
                   const std::uint8_t* src, std::size_t len);

/// dst[i] ^= src[i], word-at-a-time. The f==1 fast path all kernels share.
void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t len);

/// Convenience overloads using active_kernel().
inline void mul_region(const MulTable& t, std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t len) {
  mul_region(active_kernel(), t, dst, src, len);
}
inline void muladd_region(const MulTable& t, std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t len) {
  muladd_region(active_kernel(), t, dst, src, len);
}

}  // namespace erms::ec
