#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ec/codec.h"
#include "ec/codec_registry.h"

namespace erms::ec {

/// File-level striping on top of a pluggable ErasureCodec: splits a byte
/// buffer into k equal shards (zero-padded), computes the code's parities,
/// and can rebuild the file from any recoverable set of surviving shards.
/// This mirrors what HDFS-RAID does to a block group when ERMS demotes a
/// cold file — with the code chosen per temperature band (see
/// docs/EC_CODECS.md).
///
/// Attach a util::ThreadPool to encode/decode large stripes with the shards
/// split into concurrently-coded sub-ranges (see LinearCodec).
class StripeCodec {
 public:
  /// Reed–Solomon (k, m) — the historical default shape.
  StripeCodec(std::size_t data_shards, std::size_t parity_shards)
      : codec_(make_codec(
            CodecSpec{CodecKind::kRs, static_cast<std::uint32_t>(parity_shards), 0, 0},
            data_shards)) {}

  /// Any registered code, shaped by `spec` over `data_shards`.
  StripeCodec(const CodecSpec& spec, std::size_t data_shards)
      : codec_(make_codec(spec, data_shards)) {}

  /// Borrow a pool for multi-threaded coding; nullptr reverts to serial.
  /// The pool must outlive every encode/decode call.
  void set_thread_pool(util::ThreadPool* pool) {
    pool_ = pool;
    codec_->set_thread_pool(pool);
  }
  [[nodiscard]] util::ThreadPool* thread_pool() const { return pool_; }

  struct Stripe {
    std::vector<ErasureCodec::Shard> shards;  // k data shards then m parity
    std::uint64_t original_size{0};
  };

  /// Split + encode. The shard length is ceil(size/k), zero-padded (and
  /// rounded up to the codec's sub-packetization).
  [[nodiscard]] Stripe encode(const std::vector<std::uint8_t>& bytes) const;

  /// Rebuild the original bytes. `present[i]` marks surviving shards;
  /// missing shards in `stripe.shards` may be empty. Returns false when the
  /// erasure pattern is unrecoverable for this code.
  bool decode(Stripe& stripe, const std::vector<bool>& present,
              std::vector<std::uint8_t>& out) const;

  [[nodiscard]] const ErasureCodec& code() const { return *codec_; }
  [[nodiscard]] ErasureCodec& code() { return *codec_; }

  /// Storage used by the stripe (all shards) vs. by `r` full replicas — the
  /// overhead comparison the paper's Fig. 5 makes.
  [[nodiscard]] static double storage_ratio(std::size_t k, std::size_t m, std::size_t replicas) {
    return (static_cast<double>(k + m) / static_cast<double>(k)) /
           static_cast<double>(replicas);
  }

 private:
  std::unique_ptr<ErasureCodec> codec_;
  util::ThreadPool* pool_{nullptr};
};

}  // namespace erms::ec
