#pragma once

#include <cstdint>
#include <vector>

#include "ec/reed_solomon.h"

namespace erms::ec {

/// File-level striping on top of ReedSolomon: splits a byte buffer into k
/// equal shards (zero-padded), computes m parities, and can rebuild the file
/// from any k surviving shards. This mirrors what HDFS-RAID does to a block
/// group when ERMS demotes a cold file.
///
/// Attach a util::ThreadPool to encode/decode large stripes with the shards
/// split into concurrently-coded sub-ranges (see ReedSolomon).
class StripeCodec {
 public:
  StripeCodec(std::size_t data_shards, std::size_t parity_shards)
      : rs_(data_shards, parity_shards) {}

  /// Borrow a pool for multi-threaded coding; nullptr reverts to serial.
  /// The pool must outlive every encode/decode call.
  void set_thread_pool(util::ThreadPool* pool) { rs_.set_thread_pool(pool); }
  [[nodiscard]] util::ThreadPool* thread_pool() const { return rs_.thread_pool(); }

  struct Stripe {
    std::vector<ReedSolomon::Shard> shards;  // k data shards then m parity
    std::uint64_t original_size{0};
  };

  /// Split + encode. The shard length is ceil(size/k), zero-padded.
  [[nodiscard]] Stripe encode(const std::vector<std::uint8_t>& bytes) const;

  /// Rebuild the original bytes. `present[i]` marks surviving shards; missing
  /// shards in `stripe.shards` may be empty. Returns false if fewer than k
  /// shards survive.
  bool decode(Stripe& stripe, const std::vector<bool>& present,
              std::vector<std::uint8_t>& out) const;

  [[nodiscard]] const ReedSolomon& code() const { return rs_; }
  [[nodiscard]] ReedSolomon& code() { return rs_; }

  /// Storage used by the stripe (all shards) vs. by `r` full replicas — the
  /// overhead comparison the paper's Fig. 5 makes.
  [[nodiscard]] static double storage_ratio(std::size_t k, std::size_t m, std::size_t replicas) {
    return (static_cast<double>(k + m) / static_cast<double>(k)) /
           static_cast<double>(replicas);
  }

 private:
  ReedSolomon rs_;
};

}  // namespace erms::ec
