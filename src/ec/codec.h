#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ec/gf_region.h"
#include "ec/matrix.h"

namespace erms::util {
class ThreadPool;
}  // namespace erms::util

namespace erms::ec {

/// One sub-shard of a stripe: shard index (data shards first, then parity)
/// and sub-shard index within it. Codes without sub-packetization (RS, LRC)
/// always use sub == 0; Hitchhiker splits every shard into two halves.
struct CellRef {
  std::uint16_t shard{0};
  std::uint16_t sub{0};

  friend bool operator==(CellRef a, CellRef b) {
    return a.shard == b.shard && a.sub == b.sub;
  }
  friend bool operator<(CellRef a, CellRef b) {
    return a.shard != b.shard ? a.shard < b.shard : a.sub < b.sub;
  }
};

/// What a single-shard repair must read: the exact set of surviving cells.
/// This is the object the cluster sizes its recovery flows from, so the
/// repair-bandwidth advantage of LRC/Hitchhiker over RS is not a claim — it
/// is the byte count of the flows the simulator actually starts.
struct RepairPlan {
  std::vector<CellRef> cells;  // sorted by (shard, sub)
  std::uint16_t subshards{1};  // the codec's sub-packetization

  /// Distinct shards touched (the degraded-read fanout).
  [[nodiscard]] std::size_t fanout() const;
  /// Bytes read measured in whole-shard units: cells / subshards.
  [[nodiscard]] double shard_equivalents() const {
    return subshards == 0
               ? 0.0
               : static_cast<double>(cells.size()) / static_cast<double>(subshards);
  }
  /// Cells planned on `shard` (0 if untouched).
  [[nodiscard]] std::size_t cells_on(std::size_t shard) const;
  /// Bytes to read from a shard of `shard_bytes` given its planned cells.
  [[nodiscard]] static std::uint64_t bytes_for(std::uint64_t shard_bytes,
                                               std::size_t cells,
                                               std::uint16_t subshards) {
    return subshards == 0 ? 0
                          : (shard_bytes * cells + subshards - 1) / subshards;
  }
};

/// A pluggable erasure code: k data shards, m parity shards, any-single-loss
/// repair with a code-specific read plan. All byte work runs on the
/// gf_region kernels (table/SSSE3/AVX2 dispatch, ERMS_EC_KERNEL override).
///
/// Shards may be sub-packetized: each shard is `subshards()` equal cells,
/// and repair plans are expressed in cells so codes like Hitchhiker-XOR+
/// can read half shards. Shard lengths passed to encode/reconstruct/repair
/// must be multiples of subshards().
class ErasureCodec {
 public:
  using Shard = std::vector<std::uint8_t>;

  virtual ~ErasureCodec() = default;

  /// Registry name ("rs", "azure_lrc", "hh_xor_plus").
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::size_t data_shards() const = 0;
  [[nodiscard]] virtual std::size_t parity_shards() const = 0;
  [[nodiscard]] std::size_t total_shards() const {
    return data_shards() + parity_shards();
  }
  /// Sub-packetization: cells per shard (1 for RS/LRC, 2 for Hitchhiker).
  [[nodiscard]] virtual std::size_t subshards() const = 0;

  /// Borrow a pool for multi-threaded region work; nullptr reverts to
  /// serial. The pool must outlive every encode/reconstruct/repair call.
  virtual void set_thread_pool(util::ThreadPool* pool) = 0;

  /// Compute the m parity shards for k equal-length data shards.
  [[nodiscard]] virtual std::vector<Shard> encode(
      const std::vector<Shard>& data) const = 0;

  /// Reconstruct missing shards in place. `shards` has k+m entries (data
  /// first, then parity); `present[i]` says whether shards[i] holds valid
  /// bytes. Missing shards may be empty; they are resized and filled.
  /// Returns false if the erasure pattern is unrecoverable.
  virtual bool reconstruct(std::vector<Shard>& shards,
                           const std::vector<bool>& present) const = 0;

  /// The cheapest read set this code offers to rebuild shard `lost` from
  /// the surviving shards flagged in `present`. nullopt when the pattern is
  /// unrecoverable. The plan never includes cells of absent shards.
  [[nodiscard]] virtual std::optional<RepairPlan> plan_repair(
      std::size_t lost, const std::vector<bool>& present) const = 0;

  /// Rebuild shard `lost` in place from exactly the cells in `plan` (the
  /// other shards' cells outside the plan are not read). Returns false if
  /// the plan's cells do not determine the lost shard.
  virtual bool repair(std::vector<Shard>& shards, std::size_t lost,
                      const RepairPlan& plan) const = 0;

  /// Rank query: can every data shard be recovered from the shards flagged
  /// in `present`? (Availability test — no bytes touched.)
  [[nodiscard]] virtual bool recoverable(const std::vector<bool>& present) const = 0;

  /// True if the parity shards are consistent with the data shards.
  [[nodiscard]] bool verify(const std::vector<Shard>& data,
                            const std::vector<Shard>& parity) const;

  /// (k+m)/k — the storage cost of the stripe relative to the raw data.
  [[nodiscard]] double storage_overhead() const {
    return static_cast<double>(total_shards()) / static_cast<double>(data_shards());
  }
};

/// Generic machinery for any systematic linear code over GF(2^8) with
/// sub-packetization s, described by a generator matrix G of (k+m)·s rows ×
/// k·s columns: cell (shard i, sub t) is row i·s+t, data cell (i, t) is
/// column i·s+t, and the top k·s rows are the identity.
///
/// Subclasses supply the matrix (and usually a code-specific plan_repair);
/// encode, reconstruct, generic planning and plan-driven repair all fall
/// out of linear algebra on G:
///  - encode applies the parity rows with cached per-entry MulTables,
///    chunked across an optional ThreadPool (same scheme as ReedSolomon);
///  - reconstruct greedily picks k·s independent surviving cell rows and
///    inverts them (works for every recoverable pattern of every code);
///  - plan_repair adds surviving shards in index order until the lost
///    shard's rows lie in their span, then prunes unneeded shards — exact
///    for MDS codes, a fallback for codes that override with a cheaper
///    structured plan;
///  - repair expresses the lost rows as combinations of the plan's cell
///    rows (Gaussian elimination with coefficient tracking) and applies
///    those combinations region-wise.
class LinearCodec : public ErasureCodec {
 public:
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::size_t data_shards() const override { return k_; }
  [[nodiscard]] std::size_t parity_shards() const override { return m_; }
  [[nodiscard]] std::size_t subshards() const override { return s_; }

  void set_thread_pool(util::ThreadPool* pool) override { pool_ = pool; }
  [[nodiscard]] util::ThreadPool* thread_pool() const { return pool_; }

  [[nodiscard]] std::vector<Shard> encode(const std::vector<Shard>& data) const override;
  bool reconstruct(std::vector<Shard>& shards,
                   const std::vector<bool>& present) const override;
  [[nodiscard]] std::optional<RepairPlan> plan_repair(
      std::size_t lost, const std::vector<bool>& present) const override;
  bool repair(std::vector<Shard>& shards, std::size_t lost,
              const RepairPlan& plan) const override;
  [[nodiscard]] bool recoverable(const std::vector<bool>& present) const override;

  /// The full generator matrix ((k+m)·s × k·s, identity on top).
  [[nodiscard]] const Matrix& generator() const { return gen_; }

 protected:
  /// Validates shape (1<=k, 1<=m, 1<=s, identity top) and caches the parity
  /// rows' MulTables.
  LinearCodec(std::string name, std::size_t k, std::size_t m, std::size_t s,
              Matrix generator);

  /// Greedy whole-shard plan + prune pass (see class comment). Subclass
  /// plan_repair overrides fall back to this when their structured helper
  /// set is not fully present.
  [[nodiscard]] std::optional<RepairPlan> generic_plan(
      std::size_t lost, const std::vector<bool>& present) const;

 private:
  void check_data_shards(const std::vector<Shard>& data) const;
  /// out_cells[r] = sum_c tables[r][c] * in_cells[c] over `cell_len` bytes,
  /// skipping zero coefficients; chunked across pool_ for long cells.
  void apply_rows(const std::vector<MulTable>& tables,
                  const std::vector<std::uint8_t>& nonzero, std::size_t rows,
                  std::size_t cols, const std::vector<const std::uint8_t*>& in_cells,
                  const std::vector<std::uint8_t*>& out_cells,
                  std::size_t cell_len) const;
  /// True if the rows (generator row ids) span every row in `targets`.
  [[nodiscard]] bool rows_cover(const std::vector<std::size_t>& rows,
                                const std::vector<std::size_t>& targets) const;

  std::string name_;
  std::size_t k_;
  std::size_t m_;
  std::size_t s_;
  Matrix gen_;                           // (k+m)*s x k*s, identity on top
  std::vector<MulTable> parity_tables_;  // m*s x k*s per-entry tables
  std::vector<std::uint8_t> parity_nonzero_;  // 1 where the entry != 0
  util::ThreadPool* pool_{nullptr};
};

/// Reed–Solomon as a LinearCodec: the systematic Vandermonde construction
/// (identical matrix to the standalone ReedSolomon class), s = 1. MDS: any
/// k of the k+m shards reconstruct everything, so the repair plan is the
/// first k present shards in data-then-parity order — byte-for-byte the
/// helper set the cluster's legacy RS recovery used.
class RsCodec final : public LinearCodec {
 public:
  /// Requires 1 <= k, 1 <= m, k + m <= 255.
  RsCodec(std::size_t data_shards, std::size_t parity_shards);

  [[nodiscard]] std::optional<RepairPlan> plan_repair(
      std::size_t lost, const std::vector<bool>& present) const override;
};

/// The systematic (k+m)×k RS matrix E = V · inv(V_top): identity on top,
/// every k-row submatrix invertible. Shared by RsCodec, the LRC global
/// parities and Hitchhiker's base code.
[[nodiscard]] Matrix systematic_rs_matrix(std::size_t k, std::size_t m);

}  // namespace erms::ec
