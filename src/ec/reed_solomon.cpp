#include "ec/reed_solomon.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace erms::ec {

ReedSolomon::ReedSolomon(std::size_t data_shards, std::size_t parity_shards)
    : k_(data_shards), m_(parity_shards), encode_matrix_(1, 1) {
  if (k_ == 0 || m_ == 0 || k_ + m_ > 255) {
    throw std::invalid_argument("ReedSolomon: need 1<=k, 1<=m, k+m<=255");
  }
  // Systematic form: E = V * inverse(top k rows of V). The top k rows become
  // the identity; any k-row submatrix of E stays invertible because E is V
  // times an invertible matrix.
  const Matrix v = Matrix::vandermonde(k_ + m_, k_);
  std::vector<std::size_t> top(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    top[i] = i;
  }
  const auto top_inv = v.select_rows(top).inverted();
  assert(top_inv.has_value());  // Vandermonde rows with distinct points
  encode_matrix_ = v.multiply(*top_inv);
}

void ReedSolomon::check_shard_sizes(const std::vector<Shard>& shards,
                                    std::size_t expect_count) const {
  if (shards.size() != expect_count) {
    throw std::invalid_argument("ReedSolomon: wrong shard count");
  }
  for (const Shard& s : shards) {
    if (s.size() != shards.front().size()) {
      throw std::invalid_argument("ReedSolomon: shards must be equal length");
    }
  }
}

void ReedSolomon::matrix_apply(const Matrix& m, const std::vector<const Shard*>& in,
                               const std::vector<Shard*>& out) {
  assert(m.rows() == out.size());
  assert(m.cols() == in.size());
  const std::size_t len = in.empty() ? 0 : in.front()->size();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    Shard& dst = *out[r];
    dst.assign(len, 0);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const GF256::Elem f = m.at(r, c);
      if (f == 0) {
        continue;
      }
      const Shard& src = *in[c];
      if (f == 1) {
        for (std::size_t i = 0; i < len; ++i) {
          dst[i] ^= src[i];
        }
      } else {
        for (std::size_t i = 0; i < len; ++i) {
          dst[i] ^= GF256::mul(f, src[i]);
        }
      }
    }
  }
}

std::vector<ReedSolomon::Shard> ReedSolomon::encode(const std::vector<Shard>& data) const {
  check_shard_sizes(data, k_);
  // The parity rows are rows k..k+m-1 of the encoding matrix.
  std::vector<std::size_t> parity_rows(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    parity_rows[i] = k_ + i;
  }
  const Matrix pm = encode_matrix_.select_rows(parity_rows);

  std::vector<Shard> parity(m_);
  std::vector<const Shard*> in(k_);
  std::vector<Shard*> out(m_);
  for (std::size_t i = 0; i < k_; ++i) {
    in[i] = &data[i];
  }
  for (std::size_t i = 0; i < m_; ++i) {
    out[i] = &parity[i];
  }
  matrix_apply(pm, in, out);
  return parity;
}

bool ReedSolomon::reconstruct(std::vector<Shard>& shards,
                              const std::vector<bool>& present) const {
  if (shards.size() != k_ + m_ || present.size() != k_ + m_) {
    throw std::invalid_argument("ReedSolomon::reconstruct: wrong shard count");
  }
  std::vector<std::size_t> have;
  for (std::size_t i = 0; i < present.size(); ++i) {
    if (present[i]) {
      have.push_back(i);
    }
  }
  if (have.size() < k_) {
    return false;
  }
  have.resize(k_);  // any k present shards suffice

  std::size_t len = shards[have.front()].size();
  for (const std::size_t i : have) {
    if (shards[i].size() != len) {
      throw std::invalid_argument("ReedSolomon::reconstruct: shard length mismatch");
    }
  }

  // Rows of the encoding matrix for the shards we have; its inverse maps the
  // present shards back to the original data shards.
  const auto inv = encode_matrix_.select_rows(have).inverted();
  assert(inv.has_value());

  // Recover data shards first.
  std::vector<const Shard*> in(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    in[i] = &shards[have[i]];
  }
  std::vector<Shard> data(k_);
  std::vector<Shard*> out(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    out[i] = &data[i];
  }
  matrix_apply(*inv, in, out);

  for (std::size_t i = 0; i < k_; ++i) {
    if (!present[i]) {
      shards[i] = data[i];
    }
  }
  // Recompute any missing parity from the (now complete) data shards.
  bool parity_missing = false;
  for (std::size_t i = k_; i < k_ + m_; ++i) {
    parity_missing = parity_missing || !present[i];
  }
  if (parity_missing) {
    std::vector<Shard> data_view(shards.begin(), shards.begin() + static_cast<std::ptrdiff_t>(k_));
    std::vector<Shard> parity = encode(data_view);
    for (std::size_t i = 0; i < m_; ++i) {
      if (!present[k_ + i]) {
        shards[k_ + i] = std::move(parity[i]);
      }
    }
  }
  return true;
}

bool ReedSolomon::verify(const std::vector<Shard>& data,
                         const std::vector<Shard>& parity) const {
  check_shard_sizes(data, k_);
  if (parity.size() != m_) {
    return false;
  }
  const std::vector<Shard> expect = encode(data);
  for (std::size_t i = 0; i < m_; ++i) {
    if (parity[i] != expect[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace erms::ec
