#include "ec/reed_solomon.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/thread_pool.h"

namespace erms::ec {

namespace {

/// Sub-range size for pool-parallel region work: big enough to amortize
/// dispatch, small enough that a shard's working set stays cache-friendly.
constexpr std::size_t kChunkBytes = 64 * 1024;

/// Below this per-shard length the fork/join overhead beats the win.
constexpr std::size_t kParallelMinBytes = 2 * kChunkBytes;

}  // namespace

ReedSolomon::ReedSolomon(std::size_t data_shards, std::size_t parity_shards)
    : k_(data_shards), m_(parity_shards), encode_matrix_(1, 1), parity_matrix_(1, 1) {
  if (k_ == 0 || m_ == 0 || k_ + m_ > 255) {
    throw std::invalid_argument("ReedSolomon: need 1<=k, 1<=m, k+m<=255");
  }
  // Systematic form: E = V * inverse(top k rows of V). The top k rows become
  // the identity; any k-row submatrix of E stays invertible because E is V
  // times an invertible matrix.
  const Matrix v = Matrix::vandermonde(k_ + m_, k_);
  std::vector<std::size_t> top(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    top[i] = i;
  }
  const auto top_inv = v.select_rows(top).inverted();
  assert(top_inv.has_value());  // Vandermonde rows with distinct points
  encode_matrix_ = v.multiply(*top_inv);

  // Cache the parity rows and their product tables: encode() reuses them on
  // every call instead of re-deriving matrix rows and log/exp products.
  std::vector<std::size_t> parity_rows(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    parity_rows[i] = k_ + i;
  }
  parity_matrix_ = encode_matrix_.select_rows(parity_rows);
  parity_tables_ = build_tables(parity_matrix_);
}

std::vector<MulTable> ReedSolomon::build_tables(const Matrix& m) {
  std::vector<MulTable> tables(m.rows() * m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      tables[r * m.cols() + c].init(m.at(r, c));
    }
  }
  return tables;
}

void ReedSolomon::check_shard_sizes(const std::vector<Shard>& shards,
                                    std::size_t expect_count) const {
  if (shards.size() != expect_count) {
    throw std::invalid_argument("ReedSolomon: wrong shard count");
  }
  for (const Shard& s : shards) {
    if (s.size() != shards.front().size()) {
      throw std::invalid_argument("ReedSolomon: shards must be equal length");
    }
  }
}

void ReedSolomon::apply_tables(const std::vector<MulTable>& tables, std::size_t rows,
                               std::size_t cols, const std::vector<const Shard*>& in,
                               const std::vector<Shard*>& out) const {
  assert(tables.size() == rows * cols);
  assert(rows == out.size());
  assert(cols == in.size());
  const std::size_t len = in.empty() ? 0 : in.front()->size();
  for (std::size_t r = 0; r < rows; ++r) {
    out[r]->resize(len);
  }
  if (len == 0) {
    return;
  }

  const KernelKind kind = active_kernel();
  auto run_chunk = [&](std::size_t offset, std::size_t n) {
    for (std::size_t r = 0; r < rows; ++r) {
      std::uint8_t* dst = out[r]->data() + offset;
      // The first column overwrites dst (so stale bytes never survive), the
      // rest accumulate.
      mul_region(kind, tables[r * cols], dst, in[0]->data() + offset, n);
      for (std::size_t c = 1; c < cols; ++c) {
        muladd_region(kind, tables[r * cols + c], dst, in[c]->data() + offset, n);
      }
    }
  };

  if (pool_ != nullptr && pool_->size() > 1 && len >= kParallelMinBytes) {
    const std::size_t chunks = (len + kChunkBytes - 1) / kChunkBytes;
    pool_->parallel_for(chunks, [&](std::size_t ci) {
      const std::size_t offset = ci * kChunkBytes;
      run_chunk(offset, std::min(kChunkBytes, len - offset));
    });
  } else {
    // Serial, but still chunked so all rows of one sub-range stay in cache.
    for (std::size_t offset = 0; offset < len; offset += kChunkBytes) {
      run_chunk(offset, std::min(kChunkBytes, len - offset));
    }
  }
}

std::vector<ReedSolomon::Shard> ReedSolomon::encode(const std::vector<Shard>& data) const {
  check_shard_sizes(data, k_);
  std::vector<Shard> parity(m_);
  std::vector<const Shard*> in(k_);
  std::vector<Shard*> out(m_);
  for (std::size_t i = 0; i < k_; ++i) {
    in[i] = &data[i];
  }
  for (std::size_t i = 0; i < m_; ++i) {
    out[i] = &parity[i];
  }
  apply_tables(parity_tables_, m_, k_, in, out);
  return parity;
}

bool ReedSolomon::reconstruct(std::vector<Shard>& shards,
                              const std::vector<bool>& present) const {
  if (shards.size() != k_ + m_ || present.size() != k_ + m_) {
    throw std::invalid_argument("ReedSolomon::reconstruct: wrong shard count");
  }
  std::vector<std::size_t> have;
  for (std::size_t i = 0; i < present.size(); ++i) {
    if (present[i]) {
      have.push_back(i);
    }
  }
  if (have.size() < k_) {
    return false;
  }
  have.resize(k_);  // any k present shards suffice

  std::size_t len = shards[have.front()].size();
  for (const std::size_t i : have) {
    if (shards[i].size() != len) {
      throw std::invalid_argument("ReedSolomon::reconstruct: shard length mismatch");
    }
  }

  // Rows of the encoding matrix for the shards we have; its inverse maps the
  // present shards back to the original data shards.
  const auto inv = encode_matrix_.select_rows(have).inverted();
  assert(inv.has_value());

  // Recover data shards first.
  std::vector<const Shard*> in(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    in[i] = &shards[have[i]];
  }
  std::vector<Shard> data(k_);
  std::vector<Shard*> out(k_);
  for (std::size_t i = 0; i < k_; ++i) {
    out[i] = &data[i];
  }
  apply_tables(build_tables(*inv), k_, k_, in, out);

  for (std::size_t i = 0; i < k_; ++i) {
    if (!present[i]) {
      shards[i] = data[i];
    }
  }
  // Recompute any missing parity from the (now complete) data shards.
  bool parity_missing = false;
  for (std::size_t i = k_; i < k_ + m_; ++i) {
    parity_missing = parity_missing || !present[i];
  }
  if (parity_missing) {
    std::vector<Shard> data_view(shards.begin(), shards.begin() + static_cast<std::ptrdiff_t>(k_));
    std::vector<Shard> parity = encode(data_view);
    for (std::size_t i = 0; i < m_; ++i) {
      if (!present[k_ + i]) {
        shards[k_ + i] = std::move(parity[i]);
      }
    }
  }
  return true;
}

bool ReedSolomon::verify(const std::vector<Shard>& data,
                         const std::vector<Shard>& parity) const {
  check_shard_sizes(data, k_);
  if (parity.size() != m_) {
    return false;
  }
  const std::vector<Shard> expect = encode(data);
  for (std::size_t i = 0; i < m_; ++i) {
    if (parity[i] != expect[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace erms::ec
