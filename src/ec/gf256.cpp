#include "ec/gf256.h"

#include <cassert>

namespace erms::ec {

GF256::Tables::Tables() {
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp[i] = static_cast<Elem>(x);
    log[x] = i;
    x <<= 1;
    if (x & 0x100u) {
      x ^= kPoly;
    }
  }
  for (unsigned i = 255; i < 512; ++i) {
    exp[i] = exp[i - 255];
  }
  log[0] = 0;  // never read; log(0) is a precondition violation
}

const GF256::Tables& GF256::tables() {
  static const Tables t;
  return t;
}

GF256::Elem GF256::mul(Elem a, Elem b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

GF256::Elem GF256::div(Elem a, Elem b) {
  assert(b != 0);
  if (a == 0) {
    return 0;
  }
  const Tables& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

GF256::Elem GF256::inv(Elem a) {
  assert(a != 0);
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

GF256::Elem GF256::pow(Elem a, unsigned n) {
  if (n == 0) {
    return 1;
  }
  if (a == 0) {
    return 0;
  }
  const Tables& t = tables();
  return t.exp[(t.log[a] * n) % 255];
}

GF256::Elem GF256::exp(unsigned n) { return tables().exp[n % 255]; }

unsigned GF256::log(Elem a) {
  assert(a != 0);
  return tables().log[a];
}

}  // namespace erms::ec
