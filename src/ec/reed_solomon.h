#pragma once

#include <cstdint>
#include <vector>

#include "ec/gf_region.h"
#include "ec/matrix.h"

namespace erms::util {
class ThreadPool;
}  // namespace erms::util

namespace erms::ec {

/// Systematic Reed–Solomon erasure code over GF(2^8): k data shards, m
/// parity shards; any k of the k+m shards reconstruct the rest. The paper's
/// ERMS encodes cold files with k data blocks and m=4 parities at
/// replication factor 1 (§IV.B).
///
/// The encoding matrix is a Vandermonde matrix row-reduced so its top k×k is
/// the identity (systematic form). Every k-row submatrix remains invertible,
/// which is the property decoding relies on.
///
/// The hot loops run through the gf_region kernels (table/SIMD dispatch; see
/// gf_region.h). The constructor caches the parity submatrix and one
/// MulTable per parity-matrix entry, so encode() does no per-call matrix or
/// table work. An optional ThreadPool splits large shards into sub-ranges
/// encoded/decoded concurrently.
class ReedSolomon {
 public:
  using Shard = std::vector<std::uint8_t>;

  /// Requires 1 <= k, 1 <= m, k + m <= 255 (distinct field points).
  ReedSolomon(std::size_t data_shards, std::size_t parity_shards);

  [[nodiscard]] std::size_t data_shards() const { return k_; }
  [[nodiscard]] std::size_t parity_shards() const { return m_; }
  [[nodiscard]] std::size_t total_shards() const { return k_ + m_; }

  /// Borrow a pool for multi-threaded region work; nullptr reverts to
  /// serial. The pool must outlive every encode/reconstruct/verify call.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] util::ThreadPool* thread_pool() const { return pool_; }

  /// Compute the m parity shards for k equal-length data shards.
  [[nodiscard]] std::vector<Shard> encode(const std::vector<Shard>& data) const;

  /// Reconstruct missing shards in place. `shards` has k+m entries (data
  /// first, then parity); `present[i]` says whether shards[i] holds valid
  /// data. Missing shards may be empty vectors; they are resized and filled.
  /// Returns false if fewer than k shards are present.
  bool reconstruct(std::vector<Shard>& shards, const std::vector<bool>& present) const;

  /// True if the parity shards are consistent with the data shards.
  [[nodiscard]] bool verify(const std::vector<Shard>& data,
                            const std::vector<Shard>& parity) const;

  /// The full (k+m)×k encoding matrix (identity on top).
  [[nodiscard]] const Matrix& encoding_matrix() const { return encode_matrix_; }

 private:
  void check_shard_sizes(const std::vector<Shard>& shards, std::size_t expect_count) const;

  /// out[r] = sum_c tables[r*cols+c] * in[c], for byte vectors; `tables`
  /// holds one MulTable per matrix entry, row-major. Output shards are
  /// resized to the input length. Chunked across pool_ when set.
  void apply_tables(const std::vector<MulTable>& tables, std::size_t rows,
                    std::size_t cols, const std::vector<const Shard*>& in,
                    const std::vector<Shard*>& out) const;

  /// Build the per-entry table vector for an arbitrary matrix (decode path;
  /// the encode path uses the cached parity_tables_).
  static std::vector<MulTable> build_tables(const Matrix& m);

  std::size_t k_;
  std::size_t m_;
  Matrix encode_matrix_;               // (k+m) x k, systematic
  Matrix parity_matrix_;               // rows k..k+m-1 of encode_matrix_
  std::vector<MulTable> parity_tables_;  // m*k tables, row-major
  util::ThreadPool* pool_{nullptr};
};

}  // namespace erms::ec
