#include "ec/codec_registry.h"

#include <algorithm>

#include "ec/azure_lrc.h"
#include "ec/hh_xor_plus.h"

namespace erms::ec {

namespace {

/// The registry table: one row per CodecKind, in enum order. The name
/// strings are what ErmsConfig::codec_* fields, ClassAd "Codec" attributes,
/// trace events and the docs-coverage gate all use.
constexpr struct {
  CodecKind kind;
  const char* name;
} kCodecTable[] = {
    {CodecKind::kRs, "rs"},
    {CodecKind::kAzureLrc, "azure_lrc"},
    {CodecKind::kHitchhikerXorPlus, "hh_xor_plus"},
};

}  // namespace

const char* to_string(CodecKind kind) {
  for (const auto& row : kCodecTable) {
    if (row.kind == kind) {
      return row.name;
    }
  }
  return "rs";
}

std::optional<CodecKind> codec_kind_from(std::string_view name) {
  for (const auto& row : kCodecTable) {
    if (name == row.name) {
      return row.kind;
    }
  }
  return std::nullopt;
}

const std::vector<std::string_view>& registered_codec_names() {
  static const std::vector<std::string_view> names = [] {
    std::vector<std::string_view> out;
    for (const auto& row : kCodecTable) {
      out.emplace_back(row.name);
    }
    return out;
  }();
  return names;
}

std::size_t codec_kind_count() { return std::size(kCodecTable); }

CodecSpec normalize_spec(CodecSpec spec, std::size_t data_shards) {
  const auto k = static_cast<std::uint32_t>(std::max<std::size_t>(data_shards, 1));
  switch (spec.kind) {
    case CodecKind::kRs:
      spec.parities = std::max(spec.parities, 1u);
      break;
    case CodecKind::kAzureLrc:
      spec.local_groups = std::clamp(spec.local_groups, 1u, k);
      if (spec.local_groups + spec.global_parities == 0) {
        spec.local_groups = 1;
      }
      break;
    case CodecKind::kHitchhikerXorPlus:
      // The piggyback needs a parity beyond the XOR parity to ride on.
      spec.parities = std::max(spec.parities, 2u);
      break;
  }
  return spec;
}

std::unique_ptr<ErasureCodec> make_codec(const CodecSpec& raw, std::size_t data_shards) {
  const CodecSpec spec = normalize_spec(raw, data_shards);
  switch (spec.kind) {
    case CodecKind::kAzureLrc:
      return std::make_unique<AzureLrcCodec>(data_shards, spec.local_groups,
                                             spec.global_parities);
    case CodecKind::kHitchhikerXorPlus:
      return std::make_unique<HitchhikerXorPlusCodec>(data_shards, spec.parities);
    case CodecKind::kRs:
      break;
  }
  return std::make_unique<RsCodec>(data_shards, spec.parities);
}

}  // namespace erms::ec
