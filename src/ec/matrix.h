#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "ec/gf256.h"

namespace erms::ec {

/// Dense matrix over GF(2^8). Small (k+m ≤ tens), so a simple row-major
/// vector is the right representation.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] GF256::Elem at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  void set(std::size_t r, std::size_t c, GF256::Elem v) { data_[r * cols_ + c] = v; }

  [[nodiscard]] const GF256::Elem* row(std::size_t r) const { return &data_[r * cols_]; }

  static Matrix identity(std::size_t n);

  /// Vandermonde matrix V[r][c] = (generator^r)^c — any square submatrix of
  /// rows is invertible, which is what Reed–Solomon needs.
  static Matrix vandermonde(std::size_t rows, std::size_t cols);

  [[nodiscard]] Matrix multiply(const Matrix& rhs) const;

  /// Gauss–Jordan inverse; nullopt if singular. Precondition: square.
  [[nodiscard]] std::optional<Matrix> inverted() const;

  /// New matrix made of the given rows of this one, in order.
  [[nodiscard]] Matrix select_rows(const std::vector<std::size_t>& rows) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<GF256::Elem> data_;
};

}  // namespace erms::ec
