#include "ec/azure_lrc.h"

#include <stdexcept>

namespace erms::ec {

namespace {

std::vector<std::vector<std::size_t>> make_groups(std::size_t k, std::size_t l) {
  // Balanced contiguous split: the first k%l groups get one extra member.
  std::vector<std::vector<std::size_t>> groups(l);
  const std::size_t base = k / l;
  const std::size_t extra = k % l;
  std::size_t next = 0;
  for (std::size_t j = 0; j < l; ++j) {
    const std::size_t size = base + (j < extra ? 1 : 0);
    for (std::size_t i = 0; i < size; ++i) {
      groups[j].push_back(next++);
    }
  }
  return groups;
}

Matrix make_generator(std::size_t k, std::size_t l, std::size_t g,
                      const std::vector<std::vector<std::size_t>>& groups) {
  if (l == 0 || l > k || l + g == 0 || k + l + g > 255) {
    throw std::invalid_argument("AzureLrcCodec: need 1<=l<=k, l+g>=1, k+l+g<=255");
  }
  Matrix gen(k + l + g, k);
  for (std::size_t i = 0; i < k; ++i) {
    gen.set(i, i, 1);
  }
  for (std::size_t j = 0; j < l; ++j) {
    for (const std::size_t i : groups[j]) {
      gen.set(k + j, i, 1);  // local parity = XOR of the group
    }
  }
  if (g > 0) {
    // Global parities from the systematic RS construction: every square
    // submatrix of its parity block is nonsingular, so any g data losses
    // (plus local XORs for the rest) stay solvable.
    const Matrix rs = systematic_rs_matrix(k, g);
    for (std::size_t j = 0; j < g; ++j) {
      for (std::size_t c = 0; c < k; ++c) {
        gen.set(k + l + j, c, rs.at(k + j, c));
      }
    }
  }
  return gen;
}

}  // namespace

AzureLrcCodec::AzureLrcCodec(std::size_t data_shards, std::size_t local_groups,
                             std::size_t global_parities)
    : LinearCodec("azure_lrc", data_shards, local_groups + global_parities, 1,
                  make_generator(data_shards, local_groups, global_parities,
                                 make_groups(data_shards, local_groups))),
      l_(local_groups),
      g_(global_parities),
      groups_(make_groups(data_shards, local_groups)),
      group_of_(data_shards) {
  for (std::size_t j = 0; j < l_; ++j) {
    for (const std::size_t i : groups_[j]) {
      group_of_[i] = j;
    }
  }
}

std::optional<RepairPlan> AzureLrcCodec::plan_repair(
    std::size_t lost, const std::vector<bool>& present) const {
  const std::size_t k = data_shards();
  const std::size_t n = total_shards();
  if (lost >= n || present.size() != n || present[lost]) {
    return std::nullopt;
  }
  auto all_present = [&](const std::vector<std::size_t>& shards,
                         std::size_t skip) {
    for (const std::size_t i : shards) {
      if (i != skip && !present[i]) {
        return false;
      }
    }
    return true;
  };
  RepairPlan plan;
  plan.subshards = 1;
  if (lost < k) {
    // Data shard: its group's survivors + the local parity.
    const std::size_t j = group_of_[lost];
    if (all_present(groups_[j], lost) && present[k + j]) {
      for (const std::size_t i : groups_[j]) {
        if (i != lost) {
          plan.cells.push_back({static_cast<std::uint16_t>(i), 0});
        }
      }
      plan.cells.push_back({static_cast<std::uint16_t>(k + j), 0});
      return plan;
    }
  } else if (lost < k + l_) {
    // Local parity: re-XOR its group.
    const std::size_t j = lost - k;
    if (all_present(groups_[j], n)) {
      for (const std::size_t i : groups_[j]) {
        plan.cells.push_back({static_cast<std::uint16_t>(i), 0});
      }
      return plan;
    }
  } else {
    // Global parity: re-encode from all k data shards.
    bool have_data = true;
    for (std::size_t i = 0; i < k; ++i) {
      have_data = have_data && present[i];
    }
    if (have_data) {
      for (std::size_t i = 0; i < k; ++i) {
        plan.cells.push_back({static_cast<std::uint16_t>(i), 0});
      }
      return plan;
    }
  }
  return generic_plan(lost, present);
}

}  // namespace erms::ec
