#include "ec/matrix.h"

#include <cassert>
#include <stdexcept>

namespace erms::ec {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Matrix: zero dimension");
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set(i, i, 1);
  }
  return m;
}

Matrix Matrix::vandermonde(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const GF256::Elem base = GF256::exp(static_cast<unsigned>(r));
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c, GF256::pow(base, static_cast<unsigned>(c)));
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const GF256::Elem a = at(r, k);
      if (a == 0) {
        continue;
      }
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out.set(r, c, GF256::add(out.at(r, c), GF256::mul(a, rhs.at(k, c))));
      }
    }
  }
  return out;
}

std::optional<Matrix> Matrix::inverted() const {
  assert(rows_ == cols_);
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix inv = Matrix::identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) {
      ++pivot;
    }
    if (pivot == n) {
      return std::nullopt;  // singular
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work.data_[pivot * n + c], work.data_[col * n + c]);
        std::swap(inv.data_[pivot * n + c], inv.data_[col * n + c]);
      }
    }
    // Normalise the pivot row.
    const GF256::Elem d = work.at(col, col);
    const GF256::Elem dinv = GF256::inv(d);
    for (std::size_t c = 0; c < n; ++c) {
      work.set(col, c, GF256::mul(work.at(col, c), dinv));
      inv.set(col, c, GF256::mul(inv.at(col, c), dinv));
    }
    // Eliminate the column from all other rows.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) {
        continue;
      }
      const GF256::Elem f = work.at(r, col);
      if (f == 0) {
        continue;
      }
      for (std::size_t c = 0; c < n; ++c) {
        work.set(r, c, GF256::sub(work.at(r, c), GF256::mul(f, work.at(col, c))));
        inv.set(r, c, GF256::sub(inv.at(r, c), GF256::mul(f, inv.at(col, c))));
      }
    }
  }
  return inv;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i] < rows_);
    for (std::size_t c = 0; c < cols_; ++c) {
      out.set(i, c, at(rows[i], c));
    }
  }
  return out;
}

}  // namespace erms::ec
