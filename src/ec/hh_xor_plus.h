#pragma once

#include <cstddef>
#include <vector>

#include "ec/codec.h"

namespace erms::ec {

/// Hitchhiker-XOR+ (k, m): the piggybacked Reed–Solomon code of Rashmi et
/// al. (SIGCOMM'14), sub-packetization 2. Every shard is two half-cells
/// (a; b). The code runs the base RS(k, m) twice — f_j(a) in the first
/// halves, f_j(b) in the second — and "hitchhikes" XORs of first-instance
/// data onto the second-instance parities:
///
///   parity 0:  [ f_0(a) ; f_0(b) ]               (f_0 column-normalized
///                                                 to the all-XOR parity)
///   parity j:  [ f_j(a) ; f_j(b) ⊕ ⨁_{i∈G_j} a_i ]   for j = 1..m-1
///
/// where G_1..G_{m-1} partition the data shards. Normalizing the base
/// parity matrix column-wise so f_0 is a plain XOR preserves the MDS
/// property (each k-row submatrix only gets rows/columns scaled by nonzero
/// constants) — that is the "XOR+" refinement making b_i recovery cheap.
///
/// Repairing data shard i ∈ G_j reads only: every other shard's b half
/// (k−1 halves, parity 0's included), parity j's b half, and the a halves
/// of G_j \ {i} — (k + |G_j|)/2 shard-equivalents instead of RS's k. At
/// (k,m) = (8,4), groups of 2-3 give ≈ 5.2 reads vs 8. Fault tolerance is
/// exactly RS(k, m): any m shard losses are recoverable (decode the a
/// instance from surviving first halves, strip the piggybacks, decode b).
class HitchhikerXorPlusCodec final : public LinearCodec {
 public:
  /// Requires 1 <= k, 2 <= m, k + m <= 255 (m >= 2: the piggyback needs a
  /// parity to ride on top of the XOR parity).
  HitchhikerXorPlusCodec(std::size_t data_shards, std::size_t parity_shards);

  /// Data shard index -> piggyback group (1..m-1).
  [[nodiscard]] std::size_t group_of(std::size_t data_shard) const {
    return group_of_[data_shard];
  }

  /// Half-shard plan for a lost data shard (see class comment); generic
  /// span-based fallback for parity losses or degraded helper sets.
  [[nodiscard]] std::optional<RepairPlan> plan_repair(
      std::size_t lost, const std::vector<bool>& present) const override;

 private:
  std::vector<std::vector<std::size_t>> groups_;  // groups_[j], j in 1..m-1
  std::vector<std::size_t> group_of_;
};

}  // namespace erms::ec
