#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "ec/codec.h"

namespace erms::ec {

/// Every pluggable code the zoo offers. The numeric values are persisted in
/// the namespace fsimage and carried on FileInfo — never renumber.
enum class CodecKind : std::uint8_t {
  kRs = 0,                 // Reed–Solomon (k, m) — MDS, highest rate per parity
  kAzureLrc = 1,           // AzureLRC (k, l, g) — local-group repair
  kHitchhikerXorPlus = 2,  // Hitchhiker-XOR+ (k, m) — half-shard repair, MDS
};

/// Parameters selecting and shaping a code; `k` comes from the stripe.
struct CodecSpec {
  CodecKind kind{CodecKind::kRs};
  /// Parity shards for rs / hh_xor_plus (ignored by azure_lrc).
  std::uint32_t parities{4};
  /// azure_lrc locals (l) and globals (g).
  std::uint32_t local_groups{2};
  std::uint32_t global_parities{2};

  /// Total parity shards the stripe will carry.
  [[nodiscard]] std::uint32_t total_parities() const {
    return kind == CodecKind::kAzureLrc ? local_groups + global_parities : parities;
  }
};

/// Registry name of a kind ("rs", "azure_lrc", "hh_xor_plus").
[[nodiscard]] const char* to_string(CodecKind kind);

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<CodecKind> codec_kind_from(std::string_view name);

/// All registered codec names, in CodecKind order. The docs-coverage gate
/// (scripts/check_codec_docs.py) requires each of these to appear in
/// docs/EC_CODECS.md.
[[nodiscard]] const std::vector<std::string_view>& registered_codec_names();

/// Number of registered kinds (for per-codec metric arrays).
[[nodiscard]] std::size_t codec_kind_count();

/// Clamp a spec to parameters valid for a k-shard stripe: parities >= 1
/// (>= 2 for hh_xor_plus), 1 <= l <= k for azure_lrc, l + g >= 1. Does not
/// enforce the GF(2^8) bound k + m <= 255 — make_codec throws on that, and
/// callers that only need shard *counts* (the cluster's simulated flows)
/// can still use the normalized spec.
[[nodiscard]] CodecSpec normalize_spec(CodecSpec spec, std::size_t data_shards);

/// Construct the codec a normalized spec describes. Throws
/// std::invalid_argument for shapes the field cannot host (k + m > 255).
[[nodiscard]] std::unique_ptr<ErasureCodec> make_codec(const CodecSpec& spec,
                                                       std::size_t data_shards);

}  // namespace erms::ec
