#pragma once

#include <array>
#include <cstdint>

namespace erms::ec {

/// Arithmetic in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11d is
/// the Rijndael-compatible 0x11b alternative; we use 0x11d, the polynomial
/// used by most storage RS implementations, with generator 2).
/// Multiplication/division go through log/exp tables built at static init.
class GF256 {
 public:
  using Elem = std::uint8_t;

  static constexpr unsigned kPoly = 0x11d;
  static constexpr unsigned kFieldSize = 256;

  /// Addition and subtraction are both XOR in a characteristic-2 field.
  static constexpr Elem add(Elem a, Elem b) { return a ^ b; }
  static constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

  static Elem mul(Elem a, Elem b);

  /// Division a/b. Precondition: b != 0.
  static Elem div(Elem a, Elem b);

  /// Multiplicative inverse. Precondition: a != 0.
  static Elem inv(Elem a);

  /// a^n for n >= 0 (0^0 == 1 by convention).
  static Elem pow(Elem a, unsigned n);

  /// The generator element (2) raised to `n` — convenient for building
  /// Vandermonde matrices.
  static Elem exp(unsigned n);

  /// Discrete log base 2. Precondition: a != 0.
  static unsigned log(Elem a);

 private:
  struct Tables {
    std::array<Elem, 512> exp;   // doubled so mul can skip a modulo
    std::array<unsigned, 256> log;
    Tables();
  };
  static const Tables& tables();
};

}  // namespace erms::ec
