#include "ec/stripe_codec.h"

#include <algorithm>
#include <cassert>

namespace erms::ec {

StripeCodec::Stripe StripeCodec::encode(const std::vector<std::uint8_t>& bytes) const {
  const std::size_t k = codec_->data_shards();
  const std::size_t s = codec_->subshards();
  std::size_t shard_len = bytes.empty() ? 1 : (bytes.size() + k - 1) / k;
  shard_len = (shard_len + s - 1) / s * s;  // sub-packetization alignment

  Stripe stripe;
  stripe.original_size = bytes.size();
  stripe.shards.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    stripe.shards[i].assign(shard_len, 0);
    const std::size_t begin = i * shard_len;
    if (begin < bytes.size()) {
      const std::size_t n = std::min(shard_len, bytes.size() - begin);
      std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(begin), n,
                  stripe.shards[i].begin());
    }
  }
  std::vector<ErasureCodec::Shard> parity = codec_->encode(stripe.shards);
  for (auto& p : parity) {
    stripe.shards.push_back(std::move(p));
  }
  return stripe;
}

bool StripeCodec::decode(Stripe& stripe, const std::vector<bool>& present,
                         std::vector<std::uint8_t>& out) const {
  if (!codec_->reconstruct(stripe.shards, present)) {
    return false;
  }
  out.clear();
  out.reserve(stripe.original_size);
  const std::size_t k = codec_->data_shards();
  for (std::size_t i = 0; i < k && out.size() < stripe.original_size; ++i) {
    const auto& shard = stripe.shards[i];
    const std::size_t n =
        std::min(shard.size(), static_cast<std::size_t>(stripe.original_size) - out.size());
    out.insert(out.end(), shard.begin(), shard.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return true;
}

}  // namespace erms::ec
