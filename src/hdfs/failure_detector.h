#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "hdfs/cluster.h"

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::hdfs {

/// The namenode's heartbeat-based failure detector. Datanodes heartbeat
/// every few seconds; a node silent for `tolerance` intervals is declared
/// dead, which drops its replicas and queues re-replication (HDFS defaults:
/// 3 s heartbeats, 10 min dead-node interval — scaled down here so
/// experiments exercise the path in simulated minutes).
///
/// In the simulator, healthy serving nodes "send" heartbeats implicitly;
/// `mute()` makes a node fall silent without an explicit fail_node() call —
/// the way a real crash looks to the namenode.
class FailureDetector {
 public:
  struct Config {
    sim::SimDuration heartbeat_interval = sim::seconds(3.0);
    /// Missed consecutive heartbeats before the node is declared dead.
    std::uint32_t tolerance = 10;
  };

  FailureDetector(Cluster& cluster, Config config);
  explicit FailureDetector(Cluster& cluster) : FailureDetector(cluster, Config{}) {}

  /// Begin monitoring (idempotent).
  void start();
  void stop();

  /// Make a node fall silent (simulated crash, network partition, ...).
  void mute(NodeId node) { muted_.insert(node); }
  /// The node resumes heartbeating. If it was not yet declared dead, it
  /// escapes. If it was already declared dead, this is a datanode
  /// re-registration: the node revives, its heartbeat clock resets, and its
  /// stale replicas are reconciled against current targets (surplus copies
  /// dropped, still-needed ones reclaimed).
  void unmute(NodeId node);
  [[nodiscard]] bool is_muted(NodeId node) const { return muted_.contains(node); }
  [[nodiscard]] std::uint64_t reregistrations() const { return reregistrations_; }

  /// Time since the last heartbeat of a node.
  [[nodiscard]] sim::SimDuration silence(NodeId node) const;

  [[nodiscard]] std::uint64_t failures_declared() const { return failures_declared_; }
  [[nodiscard]] bool running() const { return running_; }

  /// Snapshot support (src/snapshot/): heartbeat clocks, muted set, counters
  /// and — when running — the absolute time of the pending tick, which
  /// resume() re-arms so restored heartbeat checks fire at the same times as
  /// the uninterrupted run's.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);
  /// Re-arm the tick after load_state; no-op if the saved detector was
  /// stopped.
  void resume();

 private:
  void tick();

  Cluster& cluster_;
  Config config_;
  std::unordered_map<NodeId, sim::SimTime> last_heartbeat_;
  std::unordered_set<NodeId> muted_;
  std::uint64_t failures_declared_{0};
  std::uint64_t reregistrations_{0};
  bool running_{false};
  sim::EventHandle tick_handle_;
  sim::SimTime next_tick_time_;
};

}  // namespace erms::hdfs
