#include "hdfs/namespace.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>

#include "snapshot/codec.h"
#include "util/thread_pool.h"

namespace erms::hdfs {

Namespace::Namespace() : paths_(std::make_unique<PathTable>(1)) {}

void Namespace::set_shards(std::size_t shards) {
  if (live_files_ != 0 || files_.size() > 1) return;  // only while empty
  paths_ = std::make_unique<PathTable>(shards);
}

void Namespace::reserve(std::size_t files, std::size_t blocks) {
  files_.reserve(files + 1);
  blocks_.reserve(blocks + 1);
  paths_->reserve(files);
}

FileInfo& Namespace::file_slot(FileId file) {
  if (files_.size() <= file.value()) files_.resize(file.value() + 1);
  return files_[file.value()];
}

BlockInfo& Namespace::block_slot(BlockId block) {
  if (blocks_.size() <= block.value()) blocks_.resize(block.value() + 1);
  return blocks_[block.value()];
}

std::optional<FileId> Namespace::create(const std::string& path, std::uint64_t size,
                                        std::uint64_t block_size, std::uint32_t replication) {
  if (size == 0 || block_size == 0 || paths_->find(path)) {
    return std::nullopt;
  }
  const FileId id = file_ids_.next();
  const auto stored = paths_->intern(path, id);
  assert(stored.has_value());
  FileInfo file;
  file.id = id;
  file.path = *stored;
  file.size = size;
  file.block_size = block_size;
  file.replication = replication;

  std::uint64_t remaining = size;
  std::uint32_t index = 0;
  while (remaining > 0) {
    const std::uint64_t this_block = remaining < block_size ? remaining : block_size;
    const BlockId bid = block_ids_.next();
    BlockInfo block;
    block.id = bid;
    block.file = id;
    block.size = this_block;
    block.index = index++;
    block_slot(bid) = block;
    file.blocks.push_back(bid);
    remaining -= this_block;
  }
  file_slot(id) = std::move(file);
  ++live_files_;
  return id;
}

std::vector<std::optional<FileId>> Namespace::create_batch(
    const std::vector<FileSpec>& specs, util::ThreadPool* pool) {
  std::vector<std::optional<FileId>> results(specs.size());

  // Serial pass: validate, intern (duplicate detection) and assign file and
  // block id ranges in spec order — identical id assignment to a serial
  // `create` loop, independent of shard count or pool size.
  struct Plan {
    std::size_t spec;
    FileId id;
    std::string_view stored;
    BlockId::rep_type first_block;
    std::uint32_t block_count;
  };
  std::vector<Plan> plans;
  plans.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const FileSpec& spec = specs[i];
    if (spec.size == 0 || spec.block_size == 0 || paths_->find(spec.path)) continue;
    const FileId id = file_ids_.next();
    const auto stored = paths_->intern(spec.path, id);
    assert(stored.has_value());
    const auto nblocks = static_cast<std::uint32_t>(
        (spec.size + spec.block_size - 1) / spec.block_size);
    const BlockId first = block_ids_.next();
    for (std::uint32_t b = 1; b < nblocks; ++b) {
      (void)block_ids_.next();  // burn ids so the file's blocks stay contiguous
    }
    plans.push_back(Plan{i, id, *stored, first.value(), nblocks});
    results[i] = id;
  }
  if (plans.empty()) return results;

  // Pre-size the dense tables once, then fill disjoint slots — safe to run
  // on the pool because every plan touches only its own id range.
  const Plan& last = plans.back();
  file_slot(last.id);
  block_slot(BlockId{last.first_block + last.block_count - 1});

  const auto fill = [&](std::size_t p) {
    const Plan& plan = plans[p];
    const FileSpec& spec = specs[plan.spec];
    FileInfo& file = files_[plan.id.value()];
    file.id = plan.id;
    file.path = plan.stored;
    file.size = spec.size;
    file.block_size = spec.block_size;
    file.replication = spec.replication;
    file.blocks.reserve(plan.block_count);
    std::uint64_t remaining = spec.size;
    for (std::uint32_t b = 0; b < plan.block_count; ++b) {
      const BlockId bid{plan.first_block + b};
      BlockInfo& block = blocks_[bid.value()];
      block.id = bid;
      block.file = plan.id;
      block.size = remaining < spec.block_size ? remaining : spec.block_size;
      block.index = b;
      block.is_parity = false;
      file.blocks.push_back(bid);
      remaining -= block.size;
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(plans.size(), fill);
  } else {
    for (std::size_t p = 0; p < plans.size(); ++p) fill(p);
  }
  live_files_ += plans.size();
  return results;
}

std::vector<BlockId> Namespace::remove(FileId file) {
  FileInfo* info = find_mutable(file);
  if (info == nullptr) {
    return {};
  }
  std::vector<BlockId> removed = info->blocks;
  removed.insert(removed.end(), info->parity_blocks.begin(), info->parity_blocks.end());
  for (const BlockId b : removed) {
    if (b.value() < blocks_.size()) blocks_[b.value()] = BlockInfo{};
  }
  paths_->erase(info->path);
  *info = FileInfo{};
  --live_files_;
  return removed;
}

BlockId Namespace::add_parity_block(FileId file, std::uint64_t size) {
  FileInfo* info = find_mutable(file);
  assert(info != nullptr);
  const BlockId bid = block_ids_.next();
  BlockInfo block;
  block.id = bid;
  block.file = file;
  block.size = size;
  block.index = static_cast<std::uint32_t>(info->blocks.size() + info->parity_blocks.size());
  block.is_parity = true;
  block_slot(bid) = block;
  // block_slot may reallocate blocks_ only; info stays valid (files_ table).
  info->parity_blocks.push_back(bid);
  return bid;
}

std::vector<BlockId> Namespace::clear_parity_blocks(FileId file) {
  FileInfo* info = find_mutable(file);
  if (info == nullptr) {
    return {};
  }
  std::vector<BlockId> removed = std::move(info->parity_blocks);
  info->parity_blocks.clear();
  for (const BlockId b : removed) {
    if (b.value() < blocks_.size()) blocks_[b.value()] = BlockInfo{};
  }
  return removed;
}

void Namespace::set_replication(FileId file, std::uint32_t replication) {
  if (FileInfo* info = find_mutable(file)) {
    info->replication = replication;
  }
}

void Namespace::set_erasure_coded(FileId file, bool coded) {
  if (FileInfo* info = find_mutable(file)) {
    info->erasure_coded = coded;
  }
}

void Namespace::set_codec(FileId file, std::uint8_t codec, std::uint8_t locals) {
  if (FileInfo* info = find_mutable(file)) {
    info->ec_codec = codec;
    info->ec_locals = locals;
  }
}

const FileInfo* Namespace::find(FileId file) const {
  if (file.value() == 0 || file.value() >= files_.size()) return nullptr;
  const FileInfo& info = files_[file.value()];
  return info.id.value() == 0 ? nullptr : &info;
}

const FileInfo* Namespace::find_path(std::string_view path) const {
  const auto id = paths_->find(path);
  return id ? find(*id) : nullptr;
}

const BlockInfo* Namespace::find_block(BlockId block) const {
  if (block.value() == 0 || block.value() >= blocks_.size()) return nullptr;
  const BlockInfo& info = blocks_[block.value()];
  return info.id.value() == 0 ? nullptr : &info;
}

FileInfo* Namespace::find_mutable(FileId file) {
  return const_cast<FileInfo*>(static_cast<const Namespace*>(this)->find(file));
}

std::vector<FileId> Namespace::file_ids() const {
  std::vector<FileId> out;
  out.reserve(live_files_);
  for (const FileInfo& info : files_) {
    if (info.id.value() != 0) out.push_back(info.id);
  }
  return out;
}

void Namespace::save_image(std::ostream& os) const {
  os << "fsimage v1\n";
  // Dense storage iterates in id order already — the image's stable order.
  for (const FileInfo& f : files_) {
    if (f.id.value() == 0) continue;
    os << "file " << f.id.value() << ' ' << f.path << ' ' << f.size << ' '
       << f.block_size << ' ' << f.replication << ' ' << (f.erasure_coded ? 1 : 0);
    if (f.ec_codec != 0 || f.ec_locals != 0) {
      // Optional trailing shape fields — old images (and plain-RS files)
      // omit them, and the loader treats their absence as codec 0 ("rs").
      os << ' ' << static_cast<unsigned>(f.ec_codec) << ' '
         << static_cast<unsigned>(f.ec_locals);
    }
    os << '\n';
    for (const BlockId b : f.blocks) {
      const BlockInfo& info = blocks_[b.value()];
      os << "block " << info.id.value() << ' ' << info.size << ' ' << info.index
         << " 0\n";
    }
    for (const BlockId b : f.parity_blocks) {
      const BlockInfo& info = blocks_[b.value()];
      os << "block " << info.id.value() << ' ' << info.size << ' ' << info.index
         << " 1\n";
    }
  }
  os << "end\n";
}

bool Namespace::load_image(std::istream& is) {
  const std::size_t shards = paths_->shard_count();
  *this = Namespace{};
  set_shards(shards);
  std::string line;
  if (!std::getline(is, line) || line != "fsimage v1") {
    return false;
  }
  const auto fail = [&] {
    *this = Namespace{};
    set_shards(shards);
    return false;
  };
  FileId current{0};
  std::uint64_t max_file_id = 0;
  std::uint64_t max_block_id = 0;
  bool ended = false;
  while (std::getline(is, line)) {
    std::istringstream ss{line};
    std::string kind;
    ss >> kind;
    if (kind == "end") {
      ended = true;
      break;
    }
    if (kind == "file") {
      FileInfo info;
      std::uint64_t id = 0;
      std::string path;
      int coded = 0;
      if (!(ss >> id >> path >> info.size >> info.block_size >> info.replication >> coded)) {
        return fail();
      }
      info.id = FileId{static_cast<FileId::rep_type>(id)};
      info.erasure_coded = coded != 0;
      unsigned codec = 0;
      unsigned locals = 0;
      if (ss >> codec) {  // optional trailing codec shape (v1-compatible)
        if (!(ss >> locals) || codec > 255 || locals > 255) {
          return fail();
        }
        info.ec_codec = static_cast<std::uint8_t>(codec);
        info.ec_locals = static_cast<std::uint8_t>(locals);
      }
      max_file_id = std::max(max_file_id, id);
      const auto stored = paths_->intern(path, info.id);
      if (!stored) return fail();  // duplicate path in image
      info.path = *stored;
      current = info.id;
      file_slot(info.id) = std::move(info);
      ++live_files_;
    } else if (kind == "block") {
      std::uint64_t id = 0;
      BlockInfo info;
      int parity = 0;
      if (current.value() == 0 || !(ss >> id >> info.size >> info.index >> parity)) {
        return fail();
      }
      info.id = BlockId{id};
      info.file = current;
      info.is_parity = parity != 0;
      max_block_id = std::max(max_block_id, id);
      FileInfo& owner = files_[current.value()];
      (info.is_parity ? owner.parity_blocks : owner.blocks).push_back(info.id);
      block_slot(info.id) = info;
    } else {
      return fail();
    }
  }
  if (!ended) {
    return fail();
  }
  file_ids_ = util::IdGenerator<FileId>{static_cast<FileId::rep_type>(max_file_id + 1)};
  block_ids_ = util::IdGenerator<BlockId>{max_block_id + 1};
  return true;
}

void Namespace::save_state(snapshot::Writer& w) const {
  // Dense tables verbatim: tombstoned slots (zero id) are written too, so
  // every surviving id keeps its exact slot — the dense side tables
  // downstream (block map, feed, predictor, manager) depend on that.
  w.u64(files_.size());
  for (const FileInfo& f : files_) {
    w.u32(f.id.value());
    if (f.id.value() == 0) continue;
    w.str(std::string(f.path));
    w.u64(f.size);
    w.u64(f.block_size);
    w.u32(f.replication);
    w.u8(f.erasure_coded ? 1 : 0);
    w.u8(f.ec_codec);
    w.u8(f.ec_locals);
    w.u64(f.blocks.size());
    for (const BlockId b : f.blocks) w.u64(b.value());
    w.u64(f.parity_blocks.size());
    for (const BlockId b : f.parity_blocks) w.u64(b.value());
  }
  w.u64(blocks_.size());
  for (const BlockInfo& b : blocks_) {
    w.u64(b.id.value());
    if (b.id.value() == 0) continue;
    w.u32(b.file.value());
    w.u64(b.size);
    w.u32(b.index);
    w.u8(b.is_parity ? 1 : 0);
  }
  w.u64(live_files_);
  w.u32(file_ids_.peek());
  w.u64(block_ids_.peek());
}

void Namespace::load_state(snapshot::Reader& r) {
  const std::size_t shards = paths_->shard_count();
  *this = Namespace{};
  set_shards(shards);

  const std::uint64_t file_slots = r.u64();
  if (!r.require(file_slots < (1ull << 32), "file table size")) return;
  files_.resize(file_slots);
  for (std::uint64_t i = 0; i < file_slots && r.ok(); ++i) {
    FileInfo& f = files_[i];
    const std::uint32_t id = r.u32();
    if (!r.require(id == 0 || id == i, "file id matches slot")) return;
    f.id = FileId{id};
    if (id == 0) continue;
    const std::string path = r.str();
    f.size = r.u64();
    f.block_size = r.u64();
    f.replication = r.u32();
    f.erasure_coded = r.u8() != 0;
    f.ec_codec = r.u8();
    f.ec_locals = r.u8();
    const std::uint64_t nblocks = r.u64();
    if (!r.require(nblocks <= r.remaining() / sizeof(std::uint64_t), "block list length")) return;
    f.blocks.reserve(nblocks);
    for (std::uint64_t j = 0; j < nblocks; ++j) f.blocks.push_back(BlockId{r.u64()});
    const std::uint64_t nparity = r.u64();
    if (!r.require(nparity <= r.remaining() / sizeof(std::uint64_t), "parity list length")) return;
    f.parity_blocks.reserve(nparity);
    for (std::uint64_t j = 0; j < nparity; ++j) f.parity_blocks.push_back(BlockId{r.u64()});
    const auto stored = paths_->intern(path, f.id);
    if (!r.require(stored.has_value(), "duplicate path in snapshot")) return;
    f.path = *stored;
  }

  const std::uint64_t block_slots = r.u64();
  if (!r.require(block_slots <= r.remaining(), "block table size")) return;
  blocks_.resize(block_slots);
  for (std::uint64_t i = 0; i < block_slots && r.ok(); ++i) {
    BlockInfo& b = blocks_[i];
    const std::uint64_t id = r.u64();
    if (!r.require(id == 0 || id == i, "block id matches slot")) return;
    b.id = BlockId{id};
    if (id == 0) continue;
    b.file = FileId{r.u32()};
    b.size = r.u64();
    b.index = r.u32();
    b.is_parity = r.u8() != 0;
  }

  live_files_ = r.u64();
  file_ids_.reset(r.u32());
  block_ids_.reset(r.u64());
}

std::uint64_t Namespace::logical_bytes() const {
  std::uint64_t total = 0;
  for (const FileInfo& info : files_) {
    if (info.id.value() == 0) continue;
    total += info.size * info.replication;
    for (const BlockId b : info.parity_blocks) {
      if (b.value() < blocks_.size()) {
        total += blocks_[b.value()].size;
      }
    }
  }
  return total;
}

}  // namespace erms::hdfs
