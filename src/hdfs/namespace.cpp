#include "hdfs/namespace.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>

namespace erms::hdfs {

std::optional<FileId> Namespace::create(const std::string& path, std::uint64_t size,
                                        std::uint64_t block_size, std::uint32_t replication) {
  if (size == 0 || block_size == 0 || by_path_.contains(path)) {
    return std::nullopt;
  }
  const FileId id = file_ids_.next();
  FileInfo file;
  file.id = id;
  file.path = path;
  file.size = size;
  file.block_size = block_size;
  file.replication = replication;

  std::uint64_t remaining = size;
  std::uint32_t index = 0;
  while (remaining > 0) {
    const std::uint64_t this_block = remaining < block_size ? remaining : block_size;
    const BlockId bid = block_ids_.next();
    BlockInfo block;
    block.id = bid;
    block.file = id;
    block.size = this_block;
    block.index = index++;
    blocks_.emplace(bid, block);
    file.blocks.push_back(bid);
    remaining -= this_block;
  }
  by_path_.emplace(path, id);
  files_.emplace(id, std::move(file));
  return id;
}

std::vector<BlockId> Namespace::remove(FileId file) {
  const auto it = files_.find(file);
  if (it == files_.end()) {
    return {};
  }
  std::vector<BlockId> removed = it->second.blocks;
  removed.insert(removed.end(), it->second.parity_blocks.begin(),
                 it->second.parity_blocks.end());
  for (const BlockId b : removed) {
    blocks_.erase(b);
  }
  by_path_.erase(it->second.path);
  files_.erase(it);
  return removed;
}

BlockId Namespace::add_parity_block(FileId file, std::uint64_t size) {
  FileInfo* info = find_mutable(file);
  assert(info != nullptr);
  const BlockId bid = block_ids_.next();
  BlockInfo block;
  block.id = bid;
  block.file = file;
  block.size = size;
  block.index = static_cast<std::uint32_t>(info->blocks.size() + info->parity_blocks.size());
  block.is_parity = true;
  blocks_.emplace(bid, block);
  info->parity_blocks.push_back(bid);
  return bid;
}

std::vector<BlockId> Namespace::clear_parity_blocks(FileId file) {
  FileInfo* info = find_mutable(file);
  if (info == nullptr) {
    return {};
  }
  std::vector<BlockId> removed = std::move(info->parity_blocks);
  info->parity_blocks.clear();
  for (const BlockId b : removed) {
    blocks_.erase(b);
  }
  return removed;
}

void Namespace::set_replication(FileId file, std::uint32_t replication) {
  if (FileInfo* info = find_mutable(file)) {
    info->replication = replication;
  }
}

void Namespace::set_erasure_coded(FileId file, bool coded) {
  if (FileInfo* info = find_mutable(file)) {
    info->erasure_coded = coded;
  }
}

const FileInfo* Namespace::find(FileId file) const {
  const auto it = files_.find(file);
  return it == files_.end() ? nullptr : &it->second;
}

const FileInfo* Namespace::find_path(const std::string& path) const {
  const auto it = by_path_.find(path);
  return it == by_path_.end() ? nullptr : find(it->second);
}

const BlockInfo* Namespace::find_block(BlockId block) const {
  const auto it = blocks_.find(block);
  return it == blocks_.end() ? nullptr : &it->second;
}

FileInfo* Namespace::find_mutable(FileId file) {
  const auto it = files_.find(file);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<FileId> Namespace::file_ids() const {
  std::vector<FileId> out;
  out.reserve(files_.size());
  for (const auto& [id, info] : files_) {
    out.push_back(id);
  }
  return out;
}

void Namespace::save_image(std::ostream& os) const {
  os << "fsimage v1\n";
  // Stable order: by file id.
  std::vector<const FileInfo*> files;
  files.reserve(files_.size());
  for (const auto& [id, info] : files_) {
    files.push_back(&info);
  }
  std::sort(files.begin(), files.end(),
            [](const FileInfo* a, const FileInfo* b) { return a->id < b->id; });
  for (const FileInfo* f : files) {
    os << "file " << f->id.value() << ' ' << f->path << ' ' << f->size << ' '
       << f->block_size << ' ' << f->replication << ' ' << (f->erasure_coded ? 1 : 0)
       << '\n';
    for (const BlockId b : f->blocks) {
      const BlockInfo& info = blocks_.at(b);
      os << "block " << info.id.value() << ' ' << info.size << ' ' << info.index
         << " 0\n";
    }
    for (const BlockId b : f->parity_blocks) {
      const BlockInfo& info = blocks_.at(b);
      os << "block " << info.id.value() << ' ' << info.size << ' ' << info.index
         << " 1\n";
    }
  }
  os << "end\n";
}

bool Namespace::load_image(std::istream& is) {
  *this = Namespace{};
  std::string line;
  if (!std::getline(is, line) || line != "fsimage v1") {
    return false;
  }
  FileInfo* current = nullptr;
  std::uint64_t max_file_id = 0;
  std::uint64_t max_block_id = 0;
  bool ended = false;
  while (std::getline(is, line)) {
    std::istringstream ss{line};
    std::string kind;
    ss >> kind;
    if (kind == "end") {
      ended = true;
      break;
    }
    if (kind == "file") {
      FileInfo info;
      std::uint64_t id = 0;
      int coded = 0;
      if (!(ss >> id >> info.path >> info.size >> info.block_size >> info.replication >>
            coded)) {
        *this = Namespace{};
        return false;
      }
      info.id = FileId{id};
      info.erasure_coded = coded != 0;
      max_file_id = std::max(max_file_id, id);
      by_path_.emplace(info.path, info.id);
      current = &files_.emplace(info.id, std::move(info)).first->second;
    } else if (kind == "block") {
      std::uint64_t id = 0;
      BlockInfo info;
      int parity = 0;
      if (current == nullptr ||
          !(ss >> id >> info.size >> info.index >> parity)) {
        *this = Namespace{};
        return false;
      }
      info.id = BlockId{id};
      info.file = current->id;
      info.is_parity = parity != 0;
      max_block_id = std::max(max_block_id, id);
      (info.is_parity ? current->parity_blocks : current->blocks).push_back(info.id);
      blocks_.emplace(info.id, info);
    } else {
      *this = Namespace{};
      return false;
    }
  }
  if (!ended) {
    *this = Namespace{};
    return false;
  }
  file_ids_ = util::IdGenerator<FileId>{max_file_id + 1};
  block_ids_ = util::IdGenerator<BlockId>{max_block_id + 1};
  return true;
}

std::uint64_t Namespace::logical_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, info] : files_) {
    total += info.size * info.replication;
    for (const BlockId b : info.parity_blocks) {
      const auto it = blocks_.find(b);
      if (it != blocks_.end()) {
        total += it->second.size;
      }
    }
  }
  return total;
}

}  // namespace erms::hdfs
