#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/audit.h"
#include "ec/codec_registry.h"
#include "hdfs/namespace.h"
#include "obs/metrics_registry.h"
#include "hdfs/placement.h"
#include "hdfs/topology.h"
#include "hdfs/types.h"
#include "net/network.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "util/log.h"
#include "util/small_vec.h"

namespace erms::obs {
class Observability;
}

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::hdfs {

/// Cluster-wide simulation parameters.
struct ClusterConfig {
  std::uint64_t block_size = 64 * util::MiB;
  std::uint32_t default_replication = 3;
  /// Per-rack uplink to the core switch. 2012-era fabrics were heavily
  /// oversubscribed (6 nodes × 125 MB/s NICs behind ~200 MB/s of uplink),
  /// which is why the paper cares about data locality at all.
  double rack_uplink_bw = 200.0e6;
  /// Time for a standby node to boot when commissioned.
  sim::SimDuration node_startup_delay = sim::seconds(30.0);
  /// Cluster-wide cap on concurrent re-replication / replication-change
  /// transfer streams, so recovery does not starve foreground reads.
  std::uint32_t max_background_streams = 12;
  /// Per-stream rate ceiling for background transfers (re-replication,
  /// replication changes, EC traffic, balancer moves) — HDFS's
  /// dfs.datanode.balance.bandwidthPerSec-style throttle. 0 = uncapped.
  double background_bandwidth_cap = 40.0e6;
  /// One-by-one replication stepping polls for each step's completion
  /// before issuing the next setReplication (ERMS "judges whether the
  /// replicas are added ... successfully" through Condor ClassAds).
  sim::SimDuration replication_step_poll = sim::seconds(3.0);
  /// A failed recovery copy (aborted flow, corrupt source, no eligible
  /// target) is retried with exponential backoff, doubling from
  /// `recovery_backoff` up to `recovery_backoff_cap`, at most
  /// `recovery_max_retries` times before the block is abandoned.
  std::uint32_t recovery_max_retries = 8;
  sim::SimDuration recovery_backoff = sim::seconds(2.0);
  sim::SimDuration recovery_backoff_cap = sim::seconds(60.0);
  /// Watchdog deadline for each background copy flow; a copy still in
  /// flight after this long is aborted (and retried through the recovery
  /// queue's backoff). 0 disables the watchdog.
  sim::SimDuration background_copy_timeout = sim::minutes(10.0);
  /// PathTable shard count for the namespace's path interner — lock
  /// granularity for concurrent bulk ingest. Never changes observable
  /// behaviour (ids are assigned serially regardless); raise it for
  /// macro-scale populates. 0 is treated as 1.
  std::size_t namespace_shards = 1;
  std::uint64_t seed = 42;
};

/// Live state of one datanode.
struct DataNode {
  NodeId id;
  RackId rack;
  DataNodeConfig config;
  NodeState state{NodeState::kActive};
  std::uint64_t used_bytes{0};
  std::uint32_t active_sessions{0};
  /// In-flight background copies reading from this node (source-selection
  /// load balancing for replication transfers).
  std::uint32_t background_reads{0};
  std::unordered_set<BlockId> blocks;
  /// Replicas the node held when it died — still on its disk, reconciled
  /// against current targets if the node revives.
  std::unordered_set<BlockId> stale_blocks;
  double energy_joules{0.0};
  sim::SimTime last_energy_update;
};

/// Outcome of a block or file read.
struct ReadOutcome {
  bool ok{false};
  ReadError error{ReadError::kNone};
  ReadLocality locality{ReadLocality::kRemote};
  bool degraded{false};  // served via erasure-code reconstruction
  sim::SimDuration duration{};
  std::uint64_t bytes{0};
};

/// The simulated HDFS cluster: namenode metadata + datanode state + the
/// network fabric. All I/O is asynchronous on the simulation clock. This is
/// the substrate standing in for the paper's 19-node Hadoop testbed.
class Cluster {
 public:
  using AuditSink = std::function<void(const audit::AuditEvent&)>;
  using BatchAuditSink = std::function<void(const audit::AuditEvent*, std::size_t)>;
  using ReadCallback = std::function<void(const ReadOutcome&)>;
  using DoneCallback = std::function<void(bool)>;

  Cluster(sim::Simulation& simulation, const Topology& topology, ClusterConfig config,
          util::Logger& logger = util::Logger::null_logger());

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // ----- nodes -----------------------------------------------------------
  [[nodiscard]] const DataNode& node(NodeId id) const { return nodes_[id.value()]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::vector<NodeId> nodes() const;
  [[nodiscard]] std::vector<NodeId> nodes_in_state(NodeState state) const;
  [[nodiscard]] RackId rack_of(NodeId id) const { return nodes_[id.value()].rack; }

  /// Mark a node standby (powered down). Only valid while it holds no
  /// blocks; use during cluster setup or after draining.
  void set_standby(NodeId id);

  /// Power up a standby node; it becomes active after the startup delay.
  /// `on_ready` fires when it can accept replicas.
  void commission(NodeId id, std::function<void()> on_ready = nullptr);

  /// Drain is the caller's job (ERMS deletes standby replicas first); this
  /// powers a now-empty active node back down.
  bool return_to_standby(NodeId id);

  /// Graceful decommission: the node keeps serving reads while every block
  /// it holds is copied elsewhere; once drained it goes to standby.
  /// `done(true)` when the node is powered down, `done(false)` if some
  /// block could not be moved (no eligible target) — the node then stays in
  /// kDecommissioning with its remaining blocks, as real HDFS does.
  void decommission(NodeId id, DoneCallback done);

  /// Fail a node: its replicas are lost, every in-flight transfer touching
  /// it is aborted (partial bytes accounted, callers notified), and
  /// recovery is queued for every under-replicated block.
  void fail_node(NodeId id);

  /// Bring a dead node back (datanode re-registration). Its on-disk
  /// replicas are reconciled against current targets: still-needed blocks
  /// rejoin the block map instantly, surplus ones are dropped. Returns
  /// false if the node was not dead.
  bool revive_node(NodeId id);

  /// Called (if set) after a node dies and its blocks/flows are torn down —
  /// lets the control loop promote standby capacity. One listener.
  using FailureListener = std::function<void(NodeId)>;
  void set_failure_listener(FailureListener listener) {
    failure_listener_ = std::move(listener);
  }

  /// Silently corrupt one replica (bit rot / bad disk sector). The namenode
  /// learns about it the HDFS way: the next client read of that replica
  /// fails its checksum, the replica is dropped and re-replicated, and the
  /// read transparently retries another replica.
  void corrupt_replica(BlockId block, NodeId node);
  [[nodiscard]] bool is_corrupt(BlockId block, NodeId node) const;
  [[nodiscard]] std::uint64_t corruptions_detected() const { return corruptions_detected_; }

  /// Namenode-side handling of a verified-bad replica (from a client
  /// checksum failure or the block scanner): drop it and re-replicate from
  /// a clean copy.
  void report_corrupt_replica(BlockId block, NodeId node);

  /// True if the node can serve reads / accept writes.
  [[nodiscard]] bool is_serving(NodeId id) const;

  // ----- placement --------------------------------------------------------
  void set_placement_policy(std::shared_ptr<PlacementPolicy> policy);
  [[nodiscard]] const PlacementPolicy& placement_policy() const { return *placement_; }

  // ----- namespace & data -------------------------------------------------
  /// Instantly create a fully replicated file (experiment setup path; no
  /// simulated write traffic).
  std::optional<FileId> populate_file(const std::string& path, std::uint64_t size,
                                      std::optional<std::uint32_t> replication = std::nullopt);

  /// Bulk populate: create many fully replicated files at once. Metadata
  /// tables are reserved up front from the spec (no rehash/regrow storms),
  /// namespace fill may run on `pool`, and placement stays serial so the
  /// chosen targets are identical to calling populate_file in a loop.
  /// Returns the per-spec ids (nullopt for invalid/duplicate entries).
  std::vector<std::optional<FileId>> populate_files(
      const std::vector<Namespace::FileSpec>& specs, util::ThreadPool* pool = nullptr);

  /// Create a file through the simulated write pipeline from `writer`;
  /// `done(true)` when the last replica of the last block lands.
  std::optional<FileId> write_file(const std::string& path, std::uint64_t size,
                                   NodeId writer, DoneCallback done,
                                   std::optional<std::uint32_t> replication = std::nullopt);

  void remove_file(FileId file);

  [[nodiscard]] const Namespace& metadata() const { return namespace_; }

  // ----- reads ------------------------------------------------------------
  /// Read every block of the file in sequence from `client`. The callback
  /// fires once with the aggregate outcome (duration = sum, locality = the
  /// worst block's locality, ok = all blocks ok).
  void read_file(NodeId client, FileId file, ReadCallback callback);

  /// Read one block. Emits a block-level audit event ("read"). If every
  /// replica holder is at its session limit the read fails fast with
  /// kAllBusy (HDFS rejects when xceivers are exhausted) — callers retry.
  void read_block(NodeId client, BlockId block, ReadCallback callback);

  /// Record a file-level open without transferring data — what the namenode
  /// logs when a MapReduce job opens its input before the per-block reads.
  void record_open(NodeId client, FileId file);

  // ----- replication management (ERMS actions) ----------------------------
  enum class IncreaseMode { kDirect, kOneByOne };

  /// Change a file's replication factor. Increases copy block data over the
  /// network (kDirect launches all extra replicas of a block concurrently;
  /// kOneByOne raises the factor one step at a time, waiting for each step
  /// to finish — the comparison of paper Fig. 7). Decreases are metadata
  /// operations that free replicas chosen by the placement policy.
  void change_replication(FileId file, std::uint32_t target, IncreaseMode mode,
                          DoneCallback done);

  /// Erasure-encode a cold file: read its k blocks to an encoder node,
  /// write `parity_count` parity blocks, then drop replication to 1
  /// (paper §III.C/IV.B: Reed–Solomon, replication 1 + 4 parities).
  void encode_file(FileId file, std::size_t parity_count, DoneCallback done);

  /// Same, with the code chosen from the pluggable zoo (RS / AzureLRC /
  /// Hitchhiker-XOR+, see docs/EC_CODECS.md). The codec identity is recorded
  /// on the file so degraded reads and stripe reconstruction use that code's
  /// repair plan — and its (smaller) repair read set — afterwards.
  void encode_file(FileId file, const ec::CodecSpec& spec, DoneCallback done);

  /// Undo encoding: restore `replication` data replicas then remove
  /// parities (a re-warmed cold file).
  void decode_file(FileId file, std::uint32_t replication, DoneCallback done);

  /// Move one replica of `block` from `source` to `target` (copy over the
  /// network, then drop the source replica) — the balancer's primitive.
  /// Fails if the target already holds the block or either node is not
  /// serving.
  void move_replica(BlockId block, NodeId source, NodeId target, DoneCallback done);

  // ----- queries (placement policies, judge, experiments) -----------------
  /// Nodes currently holding a replica of `block` (any state incl. dead=no).
  [[nodiscard]] std::vector<NodeId> locations(BlockId block) const;
  [[nodiscard]] bool node_has_block(NodeId node, BlockId block) const;
  /// How many blocks (data or parity) of `file` the node holds — used by
  /// Algorithm 1's parity placement rule.
  [[nodiscard]] std::size_t file_blocks_on_node(FileId file, NodeId node) const;
  /// A file is available when every data block is readable directly or
  /// reconstructible from its erasure stripe.
  [[nodiscard]] bool file_available(FileId file) const;

  // ----- stats -------------------------------------------------------------
  [[nodiscard]] std::uint64_t used_bytes_total() const;
  [[nodiscard]] std::uint64_t capacity_bytes_total() const;
  /// Energy used by all nodes so far (standby nodes accrue at standby watts).
  [[nodiscard]] double energy_joules_total();
  [[nodiscard]] std::uint64_t reads_rejected() const { return reads_rejected_; }
  [[nodiscard]] std::uint64_t reads_completed() const { return reads_completed_; }
  [[nodiscard]] std::uint64_t blocks_lost() const { return blocks_lost_; }
  [[nodiscard]] std::uint64_t rereplications_completed() const {
    return rereplications_completed_;
  }
  [[nodiscard]] std::uint64_t recovery_retries() const { return recovery_retries_; }
  [[nodiscard]] std::uint64_t recoveries_abandoned() const { return recoveries_abandoned_; }
  [[nodiscard]] std::uint64_t nodes_revived() const { return nodes_revived_; }
  [[nodiscard]] net::NetworkModel& network() { return network_; }
  [[nodiscard]] const net::NetworkModel& network() const { return network_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// True when no background replication/encode traffic is in flight — the
  /// Condor substrate's idleness test for deferred tasks. Blocks tracked by
  /// the recovery queue (queued, running, or waiting out a retry backoff)
  /// count as in-flight work.
  [[nodiscard]] bool background_idle() const {
    return background_streams_ == 0 && background_queue_.empty() &&
           recovery_tracked_.empty();
  }

  /// Zero-copy view of a block's replica locations (invalidated by any
  /// replica mutation). locations() returns an owning copy of the same.
  [[nodiscard]] const util::SmallVec<NodeId, 4>& locations_view(BlockId block) const {
    static const util::SmallVec<NodeId, 4> kEmpty{};
    const std::size_t v = block.value();
    return v < block_locations_.size() ? block_locations_[v] : kEmpty;
  }

  // ----- audit -------------------------------------------------------------
  void set_audit_sink(AuditSink sink) {
    flush_audit();
    audit_sink_ = std::move(sink);
  }

  /// Install a batched audit sink: emitted records accumulate in a reused
  /// buffer and are delivered as one span whenever `flush_events` have
  /// gathered (or on flush_audit() / sink change). Takes precedence over the
  /// per-event sink. Buffered AuditEvents are reused in place, so the steady
  /// state allocates nothing per event.
  void set_audit_batch_sink(BatchAuditSink sink, std::size_t flush_events);

  /// Deliver any buffered audit records to the batch sink now. Consumers
  /// must call this before reading windowed state derived from the stream.
  void flush_audit();

  // ----- observability -----------------------------------------------------
  /// Attach (nullptr detaches) an observability bundle. The cluster records
  /// read/recovery counters and latency histograms into its registry and
  /// ground-truth mutation TraceEvents (set_replication, encode, decode,
  /// rereplication, node_failure) into its trace ring. Metric ids are
  /// resolved here once, so the disabled path is a single null test.
  void set_observability(obs::Observability* obs);

  // ----- snapshot (src/snapshot/) ------------------------------------------
  /// Serialise namespace, block map, per-node state, counters and the Rng
  /// stream. Only valid at a quiescent point: no flows, no background or
  /// recovery work, no node mid-(de)commission — snapshot::quiescent()
  /// checks; save_state flushes buffered audit records first and asserts
  /// the rest. Callbacks (sinks, listeners, placement) are not serialised;
  /// the restoring driver reinstalls them. Non-const: flushes audit.
  void save_state(snapshot::Writer& w);
  /// Restore into a freshly constructed cluster of the same topology and
  /// config (load fails with kStateMismatch otherwise).
  void load_state(snapshot::Reader& r);

 private:
  /// A throttled background task (block copy, stripe reconstruction). The
  /// job must invoke `finished` exactly once when its transfers complete.
  using BackgroundJob = std::function<void(std::function<void()> finished)>;

  DataNode& node_mutable(NodeId id) { return nodes_[id.value()]; }

  void emit_audit(const std::string& cmd, FileId file, std::string_view src,
                  NodeId client, std::optional<BlockId> block,
                  std::optional<NodeId> datanode, bool allowed = true);
  [[nodiscard]] std::string node_ip(NodeId id) const;
  /// Render node_ip(id) into `out`, reusing its capacity.
  void format_node_ip(NodeId id, std::string& out) const;

  /// Add/remove a replica in the block map + node state (metadata only).
  void add_replica(BlockId block, NodeId node);
  void remove_replica(BlockId block, NodeId node);

  /// Pick the serving replica for a client: local, then rack-local, then the
  /// least-loaded remote; only nodes with a free session. nullopt → busy.
  [[nodiscard]] std::optional<NodeId> pick_read_source(NodeId client, BlockId block) const;

  void read_block_via_reconstruction(NodeId client, const BlockInfo& info,
                                     ReadCallback callback);

  /// The repair read set for one lost/unreadable block of a stripe: which
  /// surviving shards to pull, how many bytes from each (sub-shard plans
  /// read fractions of a block), and the codec that planned it. Shard index
  /// i < k is file.blocks[i]; k + j is file.parity_blocks[j].
  struct StripeReadSet {
    struct Source {
      BlockId block;
      NodeId node;
      std::uint64_t bytes;
    };
    std::vector<Source> sources;
    ec::CodecKind codec{ec::CodecKind::kRs};
    std::uint64_t total_bytes{0};
  };

  /// Plan the cheapest read set this file's code offers to rebuild `lost`
  /// from the shards that are live right now. nullopt when the surviving
  /// shards cannot determine the block. Files whose codec cannot be
  /// materialised (stripe wider than GF(2^8) allows) fall back to the
  /// legacy any-k full-block RS rule.
  [[nodiscard]] std::optional<StripeReadSet> plan_stripe_read(const FileInfo& file,
                                                             BlockId lost) const;

  /// The file's erasure codec, from a shape-keyed cache shared by all files
  /// of the same (kind, locals, k, m). nullptr when unmaterialisable.
  [[nodiscard]] const ec::ErasureCodec* codec_for(const FileInfo& file) const;

  /// Count repair traffic into the total and per-codec counters (and the
  /// degraded-read equivalents when `degraded`).
  void record_repair_traffic(const StripeReadSet& plan, bool degraded);

  /// Enqueue a throttled background task (re-replication, replication
  /// increase, EC transfers, stripe reconstruction).
  void queue_background(BackgroundJob job);
  void pump_background_queue();

  /// Copy `block` onto `target` over the network (from `source`, or a live
  /// replica chosen at start time). Registers the replica on success.
  void copy_block(BlockId block, std::optional<NodeId> source, NodeId target,
                  DoneCallback done);

  /// One block's pending recovery work: restore it to its target replica
  /// count (or rebuild it from its erasure stripe).
  struct RecoveryTask {
    BlockId block;
    std::uint32_t attempts{0};
  };

  /// Track `block` as under-replicated and queue it at its priority level
  /// (fewest live replicas first, like HDFS's UnderReplicatedBlocks).
  /// Deduplicated: a block already tracked is not queued twice.
  void enqueue_recovery(BlockId block);
  /// Priority level for the queue: 0 = no live replica (reconstruction or
  /// last-chance), 1 = one replica left, 2 = merely under target.
  [[nodiscard]] std::uint32_t recovery_priority(BlockId block) const;
  [[nodiscard]] std::optional<RecoveryTask> pop_recovery();
  /// One recovery step: re-check the deficit, copy one replica (or rebuild
  /// from the stripe); success requeues until the target is met, failure
  /// goes through retry_or_abandon.
  void run_recovery(RecoveryTask task, std::function<void()> finished);
  void run_reconstruction(RecoveryTask task, std::function<void()> finished);
  /// Exponential-backoff requeue; abandons (and counts the block lost if it
  /// has no live replica) once recovery_max_retries is exceeded.
  void retry_or_abandon(RecoveryTask task);
  void record_flow_abort(std::optional<BlockId> block, std::int64_t node,
                         std::uint64_t partial_bytes, const char* what);

  /// Power a fully drained decommissioning node down; returns true so the
  /// caller can chain the user callback.
  bool finalize_decommission(NodeId id, bool drained);

  void update_energy(DataNode& node);
  void set_node_state(NodeId id, NodeState state);

  sim::Simulation& sim_;
  ClusterConfig config_;
  util::Logger& log_;
  sim::Rng rng_;
  net::NetworkModel network_;
  Namespace namespace_;
  std::vector<DataNode> nodes_;
  /// Replica locations, dense by block id (slot 0 unused). Inline capacity
  /// covers the default replication factor, so the common case is a flat
  /// array lookup with no hashing and no per-block heap node.
  std::vector<util::SmallVec<NodeId, 4>> block_locations_;
  std::shared_ptr<PlacementPolicy> placement_;
  AuditSink audit_sink_;
  BatchAuditSink batch_audit_sink_;
  std::vector<audit::AuditEvent> audit_buf_;  // events reused across flushes
  std::size_t audit_buf_used_{0};
  std::size_t audit_flush_events_{256};

  std::deque<BackgroundJob> background_queue_;
  std::uint32_t background_streams_{0};

  /// Priority recovery queue: one FIFO per priority level (0 = no live
  /// replica, 1 = one left, 2 = under target — the only levels
  /// recovery_priority produces). pop scans the fixed array lowest level
  /// first, so the most-under-replicated blocks are always served first.
  std::array<std::deque<RecoveryTask>, 3> recovery_queue_;
  std::size_t recovery_queued_{0};
  /// Blocks with recovery in flight anywhere (queued, running, or waiting
  /// out a backoff) — the dedupe set and the idleness signal.
  std::unordered_set<BlockId> recovery_tracked_;
  FailureListener failure_listener_;

  std::set<std::pair<BlockId, NodeId>> corrupt_replicas_;

  /// Codec instances keyed by packed (kind, locals, k, m); an entry holding
  /// nullptr caches "shape cannot be materialised" (legacy fallback).
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<ec::ErasureCodec>>
      codec_cache_;

  struct ObsIds {
    obs::CounterId reads_completed, reads_rejected, reads_degraded, read_bytes;
    obs::CounterId corruptions, blocks_lost, rereplications, replication_changes;
    obs::CounterId encodes, decodes, audit_events;
    obs::CounterId recovery_retries, recoveries_abandoned, nodes_revived, flow_aborts;
    /// Repair-bandwidth accounting for the codec zoo: bytes pulled over the
    /// network to rebuild a shard (recovery path) or serve a degraded read,
    /// and the fanout (distinct source nodes) of each repair. The per-codec
    /// vectors are indexed by ec::CodecKind.
    obs::CounterId ec_repair_bytes, ec_degraded_bytes, ec_repair_fanout;
    std::vector<obs::CounterId> ec_repair_bytes_by_codec;
    std::vector<obs::CounterId> ec_degraded_bytes_by_codec;
    obs::GaugeId bg_queue_depth, bg_streams;
    obs::HistogramId read_seconds;
  };
  obs::Observability* obs_{nullptr};
  ObsIds obs_ids_;

  std::uint64_t reads_rejected_{0};
  std::uint64_t reads_completed_{0};
  std::uint64_t blocks_lost_{0};
  std::uint64_t rereplications_completed_{0};
  std::uint64_t corruptions_detected_{0};
  std::uint64_t recovery_retries_{0};
  std::uint64_t recoveries_abandoned_{0};
  std::uint64_t nodes_revived_{0};
};

}  // namespace erms::hdfs
