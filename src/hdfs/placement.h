#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hdfs/types.h"
#include "sim/random.h"

namespace erms::hdfs {

class Cluster;

/// Pluggable replica-placement strategy — HDFS "administrators ... can also
/// implement their own replica placement strategy" (paper §II), and ERMS
/// ships one (Algorithm 1, implemented in src/core/erms_placement.h).
///
/// Implementations must return distinct nodes that do not already hold the
/// block and are writable (active, space available).
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Pick up to `count` target nodes for new replicas of `block` (or for a
  /// parity block when the block's metadata says is_parity). `writer` is the
  /// client node originating the write, when there is one. May return fewer
  /// than `count` nodes if the cluster cannot host more distinct replicas.
  [[nodiscard]] virtual std::vector<NodeId> choose_targets(
      const Cluster& cluster, BlockId block, std::size_t count,
      std::optional<NodeId> writer, sim::Rng& rng) const = 0;

  /// Pick which replica of `block` to drop when the replication factor
  /// decreases. nullopt if the block has no replica.
  [[nodiscard]] virtual std::optional<NodeId> choose_replica_to_remove(
      const Cluster& cluster, BlockId block, sim::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// The stock HDFS rack-aware policy: first replica on the writer's node (or
/// a random active node), second on a node in a different rack, third on a
/// different node of that second rack, further replicas spread randomly
/// (paper §II). Deletion removes from the node with the least free space.
class DefaultPlacementPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::vector<NodeId> choose_targets(const Cluster& cluster, BlockId block,
                                                   std::size_t count,
                                                   std::optional<NodeId> writer,
                                                   sim::Rng& rng) const override;

  [[nodiscard]] std::optional<NodeId> choose_replica_to_remove(const Cluster& cluster,
                                                               BlockId block,
                                                               sim::Rng& rng) const override;

  [[nodiscard]] std::string name() const override { return "hdfs-default"; }
};

}  // namespace erms::hdfs
