#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "hdfs/cluster.h"

namespace erms::hdfs {

/// The HDFS balancer: iteratively moves block replicas from over-utilised
/// to under-utilised datanodes until every serving node's utilisation is
/// within `threshold` of the cluster mean. The paper's Algorithm 1 is
/// designed so ERMS "does not need to re-balance when increasing and
/// decreasing the replication factor" — this component exists to quantify
/// what that avoidance saves ("it takes considerable time and bandwidth",
/// §III.B).
class Balancer {
 public:
  struct Config {
    /// Allowed deviation of per-node utilisation from the mean (fraction of
    /// capacity), like the balancer's -threshold flag (default 10%).
    double threshold = 0.10;
    /// Upper bound on concurrent move streams.
    std::uint32_t max_concurrent_moves = 4;
    /// Safety cap on total moves per run.
    std::size_t max_moves = 10'000;
  };

  struct Report {
    std::size_t moves{0};
    std::uint64_t bytes_moved{0};
    sim::SimDuration elapsed{};
    bool balanced{false};  // within threshold when the run ended
  };

  Balancer(Cluster& cluster, Config config) : cluster_(cluster), config_(config) {}
  explicit Balancer(Cluster& cluster) : Balancer(cluster, Config{}) {}

  /// True if every serving node is within threshold of the mean utilisation.
  [[nodiscard]] bool is_balanced() const;

  /// Utilisation (used/capacity) of one node.
  [[nodiscard]] double utilization(NodeId node) const;

  /// Mean utilisation over serving nodes.
  [[nodiscard]] double mean_utilization() const;

  /// Run to completion (asynchronously on the simulation clock); `done`
  /// receives the report. Only one run at a time.
  void run(std::function<void(const Report&)> done);

 private:
  struct Move {
    BlockId block;
    NodeId source;
    NodeId target;
  };

  /// Plan the single best next move: the most over-utilised node sheds a
  /// block to the most under-utilised eligible node (replica invariants are
  /// preserved: target must not already hold the block, and rack spread may
  /// not collapse to a single rack).
  [[nodiscard]] std::optional<Move> plan_move() const;

  void pump();
  void finish();

  Cluster& cluster_;
  Config config_;
  std::function<void(const Report&)> done_;
  Report report_;
  sim::SimTime started_;
  std::set<BlockId> pending_blocks_;
  std::uint32_t in_flight_{0};
  bool running_{false};
  bool draining_{false};
};

}  // namespace erms::hdfs
