#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/ids.h"

namespace erms::hdfs {

struct NodeTag {};
struct RackTag {};
struct FileTag {};
struct BlockTag {};

using NodeId = util::StrongId<NodeTag, std::uint32_t>;
using RackId = util::StrongId<RackTag, std::uint32_t>;
// FileIds are dense 32-bit handles assigned by the Namespace's serial
// generator and interned against paths in PathTable; downstream hot state
// (feed, predictor, manager) indexes plain vectors by `id.value()`.
using FileId = util::StrongId<FileTag, std::uint32_t>;
using BlockId = util::StrongId<BlockTag>;

/// Datanode lifecycle in the active/standby storage model (paper §III.B).
/// Standby nodes are registered but powered down until ERMS commissions
/// them; decommissioning nodes are being drained; dead nodes have failed.
enum class NodeState {
  kActive,
  kStandby,          // powered off, can be commissioned
  kCommissioning,    // booting; becomes Active after startup delay
  kDecommissioning,  // draining replicas before going back to standby
  kDead,
};

[[nodiscard]] constexpr const char* to_string(NodeState s) {
  switch (s) {
    case NodeState::kActive:
      return "active";
    case NodeState::kStandby:
      return "standby";
    case NodeState::kCommissioning:
      return "commissioning";
    case NodeState::kDecommissioning:
      return "decommissioning";
    case NodeState::kDead:
      return "dead";
  }
  return "?";
}

/// Why a block read was denied or failed.
enum class ReadError {
  kNone,
  kNoSuchBlock,
  kNoReplica,        // no live node holds the block
  kAllBusy,          // every replica holder is at its session limit
};

/// Locality of a satisfied read, for the Fig. 3(b) locality metric.
enum class ReadLocality { kNodeLocal, kRackLocal, kRemote };

/// Per-node hardware profile (2012-era commodity box by default, matching
/// the paper's testbed: GbE network, SATA disks).
struct DataNodeConfig {
  std::uint64_t capacity_bytes = 250 * util::GiB;
  double disk_bw = 80.0e6;   // bytes/s
  double nic_bw = 125.0e6;   // bytes/s (GbE)
  /// Concurrent serving sessions (xceivers) before requests are rejected —
  /// the paper measured 8–10 concurrent accesses per replica (Fig. 8).
  std::uint32_t max_sessions = 9;
  /// Power draw for the energy accounting in the active/standby model.
  double active_watts = 250.0;
  double standby_watts = 15.0;
};

}  // namespace erms::hdfs
