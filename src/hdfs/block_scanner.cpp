#include "hdfs/block_scanner.h"

#include <algorithm>
#include <vector>

namespace erms::hdfs {

BlockScanner::BlockScanner(Cluster& cluster, Config config)
    : cluster_(cluster), config_(config) {}

void BlockScanner::start() {
  if (running_) {
    return;
  }
  running_ = true;
  round_handle_ =
      cluster_.simulation().schedule_after(config_.round_interval, [this] { round(); });
}

void BlockScanner::stop() {
  running_ = false;
  round_handle_.cancel();
}

void BlockScanner::round() {
  if (!running_) {
    return;
  }
  for (const NodeId n : cluster_.nodes()) {
    if (!cluster_.is_serving(n)) {
      continue;
    }
    // Deterministic order over the node's (hashed) block set.
    const DataNode& node = cluster_.node(n);
    std::vector<BlockId> blocks(node.blocks.begin(), node.blocks.end());
    std::sort(blocks.begin(), blocks.end());
    if (blocks.empty()) {
      continue;
    }
    std::size_t& cur = cursor_[n];
    std::vector<BlockId> corrupt;
    for (std::size_t i = 0; i < config_.blocks_per_round && i < blocks.size(); ++i) {
      const BlockId b = blocks[(cur + i) % blocks.size()];
      ++replicas_scanned_;
      if (cluster_.is_corrupt(b, n)) {
        corrupt.push_back(b);
      }
    }
    cur = (cur + config_.blocks_per_round) % blocks.size();
    // Report after the sweep (mutating the block set mid-iteration would
    // invalidate the cursor arithmetic).
    for (const BlockId b : corrupt) {
      ++corruptions_found_;
      cluster_.report_corrupt_replica(b, n);
    }
  }
  round_handle_ =
      cluster_.simulation().schedule_after(config_.round_interval, [this] { round(); });
}

}  // namespace erms::hdfs
