#pragma once

#include <cstdint>

#include "hdfs/cluster.h"

namespace erms::hdfs {

/// The datanode block scanner: a low-rate background sweep that verifies
/// replica checksums so silent corruption is found *before* a client reads
/// it (HDFS's DataBlockScanner; default three-week scan period, shortened
/// here to simulated minutes). Found corruption is handled like a failed
/// read checksum: the replica is dropped and re-replicated from a clean
/// copy.
class BlockScanner {
 public:
  struct Config {
    /// Time between scan rounds; each round verifies `blocks_per_round`
    /// replicas per datanode, oldest-unverified first (approximated here by
    /// round-robin over each node's block set).
    sim::SimDuration round_interval = sim::seconds(30.0);
    std::size_t blocks_per_round = 8;
  };

  BlockScanner(Cluster& cluster, Config config);
  explicit BlockScanner(Cluster& cluster) : BlockScanner(cluster, Config{}) {}

  void start();
  void stop();

  [[nodiscard]] std::uint64_t replicas_scanned() const { return replicas_scanned_; }
  [[nodiscard]] std::uint64_t corruptions_found() const { return corruptions_found_; }
  [[nodiscard]] bool running() const { return running_; }

 private:
  void round();

  Cluster& cluster_;
  Config config_;
  /// Per-node scan cursor (index into the sorted block list).
  std::unordered_map<NodeId, std::size_t> cursor_;
  std::uint64_t replicas_scanned_{0};
  std::uint64_t corruptions_found_{0};
  bool running_{false};
  sim::EventHandle round_handle_;
};

}  // namespace erms::hdfs
