#include <algorithm>
#include <limits>

#include "hdfs/cluster.h"
#include "hdfs/placement.h"

namespace erms::hdfs {

namespace {

/// Writable target test shared by the selection passes.
bool eligible(const Cluster& cluster, BlockId block, NodeId node,
              const std::vector<NodeId>& already_chosen) {
  const DataNode& dn = cluster.node(node);
  if (dn.state != NodeState::kActive) {
    return false;
  }
  if (cluster.node_has_block(node, block)) {
    return false;
  }
  const BlockInfo* info = cluster.metadata().find_block(block);
  const std::uint64_t need = info != nullptr ? info->size : 0;
  if (dn.used_bytes + need > dn.config.capacity_bytes) {
    return false;
  }
  return std::find(already_chosen.begin(), already_chosen.end(), node) ==
         already_chosen.end();
}

}  // namespace

std::vector<NodeId> DefaultPlacementPolicy::choose_targets(const Cluster& cluster,
                                                           BlockId block, std::size_t count,
                                                           std::optional<NodeId> writer,
                                                           sim::Rng& rng) const {
  std::vector<NodeId> chosen;
  if (count == 0) {
    return chosen;
  }
  const std::vector<NodeId> existing = cluster.locations(block);

  auto pick_random = [&](auto&& filter) -> std::optional<NodeId> {
    std::vector<NodeId> pool;
    for (const NodeId n : cluster.nodes()) {
      if (eligible(cluster, block, n, chosen) && filter(n)) {
        pool.push_back(n);
      }
    }
    if (pool.empty()) {
      return std::nullopt;
    }
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  // Racks already covered (existing replicas count toward rack spread).
  auto rack_used = [&](RackId rack) {
    for (const NodeId n : existing) {
      if (cluster.rack_of(n) == rack) {
        return true;
      }
    }
    for (const NodeId n : chosen) {
      if (cluster.rack_of(n) == rack) {
        return true;
      }
    }
    return false;
  };

  const bool fresh_block = existing.empty();

  // Replica 1: the writer's node when possible, otherwise random.
  if (fresh_block && chosen.size() < count) {
    if (writer && eligible(cluster, block, *writer, chosen)) {
      chosen.push_back(*writer);
    } else if (const auto n = pick_random([](NodeId) { return true; })) {
      chosen.push_back(*n);
    }
  }

  // Replica 2: a node in a different rack than replica 1.
  if (fresh_block && chosen.size() < count && !chosen.empty()) {
    const RackId first_rack = cluster.rack_of(chosen.front());
    if (const auto n = pick_random(
            [&](NodeId cand) { return cluster.rack_of(cand) != first_rack; })) {
      chosen.push_back(*n);
    }
  }

  // Replica 3: a different node in replica 2's rack.
  if (fresh_block && chosen.size() < count && chosen.size() >= 2) {
    const RackId second_rack = cluster.rack_of(chosen[1]);
    if (const auto n = pick_random(
            [&](NodeId cand) { return cluster.rack_of(cand) == second_rack; })) {
      chosen.push_back(*n);
    }
  }

  // Remaining replicas: prefer unused racks, then anywhere.
  while (chosen.size() < count) {
    auto n = pick_random([&](NodeId cand) { return !rack_used(cluster.rack_of(cand)); });
    if (!n) {
      n = pick_random([](NodeId) { return true; });
    }
    if (!n) {
      break;  // cluster cannot host more distinct replicas
    }
    chosen.push_back(*n);
  }
  return chosen;
}

std::optional<NodeId> DefaultPlacementPolicy::choose_replica_to_remove(
    const Cluster& cluster, BlockId block, sim::Rng& /*rng*/) const {
  // HDFS removes from the node with the least free space.
  std::optional<NodeId> victim;
  std::uint64_t least_free = std::numeric_limits<std::uint64_t>::max();
  for (const NodeId n : cluster.locations(block)) {
    const DataNode& dn = cluster.node(n);
    const std::uint64_t free = dn.config.capacity_bytes - std::min(dn.config.capacity_bytes, dn.used_bytes);
    if (free < least_free) {
      least_free = free;
      victim = n;
    }
  }
  return victim;
}

}  // namespace erms::hdfs
