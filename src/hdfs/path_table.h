#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hdfs/types.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace erms::hdfs {

/// Interns file paths to dense `FileId`s, mirroring the `cep::SymbolTable`
/// idiom: each distinct path is stored exactly once and every downstream
/// layer keys its state by the 32-bit id instead of re-hashing the string.
///
/// Storage is an append-only chunked arena per shard, so the
/// `std::string_view`s handed out stay stable for the table's lifetime —
/// `FileInfo::path` views this arena directly. Removing a path only drops
/// the index entry; the arena bytes are tombstoned (paths are short and
/// deletes rare relative to the metadata they free, so reclaiming them is
/// not worth the pointer invalidation it would cause).
///
/// The index is sharded by path hash the way `cep::ShardedEngine` shards by
/// routing attribute: each shard has its own mutex, index map and arena, so
/// bulk ingest can intern from many threads without a global lock. Shard
/// count never affects observable behaviour — ids are assigned by the
/// caller (`Namespace`'s serial generator), the table only stores them.
class PathTable {
 public:
  explicit PathTable(std::size_t shards = 1);

  PathTable(const PathTable&) = delete;
  PathTable& operator=(const PathTable&) = delete;
  PathTable(PathTable&&) = default;
  PathTable& operator=(PathTable&&) = default;

  /// Copy `path` into the arena and map it to `id`. Returns the stable
  /// arena-backed view of the path, or nullopt if the path is already
  /// present (the existing mapping is untouched).
  std::optional<std::string_view> intern(std::string_view path, FileId id);

  /// Id a path maps to, or nullopt.
  [[nodiscard]] std::optional<FileId> find(std::string_view path) const;

  /// Drop the mapping for `path`. Returns false if absent. The arena bytes
  /// remain allocated (see class comment).
  bool erase(std::string_view path);

  /// Number of live (non-erased) paths.
  [[nodiscard]] std::size_t size() const;

  /// Bytes currently committed to path storage across all shard arenas.
  [[nodiscard]] std::size_t arena_bytes() const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Pre-size each shard's index for about `paths` total entries.
  void reserve(std::size_t paths);

 private:
  struct Shard {
    mutable util::Mutex mu;
    /// Lookup-only at steady state; never drained in hash order — size() and
    /// arena accounting read the counters below instead.
    std::unordered_map<std::string_view, FileId> index ERMS_GUARDED_BY(mu);
    std::vector<std::unique_ptr<char[]>> chunks ERMS_GUARDED_BY(mu);
    std::size_t chunk_used ERMS_GUARDED_BY(mu){0};
    std::size_t chunk_size ERMS_GUARDED_BY(mu){0};
    std::size_t bytes ERMS_GUARDED_BY(mu){0};

    std::string_view store(std::string_view path) ERMS_REQUIRES(mu);
  };

  [[nodiscard]] Shard& shard_for(std::string_view path) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace erms::hdfs
