#include "hdfs/failure_detector.h"

#include <algorithm>
#include <vector>

#include "snapshot/codec.h"

namespace erms::hdfs {

FailureDetector::FailureDetector(Cluster& cluster, Config config)
    : cluster_(cluster), config_(config) {}

void FailureDetector::start() {
  if (running_) {
    return;
  }
  running_ = true;
  const sim::SimTime now = cluster_.simulation().now();
  for (const NodeId n : cluster_.nodes()) {
    last_heartbeat_[n] = now;
  }
  next_tick_time_ = now + config_.heartbeat_interval;
  tick_handle_ = cluster_.simulation().schedule_at(next_tick_time_, [this] { tick(); });
}

void FailureDetector::stop() {
  running_ = false;
  tick_handle_.cancel();
}

void FailureDetector::unmute(NodeId node) {
  muted_.erase(node);
  const sim::SimTime now = cluster_.simulation().now();
  if (cluster_.node(node).state == NodeState::kDead) {
    // Re-registration: the silenced node was declared dead while it was in
    // fact reachable again. Revive it and reset its heartbeat clock so the
    // next tick does not instantly re-declare it.
    if (cluster_.revive_node(node)) {
      ++reregistrations_;
    }
  }
  last_heartbeat_[node] = now;
}

sim::SimDuration FailureDetector::silence(NodeId node) const {
  const auto it = last_heartbeat_.find(node);
  if (it == last_heartbeat_.end()) {
    return sim::SimDuration{0};
  }
  return cluster_.simulation().now() - it->second;
}

void FailureDetector::tick() {
  if (!running_) {
    return;
  }
  const sim::SimTime now = cluster_.simulation().now();
  const sim::SimDuration deadline =
      config_.heartbeat_interval * static_cast<std::int64_t>(config_.tolerance);

  for (const NodeId n : cluster_.nodes()) {
    const DataNode& node = cluster_.node(n);
    const bool alive_state = node.state == NodeState::kActive ||
                             node.state == NodeState::kCommissioning ||
                             node.state == NodeState::kDecommissioning;
    if (!alive_state) {
      // Standby/dead nodes are not expected to heartbeat; keep their clock
      // fresh so a later commission does not start half-expired.
      last_heartbeat_[n] = now;
      continue;
    }
    if (!muted_.contains(n)) {
      last_heartbeat_[n] = now;  // the healthy node heartbeats
      continue;
    }
    if (now - last_heartbeat_[n] > deadline) {
      ++failures_declared_;
      cluster_.fail_node(n);
      muted_.erase(n);
    }
  }
  next_tick_time_ = now + config_.heartbeat_interval;
  tick_handle_ = cluster_.simulation().schedule_at(next_tick_time_, [this] { tick(); });
}

void FailureDetector::save_state(snapshot::Writer& w) const {
  std::vector<NodeId> nodes;
  nodes.reserve(last_heartbeat_.size());
  // erms-lint: ordered-drain — keys are collected then sorted before use
  for (const auto& [n, _] : last_heartbeat_) nodes.push_back(n);
  std::sort(nodes.begin(), nodes.end());
  w.u64(nodes.size());
  for (const NodeId n : nodes) {
    w.u32(n.value());
    w.i64(last_heartbeat_.at(n).micros());
  }
  std::vector<NodeId> muted(muted_.begin(), muted_.end());
  std::sort(muted.begin(), muted.end());
  w.u64(muted.size());
  for (const NodeId n : muted) w.u32(n.value());
  w.u64(failures_declared_);
  w.u64(reregistrations_);
  w.u8(running_ ? 1 : 0);
  w.i64(next_tick_time_.micros());
}

void FailureDetector::load_state(snapshot::Reader& r) {
  const std::uint64_t nhb = r.u64();
  if (!r.require(nhb <= r.remaining() / 12 + 1, "heartbeat table size")) return;
  last_heartbeat_.clear();
  for (std::uint64_t i = 0; i < nhb && r.ok(); ++i) {
    const NodeId n{r.u32()};
    last_heartbeat_[n] = sim::SimTime{r.i64()};
  }
  const std::uint64_t nmuted = r.u64();
  if (!r.require(nmuted <= r.remaining() / 4 + 1, "muted set size")) return;
  muted_.clear();
  for (std::uint64_t i = 0; i < nmuted && r.ok(); ++i) {
    muted_.insert(NodeId{r.u32()});
  }
  failures_declared_ = r.u64();
  reregistrations_ = r.u64();
  running_ = r.u8() != 0;
  next_tick_time_ = sim::SimTime{r.i64()};
}

void FailureDetector::resume() {
  if (!running_) {
    return;
  }
  tick_handle_ = cluster_.simulation().schedule_at(next_tick_time_, [this] { tick(); });
}

}  // namespace erms::hdfs
