#include "hdfs/failure_detector.h"

namespace erms::hdfs {

FailureDetector::FailureDetector(Cluster& cluster, Config config)
    : cluster_(cluster), config_(config) {}

void FailureDetector::start() {
  if (running_) {
    return;
  }
  running_ = true;
  const sim::SimTime now = cluster_.simulation().now();
  for (const NodeId n : cluster_.nodes()) {
    last_heartbeat_[n] = now;
  }
  tick_handle_ = cluster_.simulation().schedule_after(config_.heartbeat_interval,
                                                      [this] { tick(); });
}

void FailureDetector::stop() {
  running_ = false;
  tick_handle_.cancel();
}

void FailureDetector::unmute(NodeId node) {
  muted_.erase(node);
  const sim::SimTime now = cluster_.simulation().now();
  if (cluster_.node(node).state == NodeState::kDead) {
    // Re-registration: the silenced node was declared dead while it was in
    // fact reachable again. Revive it and reset its heartbeat clock so the
    // next tick does not instantly re-declare it.
    if (cluster_.revive_node(node)) {
      ++reregistrations_;
    }
  }
  last_heartbeat_[node] = now;
}

sim::SimDuration FailureDetector::silence(NodeId node) const {
  const auto it = last_heartbeat_.find(node);
  if (it == last_heartbeat_.end()) {
    return sim::SimDuration{0};
  }
  return cluster_.simulation().now() - it->second;
}

void FailureDetector::tick() {
  if (!running_) {
    return;
  }
  const sim::SimTime now = cluster_.simulation().now();
  const sim::SimDuration deadline =
      config_.heartbeat_interval * static_cast<std::int64_t>(config_.tolerance);

  for (const NodeId n : cluster_.nodes()) {
    const DataNode& node = cluster_.node(n);
    const bool alive_state = node.state == NodeState::kActive ||
                             node.state == NodeState::kCommissioning ||
                             node.state == NodeState::kDecommissioning;
    if (!alive_state) {
      // Standby/dead nodes are not expected to heartbeat; keep their clock
      // fresh so a later commission does not start half-expired.
      last_heartbeat_[n] = now;
      continue;
    }
    if (!muted_.contains(n)) {
      last_heartbeat_[n] = now;  // the healthy node heartbeats
      continue;
    }
    if (now - last_heartbeat_[n] > deadline) {
      ++failures_declared_;
      cluster_.fail_node(n);
      muted_.erase(n);
    }
  }
  tick_handle_ = cluster_.simulation().schedule_after(config_.heartbeat_interval,
                                                      [this] { tick(); });
}

}  // namespace erms::hdfs
