#include "hdfs/balancer.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

namespace erms::hdfs {

double Balancer::utilization(NodeId node) const {
  const DataNode& dn = cluster_.node(node);
  if (dn.config.capacity_bytes == 0) {
    return 0.0;
  }
  return static_cast<double>(dn.used_bytes) / static_cast<double>(dn.config.capacity_bytes);
}

double Balancer::mean_utilization() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const NodeId n : cluster_.nodes()) {
    if (cluster_.is_serving(n)) {
      sum += utilization(n);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

bool Balancer::is_balanced() const {
  const double mean = mean_utilization();
  for (const NodeId n : cluster_.nodes()) {
    if (cluster_.is_serving(n) && std::abs(utilization(n) - mean) > config_.threshold) {
      return false;
    }
  }
  return true;
}

std::optional<Balancer::Move> Balancer::plan_move() const {
  const double mean = mean_utilization();

  // Most over-utilised serving node beyond the threshold band.
  std::optional<NodeId> source;
  double worst = mean + config_.threshold;
  for (const NodeId n : cluster_.nodes()) {
    if (cluster_.is_serving(n) && utilization(n) > worst) {
      worst = utilization(n);
      source = n;
    }
  }
  if (!source) {
    return std::nullopt;
  }

  // Largest movable block on the source (skip blocks already being moved).
  const DataNode& src = cluster_.node(*source);
  std::vector<BlockId> blocks(src.blocks.begin(), src.blocks.end());
  std::sort(blocks.begin(), blocks.end());  // determinism over the hash set
  std::optional<Move> best;
  std::uint64_t best_size = 0;
  for (const BlockId b : blocks) {
    if (pending_blocks_.contains(b)) {
      continue;
    }
    const BlockInfo* info = cluster_.metadata().find_block(b);
    if (info == nullptr || info->size <= best_size) {
      continue;
    }
    // Best under-utilised target that keeps replica invariants.
    std::optional<NodeId> target;
    double lightest = std::numeric_limits<double>::infinity();
    for (const NodeId t : cluster_.nodes()) {
      if (!cluster_.is_serving(t) || t == *source || cluster_.node_has_block(t, b)) {
        continue;
      }
      const DataNode& dn = cluster_.node(t);
      if (dn.used_bytes + info->size > dn.config.capacity_bytes) {
        continue;
      }
      const double u = utilization(t);
      if (u >= utilization(*source) - config_.threshold) {
        continue;  // would not reduce the imbalance
      }
      // Rack-spread invariant: do not collapse a multi-rack block onto one
      // rack.
      std::set<std::uint32_t> racks_after;
      for (const NodeId loc : cluster_.locations(b)) {
        if (loc != *source) {
          racks_after.insert(cluster_.rack_of(loc).value());
        }
      }
      racks_after.insert(cluster_.rack_of(t).value());
      std::set<std::uint32_t> racks_before;
      for (const NodeId loc : cluster_.locations(b)) {
        racks_before.insert(cluster_.rack_of(loc).value());
      }
      if (racks_before.size() >= 2 && racks_after.size() < 2) {
        continue;
      }
      if (u < lightest) {
        lightest = u;
        target = t;
      }
    }
    if (target) {
      best = Move{b, *source, *target};
      best_size = info->size;
    }
  }
  return best;
}

void Balancer::run(std::function<void(const Report&)> done) {
  assert(!running_ && "one balancer run at a time");
  running_ = true;
  draining_ = false;
  done_ = std::move(done);
  report_ = Report{};
  started_ = cluster_.simulation().now();
  pending_blocks_.clear();
  pump();
}

void Balancer::pump() {
  if (!running_) {
    return;
  }
  while (in_flight_ < config_.max_concurrent_moves && report_.moves < config_.max_moves &&
         !draining_) {
    const auto move = plan_move();
    if (!move) {
      draining_ = true;
      break;
    }
    const BlockInfo* info = cluster_.metadata().find_block(move->block);
    ++in_flight_;
    ++report_.moves;
    report_.bytes_moved += info != nullptr ? info->size : 0;
    pending_blocks_.insert(move->block);
    cluster_.move_replica(move->block, move->source, move->target,
                          [this, block = move->block](bool) {
                            pending_blocks_.erase(block);
                            assert(in_flight_ > 0);
                            --in_flight_;
                            draining_ = false;
                            pump();
                          });
  }
  if (in_flight_ == 0) {
    finish();
  }
}

void Balancer::finish() {
  if (!running_) {
    return;
  }
  running_ = false;
  report_.elapsed = cluster_.simulation().now() - started_;
  report_.balanced = is_balanced();
  if (done_) {
    done_(report_);
  }
}

}  // namespace erms::hdfs
