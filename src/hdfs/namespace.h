#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hdfs/types.h"

namespace erms::hdfs {

/// Metadata of one block.
struct BlockInfo {
  BlockId id;
  FileId file;
  std::uint64_t size{0};
  std::uint32_t index{0};   // position within the file
  bool is_parity{false};    // erasure-coding parity block
};

/// Metadata of one file: a sequence of equal-size blocks (last may be
/// short), a target replication factor, and — once ERMS demotes it to cold —
/// an erasure-coding stripe (parity block list).
struct FileInfo {
  FileId id;
  std::string path;
  std::uint64_t size{0};
  std::uint64_t block_size{0};
  std::uint32_t replication{3};
  std::vector<BlockId> blocks;
  bool erasure_coded{false};
  std::vector<BlockId> parity_blocks;
};

/// The namenode's namespace: file and block metadata (no locations — those
/// live in the cluster's block map, as in HDFS where block locations are
/// reported by datanodes rather than persisted).
class Namespace {
 public:
  /// Create a file of `size` bytes split into `block_size` blocks.
  /// Returns nullopt if the path already exists or size is 0.
  std::optional<FileId> create(const std::string& path, std::uint64_t size,
                               std::uint64_t block_size, std::uint32_t replication);

  /// Remove a file and all its block metadata. Returns the removed blocks
  /// (data + parity) so the caller can clear locations.
  std::vector<BlockId> remove(FileId file);

  /// Add a parity block of `size` bytes to `file` (erasure-coding path).
  BlockId add_parity_block(FileId file, std::uint64_t size);

  /// Drop all parity blocks of `file` (decode path); returns their ids.
  std::vector<BlockId> clear_parity_blocks(FileId file);

  void set_replication(FileId file, std::uint32_t replication);
  void set_erasure_coded(FileId file, bool coded);

  [[nodiscard]] const FileInfo* find(FileId file) const;
  [[nodiscard]] const FileInfo* find_path(const std::string& path) const;
  [[nodiscard]] const BlockInfo* find_block(BlockId block) const;

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  [[nodiscard]] std::vector<FileId> file_ids() const;

  /// Sum over all files of size × replication, plus parity bytes — the
  /// logical storage the cluster must hold (Fig. 5's utilisation metric).
  [[nodiscard]] std::uint64_t logical_bytes() const;

  /// fsimage-style persistence: serialise all file/block metadata (block
  /// *locations* are runtime state rebuilt from block reports, exactly as
  /// in HDFS, so they are not part of the image).
  void save_image(std::ostream& os) const;

  /// Rebuild a namespace from an image; replaces `*this`. Returns false and
  /// leaves the namespace empty on a malformed image.
  bool load_image(std::istream& is);

 private:
  FileInfo* find_mutable(FileId file);

  std::unordered_map<FileId, FileInfo> files_;
  std::unordered_map<BlockId, BlockInfo> blocks_;
  std::unordered_map<std::string, FileId> by_path_;
  util::IdGenerator<FileId> file_ids_{1};
  util::IdGenerator<BlockId> block_ids_{1};
};

}  // namespace erms::hdfs
