#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hdfs/path_table.h"
#include "hdfs/types.h"

namespace erms::util {
class ThreadPool;
}

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::hdfs {

/// Metadata of one block.
struct BlockInfo {
  BlockId id;               // BlockId{0} marks an unused/removed slot
  FileId file;
  std::uint64_t size{0};
  std::uint32_t index{0};   // position within the file
  bool is_parity{false};    // erasure-coding parity block
};

/// Metadata of one file: a sequence of equal-size blocks (last may be
/// short), a target replication factor, and — once ERMS demotes it to cold —
/// an erasure-coding stripe (parity block list).
struct FileInfo {
  FileId id;                // FileId{0} marks an unused/removed slot
  std::string_view path;    // stable view into the namespace's PathTable arena
  std::uint64_t size{0};
  std::uint64_t block_size{0};
  std::uint32_t replication{3};
  std::vector<BlockId> blocks;
  bool erasure_coded{false};
  std::vector<BlockId> parity_blocks;
  // Which erasure code the stripe was written with (ec::CodecKind value) and
  // the code's local-group count (AzureLRC only; 0 otherwise). k and the
  // total parity count are derivable from blocks/parity_blocks, so only the
  // non-derivable shape survives here and in the fsimage.
  std::uint8_t ec_codec{0};
  std::uint8_t ec_locals{0};
};

/// The namenode's namespace: file and block metadata (no locations — those
/// live in the cluster's block map, as in HDFS where block locations are
/// reported by datanodes rather than persisted).
///
/// Hot state is id-keyed and dense: `FileInfo`/`BlockInfo` live in plain
/// vectors indexed by `id.value()` (slot 0 unused, zero id = tombstone), and
/// the only string-keyed structure left is the sharded `PathTable` interner
/// consulted once per path at ingest. Ids are always assigned by the serial
/// generators, so metadata layout and every downstream trace are identical
/// whatever the shard count.
class Namespace {
 public:
  Namespace();
  Namespace(Namespace&&) = default;
  Namespace& operator=(Namespace&&) = default;

  /// One entry of a bulk-create request (see `create_batch`).
  struct FileSpec {
    std::string path;
    std::uint64_t size{0};
    std::uint64_t block_size{0};
    std::uint32_t replication{3};
  };

  /// Set the PathTable shard count. Only effective while the namespace is
  /// empty; shard count never changes observable behaviour, only the lock
  /// granularity of concurrent path interning.
  void set_shards(std::size_t shards);

  /// Pre-size the dense tables and path index (bulk-ingest hint).
  void reserve(std::size_t files, std::size_t blocks);

  /// Create a file of `size` bytes split into `block_size` blocks.
  /// Returns nullopt if the path already exists or size is 0.
  std::optional<FileId> create(const std::string& path, std::uint64_t size,
                               std::uint64_t block_size, std::uint32_t replication);

  /// Bulk create: file and block ids are assigned serially in spec order
  /// (identical to calling `create` in a loop); the metadata fill runs on
  /// `pool` when given. Per-spec result is nullopt for invalid/duplicate
  /// entries, exactly as `create` would return.
  std::vector<std::optional<FileId>> create_batch(const std::vector<FileSpec>& specs,
                                                  util::ThreadPool* pool = nullptr);

  /// Remove a file and all its block metadata. Returns the removed blocks
  /// (data + parity) so the caller can clear locations.
  std::vector<BlockId> remove(FileId file);

  /// Add a parity block of `size` bytes to `file` (erasure-coding path).
  BlockId add_parity_block(FileId file, std::uint64_t size);

  /// Drop all parity blocks of `file` (decode path); returns their ids.
  std::vector<BlockId> clear_parity_blocks(FileId file);

  void set_replication(FileId file, std::uint32_t replication);
  void set_erasure_coded(FileId file, bool coded);

  /// Record which code an erasure-coded stripe uses (see FileInfo::ec_codec).
  void set_codec(FileId file, std::uint8_t codec, std::uint8_t locals);

  [[nodiscard]] const FileInfo* find(FileId file) const;
  [[nodiscard]] const FileInfo* find_path(std::string_view path) const;
  [[nodiscard]] const BlockInfo* find_block(BlockId block) const;

  [[nodiscard]] std::size_t file_count() const { return live_files_; }
  [[nodiscard]] std::vector<FileId> file_ids() const;

  /// One past the largest file/block id ever assigned — the size dense
  /// id-indexed side tables (feed, predictor, manager, block map) need.
  [[nodiscard]] std::size_t file_id_bound() const { return files_.size(); }
  [[nodiscard]] std::size_t block_id_bound() const { return blocks_.size(); }

  [[nodiscard]] const PathTable& paths() const { return *paths_; }

  /// Sum over all files of size × replication, plus parity bytes — the
  /// logical storage the cluster must hold (Fig. 5's utilisation metric).
  [[nodiscard]] std::uint64_t logical_bytes() const;

  /// fsimage-style persistence: serialise all file/block metadata (block
  /// *locations* are runtime state rebuilt from block reports, exactly as
  /// in HDFS, so they are not part of the image).
  void save_image(std::ostream& os) const;

  /// Rebuild a namespace from an image; replaces `*this` (the PathTable
  /// shard count is preserved). Returns false and leaves the namespace
  /// empty on a malformed image.
  bool load_image(std::istream& is);

  /// Snapshot support (src/snapshot/): unlike the fsimage, this serialises
  /// the dense tables verbatim — tombstoned slots, id generators and
  /// erasure shape included — so every FileId/BlockId (and therefore every
  /// dense side table downstream) survives a restore bit-for-bit. The
  /// PathTable is rebuilt by re-interning live paths with their saved ids.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  FileInfo* find_mutable(FileId file);
  FileInfo& file_slot(FileId file);
  BlockInfo& block_slot(BlockId block);

  // Dense, id-indexed. Slot 0 is never assigned; a zero `id` field marks a
  // removed slot. Removal tombstones rather than compacts so ids stay
  // stable for the cluster's dense block-location table.
  std::vector<FileInfo> files_;
  std::vector<BlockInfo> blocks_;
  std::size_t live_files_{0};
  std::unique_ptr<PathTable> paths_;
  util::IdGenerator<FileId> file_ids_{1};
  util::IdGenerator<BlockId> block_ids_{1};
};

}  // namespace erms::hdfs
