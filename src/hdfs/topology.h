#pragma once

#include <vector>

#include "hdfs/types.h"

namespace erms::hdfs {

/// Static rack/node layout of the cluster. Node and rack ids are dense
/// indices (NodeId value == index into the node table), which also makes
/// them directly usable as net::NetworkModel node indices.
class Topology {
 public:
  RackId add_rack();

  /// Register a node in `rack` with the given hardware profile.
  NodeId add_node(RackId rack, DataNodeConfig config = {});

  [[nodiscard]] std::size_t node_count() const { return node_racks_.size(); }
  [[nodiscard]] std::size_t rack_count() const { return racks_; }

  [[nodiscard]] RackId rack_of(NodeId node) const { return node_racks_[node.value()]; }
  [[nodiscard]] const DataNodeConfig& config_of(NodeId node) const {
    return node_configs_[node.value()];
  }

  [[nodiscard]] std::vector<NodeId> nodes() const;
  [[nodiscard]] std::vector<NodeId> nodes_in_rack(RackId rack) const;

  /// Convenience builder: `racks` racks with `nodes_per_rack` identical
  /// nodes each (the paper's testbed is 18 datanodes in 3 racks).
  static Topology uniform(std::size_t racks, std::size_t nodes_per_rack,
                          DataNodeConfig config = {});

 private:
  std::size_t racks_{0};
  std::vector<RackId> node_racks_;
  std::vector<DataNodeConfig> node_configs_;
};

}  // namespace erms::hdfs
