#include "hdfs/topology.h"

namespace erms::hdfs {

RackId Topology::add_rack() { return RackId{static_cast<std::uint32_t>(racks_++)}; }

NodeId Topology::add_node(RackId rack, DataNodeConfig config) {
  const NodeId id{static_cast<std::uint32_t>(node_racks_.size())};
  node_racks_.push_back(rack);
  node_configs_.push_back(config);
  return id;
}

std::vector<NodeId> Topology::nodes() const {
  std::vector<NodeId> out;
  out.reserve(node_racks_.size());
  for (std::size_t i = 0; i < node_racks_.size(); ++i) {
    out.push_back(NodeId{static_cast<std::uint32_t>(i)});
  }
  return out;
}

std::vector<NodeId> Topology::nodes_in_rack(RackId rack) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < node_racks_.size(); ++i) {
    if (node_racks_[i] == rack) {
      out.push_back(NodeId{static_cast<std::uint32_t>(i)});
    }
  }
  return out;
}

Topology Topology::uniform(std::size_t racks, std::size_t nodes_per_rack,
                           DataNodeConfig config) {
  Topology topo;
  for (std::size_t r = 0; r < racks; ++r) {
    const RackId rack = topo.add_rack();
    for (std::size_t n = 0; n < nodes_per_rack; ++n) {
      topo.add_node(rack, config);
    }
  }
  return topo;
}

}  // namespace erms::hdfs
