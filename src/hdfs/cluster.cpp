#include "hdfs/cluster.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <limits>
#include <memory>

#include "obs/observability.h"
#include "snapshot/codec.h"

namespace erms::hdfs {

namespace {

/// Worst-of for aggregating per-block locality into a file-level figure.
ReadLocality worse(ReadLocality a, ReadLocality b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

double watts_of(const DataNode& node) {
  switch (node.state) {
    case NodeState::kStandby:
      return node.config.standby_watts;
    case NodeState::kDead:
      return 0.0;
    case NodeState::kActive:
    case NodeState::kCommissioning:
    case NodeState::kDecommissioning:
      return node.config.active_watts;
  }
  return 0.0;
}

}  // namespace

Cluster::Cluster(sim::Simulation& simulation, const Topology& topology, ClusterConfig config,
                 util::Logger& logger)
    : sim_(simulation),
      config_(config),
      log_(logger),
      rng_(config.seed),
      network_(simulation,
               [&topology, &config] {
                 net::FabricSpec spec;
                 spec.rack_count = topology.rack_count();
                 spec.rack_uplink_bw = config.rack_uplink_bw;
                 for (const NodeId n : topology.nodes()) {
                   net::FabricSpec::Node node;
                   node.rack = topology.rack_of(n).value();
                   node.nic_bw = topology.config_of(n).nic_bw;
                   node.disk_bw = topology.config_of(n).disk_bw;
                   spec.nodes.push_back(node);
                 }
                 return spec;
               }()),
      placement_(std::make_shared<DefaultPlacementPolicy>()) {
  namespace_.set_shards(std::max<std::size_t>(config_.namespace_shards, 1));
  for (const NodeId n : topology.nodes()) {
    DataNode node;
    node.id = n;
    node.rack = topology.rack_of(n);
    node.config = topology.config_of(n);
    node.state = NodeState::kActive;
    node.last_energy_update = sim_.now();
    nodes_.push_back(std::move(node));
  }
}

// ----- observability --------------------------------------------------------

void Cluster::set_observability(obs::Observability* obs) {
  obs_ = obs;
  obs_ids_ = {};
  if (obs == nullptr) {
    return;
  }
  obs::MetricsRegistry& r = obs->registry();
  obs_ids_.reads_completed = r.counter("hdfs.reads.completed");
  obs_ids_.reads_rejected = r.counter("hdfs.reads.rejected");
  obs_ids_.reads_degraded = r.counter("hdfs.reads.degraded");
  obs_ids_.read_bytes = r.counter("hdfs.read.bytes");
  obs_ids_.corruptions = r.counter("hdfs.corruptions.detected");
  obs_ids_.blocks_lost = r.counter("hdfs.blocks.lost");
  obs_ids_.rereplications = r.counter("hdfs.rereplications.completed");
  obs_ids_.replication_changes = r.counter("hdfs.replication.changes");
  obs_ids_.encodes = r.counter("hdfs.encodes.completed");
  obs_ids_.decodes = r.counter("hdfs.decodes.completed");
  obs_ids_.audit_events = r.counter("hdfs.audit.events");
  obs_ids_.recovery_retries = r.counter("hdfs.recovery.retries");
  obs_ids_.recoveries_abandoned = r.counter("hdfs.recovery.abandoned");
  obs_ids_.nodes_revived = r.counter("hdfs.nodes.revived");
  obs_ids_.flow_aborts = r.counter("hdfs.flows.aborted");
  obs_ids_.ec_repair_bytes = r.counter("hdfs.ec.repair.bytes");
  obs_ids_.ec_degraded_bytes = r.counter("hdfs.ec.degraded.bytes");
  obs_ids_.ec_repair_fanout = r.counter("hdfs.ec.repair.fanout");
  for (const std::string_view name : ec::registered_codec_names()) {
    obs_ids_.ec_repair_bytes_by_codec.push_back(
        r.counter("hdfs.ec.repair.bytes." + std::string(name)));
    obs_ids_.ec_degraded_bytes_by_codec.push_back(
        r.counter("hdfs.ec.degraded.bytes." + std::string(name)));
  }
  obs_ids_.bg_queue_depth = r.gauge("hdfs.background.queue_depth");
  obs_ids_.bg_streams = r.gauge("hdfs.background.streams");
  obs_ids_.read_seconds = r.histogram("hdfs.read.seconds", 0.0, 30.0, 60);
}

// ----- nodes ---------------------------------------------------------------

std::vector<NodeId> Cluster::nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const DataNode& n : nodes_) {
    out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Cluster::nodes_in_state(NodeState state) const {
  std::vector<NodeId> out;
  for (const DataNode& n : nodes_) {
    if (n.state == state) {
      out.push_back(n.id);
    }
  }
  return out;
}

bool Cluster::is_serving(NodeId id) const {
  const NodeState s = nodes_[id.value()].state;
  return s == NodeState::kActive || s == NodeState::kDecommissioning;
}

void Cluster::update_energy(DataNode& node) {
  const double elapsed = (sim_.now() - node.last_energy_update).seconds();
  node.energy_joules += watts_of(node) * elapsed;
  node.last_energy_update = sim_.now();
}

void Cluster::set_node_state(NodeId id, NodeState state) {
  DataNode& node = node_mutable(id);
  update_energy(node);
  node.state = state;
}

void Cluster::set_standby(NodeId id) {
  assert(node(id).blocks.empty() && "standby nodes must hold no blocks");
  set_node_state(id, NodeState::kStandby);
}

void Cluster::commission(NodeId id, std::function<void()> on_ready) {
  DataNode& node = node_mutable(id);
  if (node.state == NodeState::kActive || node.state == NodeState::kCommissioning) {
    if (on_ready) {
      sim_.schedule_after(sim::micros(0), std::move(on_ready));
    }
    return;
  }
  assert(node.state == NodeState::kStandby);
  set_node_state(id, NodeState::kCommissioning);
  sim_.schedule_after(config_.node_startup_delay, [this, id, cb = std::move(on_ready)] {
    if (node_mutable(id).state == NodeState::kCommissioning) {
      set_node_state(id, NodeState::kActive);
      if (log_.enabled(util::LogLevel::kInfo)) {
        log_.log(util::LogLevel::kInfo, "cluster",
                 "node " + std::to_string(id.value()) + " commissioned");
      }
      if (cb) {
        cb();
      }
    }
  });
}

bool Cluster::return_to_standby(NodeId id) {
  DataNode& node = node_mutable(id);
  if (!node.blocks.empty() || node.state != NodeState::kActive) {
    return false;
  }
  set_node_state(id, NodeState::kStandby);
  return true;
}

void Cluster::decommission(NodeId id, DoneCallback done) {
  DataNode& node = node_mutable(id);
  if (node.state != NodeState::kActive) {
    if (done) {
      sim_.schedule_after(sim::micros(0), [done] { done(false); });
    }
    return;
  }
  set_node_state(id, NodeState::kDecommissioning);
  // BlockId order, not hash order: the drain schedules one copy per block,
  // so iteration order decides flow start order and therefore the trace.
  std::vector<BlockId> to_move(node.blocks.begin(), node.blocks.end());
  std::sort(to_move.begin(), to_move.end());
  if (to_move.empty()) {
    set_node_state(id, NodeState::kStandby);
    if (done) {
      sim_.schedule_after(sim::micros(0), [done] { done(true); });
    }
    return;
  }

  auto remaining = std::make_shared<std::size_t>(to_move.size());
  auto all_ok = std::make_shared<bool>(true);
  for (const BlockId b : to_move) {
    queue_background([this, id, b, remaining, all_ok,
                      done](std::function<void()> finished) {
      if (!node_has_block(id, b)) {
        // Re-replication or a concurrent change already freed it.
        finished();
        if (--*remaining == 0 && finalize_decommission(id, *all_ok) && done) {
          done(*all_ok);
        }
        return;
      }
      const std::vector<NodeId> targets =
          placement_->choose_targets(*this, b, 1, std::nullopt, rng_);
      if (targets.empty()) {
        *all_ok = false;
        finished();
        if (--*remaining == 0 && finalize_decommission(id, *all_ok) && done) {
          done(*all_ok);
        }
        return;
      }
      move_replica(b, id, targets.front(),
                   [this, id, remaining, all_ok, done,
                    finished = std::move(finished)](bool ok) {
                     *all_ok = *all_ok && ok;
                     finished();
                     if (--*remaining == 0 && finalize_decommission(id, *all_ok) &&
                         done) {
                       done(*all_ok);
                     }
                   });
    });
  }
}

bool Cluster::finalize_decommission(NodeId id, bool drained) {
  DataNode& node = node_mutable(id);
  if (node.state != NodeState::kDecommissioning) {
    return true;  // state changed underneath (e.g. failure); report anyway
  }
  if (drained && node.blocks.empty()) {
    node.active_sessions = 0;
    set_node_state(id, NodeState::kStandby);
  }
  return true;
}

void Cluster::fail_node(NodeId id) {
  DataNode& node = node_mutable(id);
  if (node.state == NodeState::kDead) {
    return;
  }
  set_node_state(id, NodeState::kDead);
  node.active_sessions = 0;
  node.background_reads = 0;
  // The data is still on the dead node's disk; remember it so a revived
  // node can reconcile instead of re-copying everything.
  node.stale_blocks = node.blocks;
  std::vector<BlockId> lost(node.blocks.begin(), node.blocks.end());
  std::sort(lost.begin(), lost.end());
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::ActionKind::kNodeFailure;
    ev.at = sim_.now();
    ev.node = static_cast<std::int64_t>(id.value());
    ev.count = lost.size();
    obs_->trace().record(std::move(ev));
  }
  for (const BlockId b : lost) {
    remove_replica(b, id);
  }
  // Tear down every transfer touching the dead node before queuing
  // recovery: each flow's abort handler accounts partial bytes, and read /
  // copy retries issued from those handlers already see the node as dead.
  network_.abort_flows_touching(id.value());
  // Namenode re-replication monitor: queue recovery for every block that
  // dropped below its file's target replication.
  for (const BlockId b : lost) {
    const BlockInfo* info = namespace_.find_block(b);
    if (info == nullptr) {
      continue;
    }
    const std::size_t live = locations(b).size();
    if (live == 0) {
      const FileInfo* file = namespace_.find(info->file);
      const bool reconstructible = file != nullptr && file->erasure_coded;
      if (reconstructible) {
        enqueue_recovery(b);
      } else {
        ++blocks_lost_;
        if (obs_ != nullptr) {
          obs_->registry().add(obs_ids_.blocks_lost);
        }
        if (log_.enabled(util::LogLevel::kWarn)) {
          log_.log(util::LogLevel::kWarn, "cluster",
                   "block " + std::to_string(b.value()) + " lost (no replicas, no stripe)");
        }
      }
      continue;
    }
    const FileInfo* file = namespace_.find(info->file);
    const std::uint32_t target = info->is_parity ? 1 : (file != nullptr ? file->replication : 1);
    if (live < target) {
      enqueue_recovery(b);
    }
  }
  if (failure_listener_) {
    failure_listener_(id);
  }
}

bool Cluster::revive_node(NodeId id) {
  DataNode& node = node_mutable(id);
  if (node.state != NodeState::kDead) {
    return false;
  }
  set_node_state(id, NodeState::kActive);
  std::vector<BlockId> stale(node.stale_blocks.begin(), node.stale_blocks.end());
  std::sort(stale.begin(), stale.end());
  node.stale_blocks.clear();
  std::uint64_t reclaimed = 0;
  std::uint64_t surplus = 0;
  for (const BlockId b : stale) {
    const BlockInfo* info = namespace_.find_block(b);
    if (info == nullptr) {
      continue;  // file removed while the node was down
    }
    const FileInfo* file = namespace_.find(info->file);
    const std::uint32_t target = info->is_parity ? 1 : (file != nullptr ? file->replication : 1);
    const std::vector<NodeId> locs = locations(b);
    if (std::find(locs.begin(), locs.end(), id) != locs.end()) {
      continue;
    }
    if (locs.size() >= target) {
      ++surplus;  // target already met elsewhere: drop the stale copy
      continue;
    }
    add_replica(b, id);
    ++reclaimed;
  }
  ++nodes_revived_;
  if (obs_ != nullptr) {
    obs_->registry().add(obs_ids_.nodes_revived);
    obs::TraceEvent ev;
    ev.kind = obs::ActionKind::kNodeRecovered;
    ev.at = sim_.now();
    ev.node = static_cast<std::int64_t>(id.value());
    ev.count = reclaimed;
    ev.outcome = surplus > 0 ? "surplus_dropped" : "rejoined";
    obs_->trace().record(std::move(ev));
  }
  if (log_.enabled(util::LogLevel::kInfo)) {
    log_.log(util::LogLevel::kInfo, "cluster",
             "node " + std::to_string(id.value()) + " revived, reclaimed " +
                 std::to_string(reclaimed) + " replicas, dropped " + std::to_string(surplus));
  }
  return true;
}

void Cluster::corrupt_replica(BlockId block, NodeId node) {
  if (node_has_block(node, block)) {
    corrupt_replicas_.insert({block, node});
  }
}

bool Cluster::is_corrupt(BlockId block, NodeId node) const {
  return corrupt_replicas_.contains({block, node});
}

void Cluster::report_corrupt_replica(BlockId block, NodeId node) {
  if (!is_corrupt(block, node)) {
    return;
  }
  ++corruptions_detected_;
  if (obs_ != nullptr) {
    obs_->registry().add(obs_ids_.corruptions);
  }
  remove_replica(block, node);
  enqueue_recovery(block);
  if (log_.enabled(util::LogLevel::kWarn)) {
    log_.log(util::LogLevel::kWarn, "cluster",
             "corrupt replica reported: block " + std::to_string(block.value()) +
                 " on node " + std::to_string(node.value()));
  }
}

// ----- placement -------------------------------------------------------------

void Cluster::set_placement_policy(std::shared_ptr<PlacementPolicy> policy) {
  assert(policy != nullptr);
  placement_ = std::move(policy);
}

// ----- replicas --------------------------------------------------------------

void Cluster::add_replica(BlockId block, NodeId node_id) {
  if (block_locations_.size() <= block.value()) {
    block_locations_.resize(block.value() + 1);
  }
  util::SmallVec<NodeId, 4>& locs = block_locations_[block.value()];
  if (locs.contains(node_id)) {
    return;
  }
  locs.push_back(node_id);
  DataNode& node = node_mutable(node_id);
  node.blocks.insert(block);
  const BlockInfo* info = namespace_.find_block(block);
  if (info != nullptr) {
    node.used_bytes += info->size;
  }
}

void Cluster::remove_replica(BlockId block, NodeId node_id) {
  if (block.value() < block_locations_.size()) {
    block_locations_[block.value()].erase_value(node_id);
  }
  DataNode& node = node_mutable(node_id);
  if (node.blocks.erase(block) > 0) {
    const BlockInfo* info = namespace_.find_block(block);
    if (info != nullptr) {
      node.used_bytes -= std::min(node.used_bytes, info->size);
    }
  }
  corrupt_replicas_.erase({block, node_id});
}

std::vector<NodeId> Cluster::locations(BlockId block) const {
  const auto& locs = locations_view(block);
  return std::vector<NodeId>(locs.begin(), locs.end());
}

bool Cluster::node_has_block(NodeId node_id, BlockId block) const {
  return nodes_[node_id.value()].blocks.contains(block);
}

std::size_t Cluster::file_blocks_on_node(FileId file, NodeId node_id) const {
  const FileInfo* info = namespace_.find(file);
  if (info == nullptr) {
    return 0;
  }
  std::size_t count = 0;
  const DataNode& node = nodes_[node_id.value()];
  for (const BlockId b : info->blocks) {
    count += node.blocks.contains(b) ? 1 : 0;
  }
  for (const BlockId b : info->parity_blocks) {
    count += node.blocks.contains(b) ? 1 : 0;
  }
  return count;
}

const ec::ErasureCodec* Cluster::codec_for(const FileInfo& file) const {
  const std::size_t k = file.blocks.size();
  const std::size_t m = file.parity_blocks.size();
  if (k == 0 || m == 0) {
    return nullptr;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(file.ec_codec) << 40) |
                            (static_cast<std::uint64_t>(file.ec_locals) << 32) |
                            (static_cast<std::uint64_t>(k) << 16) |
                            static_cast<std::uint64_t>(m);
  const auto it = codec_cache_.find(key);
  if (it != codec_cache_.end()) {
    return it->second.get();
  }
  std::unique_ptr<ec::ErasureCodec> codec;
  if (file.ec_codec < ec::codec_kind_count()) {
    const auto kind = static_cast<ec::CodecKind>(file.ec_codec);
    ec::CodecSpec spec{kind, static_cast<std::uint32_t>(m), 0, 0};
    if (kind == ec::CodecKind::kAzureLrc) {
      // The stripe stores l; g is whatever remains of the parity count.
      spec.local_groups = file.ec_locals;
      spec.global_parities =
          file.ec_locals < m ? static_cast<std::uint32_t>(m) - file.ec_locals : 0;
      spec.parities = 0;
    }
    try {
      codec = ec::make_codec(spec, k);
    } catch (const std::invalid_argument&) {
      codec = nullptr;  // stripe wider than the field allows — legacy fallback
    }
    // normalize_spec may have bent the shape (e.g. a 1-parity Hitchhiker
    // bumped to 2); a codec that doesn't match the actual stripe is useless.
    if (codec != nullptr && codec->total_shards() != k + m) {
      codec = nullptr;
    }
  }
  return codec_cache_.emplace(key, std::move(codec)).first->second.get();
}

std::optional<Cluster::StripeReadSet> Cluster::plan_stripe_read(const FileInfo& file,
                                                               BlockId lost) const {
  const std::size_t k = file.blocks.size();
  const std::size_t n = k + file.parity_blocks.size();
  const auto shard_block = [&](std::size_t i) {
    return i < k ? file.blocks[i] : file.parity_blocks[i - k];
  };
  std::size_t lost_idx = n;
  std::vector<bool> present(n, false);
  std::vector<NodeId> source(n, NodeId{0});
  for (std::size_t i = 0; i < n; ++i) {
    const BlockId b = shard_block(i);
    if (b == lost) {
      lost_idx = i;
      continue;
    }
    for (const NodeId nd : locations_view(b)) {
      if (is_serving(nd)) {
        present[i] = true;
        source[i] = nd;
        break;
      }
    }
  }
  if (lost_idx == n) {
    return std::nullopt;
  }
  StripeReadSet out;
  const ec::ErasureCodec* codec = codec_for(file);
  if (codec != nullptr) {
    out.codec = static_cast<ec::CodecKind>(file.ec_codec);
    const auto plan = codec->plan_repair(lost_idx, present);
    if (!plan.has_value()) {
      return std::nullopt;
    }
    const std::size_t s = plan->subshards;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cells = plan->cells_on(i);
      if (cells == 0) {
        continue;
      }
      const BlockInfo* sinfo = namespace_.find_block(shard_block(i));
      const std::uint64_t bytes = ec::RepairPlan::bytes_for(sinfo->size, cells, s);
      out.sources.push_back({shard_block(i), source[i], bytes});
      out.total_bytes += bytes;
    }
    return out;
  }
  // Legacy any-k full-block rule (pre-zoo behaviour, and the fallback for
  // stripes no GF(2^8) code can span): first k live shards, data first.
  for (std::size_t i = 0; i < n && out.sources.size() < k; ++i) {
    if (!present[i]) {
      continue;
    }
    const BlockInfo* sinfo = namespace_.find_block(shard_block(i));
    out.sources.push_back({shard_block(i), source[i], sinfo->size});
    out.total_bytes += sinfo->size;
  }
  if (out.sources.size() < k) {
    return std::nullopt;
  }
  return out;
}

void Cluster::record_repair_traffic(const StripeReadSet& plan, bool degraded) {
  if (obs_ == nullptr) {
    return;
  }
  const auto codec = static_cast<std::size_t>(plan.codec);
  obs::MetricsRegistry& r = obs_->registry();
  if (degraded) {
    r.add(obs_ids_.ec_degraded_bytes, plan.total_bytes);
    if (codec < obs_ids_.ec_degraded_bytes_by_codec.size()) {
      r.add(obs_ids_.ec_degraded_bytes_by_codec[codec], plan.total_bytes);
    }
  } else {
    r.add(obs_ids_.ec_repair_bytes, plan.total_bytes);
    r.add(obs_ids_.ec_repair_fanout, plan.sources.size());
    if (codec < obs_ids_.ec_repair_bytes_by_codec.size()) {
      r.add(obs_ids_.ec_repair_bytes_by_codec[codec], plan.total_bytes);
    }
  }
}

bool Cluster::file_available(FileId file) const {
  const FileInfo* info = namespace_.find(file);
  if (info == nullptr) {
    return false;
  }
  std::size_t live_shards = 0;
  std::size_t missing_data = 0;
  for (const BlockId b : info->blocks) {
    bool alive = false;
    for (const NodeId n : locations_view(b)) {
      alive = alive || is_serving(n);
    }
    if (alive) {
      ++live_shards;
    } else {
      ++missing_data;
    }
  }
  if (missing_data == 0) {
    return true;
  }
  if (!info->erasure_coded) {
    return false;
  }
  std::vector<bool> present(info->blocks.size() + info->parity_blocks.size(), false);
  for (std::size_t i = 0; i < info->blocks.size(); ++i) {
    for (const NodeId n : locations_view(info->blocks[i])) {
      if (is_serving(n)) {
        present[i] = true;
        break;
      }
    }
  }
  for (std::size_t j = 0; j < info->parity_blocks.size(); ++j) {
    for (const NodeId n : locations_view(info->parity_blocks[j])) {
      if (is_serving(n)) {
        present[info->blocks.size() + j] = true;
        ++live_shards;
        break;
      }
    }
  }
  // Ask the file's code whether the survivors span the data. For MDS codes
  // (RS, Hitchhiker) this is exactly "any k of k+m"; for LRC it is the
  // honest rank test — 10 live shards of an unrecoverable pattern do not
  // make the file available.
  if (const ec::ErasureCodec* codec = codec_for(*info)) {
    return codec->recoverable(present);
  }
  return live_shards >= info->blocks.size();
}

// ----- namespace & data -------------------------------------------------------

std::optional<FileId> Cluster::populate_file(const std::string& path, std::uint64_t size,
                                             std::optional<std::uint32_t> replication) {
  const std::uint32_t rep = replication.value_or(config_.default_replication);
  const auto file = namespace_.create(path, size, config_.block_size, rep);
  if (!file) {
    return std::nullopt;
  }
  const FileInfo* info = namespace_.find(*file);
  for (const BlockId b : info->blocks) {
    const std::vector<NodeId> targets =
        placement_->choose_targets(*this, b, rep, std::nullopt, rng_);
    for (const NodeId t : targets) {
      add_replica(b, t);
    }
  }
  emit_audit("create", *file, path, NodeId{0}, std::nullopt, std::nullopt);
  return file;
}

std::vector<std::optional<FileId>> Cluster::populate_files(
    const std::vector<Namespace::FileSpec>& specs, util::ThreadPool* pool) {
  // Reserve all dense tables from the spec so bulk ingest never rehashes
  // or regrows mid-populate.
  std::uint64_t total_blocks = 0;
  for (const Namespace::FileSpec& spec : specs) {
    if (spec.size == 0 || spec.block_size == 0) {
      continue;
    }
    total_blocks += (spec.size + spec.block_size - 1) / spec.block_size;
  }
  namespace_.reserve(namespace_.file_count() + specs.size(),
                     namespace_.block_id_bound() + total_blocks);
  block_locations_.reserve(namespace_.block_id_bound() + total_blocks + 1);

  std::vector<std::optional<FileId>> ids = namespace_.create_batch(specs, pool);

  // Placement stays serial: it draws from the cluster RNG, so target choice
  // is identical to a populate_file loop regardless of pool size.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!ids[i]) {
      continue;
    }
    const FileInfo* info = namespace_.find(*ids[i]);
    const std::uint32_t rep = info->replication;
    for (const BlockId b : info->blocks) {
      const std::vector<NodeId> targets =
          placement_->choose_targets(*this, b, rep, std::nullopt, rng_);
      for (const NodeId t : targets) {
        add_replica(b, t);
      }
    }
    emit_audit("create", *ids[i], info->path, NodeId{0}, std::nullopt, std::nullopt);
  }
  return ids;
}

std::optional<FileId> Cluster::write_file(const std::string& path, std::uint64_t size,
                                          NodeId writer, DoneCallback done,
                                          std::optional<std::uint32_t> replication) {
  const std::uint32_t rep = replication.value_or(config_.default_replication);
  const auto file = namespace_.create(path, size, config_.block_size, rep);
  if (!file) {
    if (done) {
      sim_.schedule_after(sim::micros(0), [done] { done(false); });
    }
    return std::nullopt;
  }
  emit_audit("create", *file, path, writer, std::nullopt, std::nullopt);

  // Write blocks one after another (HDFS streams a file block by block); a
  // block completes when every pipeline hop finishes.
  const FileInfo* info = namespace_.find(*file);
  auto blocks = std::make_shared<std::vector<BlockId>>(info->blocks);
  // The stored function captures only a weak_ptr to itself (a strong capture
  // would be a shared_ptr cycle — the recursion's continuations leak); each
  // continuation keeps the function alive with the locked shared_ptr.
  auto write_next = std::make_shared<std::function<void(std::size_t)>>();
  *write_next = [this, blocks, writer, done,
                 weak_next = std::weak_ptr(write_next)](std::size_t index) {
    const auto self = weak_next.lock();
    assert(self != nullptr);
    if (index >= blocks->size()) {
      if (done) {
        done(true);
      }
      return;
    }
    const BlockId b = (*blocks)[index];
    const BlockInfo* binfo = namespace_.find_block(b);
    const std::vector<NodeId> targets = placement_->choose_targets(
        *this, b, namespace_.find(binfo->file)->replication, writer, rng_);
    if (targets.empty()) {
      if (done) {
        done(false);
      }
      return;
    }
    // Pipeline: writer -> t0 -> t1 -> ... Each hop is a flow; the block is
    // committed when the slowest hop drains.
    auto remaining = std::make_shared<std::size_t>(targets.size());
    auto failed = std::make_shared<bool>(false);
    NodeId hop_src = writer;
    for (const NodeId t : targets) {
      net::NetworkModel::FlowOptions opts;
      opts.src_disk = hop_src != writer;  // the writer streams from memory
      opts.dst_disk = true;
      // A pipeline node died: the write fails (HDFS would rebuild the
      // pipeline; we surface the failure to the caller instead). Replicas
      // from hops that already landed stay registered.
      opts.on_abort = [this, b, t, failed, done](net::FlowId, std::uint64_t partial) {
        record_flow_abort(b, static_cast<std::int64_t>(t.value()), partial, "write_failed");
        if (!*failed) {
          *failed = true;
          if (done) {
            done(false);
          }
        }
      };
      network_.start_flow(hop_src.value(), t.value(), binfo->size, opts,
                          [this, b, t, remaining, failed, self, index](net::FlowId) {
                            if (is_serving(t)) {
                              add_replica(b, t);
                            }
                            if (--*remaining == 0 && !*failed) {
                              (*self)(index + 1);
                            }
                          });
      hop_src = t;
    }
  };
  (*write_next)(0);
  return file;
}

void Cluster::remove_file(FileId file) {
  const FileInfo* info = namespace_.find(file);
  if (info == nullptr) {
    return;
  }
  emit_audit("delete", info->id, info->path, NodeId{0}, std::nullopt, std::nullopt);
  // Free replicas while block sizes are still known, then drop metadata.
  std::vector<BlockId> blocks = info->blocks;
  blocks.insert(blocks.end(), info->parity_blocks.begin(), info->parity_blocks.end());
  for (const BlockId b : blocks) {
    for (const NodeId n : locations(b)) {
      remove_replica(b, n);
    }
  }
  namespace_.remove(file);
}

// ----- reads -------------------------------------------------------------------

void Cluster::record_flow_abort(std::optional<BlockId> block, std::int64_t node,
                                std::uint64_t partial_bytes, const char* what) {
  if (obs_ == nullptr) {
    return;
  }
  obs_->registry().add(obs_ids_.flow_aborts);
  obs::TraceEvent ev;
  ev.kind = obs::ActionKind::kFlowAborted;
  ev.at = sim_.now();
  if (block) {
    ev.block = static_cast<std::int64_t>(block->value());
    const BlockInfo* info = namespace_.find_block(*block);
    if (info != nullptr) {
      const FileInfo* file = namespace_.find(info->file);
      if (file != nullptr) {
        ev.path = file->path;
      }
    }
  }
  ev.node = node;
  ev.bytes_moved = partial_bytes;
  ev.outcome = what;
  obs_->trace().record(std::move(ev));
}

std::optional<NodeId> Cluster::pick_read_source(NodeId client, BlockId block) const {
  const auto& locs = locations_view(block);
  std::optional<NodeId> best;
  int best_score = std::numeric_limits<int>::max();
  for (const NodeId n : locs) {
    if (!is_serving(n)) {
      continue;
    }
    const DataNode& dn = nodes_[n.value()];
    if (dn.active_sessions >= dn.config.max_sessions) {
      continue;
    }
    // Score: locality dominates, then current load.
    int score = 0;
    if (n == client) {
      score = 0;
    } else if (rack_of(n) == rack_of(client)) {
      score = 1000;
    } else {
      score = 2000;
    }
    score += static_cast<int>(dn.active_sessions);
    if (score < best_score) {
      best_score = score;
      best = n;
    }
  }
  return best;
}

void Cluster::read_block(NodeId client, BlockId block, ReadCallback callback) {
  const BlockInfo* info = namespace_.find_block(block);
  if (info == nullptr) {
    ReadOutcome out;
    out.error = ReadError::kNoSuchBlock;
    sim_.schedule_after(sim::micros(0), [callback, out] { callback(out); });
    return;
  }
  const FileInfo* file = namespace_.find(info->file);
  const std::optional<NodeId> source = pick_read_source(client, block);

  emit_audit("read", file != nullptr ? file->id : FileId{0},
             file != nullptr ? file->path : std::string_view{"?"}, client, block,
             source, source.has_value());

  if (!source) {
    // Distinguish "no live replica" from "all replica holders busy".
    bool any_live = false;
    for (const NodeId n : locations_view(block)) {
      any_live = any_live || is_serving(n);
    }
    if (!any_live && file != nullptr && file->erasure_coded && !info->is_parity) {
      read_block_via_reconstruction(client, *info, std::move(callback));
      return;
    }
    ReadOutcome out;
    out.error = any_live ? ReadError::kAllBusy : ReadError::kNoReplica;
    if (any_live) {
      ++reads_rejected_;
      if (obs_ != nullptr) {
        obs_->registry().add(obs_ids_.reads_rejected);
      }
    }
    sim_.schedule_after(sim::micros(0), [callback, out] { callback(out); });
    return;
  }

  DataNode& server = node_mutable(*source);
  ++server.active_sessions;

  ReadLocality locality = ReadLocality::kRemote;
  if (*source == client) {
    locality = ReadLocality::kNodeLocal;
  } else if (rack_of(*source) == rack_of(client)) {
    locality = ReadLocality::kRackLocal;
  }

  const sim::SimTime start = sim_.now();
  net::NetworkModel::FlowOptions opts;
  opts.src_disk = true;
  opts.dst_disk = false;
  const NodeId src = *source;
  const std::uint64_t bytes = info->size;
  const BlockId bid = block;
  // Server died (or the link was torn down) mid-read: release the session
  // if the server survives and transparently retry another replica — or
  // reconstruct, exactly as a fresh read would.
  opts.on_abort = [this, src, client, bid, callback](net::FlowId, std::uint64_t partial) {
    DataNode& server = node_mutable(src);
    if (server.active_sessions > 0) {
      --server.active_sessions;
    }
    record_flow_abort(bid, static_cast<std::int64_t>(src.value()), partial, "read_retry");
    read_block(client, bid, callback);
  };
  // Corruption is a property of the bytes that leave the disk, so it is
  // sampled when the transfer starts: if another in-flight transfer detects
  // the same bad replica first (dropping it and erasing the namenode's
  // marker), this read still fails its checksum instead of laundering the
  // corrupt data into a successful read.
  const bool src_corrupt = is_corrupt(bid, src);
  network_.start_flow(
      src.value(), client.value(), bytes, opts,
      [this, src, client, bid, callback, start, bytes, locality, src_corrupt](net::FlowId) {
        DataNode& server = node_mutable(src);
        if (server.active_sessions > 0) {
          --server.active_sessions;
        }
        // Checksum verification at the client: a corrupt replica is
        // reported to the namenode, dropped, re-replicated from a clean
        // copy, and the read transparently retries elsewhere. The drop and
        // the detection count are attributed once — to the transfer that
        // finds the replica still registered.
        if (src_corrupt || is_corrupt(bid, src)) {
          if (node_has_block(src, bid)) {
            ++corruptions_detected_;
            if (obs_ != nullptr) {
              obs_->registry().add(obs_ids_.corruptions);
            }
            remove_replica(bid, src);
            enqueue_recovery(bid);
          }
          if (log_.enabled(util::LogLevel::kWarn)) {
            log_.log(util::LogLevel::kWarn, "cluster",
                     "checksum failure: block " + std::to_string(bid.value()) +
                         " on node " + std::to_string(src.value()));
          }
          read_block(client, bid, callback);
          return;
        }
        ++reads_completed_;
        ReadOutcome out;
        out.ok = true;
        out.locality = locality;
        out.duration = sim_.now() - start;
        out.bytes = bytes;
        if (obs_ != nullptr) {
          obs_->registry().add(obs_ids_.reads_completed);
          obs_->registry().add(obs_ids_.read_bytes, bytes);
          obs_->registry().observe(obs_ids_.read_seconds, out.duration.seconds());
        }
        callback(out);
      });
}

void Cluster::read_block_via_reconstruction(NodeId client, const BlockInfo& info,
                                            ReadCallback callback) {
  const FileInfo* file = namespace_.find(info.file);
  assert(file != nullptr);
  // Ask the file's code for its cheapest read set (LRC: the local group;
  // Hitchhiker: half-blocks; RS/legacy: any k whole shards).
  const auto plan = plan_stripe_read(*file, info.id);
  if (!plan.has_value()) {
    ReadOutcome out;
    out.error = ReadError::kNoReplica;
    sim_.schedule_after(sim::micros(0), [callback, out] { callback(out); });
    return;
  }
  record_repair_traffic(*plan, /*degraded=*/true);
  // Degraded read: pull the plan's shards in parallel and reconstruct at
  // the client.
  const sim::SimTime start = sim_.now();
  auto remaining = std::make_shared<std::size_t>(plan->sources.size());
  auto aborted = std::make_shared<bool>(false);
  const std::uint64_t bytes = info.size;
  const BlockId bid = info.id;
  for (const auto& [shard_block, shard_node, shard_bytes] : plan->sources) {
    net::NetworkModel::FlowOptions opts;
    opts.src_disk = true;
    // A shard holder died mid-decode: the first abort retries the whole
    // read (a fresh shard set is gathered); surviving shard flows drain
    // harmlessly and are ignored via the shared flag.
    opts.on_abort = [this, aborted, client, bid, callback,
                     sn = shard_node](net::FlowId, std::uint64_t partial) {
      record_flow_abort(bid, static_cast<std::int64_t>(sn.value()), partial,
                        "degraded_read_retry");
      if (*aborted) {
        return;
      }
      *aborted = true;
      read_block(client, bid, callback);
    };
    network_.start_flow(shard_node.value(), client.value(), shard_bytes, opts,
                        [this, remaining, aborted, callback, start, bytes](net::FlowId) {
                          if (*aborted || --*remaining > 0) {
                            return;
                          }
                          ++reads_completed_;
                          ReadOutcome out;
                          out.ok = true;
                          out.degraded = true;
                          out.locality = ReadLocality::kRemote;
                          out.duration = sim_.now() - start;
                          out.bytes = bytes;
                          if (obs_ != nullptr) {
                            obs_->registry().add(obs_ids_.reads_completed);
                            obs_->registry().add(obs_ids_.reads_degraded);
                            obs_->registry().add(obs_ids_.read_bytes, bytes);
                            obs_->registry().observe(obs_ids_.read_seconds,
                                                     out.duration.seconds());
                          }
                          callback(out);
                        });
  }
}

void Cluster::record_open(NodeId client, FileId file) {
  const FileInfo* info = namespace_.find(file);
  if (info != nullptr) {
    emit_audit("open", info->id, info->path, client, std::nullopt, std::nullopt);
  }
}

void Cluster::read_file(NodeId client, FileId file, ReadCallback callback) {
  const FileInfo* info = namespace_.find(file);
  if (info == nullptr) {
    ReadOutcome out;
    out.error = ReadError::kNoSuchBlock;
    sim_.schedule_after(sim::micros(0), [callback, out] { callback(out); });
    return;
  }
  emit_audit("open", info->id, info->path, client, std::nullopt, std::nullopt);

  auto blocks = std::make_shared<std::vector<BlockId>>(info->blocks);
  auto aggregate = std::make_shared<ReadOutcome>();
  aggregate->ok = true;
  aggregate->locality = ReadLocality::kNodeLocal;
  const sim::SimTime start = sim_.now();

  // Weak self-capture: a strong capture would make the stored function own
  // itself (shared_ptr cycle → leak); the per-block continuation holds the
  // locked shared_ptr instead, keeping the chain alive exactly as long as a
  // step is pending.
  auto read_next = std::make_shared<std::function<void(std::size_t)>>();
  *read_next = [this, blocks, client, callback, aggregate, start,
                weak_next = std::weak_ptr(read_next)](std::size_t i) {
    if (i >= blocks->size() || !aggregate->ok) {
      aggregate->duration = sim_.now() - start;
      callback(*aggregate);
      return;
    }
    const auto self = weak_next.lock();
    assert(self != nullptr);
    read_block(client, (*blocks)[i],
               [aggregate, self, i](const ReadOutcome& out) {
                 aggregate->ok = aggregate->ok && out.ok;
                 aggregate->error = out.ok ? aggregate->error : out.error;
                 aggregate->locality = worse(aggregate->locality, out.locality);
                 aggregate->degraded = aggregate->degraded || out.degraded;
                 aggregate->bytes += out.bytes;
                 (*self)(i + 1);
               });
  };
  (*read_next)(0);
}

// ----- replication management ---------------------------------------------------

void Cluster::queue_background(BackgroundJob job) {
  background_queue_.push_back(std::move(job));
  pump_background_queue();
}

void Cluster::pump_background_queue() {
  while (background_streams_ < config_.max_background_streams) {
    // Recovery work first — an under-replicated block is one failure away
    // from loss, while generic background jobs merely move data around.
    const auto finished = [this] {
      assert(background_streams_ > 0);
      --background_streams_;
      // Defer the pump so a synchronous chain of completions cannot recurse.
      sim_.schedule_after(sim::micros(0), [this] { pump_background_queue(); });
    };
    if (auto task = pop_recovery()) {
      ++background_streams_;
      run_recovery(*task, finished);
      continue;
    }
    if (background_queue_.empty()) {
      break;
    }
    BackgroundJob job = std::move(background_queue_.front());
    background_queue_.pop_front();
    ++background_streams_;
    job(finished);
  }
  if (obs_ != nullptr) {
    obs_->registry().set(obs_ids_.bg_queue_depth,
                         static_cast<double>(background_queue_.size() + recovery_queued_));
    obs_->registry().set(obs_ids_.bg_streams, static_cast<double>(background_streams_));
  }
}

void Cluster::copy_block(BlockId block, std::optional<NodeId> source, NodeId target,
                         DoneCallback done) {
  const BlockInfo* info = namespace_.find_block(block);
  if (info == nullptr || !is_serving(target) || node_has_block(target, block)) {
    if (done) {
      done(false);
    }
    return;
  }
  NodeId src = target;
  if (source && is_serving(*source)) {
    src = *source;
  } else {
    // Least-loaded live replica: spread transfer sources over every current
    // holder (including replicas added moments ago), so a direct jump to the
    // optimal factor fans out instead of draining one disk — this is what
    // makes "increase directly" beat "one by one" (paper Fig. 7).
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    bool found = false;
    for (const NodeId n : locations_view(block)) {
      if (!is_serving(n)) {
        continue;
      }
      const DataNode& dn = nodes_[n.value()];
      const std::uint64_t load =
          static_cast<std::uint64_t>(dn.background_reads) * 1000 + dn.active_sessions;
      if (load < best) {
        best = load;
        src = n;
        found = true;
      }
    }
    if (!found) {
      if (done) {
        done(false);
      }
      return;
    }
  }
  ++node_mutable(src).background_reads;
  net::NetworkModel::FlowOptions opts;
  opts.src_disk = src != target;
  opts.dst_disk = true;
  opts.max_rate = config_.background_bandwidth_cap;
  // Watchdog + endpoint-failure handling: a copy whose source or target
  // died (or that outlived its deadline on a degraded path) fails to the
  // caller, which retries through the recovery queue's backoff.
  opts.timeout = config_.background_copy_timeout;
  opts.on_abort = [this, block, src, target, done](net::FlowId, std::uint64_t partial) {
    DataNode& source_node = node_mutable(src);
    if (source_node.background_reads > 0) {
      --source_node.background_reads;
    }
    record_flow_abort(block, static_cast<std::int64_t>(target.value()), partial,
                      "copy_failed");
    if (done) {
      done(false);
    }
  };
  // Sampled at start for the same reason as read_block: a copy of corrupt
  // bytes is corrupt even if another transfer drops the source replica (and
  // its corruption marker) while this copy is in flight.
  const bool src_corrupt = is_corrupt(block, src);
  network_.start_flow(src.value(), target.value(), info->size, opts,
                      [this, block, src, target, done, src_corrupt](net::FlowId) {
                        DataNode& source_node = node_mutable(src);
                        if (source_node.background_reads > 0) {
                          --source_node.background_reads;
                        }
                        // Transfer checksums catch a corrupt source: the
                        // bad replica is dropped and the copy fails (the
                        // caller or the re-replication monitor retries from
                        // a clean replica). Detection is attributed to the
                        // transfer that finds the replica still registered.
                        if (src_corrupt || is_corrupt(block, src)) {
                          if (node_has_block(src, block)) {
                            ++corruptions_detected_;
                            if (obs_ != nullptr) {
                              obs_->registry().add(obs_ids_.corruptions);
                            }
                            remove_replica(block, src);
                            enqueue_recovery(block);
                          }
                          if (done) {
                            done(false);
                          }
                          return;
                        }
                        if (is_serving(target)) {
                          add_replica(block, target);
                          if (done) {
                            done(true);
                          }
                        } else if (done) {
                          done(false);
                        }
                      });
}

std::uint32_t Cluster::recovery_priority(BlockId block) const {
  std::size_t live = 0;
  for (const NodeId n : locations_view(block)) {
    live += is_serving(n) ? 1 : 0;
  }
  if (live == 0) {
    return 0;
  }
  return live == 1 ? 1 : 2;
}

void Cluster::enqueue_recovery(BlockId block) {
  if (recovery_tracked_.contains(block)) {
    return;  // a task for this block is already queued, running, or backing off
  }
  recovery_tracked_.insert(block);
  recovery_queue_[recovery_priority(block)].push_back(RecoveryTask{block, 0});
  ++recovery_queued_;
  pump_background_queue();
}

std::optional<Cluster::RecoveryTask> Cluster::pop_recovery() {
  if (recovery_queued_ == 0) {
    return std::nullopt;
  }
  for (auto& level : recovery_queue_) {
    if (level.empty()) {
      continue;
    }
    RecoveryTask task = level.front();
    level.pop_front();
    --recovery_queued_;
    return task;
  }
  return std::nullopt;
}

void Cluster::retry_or_abandon(RecoveryTask task) {
  ++task.attempts;
  if (task.attempts > config_.recovery_max_retries) {
    ++recoveries_abandoned_;
    recovery_tracked_.erase(task.block);
    bool any_live = false;
    for (const NodeId n : locations_view(task.block)) {
      any_live = any_live || is_serving(n);
    }
    if (!any_live) {
      // Out of retries with nothing left to copy from: the block is lost
      // unless a holder revives.
      ++blocks_lost_;
      if (obs_ != nullptr) {
        obs_->registry().add(obs_ids_.blocks_lost);
      }
    }
    if (obs_ != nullptr) {
      obs_->registry().add(obs_ids_.recoveries_abandoned);
    }
    if (log_.enabled(util::LogLevel::kWarn)) {
      log_.log(util::LogLevel::kWarn, "cluster",
               "recovery abandoned for block " + std::to_string(task.block.value()) +
                   " after " + std::to_string(config_.recovery_max_retries) + " retries");
    }
    return;
  }
  ++recovery_retries_;
  if (obs_ != nullptr) {
    obs_->registry().add(obs_ids_.recovery_retries);
  }
  sim::SimDuration backoff = config_.recovery_backoff;
  for (std::uint32_t i = 1; i < task.attempts && backoff < config_.recovery_backoff_cap;
       ++i) {
    backoff = backoff * 2;
  }
  backoff = std::min(backoff, config_.recovery_backoff_cap);
  sim_.schedule_after(backoff, [this, task] {
    recovery_queue_[recovery_priority(task.block)].push_back(task);
    ++recovery_queued_;
    pump_background_queue();
  });
}

void Cluster::run_recovery(RecoveryTask task, std::function<void()> finished) {
  const BlockId block = task.block;
  const BlockInfo* info = namespace_.find_block(block);
  if (info == nullptr) {
    recovery_tracked_.erase(block);
    finished();
    return;
  }
  const FileInfo* file = namespace_.find(info->file);
  const std::uint32_t target_rep =
      info->is_parity ? 1 : (file != nullptr ? file->replication : 1);
  std::size_t live = 0;
  for (const NodeId n : locations(block)) {
    live += is_serving(n) ? 1 : 0;
  }
  if (live >= target_rep) {
    recovery_tracked_.erase(block);  // recovered (e.g. a holder revived)
    finished();
    return;
  }
  if (live == 0) {
    if (file != nullptr && file->erasure_coded) {
      // Data shards and parities alike are rebuilt from the stripe.
      run_reconstruction(std::move(task), std::move(finished));
      return;
    }
    // Nothing to copy from; retry with backoff in case the holder revives.
    finished();
    retry_or_abandon(std::move(task));
    return;
  }
  const std::vector<NodeId> targets =
      placement_->choose_targets(*this, block, 1, std::nullopt, rng_);
  if (targets.empty()) {
    finished();
    retry_or_abandon(std::move(task));
    return;
  }
  const NodeId target = targets.front();
  copy_block(block, std::nullopt, target,
             [this, task = std::move(task), target,
              finished = std::move(finished)](bool ok) mutable {
               const BlockId block = task.block;
               if (!ok) {
                 finished();
                 retry_or_abandon(std::move(task));
                 return;
               }
               ++rereplications_completed_;
               if (obs_ != nullptr) {
                 obs_->registry().add(obs_ids_.rereplications);
                 obs::TraceEvent ev;
                 ev.kind = obs::ActionKind::kRereplication;
                 ev.at = sim_.now();
                 ev.block = static_cast<std::int64_t>(block.value());
                 ev.node = static_cast<std::int64_t>(target.value());
                 const BlockInfo* info = namespace_.find_block(block);
                 if (info != nullptr) {
                   ev.bytes_moved = info->size;
                   const FileInfo* file = namespace_.find(info->file);
                   if (file != nullptr) {
                     ev.path = file->path;
                   }
                 }
                 obs_->trace().record(std::move(ev));
               }
               // One replica restored; requeue (fresh attempt budget) until
               // the deficit is gone — run_recovery clears the tracking set
               // once the target count is met.
               task.attempts = 0;
               recovery_queue_[recovery_priority(block)].push_back(task);
               ++recovery_queued_;
               finished();
               pump_background_queue();
             });
}

void Cluster::run_reconstruction(RecoveryTask task, std::function<void()> finished) {
  const BlockId block = task.block;
  const BlockInfo* info = namespace_.find_block(block);
  const FileInfo* file = info != nullptr ? namespace_.find(info->file) : nullptr;
  if (info == nullptr || file == nullptr || !file->erasure_coded) {
    recovery_tracked_.erase(block);
    finished();
    return;
  }
  const std::vector<NodeId> targets =
      placement_->choose_targets(*this, block, 1, std::nullopt, rng_);
  if (targets.empty()) {
    finished();
    retry_or_abandon(std::move(task));
    return;
  }
  const NodeId target = targets.front();

  // Pull the code's repair read set to the target and rebuild there. LRC
  // reads its local group; Hitchhiker reads half-blocks; RS (and legacy
  // stripes) read any k whole shards.
  const auto plan = plan_stripe_read(*file, block);
  if (!plan.has_value()) {
    // Too many shards down right now; retry once some recover. The block is
    // only counted lost if retries run out with nothing live.
    finished();
    retry_or_abandon(std::move(task));
    return;
  }
  record_repair_traffic(*plan, /*degraded=*/false);
  const std::uint64_t plan_bytes = plan->total_bytes;
  const ec::CodecKind plan_codec = plan->codec;
  auto remaining = std::make_shared<std::size_t>(plan->sources.size());
  auto aborted = std::make_shared<bool>(false);
  auto shared_finished = std::make_shared<std::function<void()>>(std::move(finished));
  for (const auto& [shard_block, shard_node, shard_bytes] : plan->sources) {
    net::NetworkModel::FlowOptions opts;
    opts.src_disk = true;
    opts.dst_disk = true;
    opts.max_rate = config_.background_bandwidth_cap;
    opts.timeout = config_.background_copy_timeout;
    // A shard source (or the rebuild target) died mid-reconstruction: fail
    // this attempt once and go through the retry backoff; the other shard
    // flows drain harmlessly.
    opts.on_abort = [this, task, aborted, shared_finished,
                     sn = shard_node](net::FlowId, std::uint64_t partial) {
      record_flow_abort(task.block, static_cast<std::int64_t>(sn.value()), partial,
                        "reconstruction_failed");
      if (*aborted) {
        return;
      }
      *aborted = true;
      (*shared_finished)();
      retry_or_abandon(task);
    };
    network_.start_flow(
        shard_node.value(), target.value(), shard_bytes, opts,
        [this, block, target, remaining, aborted, shared_finished, task, plan_bytes,
         plan_codec](net::FlowId) {
          if (*aborted || --*remaining > 0) {
            return;
          }
          if (!is_serving(target)) {
            (*shared_finished)();
            retry_or_abandon(task);
            return;
          }
          add_replica(block, target);
          ++rereplications_completed_;
          if (obs_ != nullptr) {
            obs_->registry().add(obs_ids_.rereplications);
            obs::TraceEvent ev;
            ev.kind = obs::ActionKind::kRereplication;
            ev.at = sim_.now();
            ev.block = static_cast<std::int64_t>(block.value());
            ev.node = static_cast<std::int64_t>(target.value());
            ev.outcome = "reconstructed";
            ev.codec = to_string(plan_codec);
            ev.bytes_read = plan_bytes;
            const BlockInfo* info = namespace_.find_block(block);
            if (info != nullptr) {
              ev.bytes_moved = info->size;
              const FileInfo* file = namespace_.find(info->file);
              if (file != nullptr) {
                ev.path = file->path;
              }
            }
            obs_->trace().record(std::move(ev));
          }
          // Parity target is 1, data target is the file's (post-decode)
          // factor; requeue so run_recovery settles any remaining deficit
          // and clears the tracking set.
          recovery_queue_[recovery_priority(block)].push_back(
              RecoveryTask{block, 0});
          ++recovery_queued_;
          (*shared_finished)();
          pump_background_queue();
        });
  }
}

void Cluster::change_replication(FileId file, std::uint32_t target, IncreaseMode mode,
                                 DoneCallback done) {
  const FileInfo* info = namespace_.find(file);
  if (info == nullptr || target == 0) {
    if (done) {
      sim_.schedule_after(sim::micros(0), [done] { done(false); });
    }
    return;
  }
  emit_audit("setReplication", info->id, info->path, NodeId{0}, std::nullopt,
             std::nullopt);

  const std::uint32_t current = info->replication;
  namespace_.set_replication(file, target);

  if (target < current) {
    // Decrease: drop surplus replicas (policy decides which; ERMS prefers
    // standby nodes so no re-balancing is needed).
    std::vector<std::int64_t> removed;
    for (const BlockId b : info->blocks) {
      while (locations(b).size() > target) {
        const auto victim = placement_->choose_replica_to_remove(*this, b, rng_);
        if (!victim) {
          break;
        }
        remove_replica(b, *victim);
        if (obs_ != nullptr) {
          removed.push_back(static_cast<std::int64_t>(victim->value()));
        }
      }
    }
    if (obs_ != nullptr) {
      std::sort(removed.begin(), removed.end());
      removed.erase(std::unique(removed.begin(), removed.end()), removed.end());
      obs::TraceEvent ev;
      ev.kind = obs::ActionKind::kSetReplication;
      ev.at = sim_.now();
      ev.path = info->path;
      ev.rep_before = current;
      ev.rep_after = target;
      ev.targets = std::move(removed);  // nodes that lost replicas
      ev.outcome = "ok";
      obs_->registry().add(obs_ids_.replication_changes);
      obs_->trace().record(std::move(ev));
    }
    if (done) {
      sim_.schedule_after(sim::micros(0), [done] { done(true); });
    }
    return;
  }

  // Increase (or top-up at an unchanged factor — the deficit is computed
  // from actual block locations, not the metadata factor). kDirect queues
  // all extra replicas of all blocks at once; kOneByOne raises the factor
  // one step at a time, confirming each step before the next.
  if (mode == IncreaseMode::kDirect || target <= current + 1) {
    auto remaining = std::make_shared<std::size_t>(0);
    auto all_ok = std::make_shared<bool>(true);
    std::vector<std::pair<BlockId, NodeId>> copies;
    for (const BlockId b : info->blocks) {
      const std::size_t have = locations(b).size();
      if (have >= target) {
        continue;
      }
      const std::vector<NodeId> targets =
          placement_->choose_targets(*this, b, target - have, std::nullopt, rng_);
      for (const NodeId t : targets) {
        copies.emplace_back(b, t);
      }
    }
    *remaining = copies.size();
    if (copies.empty()) {
      if (obs_ != nullptr && target != current) {
        // Metadata-only change (every block already has enough replicas).
        obs::TraceEvent ev;
        ev.kind = obs::ActionKind::kSetReplication;
        ev.at = sim_.now();
        ev.path = info->path;
        ev.rep_before = current;
        ev.rep_after = target;
        ev.outcome = "ok";
        obs_->registry().add(obs_ids_.replication_changes);
        obs_->trace().record(std::move(ev));
      }
      if (done) {
        sim_.schedule_after(sim::micros(0), [done] { done(true); });
      }
      return;
    }
    // Proto trace event filled in up front (planned transfer volume and
    // target nodes), recorded once when the last copy lands.
    std::shared_ptr<obs::TraceEvent> ev;
    if (obs_ != nullptr) {
      ev = std::make_shared<obs::TraceEvent>();
      ev->kind = obs::ActionKind::kSetReplication;
      ev->path = info->path;
      ev->rep_before = current;
      ev->rep_after = target;
      std::vector<std::int64_t> gaining;
      for (const auto& [b, t] : copies) {
        const BlockInfo* binfo = namespace_.find_block(b);
        if (binfo != nullptr) {
          ev->bytes_moved += binfo->size;
        }
        gaining.push_back(static_cast<std::int64_t>(t.value()));
      }
      std::sort(gaining.begin(), gaining.end());
      gaining.erase(std::unique(gaining.begin(), gaining.end()), gaining.end());
      ev->targets = std::move(gaining);
    }
    for (const auto& [b, t] : copies) {
      queue_background([this, b = b, t = t, remaining, all_ok, ev,
                        done](std::function<void()> finished) {
        copy_block(b, std::nullopt, t,
                   [this, remaining, all_ok, ev, done,
                    finished = std::move(finished)](bool ok) {
                     *all_ok = *all_ok && ok;
                     finished();
                     if (--*remaining == 0) {
                       if (ev != nullptr && obs_ != nullptr) {
                         ev->at = sim_.now();
                         ev->outcome = *all_ok ? "ok" : "partial";
                         obs_->registry().add(obs_ids_.replication_changes);
                         obs_->trace().record(std::move(*ev));
                       }
                       if (done) {
                         done(*all_ok);
                       }
                     }
                   });
      });
    }
    return;
  }

  // One by one: raise the factor a step, poll until the step is confirmed,
  // then issue the next step. Weak self-capture avoids the shared_ptr cycle
  // a strong capture of `step` inside itself would create.
  auto step = std::make_shared<std::function<void(std::uint32_t)>>();
  *step = [this, file, target, done, weak_step = std::weak_ptr(step)](std::uint32_t next) {
    const auto self = weak_step.lock();
    assert(self != nullptr);
    change_replication(file, next, IncreaseMode::kDirect,
                       [this, file, target, done, self, next](bool ok) {
                         if (!ok || next >= target) {
                           if (done) {
                             done(ok);
                           }
                           return;
                         }
                         sim_.schedule_after(config_.replication_step_poll,
                                             [self, next] { (*self)(next + 1); });
                       });
  };
  (*step)(current + 1);
}

void Cluster::encode_file(FileId file, std::size_t parity_count, DoneCallback done) {
  encode_file(file,
              ec::CodecSpec{ec::CodecKind::kRs, static_cast<std::uint32_t>(parity_count),
                            0, 0},
              std::move(done));
}

void Cluster::encode_file(FileId file, const ec::CodecSpec& spec, DoneCallback done) {
  const FileInfo* info = namespace_.find(file);
  if (info == nullptr || info->erasure_coded || spec.total_parities() == 0) {
    if (done) {
      sim_.schedule_after(sim::micros(0), [done] { done(false); });
    }
    return;
  }
  const ec::CodecSpec norm = ec::normalize_spec(spec, info->blocks.size());
  const std::size_t parity_count = norm.total_parities();
  const auto codec_kind = static_cast<std::uint8_t>(norm.kind);
  const std::uint8_t codec_locals =
      norm.kind == ec::CodecKind::kAzureLrc
          ? static_cast<std::uint8_t>(std::min<std::uint32_t>(norm.local_groups, 255))
          : 0;
  emit_audit("encode", info->id, info->path, NodeId{0}, std::nullopt, std::nullopt);

  // Pick the encoder: the least-used active node.
  std::optional<NodeId> encoder;
  std::uint64_t best_used = std::numeric_limits<std::uint64_t>::max();
  for (const DataNode& n : nodes_) {
    if (n.state == NodeState::kActive && n.used_bytes < best_used) {
      best_used = n.used_bytes;
      encoder = n.id;
    }
  }
  if (!encoder) {
    if (done) {
      sim_.schedule_after(sim::micros(0), [done] { done(false); });
    }
    return;
  }
  const NodeId enc = *encoder;
  const FileId fid = file;
  const std::uint64_t parity_size = info->block_size;
  const std::vector<BlockId> data_blocks = info->blocks;

  std::shared_ptr<obs::TraceEvent> ev;
  if (obs_ != nullptr) {
    ev = std::make_shared<obs::TraceEvent>();
    ev->kind = obs::ActionKind::kClusterEncode;
    ev->path = info->path;
    ev->rep_before = info->replication;
    ev->node = static_cast<std::int64_t>(enc.value());
    ev->codec = ec::to_string(norm.kind);
  }

  queue_background([this, fid, enc, parity_size, parity_count, data_blocks, ev,
                    codec_kind, codec_locals, done](std::function<void()> finished) {
    // Stage 1: stream the k data blocks to the encoder.
    auto stage1 = std::make_shared<std::size_t>(data_blocks.size());
    auto enc_failed = std::make_shared<bool>(false);
    auto after_reads = [this, fid, enc, parity_size, parity_count, ev, done,
                        codec_kind, codec_locals, finished, enc_failed]() {
      // Stage 2: write the m parity blocks to policy-chosen targets.
      const FileInfo* info = namespace_.find(fid);
      if (info == nullptr || *enc_failed || !is_serving(enc)) {
        // A source or the encoder died while streaming: the encode fails
        // (the control loop's job retry re-runs it against live nodes).
        if (ev != nullptr && obs_ != nullptr) {
          ev->at = sim_.now();
          ev->outcome = "aborted";
          obs_->trace().record(std::move(*ev));
        }
        finished();
        if (done) {
          done(false);
        }
        return;
      }
      std::vector<BlockId> parities;
      for (std::size_t i = 0; i < parity_count; ++i) {
        parities.push_back(namespace_.add_parity_block(fid, parity_size));
      }
      auto stage2 = std::make_shared<std::size_t>(parities.size());
      auto all_ok = std::make_shared<bool>(true);
      auto finish_encode = [this, fid, ev, done, codec_kind, codec_locals, finished,
                            all_ok] {
        // Stage 3: keep one replica per data block, drop the rest.
        const FileInfo* info = namespace_.find(fid);
        if (info != nullptr && *all_ok) {
          namespace_.set_erasure_coded(fid, true);
          namespace_.set_codec(fid, codec_kind, codec_locals);
          namespace_.set_replication(fid, 1);
          for (const BlockId b : info->blocks) {
            while (locations(b).size() > 1) {
              const auto victim = placement_->choose_replica_to_remove(*this, b, rng_);
              if (!victim) {
                break;
              }
              remove_replica(b, *victim);
            }
          }
        }
        if (ev != nullptr && obs_ != nullptr) {
          ev->at = sim_.now();
          ev->rep_after = 1;
          ev->outcome = *all_ok ? "ok" : "failed";
          std::sort(ev->targets.begin(), ev->targets.end());
          ev->targets.erase(std::unique(ev->targets.begin(), ev->targets.end()),
                            ev->targets.end());
          obs_->registry().add(obs_ids_.encodes);
          obs_->trace().record(std::move(*ev));
        }
        finished();
        if (done) {
          done(*all_ok);
        }
      };
      for (const BlockId p : parities) {
        const std::vector<NodeId> targets =
            placement_->choose_targets(*this, p, 1, enc, rng_);
        if (targets.empty()) {
          *all_ok = false;
          if (--*stage2 == 0) {
            finish_encode();
          }
          continue;
        }
        // Register the parity location up front so the next parity's
        // placement sees it (otherwise every parity would pick the same
        // "emptiest" node while the writes are still in flight).
        const NodeId t = targets.front();
        add_replica(p, t);
        if (ev != nullptr) {
          ev->bytes_moved += parity_size;
          ev->targets.push_back(static_cast<std::int64_t>(t.value()));
        }
        net::NetworkModel::FlowOptions opts;
        opts.src_disk = true;
        opts.dst_disk = true;
        opts.max_rate = config_.background_bandwidth_cap;
        // A dead parity target (or encoder) fails the encode; the
        // provisional replica registration is rolled back by fail_node (if
        // the target died) or here (if the encoder did).
        opts.on_abort = [this, p, t, all_ok, stage2,
                         finish_encode](net::FlowId, std::uint64_t partial) {
          record_flow_abort(p, static_cast<std::int64_t>(t.value()), partial,
                            "encode_failed");
          if (node_has_block(t, p)) {
            remove_replica(p, t);
          }
          *all_ok = false;
          if (--*stage2 == 0) {
            finish_encode();
          }
        };
        network_.start_flow(enc.value(), t.value(), parity_size, opts,
                            [stage2, finish_encode](net::FlowId) {
                              if (--*stage2 == 0) {
                                finish_encode();
                              }
                            });
      }
    };
    for (const BlockId b : data_blocks) {
      const BlockInfo* binfo = namespace_.find_block(b);
      std::optional<NodeId> src;
      for (const NodeId n : locations(b)) {
        if (is_serving(n)) {
          src = n;
          break;
        }
      }
      if (!src || binfo == nullptr) {
        if (--*stage1 == 0) {
          after_reads();
        }
        continue;
      }
      if (ev != nullptr) {
        ev->bytes_moved += binfo->size;
      }
      net::NetworkModel::FlowOptions opts;
      opts.src_disk = true;
      opts.dst_disk = src != enc;
      opts.max_rate = config_.background_bandwidth_cap;
      opts.on_abort = [this, b, enc, stage1, after_reads,
                       enc_failed](net::FlowId, std::uint64_t partial) {
        record_flow_abort(b, static_cast<std::int64_t>(enc.value()), partial,
                          "encode_failed");
        *enc_failed = true;
        if (--*stage1 == 0) {
          after_reads();
        }
      };
      network_.start_flow(src->value(), enc.value(), binfo->size, opts,
                          [stage1, after_reads](net::FlowId) {
                            if (--*stage1 == 0) {
                              after_reads();
                            }
                          });
    }
  });
}

void Cluster::decode_file(FileId file, std::uint32_t replication, DoneCallback done) {
  const FileInfo* info = namespace_.find(file);
  if (info == nullptr || !info->erasure_coded) {
    if (done) {
      sim_.schedule_after(sim::micros(0), [done] { done(false); });
    }
    return;
  }
  emit_audit("decode", info->id, info->path, NodeId{0}, std::nullopt, std::nullopt);
  const FileId fid = file;
  // The replica restore itself is recorded by change_replication as a
  // set_replication event (with bytes and targets); this event marks the
  // decode completing and the parities being dropped.
  change_replication(file, replication, IncreaseMode::kDirect,
                     [this, fid, replication, done](bool ok) {
                       if (ok) {
                         const std::vector<BlockId> parities =
                             namespace_.clear_parity_blocks(fid);
                         for (const BlockId p : parities) {
                           for (const NodeId n : locations(p)) {
                             remove_replica(p, n);
                           }
                         }
                         namespace_.set_erasure_coded(fid, false);
                         namespace_.set_codec(fid, 0, 0);
                       }
                       if (obs_ != nullptr) {
                         obs::TraceEvent ev;
                         ev.kind = obs::ActionKind::kClusterDecode;
                         ev.at = sim_.now();
                         const FileInfo* info = namespace_.find(fid);
                         if (info != nullptr) {
                           ev.path = info->path;
                         }
                         ev.rep_before = 1;
                         ev.rep_after = replication;
                         ev.outcome = ok ? "ok" : "failed";
                         obs_->registry().add(obs_ids_.decodes);
                         obs_->trace().record(std::move(ev));
                       }
                       if (done) {
                         done(ok);
                       }
                     });
}

void Cluster::move_replica(BlockId block, NodeId source, NodeId target, DoneCallback done) {
  if (!node_has_block(source, block) || node_has_block(target, block) ||
      !is_serving(source) || !is_serving(target)) {
    if (done) {
      sim_.schedule_after(sim::micros(0), [done] { done(false); });
    }
    return;
  }
  copy_block(block, source, target, [this, block, source, done](bool ok) {
    if (ok) {
      remove_replica(block, source);
    }
    if (done) {
      done(ok);
    }
  });
}

// ----- stats ----------------------------------------------------------------------

std::uint64_t Cluster::used_bytes_total() const {
  std::uint64_t total = 0;
  for (const DataNode& n : nodes_) {
    total += n.used_bytes;
  }
  return total;
}

std::uint64_t Cluster::capacity_bytes_total() const {
  std::uint64_t total = 0;
  for (const DataNode& n : nodes_) {
    if (n.state != NodeState::kDead) {
      total += n.config.capacity_bytes;
    }
  }
  return total;
}

double Cluster::energy_joules_total() {
  double total = 0.0;
  for (DataNode& n : nodes_) {
    update_energy(n);
    total += n.energy_joules;
  }
  return total;
}

// ----- audit ----------------------------------------------------------------------

std::string Cluster::node_ip(NodeId id) const {
  std::string out;
  format_node_ip(id, out);
  return out;
}

void Cluster::format_node_ip(NodeId id, std::string& out) const {
  const DataNode& n = nodes_[id.value()];
  char digits[24];
  out.clear();
  out += "/10.0.";
  auto r = std::to_chars(digits, digits + sizeof(digits), n.rack.value());
  out.append(digits, r.ptr);
  out += '.';
  r = std::to_chars(digits, digits + sizeof(digits), id.value());
  out.append(digits, r.ptr);
}

void Cluster::set_audit_batch_sink(BatchAuditSink sink, std::size_t flush_events) {
  flush_audit();
  batch_audit_sink_ = std::move(sink);
  audit_flush_events_ = std::max<std::size_t>(1, flush_events);
}

void Cluster::flush_audit() {
  if (audit_buf_used_ == 0) {
    return;
  }
  const std::size_t n = audit_buf_used_;
  audit_buf_used_ = 0;
  if (batch_audit_sink_) {
    batch_audit_sink_(audit_buf_.data(), n);
  }
}

void Cluster::emit_audit(const std::string& cmd, FileId file, std::string_view src,
                         NodeId client, std::optional<BlockId> block,
                         std::optional<NodeId> datanode, bool allowed) {
  if (obs_ != nullptr) {
    obs_->registry().add(obs_ids_.audit_events);
  }
  if (batch_audit_sink_) {
    // Fill a buffered event in place — its strings keep their capacity from
    // previous flushes, so the steady state allocates nothing per record.
    if (audit_buf_used_ == audit_buf_.size()) {
      audit_buf_.emplace_back();
    }
    audit::AuditEvent& event = audit_buf_[audit_buf_used_++];
    event.time = sim_.now();
    event.allowed = allowed;
    format_node_ip(client, event.ip);
    event.cmd.assign(cmd);
    event.src.assign(src);
    event.dst.clear();
    event.fid = static_cast<std::int64_t>(file.value());
    event.block.reset();
    event.datanode.reset();
    if (block) {
      event.block = static_cast<std::int64_t>(block->value());
    }
    if (datanode) {
      event.datanode = static_cast<std::int64_t>(datanode->value());
    }
    if (audit_buf_used_ >= audit_flush_events_) {
      flush_audit();
    }
    return;
  }
  if (!audit_sink_) {
    return;
  }
  audit::AuditEvent event;
  event.time = sim_.now();
  event.allowed = allowed;
  event.ip = node_ip(client);
  event.cmd = cmd;
  event.src = src;
  event.fid = static_cast<std::int64_t>(file.value());
  if (block) {
    event.block = static_cast<std::int64_t>(block->value());
  }
  if (datanode) {
    event.datanode = static_cast<std::int64_t>(datanode->value());
  }
  audit_sink_(event);
}

void Cluster::save_state(snapshot::Writer& w) {
  // Deliver buffered audit records through the installed sink first — the
  // reference (uninterrupted) run performs the same flush at its snapshot
  // barrier, so both runs feed the CEP engine identical prefixes.
  flush_audit();
  assert(network_.active_flows() == 0 && background_idle());

  // Fingerprint of the construction-time shape the restoring driver must
  // reproduce; checked before any state is read.
  w.u64(config_.seed);
  w.u64(config_.block_size);
  w.u64(nodes_.size());

  const sim::Rng::State rng_state = rng_.state();
  for (const std::uint64_t word : rng_state) w.u64(word);

  network_.save_state(w);
  namespace_.save_state(w);

  for (const DataNode& node : nodes_) {
    assert(node.state != NodeState::kCommissioning &&
           node.state != NodeState::kDecommissioning);
    w.u32(node.id.value());
    w.u32(node.rack.value());
    w.u8(static_cast<std::uint8_t>(node.state));
    w.u64(node.used_bytes);
    w.u32(node.active_sessions);
    w.u32(node.background_reads);
    // Unordered sets travel sorted; every live drain of these sets sorts
    // before iterating, so insertion order is unobservable anyway.
    std::vector<BlockId> blocks(node.blocks.begin(), node.blocks.end());
    std::sort(blocks.begin(), blocks.end());
    w.u64(blocks.size());
    for (const BlockId b : blocks) w.u64(b.value());
    std::vector<BlockId> stale(node.stale_blocks.begin(), node.stale_blocks.end());
    std::sort(stale.begin(), stale.end());
    w.u64(stale.size());
    for (const BlockId b : stale) w.u64(b.value());
    w.f64(node.energy_joules);
    w.i64(node.last_energy_update.micros());
  }

  w.u64(block_locations_.size());
  for (const auto& locs : block_locations_) {
    w.u32(static_cast<std::uint32_t>(locs.size()));
    for (const NodeId n : locs) w.u32(n.value());
  }

  w.u64(corrupt_replicas_.size());
  for (const auto& [block, node] : corrupt_replicas_) {
    w.u64(block.value());
    w.u32(node.value());
  }

  w.u64(reads_rejected_);
  w.u64(reads_completed_);
  w.u64(blocks_lost_);
  w.u64(rereplications_completed_);
  w.u64(corruptions_detected_);
  w.u64(recovery_retries_);
  w.u64(recoveries_abandoned_);
  w.u64(nodes_revived_);
}

void Cluster::load_state(snapshot::Reader& r) {
  // The snapshot was taken right after a flush, so anything this world
  // buffered before the restore (e.g. population audit records) belongs to
  // the discarded pre-restore history, not the restored one.
  audit_buf_.clear();
  if (!r.require(r.u64() == config_.seed, "cluster seed")) return;
  if (!r.require(r.u64() == config_.block_size, "cluster block size")) return;
  if (!r.require(r.u64() == nodes_.size(), "cluster node count")) return;

  sim::Rng::State rng_state;
  for (std::uint64_t& word : rng_state) word = r.u64();

  network_.load_state(r);
  namespace_.load_state(r);
  if (!r.ok()) return;

  for (DataNode& node : nodes_) {
    if (!r.require(r.u32() == node.id.value(), "node id")) return;
    if (!r.require(r.u32() == node.rack.value(), "node rack")) return;
    node.state = static_cast<NodeState>(r.u8());
    node.used_bytes = r.u64();
    node.active_sessions = r.u32();
    node.background_reads = r.u32();
    const std::uint64_t nblocks = r.u64();
    if (!r.require(nblocks <= r.remaining() / 8 + 1, "node block count")) return;
    node.blocks.clear();
    for (std::uint64_t i = 0; i < nblocks && r.ok(); ++i) {
      node.blocks.insert(BlockId{r.u64()});
    }
    const std::uint64_t nstale = r.u64();
    if (!r.require(nstale <= r.remaining() / 8 + 1, "stale block count")) return;
    node.stale_blocks.clear();
    for (std::uint64_t i = 0; i < nstale && r.ok(); ++i) {
      node.stale_blocks.insert(BlockId{r.u64()});
    }
    node.energy_joules = r.f64();
    node.last_energy_update = sim::SimTime{r.i64()};
  }

  const std::uint64_t nloc = r.u64();
  if (!r.require(nloc <= r.remaining() / 4 + 1, "block map size")) return;
  block_locations_.clear();
  block_locations_.resize(nloc);
  for (std::uint64_t i = 0; i < nloc && r.ok(); ++i) {
    const std::uint32_t count = r.u32();
    if (!r.require(count <= r.remaining() / 4 + 1, "replica count")) return;
    for (std::uint32_t j = 0; j < count && r.ok(); ++j) {
      block_locations_[i].push_back(NodeId{r.u32()});
    }
  }

  const std::uint64_t ncorrupt = r.u64();
  if (!r.require(ncorrupt <= r.remaining() / 12 + 1, "corrupt replica count")) return;
  corrupt_replicas_.clear();
  for (std::uint64_t i = 0; i < ncorrupt && r.ok(); ++i) {
    const BlockId block{r.u64()};
    const NodeId node{r.u32()};
    corrupt_replicas_.emplace(block, node);
  }

  reads_rejected_ = r.u64();
  reads_completed_ = r.u64();
  blocks_lost_ = r.u64();
  rereplications_completed_ = r.u64();
  corruptions_detected_ = r.u64();
  recovery_retries_ = r.u64();
  recoveries_abandoned_ = r.u64();
  nodes_revived_ = r.u64();
  if (!r.ok()) return;
  rng_.set_state(rng_state);
  codec_cache_.clear();
}

}  // namespace erms::hdfs
