#include "hdfs/path_table.h"

#include <algorithm>
#include <cstring>

namespace erms::hdfs {

namespace {

constexpr std::size_t kMinChunk = 64 * 1024;

// FNV-1a, same mixing the CEP engine uses for group keys.
std::uint64_t hash_bytes(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

PathTable::PathTable(std::size_t shards) {
  shards_.reserve(std::max<std::size_t>(shards, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(shards, 1); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string_view PathTable::Shard::store(std::string_view path) {
  if (chunk_used + path.size() > chunk_size) {
    chunk_size = std::max(kMinChunk, path.size());
    chunks.push_back(std::make_unique<char[]>(chunk_size));
    chunk_used = 0;
  }
  char* dst = chunks.back().get() + chunk_used;
  std::memcpy(dst, path.data(), path.size());
  chunk_used += path.size();
  bytes += path.size();
  return {dst, path.size()};
}

PathTable::Shard& PathTable::shard_for(std::string_view path) const {
  const std::size_t n = shards_.size();
  return *shards_[n == 1 ? 0 : hash_bytes(path) % n];
}

std::optional<std::string_view> PathTable::intern(std::string_view path, FileId id) {
  Shard& s = shard_for(path);
  util::LockGuard lock{s.mu};
  if (s.index.count(path) != 0) return std::nullopt;
  const std::string_view stored = s.store(path);
  s.index.emplace(stored, id);
  return stored;
}

std::optional<FileId> PathTable::find(std::string_view path) const {
  Shard& s = shard_for(path);
  util::LockGuard lock{s.mu};
  const auto it = s.index.find(path);
  if (it == s.index.end()) return std::nullopt;
  return it->second;
}

bool PathTable::erase(std::string_view path) {
  Shard& s = shard_for(path);
  util::LockGuard lock{s.mu};
  return s.index.erase(path) != 0;
}

std::size_t PathTable::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    util::LockGuard lock{s->mu};
    total += s->index.size();
  }
  return total;
}

std::size_t PathTable::arena_bytes() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    util::LockGuard lock{s->mu};
    total += s->bytes;
  }
  return total;
}

void PathTable::reserve(std::size_t paths) {
  const std::size_t per_shard = paths / shards_.size() + 1;
  for (const auto& s : shards_) {
    util::LockGuard lock{s->mu};
    s->index.reserve(per_shard);
  }
}

}  // namespace erms::hdfs
