#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cep/engine.h"
#include "cep/sharded_engine.h"
#include "condor/scheduler.h"
#include "core/erms_placement.h"
#include "core/standby.h"
#include "ec/stripe_codec.h"
#include "hdfs/cluster.h"
#include "judge/feed.h"
#include "judge/judge.h"
#include "judge/predictor.h"
#include "obs/observability.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::core {

/// Tunables of the ERMS control loop.
struct ErmsConfig {
  judge::Thresholds thresholds;
  /// Reed–Solomon parities for cold data (paper §IV.B: "a replication
  /// factor of one and four coding parities").
  std::uint32_t parity_count = 4;
  /// Data shards per stripe for the byte-level codec backing cold
  /// conversions (HDFS-RAID's customary k for RS).
  std::size_t data_shards = 8;
  /// Worker threads for the byte-level erasure codec; 0 means one per
  /// hardware thread. The pool splits large shards into sub-ranges coded
  /// concurrently so a cold-conversion backlog drains at disk speed.
  std::size_t codec_threads = 0;
  /// Erasure code per temperature band, by registry name ("rs",
  /// "azure_lrc", "hh_xor_plus" — see docs/EC_CODECS.md). A file the judge
  /// rules cold encodes with `codec_cooling` while it has been idle for
  /// less than `frozen_age`: recently-cooled data still sees the odd read,
  /// so a repair-cheap code (AzureLRC reads its local group, not k shards)
  /// pays for itself on every degraded read and node failure. Once idle at
  /// least `frozen_age` the file is deep archive and encodes with
  /// `codec_frozen` — plain RS, the highest-rate MDS code, whose whole-k
  /// repair cost almost never comes due. Unknown names fall back to "rs".
  std::string codec_cooling = "azure_lrc";
  std::string codec_frozen = "rs";
  /// Idle-time boundary between the cooling and frozen bands.
  sim::SimDuration frozen_age = sim::hours(72.0);
  /// AzureLRC shape when a band selects "azure_lrc": l local groups and g
  /// global parities over the file's k data blocks (l + g parity blocks
  /// total; the default (2,2) matches the paper's 4-parity budget).
  std::uint32_t lrc_local_groups = 2;
  std::uint32_t lrc_global_parities = 2;
  /// How often the Data Judge evaluates the window and issues actions.
  sim::SimDuration evaluation_period = sim::seconds(30.0);
  /// Upper bound on any file's replication factor.
  std::uint32_t max_replication = 10;
  /// Network flows at or below this count as "cluster idle" for deferred
  /// (kWhenIdle) Condor jobs.
  std::size_t idle_flow_threshold = 2;
  /// Power drained standby nodes down after cooling (set false to keep them
  /// hot for benchmarks that want steady capacity).
  bool manage_standby_power = true;
  /// Derive τ_M (and the proportional thresholds) from the cluster's actual
  /// per-datanode session capacity at start() — "ERMS could dynamically
  /// change these thresholds based on system environments" (§III.C).
  bool auto_calibrate = false;
  /// Promote *rising* files before they cross τ_M, using a Holt
  /// double-exponential forecast of the windowed access count (the paper's
  /// §V future work on predicting data types). Cooling/encoding decisions
  /// always use observed counts.
  bool predictive = false;
  judge::AccessPredictor::Config predictor;
  /// CEP engine shards behind the Data Judge's feed. 1 = the scalar engine;
  /// >1 = a ShardedEngine routing audit events by src hash; 0 = one shard
  /// per hardware thread.
  std::size_t judge_shards = 1;
  /// Events buffered per shard flush when judge_shards != 1.
  std::size_t judge_batch_events = 256;
  /// When nonzero, the manager installs the cluster's *batched* audit sink:
  /// emitted records accumulate in a reused buffer and reach the judge's
  /// feed as spans of this many events (one engine dispatch per span)
  /// instead of one call each. Every evaluation flushes the buffer first,
  /// so windowed reads never miss buffered events. 0 keeps the per-event
  /// sink.
  std::size_t judge_batch_flush_events = 0;
  /// Worker threads for the judge's per-file classify sweep and the node
  /// overload sweep. 1 (default) runs them serially; 0 means one per
  /// hardware thread. Any value produces byte-identical action traces: the
  /// sweeps classify disjoint id ranges in parallel against a frozen view
  /// and apply the merged decisions serially in id order.
  std::size_t sweep_threads = 1;
  /// Attach an Observability bundle (metrics registry + action trace) to the
  /// whole stack: cluster, network, Condor scheduler, standby manager, and
  /// the control loop itself. Off by default — when false no registry exists
  /// and every instrumentation site reduces to one null-pointer test.
  bool observe = false;
  /// Bounded capacity of the action-trace ring when observe is true; the
  /// oldest events are evicted (and counted as dropped) past this.
  std::size_t trace_capacity = 4096;
  /// Failed Condor job attempts are requeued with capped exponential
  /// backoff up to this many times before rollback/terminate fires.
  std::uint32_t job_max_retries = 3;
  /// First retry delay; doubles per attempt up to job_retry_backoff_cap.
  sim::SimDuration job_retry_backoff = sim::seconds(5.0);
  sim::SimDuration job_retry_backoff_cap = sim::minutes(2.0);
  /// Per-attempt execution budget for Condor jobs (0 disables the
  /// watchdog; attempts past it count as failures and follow retry rules).
  sim::SimDuration job_timeout{};
  /// When a datanode dies, commission a standby replacement so serving
  /// capacity recovers (self-healing). Off leaves capacity degraded.
  bool heal_capacity = true;
};

/// Counters describing what ERMS has done so far.
struct ErmsStats {
  std::uint64_t evaluations{0};
  std::uint64_t hot_promotions{0};
  std::uint64_t overload_promotions{0};   // formula (4) firings
  std::uint64_t predictive_promotions{0};  // hot on forecast, not yet on facts
  std::uint64_t cooldowns{0};
  std::uint64_t encodes{0};
  std::uint64_t encodes_cooling{0};  // encode chose the cooling-band codec
  std::uint64_t encodes_frozen{0};   // encode chose the frozen-band codec
  std::uint64_t decodes{0};
  std::uint64_t jobs_failed{0};
};

/// The Elastic Replication Management System: wires the audit stream through
/// the CEP engine into the Data Judge, and turns classifications into Condor
/// jobs that adjust replication, drive erasure coding, and manage standby
/// nodes (paper Fig. 1's architecture).
class ErmsManager {
 public:
  ErmsManager(hdfs::Cluster& cluster, std::vector<hdfs::NodeId> standby_pool,
              ErmsConfig config = {},
              util::Logger& logger = util::Logger::null_logger());
  /// Detaches the manager-owned observability bundle from the (externally
  /// owned) cluster and network before it is destroyed.
  ~ErmsManager();

  /// Install the audit sink + placement policy and start the periodic
  /// evaluation loop.
  void start();
  /// Resume after Cluster/manager state was restored from a snapshot:
  /// installs the same sinks/listeners as start() but does NOT re-advertise
  /// machine ads (the restored ads are as stale as the original run's were)
  /// and schedules the next evaluation at the restored absolute tick time
  /// instead of one period from now. Call after snapshot::restore_world.
  void resume();
  /// Stop evaluating (the placement policy stays installed). When observe is
  /// on and ERMS_TRACE_PATH is set, exports the action trace as JSONL there.
  void stop();

  /// Run one Data Judge evaluation immediately (also called by the loop).
  void evaluate();

  [[nodiscard]] const ErmsStats& stats() const { return stats_; }
  [[nodiscard]] const judge::DataJudge& data_judge() const { return judge_; }
  [[nodiscard]] judge::DataJudge& data_judge() { return judge_; }
  [[nodiscard]] StandbyManager& standby() { return standby_; }
  [[nodiscard]] condor::Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] cep::EngineBase& cep_engine() { return *engine_; }
  [[nodiscard]] judge::AccessStatsFeed& feed() { return feed_; }
  [[nodiscard]] const ErmsConfig& config() const { return config_; }

  /// The byte-level Reed–Solomon codec the erasure actions run cold files
  /// through, pre-wired to the manager's worker pool. Embedders that move
  /// real bytes (archive tools, block servers) should use this instance so
  /// conversions share one pool instead of spawning threads per file.
  [[nodiscard]] ec::StripeCodec& stripe_codec() { return codec_; }
  [[nodiscard]] util::ThreadPool& codec_pool() { return codec_pool_; }

  /// Latest classification for one file (updated each evaluation).
  /// kNormal for files the judge has never evaluated.
  [[nodiscard]] judge::DataType current_type(hdfs::FileId file) const {
    const std::size_t idx = file.value();
    if (idx >= types_.size() || types_[idx] == 0) {
      return judge::DataType::kNormal;
    }
    return static_cast<judge::DataType>(types_[idx] - 1);
  }
  [[nodiscard]] judge::DataType current_type(const std::string& path) const {
    const hdfs::FileInfo* info = cluster_.metadata().find_path(path);
    return info == nullptr ? judge::DataType::kNormal : current_type(info->id);
  }
  /// How many files the judge has classified at least once.
  [[nodiscard]] std::size_t tracked_file_count() const { return tracked_files_; }

  /// The manager-owned observability bundle — nullptr unless
  /// ErmsConfig::observe was true at construction.
  [[nodiscard]] obs::Observability* observability() { return obs_.get(); }

  /// Condor actions currently in flight (snapshot quiescence input).
  [[nodiscard]] std::size_t actions_in_flight() const { return in_flight_count_; }

  /// Snapshot support (src/snapshot/): sweep state (types_/in_flight_/
  /// first_seen_), stats, the next-tick time, and the owned subcomponents —
  /// CEP engine, feed, predictor, scheduler, standby manager, trace ring
  /// and metrics registry. The manager must be constructed with the same
  /// config as the saved one (kStateMismatch otherwise); restore before
  /// resume(), never while running.
  void save_state(snapshot::Writer& w);
  void load_state(snapshot::Reader& r);

 private:
  /// Why a Condor job was submitted — threaded into its trace event.
  struct ActionContext {
    int rule{0};
    double trigger{0.0};
    double threshold{0.0};
    /// Encode jobs only: which code the temperature band selected and why
    /// ("cooling"/"frozen") — attributed on the job's ClassAd and trace.
    ec::CodecSpec spec{ec::CodecKind::kRs, 0, 0, 0};
    const char* band{nullptr};
  };

  /// One file's sweep outcome, recorded during the (possibly parallel)
  /// classify phase and applied serially in id order. Only files with a
  /// visible consequence — a classification flip, an action to submit, or a
  /// predictive promotion to count — get a record.
  struct Decision {
    hdfs::FileId file;
    judge::Classification verdict;
    judge::DataType prev_type{judge::DataType::kNormal};
    std::uint64_t accesses{0};
    bool flip{false};
    bool predictive{false};
    /// Cold verdicts: idle at least ErmsConfig::frozen_age at classify time
    /// (selects the frozen-band codec instead of the cooling one).
    bool frozen{false};
  };
  /// Per-worker scratch for the classify sweep; reused across evaluations.
  struct SweepShard {
    std::vector<Decision> decisions;
    judge::FileObservation fobs;     // reused per file
    judge::FileObservation boosted;  // reused predictive scratch
    std::size_t tracked_delta{0};    // files first classified this sweep
  };
  /// One (file, datanode, reads) group from the window, snapshotted in
  /// group-key order for the overload sweep.
  struct FileNodeAccess {
    hdfs::FileId file;
    std::int64_t node{0};
    std::uint64_t reads{0};
  };

  void schedule_tick();
  void register_executors();
  void advertise_nodes();
  /// Classify every existing file with id in [begin, end), writing only
  /// own-range dense state (types_, first_seen_, predictor slots) and
  /// appending decisions to `shard`. Reads a frozen in_flight view; submits
  /// nothing.
  void classify_range(SweepShard& shard, std::size_t begin, std::size_t end,
                      sim::SimTime now);
  void classify_file(SweepShard& shard, const hdfs::FileInfo& info,
                     std::uint64_t accesses, sim::SimTime now);
  /// Serial phase: stats, trace events, log lines, Condor submissions.
  void apply_decision(const Decision& d);
  void check_node_overload();
  /// Earliest (in group-key order) maximally-read file on `node` per the
  /// scratch_file_nodes_ snapshot, skipping files for which `in_flight`
  /// returns true; FileId{0} when no candidate.
  [[nodiscard]] hdfs::FileId overload_winner(
      std::int64_t node, const std::function<bool(hdfs::FileId)>& in_flight) const;
  void submit_change(hdfs::FileId file, const std::string& cmd, std::uint32_t target,
                     condor::JobClass sched_class, int priority, ActionContext ctx);

  [[nodiscard]] bool action_in_flight(hdfs::FileId file) const {
    const std::size_t idx = file.value();
    return idx < in_flight_.size() && in_flight_[idx] != 0;
  }
  void set_in_flight(hdfs::FileId file);
  void clear_in_flight(hdfs::FileId file);

  hdfs::Cluster& cluster_;
  ErmsConfig config_;
  util::Logger& log_;
  // Declared before the instrumented members (standby_, scheduler_) so the
  // bundle outlives them.
  std::unique_ptr<obs::Observability> obs_;
  util::ThreadPool codec_pool_;
  ec::StripeCodec codec_;
  std::unique_ptr<cep::EngineBase> engine_;  // scalar or sharded per config
  judge::AccessStatsFeed feed_;
  judge::DataJudge judge_;
  std::optional<judge::AccessPredictor> predictor_;
  StandbyManager standby_;
  condor::Scheduler scheduler_;
  std::shared_ptr<ErmsPlacementPolicy> placement_;
  ErmsStats stats_;
  // Hot per-file state is dense, indexed by the interned FileId (slot 0
  // unused): no string keys, no node allocation, flat memory at 5M files.
  std::vector<std::uint8_t> types_;        // 0 = never judged, else DataType+1
  std::vector<std::uint8_t> in_flight_;    // 1 while a Condor action is pending
  std::vector<sim::SimTime> first_seen_;   // valid iff types_[fid] != 0
  std::size_t tracked_files_{0};           // nonzero entries in types_
  std::size_t in_flight_count_{0};         // nonzero entries in in_flight_
  // evaluate() scratch, reused across sweeps so the steady state allocates
  // nothing: windowed open counts per fid, and (fid, reads) pairs per block.
  std::vector<std::uint64_t> scratch_accesses_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> scratch_blocks_;
  std::vector<FileNodeAccess> scratch_file_nodes_;
  std::vector<hdfs::FileId> scratch_winners_;
  std::vector<SweepShard> sweep_shards_;
  std::unique_ptr<util::ThreadPool> sweep_pool_;  // null when sweep_threads == 1
  bool running_{false};
  sim::EventHandle tick_;
  /// Absolute time the pending tick_ fires — serialised so a resumed run
  /// evaluates at exactly the times the uninterrupted run would have.
  sim::SimTime next_tick_time_;

  struct ObsIds {
    obs::CounterId evaluations, classify_flips, hot_promotions, overload_promotions,
        predictive_promotions, cooldowns, encodes, encodes_cooling, encodes_frozen,
        decodes, jobs_failed;
    obs::GaugeId in_flight, tracked_files;
  };
  ObsIds obs_ids_;
};

}  // namespace erms::core
