#pragma once

#include <memory>
#include <set>

#include "hdfs/placement.h"

namespace erms::core {

/// The ERMS replica placement strategy — Algorithm 1 of the paper.
///
/// * Parity ("coding") blocks go to the **active** node holding the fewest
///   blocks of the same file, so losing one node cannot take out both data
///   and the parity that would rebuild it.
/// * Data blocks at replication below the default factor r_D use the stock
///   HDFS rack-aware policy.
/// * Extra replicas of hot data (r ≥ r_D) go to **standby-pool** nodes —
///   preferring racks that already hold a replica of the block (data
///   locality without new rack traffic) — falling back to active nodes only
///   when no standby node can take the block.
/// * Deletions prefer standby-pool nodes, so dropping extra replicas never
///   requires re-balancing ("the data statuses of running nodes are not
///   changing" — §III.B).
///
/// The standby pool is the set of nodes managed by the active/standby model;
/// pool nodes only receive data while commissioned (serving).
class ErmsPlacementPolicy final : public hdfs::PlacementPolicy {
 public:
  explicit ErmsPlacementPolicy(std::set<hdfs::NodeId> standby_pool,
                               std::uint32_t default_replication = 3);

  void set_standby_pool(std::set<hdfs::NodeId> pool) { standby_pool_ = std::move(pool); }
  [[nodiscard]] const std::set<hdfs::NodeId>& standby_pool() const { return standby_pool_; }
  [[nodiscard]] bool in_standby_pool(hdfs::NodeId node) const {
    return standby_pool_.contains(node);
  }

  [[nodiscard]] std::vector<hdfs::NodeId> choose_targets(const hdfs::Cluster& cluster,
                                                         hdfs::BlockId block,
                                                         std::size_t count,
                                                         std::optional<hdfs::NodeId> writer,
                                                         sim::Rng& rng) const override;

  [[nodiscard]] std::optional<hdfs::NodeId> choose_replica_to_remove(
      const hdfs::Cluster& cluster, hdfs::BlockId block, sim::Rng& rng) const override;

  [[nodiscard]] std::string name() const override { return "erms-algorithm1"; }

 private:
  [[nodiscard]] bool eligible(const hdfs::Cluster& cluster, hdfs::BlockId block,
                              hdfs::NodeId node,
                              const std::vector<hdfs::NodeId>& chosen) const;

  std::set<hdfs::NodeId> standby_pool_;
  std::uint32_t default_replication_;
  hdfs::DefaultPlacementPolicy default_policy_;
};

}  // namespace erms::core
