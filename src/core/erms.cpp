#include "core/erms.h"

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_map>

#include "snapshot/codec.h"

namespace erms::core {

namespace {
constexpr int kPriorityUrgent = 10;
constexpr int kPriorityBackground = 0;

/// Executor-side lookup: jobs carry the interned id (authoritative) plus the
/// path string (for operators reading the queue). Returns nullptr when the
/// file vanished between submit and execution.
const hdfs::FileInfo* file_for_ad(const hdfs::Cluster& cluster,
                                  const classad::ClassAd& ad) {
  const auto fid = ad.get_int("Fid");
  if (!fid || *fid <= 0) {
    return nullptr;
  }
  return cluster.metadata().find(
      hdfs::FileId{static_cast<hdfs::FileId::rep_type>(*fid)});
}

obs::ActionKind action_kind_for(const std::string& cmd) {
  if (cmd == "increase_replication") {
    return obs::ActionKind::kReplicaIncrease;
  }
  if (cmd == "decrease_replication") {
    return obs::ActionKind::kReplicaDecrease;
  }
  if (cmd == "encode") {
    return obs::ActionKind::kEncode;
  }
  return obs::ActionKind::kDecode;
}

std::unique_ptr<cep::EngineBase> make_judge_engine(const ErmsConfig& config) {
  if (config.judge_shards == 1) {
    return std::make_unique<cep::Engine>();
  }
  cep::ShardedEngineOptions opts;
  opts.shards = config.judge_shards;
  opts.batch_events = config.judge_batch_events;
  // Route by the interned file id: all four standing queries group by fid
  // (or by dn, which every shard can answer after the merge), so same-file
  // events land on one shard and the merge stays cheap.
  opts.route_by = "fid";
  return std::make_unique<cep::ShardedEngine>(opts);
}
}  // namespace

ErmsManager::ErmsManager(hdfs::Cluster& cluster, std::vector<hdfs::NodeId> standby_pool,
                         ErmsConfig config, util::Logger& logger)
    : cluster_(cluster),
      config_(config),
      log_(logger),
      codec_pool_(config.codec_threads),
      codec_(std::max<std::size_t>(1, config.data_shards),
             std::max<std::uint32_t>(1, config.parity_count)),
      engine_(make_judge_engine(config)),
      feed_(*engine_, config.thresholds.window),
      judge_(config.thresholds),
      standby_(cluster, standby_pool),
      scheduler_(cluster.simulation(),
                 condor::Scheduler::Config{/*max_running=*/8, /*idle_poll=*/sim::seconds(5.0),
                                           config.job_max_retries, config.job_retry_backoff,
                                           config.job_retry_backoff_cap, config.job_timeout},
                 logger),
      placement_(std::make_shared<ErmsPlacementPolicy>(
          std::set<hdfs::NodeId>(standby_pool.begin(), standby_pool.end()),
          cluster.config().default_replication)) {
  codec_.set_thread_pool(&codec_pool_);
  if (config_.observe) {
    obs_ = std::make_unique<obs::Observability>(config_.trace_capacity);
    cluster_.set_observability(obs_.get());
    cluster_.network().set_metrics(&obs_->registry());
    scheduler_.set_metrics(&obs_->registry());
    scheduler_.set_trace(&obs_->trace());
    standby_.set_observability(obs_.get());
    obs::MetricsRegistry& r = obs_->registry();
    obs_ids_.evaluations = r.counter("erms.evaluations");
    obs_ids_.classify_flips = r.counter("erms.classify.flips");
    obs_ids_.hot_promotions = r.counter("erms.promotions.hot");
    obs_ids_.overload_promotions = r.counter("erms.promotions.overload");
    obs_ids_.predictive_promotions = r.counter("erms.promotions.predictive");
    obs_ids_.cooldowns = r.counter("erms.cooldowns");
    obs_ids_.encodes = r.counter("erms.encodes");
    obs_ids_.encodes_cooling = r.counter("erms.encodes.cooling");
    obs_ids_.encodes_frozen = r.counter("erms.encodes.frozen");
    obs_ids_.decodes = r.counter("erms.decodes");
    obs_ids_.jobs_failed = r.counter("erms.jobs.failed");
    obs_ids_.in_flight = r.gauge("erms.actions.in_flight");
    obs_ids_.tracked_files = r.gauge("erms.files.tracked");
  }
  if (config_.predictive) {
    predictor_.emplace(config_.predictor);
  }
  if (config_.sweep_threads != 1) {
    sweep_pool_ = std::make_unique<util::ThreadPool>(config_.sweep_threads);
  }
  sweep_shards_.resize(sweep_pool_ == nullptr ? 1 : sweep_pool_->size());
  register_executors();
  scheduler_.set_idle_probe([this] {
    return cluster_.background_idle() &&
           cluster_.network().active_flows() <= config_.idle_flow_threshold;
  });
}

ErmsManager::~ErmsManager() {
  // The cluster (and its network) outlive this manager; everything they
  // point at — the audit sink feeding the CEP engine, the observability
  // bundle — dies with it, so detach before it does. Detaching the batch
  // sink first flushes any buffered records into the feed while it lives.
  cluster_.set_audit_batch_sink(nullptr, 1);
  cluster_.set_audit_sink(nullptr);
  cluster_.set_failure_listener(nullptr);
  if (obs_ != nullptr) {
    cluster_.set_observability(nullptr);
    cluster_.network().set_metrics(nullptr);
  }
}

void ErmsManager::start() {
  cluster_.set_placement_policy(placement_);
  if (config_.judge_batch_flush_events > 0) {
    cluster_.set_audit_batch_sink(
        [this](const audit::AuditEvent* events, std::size_t n) {
          feed_.on_audit_batch(events, n);
        },
        config_.judge_batch_flush_events);
  } else {
    cluster_.set_audit_sink([this](const audit::AuditEvent& e) { feed_.on_audit(e); });
  }
  cluster_.set_failure_listener([this](hdfs::NodeId n) {
    // The dead datanode's machine ad is stale — drop it so matchmaking and
    // operator queries stop seeing it.
    scheduler_.invalidate("dn" + std::to_string(n.value()));
    if (config_.heal_capacity) {
      // Self-healing: bring a standby node online to replace the lost
      // serving capacity (no-op when the pool is exhausted).
      standby_.ensure_commissioned(standby_.commissioned_count() + 1,
                                   [this] { advertise_nodes(); });
    }
  });
  if (config_.auto_calibrate) {
    // τ_M is "the largest access number one data replica could hold" —
    // bounded by the datanodes' serving-session capacity (what Fig. 8
    // measures empirically on real hardware).
    double sessions = 0.0;
    std::size_t nodes = 0;
    for (const hdfs::NodeId n : cluster_.nodes()) {
      sessions += cluster_.node(n).config.max_sessions;
      ++nodes;
    }
    if (nodes > 0) {
      judge_.calibrate(sessions / static_cast<double>(nodes));
    }
  }
  advertise_nodes();
  if (running_) {
    return;
  }
  running_ = true;
  schedule_tick();
}

void ErmsManager::schedule_tick() {
  next_tick_time_ = cluster_.simulation().now() + config_.evaluation_period;
  tick_ = cluster_.simulation().schedule_at(next_tick_time_, [this] {
    if (!running_) {
      return;
    }
    evaluate();
    schedule_tick();
  });
}

void ErmsManager::resume() {
  // Same wiring as start(), with two deliberate differences: machine ads are
  // NOT re-advertised (the restored ads are exactly as stale as the original
  // run's were at this point), and the next evaluation fires at the restored
  // absolute tick time rather than one period from now.
  cluster_.set_placement_policy(placement_);
  if (config_.judge_batch_flush_events > 0) {
    cluster_.set_audit_batch_sink(
        [this](const audit::AuditEvent* events, std::size_t n) {
          feed_.on_audit_batch(events, n);
        },
        config_.judge_batch_flush_events);
  } else {
    cluster_.set_audit_sink([this](const audit::AuditEvent& e) { feed_.on_audit(e); });
  }
  cluster_.set_failure_listener([this](hdfs::NodeId n) {
    scheduler_.invalidate("dn" + std::to_string(n.value()));
    if (config_.heal_capacity) {
      standby_.ensure_commissioned(standby_.commissioned_count() + 1,
                                   [this] { advertise_nodes(); });
    }
  });
  if (config_.auto_calibrate) {
    // Deterministic recomputation: max_sessions is static node config, so
    // this reproduces the τ_M the original start() derived.
    double sessions = 0.0;
    std::size_t nodes = 0;
    for (const hdfs::NodeId n : cluster_.nodes()) {
      sessions += cluster_.node(n).config.max_sessions;
      ++nodes;
    }
    if (nodes > 0) {
      judge_.calibrate(sessions / static_cast<double>(nodes));
    }
  }
  if (running_) {
    return;
  }
  running_ = true;
  tick_ = cluster_.simulation().schedule_at(next_tick_time_, [this] {
    if (!running_) {
      return;
    }
    evaluate();
    schedule_tick();
  });
}

void ErmsManager::stop() {
  running_ = false;
  tick_.cancel();
  if (obs_ != nullptr) {
    if (const char* path = obs::Observability::env_trace_path()) {
      obs_->export_trace(path);
    }
  }
}

void ErmsManager::advertise_nodes() {
  // Machine ads let operators (and our tests) query the cluster through
  // Condor — "The ClassAds mechanism is used in ERMS to detect when
  // datanodes are commissioned or decommissioned" (§III.A).
  for (const hdfs::NodeId n : cluster_.nodes()) {
    const hdfs::DataNode& dn = cluster_.node(n);
    classad::ClassAd ad;
    ad.insert_int("Node", n.value());
    ad.insert_int("Rack", cluster_.rack_of(n).value());
    ad.insert_string("State", hdfs::to_string(dn.state));
    ad.insert_int("UsedBytes", static_cast<std::int64_t>(dn.used_bytes));
    ad.insert_int("CapacityBytes", static_cast<std::int64_t>(dn.config.capacity_bytes));
    ad.insert_int("Sessions", dn.active_sessions);
    ad.insert_int("MaxSessions", dn.config.max_sessions);
    ad.insert_bool("StandbyPool", standby_.in_pool(n));
    scheduler_.advertise("dn" + std::to_string(n.value()), std::move(ad));
  }
}

void ErmsManager::register_executors() {
  // Replication increase: commission standby capacity, then copy directly to
  // the optimal factor. Rollback restores the previous factor.
  scheduler_.register_command(
      "increase_replication",
      [this](const classad::ClassAd& ad, std::function<void(bool)> done) {
        const auto target = ad.get_int("Target");
        const hdfs::FileInfo* info = file_for_ad(cluster_, ad);
        if (info == nullptr || !target) {
          done(false);
          return;
        }
        const hdfs::FileId file = info->id;
        const auto want =
            static_cast<std::uint32_t>(std::max<std::int64_t>(1, *target));
        const std::uint32_t extra =
            want > info->replication ? want - info->replication : 0;
        standby_.ensure_commissioned(extra, [this, file, want, done] {
          advertise_nodes();
          cluster_.change_replication(file, want, hdfs::Cluster::IncreaseMode::kDirect,
                                      done);
        });
      },
      [this](const classad::ClassAd& ad, std::function<void()> rolled_back) {
        const auto previous = ad.get_int("Previous");
        const hdfs::FileInfo* info = file_for_ad(cluster_, ad);
        if (info == nullptr || !previous) {
          rolled_back();
          return;
        }
        cluster_.change_replication(info->id, static_cast<std::uint32_t>(*previous),
                                    hdfs::Cluster::IncreaseMode::kDirect,
                                    [rolled_back](bool) { rolled_back(); });
      });

  // Replication decrease (cooled data) — deletes prefer standby nodes, then
  // drained nodes are powered down.
  scheduler_.register_command(
      "decrease_replication",
      [this](const classad::ClassAd& ad, std::function<void(bool)> done) {
        const auto target = ad.get_int("Target");
        const hdfs::FileInfo* info = file_for_ad(cluster_, ad);
        if (info == nullptr || !target) {
          done(false);
          return;
        }
        cluster_.change_replication(
            info->id, static_cast<std::uint32_t>(std::max<std::int64_t>(1, *target)),
            hdfs::Cluster::IncreaseMode::kDirect, [this, done](bool ok) {
              if (config_.manage_standby_power) {
                standby_.power_down_drained();
                advertise_nodes();
              }
              done(ok);
            });
      });

  // Erasure-encode cold data. The temperature band's codec choice rides on
  // the job's ClassAd; a job without one (externally submitted) encodes
  // with the paper's RS default.
  scheduler_.register_command(
      "encode", [this](const classad::ClassAd& ad, std::function<void(bool)> done) {
        const hdfs::FileInfo* info = file_for_ad(cluster_, ad);
        if (info == nullptr) {
          done(false);
          return;
        }
        ec::CodecSpec spec{ec::CodecKind::kRs, config_.parity_count, 0, 0};
        if (const auto name = ad.get_string("Codec")) {
          if (const auto kind = ec::codec_kind_from(*name)) {
            spec.kind = *kind;
            if (*kind == ec::CodecKind::kAzureLrc) {
              spec.parities = 0;
              spec.local_groups = static_cast<std::uint32_t>(
                  ad.get_int("LrcLocals").value_or(config_.lrc_local_groups));
              spec.global_parities = static_cast<std::uint32_t>(
                  ad.get_int("LrcGlobals").value_or(config_.lrc_global_parities));
            }
          }
        }
        cluster_.encode_file(info->id, spec, [this, done](bool ok) {
          if (config_.manage_standby_power) {
            standby_.power_down_drained();
          }
          done(ok);
        });
      });

  // Decode re-warmed cold data back to replication.
  scheduler_.register_command(
      "decode", [this](const classad::ClassAd& ad, std::function<void(bool)> done) {
        const auto target = ad.get_int("Target");
        const hdfs::FileInfo* info = file_for_ad(cluster_, ad);
        if (info == nullptr || !target) {
          done(false);
          return;
        }
        cluster_.decode_file(info->id, static_cast<std::uint32_t>(*target), done);
      });
}

void ErmsManager::set_in_flight(hdfs::FileId file) {
  const std::size_t idx = file.value();
  if (in_flight_.size() <= idx) {
    in_flight_.resize(idx + 1, 0);
  }
  if (in_flight_[idx] == 0) {
    in_flight_[idx] = 1;
    ++in_flight_count_;
  }
}

void ErmsManager::clear_in_flight(hdfs::FileId file) {
  const std::size_t idx = file.value();
  if (idx < in_flight_.size() && in_flight_[idx] != 0) {
    in_flight_[idx] = 0;
    --in_flight_count_;
  }
}

void ErmsManager::submit_change(hdfs::FileId file, const std::string& cmd,
                                std::uint32_t target, condor::JobClass sched_class,
                                int priority, ActionContext ctx) {
  const hdfs::FileInfo* info = cluster_.metadata().find(file);
  if (info == nullptr) {
    return;
  }
  classad::ClassAd ad;
  ad.insert_string("Cmd", cmd);
  // The id is what the executors act on; the path rides along so operators
  // querying the Condor queue still see a readable name.
  ad.insert_int("Fid", static_cast<std::int64_t>(file.value()));
  ad.insert_string("File", std::string(info->path));
  ad.insert_int("Target", target);
  ad.insert_int("Previous", info->replication);
  if (ctx.band != nullptr) {
    // Encode jobs carry the band's codec choice so the executor (and anyone
    // reading the Condor queue) sees which code will be written and why.
    ad.insert_string("Codec", std::string(ec::to_string(ctx.spec.kind)));
    ad.insert_string("Band", ctx.band);
    if (ctx.spec.kind == ec::CodecKind::kAzureLrc) {
      ad.insert_int("LrcLocals", ctx.spec.local_groups);
      ad.insert_int("LrcGlobals", ctx.spec.global_parities);
    }
  }
  set_in_flight(file);

  // Snapshot the file's replica footprint so the terminate event can report
  // the node-set delta and the bytes the action actually moved or deleted.
  using Footprint = std::unordered_map<hdfs::BlockId, std::vector<hdfs::NodeId>>;
  std::shared_ptr<Footprint> before;
  const std::uint32_t rep_before = info->replication;
  if (obs_ != nullptr) {
    obs_->registry().set(obs_ids_.in_flight, static_cast<double>(in_flight_count_));
    before = std::make_shared<Footprint>();
    for (const hdfs::BlockId b : info->blocks) {
      (*before)[b] = cluster_.locations(b);
    }
    for (const hdfs::BlockId b : info->parity_blocks) {
      (*before)[b] = cluster_.locations(b);
    }
  }

  std::string path(info->path);
  scheduler_.submit(
      std::move(ad), sched_class, priority,
      [this, file, path = std::move(path), cmd, ctx, rep_before,
       before](const condor::Job& job) {
        clear_in_flight(file);
        if (job.status != condor::JobStatus::kCompleted) {
          ++stats_.jobs_failed;
          if (obs_ != nullptr) {
            obs_->registry().add(obs_ids_.jobs_failed);
          }
        }
        if (obs_ == nullptr) {
          return;
        }
        obs_->registry().set(obs_ids_.in_flight, static_cast<double>(in_flight_count_));

        obs::TraceEvent ev;
        ev.kind = action_kind_for(cmd);
        ev.at = cluster_.simulation().now();
        ev.path = path;
        ev.rule = ctx.rule;
        ev.trigger = ctx.trigger;
        ev.threshold = ctx.threshold;
        ev.rep_before = rep_before;
        ev.job = static_cast<std::int64_t>(job.id.value());
        ev.outcome = condor::to_string(job.status);
        if (ctx.band != nullptr) {
          ev.codec = ec::to_string(ctx.spec.kind);
          ev.band = ctx.band;
        }
        if (job.status != condor::JobStatus::kCancelled) {
          ev.queue_wait = job.started - job.submitted;
          ev.exec_span = job.finished - job.started;
        }
        // Diff the footprint per block: a node is a "gainer" if it received a
        // replica or shard of some block, a "loser" if one was deleted from
        // it — regardless of what other blocks of the file it still holds.
        const hdfs::FileInfo* now_info = cluster_.metadata().find(file);
        if (now_info != nullptr && before != nullptr) {
          ev.rep_after = now_info->replication;
          std::set<std::int64_t> gained;
          std::set<std::int64_t> lost;
          std::set<hdfs::BlockId> all_blocks;
          for (const auto& [blk, nodes] : *before) {
            all_blocks.insert(blk);
          }
          all_blocks.insert(now_info->blocks.begin(), now_info->blocks.end());
          all_blocks.insert(now_info->parity_blocks.begin(),
                            now_info->parity_blocks.end());
          for (const hdfs::BlockId blk : all_blocks) {
            const std::vector<hdfs::NodeId> now_nodes = cluster_.locations(blk);
            const auto before_it = before->find(blk);
            static const std::vector<hdfs::NodeId> kNone;
            const std::vector<hdfs::NodeId>& before_nodes =
                before_it == before->end() ? kNone : before_it->second;
            const hdfs::BlockInfo* binfo = cluster_.metadata().find_block(blk);
            if (binfo != nullptr && now_nodes.size() != before_nodes.size()) {
              const std::size_t delta = now_nodes.size() > before_nodes.size()
                                            ? now_nodes.size() - before_nodes.size()
                                            : before_nodes.size() - now_nodes.size();
              ev.bytes_moved += binfo->size * delta;
            }
            for (const hdfs::NodeId n : now_nodes) {
              if (std::find(before_nodes.begin(), before_nodes.end(), n) ==
                  before_nodes.end()) {
                gained.insert(static_cast<std::int64_t>(n.value()));
              }
            }
            for (const hdfs::NodeId n : before_nodes) {
              if (std::find(now_nodes.begin(), now_nodes.end(), n) == now_nodes.end()) {
                lost.insert(static_cast<std::int64_t>(n.value()));
              }
            }
          }
          const std::set<std::int64_t>& targets = gained.empty() ? lost : gained;
          ev.targets.assign(targets.begin(), targets.end());
        }
        obs_->trace().record(std::move(ev));
      });
}

void ErmsManager::classify_range(SweepShard& shard, std::size_t begin, std::size_t end,
                                 sim::SimTime now) {
  shard.decisions.clear();
  shard.tracked_delta = 0;
  // Merge-walk: scratch_blocks_ is sorted by fid, so position once at the
  // range's first entry and advance monotonically.
  std::size_t bi = static_cast<std::size_t>(
      std::lower_bound(scratch_blocks_.begin(), scratch_blocks_.end(), begin,
                       [](const std::pair<std::uint32_t, std::uint64_t>& a,
                          std::size_t v) { return a.first < v; }) -
      scratch_blocks_.begin());
  for (std::size_t id = begin; id < end; ++id) {
    shard.fobs.block_accesses.clear();
    while (bi < scratch_blocks_.size() && scratch_blocks_[bi].first == id) {
      shard.fobs.block_accesses.push_back(scratch_blocks_[bi].second);
      ++bi;
    }
    const hdfs::FileInfo* info =
        cluster_.metadata().find(hdfs::FileId{static_cast<hdfs::FileId::rep_type>(id)});
    if (info != nullptr) {
      classify_file(shard, *info, scratch_accesses_[id], now);
    }
  }
}

void ErmsManager::classify_file(SweepShard& shard, const hdfs::FileInfo& info,
                                std::uint64_t accesses, sim::SimTime now) {
  const hdfs::FileId file = info.id;
  if (action_in_flight(file)) {
    return;
  }
  const std::size_t idx = file.value();
  if (types_[idx] == 0) {
    first_seen_[idx] = now;
  }

  judge::FileObservation& fobs = shard.fobs;
  fobs.file = file;
  fobs.accesses = accesses;
  fobs.block_count = info.blocks.size();
  fobs.replication = info.replication;
  const sim::SimTime last = feed_.last_access(file);
  fobs.last_access = std::max(last, first_seen_[idx]);

  const std::uint32_t default_rep = cluster_.config().default_replication;
  judge::Classification verdict =
      judge_.classify(fobs, now, default_rep, config_.max_replication);

  // Predictive upgrade (opt-in): a rising file may be promoted — or
  // promoted *further* — on the forecast before the observed counts get
  // there. Only the hot verdict (and its optimal factor) may come from a
  // forecast; cooling and encoding always wait for real counts.
  bool predictive = false;
  if (predictor_) {
    predictor_->observe(file, static_cast<double>(fobs.accesses));
    const double predicted = predictor_->predict(file);
    if (predicted > static_cast<double>(fobs.accesses)) {
      // Scale the whole observation by the forecast ratio so the
      // block-level rules (2) and (3) see the rise too.
      const double ratio = predicted / std::max(1.0, static_cast<double>(fobs.accesses));
      judge::FileObservation& boosted = shard.boosted;
      boosted.file = fobs.file;
      boosted.block_count = fobs.block_count;
      boosted.replication = fobs.replication;
      boosted.last_access = fobs.last_access;
      boosted.accesses = static_cast<std::uint64_t>(predicted);
      boosted.block_accesses.assign(fobs.block_accesses.begin(),
                                    fobs.block_accesses.end());
      for (std::uint64_t& nb : boosted.block_accesses) {
        nb = static_cast<std::uint64_t>(static_cast<double>(nb) * ratio);
      }
      const judge::Classification forecast =
          judge_.classify(boosted, now, default_rep, config_.max_replication);
      const bool upgrades =
          forecast.type == judge::DataType::kHot &&
          (verdict.type != judge::DataType::kHot ||
           forecast.optimal_replication > verdict.optimal_replication);
      if (upgrades) {
        predictive = forecast.optimal_replication > info.replication;
        verdict = forecast;
      }
    }
  }
  const bool first_verdict = types_[idx] == 0;
  const judge::DataType prev_type =
      first_verdict ? judge::DataType::kNormal
                    : static_cast<judge::DataType>(types_[idx] - 1);
  types_[idx] = static_cast<std::uint8_t>(verdict.type) + 1;
  if (first_verdict) {
    ++shard.tracked_delta;
  }

  // Record a decision only when the apply phase has something to do: a flip
  // to trace, an action to submit, or a predictive promotion to count. In
  // steady state (stable classifications, no actions) nothing is recorded.
  const bool flip = prev_type != verdict.type;
  bool acts = false;
  switch (verdict.type) {
    case judge::DataType::kHot:
      acts = info.erasure_coded || verdict.optimal_replication > info.replication;
      break;
    case judge::DataType::kCooled:
      acts = info.replication > default_rep;
      break;
    case judge::DataType::kCold:
      acts = !info.erasure_coded;
      break;
    case judge::DataType::kNormal:
      break;
  }
  if (flip || acts || predictive) {
    // Temperature band for cold files: idle past frozen_age is deep archive
    // (frozen-band codec); anything fresher is merely cooling.
    const bool frozen = verdict.type == judge::DataType::kCold &&
                        now - fobs.last_access >= config_.frozen_age;
    shard.decisions.push_back(
        Decision{file, verdict, prev_type, accesses, flip, predictive, frozen});
  }
}

void ErmsManager::apply_decision(const Decision& d) {
  const hdfs::FileInfo* info = cluster_.metadata().find(d.file);
  if (info == nullptr) {
    return;
  }
  const judge::Classification& verdict = d.verdict;
  if (d.predictive) {
    ++stats_.predictive_promotions;
    if (obs_ != nullptr) {
      obs_->registry().add(obs_ids_.predictive_promotions);
    }
  }
  if (obs_ != nullptr && d.flip) {
    // A classification flip is the decision record behind every elastic
    // action — trace it with the rule that fired and the value it compared.
    obs_->registry().add(obs_ids_.classify_flips);
    obs::TraceEvent ev;
    ev.kind = obs::ActionKind::kClassify;
    ev.at = cluster_.simulation().now();
    ev.path = info->path;
    ev.rule = verdict.rule;
    ev.trigger = verdict.trigger;
    ev.threshold = verdict.threshold;
    ev.from = judge::to_string(d.prev_type);
    ev.to = judge::to_string(verdict.type);
    ev.rep_before = info->replication;
    ev.count = d.accesses;
    obs_->trace().record(std::move(ev));
  }

  const std::uint32_t default_rep = cluster_.config().default_replication;
  const hdfs::FileId file = d.file;
  const ActionContext ctx{verdict.rule, verdict.trigger, verdict.threshold};
  switch (verdict.type) {
    case judge::DataType::kHot: {
      if (info->erasure_coded) {
        // Re-warmed cold data: decode first (urgent, like increases).
        ++stats_.decodes;
        if (obs_ != nullptr) {
          obs_->registry().add(obs_ids_.decodes);
        }
        submit_change(file, "decode", std::max(default_rep, verdict.optimal_replication),
                      condor::JobClass::kImmediate, kPriorityUrgent, ctx);
        break;
      }
      if (verdict.optimal_replication > info->replication) {
        ++stats_.hot_promotions;
        if (obs_ != nullptr) {
          obs_->registry().add(obs_ids_.hot_promotions);
        }
        if (log_.enabled(util::LogLevel::kInfo)) {
          log_.log(util::LogLevel::kInfo, "erms",
                   std::string(info->path) + " hot (rule " +
                       std::to_string(verdict.rule) + "), rep " +
                       std::to_string(info->replication) + " -> " +
                       std::to_string(verdict.optimal_replication));
        }
        submit_change(file, "increase_replication", verdict.optimal_replication,
                      condor::JobClass::kImmediate, kPriorityUrgent, ctx);
      }
      break;
    }
    case judge::DataType::kCooled: {
      if (info->replication > default_rep) {
        ++stats_.cooldowns;
        if (obs_ != nullptr) {
          obs_->registry().add(obs_ids_.cooldowns);
        }
        submit_change(file, "decrease_replication", default_rep,
                      condor::JobClass::kWhenIdle, kPriorityBackground, ctx);
      }
      break;
    }
    case judge::DataType::kCold: {
      if (!info->erasure_coded) {
        ++stats_.encodes;
        if (d.frozen) {
          ++stats_.encodes_frozen;
        } else {
          ++stats_.encodes_cooling;
        }
        if (obs_ != nullptr) {
          obs_->registry().add(obs_ids_.encodes);
          obs_->registry().add(d.frozen ? obs_ids_.encodes_frozen
                                        : obs_ids_.encodes_cooling);
        }
        // Band → code: cooling keeps repairs cheap, frozen maximises rate
        // and tolerance (docs/EC_CODECS.md has the mapping and overrides).
        ActionContext ectx = ctx;
        ectx.band = d.frozen ? "frozen" : "cooling";
        const std::string& codec_name =
            d.frozen ? config_.codec_frozen : config_.codec_cooling;
        ectx.spec = ec::CodecSpec{ec::CodecKind::kRs, config_.parity_count, 0, 0};
        if (const auto kind = ec::codec_kind_from(codec_name)) {
          ectx.spec.kind = *kind;
        }
        if (ectx.spec.kind == ec::CodecKind::kAzureLrc) {
          ectx.spec.parities = 0;
          ectx.spec.local_groups = config_.lrc_local_groups;
          ectx.spec.global_parities = config_.lrc_global_parities;
        }
        if (log_.enabled(util::LogLevel::kInfo)) {
          log_.log(util::LogLevel::kInfo, "erms",
                   std::string(info->path) + " cold (" + ectx.band + " band), encoding " +
                       std::string(ec::to_string(ectx.spec.kind)));
        }
        submit_change(file, "encode", 1, condor::JobClass::kWhenIdle, kPriorityBackground,
                      ectx);
      }
      break;
    }
    case judge::DataType::kNormal:
      break;
  }
}

hdfs::FileId ErmsManager::overload_winner(
    std::int64_t node, const std::function<bool(hdfs::FileId)>& in_flight) const {
  hdfs::FileId worst_file{0};
  std::uint64_t worst = 0;
  for (const FileNodeAccess& a : scratch_file_nodes_) {
    if (a.node == node && a.reads > worst && !in_flight(a.file)) {
      worst = a.reads;
      worst_file = a.file;
    }
  }
  return worst_file;
}

void ErmsManager::check_node_overload() {
  // Formula (4): Σ_i N_bi·r_bi > τ_DN on a node → raise the replication of
  // the file contributing the most accesses to that node. The candidate walk
  // is in group-key order, so the winner (first strictly greater) is
  // deterministic for any shard count.
  std::vector<std::pair<std::int64_t, std::uint64_t>> overloaded;
  feed_.for_each_node_access([&](std::int64_t dn, std::uint64_t count) {
    if (judge_.node_overloaded(static_cast<double>(count))) {
      overloaded.emplace_back(dn, count);
    }
  });
  if (overloaded.empty()) {
    return;
  }

  // One key-ordered snapshot of the (file, datanode, reads) relation covers
  // every overloaded node, instead of re-walking the engine's group state
  // per node. Winners are computed against a frozen in_flight view — in
  // parallel when a sweep pool exists — then applied serially in node
  // order. A frozen winner can only be invalidated by an *earlier* node's
  // submission in this same loop; re-checking it live (and rescanning
  // serially on a hit) restores exactly the serial walk's answer, because
  // dropping a non-winner candidate never changes the earliest maximum.
  scratch_file_nodes_.clear();
  feed_.for_each_file_node_access(
      [&](hdfs::FileId fid, std::int64_t dn, std::uint64_t n) {
        scratch_file_nodes_.push_back(FileNodeAccess{fid, dn, n});
      });
  // in_flight_ is mutated only by the apply loop below, so during the scan
  // phase this predicate reads the frozen pre-sweep view; called again from
  // the apply loop it reads the live one.
  const auto in_flight_now = [this](hdfs::FileId fid) { return action_in_flight(fid); };
  scratch_winners_.assign(overloaded.size(), hdfs::FileId{0});
  if (sweep_pool_ != nullptr && overloaded.size() > 1) {
    sweep_pool_->parallel_for(overloaded.size(), [&](std::size_t k) {
      scratch_winners_[k] = overload_winner(overloaded[k].first, in_flight_now);
    });
  } else {
    for (std::size_t k = 0; k < overloaded.size(); ++k) {
      scratch_winners_[k] = overload_winner(overloaded[k].first, in_flight_now);
    }
  }

  for (std::size_t k = 0; k < overloaded.size(); ++k) {
    const auto& [dn, count] = overloaded[k];
    hdfs::FileId worst_file = scratch_winners_[k];
    if (worst_file.value() != 0 && action_in_flight(worst_file)) {
      worst_file = overload_winner(dn, in_flight_now);
    }
    if (worst_file.value() == 0) {
      continue;
    }
    const hdfs::FileInfo* info = cluster_.metadata().find(worst_file);
    if (info == nullptr || info->erasure_coded ||
        info->replication >= config_.max_replication) {
      continue;
    }
    ++stats_.overload_promotions;
    if (obs_ != nullptr) {
      obs_->registry().add(obs_ids_.overload_promotions);
      obs::TraceEvent ev;
      ev.kind = obs::ActionKind::kOverload;
      ev.at = cluster_.simulation().now();
      ev.path = info->path;
      ev.node = static_cast<std::int64_t>(dn);
      ev.rule = 4;
      ev.trigger = static_cast<double>(count);
      ev.threshold = judge_.thresholds().tau_DN;
      ev.rep_before = info->replication;
      obs_->trace().record(std::move(ev));
    }
    submit_change(worst_file, "increase_replication", info->replication + 1,
                  condor::JobClass::kImmediate, kPriorityUrgent,
                  ActionContext{4, static_cast<double>(count), judge_.thresholds().tau_DN});
  }
}

void ErmsManager::evaluate() {
  ++stats_.evaluations;
  cluster_.flush_audit();  // deliver any batched audit records to the feed
  const sim::SimTime now = cluster_.simulation().now();
  feed_.advance_to(now);

  // One pass over the engine's group state up front — O(active groups) —
  // instead of two group-row probes per file per sweep (which made each
  // evaluation quadratic-ish in file count against the window state). The
  // gathers scatter into dense fid-indexed scratch, so visit order doesn't
  // matter and the unordered walk skips the per-visit key sort.
  const std::size_t bound = cluster_.metadata().file_id_bound();
  scratch_accesses_.assign(bound, 0);
  feed_.for_each_file_access(
      [&](hdfs::FileId fid, std::uint64_t n) {
        if (fid.value() < bound) {
          scratch_accesses_[fid.value()] = n;
        }
      },
      cep::GroupOrder::kUnordered);
  scratch_blocks_.clear();
  feed_.for_each_block_access(
      [&](hdfs::FileId fid, std::int64_t /*blk*/, std::uint64_t n) {
        if (fid.value() < bound) {
          scratch_blocks_.emplace_back(fid.value(), n);
        }
      },
      cep::GroupOrder::kUnordered);
  // Sort by fid for the classify sweep's merge walk. A file's per-block
  // order is visitation order, which only feeds the judge's order-
  // insensitive block rules (max and intense-block fraction).
  std::stable_sort(scratch_blocks_.begin(), scratch_blocks_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  // Classify phase: disjoint id ranges, each writing only own-range dense
  // state and its shard's decision list, against a frozen in_flight view.
  // Apply phase: decisions merged in id order, run serially — so stats,
  // trace events and submissions are byte-identical whatever the thread
  // count (a submission only flips the submitting file's own in_flight bit,
  // and each file is classified exactly once per sweep).
  if (types_.size() < bound) {
    types_.resize(bound, 0);
    first_seen_.resize(bound);
  }
  if (predictor_) {
    predictor_->reserve(bound);
  }
  const std::size_t shards = sweep_shards_.size();
  if (sweep_pool_ != nullptr && shards > 1 && bound > 2) {
    const std::size_t ids = bound - 1;  // ids 1..bound-1; slot 0 unused
    const std::size_t chunk = (ids + shards - 1) / shards;
    sweep_pool_->parallel_for(shards, [&](std::size_t s) {
      const std::size_t begin = 1 + s * chunk;
      const std::size_t end = std::min(bound, begin + chunk);
      if (begin < end) {
        classify_range(sweep_shards_[s], begin, end, now);
      } else {
        sweep_shards_[s].decisions.clear();
        sweep_shards_[s].tracked_delta = 0;
      }
    });
  } else if (bound > 1) {
    classify_range(sweep_shards_[0], 1, bound, now);
    for (std::size_t s = 1; s < shards; ++s) {
      sweep_shards_[s].decisions.clear();
      sweep_shards_[s].tracked_delta = 0;
    }
  } else {
    for (SweepShard& shard : sweep_shards_) {
      shard.decisions.clear();
      shard.tracked_delta = 0;
    }
  }
  for (SweepShard& shard : sweep_shards_) {
    tracked_files_ += shard.tracked_delta;
    for (const Decision& d : shard.decisions) {
      apply_decision(d);
    }
  }
  check_node_overload();
  advertise_nodes();
  if (obs_ != nullptr) {
    obs_->registry().add(obs_ids_.evaluations);
    obs_->registry().set(obs_ids_.tracked_files, static_cast<double>(tracked_files_));
  }
}

namespace {

void save_trace_event(snapshot::Writer& w, const obs::TraceEvent& e) {
  w.u64(e.seq);
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.i64(e.at.micros());
  w.str(e.path);
  w.i64(e.node);
  w.i64(e.block);
  w.i64(e.rule);
  w.f64(e.trigger);
  w.f64(e.threshold);
  w.str(e.from);
  w.str(e.to);
  w.i64(e.rep_before);
  w.i64(e.rep_after);
  w.u64(e.bytes_moved);
  w.u64(e.count);
  w.i64(e.queue_wait.micros());
  w.i64(e.exec_span.micros());
  w.i64(e.job);
  w.str(e.outcome);
  w.u64(e.targets.size());
  for (const std::int64_t t : e.targets) w.i64(t);
  w.str(e.codec);
  w.str(e.band);
  w.u64(e.bytes_read);
}

obs::TraceEvent load_trace_event(snapshot::Reader& r) {
  obs::TraceEvent e;
  e.seq = r.u64();
  e.kind = static_cast<obs::ActionKind>(r.u8());
  e.at = sim::SimTime{r.i64()};
  e.path = r.str();
  e.node = r.i64();
  e.block = r.i64();
  e.rule = static_cast<int>(r.i64());
  e.trigger = r.f64();
  e.threshold = r.f64();
  e.from = r.str();
  e.to = r.str();
  e.rep_before = r.i64();
  e.rep_after = r.i64();
  e.bytes_moved = r.u64();
  e.count = r.u64();
  e.queue_wait = sim::SimDuration{r.i64()};
  e.exec_span = sim::SimDuration{r.i64()};
  e.job = r.i64();
  e.outcome = r.str();
  const std::uint64_t ntargets = r.u64();
  if (!r.require(ntargets <= r.remaining() / 8 + 1, "trace target count")) return e;
  e.targets.reserve(ntargets);
  for (std::uint64_t i = 0; i < ntargets && r.ok(); ++i) e.targets.push_back(r.i64());
  e.codec = r.str();
  e.band = r.str();
  e.bytes_read = r.u64();
  return e;
}

}  // namespace

void ErmsManager::save_state(snapshot::Writer& w) {
  engine_->save_state(w);
  feed_.save_state(w);
  w.u8(predictor_.has_value() ? 1 : 0);
  if (predictor_) {
    predictor_->save_state(w);
  }
  scheduler_.save_state(w);
  standby_.save_state(w);

  w.u64(stats_.evaluations);
  w.u64(stats_.hot_promotions);
  w.u64(stats_.overload_promotions);
  w.u64(stats_.predictive_promotions);
  w.u64(stats_.cooldowns);
  w.u64(stats_.encodes);
  w.u64(stats_.encodes_cooling);
  w.u64(stats_.encodes_frozen);
  w.u64(stats_.decodes);
  w.u64(stats_.jobs_failed);

  w.u64(types_.size());
  for (const std::uint8_t t : types_) w.u8(t);
  w.u64(in_flight_.size());
  for (const std::uint8_t f : in_flight_) w.u8(f);
  w.u64(first_seen_.size());
  for (const sim::SimTime t : first_seen_) w.i64(t.micros());
  w.u64(tracked_files_);
  w.u64(in_flight_count_);
  w.i64(next_tick_time_.micros());

  w.u8(obs_ != nullptr ? 1 : 0);
  if (obs_ != nullptr) {
    const std::vector<obs::TraceEvent> events = obs_->trace().snapshot();
    w.u64(events.size());
    for (const obs::TraceEvent& e : events) save_trace_event(w, e);
    w.u64(obs_->trace().recorded() + 1);  // next_seq

    const obs::MetricsRegistry::Snapshot metrics = obs_->registry().snapshot();
    w.u64(metrics.counters.size());
    for (const auto& [name, value] : metrics.counters) {
      w.str(name);
      w.u64(value);
    }
    w.u64(metrics.gauges.size());
    for (const auto& [name, value] : metrics.gauges) {
      w.str(name);
      w.f64(value);
    }
    w.u64(metrics.histograms.size());
    for (const auto& h : metrics.histograms) {
      w.str(h.name);
      w.f64(h.histogram.lo());
      w.f64(h.histogram.hi());
      w.u64(h.histogram.bucket_count());
      for (std::size_t i = 0; i < h.histogram.bucket_count(); ++i) {
        w.u64(h.histogram.bucket(i));
      }
      w.u64(h.histogram.underflow());
      w.u64(h.histogram.overflow());
      w.f64(h.sum);
    }
  }
}

void ErmsManager::load_state(snapshot::Reader& r) {
  engine_->load_state(r);
  feed_.load_state(r);
  const bool had_predictor = r.u8() != 0;
  if (!r.require(had_predictor == predictor_.has_value(), "predictor config")) return;
  if (predictor_) {
    predictor_->load_state(r);
  }
  scheduler_.load_state(r);
  standby_.load_state(r);
  if (!r.ok()) return;

  stats_.evaluations = r.u64();
  stats_.hot_promotions = r.u64();
  stats_.overload_promotions = r.u64();
  stats_.predictive_promotions = r.u64();
  stats_.cooldowns = r.u64();
  stats_.encodes = r.u64();
  stats_.encodes_cooling = r.u64();
  stats_.encodes_frozen = r.u64();
  stats_.decodes = r.u64();
  stats_.jobs_failed = r.u64();

  const std::uint64_t ntypes = r.u64();
  if (!r.require(ntypes <= r.remaining() + 1, "types table size")) return;
  types_.resize(ntypes);
  for (auto& t : types_) t = r.u8();
  const std::uint64_t nflight = r.u64();
  if (!r.require(nflight <= r.remaining() + 1, "in-flight table size")) return;
  in_flight_.resize(nflight);
  for (auto& f : in_flight_) f = r.u8();
  const std::uint64_t nseen = r.u64();
  if (!r.require(nseen <= r.remaining() / 8 + 1, "first-seen table size")) return;
  first_seen_.resize(nseen);
  for (auto& t : first_seen_) t = sim::SimTime{r.i64()};
  tracked_files_ = r.u64();
  in_flight_count_ = r.u64();
  next_tick_time_ = sim::SimTime{r.i64()};

  const bool had_obs = r.u8() != 0;
  if (!r.require(had_obs == (obs_ != nullptr), "observability config")) return;
  if (obs_ != nullptr) {
    const std::uint64_t nevents = r.u64();
    if (!r.require(nevents <= r.remaining(), "trace event count")) return;
    std::vector<obs::TraceEvent> events;
    events.reserve(nevents);
    for (std::uint64_t i = 0; i < nevents && r.ok(); ++i) {
      events.push_back(load_trace_event(r));
    }
    const std::uint64_t next_seq = r.u64();
    if (!r.ok()) return;
    obs_->trace().restore(std::move(events), next_seq);

    obs::MetricsRegistry& reg = obs_->registry();
    const std::uint64_t ncounters = r.u64();
    if (!r.require(ncounters <= r.remaining(), "counter count")) return;
    for (std::uint64_t i = 0; i < ncounters && r.ok(); ++i) {
      const std::string name = r.str();
      const std::uint64_t value = r.u64();
      const obs::CounterId id = reg.counter(name);
      // Counters are monotonic adders with no absolute store, so bridge from
      // whatever this world counted before the restore (population noise on
      // a fresh world) up to the saved value.
      const std::uint64_t current = reg.counter_value(id);
      if (!r.require(current <= value, "counter " + name + " exceeds snapshot")) return;
      reg.add(id, value - current);
    }
    const std::uint64_t ngauges = r.u64();
    if (!r.require(ngauges <= r.remaining(), "gauge count")) return;
    for (std::uint64_t i = 0; i < ngauges && r.ok(); ++i) {
      const std::string name = r.str();
      const double value = r.f64();
      reg.set(reg.gauge(name), value);
    }
    const std::uint64_t nhists = r.u64();
    if (!r.require(nhists <= r.remaining(), "histogram count")) return;
    for (std::uint64_t i = 0; i < nhists && r.ok(); ++i) {
      const std::string name = r.str();
      const double lo = r.f64();
      const double hi = r.f64();
      const std::uint64_t buckets = r.u64();
      if (!r.require(buckets <= r.remaining() / 8 + 1, "histogram bucket count")) return;
      std::vector<std::uint64_t> counts;
      counts.reserve(buckets + 2);
      for (std::uint64_t j = 0; j < buckets && r.ok(); ++j) counts.push_back(r.u64());
      counts.push_back(r.u64());  // underflow
      counts.push_back(r.u64());  // overflow
      const double sum = r.f64();
      if (!r.ok()) return;
      reg.restore_histogram(name, lo, hi, counts, sum);
    }
  }
}

}  // namespace erms::core
