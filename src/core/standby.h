#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "hdfs/cluster.h"
#include "obs/metrics_registry.h"

namespace erms::obs {
class Observability;
}

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::core {

/// Manages the standby half of the active/standby storage model (§III.B):
/// powers standby nodes up when hot data needs extra replica capacity, and
/// powers drained nodes back down "for energy saving" once their extra
/// replicas are deleted.
class StandbyManager {
 public:
  StandbyManager(hdfs::Cluster& cluster, std::vector<hdfs::NodeId> standby_pool);

  [[nodiscard]] const std::set<hdfs::NodeId>& pool() const { return pool_; }
  [[nodiscard]] bool in_pool(hdfs::NodeId node) const { return pool_.contains(node); }

  /// Pool nodes currently serving (commissioned and active).
  [[nodiscard]] std::size_t commissioned_count() const;
  /// Pool nodes powered down.
  [[nodiscard]] std::size_t standby_count() const;

  /// Commission pool nodes until at least `want` are serving (bounded by
  /// pool size). `ready` fires once that many are up — immediately if they
  /// already are.
  void ensure_commissioned(std::size_t want, std::function<void()> ready = nullptr);

  /// Power down every drained (block-free, active) pool node. Returns how
  /// many nodes were powered down.
  std::size_t power_down_drained();

  [[nodiscard]] std::uint64_t commissions() const { return commissions_; }
  [[nodiscard]] std::uint64_t power_downs() const { return power_downs_; }

  /// Attach (nullptr detaches) an observability bundle: commission /
  /// power-down counters and a commissioned-count gauge in the registry,
  /// plus one TraceEvent per node powered up or down.
  void set_observability(obs::Observability* obs);

  /// Snapshot support (src/snapshot/): counters, plus a pool check (the
  /// pool itself comes from the constructor and must match).
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  hdfs::Cluster& cluster_;
  std::set<hdfs::NodeId> pool_;
  std::uint64_t commissions_{0};
  std::uint64_t power_downs_{0};

  struct ObsIds {
    obs::CounterId commissions, power_downs;
    obs::GaugeId commissioned;
  };
  obs::Observability* obs_{nullptr};
  ObsIds obs_ids_;
};

}  // namespace erms::core
