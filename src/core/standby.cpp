#include "core/standby.h"

#include <map>
#include <memory>

#include "obs/observability.h"
#include "snapshot/codec.h"

namespace erms::core {

StandbyManager::StandbyManager(hdfs::Cluster& cluster, std::vector<hdfs::NodeId> standby_pool)
    : cluster_(cluster), pool_(standby_pool.begin(), standby_pool.end()) {
  // Pool nodes start powered down.
  for (const hdfs::NodeId n : pool_) {
    if (cluster_.node(n).state == hdfs::NodeState::kActive &&
        cluster_.node(n).blocks.empty()) {
      cluster_.set_standby(n);
    }
  }
}

std::size_t StandbyManager::commissioned_count() const {
  std::size_t n = 0;
  for (const hdfs::NodeId id : pool_) {
    const hdfs::NodeState s = cluster_.node(id).state;
    n += (s == hdfs::NodeState::kActive) ? 1 : 0;
  }
  return n;
}

std::size_t StandbyManager::standby_count() const {
  std::size_t n = 0;
  for (const hdfs::NodeId id : pool_) {
    n += (cluster_.node(id).state == hdfs::NodeState::kStandby) ? 1 : 0;
  }
  return n;
}

void StandbyManager::ensure_commissioned(std::size_t want, std::function<void()> ready) {
  std::size_t serving_or_booting = 0;
  std::map<std::uint32_t, std::vector<hdfs::NodeId>> by_rack;
  std::size_t candidate_count = 0;
  for (const hdfs::NodeId id : pool_) {
    const hdfs::NodeState s = cluster_.node(id).state;
    if (s == hdfs::NodeState::kActive || s == hdfs::NodeState::kCommissioning) {
      ++serving_or_booting;
    } else if (s == hdfs::NodeState::kStandby) {
      by_rack[cluster_.rack_of(id).value()].push_back(id);
      ++candidate_count;
    }
  }
  // Interleave racks so commissioned standby capacity is rack-balanced (the
  // model keeps both node classes "distributed in different racks", §III.B).
  std::vector<hdfs::NodeId> candidates;
  candidates.reserve(candidate_count);
  for (std::size_t i = 0; candidates.size() < candidate_count; ++i) {
    for (auto& [rack, nodes] : by_rack) {
      if (i < nodes.size()) {
        candidates.push_back(nodes[i]);
      }
    }
  }
  std::size_t to_start = want > serving_or_booting ? want - serving_or_booting : 0;
  to_start = std::min(to_start, candidates.size());

  if (to_start == 0) {
    if (ready) {
      if (serving_or_booting >= want || candidates.empty()) {
        // Either satisfied already, or the pool simply cannot grow further.
        cluster_.simulation().schedule_after(sim::micros(0), std::move(ready));
      }
    }
    return;
  }

  auto remaining = std::make_shared<std::size_t>(to_start);
  for (std::size_t i = 0; i < to_start; ++i) {
    ++commissions_;
    if (obs_ != nullptr) {
      obs_->registry().add(obs_ids_.commissions);
      obs::TraceEvent ev;
      ev.kind = obs::ActionKind::kCommission;
      ev.at = cluster_.simulation().now();
      ev.node = static_cast<std::int64_t>(candidates[i].value());
      obs_->trace().record(std::move(ev));
    }
    cluster_.commission(candidates[i], [this, remaining, ready] {
      if (obs_ != nullptr) {
        obs_->registry().set(obs_ids_.commissioned,
                             static_cast<double>(commissioned_count()));
      }
      if (--*remaining == 0 && ready) {
        ready();
      }
    });
  }
}

std::size_t StandbyManager::power_down_drained() {
  std::size_t count = 0;
  for (const hdfs::NodeId id : pool_) {
    const hdfs::DataNode& node = cluster_.node(id);
    if (node.state == hdfs::NodeState::kActive && node.blocks.empty() &&
        node.active_sessions == 0) {
      if (cluster_.return_to_standby(id)) {
        ++power_downs_;
        ++count;
        if (obs_ != nullptr) {
          obs_->registry().add(obs_ids_.power_downs);
          obs::TraceEvent ev;
          ev.kind = obs::ActionKind::kPowerDown;
          ev.at = cluster_.simulation().now();
          ev.node = static_cast<std::int64_t>(id.value());
          obs_->trace().record(std::move(ev));
        }
      }
    }
  }
  if (obs_ != nullptr && count > 0) {
    obs_->registry().set(obs_ids_.commissioned, static_cast<double>(commissioned_count()));
  }
  return count;
}

void StandbyManager::save_state(snapshot::Writer& w) const {
  w.u64(pool_.size());
  for (const hdfs::NodeId id : pool_) {
    w.u32(id.value());
  }
  w.u64(commissions_);
  w.u64(power_downs_);
}

void StandbyManager::load_state(snapshot::Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.require(n == pool_.size(), "standby pool size")) return;
  for (const hdfs::NodeId id : pool_) {
    const std::uint32_t saved = r.u32();
    if (!r.require(saved == id.value(), "standby pool member")) return;
  }
  commissions_ = r.u64();
  power_downs_ = r.u64();
}

void StandbyManager::set_observability(obs::Observability* obs) {
  obs_ = obs;
  obs_ids_ = {};
  if (obs == nullptr) {
    return;
  }
  obs::MetricsRegistry& r = obs->registry();
  obs_ids_.commissions = r.counter("standby.commissions");
  obs_ids_.power_downs = r.counter("standby.power_downs");
  obs_ids_.commissioned = r.gauge("standby.commissioned");
}

}  // namespace erms::core
