#include "core/erms_placement.h"

#include <algorithm>
#include <limits>

#include "hdfs/cluster.h"

namespace erms::core {

using hdfs::BlockId;
using hdfs::Cluster;
using hdfs::NodeId;

ErmsPlacementPolicy::ErmsPlacementPolicy(std::set<NodeId> standby_pool,
                                         std::uint32_t default_replication)
    : standby_pool_(std::move(standby_pool)), default_replication_(default_replication) {}

bool ErmsPlacementPolicy::eligible(const Cluster& cluster, BlockId block, NodeId node,
                                   const std::vector<NodeId>& chosen) const {
  const hdfs::DataNode& dn = cluster.node(node);
  if (dn.state != hdfs::NodeState::kActive) {
    return false;
  }
  if (cluster.node_has_block(node, block)) {
    return false;
  }
  const hdfs::BlockInfo* info = cluster.metadata().find_block(block);
  const std::uint64_t need = info != nullptr ? info->size : 0;
  if (dn.used_bytes + need > dn.config.capacity_bytes) {
    return false;
  }
  return std::find(chosen.begin(), chosen.end(), node) == chosen.end();
}

std::vector<NodeId> ErmsPlacementPolicy::choose_targets(const Cluster& cluster, BlockId block,
                                                        std::size_t count,
                                                        std::optional<NodeId> writer,
                                                        sim::Rng& rng) const {
  const hdfs::BlockInfo* info = cluster.metadata().find_block(block);
  if (info == nullptr || count == 0) {
    return {};
  }

  // --- Coding blocks: the active (non-pool) node with the fewest blocks of
  // this file (Algorithm 1 lines 7-13).
  if (info->is_parity) {
    std::vector<NodeId> chosen;
    while (chosen.size() < count) {
      // All active nodes tied for the fewest blocks of this file; pick one
      // at random so parities of different files do not pile up on the
      // lowest-numbered node.
      std::vector<NodeId> best;
      std::size_t best_blocks = std::numeric_limits<std::size_t>::max();
      for (const NodeId n : cluster.nodes()) {
        if (in_standby_pool(n) || !eligible(cluster, block, n, chosen)) {
          continue;
        }
        const std::size_t file_blocks = cluster.file_blocks_on_node(info->file, n);
        if (file_blocks < best_blocks) {
          best_blocks = file_blocks;
          best.clear();
        }
        if (file_blocks == best_blocks) {
          best.push_back(n);
        }
      }
      if (best.empty()) {
        break;
      }
      chosen.push_back(best[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(best.size()) - 1))]);
    }
    return chosen;
  }

  // --- Data blocks (lines 14-37). The first r_D replicas follow the stock
  // rack-aware scheme restricted to non-pool nodes (lines 15-21); replicas
  // beyond r_D are hot extras and go standby-first (lines 22-35).
  std::vector<NodeId> chosen;
  const std::size_t current = cluster.locations(block).size();
  const std::size_t base_needed =
      current < default_replication_
          ? std::min<std::size_t>(count, default_replication_ - current)
          : 0;

  auto pick = [&](auto&& filter) -> bool {
    std::vector<NodeId> candidates;
    for (const NodeId n : cluster.nodes()) {
      if (eligible(cluster, block, n, chosen) && filter(n)) {
        candidates.push_back(n);
      }
    }
    if (candidates.empty()) {
      return false;
    }
    chosen.push_back(candidates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))]);
    return true;
  };
  auto not_pool = [&](NodeId n) { return !in_standby_pool(n); };

  // Base replicas: writer-local, then a second rack, then that rack again,
  // then spread — all on non-pool nodes.
  if (base_needed > 0) {
    const bool fresh_block = current == 0;
    if (fresh_block && chosen.empty() && writer && !in_standby_pool(*writer) &&
        eligible(cluster, block, *writer, chosen)) {
      chosen.push_back(*writer);
    }
    while (chosen.size() < base_needed) {
      std::set<std::uint32_t> used_racks;
      for (const NodeId n : cluster.locations(block)) {
        used_racks.insert(cluster.rack_of(n).value());
      }
      for (const NodeId n : chosen) {
        used_racks.insert(cluster.rack_of(n).value());
      }
      // Prefer a rack without a replica yet; replica 3 prefers doubling up
      // in the remote rack (the HDFS two-rack layout falls out of this when
      // starting from a single-rack replica 1).
      if (pick([&](NodeId n) {
            return not_pool(n) && !used_racks.contains(cluster.rack_of(n).value()) &&
                   used_racks.size() < 2;
          })) {
        continue;
      }
      if (pick([&](NodeId n) {
            return not_pool(n) && used_racks.contains(cluster.rack_of(n).value());
          })) {
        continue;
      }
      if (pick(not_pool)) {
        continue;
      }
      break;
    }
  }

  // --- Extra replicas of hot data: standby-pool nodes first (lines 22-27),
  // active nodes as the fallback (lines 29-35). Prefer pool nodes in racks
  // that already hold a replica.
  std::set<std::uint32_t> replica_racks;
  for (const NodeId n : cluster.locations(block)) {
    replica_racks.insert(cluster.rack_of(n).value());
  }
  for (const NodeId n : chosen) {
    replica_racks.insert(cluster.rack_of(n).value());
  }

  while (chosen.size() < count) {
    // 1. standby node in a rack that already has a replica;
    // 2. any standby node;
    // 3. any active node.
    if (pick([&](NodeId n) {
          return in_standby_pool(n) && replica_racks.contains(cluster.rack_of(n).value());
        })) {
      continue;
    }
    if (pick([&](NodeId n) { return in_standby_pool(n); })) {
      continue;
    }
    if (pick(not_pool)) {
      continue;
    }
    break;
  }
  return chosen;
}

std::optional<NodeId> ErmsPlacementPolicy::choose_replica_to_remove(const Cluster& cluster,
                                                                    BlockId block,
                                                                    sim::Rng& rng) const {
  // Deletion prefers standby-pool nodes (Algorithm 1 lines 39-51), so
  // dropping extra replicas leaves active nodes untouched.
  const std::vector<NodeId> locs = cluster.locations(block);
  for (const NodeId n : locs) {
    if (in_standby_pool(n)) {
      return n;
    }
  }
  return default_policy_.choose_replica_to_remove(cluster, block, rng);
}

}  // namespace erms::core
