#include "fault/fault_plan.h"

#include <algorithm>
#include <sstream>

namespace erms::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kSlowNode:
      return "slow_node";
    case FaultKind::kRestoreNode:
      return "restore_node";
    case FaultKind::kDegradeRack:
      return "degrade_rack";
    case FaultKind::kRestoreRack:
      return "restore_rack";
    case FaultKind::kAbortFlows:
      return "abort_flows";
  }
  return "?";
}

FaultPlan& FaultPlan::crash(sim::SimTime at, std::uint32_t node) {
  events_.push_back({at, FaultKind::kCrash, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::recover(sim::SimTime at, std::uint32_t node) {
  events_.push_back({at, FaultKind::kRecover, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::slow_node(sim::SimTime at, std::uint32_t node, double factor) {
  events_.push_back({at, FaultKind::kSlowNode, node, factor});
  return *this;
}

FaultPlan& FaultPlan::restore_node(sim::SimTime at, std::uint32_t node) {
  events_.push_back({at, FaultKind::kRestoreNode, node, 1.0});
  return *this;
}

FaultPlan& FaultPlan::degrade_rack(sim::SimTime at, std::uint32_t rack, double factor) {
  events_.push_back({at, FaultKind::kDegradeRack, rack, factor});
  return *this;
}

FaultPlan& FaultPlan::restore_rack(sim::SimTime at, std::uint32_t rack) {
  events_.push_back({at, FaultKind::kRestoreRack, rack, 1.0});
  return *this;
}

FaultPlan& FaultPlan::abort_flows(sim::SimTime at, std::uint32_t node) {
  events_.push_back({at, FaultKind::kAbortFlows, node, 1.0});
  return *this;
}

void FaultPlan::sort() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (const FaultEvent& e : events_) {
    os << e.at.micros() << "us " << to_string(e.kind) << " target=" << e.target;
    if (e.kind == FaultKind::kSlowNode || e.kind == FaultKind::kDegradeRack) {
      os << " factor=" << e.factor;
    }
    os << '\n';
  }
  return os.str();
}

FaultPlan FaultPlan::randomized(const ChaosOptions& options, std::uint64_t seed) {
  FaultPlan plan;
  if (options.victims.empty() || options.end <= options.start) {
    return plan;
  }
  sim::Rng rng{seed};
  // Victims currently scheduled to be down at a given time: node -> planned
  // recovery time. Bounds concurrent deaths below the tolerance line.
  std::vector<std::pair<std::uint32_t, sim::SimTime>> down;

  sim::SimTime t = options.start;
  while (true) {
    const double gap_s = rng.exponential(options.mean_gap.seconds());
    t = t + sim::seconds(std::max(0.5, gap_s));
    if (t >= options.end) {
      break;
    }
    // Retire planned recoveries that have passed.
    std::erase_if(down, [t](const auto& d) { return d.second <= t; });

    const int roll = static_cast<int>(rng.uniform_int(0, 9));
    if (roll < 5) {
      // Crash + planned recovery, bounded by max_concurrent_dead.
      if (down.size() >= options.max_concurrent_dead) {
        continue;
      }
      std::vector<std::uint32_t> alive;
      for (const std::uint32_t v : options.victims) {
        const bool is_down = std::any_of(down.begin(), down.end(),
                                         [v](const auto& d) { return d.first == v; });
        if (!is_down) {
          alive.push_back(v);
        }
      }
      if (alive.empty()) {
        continue;
      }
      const std::uint32_t victim =
          alive[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(alive.size()) - 1))];
      const double down_s = rng.uniform_real(options.min_downtime.seconds(),
                                             options.max_downtime.seconds());
      const sim::SimTime up = t + sim::seconds(down_s);
      plan.crash(t, victim);
      plan.recover(up, victim);
      down.emplace_back(victim, up);
    } else if (roll < 8) {
      // Slow-node episode on any victim (dead nodes have no flows; harmless).
      const std::uint32_t victim = options.victims[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(options.victims.size()) - 1))];
      plan.slow_node(t, victim, options.degrade_factor);
      plan.restore_node(t + options.degrade_span, victim);
    } else if (roll == 8 && !options.racks.empty()) {
      const std::uint32_t rack = options.racks[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(options.racks.size()) - 1))];
      plan.degrade_rack(t, rack, options.degrade_factor);
      plan.restore_rack(t + options.degrade_span, rack);
    } else {
      // Flow-abort storm: sudden teardown without the node dying.
      const std::uint32_t victim = options.victims[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(options.victims.size()) - 1))];
      plan.abort_flows(t, victim);
    }
  }
  plan.sort();
  return plan;
}

FaultInjector::FaultInjector(hdfs::Cluster& cluster, obs::TraceRing* trace,
                             util::Logger& logger)
    : cluster_(cluster), trace_(trace), log_(logger) {}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events()) {
    cluster_.simulation().schedule_at(event.at, [this, event] { apply(event); });
  }
}

void FaultInjector::arm_after(const FaultPlan& plan, sim::SimTime after) {
  for (const FaultEvent& event : plan.events()) {
    if (event.at > after) {
      cluster_.simulation().schedule_at(event.at, [this, event] { apply(event); });
    }
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  const hdfs::NodeId node{event.target};
  bool applied = true;
  switch (event.kind) {
    case FaultKind::kCrash:
      if (event.target < cluster_.node_count() &&
          cluster_.node(node).state != hdfs::NodeState::kDead &&
          cluster_.node(node).state != hdfs::NodeState::kStandby) {
        cluster_.fail_node(node);
      } else {
        applied = false;
      }
      break;
    case FaultKind::kRecover:
      applied = event.target < cluster_.node_count() && cluster_.revive_node(node);
      break;
    case FaultKind::kSlowNode:
      cluster_.network().set_node_degradation(event.target, event.factor);
      break;
    case FaultKind::kRestoreNode:
      cluster_.network().set_node_degradation(event.target, 1.0);
      break;
    case FaultKind::kDegradeRack:
      cluster_.network().set_rack_degradation(event.target, event.factor);
      break;
    case FaultKind::kRestoreRack:
      cluster_.network().set_rack_degradation(event.target, 1.0);
      break;
    case FaultKind::kAbortFlows:
      cluster_.network().abort_flows_touching(event.target);
      break;
  }
  if (applied) {
    ++injected_;
  } else {
    ++skipped_;
  }
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::ActionKind::kFaultInjected;
    ev.at = cluster_.simulation().now();
    ev.node = static_cast<std::int64_t>(event.target);
    ev.outcome = applied ? to_string(event.kind) : std::string(to_string(event.kind)) + "_skipped";
    trace_->record(std::move(ev));
  }
  if (log_.enabled(util::LogLevel::kInfo)) {
    log_.log(util::LogLevel::kInfo, "fault",
             std::string("inject ") + to_string(event.kind) + " target=" +
                 std::to_string(event.target) + (applied ? "" : " (skipped)"));
  }
}

}  // namespace erms::fault
