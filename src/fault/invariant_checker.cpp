#include "fault/invariant_checker.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace erms::fault {

namespace {

/// Violation lines are collected then sorted so the report text is stable
/// regardless of the order checks run in.
void add(std::vector<std::string>& violations, std::string line) {
  violations.push_back(std::move(line));
}

}  // namespace

InvariantReport InvariantChecker::check(bool converged) const {
  InvariantReport report;
  std::vector<std::string>& v = report.violations;

  // ---- safety: nothing lost, nothing abandoned ---------------------------
  if (cluster_.blocks_lost() != 0) {
    add(v, "blocks_lost=" + std::to_string(cluster_.blocks_lost()) + " (expected 0)");
  }
  if (cluster_.recoveries_abandoned() != 0) {
    add(v, "recoveries_abandoned=" + std::to_string(cluster_.recoveries_abandoned()) +
               " (expected 0)");
  }

  // ---- per-file availability + convergence -------------------------------
  std::size_t files = 0;
  std::size_t available = 0;
  std::size_t converged_files = 0;
  std::vector<hdfs::FileId> ids = cluster_.metadata().file_ids();
  std::sort(ids.begin(), ids.end());
  for (const hdfs::FileId f : ids) {
    const hdfs::FileInfo* info = cluster_.metadata().find(f);
    if (info == nullptr) {
      continue;
    }
    ++files;
    if (cluster_.file_available(f)) {
      ++available;
    } else {
      add(v, "file_unavailable path=" + std::string(info->path));
    }
    bool file_converged = true;
    if (!info->erasure_coded) {
      for (const hdfs::BlockId b : info->blocks) {
        const std::size_t live = cluster_.locations(b).size();
        if (live < info->replication) {
          file_converged = false;
          if (converged) {
            add(v, "under_replicated path=" + std::string(info->path) + " block=" +
                       std::to_string(b.value()) + " live=" + std::to_string(live) +
                       " target=" + std::to_string(info->replication));
          }
        }
      }
    } else {
      // EC: every data block and every surviving parity keeps >= 1 copy.
      for (const hdfs::BlockId b : info->blocks) {
        if (cluster_.locations(b).empty() && !cluster_.file_available(f)) {
          file_converged = false;
        }
      }
      std::size_t parities_live = 0;
      for (const hdfs::BlockId p : info->parity_blocks) {
        parities_live += cluster_.locations(p).empty() ? 0 : 1;
      }
      if (converged && !info->parity_blocks.empty() && parities_live == 0) {
        file_converged = false;
        add(v, "no_parity_survives path=" + std::string(info->path));
      }
    }
    converged_files += file_converged ? 1 : 0;
  }

  // ---- bookkeeping consistency -------------------------------------------
  // The location map and the per-node block sets must agree, and no
  // non-serving node may be listed as a location.
  std::map<std::uint64_t, std::size_t> node_holdings;
  for (const hdfs::NodeId n : cluster_.nodes()) {
    node_holdings[n.value()] = cluster_.node(n).blocks.size();
  }
  std::map<std::uint64_t, std::size_t> map_holdings;
  for (const hdfs::FileId f : ids) {
    const hdfs::FileInfo* info = cluster_.metadata().find(f);
    if (info == nullptr) {
      continue;
    }
    std::vector<hdfs::BlockId> all = info->blocks;
    all.insert(all.end(), info->parity_blocks.begin(), info->parity_blocks.end());
    for (const hdfs::BlockId b : all) {
      for (const hdfs::NodeId n : cluster_.locations(b)) {
        ++map_holdings[n.value()];
        if (!cluster_.is_serving(n) &&
            cluster_.node(n).state != hdfs::NodeState::kDecommissioning) {
          add(v, "dead_location node=" + std::to_string(n.value()) + " block=" +
                     std::to_string(b.value()));
        }
        if (!cluster_.node_has_block(n, b)) {
          add(v, "map_mismatch node=" + std::to_string(n.value()) + " block=" +
                     std::to_string(b.value()) + " (location without node replica)");
        }
      }
    }
  }
  for (const auto& [n, held] : node_holdings) {
    const std::size_t mapped = map_holdings.contains(n) ? map_holdings.at(n) : 0;
    if (held != mapped) {
      add(v, "holdings_mismatch node=" + std::to_string(n) + " node_set=" +
                 std::to_string(held) + " location_map=" + std::to_string(mapped));
    }
  }

  // ---- trace accounting ---------------------------------------------------
  std::uint64_t trace_rereplications = 0;
  std::uint64_t trace_revivals = 0;
  std::uint64_t trace_faults = 0;
  std::uint64_t trace_aborts = 0;
  std::uint64_t trace_retries = 0;
  if (trace_ != nullptr) {
    for (const obs::TraceEvent& ev : trace_->snapshot()) {
      switch (ev.kind) {
        case obs::ActionKind::kRereplication:
          ++trace_rereplications;
          break;
        case obs::ActionKind::kNodeRecovered:
          ++trace_revivals;
          break;
        case obs::ActionKind::kFaultInjected:
          ++trace_faults;
          break;
        case obs::ActionKind::kFlowAborted:
          ++trace_aborts;
          break;
        case obs::ActionKind::kJobRetry:
          ++trace_retries;
          break;
        default:
          break;
      }
    }
    if (trace_->dropped() == 0) {
      if (trace_rereplications != cluster_.rereplications_completed()) {
        add(v, "trace_rereplication_mismatch trace=" +
                   std::to_string(trace_rereplications) + " cluster=" +
                   std::to_string(cluster_.rereplications_completed()));
      }
      if (trace_revivals != cluster_.nodes_revived()) {
        add(v, "trace_revival_mismatch trace=" + std::to_string(trace_revivals) +
                   " cluster=" + std::to_string(cluster_.nodes_revived()));
      }
    }
  }

  // ---- bounded retries ----------------------------------------------------
  if (scheduler_ != nullptr) {
    std::map<condor::JobId, std::uint64_t> executes;
    for (const condor::JobLogRecord& rec : scheduler_->log()) {
      if (rec.kind == condor::JobLogRecord::Kind::kExecute) {
        ++executes[rec.job];
      }
    }
    for (const auto& [id, count] : executes) {
      const condor::Job* job = scheduler_->find(id);
      if (job != nullptr && count != job->attempts) {
        add(v, "attempt_mismatch job=" + std::to_string(id.value()) + " log=" +
                   std::to_string(count) + " live=" + std::to_string(job->attempts));
      }
    }
  }

  std::sort(v.begin(), v.end());
  report.ok = v.empty();

  std::ostringstream os;
  os << "invariant_report converged=" << (converged ? 1 : 0) << '\n'
     << "files=" << files << " available=" << available
     << " converged_files=" << converged_files << '\n'
     << "blocks_lost=" << cluster_.blocks_lost()
     << " rereplications=" << cluster_.rereplications_completed()
     << " recovery_retries=" << cluster_.recovery_retries()
     << " recoveries_abandoned=" << cluster_.recoveries_abandoned()
     << " nodes_revived=" << cluster_.nodes_revived() << '\n'
     << "net_flows_aborted=" << cluster_.network().flows_aborted()
     << " net_bytes_aborted=" << cluster_.network().bytes_aborted() << '\n';
  if (trace_ != nullptr) {
    os << "trace faults=" << trace_faults << " aborts=" << trace_aborts
       << " retries=" << trace_retries << " rereplications=" << trace_rereplications
       << " revivals=" << trace_revivals << " dropped=" << trace_->dropped() << '\n';
  }
  if (scheduler_ != nullptr) {
    os << "condor retries=" << scheduler_->retries()
       << " timeouts=" << scheduler_->timeouts() << '\n';
  }
  os << "violations=" << v.size() << '\n';
  for (const std::string& line : v) {
    os << "  " << line << '\n';
  }
  os << "ok=" << (report.ok ? 1 : 0) << '\n';
  report.text = os.str();
  return report;
}

}  // namespace erms::fault
