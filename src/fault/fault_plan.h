#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hdfs/cluster.h"
#include "obs/trace.h"
#include "sim/random.h"
#include "sim/time.h"
#include "util/log.h"

namespace erms::fault {

/// What a planned fault does when it fires.
enum class FaultKind : std::uint8_t {
  kCrash,        // fail a serving node (replicas lost, flows torn down)
  kRecover,      // revive a dead node (datanode re-registration)
  kSlowNode,     // degrade every link touching a node to factor × capacity
  kRestoreNode,  // undo kSlowNode (factor back to 1.0)
  kDegradeRack,  // degrade a rack uplink to factor × capacity
  kRestoreRack,  // undo kDegradeRack
  kAbortFlows,   // tear down every in-flight transfer touching a node
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One timed fault in a plan.
struct FaultEvent {
  sim::SimTime at;
  FaultKind kind{FaultKind::kCrash};
  std::uint32_t target{0};  // node id (or rack id for the rack kinds)
  double factor{1.0};       // capacity multiplier for degradation kinds
};

/// Options for FaultPlan::randomized().
struct ChaosOptions {
  sim::SimTime start{sim::SimTime{0}};
  sim::SimTime end{sim::SimTime{sim::minutes(30.0).micros()}};
  /// Nodes eligible to be crashed / slowed. Must be non-empty.
  std::vector<std::uint32_t> victims;
  /// Racks eligible for uplink degradation (empty = no rack faults).
  std::vector<std::uint32_t> racks;
  /// Never have more than this many victims dead at once — keep it below
  /// the data's failure tolerance and no block can lose every replica.
  std::size_t max_concurrent_dead = 1;
  /// Mean gap between injected faults.
  sim::SimDuration mean_gap = sim::seconds(45.0);
  /// How long a crashed node stays down before its planned recovery.
  sim::SimDuration min_downtime = sim::seconds(30.0);
  sim::SimDuration max_downtime = sim::minutes(3.0);
  /// How long slow-node / rack-degradation episodes last.
  sim::SimDuration degrade_span = sim::minutes(1.0);
  /// Capacity multiplier applied during degradation episodes.
  double degrade_factor = 0.25;
};

/// A deterministic, replayable schedule of faults. Build one explicitly with
/// the fluent helpers, or generate one from a seed with randomized() — the
/// same seed and options always produce the identical plan.
class FaultPlan {
 public:
  FaultPlan& crash(sim::SimTime at, std::uint32_t node);
  FaultPlan& recover(sim::SimTime at, std::uint32_t node);
  FaultPlan& slow_node(sim::SimTime at, std::uint32_t node, double factor);
  FaultPlan& restore_node(sim::SimTime at, std::uint32_t node);
  FaultPlan& degrade_rack(sim::SimTime at, std::uint32_t rack, double factor);
  FaultPlan& restore_rack(sim::SimTime at, std::uint32_t rack);
  FaultPlan& abort_flows(sim::SimTime at, std::uint32_t node);

  /// Seeded chaos schedule: crash/recover cycles (bounded by
  /// max_concurrent_dead), slow-node and rack-degradation episodes, and
  /// flow-abort storms, spread over [start, end).
  [[nodiscard]] static FaultPlan randomized(const ChaosOptions& options, std::uint64_t seed);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Events sorted by time (stable for equal times: insertion order).
  void sort();

  /// One line per event — a deterministic, diffable description.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Arms a FaultPlan on a cluster's simulation clock: every event is applied
/// at its planned time, recorded as a kFaultInjected trace event (when a
/// trace is attached), and counted. Events that no longer apply (crashing an
/// already-dead node, recovering a live one) are skipped and counted too —
/// the injector never fights the recovery machinery's own state changes.
class FaultInjector {
 public:
  FaultInjector(hdfs::Cluster& cluster, obs::TraceRing* trace = nullptr,
                util::Logger& logger = util::Logger::null_logger());

  /// Schedule every event of `plan`. Call once before running the sim.
  void arm(const FaultPlan& plan);

  /// Resume path: schedule only the events of `plan` strictly after
  /// `after` (plan order preserved for equal times) — the ones a snapshot
  /// taken at `after` had not yet fired.
  void arm_after(const FaultPlan& plan, sim::SimTime after);

  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t skipped() const { return skipped_; }

  /// Snapshot support: restore the counters a saved run had accumulated.
  void restore_counters(std::uint64_t injected, std::uint64_t skipped) {
    injected_ = injected;
    skipped_ = skipped;
  }

 private:
  void apply(const FaultEvent& event);

  hdfs::Cluster& cluster_;
  obs::TraceRing* trace_;
  util::Logger& log_;
  std::uint64_t injected_{0};
  std::uint64_t skipped_{0};
};

}  // namespace erms::fault
