#pragma once

#include <string>
#include <vector>

#include "condor/scheduler.h"
#include "hdfs/cluster.h"
#include "obs/trace.h"

namespace erms::fault {

/// Result of one invariant sweep. `text` is a fully deterministic report —
/// byte-identical across runs with the same seed — so CI can diff two runs
/// of the same chaos plan to prove determinism.
struct InvariantReport {
  bool ok{true};
  std::vector<std::string> violations;
  std::string text;
};

/// Checks the safety and convergence invariants of a cluster after (or
/// during) a fault schedule:
///  - no block was lost while failures stayed within tolerance,
///  - every file is available (directly or via stripe reconstruction),
///  - after faults stop and recovery drains, every non-EC block is back at
///    its target replica count and every EC stripe keeps >= 1 copy of each
///    surviving shard,
///  - replica bookkeeping is consistent (node block sets == location map,
///    no dead node listed as a location),
///  - the trace ring accounts for every recovery mutation (re-replication
///    and node-revival counters match their trace events, unless the ring
///    overflowed), and
///  - retries are bounded (no Condor job exceeded its attempt budget).
class InvariantChecker {
 public:
  explicit InvariantChecker(const hdfs::Cluster& cluster,
                            const condor::Scheduler* scheduler = nullptr,
                            const obs::TraceRing* trace = nullptr)
      : cluster_(cluster), scheduler_(scheduler), trace_(trace) {}

  /// `converged` asserts the post-recovery invariants too (replica counts
  /// back at target); pass false for mid-chaos sweeps where deficits are
  /// expected but safety (no loss, availability) must still hold.
  [[nodiscard]] InvariantReport check(bool converged = true) const;

 private:
  const hdfs::Cluster& cluster_;
  const condor::Scheduler* scheduler_;
  const obs::TraceRing* trace_;
};

}  // namespace erms::fault
