#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "util/ids.h"
#include "util/log.h"

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::condor {

struct JobTag {};
using JobId = util::StrongId<JobTag>;

/// ERMS schedules urgent work (replica increase, erasure *de*coding)
/// immediately and deferrable work (replica decrease, erasure encoding)
/// "when the HDFS cluster is idle" (paper §III.A).
enum class JobClass { kImmediate, kWhenIdle };

enum class JobStatus {
  kQueued,
  kRunning,
  kCompleted,
  kFailed,       // executor reported failure and no rollback was registered
  kRolledBack,   // executor failed, rollback ran
  kCancelled,
};

[[nodiscard]] constexpr const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kRolledBack:
      return "rolled_back";
    case JobStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

/// A queued task, described by a ClassAd (attribute `Cmd` selects the
/// executor; the rest are task parameters like File / TargetReplication).
struct Job {
  JobId id;
  classad::ClassAd ad;
  JobClass sched_class{JobClass::kImmediate};
  int priority{0};
  JobStatus status{JobStatus::kQueued};
  /// Times the executor has been started (1 = first run, >1 = retries).
  std::uint32_t attempts{0};
  sim::SimTime submitted;
  sim::SimTime started;
  sim::SimTime finished;
};

/// Append-only user-log record ("the Condor log mechanism is used to record
/// all replication manager tasks and erasure coding tasks" — §III.A).
/// kRetry marks a failed execution that was requeued with backoff rather
/// than terminated.
struct JobLogRecord {
  enum class Kind {
    kSubmit,
    kExecute,
    kTerminateOk,
    kTerminateFail,
    kRollback,
    kCancel,
    kRetry
  };
  Kind kind;
  sim::SimTime time;
  JobId job;
  std::string cmd;
};

/// Job statuses recovered by replaying a log after a scheduler crash: the
/// last record per job wins (kRetry maps back to kQueued). At any log
/// prefix the result matches the live scheduler's statuses at that time.
std::map<JobId, JobStatus> recover_statuses(const std::vector<JobLogRecord>& log);

/// Historical name for recover_statuses().
inline std::map<JobId, JobStatus> replay_log(const std::vector<JobLogRecord>& log) {
  return recover_statuses(log);
}

/// Mini-Condor: a priority job queue with two scheduling classes, pluggable
/// executors per command, rollback-on-failure, an append-only job log, and a
/// machine-ad registry with ClassAd matchmaking.
class Scheduler {
 public:
  /// Executors run asynchronously on the simulation clock and report success.
  using Executor = std::function<void(const classad::ClassAd&, std::function<void(bool)>)>;
  /// Invoked when the job's executor fails, to undo partial work.
  using Rollback = std::function<void(const classad::ClassAd&, std::function<void()>)>;
  using TerminateFn = std::function<void(const Job&)>;
  /// Probe deciding whether kWhenIdle jobs may start now.
  using IdleProbe = std::function<bool()>;

  struct Config {
    std::uint32_t max_running = 4;
    /// How often to re-test the idle probe while deferred jobs wait.
    sim::SimDuration idle_poll = sim::seconds(5.0);
    /// Failed executions are requeued up to this many times before the job
    /// terminates (rollback/kFailed). 0 preserves fail-fast semantics.
    std::uint32_t max_retries = 0;
    /// Delay before a retried job becomes startable again; doubles per
    /// attempt, capped at retry_backoff_cap.
    sim::SimDuration retry_backoff = sim::seconds(2.0);
    sim::SimDuration retry_backoff_cap = sim::minutes(2.0);
    /// Wall-clock budget per execution attempt; an attempt still running
    /// after this is treated as failed (retried or terminated). 0 disables.
    sim::SimDuration job_timeout{};
  };

  explicit Scheduler(sim::Simulation& simulation);
  Scheduler(sim::Simulation& simulation, Config config,
            util::Logger& logger = util::Logger::null_logger());

  /// Register the executor (and optional rollback) for a `Cmd` value.
  void register_command(const std::string& cmd, Executor executor, Rollback rollback = nullptr);

  void set_idle_probe(IdleProbe probe) { idle_probe_ = std::move(probe); }

  /// Submit a job ad (must carry a string `Cmd` attribute). `on_terminate`
  /// fires once when the job reaches a terminal status.
  JobId submit(classad::ClassAd ad, JobClass sched_class, int priority = 0,
               TerminateFn on_terminate = nullptr);

  /// Cancel a queued job (running jobs cannot be cancelled). Returns true on
  /// success.
  bool cancel(JobId id);

  [[nodiscard]] const Job* find(JobId id) const;
  [[nodiscard]] std::vector<JobId> jobs_in_status(JobStatus status) const;
  [[nodiscard]] std::size_t queued_count() const;
  [[nodiscard]] std::size_t running_count() const { return running_; }
  [[nodiscard]] const std::vector<JobLogRecord>& log() const { return log_; }

  // ----- machine ads (datanode registry) ---------------------------------
  /// Advertise or refresh a machine ad under `name` — ERMS uses this "to
  /// detect when datanodes are commissioned or decommissioned" (§III.A).
  void advertise(const std::string& name, classad::ClassAd ad);
  /// Drop a machine ad; returns true if it existed.
  bool invalidate(const std::string& name);
  [[nodiscard]] const classad::ClassAd* machine(const std::string& name) const;
  /// Names of machines whose ads satisfy `constraint` (a ClassAd expression
  /// evaluated against each machine ad).
  [[nodiscard]] std::vector<std::string> query_machines(const std::string& constraint) const;
  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }

  // ----- observability ---------------------------------------------------
  /// Attach (nullptr detaches) a metrics registry: per-terminal-status job
  /// counters, queue/running gauges, and queue-wait / execution-span
  /// histograms. Ids resolve once; detached costs one null test per event.
  void set_metrics(obs::MetricsRegistry* metrics);
  /// Attach (nullptr detaches) an action trace; records kJobRetry events.
  void set_trace(obs::TraceRing* trace) { trace_ = trace; }

  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

  /// True while a deferred-job idle poll is pending on the simulation
  /// clock — part of the snapshot quiescence predicate (a pending poll is a
  /// live event the snapshot could not re-arm faithfully).
  [[nodiscard]] bool idle_poll_pending() const { return idle_poll_scheduled_; }

  /// Snapshot support (src/snapshot/): job table (terminal jobs only — save
  /// requires an idle scheduler), user log, machine ads, id sequence and
  /// counters. Executors/rollbacks/probes are re-registered by the owner.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  struct Entry {
    Job job;
    TerminateFn on_terminate;
    /// Bumped on every start/finish/retry; callbacks captured with an older
    /// epoch (late executor completions, stale timeout watchdogs) are
    /// ignored instead of tripping finish()'s kRunning invariant.
    std::uint64_t epoch{0};
    /// Retried jobs are not startable before this time (backoff gate).
    sim::SimTime not_before;
    sim::EventHandle timeout;
  };

  void append_log(JobLogRecord::Kind kind, const Job& job);
  void pump();
  void start(Entry& entry);
  void finish(JobId id, JobStatus status);
  /// A running attempt failed (executor false or watchdog fired): retry
  /// with backoff while attempts remain, otherwise rollback/terminate.
  void handle_failure(JobId id);
  void schedule_idle_poll();

  /// Highest-priority startable queued job (FIFO within a priority).
  [[nodiscard]] std::optional<JobId> next_startable() const;

  sim::Simulation& sim_;
  Config config_;
  util::Logger& log_sink_;
  std::map<JobId, Entry> entries_;
  std::vector<JobLogRecord> log_;
  std::map<std::string, Executor> executors_;
  std::map<std::string, Rollback> rollbacks_;
  std::map<std::string, classad::ClassAd> machines_;
  IdleProbe idle_probe_;
  util::IdGenerator<JobId> ids_{1};
  std::uint32_t running_{0};
  bool idle_poll_scheduled_{false};
  std::uint64_t retries_{0};
  std::uint64_t timeouts_{0};

  struct ObsIds {
    obs::CounterId submitted, completed, failed, rolled_back, cancelled, retried;
    obs::GaugeId queued, running;
    obs::HistogramId queue_wait_seconds, exec_seconds;
  };
  obs::MetricsRegistry* metrics_{nullptr};
  obs::TraceRing* trace_{nullptr};
  ObsIds obs_ids_;
};

}  // namespace erms::condor
