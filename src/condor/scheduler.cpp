#include "condor/scheduler.h"

#include <algorithm>
#include <cassert>

#include "classad/parser.h"
#include "snapshot/codec.h"

namespace erms::condor {

namespace {

// ERMS job and machine ads hold only literal values (built with insert_*),
// so (name, typed value) pairs round-trip them exactly.
void save_ad(snapshot::Writer& w, const classad::ClassAd& ad) {
  const std::vector<std::string> names = ad.attribute_names();
  w.u64(names.size());
  for (const std::string& name : names) {
    const classad::Value v = ad.evaluate(name);
    w.str(name);
    w.u8(static_cast<std::uint8_t>(v.type()));
    switch (v.type()) {
      case classad::Value::Type::kBool:
        w.u8(v.as_bool() ? 1 : 0);
        break;
      case classad::Value::Type::kInt:
        w.i64(v.as_int());
        break;
      case classad::Value::Type::kReal:
        w.f64(v.as_real());
        break;
      case classad::Value::Type::kString:
        w.str(v.as_string());
        break;
      default:
        break;  // undefined/error carry no payload
    }
  }
}

classad::ClassAd load_ad(snapshot::Reader& r) {
  classad::ClassAd ad;
  const std::uint64_t n = r.u64();
  if (!r.require(n <= r.remaining(), "classad attribute count")) return ad;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::string name = r.str();
    const auto type = static_cast<classad::Value::Type>(r.u8());
    switch (type) {
      case classad::Value::Type::kBool:
        ad.insert_bool(name, r.u8() != 0);
        break;
      case classad::Value::Type::kInt:
        ad.insert_int(name, r.i64());
        break;
      case classad::Value::Type::kReal:
        ad.insert_real(name, r.f64());
        break;
      case classad::Value::Type::kString:
        ad.insert_string(name, r.str());
        break;
      case classad::Value::Type::kUndefined:
      case classad::Value::Type::kError:
        break;
      default:
        r.fail(snapshot::ErrorCode::kBadSection, "unknown classad value type");
        return ad;
    }
  }
  return ad;
}

}  // namespace

std::map<JobId, JobStatus> recover_statuses(const std::vector<JobLogRecord>& log) {
  std::map<JobId, JobStatus> statuses;
  for (const JobLogRecord& rec : log) {
    switch (rec.kind) {
      case JobLogRecord::Kind::kSubmit:
        statuses[rec.job] = JobStatus::kQueued;
        break;
      case JobLogRecord::Kind::kExecute:
        statuses[rec.job] = JobStatus::kRunning;
        break;
      case JobLogRecord::Kind::kTerminateOk:
        statuses[rec.job] = JobStatus::kCompleted;
        break;
      case JobLogRecord::Kind::kTerminateFail:
        statuses[rec.job] = JobStatus::kFailed;
        break;
      case JobLogRecord::Kind::kRollback:
        statuses[rec.job] = JobStatus::kRolledBack;
        break;
      case JobLogRecord::Kind::kCancel:
        statuses[rec.job] = JobStatus::kCancelled;
        break;
      case JobLogRecord::Kind::kRetry:
        statuses[rec.job] = JobStatus::kQueued;
        break;
    }
  }
  return statuses;
}

Scheduler::Scheduler(sim::Simulation& simulation)
    : Scheduler(simulation, Config{}, util::Logger::null_logger()) {}

Scheduler::Scheduler(sim::Simulation& simulation, Config config, util::Logger& logger)
    : sim_(simulation), config_(config), log_sink_(logger) {}

void Scheduler::register_command(const std::string& cmd, Executor executor, Rollback rollback) {
  executors_[cmd] = std::move(executor);
  if (rollback) {
    rollbacks_[cmd] = std::move(rollback);
  }
}

void Scheduler::append_log(JobLogRecord::Kind kind, const Job& job) {
  JobLogRecord rec;
  rec.kind = kind;
  rec.time = sim_.now();
  rec.job = job.id;
  rec.cmd = job.ad.get_string("Cmd").value_or("?");
  log_.push_back(std::move(rec));
}

JobId Scheduler::submit(classad::ClassAd ad, JobClass sched_class, int priority,
                        TerminateFn on_terminate) {
  const JobId id = ids_.next();
  Entry entry;
  entry.job.id = id;
  entry.job.ad = std::move(ad);
  entry.job.sched_class = sched_class;
  entry.job.priority = priority;
  entry.job.submitted = sim_.now();
  entry.on_terminate = std::move(on_terminate);
  append_log(JobLogRecord::Kind::kSubmit, entry.job);
  entries_.emplace(id, std::move(entry));
  if (metrics_ != nullptr) {
    metrics_->add(obs_ids_.submitted);
    metrics_->set(obs_ids_.queued, static_cast<double>(queued_count()));
  }
  // Pump from a fresh event so submit() itself never re-enters callbacks.
  sim_.schedule_after(sim::micros(0), [this] { pump(); });
  return id;
}

bool Scheduler::cancel(JobId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end() || it->second.job.status != JobStatus::kQueued) {
    return false;
  }
  it->second.job.status = JobStatus::kCancelled;
  it->second.job.finished = sim_.now();
  append_log(JobLogRecord::Kind::kCancel, it->second.job);
  if (metrics_ != nullptr) {
    metrics_->add(obs_ids_.cancelled);
    metrics_->set(obs_ids_.queued, static_cast<double>(queued_count()));
  }
  if (it->second.on_terminate) {
    const Job job = it->second.job;
    TerminateFn fn = std::move(it->second.on_terminate);
    sim_.schedule_after(sim::micros(0), [fn = std::move(fn), job] { fn(job); });
  }
  return true;
}

const Job* Scheduler::find(JobId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.job;
}

std::vector<JobId> Scheduler::jobs_in_status(JobStatus status) const {
  std::vector<JobId> out;
  for (const auto& [id, entry] : entries_) {
    if (entry.job.status == status) {
      out.push_back(id);
    }
  }
  return out;
}

std::size_t Scheduler::queued_count() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : entries_) {
    n += entry.job.status == JobStatus::kQueued ? 1 : 0;
  }
  return n;
}

std::optional<JobId> Scheduler::next_startable() const {
  const bool idle = !idle_probe_ || idle_probe_();
  std::optional<JobId> best;
  int best_priority = 0;
  for (const auto& [id, entry] : entries_) {
    const Job& job = entry.job;
    if (job.status != JobStatus::kQueued) {
      continue;
    }
    if (entry.not_before > sim_.now()) {
      continue;  // retry still in its backoff window
    }
    if (job.sched_class == JobClass::kWhenIdle && !idle) {
      continue;
    }
    // std::map iterates in submission (id) order, so ties stay FIFO.
    if (!best || job.priority > best_priority) {
      best = id;
      best_priority = job.priority;
    }
  }
  return best;
}

void Scheduler::pump() {
  while (running_ < config_.max_running) {
    const auto id = next_startable();
    if (!id) {
      break;
    }
    start(entries_.at(*id));
  }
  // If deferred jobs remain queued, poll the idle probe periodically.
  bool idle_waiting = false;
  for (const auto& [id, entry] : entries_) {
    if (entry.job.status == JobStatus::kQueued &&
        entry.job.sched_class == JobClass::kWhenIdle) {
      idle_waiting = true;
      break;
    }
  }
  if (idle_waiting) {
    schedule_idle_poll();
  }
}

void Scheduler::schedule_idle_poll() {
  if (idle_poll_scheduled_) {
    return;
  }
  idle_poll_scheduled_ = true;
  sim_.schedule_after(config_.idle_poll, [this] {
    idle_poll_scheduled_ = false;
    pump();
  });
}

void Scheduler::start(Entry& entry) {
  Job& job = entry.job;
  assert(job.status == JobStatus::kQueued);
  const auto cmd = job.ad.get_string("Cmd");
  const auto exec_it = cmd ? executors_.find(*cmd) : executors_.end();
  job.status = JobStatus::kRunning;
  job.started = sim_.now();
  ++job.attempts;
  ++entry.epoch;
  append_log(JobLogRecord::Kind::kExecute, job);
  ++running_;
  if (metrics_ != nullptr) {
    metrics_->observe(obs_ids_.queue_wait_seconds, (job.started - job.submitted).seconds());
    metrics_->set(obs_ids_.queued, static_cast<double>(queued_count()));
    metrics_->set(obs_ids_.running, static_cast<double>(running_));
  }
  if (log_sink_.enabled(util::LogLevel::kDebug)) {
    log_sink_.log(util::LogLevel::kDebug, "condor",
                  "start job " + std::to_string(job.id.value()) + " cmd=" +
                      cmd.value_or("?"));
  }
  if (exec_it == executors_.end()) {
    // No executor for the command: retrying cannot help, terminate directly.
    const JobId id = job.id;
    sim_.schedule_after(sim::micros(0), [this, id] { finish(id, JobStatus::kFailed); });
    return;
  }
  const JobId id = job.id;
  const std::uint64_t epoch = entry.epoch;
  if (config_.job_timeout > sim::SimDuration{}) {
    entry.timeout = sim_.schedule_after(config_.job_timeout, [this, id, epoch] {
      const auto it = entries_.find(id);
      if (it == entries_.end() || it->second.epoch != epoch ||
          it->second.job.status != JobStatus::kRunning) {
        return;
      }
      ++timeouts_;
      if (log_sink_.enabled(util::LogLevel::kWarn)) {
        log_sink_.log(util::LogLevel::kWarn, "condor",
                      "job " + std::to_string(id.value()) + " attempt timed out");
      }
      handle_failure(id);
    });
  }
  exec_it->second(job.ad, [this, id, epoch](bool ok) {
    const auto it = entries_.find(id);
    if (it == entries_.end() || it->second.epoch != epoch ||
        it->second.job.status != JobStatus::kRunning) {
      return;  // attempt was already retired (timeout watchdog won the race)
    }
    if (ok) {
      finish(id, JobStatus::kCompleted);
      return;
    }
    handle_failure(id);
  });
}

void Scheduler::handle_failure(JobId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  Entry& entry = it->second;
  Job& job = entry.job;
  if (job.status != JobStatus::kRunning) {
    return;
  }
  entry.timeout.cancel();
  if (job.attempts <= config_.max_retries) {
    // Requeue with capped exponential backoff; the next start() re-runs the
    // executor, which re-targets through current cluster state.
    ++entry.epoch;
    ++retries_;
    job.status = JobStatus::kQueued;
    sim::SimDuration backoff = config_.retry_backoff;
    for (std::uint32_t i = 1; i < job.attempts && backoff < config_.retry_backoff_cap; ++i) {
      backoff = backoff * 2;
    }
    if (backoff > config_.retry_backoff_cap) {
      backoff = config_.retry_backoff_cap;
    }
    entry.not_before = sim_.now() + backoff;
    append_log(JobLogRecord::Kind::kRetry, job);
    assert(running_ > 0);
    --running_;
    if (metrics_ != nullptr) {
      metrics_->add(obs_ids_.retried);
      metrics_->set(obs_ids_.queued, static_cast<double>(queued_count()));
      metrics_->set(obs_ids_.running, static_cast<double>(running_));
    }
    if (trace_ != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::ActionKind::kJobRetry;
      ev.at = sim_.now();
      ev.job = static_cast<std::int64_t>(job.id.value());
      ev.count = job.attempts;
      ev.queue_wait = backoff;
      ev.outcome = job.ad.get_string("Cmd").value_or("?");
      trace_->record(std::move(ev));
    }
    if (log_sink_.enabled(util::LogLevel::kWarn)) {
      log_sink_.log(util::LogLevel::kWarn, "condor",
                    "retry job " + std::to_string(job.id.value()) + " attempt " +
                        std::to_string(job.attempts) + " backoff " +
                        std::to_string(backoff.seconds()) + "s");
    }
    sim_.schedule_after(backoff, [this] { pump(); });
    pump();  // the freed slot can run another job immediately
    return;
  }
  // Out of retries: roll back if the command registered a rollback ("If
  // these tasks failed, they could rollback automatically" — §III.A).
  const auto cmd = job.ad.get_string("Cmd");
  const auto rb_it = cmd ? rollbacks_.find(*cmd) : rollbacks_.end();
  if (rb_it == rollbacks_.end()) {
    finish(id, JobStatus::kFailed);
    return;
  }
  rb_it->second(job.ad, [this, id] { finish(id, JobStatus::kRolledBack); });
}

void Scheduler::finish(JobId id, JobStatus status) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  Job& job = it->second.job;
  assert(job.status == JobStatus::kRunning);
  it->second.timeout.cancel();
  ++it->second.epoch;
  job.status = status;
  job.finished = sim_.now();
  switch (status) {
    case JobStatus::kCompleted:
      append_log(JobLogRecord::Kind::kTerminateOk, job);
      break;
    case JobStatus::kRolledBack:
      append_log(JobLogRecord::Kind::kRollback, job);
      break;
    default:
      append_log(JobLogRecord::Kind::kTerminateFail, job);
      break;
  }
  assert(running_ > 0);
  --running_;
  if (metrics_ != nullptr) {
    switch (status) {
      case JobStatus::kCompleted:
        metrics_->add(obs_ids_.completed);
        break;
      case JobStatus::kRolledBack:
        metrics_->add(obs_ids_.rolled_back);
        break;
      default:
        metrics_->add(obs_ids_.failed);
        break;
    }
    metrics_->observe(obs_ids_.exec_seconds, (job.finished - job.started).seconds());
    metrics_->set(obs_ids_.running, static_cast<double>(running_));
  }
  if (it->second.on_terminate) {
    it->second.on_terminate(job);
  }
  pump();
}

void Scheduler::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  obs_ids_ = {};
  if (metrics == nullptr) {
    return;
  }
  obs_ids_.submitted = metrics->counter("condor.jobs.submitted");
  obs_ids_.completed = metrics->counter("condor.jobs.completed");
  obs_ids_.failed = metrics->counter("condor.jobs.failed");
  obs_ids_.rolled_back = metrics->counter("condor.jobs.rolled_back");
  obs_ids_.cancelled = metrics->counter("condor.jobs.cancelled");
  obs_ids_.retried = metrics->counter("condor.jobs.retried");
  obs_ids_.queued = metrics->gauge("condor.jobs.queued");
  obs_ids_.running = metrics->gauge("condor.jobs.running");
  obs_ids_.queue_wait_seconds = metrics->histogram("condor.queue_wait.seconds", 0.0, 600.0, 60);
  obs_ids_.exec_seconds = metrics->histogram("condor.exec.seconds", 0.0, 600.0, 60);
}

void Scheduler::advertise(const std::string& name, classad::ClassAd ad) {
  machines_[name] = std::move(ad);
}

bool Scheduler::invalidate(const std::string& name) { return machines_.erase(name) > 0; }

const classad::ClassAd* Scheduler::machine(const std::string& name) const {
  const auto it = machines_.find(name);
  return it == machines_.end() ? nullptr : &it->second;
}

std::vector<std::string> Scheduler::query_machines(const std::string& constraint) const {
  const classad::ExprPtr expr = classad::parse_expr(constraint);
  std::vector<std::string> out;
  for (const auto& [name, ad] : machines_) {
    const classad::Value v = ad.evaluate_expr(*expr);
    if (v.is_bool() && v.as_bool()) {
      out.push_back(name);
    }
  }
  return out;
}

void Scheduler::save_state(snapshot::Writer& w) const {
  // The snapshot layer saves only at quiescence: nothing queued, nothing
  // running, no idle poll pending — every surviving job is terminal, so its
  // on_terminate has already fired and the closure need not travel.
  assert(running_ == 0 && queued_count() == 0 && !idle_poll_scheduled_);
  w.u64(entries_.size());
  for (const auto& [id, entry] : entries_) {
    const Job& job = entry.job;
    w.u64(job.id.value());
    save_ad(w, job.ad);
    w.u8(static_cast<std::uint8_t>(job.sched_class));
    w.i64(job.priority);
    w.u8(static_cast<std::uint8_t>(job.status));
    w.u32(job.attempts);
    w.i64(job.submitted.micros());
    w.i64(job.started.micros());
    w.i64(job.finished.micros());
  }
  w.u64(log_.size());
  for (const JobLogRecord& rec : log_) {
    w.u8(static_cast<std::uint8_t>(rec.kind));
    w.i64(rec.time.micros());
    w.u64(rec.job.value());
    w.str(rec.cmd);
  }
  w.u64(machines_.size());
  for (const auto& [name, ad] : machines_) {
    w.str(name);
    save_ad(w, ad);
  }
  w.u64(ids_.peek());
  w.u64(retries_);
  w.u64(timeouts_);
}

void Scheduler::load_state(snapshot::Reader& r) {
  std::map<JobId, Entry> entries;
  const std::uint64_t njobs = r.u64();
  if (!r.require(njobs <= r.remaining(), "job table size")) return;
  for (std::uint64_t i = 0; i < njobs && r.ok(); ++i) {
    Entry entry;
    Job& job = entry.job;
    job.id = JobId{r.u64()};
    job.ad = load_ad(r);
    job.sched_class = static_cast<JobClass>(r.u8());
    job.priority = static_cast<int>(r.i64());
    job.status = static_cast<JobStatus>(r.u8());
    job.attempts = r.u32();
    job.submitted = sim::SimTime{r.i64()};
    job.started = sim::SimTime{r.i64()};
    job.finished = sim::SimTime{r.i64()};
    if (!r.require(job.status == JobStatus::kCompleted || job.status == JobStatus::kFailed ||
                       job.status == JobStatus::kRolledBack ||
                       job.status == JobStatus::kCancelled,
                   "non-terminal job in snapshot")) {
      return;
    }
    entries.emplace(job.id, std::move(entry));
  }
  std::vector<JobLogRecord> log;
  const std::uint64_t nlog = r.u64();
  if (!r.require(nlog <= r.remaining(), "job log size")) return;
  log.reserve(nlog);
  for (std::uint64_t i = 0; i < nlog && r.ok(); ++i) {
    JobLogRecord rec;
    rec.kind = static_cast<JobLogRecord::Kind>(r.u8());
    rec.time = sim::SimTime{r.i64()};
    rec.job = JobId{r.u64()};
    rec.cmd = r.str();
    log.push_back(std::move(rec));
  }
  std::map<std::string, classad::ClassAd> machines;
  const std::uint64_t nmachines = r.u64();
  if (!r.require(nmachines <= r.remaining(), "machine ad count")) return;
  for (std::uint64_t i = 0; i < nmachines && r.ok(); ++i) {
    std::string name = r.str();
    machines.emplace(std::move(name), load_ad(r));
  }
  const std::uint64_t next_id = r.u64();
  const std::uint64_t retries = r.u64();
  const std::uint64_t timeouts = r.u64();
  if (!r.ok()) return;
  entries_ = std::move(entries);
  log_ = std::move(log);
  machines_ = std::move(machines);
  ids_.reset(next_id);
  retries_ = retries;
  timeouts_ = timeouts;
}

}  // namespace erms::condor
