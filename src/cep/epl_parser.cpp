#include "cep/epl_parser.h"

#include "cep/pattern.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "classad/parser.h"
#include "util/strings.h"

namespace erms::cep {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Split the statement into clauses keyed by keyword, respecting string
/// literals so a quoted "where" cannot start a clause.
struct Clause {
  std::string keyword;  // lower-case: select / from / where / group / window / having
  std::string body;
};

bool keyword_at(const std::string& low, std::size_t i, std::string_view kw) {
  if (low.compare(i, kw.size(), kw) != 0) {
    return false;
  }
  const bool start_ok = i == 0 || std::isspace(static_cast<unsigned char>(low[i - 1])) != 0;
  const std::size_t end = i + kw.size();
  const bool end_ok =
      end >= low.size() || std::isspace(static_cast<unsigned char>(low[end])) != 0;
  return start_ok && end_ok;
}

std::vector<Clause> split_clauses(std::string_view text,
                                  const std::vector<std::string>& keywords,
                                  const std::string& expected_first) {
  const std::string input(text);
  const std::string low = lower(input);
  std::vector<Clause> clauses;
  std::size_t i = 0;
  bool in_string = false;
  std::size_t body_start = 0;
  auto close_clause = [&](std::size_t end) {
    if (!clauses.empty()) {
      clauses.back().body =
          std::string(util::trim(std::string_view(input).substr(body_start, end - body_start)));
    }
  };
  while (i < input.size()) {
    const char c = input[i];
    if (c == '"') {
      in_string = !in_string;
      ++i;
      continue;
    }
    if (!in_string) {
      bool matched = false;
      for (const std::string& kw : keywords) {
        if (keyword_at(low, i, kw)) {
          close_clause(i);
          clauses.push_back(Clause{kw, ""});
          i += kw.size();
          // "group"/"correlate"/"followed" take a "by" particle.
          if (kw == "group" || kw == "correlate" || kw == "followed") {
            while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i])) != 0) {
              ++i;
            }
            if (keyword_at(low, i, "by")) {
              i += 2;
            } else {
              throw classad::ParseError("expected BY after " + kw, i);
            }
          }
          body_start = i;
          matched = true;
          break;
        }
      }
      if (matched) {
        continue;
      }
    }
    ++i;
  }
  close_clause(input.size());
  if (clauses.empty() || clauses.front().keyword != expected_first) {
    throw classad::ParseError("statement must start with " + expected_first, 0);
  }
  return clauses;
}

Aggregate parse_aggregate(std::string_view item) {
  const std::string text(util::trim(item));
  const std::string low = lower(text);

  Aggregate agg;
  std::size_t open = text.find('(');
  const std::size_t close = text.find(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    throw classad::ParseError("expected aggregate like count(*) in SELECT", 0);
  }
  const std::string fn = std::string(util::trim(std::string_view(low).substr(0, open)));
  static const std::map<std::string, Aggregate::Kind> kKinds = {
      {"count", Aggregate::Kind::kCount}, {"sum", Aggregate::Kind::kSum},
      {"avg", Aggregate::Kind::kAvg},     {"min", Aggregate::Kind::kMin},
      {"max", Aggregate::Kind::kMax}};
  const auto kind_it = kKinds.find(fn);
  if (kind_it == kKinds.end()) {
    throw classad::ParseError("unknown aggregate '" + fn + "'", 0);
  }
  agg.kind = kind_it->second;

  const std::string arg =
      std::string(util::trim(std::string_view(text).substr(open + 1, close - open - 1)));
  if (agg.kind == Aggregate::Kind::kCount) {
    if (arg != "*" && !arg.empty()) {
      throw classad::ParseError("count takes '*'", 0);
    }
  } else {
    if (arg.empty() || arg == "*") {
      throw classad::ParseError("aggregate needs an attribute argument", 0);
    }
    agg.attr = arg;
  }

  // Optional "AS alias".
  const std::string rest = std::string(util::trim(std::string_view(text).substr(close + 1)));
  if (!rest.empty()) {
    const std::string rest_low = lower(rest);
    if (rest_low.size() < 3 || rest_low.compare(0, 2, "as") != 0 ||
        std::isspace(static_cast<unsigned char>(rest_low[2])) == 0) {
      throw classad::ParseError("expected AS <alias> after aggregate", 0);
    }
    agg.alias = std::string(util::trim(std::string_view(rest).substr(2)));
  } else {
    agg.alias = fn + (agg.attr.empty() ? "" : "_" + agg.attr);
  }
  return agg;
}

WindowSpec parse_window(std::string_view body) {
  const std::string text = lower(std::string(util::trim(body)));
  if (util::starts_with(text, "time")) {
    const std::string rest = std::string(util::trim(std::string_view(text).substr(4)));
    char* end = nullptr;
    const double n = std::strtod(rest.c_str(), &end);
    if (end == rest.c_str()) {
      throw classad::ParseError("expected duration after WINDOW TIME", 0);
    }
    const std::string unit(util::trim(std::string_view(end)));
    double secs = n;
    if (unit == "ms") {
      secs = n / 1000.0;
    } else if (unit == "m" || unit == "min") {
      secs = n * 60.0;
    } else if (unit == "h") {
      secs = n * 3600.0;
    } else if (!(unit.empty() || unit == "s")) {
      throw classad::ParseError("unknown time unit '" + unit + "'", 0);
    }
    return WindowSpec::time(sim::seconds(secs));
  }
  if (util::starts_with(text, "length")) {
    const std::string rest = std::string(util::trim(std::string_view(text).substr(6)));
    char* end = nullptr;
    const long long n = std::strtoll(rest.c_str(), &end, 10);
    if (end == rest.c_str() || n <= 0) {
      throw classad::ParseError("expected positive count after WINDOW LENGTH", 0);
    }
    return WindowSpec::length(static_cast<std::size_t>(n));
  }
  throw classad::ParseError("expected WINDOW TIME or WINDOW LENGTH", 0);
}

}  // namespace

Query parse_epl(std::string_view text) {
  static const std::vector<std::string> kKeywords = {"select", "from",   "where",
                                                     "group",  "window", "having"};
  Query query;
  bool saw_window = false;
  for (const Clause& clause : split_clauses(text, kKeywords, "select")) {
    if (clause.keyword == "select") {
      for (const std::string_view item : util::split(clause.body, ',')) {
        query.select.push_back(parse_aggregate(item));
      }
      if (query.select.empty()) {
        throw classad::ParseError("empty SELECT list", 0);
      }
    } else if (clause.keyword == "from") {
      query.from = std::string(util::trim(clause.body));
      if (query.from.empty()) {
        throw classad::ParseError("empty FROM clause", 0);
      }
    } else if (clause.keyword == "where") {
      query.where = classad::parse_expr(clause.body);
    } else if (clause.keyword == "group") {
      for (const std::string_view item : util::split(clause.body, ',')) {
        const std::string attr(util::trim(item));
        if (attr.empty()) {
          throw classad::ParseError("empty GROUP BY attribute", 0);
        }
        query.group_by.push_back(attr);
      }
    } else if (clause.keyword == "window") {
      query.window = parse_window(clause.body);
      saw_window = true;
    } else if (clause.keyword == "having") {
      query.having = classad::parse_expr(clause.body);
    }
  }
  if (query.from.empty()) {
    throw classad::ParseError("missing FROM clause", 0);
  }
  if (!saw_window) {
    throw classad::ParseError("missing WINDOW clause", 0);
  }
  return query;
}

Pattern parse_epl_pattern(std::string_view text) {
  static const std::vector<std::string> kKeywords = {
      "pattern", "on", "opening", "followed", "matching", "correlate", "within"};
  Pattern pattern;
  bool saw_within = false;
  for (const Clause& clause : split_clauses(text, kKeywords, "pattern")) {
    if (clause.keyword == "pattern") {
      pattern.name = std::string(util::trim(clause.body));
      if (pattern.name.empty()) {
        throw classad::ParseError("PATTERN needs a name", 0);
      }
    } else if (clause.keyword == "on") {
      pattern.from = std::string(util::trim(clause.body));
    } else if (clause.keyword == "opening") {
      pattern.opening = classad::parse_expr(clause.body);
    } else if (clause.keyword == "followed") {
      char* end = nullptr;
      const std::string body(util::trim(clause.body));
      const long long n = std::strtoll(body.c_str(), &end, 10);
      if (end == body.c_str() || n <= 0 || !std::string(util::trim(std::string_view(end))).empty()) {
        throw classad::ParseError("FOLLOWED BY needs a positive count", 0);
      }
      pattern.follower_count = static_cast<std::size_t>(n);
    } else if (clause.keyword == "matching") {
      pattern.follower = classad::parse_expr(clause.body);
    } else if (clause.keyword == "correlate") {
      for (const std::string_view item : util::split(clause.body, ',')) {
        const std::string attr(util::trim(item));
        if (attr.empty()) {
          throw classad::ParseError("empty CORRELATE BY attribute", 0);
        }
        pattern.correlate_by.push_back(attr);
      }
    } else if (clause.keyword == "within") {
      const std::string body = "time " + std::string(util::trim(clause.body));
      pattern.within = parse_window(body).duration;
      saw_within = true;
    }
  }
  if (!pattern.opening) {
    throw classad::ParseError("missing OPENING clause", 0);
  }
  if (!pattern.follower) {
    throw classad::ParseError("missing MATCHING clause", 0);
  }
  if (!saw_within) {
    throw classad::ParseError("missing WITHIN clause", 0);
  }
  return pattern;
}

}  // namespace erms::cep
