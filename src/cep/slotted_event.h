#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace erms::cep {

/// Index of an interned attribute (or stream) name. Slots are dense and
/// engine-wide: every query and every event pushed through one engine agree
/// on the slot of "src", so the hot path never touches an attribute string.
using Slot = std::uint32_t;
inline constexpr Slot kNoSlot = static_cast<Slot>(-1);

/// Interns names once and hands out dense slots. Attribute tables fold case
/// (ClassAd attribute names are case-insensitive); stream tables do not
/// (stream matching has always been an exact string compare).
class SymbolTable {
 public:
  explicit SymbolTable(bool fold_case = true) : fold_case_(fold_case) {}

  /// Slot of `name`, interning it on first sight.
  Slot intern(std::string_view name);

  /// Slot of `name` if already interned, else kNoSlot. Never mutates — safe
  /// to call concurrently with other readers.
  [[nodiscard]] Slot find(std::string_view name) const;

  /// Canonical (possibly case-folded) spelling of an interned slot.
  [[nodiscard]] const std::string& name(Slot slot) const { return names_[slot]; }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  [[nodiscard]] std::string canonical(std::string_view name) const;

  bool fold_case_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, Slot> index_;
};

/// One attribute value of a slotted event. Mirrors the subset of
/// classad::Value an event attribute can take; kNull marks an absent
/// attribute (ClassAd UNDEFINED). The string payload is a member (not a
/// variant) so reusing a SlotValue reuses its capacity.
struct SlotValue {
  enum class Kind : std::uint8_t { kNull, kBool, kInt, kReal, kString };

  Kind kind{Kind::kNull};
  bool b{false};
  std::int64_t i{0};
  double r{0.0};
  std::string s;

  [[nodiscard]] bool is_number() const { return kind == Kind::kInt || kind == Kind::kReal; }
  [[nodiscard]] double as_number() const {
    return kind == Kind::kInt ? static_cast<double>(i) : r;
  }
};

/// A stream event in slotted form: a timestamp, an interned stream slot, and
/// attribute values indexed by attribute slot. Filling one does no map
/// inserts and — once the value vector and its strings have grown — no
/// allocations, which is what lets the audit ingest path run millions of
/// events per second.
class SlottedEvent {
 public:
  sim::SimTime time;
  Slot stream{kNoSlot};

  /// Start a new event, clearing previously set attributes (only the ones
  /// that were touched) while keeping all capacity.
  void reset(sim::SimTime t, Slot stream_slot) {
    for (const Slot s : touched_) {
      values_[s].kind = SlotValue::Kind::kNull;
    }
    touched_.clear();
    time = t;
    stream = stream_slot;
  }

  void set_bool(Slot slot, bool v) {
    SlotValue& sv = touch(slot);
    sv.kind = SlotValue::Kind::kBool;
    sv.b = v;
  }
  void set_int(Slot slot, std::int64_t v) {
    SlotValue& sv = touch(slot);
    sv.kind = SlotValue::Kind::kInt;
    sv.i = v;
  }
  void set_real(Slot slot, double v) {
    SlotValue& sv = touch(slot);
    sv.kind = SlotValue::Kind::kReal;
    sv.r = v;
  }
  void set_string(Slot slot, std::string_view v) {
    SlotValue& sv = touch(slot);
    sv.kind = SlotValue::Kind::kString;
    sv.s.assign(v);
  }

  /// Value at `slot`, or nullptr when absent (never set or out of range).
  [[nodiscard]] const SlotValue* get(Slot slot) const {
    if (slot >= values_.size() || values_[slot].kind == SlotValue::Kind::kNull) {
      return nullptr;
    }
    return &values_[slot];
  }

  /// Slots set on this event, in set order (for adapters that must iterate).
  [[nodiscard]] const std::vector<Slot>& touched() const { return touched_; }

 private:
  SlotValue& touch(Slot slot) {
    if (slot >= values_.size()) {
      values_.resize(slot + 1);
    }
    SlotValue& sv = values_[slot];
    if (sv.kind == SlotValue::Kind::kNull) {
      touched_.push_back(slot);
    }
    return sv;
  }

  std::vector<SlotValue> values_;
  std::vector<Slot> touched_;
};

/// A reusable batch of slotted events. clear() keeps the storage (and every
/// string's capacity) so shard feed buffers stop allocating once warm.
class EventBatch {
 public:
  /// Append a copy of `e`, reusing a previously cleared entry if available.
  void append(const SlottedEvent& e) {
    if (size_ < storage_.size()) {
      storage_[size_] = e;
    } else {
      storage_.push_back(e);
    }
    ++size_;
  }

  /// Hand out the next entry for in-place filling (callers reset() it via
  /// AuditEvent::to_slotted or SlottedEvent::reset). Skips the copy append()
  /// makes, so producers can build events directly inside the batch.
  [[nodiscard]] SlottedEvent& emplace_back() {
    if (size_ == storage_.size()) {
      storage_.emplace_back();
    }
    return storage_[size_++];
  }

  void clear() { size_ = 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const SlottedEvent& operator[](std::size_t i) const { return storage_[i]; }

 private:
  std::vector<SlottedEvent> storage_;
  std::size_t size_{0};
};

}  // namespace erms::cep
