#pragma once

#include <string_view>

#include "cep/pattern.h"
#include "cep/query.h"

namespace erms::cep {

/// Parse the engine's EPL-like continuous-query language — the paper notes
/// that "CEP system uses an SQL-standard-based continuous query language to
/// express the query demands" (§III.C). Grammar:
///
///   SELECT <agg> [AS alias] {, <agg> [AS alias]}
///   FROM <stream>
///   [WHERE <classad-expr>]
///   [GROUP BY <attr> {, <attr>}]
///   WINDOW TIME <number>[s|ms|m|h] | WINDOW LENGTH <count>
///   [HAVING <classad-expr>]
///
/// where <agg> is count(*) | sum(a) | avg(a) | min(a) | max(a).
/// Keywords are case-insensitive. WHERE/HAVING bodies use the ClassAd
/// expression language. Throws classad::ParseError on malformed input.
Query parse_epl(std::string_view text);

/// Parse a sequence-pattern statement for the PatternDetector:
///
///   PATTERN <name> ON <stream>
///   OPENING <classad-expr>
///   FOLLOWED BY <count> MATCHING <classad-expr>
///   [CORRELATE BY <attr> {, <attr>}]
///   WITHIN <number>[s|ms|m|h]
///
/// e.g. PATTERN born_hot ON audit OPENING cmd == "create"
///      FOLLOWED BY 10 MATCHING cmd == "read" CORRELATE BY src WITHIN 120s
Pattern parse_epl_pattern(std::string_view text);

}  // namespace erms::cep
