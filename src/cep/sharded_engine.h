#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cep/engine.h"
#include "util/thread_pool.h"

namespace erms::cep {

struct ShardedEngineOptions {
  /// Number of engine shards; 0 means std::thread::hardware_concurrency().
  std::size_t shards{0};
  /// Attribute whose value routes an event to a shard. The audit stream is
  /// dominated by per-file group-bys, so hashing the file path (`src`) keeps
  /// every group of the hottest queries local to one shard.
  std::string route_by{"src"};
  /// Events buffered per flush. Larger batches amortize the fan-out cost;
  /// reads (snapshot/group_row/advance_to) always flush first.
  std::size_t batch_events{256};
  /// Worker pool to borrow; nullptr = the engine owns a pool.
  util::ThreadPool* pool{nullptr};
};

/// A sharded CEP front-end: N scalar Engines behind the EngineBase interface.
/// Every query is registered on every shard (QueryIds are allocated in
/// lockstep, so the ids agree); each pushed event is routed to exactly one
/// shard by the hash of its `route_by` attribute and buffered; flush() drains
/// the per-shard batches through the thread pool and then advances every
/// shard to the batch's max event time, so time-window eviction matches the
/// scalar engine. Snapshots merge the shards' raw group states before
/// rendering, which makes them equal to scalar snapshots for time-window
/// queries over time-ordered streams (the differential tests assert this
/// byte-for-byte).
///
/// Known divergences from the scalar engine, by construction:
///  - LENGTH windows become shard-local ("last N per shard") when shards > 1.
///  - Listeners fire on worker threads with shard-local rows.
class ShardedEngine final : public EngineBase {
 public:
  explicit ShardedEngine(ShardedEngineOptions opts = {});
  ~ShardedEngine() override;

  using EngineBase::register_query;
  using EngineBase::for_each_group_count;
  QueryId register_query(Query query, Listener listener) override;
  bool remove_query(QueryId id) override;
  void push(const Event& event) override;
  void push_slotted(const SlottedEvent& event) override;
  void push_batch(const EventBatch& batch) override;
  void advance_to(sim::SimTime now) override;
  [[nodiscard]] std::vector<ResultRow> snapshot(QueryId id) override;
  [[nodiscard]] std::optional<ResultRow> group_row(
      QueryId id, const std::vector<std::string>& key) override;
  void for_each_group_count(QueryId id, const GroupCountVisitor& fn,
                            GroupOrder order) override;
  [[nodiscard]] std::size_t query_count() const override;
  [[nodiscard]] std::uint64_t events_processed() const override { return events_; }
  [[nodiscard]] SymbolTable& attr_symbols() override { return *attrs_; }
  [[nodiscard]] SymbolTable& stream_symbols() override { return *streams_; }
  /// Flushes pending batches, then saves every shard in order (plus the
  /// aggregate event counter). Restore requires the same shard count.
  void save_state(snapshot::Writer& w) override;
  void load_state(snapshot::Reader& r) override;

  /// Drain all pending batches into the shards. Called automatically by
  /// reads and whenever a shard's batch fills.
  void flush();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Engine& shard(std::size_t i) { return *shards_[i]; }

  /// Forwarded to every shard (differential tests compare both WHERE paths).
  void set_use_fast_path(bool on);

 private:
  [[nodiscard]] std::size_t route(const SlottedEvent& e) const;
  /// All shards' groups for `id`, merged by key; sorted by key when
  /// `order` is kSorted, else left in merge order.
  [[nodiscard]] std::vector<Engine::RawGroup> merged_raw(
      QueryId id, GroupOrder order = GroupOrder::kSorted);

  std::shared_ptr<SymbolTable> attrs_;
  std::shared_ptr<SymbolTable> streams_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<EventBatch> pending_;
  std::size_t batch_events_;
  Slot route_slot_{kNoSlot};
  util::ThreadPool* pool_{nullptr};
  std::unique_ptr<util::ThreadPool> owned_pool_;
  std::uint64_t events_{0};
  std::size_t pending_count_{0};
  sim::SimTime pending_max_time_{};
  bool has_pending_{false};
  SlottedEvent convert_scratch_;
};

}  // namespace erms::cep
