#pragma once

#include <cstddef>
#include <deque>
#include <functional>

#include "cep/event.h"
#include "sim/time.h"

namespace erms::cep {

/// Sliding-window specification — the paper singles these out as "the major
/// features of CEP systems" (§II): a time window keeps events from the last
/// `duration`; a length window keeps the last `count` events.
struct WindowSpec {
  enum class Kind { kTime, kLength };
  Kind kind{Kind::kTime};
  sim::SimDuration duration{sim::seconds(60.0)};
  std::size_t count{1000};

  static WindowSpec time(sim::SimDuration d) {
    WindowSpec w;
    w.kind = Kind::kTime;
    w.duration = d;
    return w;
  }
  static WindowSpec length(std::size_t n) {
    WindowSpec w;
    w.kind = Kind::kLength;
    w.count = n;
    return w;
  }
};

/// A sliding window over a stream. Insertion is append-only (event times must
/// be non-decreasing, which the simulation guarantees); eviction calls the
/// given hook so aggregates can be decremented incrementally.
class SlidingWindow {
 public:
  using EvictFn = std::function<void(const Event&)>;

  explicit SlidingWindow(WindowSpec spec) : spec_(spec) {}

  /// Append an event, then evict anything that falls out of the window.
  /// The by-value overload moves; pass a const reference to copy exactly
  /// once, or an rvalue to store with no copy at all.
  void push(Event&& event, const EvictFn& on_evict);
  void push(const Event& event, const EvictFn& on_evict) {
    push(Event{event}, on_evict);
  }

  /// Evict events older than `now - duration` (time windows only; length
  /// windows evict on push). Called when time advances without new events.
  void evict_until(sim::SimTime now, const EvictFn& on_evict);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] const WindowSpec& spec() const { return spec_; }

 private:
  WindowSpec spec_;
  std::deque<Event> events_;
};

}  // namespace erms::cep
