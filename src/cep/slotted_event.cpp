#include "cep/slotted_event.h"

#include <cctype>

namespace erms::cep {

std::string SymbolTable::canonical(std::string_view name) const {
  std::string out(name);
  if (fold_case_) {
    for (char& c : out) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

Slot SymbolTable::intern(std::string_view name) {
  const std::string key = canonical(name);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    return it->second;
  }
  const Slot slot = static_cast<Slot>(names_.size());
  names_.push_back(key);
  index_.emplace(std::move(key), slot);
  return slot;
}

Slot SymbolTable::find(std::string_view name) const {
  const std::string key = canonical(name);
  const auto it = index_.find(key);
  return it == index_.end() ? kNoSlot : it->second;
}

}  // namespace erms::cep
