#pragma once

#include <string>
#include <vector>

#include "classad/expr.h"
#include "cep/window.h"

namespace erms::cep {

/// One aggregate in the SELECT list, e.g. `count(*) AS n` or
/// `avg(duration) AS d`.
struct Aggregate {
  enum class Kind { kCount, kSum, kAvg, kMin, kMax };
  Kind kind{Kind::kCount};
  std::string attr;  // empty for count(*)
  std::string alias;
};

/// A continuous query over one stream — the structured form of
///   SELECT <aggregates> FROM <stream> [WHERE <expr>]
///   [GROUP BY <attrs>] WINDOW TIME <dur> | LENGTH <n> [HAVING <expr>]
/// WHERE is evaluated against each event's attribute ad; HAVING against a
/// result row holding the group keys and aggregate aliases.
struct Query {
  std::string name;
  std::string from;
  classad::ExprPtr where;   // nullptr = accept all
  std::vector<std::string> group_by;
  std::vector<Aggregate> select;
  classad::ExprPtr having;  // nullptr = always emit
  WindowSpec window;
};

/// A result row: the group's key attributes plus the aggregate values, as a
/// ClassAd (so HAVING can be an ordinary expression).
struct ResultRow {
  classad::ClassAd values;
};

}  // namespace erms::cep
