#pragma once

#include <string>
#include <utility>

#include "classad/classad.h"
#include "sim/time.h"

namespace erms::cep {

/// One event in a stream: a timestamp, a stream/type name, and an attribute
/// record. The attribute record is a ClassAd so WHERE/HAVING clauses can be
/// evaluated with the same expression machinery the Condor substrate uses.
struct Event {
  sim::SimTime time;
  std::string type;
  classad::ClassAd attrs;

  Event() = default;
  Event(sim::SimTime t, std::string type_name) : time(t), type(std::move(type_name)) {}

  Event& with_int(const std::string& name, std::int64_t v) {
    attrs.insert_int(name, v);
    return *this;
  }
  Event& with_real(const std::string& name, double v) {
    attrs.insert_real(name, v);
    return *this;
  }
  Event& with_string(const std::string& name, std::string v) {
    attrs.insert_string(name, std::move(v));
    return *this;
  }
};

}  // namespace erms::cep
